package core

import (
	"fmt"
	"testing"

	"repro/internal/cfggen"
	"repro/internal/interp"
	"repro/internal/ir"
)

// allOptions enumerates the machinery combinations benchmarked in Figure 6,
// for a given strategy.
func allOptions(s Strategy) []Options {
	if s == SreedharIII {
		return []Options{
			{Strategy: s, Virtualize: true, UseGraph: true},
			{Strategy: s, Virtualize: true, UseGraph: true, OrderedSets: true},
		}
	}
	if s == Optimistic {
		return []Options{
			{Strategy: s},
			{Strategy: s, LiveCheck: true},
			{Strategy: s, UseGraph: true},
		}
	}
	base := []Options{
		{Strategy: s, UseGraph: true},
		{Strategy: s},
		{Strategy: s, OrderedSets: true},
		{Strategy: s, LiveCheck: true},
		{Strategy: s, LiveCheck: true, Linear: true},
		{Strategy: s, Linear: true},
		{Strategy: s, LiveCheck: true, Linear: true, SplitCriticalEdges: true},
		{Strategy: s, Virtualize: true, UseGraph: true},
		{Strategy: s, Virtualize: true},
		{Strategy: s, Virtualize: true, LiveCheck: true, Linear: true},
	}
	return base
}

func optName(o Options) string {
	n := o.Strategy.String()
	if o.Virtualize {
		n += "+Virt"
	}
	if o.UseGraph {
		n += "+Graph"
	}
	if o.LiveCheck {
		n += "+LiveCheck"
	}
	if o.Linear {
		n += "+Linear"
	}
	if o.OrderedSets {
		n += "+Ordered"
	}
	if o.SplitCriticalEdges {
		n += "+CritSplit"
	}
	return n
}

// runEquiv translates a copy of src with the options and checks observable
// equivalence against the original on several inputs.
func runEquiv(t *testing.T, src string, opt Options, inputs [][]int64) *Stats {
	t.Helper()
	orig := ir.MustParse(src)
	f := ir.MustParse(src)
	st, err := Translate(f, opt)
	if err != nil {
		t.Fatalf("%s: translate: %v\n%s", optName(opt), err, src)
	}
	for _, in := range inputs {
		want, err := interp.Run(orig, in, 100000)
		if err != nil {
			t.Fatalf("reference run failed: %v", err)
		}
		got, err := interp.Run(f, in, 100000)
		if err != nil {
			t.Fatalf("%s: translated run failed: %v\nparams %v\noutput:\n%s", optName(opt), err, in, f)
		}
		if !interp.Equal(want, got) {
			t.Fatalf("%s: behaviour differs on %v:\nwant ret=%v trace=%v\ngot  ret=%v trace=%v\noutput:\n%s",
				optName(opt), in, want.Ret, want.Trace, got.Ret, got.Trace, f)
		}
	}
	return st
}

var defaultInputs = [][]int64{{0, 0}, {1, 2}, {5, 3}, {-4, 7}, {100, -100}}

// swapSrc is the paper's Figure 3: two φ-functions forming a swap across a
// loop. A naive sequential copy placement miscompiles it.
const swapSrc = `
func swap {
entry:
  a = param 0
  b = param 1
  zero = const 0
  jump loop
loop:
  a2 = phi entry:a loop:b2
  b2 = phi entry:b loop:a2
  p = phi entry:zero loop:p2
  one = const 1
  p2 = add p one
  three = const 3
  c = cmplt p2 three
  print a2
  print b2
  br c loop exit
exit:
  ret a2
}
`

// lostCopySrc is the paper's Figure 4: the φ result is live out of the loop
// while its argument is redefined inside — dropping the copy loses a value.
const lostCopySrc = `
func lostcopy {
entry:
  x1 = param 0
  zero = const 0
  jump loop
loop:
  x2 = phi entry:x1 loop:x3
  one = const 1
  x3 = add x2 one
  ten = const 10
  c = cmplt x3 ten
  br c loop exit
exit:
  print x2
  ret x2
}
`

// figure1Src reproduces Figure 1: u is used by the branch of B2, so the
// copy inserted before the branch still interferes with u. An
// implementation that only checks live-out sets generates wrong code.
const figure1Src = `
func fig1 {
entry:
  u = param 0
  v = param 1
  c = cmplt u v
  br c b1 b2
b1:
  jump b0
b2:
  br u b3 b0
b3:
  print u
  ret u
b0:
  w = phi b1:u b2:v
  print w
  ret w
}
`

// figure2Src reproduces Figure 2: the loop counter is decremented by the
// branch itself (Br_dec); its φ argument is the terminator-defined value,
// which forces edge splitting.
const figure2Src = `
func fig2 {
entry:
  u0 = param 0
  t0 = copy u0
  jump b1
b1:
  u1 = phi entry:u0 b1:u2
  t1 = phi entry:t0 b1:t2
  five = const 5
  t2 = add t1 five
  u2 = brdec u1 b1 b2
b2:
  print u2
  print t1
  ret t2
}
`

func TestSwapProblem(t *testing.T) {
	for _, s := range Strategies {
		for _, opt := range allOptions(s) {
			st := runEquiv(t, swapSrc, opt, defaultInputs)
			if st.FinalCopies == 0 {
				t.Errorf("%s: swap needs at least one copy sequence", optName(opt))
			}
		}
	}
}

func TestLostCopyProblem(t *testing.T) {
	for _, s := range Strategies {
		for _, opt := range allOptions(s) {
			st := runEquiv(t, lostCopySrc, opt, defaultInputs)
			// The copy between x2 and x3 cannot be coalesced: they
			// interfere (Figure 4c). At least one copy must remain under
			// every strategy.
			if st.FinalCopies == 0 {
				t.Errorf("%s: lost-copy requires a remaining copy", optName(opt))
			}
		}
	}
}

func TestFigure1BranchUses(t *testing.T) {
	for _, s := range Strategies {
		for _, opt := range allOptions(s) {
			runEquiv(t, figure1Src, opt, [][]int64{{0, 0}, {0, 1}, {1, 0}, {2, 5}, {5, 2}})
		}
	}
}

func TestFigure2BrDec(t *testing.T) {
	for _, s := range Strategies {
		for _, opt := range allOptions(s) {
			st := runEquiv(t, figure2Src, opt, [][]int64{{1, 0}, {2, 0}, {5, 0}})
			if st.SplitEdges == 0 {
				t.Errorf("%s: Br_dec φ argument must force an edge split", optName(opt))
			}
		}
	}
}

// TestGeneratedEquivalence is the main correctness property: on generated
// workloads, every strategy × machinery combination must preserve
// observable behaviour exactly.
func TestGeneratedEquivalence(t *testing.T) {
	prof := cfggen.DefaultProfile("equiv", 42)
	prof.Funcs = 8
	funcs := cfggen.Generate(prof)
	inputs := [][]int64{{0, 0}, {3, 1}, {-2, 9}, {17, 17}}
	strategies := append(append([]Strategy(nil), Strategies...), Optimistic)
	for fi, f := range funcs {
		src := f.String()
		for _, s := range strategies {
			for _, opt := range allOptions(s) {
				t.Run(fmt.Sprintf("f%d/%s", fi, optName(opt)), func(t *testing.T) {
					runEquiv(t, src, opt, inputs)
				})
			}
		}
	}
}

// TestGeneratedEquivalenceDeep soaks many more seeds with the two most
// important configurations; skipped with -short.
func TestGeneratedEquivalenceDeep(t *testing.T) {
	if testing.Short() {
		t.Skip("deep soak skipped in -short mode")
	}
	inputs := [][]int64{{0, 0}, {7, -3}, {25, 4}}
	for seed := int64(0); seed < 12; seed++ {
		prof := cfggen.DefaultProfile("soak", 5000+seed)
		prof.Funcs = 5
		for _, f := range cfggen.Generate(prof) {
			src := f.String()
			runEquiv(t, src, Options{Strategy: Sharing, Linear: true, LiveCheck: true}, inputs)
			runEquiv(t, src, Options{Strategy: SreedharIII, Virtualize: true, UseGraph: true, OrderedSets: true}, inputs)
		}
	}
}

// TestTranslatedHasNoPhis checks the output is standard code.
func TestTranslatedHasNoPhis(t *testing.T) {
	funcs := cfggen.Generate(cfggen.DefaultProfile("nophi", 7))
	for _, f := range funcs {
		if _, err := Translate(f, Options{Strategy: Value, Linear: true, LiveCheck: true}); err != nil {
			t.Fatal(err)
		}
		for _, b := range f.Blocks {
			if len(b.Phis) != 0 {
				t.Fatalf("φ left in %s of %s", b.Name, f.Name)
			}
			for _, in := range b.Instrs {
				if in.Op == ir.OpParCopy {
					t.Fatalf("parallel copy left in %s of %s", b.Name, f.Name)
				}
			}
		}
	}
}

// TestOptimisticStrategy: the Budimlić-style extension must preserve
// semantics and land in the same quality neighbourhood as Value.
func TestOptimisticStrategy(t *testing.T) {
	prof := cfggen.DefaultProfile("opti", 424)
	prof.Funcs = 6
	inputs := [][]int64{{0, 0}, {5, 2}, {-7, 3}}
	totalOpt, totalVal := 0, 0
	for _, f := range cfggen.Generate(prof) {
		src := f.String()
		st := runEquiv(t, src, Options{Strategy: Optimistic, LiveCheck: true}, inputs)
		sv := runEquiv(t, src, Options{Strategy: Value, LiveCheck: true, Linear: true}, inputs)
		totalOpt += st.RemainingCopies
		totalVal += sv.RemainingCopies
	}
	if totalOpt > 2*totalVal+4 {
		t.Fatalf("optimistic left %d copies vs Value's %d — de-coalescing too eager", totalOpt, totalVal)
	}
	badOpt := Options{Strategy: Optimistic, Virtualize: true}
	if err := badOpt.Validate(); err == nil {
		t.Fatal("Optimistic+Virtualize must be rejected")
	}
}

// TestOrderedSetsAndCriticalSplitOptions: the liveness-set backend and the
// critical-edge pre-split must not change observable behaviour.
func TestOrderedSetsAndCriticalSplitOptions(t *testing.T) {
	prof := cfggen.DefaultProfile("optmatrix", 99)
	prof.Funcs = 5
	inputs := [][]int64{{0, 0}, {6, 2}}
	opts := []Options{
		{Strategy: Value, OrderedSets: true},
		{Strategy: Value, OrderedSets: true, UseGraph: true},
		{Strategy: Sharing, Linear: true, SplitCriticalEdges: true, LiveCheck: true},
		{Strategy: SreedharIII, Virtualize: true, UseGraph: true, OrderedSets: true},
	}
	for _, f := range cfggen.Generate(prof) {
		src := f.String()
		for _, opt := range opts {
			runEquiv(t, src, opt, inputs)
		}
	}
}

// TestKeepParallelCopies: with sequentialization disabled, remaining copies
// stay as OpParCopy instructions.
func TestKeepParallelCopies(t *testing.T) {
	f := ir.MustParse(swapSrc)
	st, err := Translate(f, Options{Strategy: Value, Linear: true, LiveCheck: true, KeepParallelCopies: true})
	if err != nil {
		t.Fatal(err)
	}
	par := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpParCopy {
				par += len(in.Defs)
			}
		}
	}
	if par == 0 || par != st.RemainingCopies {
		t.Fatalf("parallel pairs %d must match remaining copies %d", par, st.RemainingCopies)
	}
	if st.FinalCopies != 0 {
		t.Fatal("no sequential copies expected in parallel mode")
	}
}

// TestStatsConsistency: sequential copies = remaining parallel pairs plus
// cycle breakers minus shared-removed... the rewrite drops self pairs, so
// FinalCopies = RemainingCopies + CycleCopies exactly.
func TestStatsConsistency(t *testing.T) {
	prof := cfggen.DefaultProfile("stats", 123)
	prof.Funcs = 6
	for _, f := range cfggen.Generate(prof) {
		for _, s := range []Strategy{Intersect, Value, Sharing} {
			g := ir.Clone(f)
			st, err := Translate(g, Options{Strategy: s, Linear: true, LiveCheck: true})
			if err != nil {
				t.Fatal(err)
			}
			if st.FinalCopies != st.RemainingCopies+st.CycleCopies {
				t.Fatalf("%s/%s: final %d != remaining %d + cycle %d",
					f.Name, s, st.FinalCopies, st.RemainingCopies, st.CycleCopies)
			}
		}
	}
}

// TestCriticalSplitNeverHurtsQuality: splitting critical edges gives the
// coalescer strictly more freedom (shorter ranges at copy points).
func TestCriticalSplitNeverHurtsQuality(t *testing.T) {
	prof := cfggen.DefaultProfile("csq", 321)
	prof.Funcs = 8
	worse := 0
	for _, f := range cfggen.Generate(prof) {
		a, err := Translate(ir.Clone(f), Options{Strategy: Value, Linear: true, LiveCheck: true})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Translate(ir.Clone(f), Options{Strategy: Value, Linear: true, LiveCheck: true, SplitCriticalEdges: true})
		if err != nil {
			t.Fatal(err)
		}
		if b.RemainingCopies > a.RemainingCopies {
			worse++
		}
	}
	// Not a theorem (weights shift with new blocks), but a regression here
	// would signal broken split handling.
	if worse > 2 {
		t.Fatalf("critical-edge splitting degraded %d of 8 functions", worse)
	}
}

// TestPhiFreeFunctionIsUntouched: a function without φs or copies needs no
// work; the translator must pass it through unchanged (modulo verification).
func TestPhiFreeFunctionIsUntouched(t *testing.T) {
	src := `
func plain {
entry:
  a = param 0
  b = add a a
  print b
  ret b
}
`
	f := ir.MustParse(src)
	before := f.String()
	st, err := Translate(f, Options{Strategy: Sharing, Linear: true, LiveCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	if f.String() != before {
		t.Fatalf("φ-free function changed:\n%s", f)
	}
	if st.Affinities != 0 || st.FinalCopies != 0 {
		t.Fatalf("no work expected: %+v", st)
	}
}

// TestTranslateDeterminism: the translator must be a pure function of its
// input and options — the benchmark harness depends on it.
func TestTranslateDeterminism(t *testing.T) {
	prof := cfggen.DefaultProfile("det", 77)
	prof.Funcs = 4
	for _, f := range cfggen.Generate(prof) {
		for _, opt := range []Options{
			{Strategy: Sharing, Linear: true, LiveCheck: true},
			{Strategy: SreedharIII, Virtualize: true, UseGraph: true},
		} {
			a, b := ir.Clone(f), ir.Clone(f)
			if _, err := Translate(a, opt); err != nil {
				t.Fatal(err)
			}
			if _, err := Translate(b, opt); err != nil {
				t.Fatal(err)
			}
			if a.String() != b.String() {
				t.Fatalf("%s/%s: nondeterministic output", f.Name, optName(opt))
			}
		}
	}
}
