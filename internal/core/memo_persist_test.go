package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/faults"
	"repro/internal/ir"
)

// translateInto runs the full translation on f under opt, storing into
// memo, and returns the translated function.
func translateInto(t *testing.T, memo *Memo, src string, opt Options) *ir.Func {
	t.Helper()
	f := ir.MustParse(src)
	key := MemoKeyFor(f, opt)
	inVars := len(f.Vars)
	tr, err := NewTranslation(f, opt, analysis.NewCache(f))
	if err != nil {
		t.Fatal(err)
	}
	for _, phase := range []func() error{tr.Insert, tr.Analyze, tr.Coalesce, tr.Rewrite} {
		if err := phase(); err != nil {
			t.Fatal(err)
		}
	}
	memo.Store(key, f, inVars, tr.Stats, tr.CoalesceResult().Statuses)
	return f
}

// persistSrc2 differs structurally (extra print), not just by name: memo
// keys are structural fingerprints, so a rename alone would collide.
var persistSrc2 = strings.Replace(strings.Replace(persistSrc,
	"func loop", "func loop2", 1), "print i", "print n\n  print i", 1)

const persistSrc = `
func loop {
entry:
  n = param 0
  i0 = const 0
  jump head
head:
  i = phi entry:i0 body:i2
  c = cmplt i n
  br c body exit
body:
  one = const 1
  i2 = add i one
  jump head
exit:
  print i
  ret i
}
`

func TestMemoSnapshotRoundTrip(t *testing.T) {
	opt := Options{Strategy: Sharing, Linear: true, LiveCheck: true}
	src := ir.MustParse(persistSrc)

	memo := NewMemo(16, 0)
	want := translateInto(t, memo, persistSrc, opt)

	var buf bytes.Buffer
	if err := memo.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}

	fresh := NewMemo(16, 0)
	loaded, skipped, err := fresh.LoadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded != 1 || skipped != 0 {
		t.Fatalf("loaded %d skipped %d, want 1/0", loaded, skipped)
	}
	if st := fresh.Stats(); st.Entries != 1 || st.Bytes <= 0 {
		t.Fatalf("stats after load: %+v", st)
	}

	// The reloaded entry must materialize into a fresh parse of the same
	// input exactly as the original entry would.
	key := MemoKeyFor(src, opt)
	e := fresh.Lookup(key)
	if e == nil {
		t.Fatal("reloaded memo missed on the original key")
	}
	g := ir.MustParse(persistSrc)
	st, _ := e.Materialize(g, nil)
	if st.RemainingCopies != 0 && st.Blocks == 0 {
		t.Fatalf("materialized stats look empty: %+v", st)
	}
	if g.String() != want.String() {
		t.Fatalf("materialized output differs:\n--- got\n%s\n--- want\n%s", g, want)
	}
	if len(e.Statuses()) == 0 {
		t.Fatal("statuses lost in round trip")
	}
}

func TestMemoSnapshotRecencyOrder(t *testing.T) {
	opt := Options{Strategy: Sharing, Linear: true, LiveCheck: true}
	memo := NewMemo(16, 0)
	translateInto(t, memo, persistSrc, opt)
	translateInto(t, memo, persistSrc2, opt)

	var buf bytes.Buffer
	if err := memo.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	// Reload into a memo that only holds one entry: the newest must win.
	small := NewMemo(1, 0)
	loaded, _, err := small.LoadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded != 2 {
		t.Fatalf("loaded %d, want 2", loaded)
	}
	st := small.Stats()
	if st.Entries != 1 || st.Evictions != 1 {
		t.Fatalf("bounded load stats: %+v", st)
	}
	f2 := ir.MustParse(persistSrc2)
	if small.Lookup(MemoKeyFor(f2, opt)) == nil {
		t.Fatal("newest entry was evicted instead of the oldest")
	}
}

func TestMemoLoadToleratesTornTail(t *testing.T) {
	opt := Options{Strategy: Sharing, Linear: true, LiveCheck: true}
	memo := NewMemo(16, 0)
	translateInto(t, memo, persistSrc, opt)
	translateInto(t, memo, persistSrc2, opt)

	var buf bytes.Buffer
	if err := memo.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Tear the final line in half, as a crash mid-write would.
	torn := data[:len(data)-40]

	fresh := NewMemo(16, 0)
	loaded, skipped, err := fresh.LoadSnapshot(bytes.NewReader(torn))
	if err != nil {
		t.Fatal(err)
	}
	if loaded != 1 || skipped != 1 {
		t.Fatalf("loaded %d skipped %d, want 1/1", loaded, skipped)
	}

	// A corrupted middle line is likewise skipped, not fatal.
	lines := bytes.Split(bytes.TrimSuffix(data, []byte("\n")), []byte("\n"))
	lines[1] = []byte(`{"key":{"FPHi":1},"in_vars":99,"func":{"name":"x","blocks":[]}}`)
	fresh2 := NewMemo(16, 0)
	loaded, skipped, err = fresh2.LoadSnapshot(bytes.NewReader(append(bytes.Join(lines, []byte("\n")), '\n')))
	if err != nil {
		t.Fatal(err)
	}
	if loaded != 1 || skipped != 1 {
		t.Fatalf("corrupt middle: loaded %d skipped %d, want 1/1", loaded, skipped)
	}
}

func TestMemoLoadRejectsBadHeader(t *testing.T) {
	memo := NewMemo(16, 0)
	for _, in := range []string{
		"",
		"not json\n",
		`{"format":"ssad-memo","version":99}` + "\n",
		`{"format":"other","version":1}` + "\n",
	} {
		if _, _, err := memo.LoadSnapshot(strings.NewReader(in)); err == nil {
			t.Errorf("LoadSnapshot(%q) succeeded, want header error", in)
		}
	}
}

func TestMemoStoreFailpointDropsEntry(t *testing.T) {
	defer faults.Disable()
	if err := faults.Enable("memo.store=err", 1); err != nil {
		t.Fatal(err)
	}
	opt := Options{Strategy: Sharing, Linear: true, LiveCheck: true}
	memo := NewMemo(16, 0)
	translateInto(t, memo, persistSrc, opt)
	if st := memo.Stats(); st.Entries != 0 {
		t.Fatalf("store fault did not drop the entry: %+v", st)
	}
}

func TestMemoMaterializeFailpointActsAsMiss(t *testing.T) {
	defer faults.Disable()
	opt := Options{Strategy: Sharing, Linear: true, LiveCheck: true}
	memo := NewMemo(16, 0)
	translateInto(t, memo, persistSrc, opt)
	key := MemoKeyFor(ir.MustParse(persistSrc), opt)
	if memo.Lookup(key) == nil {
		t.Fatal("expected a hit before arming the failpoint")
	}
	if err := faults.Enable("memo.materialize=err", 1); err != nil {
		t.Fatal(err)
	}
	if memo.Lookup(key) != nil {
		t.Fatal("materialize fault did not force a miss")
	}
	faults.Disable()
	st := memo.Stats()
	if st.Misses < 1 || st.Hits < 1 {
		t.Fatalf("miss/hit accounting wrong: %+v", st)
	}
}
