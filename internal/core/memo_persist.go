package core

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/coalesce"
	"repro/internal/ir"
)

// Memo persistence: a versioned NDJSON stream so a daemon restart does not
// start from a cold memo (the PR 8 follow-up). Line one is the header;
// every following line is one entry, written oldest→newest so reloading
// rebuilds the LRU recency order. The format shares the bench/store
// posture toward corruption: a torn tail or a damaged line is skipped and
// counted, never fatal — losing one cached translation costs a re-compute,
// losing the whole file on every crash would make persistence useless.
//
// The function payload uses ir.EncodeJSON, not the textual form: Parse
// assigns VarIDs by first appearance, which can permute the variable
// universe and silently break Materialize's prefix-identity contract.

// memoFormat/memoVersion identify the snapshot format. Bump the version on
// any incompatible change; Load rejects mismatches outright (a wrong-format
// file is operator error, not tail corruption).
const (
	memoFormat  = "ssad-memo"
	memoVersion = 1
)

type memoHeaderJSON struct {
	Format  string `json:"format"`
	Version int    `json:"version"`
	Entries int    `json:"entries"`
}

type memoEntryJSON struct {
	Key      MemoKey         `json:"key"`
	InVars   int             `json:"in_vars"`
	Stats    Stats           `json:"stats"`
	Statuses []uint8         `json:"statuses,omitempty"`
	Func     json.RawMessage `json:"func"`
}

// Snapshot writes every entry to w in the versioned NDJSON form. Entries
// stream oldest-first so Load restores recency; the memo lock is held for
// the duration, so snapshot on drain, not under traffic.
func (m *Memo) Snapshot(w io.Writer) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(memoHeaderJSON{Format: memoFormat, Version: memoVersion, Entries: m.lru.Len()}); err != nil {
		return err
	}
	for el := m.lru.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*MemoEntry)
		fn, err := ir.EncodeJSON(e.out)
		if err != nil {
			return fmt.Errorf("memo snapshot: encode %q: %w", e.out.Name, err)
		}
		rec := memoEntryJSON{
			Key:    e.key,
			InVars: e.inVars,
			Stats:  e.stats,
			Func:   fn,
		}
		if len(e.statuses) > 0 {
			rec.Statuses = make([]uint8, len(e.statuses))
			for i, s := range e.statuses {
				rec.Statuses[i] = uint8(s)
			}
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadSnapshot reads a Snapshot stream into the memo, returning how many
// entries were installed and how many damaged lines were skipped. A
// missing or wrong-versioned header is an error; per-line damage (torn
// tail, corrupted entry, function that fails structural verification) is
// tolerated and counted. Loaded entries respect the memo's bounds, so
// loading a snapshot from a larger memo simply evicts from the old tail.
func (m *Memo) LoadSnapshot(r io.Reader) (loaded, skipped int, err error) {
	br := bufio.NewReader(r)
	headerLine, err := readLine(br)
	if err != nil {
		return 0, 0, fmt.Errorf("memo load: reading header: %w", err)
	}
	var hdr memoHeaderJSON
	if err := json.Unmarshal(headerLine, &hdr); err != nil {
		return 0, 0, fmt.Errorf("memo load: bad header: %w", err)
	}
	if hdr.Format != memoFormat || hdr.Version != memoVersion {
		return 0, 0, fmt.Errorf("memo load: format %q v%d, want %q v%d",
			hdr.Format, hdr.Version, memoFormat, memoVersion)
	}
	for {
		line, rerr := readLine(br)
		if len(line) > 0 {
			if e := decodeMemoEntry(line); e != nil {
				m.install(e)
				loaded++
			} else {
				skipped++
			}
		}
		if rerr == io.EOF {
			return loaded, skipped, nil
		}
		if rerr != nil {
			return loaded, skipped, rerr
		}
	}
}

// readLine returns the next line without its newline. A final unterminated
// line comes back alongside io.EOF — the torn-tail case the caller skips.
func readLine(br *bufio.Reader) ([]byte, error) {
	line, err := br.ReadBytes('\n')
	if n := len(line); n > 0 && line[n-1] == '\n' {
		line = line[:n-1]
	}
	return line, err
}

// decodeMemoEntry parses and validates one snapshot line, returning nil on
// any damage.
func decodeMemoEntry(line []byte) *MemoEntry {
	var rec memoEntryJSON
	if err := json.Unmarshal(line, &rec); err != nil {
		return nil
	}
	out, err := ir.DecodeJSON(rec.Func)
	if err != nil {
		return nil
	}
	if rec.InVars < 0 || rec.InVars > len(out.Vars) {
		return nil
	}
	e := &MemoEntry{
		key:    rec.Key,
		out:    out,
		stats:  rec.Stats,
		inVars: rec.InVars,
	}
	e.stats.InsertNanos, e.stats.AnalyzeNanos = 0, 0
	e.stats.CoalesceNanos, e.stats.RewriteNanos = 0, 0
	if len(rec.Statuses) > 0 {
		e.statuses = make([]coalesce.Status, len(rec.Statuses))
		for i, s := range rec.Statuses {
			e.statuses[i] = coalesce.Status(s)
		}
	}
	e.size = approxFuncBytes(out) + int64(len(e.statuses))
	return e
}
