package core

import (
	"container/list"
	"sync"

	"repro/internal/coalesce"
	"repro/internal/faults"
	"repro/internal/ir"
)

// Failpoints. Both degrade gracefully by design: a store fault drops the
// entry (the translation result is still returned), a materialize fault
// turns a hit into a miss (the caller translates from scratch). Chaos runs
// verify that neither corrupts results — the memo is an accelerator, never
// a correctness dependency.
var (
	fpStore       = faults.Register("memo.store")
	fpMaterialize = faults.Register("memo.materialize")
)

// Memo is a concurrency-safe, bounded store of completed translations,
// keyed by the input function's structural fingerprint plus an options
// fingerprint. On a hit the stored output is materialized into the caller's
// function with the zero-alloc ir.CloneInto and the caller's variable
// identities (names, register pins, derivation links) are restored over the
// original universe prefix, so a memoized result is bit-identical to a
// fresh translation of the same input modulo the display names of
// translation-minted blocks.
//
// Determinism across sharers: translation decisions depend only on function
// structure (names never feed them), so two workers that race to translate
// structurally identical inputs store identical entries — Store is
// idempotent on an existing key and the winner is irrelevant.
//
// Eviction is LRU, bounded both by entry count and by an approximate byte
// budget of the retained output functions.
type Memo struct {
	mu         sync.Mutex
	entries    map[MemoKey]*list.Element
	lru        list.List // front = most recent; values are *memoEnt
	maxEntries int
	maxBytes   int64

	bytes     int64
	hits      uint64
	misses    uint64
	evictions uint64
}

// MemoKey identifies one translation: the two fingerprint lanes of the
// input plus the packed options word.
type MemoKey struct {
	FPHi, FPLo uint64
	Opt        uint64
}

// MemoKeyFor derives the memo key of translating f under opt.
func MemoKeyFor(f *ir.Func, opt Options) MemoKey {
	fp := f.Fingerprint()
	return MemoKey{FPHi: fp.Hi, FPLo: fp.Lo, Opt: optionsWord(opt)}
}

// optionsWord packs every Options field that can influence the translated
// output or its reported statistics into one word. ReferenceQueries and
// ReferenceAlloc never change results, but they do change the measured
// footprint/instrumentation fields the differential oracles compare, so
// they key separately too.
func optionsWord(o Options) uint64 {
	w := uint64(o.Strategy) & 0xf
	set := func(bit uint, v bool) {
		if v {
			w |= 1 << (4 + bit)
		}
	}
	set(0, o.Virtualize)
	set(1, o.UseGraph)
	set(2, o.LiveCheck)
	set(3, o.Linear)
	set(4, o.OrderedSets)
	set(5, o.SplitCriticalEdges)
	set(6, o.KeepParallelCopies)
	set(7, o.ReferenceQueries)
	set(8, o.ReferenceAlloc)
	return w
}

// MemoEntry is one stored translation. It is immutable after Store;
// concurrent Materialize calls only read it.
type MemoEntry struct {
	key      MemoKey
	out      *ir.Func // private clone of the translated output
	stats    Stats    // value copy; per-phase nanos zeroed
	statuses []coalesce.Status
	inVars   int // size of the input's variable universe at key time
	size     int64
}

// Statuses returns the per-affinity coalescing decisions of the stored
// translation (the Figure 5 accounting), for differential comparison
// against an uncached run.
func (e *MemoEntry) Statuses() []coalesce.Status { return e.statuses }

// MemoStats is a point-in-time snapshot of a Memo's counters.
type MemoStats struct {
	Hits, Misses, Evictions uint64
	Entries                 int
	Bytes                   int64
}

// Memo size defaults, used when a caller passes 0 for a bound.
const (
	DefaultMemoEntries = 4096
	DefaultMemoBytes   = 256 << 20
)

// NewMemo returns a memo bounded to maxEntries entries and maxBytes of
// retained output (approximate). Zero selects the default for either
// bound; negative disables that bound.
func NewMemo(maxEntries int, maxBytes int64) *Memo {
	if maxEntries == 0 {
		maxEntries = DefaultMemoEntries
	}
	if maxBytes == 0 {
		maxBytes = DefaultMemoBytes
	}
	return &Memo{
		entries:    map[MemoKey]*list.Element{},
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
	}
}

// Lookup returns the stored entry for key, or nil, counting a hit or miss.
func (m *Memo) Lookup(key MemoKey) *MemoEntry {
	m.mu.Lock()
	defer m.mu.Unlock()
	el, ok := m.entries[key]
	if !ok {
		m.misses++
		return nil
	}
	if err := fpMaterialize.Inject(); err != nil {
		m.misses++
		return nil
	}
	m.hits++
	m.lru.MoveToFront(el)
	return el.Value.(*MemoEntry)
}

// Store records the translated output of the function keyed by key: f must
// be the post-translation state, inVars the input's variable-universe size
// when the key was derived (translation only appends variables), st the
// final statistics and statuses the coalescing decisions. The output is
// cloned into private storage; f is not retained. Storing an existing key
// refreshes its recency and changes nothing else — concurrent duplicate
// misses store identical entries, so first-wins is deterministic.
func (m *Memo) Store(key MemoKey, f *ir.Func, inVars int, st *Stats, statuses []coalesce.Status) {
	if err := fpStore.Inject(); err != nil {
		return // injected store fault: drop the entry, keep the result
	}
	out := ir.Clone(f)
	e := &MemoEntry{
		key:      key,
		out:      out,
		stats:    *st,
		statuses: append([]coalesce.Status(nil), statuses...),
		inVars:   inVars,
		size:     approxFuncBytes(out) + int64(len(statuses)),
	}
	e.stats.InsertNanos, e.stats.AnalyzeNanos = 0, 0
	e.stats.CoalesceNanos, e.stats.RewriteNanos = 0, 0
	m.install(e)
}

// install adds a fully-built entry under the memo's bounds: existing keys
// only get a recency refresh, and the LRU tail is evicted until both
// budgets hold. Shared by Store and the snapshot loader.
func (m *Memo) install(e *MemoEntry) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if el, ok := m.entries[e.key]; ok {
		m.lru.MoveToFront(el)
		return
	}
	m.entries[e.key] = m.lru.PushFront(e)
	m.bytes += e.size
	for (m.maxEntries > 0 && m.lru.Len() > m.maxEntries) ||
		(m.maxBytes > 0 && m.bytes > m.maxBytes && m.lru.Len() > 1) {
		back := m.lru.Back()
		victim := back.Value.(*MemoEntry)
		m.lru.Remove(back)
		delete(m.entries, victim.key)
		m.bytes -= victim.size
		m.evictions++
	}
}

// Materialize overwrites f with the stored translated output, preserving
// f's name and the identities (name, register pin, derivation base) of the
// original variable-universe prefix, and returns a private copy of the
// stored statistics (phase nanos zero: no phases ran). varBuf is optional
// reusable scratch for the identity snapshot; the possibly-grown buffer is
// returned for the caller to keep.
//
// Translation never removes or reorders variables, and renaming picks class
// representatives by ID, so the stored output's structure is exactly what
// translating f would produce; only display names of variables the stored
// input minted during translation (and block names) come from the
// first-stored input. Comparisons (Equivalent, statuses, metrics) are
// name-insensitive.
func (e *MemoEntry) Materialize(f *ir.Func, varBuf []ir.Var) (*Stats, []ir.Var) {
	if cap(varBuf) < e.inVars {
		varBuf = make([]ir.Var, e.inVars)
	}
	varBuf = varBuf[:e.inVars]
	for i := range varBuf {
		varBuf[i] = *f.Vars[i]
	}
	name := f.Name
	ir.CloneInto(f, e.out)
	f.Name = name
	for i := range varBuf {
		*f.Vars[i] = varBuf[i]
	}
	st := e.stats
	return &st, varBuf
}

// Stats snapshots the memo's counters.
func (m *Memo) Stats() MemoStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return MemoStats{
		Hits:      m.hits,
		Misses:    m.misses,
		Evictions: m.evictions,
		Entries:   m.lru.Len(),
		Bytes:     m.bytes,
	}
}

// approxFuncBytes estimates the retained footprint of a stored output
// function for the byte budget: operands, instruction and variable
// records, and block structure. An estimate is enough — the budget guards
// against unbounded growth, not exact accounting.
func approxFuncBytes(f *ir.Func) int64 {
	const (
		varBytes   = 48
		instrBytes = 64
		blockBytes = 96
	)
	n := int64(len(f.Vars))*varBytes + int64(len(f.Blocks))*blockBytes
	for _, b := range f.Blocks {
		n += int64(len(b.Phis)+len(b.Instrs)) * instrBytes
		for _, in := range b.Phis {
			n += int64(len(in.Defs)+len(in.Uses)) * 4
		}
		for _, in := range b.Instrs {
			n += int64(len(in.Defs)+len(in.Uses)) * 4
		}
		n += int64(len(b.Preds)+len(b.Succs)) * 8
	}
	return n
}
