package core

import (
	"testing"

	"repro/internal/interp"
	"repro/internal/ir"
)

// naiveEliminatePhis performs the translation Cytron et al. proposed and
// the paper dissects in Section II: replace a k-input φ-function by k
// ordinary assignments, one at the end of each predecessor, with no
// φ-result splitting and no parallel-copy semantics. Briggs et al. showed
// this miscompiles the swap and lost-copy problems; this file proves our
// interpreter oracle catches exactly that, i.e. the positive tests in
// core_test.go are capable of failing.
func naiveEliminatePhis(f *ir.Func) {
	for _, b := range f.Blocks {
		for _, phi := range b.Phis {
			for i, arg := range phi.Uses {
				pred := b.Preds[i]
				cp := &ir.Instr{Op: ir.OpCopy, Defs: []ir.VarID{phi.Defs[0]}, Uses: []ir.VarID{arg}}
				ir.InsertBefore(pred, ir.CopyInsertIndex(pred), cp)
			}
		}
		b.Phis = nil
	}
}

func naiveMiscompiles(t *testing.T, src string, inputs [][]int64) bool {
	t.Helper()
	orig := ir.MustParse(src)
	f := ir.MustParse(src)
	naiveEliminatePhis(f)
	if err := ir.Verify(f); err != nil {
		t.Fatalf("naive translation must at least be structurally valid: %v", err)
	}
	for _, in := range inputs {
		want, err := interp.Run(orig, in, 100000)
		if err != nil {
			t.Fatal(err)
		}
		got, err := interp.Run(f, in, 100000)
		if err != nil {
			return true // e.g. diverges or reads garbage
		}
		if !interp.Equal(want, got) {
			return true
		}
	}
	return false
}

func TestNaiveTranslationLosesTheSwap(t *testing.T) {
	if !naiveMiscompiles(t, swapSrc, defaultInputs) {
		t.Fatal("sequential copies at predecessor ends must break the swap problem")
	}
}

func TestNaiveTranslationLosesTheCopy(t *testing.T) {
	if !naiveMiscompiles(t, lostCopySrc, defaultInputs) {
		t.Fatal("the lost-copy problem must defeat the naive translation")
	}
}

// TestNaiveWorksOnCSSA: on code fresh out of SSA construction (which is
// conventional), even the naive scheme happens to be correct — the paper's
// point is that SSA optimizations break this, not that the naive scheme
// never works.
func TestNaiveWorksOnCSSA(t *testing.T) {
	src := `
func cssa {
entry:
  a = param 0
  b = param 1
  c = cmplt a b
  br c l r
l:
  x1 = add a b
  jump j
r:
  x2 = sub a b
  jump j
j:
  x = phi l:x1 r:x2
  print x
  ret x
}
`
	if naiveMiscompiles(t, src, defaultInputs) {
		t.Fatal("a conventional diamond must survive even the naive translation")
	}
}
