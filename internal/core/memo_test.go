package core

import (
	"testing"

	"repro/internal/ir"
)

const memoSrc = `
func m {
entry:
  x = param 0
  y = param 1
  c = cmplt x y
  br c a b
a:
  s = add x y
  jump join
b:
  d = sub x y
  jump join
join:
  r = phi a:s b:d
  print r
  ret r
}
`

func memoTranslate(t *testing.T, f *ir.Func, opt Options) *Stats {
	t.Helper()
	st, err := Translate(f, opt)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestMemoRoundTrip: store a translation, look it up under the same key,
// materialize into a fresh copy of the input — structure identical to the
// stored output, stats identical modulo phase nanos, input var identities
// (names, pins) restored.
func TestMemoRoundTrip(t *testing.T) {
	opt := Options{Strategy: Sharing, Linear: true, LiveCheck: true}
	in := ir.MustParse(memoSrc)
	in.Vars[0].Reg = "R7" // a pin that must survive materialization

	work := ir.Clone(in)
	key := MemoKeyFor(work, opt)
	inVars := len(work.Vars)
	st := memoTranslate(t, work, opt)

	m := NewMemo(0, 0)
	if m.Lookup(key) != nil {
		t.Fatal("lookup on an empty memo hit")
	}
	m.Store(key, work, inVars, st, nil)
	e := m.Lookup(key)
	if e == nil {
		t.Fatal("stored entry not found")
	}
	ms := m.Stats()
	if ms.Hits != 1 || ms.Misses != 1 || ms.Entries != 1 || ms.Bytes <= 0 {
		t.Fatalf("stats after store+miss+hit: %+v", ms)
	}

	target := ir.Clone(in)
	got, _ := e.Materialize(target, nil)
	if target.String() != work.String() {
		t.Fatalf("materialized function differs from the translated one:\n%s\nvs\n%s", target, work)
	}
	if target.Name != in.Name {
		t.Fatalf("function name not preserved: %q", target.Name)
	}
	if target.Vars[0].Reg != "R7" {
		t.Fatal("input register pin lost through materialization")
	}
	zero := *st
	zero.InsertNanos, zero.AnalyzeNanos, zero.CoalesceNanos, zero.RewriteNanos = 0, 0, 0, 0
	gotv := *got
	if gotv != zero {
		t.Fatalf("materialized stats differ:\n%+v\nvs\n%+v", gotv, zero)
	}
}

// TestMemoKeySeparatesOptions: the same input under different options (and
// different inputs under the same options) must key separately.
func TestMemoKeySeparatesOptions(t *testing.T) {
	f := ir.MustParse(memoSrc)
	a := MemoKeyFor(f, Options{Strategy: Sharing, Linear: true})
	b := MemoKeyFor(f, Options{Strategy: SreedharIII, Virtualize: true})
	c := MemoKeyFor(f, Options{Strategy: Sharing})
	if a == b || a == c || b == c {
		t.Fatalf("option variants collided: %v %v %v", a, b, c)
	}
	g := ir.MustParse(memoSrc)
	g.Entry().Instrs[0].Aux = 1
	g.MarkBlockMutated(g.Entry())
	if MemoKeyFor(g, Options{Strategy: Sharing, Linear: true}) == a {
		t.Fatal("structurally different inputs collided")
	}
}

// TestMemoStoreIdempotent: storing an existing key changes nothing — the
// racing-workers contract.
func TestMemoStoreIdempotent(t *testing.T) {
	opt := Options{Strategy: Sharing, Linear: true, LiveCheck: true}
	in := ir.MustParse(memoSrc)
	work := ir.Clone(in)
	key := MemoKeyFor(work, opt)
	inVars := len(work.Vars)
	st := memoTranslate(t, work, opt)

	m := NewMemo(0, 0)
	m.Store(key, work, inVars, st, nil)
	first := m.Lookup(key)
	m.Store(key, work, inVars, st, nil)
	if m.Lookup(key) != first {
		t.Fatal("duplicate store replaced the entry")
	}
	if ms := m.Stats(); ms.Entries != 1 || ms.Evictions != 0 {
		t.Fatalf("duplicate store changed accounting: %+v", ms)
	}
}

// TestMemoEviction: the entry bound evicts least-recently-used first; a
// touched entry survives over an older untouched one.
func TestMemoEviction(t *testing.T) {
	opt := Options{Strategy: Sharing, Linear: true, LiveCheck: true}
	m := NewMemo(2, -1)

	store := func(aux int64) MemoKey {
		f := ir.MustParse(memoSrc)
		f.Entry().Instrs[0].Aux = aux
		f.MarkBlockMutated(f.Entry())
		key := MemoKeyFor(f, opt)
		inVars := len(f.Vars)
		st := memoTranslate(t, f, opt)
		m.Store(key, f, inVars, st, nil)
		return key
	}

	k1 := store(1)
	k2 := store(2)
	if m.Lookup(k1) == nil { // touch k1: k2 becomes the LRU victim
		t.Fatal("k1 missing before eviction")
	}
	k3 := store(3)
	if m.Lookup(k2) != nil {
		t.Fatal("least-recently-used entry survived eviction")
	}
	if m.Lookup(k1) == nil || m.Lookup(k3) == nil {
		t.Fatal("recently used entries were evicted")
	}
	ms := m.Stats()
	if ms.Evictions != 1 || ms.Entries != 2 {
		t.Fatalf("eviction accounting: %+v", ms)
	}

	// The byte budget bounds too: a tiny budget keeps at most one entry
	// (the floor the eviction loop guarantees).
	mb := NewMemo(-1, 1)
	store2 := func(aux int64) {
		f := ir.MustParse(memoSrc)
		f.Entry().Instrs[0].Aux = aux
		f.MarkBlockMutated(f.Entry())
		key := MemoKeyFor(f, opt)
		inVars := len(f.Vars)
		st := memoTranslate(t, f, opt)
		mb.Store(key, f, inVars, st, nil)
	}
	store2(1)
	store2(2)
	store2(3)
	if ms := mb.Stats(); ms.Entries != 1 || ms.Evictions != 2 {
		t.Fatalf("byte-budget accounting: %+v", ms)
	}
}
