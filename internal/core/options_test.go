package core

import (
	"strings"
	"testing"

	"repro/internal/ir"
)

func mustParse(t *testing.T, src string) *ir.Func {
	t.Helper()
	f, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestOptionsValidate exercises every rejected combination and a spread of
// accepted ones.
func TestOptionsValidate(t *testing.T) {
	cases := []struct {
		name    string
		opt     Options
		wantErr string // substring; empty = accepted
	}{
		{
			name:    "graph needs liveness sets",
			opt:     Options{UseGraph: true, LiveCheck: true},
			wantErr: "UseGraph",
		},
		{
			name:    "ordered sets are a set representation",
			opt:     Options{OrderedSets: true, LiveCheck: true},
			wantErr: "OrderedSets",
		},
		{
			name:    "SreedharIII requires virtualization",
			opt:     Options{Strategy: SreedharIII},
			wantErr: "SreedharIII",
		},
		{
			name:    "optimistic de-coalescing cannot be virtualized",
			opt:     Options{Strategy: Optimistic, Virtualize: true},
			wantErr: "Optimistic",
		},
		{name: "zero value", opt: Options{}},
		{name: "paper recommended", opt: Options{Strategy: Value, Linear: true, LiveCheck: true}},
		{name: "baseline", opt: Options{Strategy: SreedharIII, Virtualize: true, UseGraph: true, OrderedSets: true}},
		{name: "virtualized live check", opt: Options{Strategy: Value, Virtualize: true, LiveCheck: true}},
		{name: "optimistic plain", opt: Options{Strategy: Optimistic}},
		{name: "graph with ordered sets", opt: Options{Strategy: Chaitin, UseGraph: true, OrderedSets: true}},
		{name: "split critical edges", opt: Options{Strategy: Sharing, LiveCheck: true, SplitCriticalEdges: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.opt.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Validate() accepted invalid options %+v", tc.opt)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate() error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestTranslateRejectsInvalidOptions: the entry points refuse invalid
// option combinations before touching the function.
func TestTranslateRejectsInvalidOptions(t *testing.T) {
	if _, err := NewTranslation(nil, Options{UseGraph: true, LiveCheck: true}, nil); err == nil {
		t.Fatal("NewTranslation accepted invalid options")
	}
	if _, err := Translate(nil, Options{Strategy: SreedharIII}); err == nil {
		t.Fatal("Translate accepted invalid options")
	}
}

// TestTranslationPhaseOrder: phases must run in order, exactly once.
func TestTranslationPhaseOrder(t *testing.T) {
	f := mustParse(t, `
func order {
entry:
  x = param 0
  ret x
}
`)
	tr, err := NewTranslation(f, Options{Strategy: Value, Linear: true, LiveCheck: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Analyze(); err == nil {
		t.Fatal("Analyze before Insert must fail")
	}
	if err := tr.Insert(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(); err == nil {
		t.Fatal("second Insert must fail")
	}
	if err := tr.Rewrite(); err == nil {
		t.Fatal("Rewrite before Analyze/Coalesce must fail")
	}
	if err := tr.Analyze(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Coalesce(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Rewrite(); err != nil {
		t.Fatal(err)
	}
}
