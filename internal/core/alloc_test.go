package core

import (
	"testing"

	"repro/internal/cfggen"
	"repro/internal/ir"
)

// midSizeFunc returns a deterministic mid-size SSA function (a few hundred
// blocks, dense φ pressure) for the steady-state allocation tests.
func midSizeFunc(t testing.TB) *ir.Func {
	t.Helper()
	fns := cfggen.GenerateLarge(cfggen.LargeTranslateProfile("alloc", 4242, 0.2))
	if len(fns) == 0 {
		t.Fatal("empty corpus")
	}
	return fns[0]
}

// TestTranslateSteadyStateAllocs: after warm-up, a pooled batch translation
// — CloneInto of a pristine template plus TranslateInto with a reused
// Scratch — of a mid-size function stays under a small fixed allocation
// bound, for both liveness-set backends. The remaining allocations are the
// per-translation analysis results (dominator tree, def-use index, value
// table, liveness info), each a constant number of allocations independent
// of how many copies the translation inserts; the mutation phases
// themselves allocate nothing in steady state. The ordered backend's bound
// is higher because the paper's measured set representation allocates
// exact-size slices on every set union by design (its Figure 7 footprint
// honesty depends on it).
func TestTranslateSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race runtime allocations distort AllocsPerRun near the bound")
	}
	pristine := midSizeFunc(t)
	for _, cfg := range []struct {
		name  string
		opt   Options
		bound float64
	}{
		{"bitsets", Options{Strategy: Sharing, Linear: true}, 400},
		{"ordered", Options{Strategy: Sharing, Linear: true, OrderedSets: true}, 1200},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			sc := NewScratch()
			dst := ir.NewFunc("")
			run := func() {
				ir.CloneInto(dst, pristine)
				if _, err := TranslateInto(dst, cfg.opt, nil, sc); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < 3; i++ {
				run() // warm the scratch, the clone target, and the arenas
			}
			got := testing.AllocsPerRun(10, run)
			if got > cfg.bound {
				t.Fatalf("steady-state translation allocates %v times per run, bound %v", got, cfg.bound)
			}

			// The committed trajectory claims ≥2× fewer allocations than the
			// reference path; hold the floor here too.
			refOpt := cfg.opt
			refOpt.ReferenceAlloc = true
			ref := testing.AllocsPerRun(10, func() {
				clone := ir.Clone(pristine)
				if _, err := Translate(clone, refOpt); err != nil {
					t.Fatal(err)
				}
			})
			if got*2 > ref {
				t.Fatalf("pooled path allocates %v/run, reference %v/run: less than the claimed 2x gap", got, ref)
			}
		})
	}
}

// TestReferenceAllocMatchesPooled: the ReferenceAlloc baseline and the
// pooled path must produce byte-identical translated IR and identical
// deterministic statistics for every Figure 5 strategy — the trajectory
// benchmark isolates allocation cost, not translation quality.
func TestReferenceAllocMatchesPooled(t *testing.T) {
	funcs := cfggen.Generate(cfggen.DefaultProfile("refalloc", 1717))
	sc := NewScratch()
	for _, s := range Strategies {
		opt := Options{Strategy: s, Linear: true, LiveCheck: true}
		if s == SreedharIII {
			opt = Options{Strategy: s, Virtualize: true, UseGraph: true}
		}
		refOpt := opt
		refOpt.ReferenceAlloc = true
		for i, f := range funcs {
			pooled := ir.Clone(f)
			stP, err := TranslateInto(pooled, opt, nil, sc)
			if err != nil {
				t.Fatalf("%v func %d pooled: %v", s, i, err)
			}
			refc := ir.Clone(f)
			stR, err := Translate(refc, refOpt)
			if err != nil {
				t.Fatalf("%v func %d reference: %v", s, i, err)
			}
			if pooled.String() != refc.String() {
				t.Fatalf("%v func %d: pooled and reference translations differ:\n--- pooled\n%s--- reference\n%s",
					s, i, pooled.String(), refc.String())
			}
			if stP.RemainingCopies != stR.RemainingCopies || stP.FinalCopies != stR.FinalCopies ||
				stP.CycleCopies != stR.CycleCopies || stP.Affinities != stR.Affinities {
				t.Fatalf("%v func %d: stats diverge: pooled %+v reference %+v", s, i, stP, stR)
			}
		}
	}
}
