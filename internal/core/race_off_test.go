//go:build !race

package core

// raceEnabled reports whether the race detector is compiled in; the
// allocation-bound tests skip under it because the race runtime adds its
// own allocations to testing.AllocsPerRun, pushing borderline counts over
// their bounds nondeterministically.
const raceEnabled = false
