// Package core is the paper's out-of-SSA translator (Boissinot, Darte,
// Rastello, Dupont de Dinechin, Guillon — "Revisiting Out-of-SSA
// Translation for Correctness, Code Quality, and Efficiency", CGO 2009).
//
// The translation has four conceptual phases (Section III):
//
//  1. insert parallel copies for all φ-functions (Method I of Sreedhar et
//     al.) and coalesce each φ's fresh variables into a φ-node — this alone
//     makes the translation correct;
//  2. compute the value-based interference relation, using the SSA value
//     V(x) that comes for free from copy chains;
//  3. coalesce aggressively, φ-related copies and register-renaming copies
//     alike, driven by affinity weights;
//  4. sequentialize the remaining parallel copies optimally.
//
// Options select the engineering variants benchmarked in the paper:
// virtualization of the copy insertion (Method III style), interference
// graph versus direct checks (InterCheck), dataflow liveness sets versus
// fast liveness checking (LiveCheck), and the quadratic versus linear
// congruence-class interference test (Linear). Correctness never depends on
// the options; only speed, memory footprint, and — across the Figure 5
// strategies — the number of remaining copies do.
package core

import (
	"fmt"
	"time"

	"repro/internal/analysis"
	"repro/internal/coalesce"
	"repro/internal/congruence"
	"repro/internal/interference"
	"repro/internal/ir"
	"repro/internal/livecheck"
	"repro/internal/liveness"
	"repro/internal/sreedhar"
	"repro/internal/ssa"
)

// Strategy is the coalescing strategy: the seven variants of Figure 5.
type Strategy int

const (
	// Intersect coalesces only classes with disjoint live ranges.
	Intersect Strategy = iota
	// SreedharI adds Sreedhar's exemption of the copy pair itself.
	SreedharI
	// Chaitin uses Chaitin's copy-aware conservative interference.
	Chaitin
	// Value uses the paper's value-based interference.
	Value
	// SreedharIII virtualizes the copy insertion with intersection-based
	// interference (the paper's baseline, Method III of Sreedhar et al.).
	SreedharIII
	// ValueIS is Value plus the per-φ greedy independent-set search.
	ValueIS
	// Sharing is ValueIS plus the copy-sharing post-pass.
	Sharing
	// Optimistic is an extension beyond the paper's Figure 5: Budimlić-style
	// optimistic coalescing followed by de-coalescing of interfering
	// classes, with value-based interference (the combination the paper's
	// conclusion describes as orthogonal and compatible).
	Optimistic
)

var strategyNames = [...]string{
	Intersect:   "Intersect",
	SreedharI:   "Sreedhar I",
	Chaitin:     "Chaitin",
	Value:       "Value",
	SreedharIII: "Sreedhar III",
	ValueIS:     "Value+IS",
	Sharing:     "Sharing",
	Optimistic:  "Optimistic",
}

func (s Strategy) String() string { return strategyNames[s] }

// Strategies lists all Figure 5 variants in presentation order.
var Strategies = []Strategy{Intersect, SreedharI, Chaitin, Value, SreedharIII, ValueIS, Sharing}

// Options configure the translator.
type Options struct {
	// Strategy selects the coalescing variant (Figure 5). SreedharIII
	// implies Virtualize.
	Strategy Strategy
	// Virtualize emulates the φ-copies and materializes only the ones that
	// fail to coalesce ("Us III"; Section IV-C). Without it, all copies are
	// inserted up front ("Us I").
	Virtualize bool
	// UseGraph builds an interference graph (half-size bit matrix) and
	// answers pair queries from it. Incompatible with LiveCheck (the graph
	// construction needs liveness sets). Disabling it is the paper's
	// "InterCheck" option.
	UseGraph bool
	// LiveCheck replaces dataflow liveness sets by the CFG-only fast
	// liveness checker (Section IV-A).
	LiveCheck bool
	// Linear uses the linear-time congruence-class interference test
	// (Section IV-B) instead of the quadratic all-pairs test.
	Linear bool
	// OrderedSets stores liveness sets as sorted slices instead of bit
	// vectors — the representation measured by the paper (Figure 7). It is
	// slower; results are identical. Meaningless with LiveCheck.
	OrderedSets bool
	// SplitCriticalEdges splits every critical edge before translation.
	// The paper discusses this alternative on the lost-copy problem
	// (Figure 4): with the back edge split, u no longer interferes with x2
	// and a different copy placement becomes possible. It trades extra
	// blocks (and jumps) for coalescing freedom.
	SplitCriticalEdges bool
	// KeepParallelCopies skips phase 4 (sequentialization), leaving
	// OpParCopy instructions in the output; used by tests that inspect the
	// parallel form.
	KeepParallelCopies bool
	// ReferenceQueries answers every interference query with the
	// pre-optimization implementations (linear use-list scans, per-query
	// def-point derivation, per-merge class allocation). Results are
	// identical; only cost differs. It exists for the differential oracle
	// tests and as the fixed baseline of the coalescing trajectory
	// benchmark (BENCH_coalesce.json).
	ReferenceQueries bool
	// ReferenceAlloc runs the mutation phases without any pooled working
	// state: a fresh Insertion per translation, freshly allocated coalescer
	// buffers and congruence list storage, the kept map-based parallel-copy
	// sequentializer, and the double-copy instruction splice. No pooled
	// Scratch is attached. Results are identical; only allocation traffic
	// differs. It is the fixed baseline of the translate trajectory
	// benchmark (BENCH_translate.json), isolating the pooling/reuse delta;
	// structural improvements shared by both engines (slab-allocated IR,
	// CSR-built def-use and sharing indexes, the value-slice virtualizer)
	// benefit the reference rows too, so the measured gap understates the
	// distance to the true pre-PR code.
	ReferenceAlloc bool
}

// Validate rejects inconsistent option combinations.
func (o *Options) Validate() error {
	if o.UseGraph && o.LiveCheck {
		return fmt.Errorf("core: UseGraph needs liveness sets; it cannot be combined with LiveCheck")
	}
	if o.OrderedSets && o.LiveCheck {
		return fmt.Errorf("core: OrderedSets selects a liveness-set representation; LiveCheck has no sets")
	}
	if o.Strategy == SreedharIII && !o.Virtualize {
		return fmt.Errorf("core: the SreedharIII strategy requires Virtualize")
	}
	if o.Strategy == Optimistic && o.Virtualize {
		return fmt.Errorf("core: Optimistic de-coalescing needs the full copy set; it cannot be virtualized")
	}
	return nil
}

// Stats reports what the translation did and what it cost; the benchmark
// harness derives Figures 5-7 from it.
type Stats struct {
	Blocks, Vars, Phis int
	// Affinities counts all candidate copies: φ-related (virtual or real)
	// plus pre-existing register-constraint copies.
	Affinities      int
	RemainingCopies int     // copies left after coalescing (parallel pairs)
	RemainingWeight float64 // frequency-weighted remaining copies
	SharedRemoved   int     // copies removed by the sharing post-pass
	FinalCopies     int     // sequential copy instructions in the output
	CycleCopies     int     // extra copies inserted to break cycles
	SplitEdges      int     // edges split by the correctness pre-passes
	CleanedBlocks   int     // degenerate jump blocks removed afterwards

	// Machinery instrumentation.
	IntersectionTests int // variable-pair live-range intersection tests
	MaterializedVars  int // primed variables introduced

	// Per-phase wall-clock time: correctness pre-passes + copy insertion,
	// analyses (dominance, def-use, values, liveness/livecheck, graph),
	// coalescing, and the rewrite/sequentialization.
	InsertNanos, AnalyzeNanos, CoalesceNanos, RewriteNanos int64

	// Memory footprint, measured (bytes actually held by the structures)
	// and evaluated with the paper's perfect-memory formulas (Figure 7).
	GraphBytes, GraphEval         int
	LiveSetBytes, LiveSetEval     int // ordered-set representation
	LiveSetBitEval                int // bit-set formula
	LiveCheckBytes, LiveCheckEval int
}

// Accumulate adds every deterministic counter of st into dst. The wall-
// clock fields (InsertNanos …) are per-translation diagnostics and are
// deliberately excluded, so aggregates over a function set are identical
// regardless of scheduling — the batch driver relies on this.
func (dst *Stats) Accumulate(st *Stats) {
	dst.Blocks += st.Blocks
	dst.Vars += st.Vars
	dst.Phis += st.Phis
	dst.Affinities += st.Affinities
	dst.RemainingCopies += st.RemainingCopies
	dst.RemainingWeight += st.RemainingWeight
	dst.SharedRemoved += st.SharedRemoved
	dst.FinalCopies += st.FinalCopies
	dst.CycleCopies += st.CycleCopies
	dst.SplitEdges += st.SplitEdges
	dst.CleanedBlocks += st.CleanedBlocks
	dst.IntersectionTests += st.IntersectionTests
	dst.MaterializedVars += st.MaterializedVars
	dst.GraphBytes += st.GraphBytes
	dst.GraphEval += st.GraphEval
	dst.LiveSetBytes += st.LiveSetBytes
	dst.LiveSetEval += st.LiveSetEval
	dst.LiveSetBitEval += st.LiveSetBitEval
	dst.LiveCheckBytes += st.LiveCheckBytes
	dst.LiveCheckEval += st.LiveCheckEval
}

// Translation is an in-flight out-of-SSA translation of one function,
// decomposed into the paper's four conceptual phases. Each phase is a
// method so a pass manager can drive the phases as individual passes,
// sharing the analyses through an invalidation-aware cache:
//
//	t, _ := NewTranslation(f, opt, cache)
//	t.Insert(); t.Analyze(); t.Coalesce(); t.Rewrite()
//
// Translate runs all four back to back. The phases must run in order,
// exactly once each; a phase called out of order returns an error.
type Translation struct {
	F     *ir.Func
	Opt   Options
	Stats *Stats
	// An caches the analyses the phases consume. The Analyze phase warms
	// dominance, def-use, and the liveness oracle; Coalesce and Rewrite
	// pull them from the cache again (hits), and Coalesce revalidates the
	// def-use index it maintains while materializing virtualized copies.
	An *analysis.Cache

	// sc is the pooled working state of the mutation phases; nil under
	// Options.ReferenceAlloc. Insert draws one from the package pool unless
	// SetScratch installed a caller-owned scratch first (the batch driver
	// threads one per worker); pool-drawn scratches go back at the end of
	// Rewrite.
	sc     *Scratch
	pooled bool

	stage int // next phase to run: 0 insert, 1 analyze, 2 coalesce, 3 rewrite, 4 done

	// Intermediates handed from phase to phase.
	vals    []ir.VarID
	live    *liveness.Info     // nil under LiveCheck
	lck     *livecheck.Checker // nil unless LiveCheck
	graph   *interference.Graph
	ins     *sreedhar.Insertion
	affs    []sreedhar.Affinity
	chk     *interference.Checker
	classes *congruence.Classes
	res     *coalesce.Result
}

// NewTranslation validates opt and prepares a translation of f. an may be
// nil, in which case a private cache is created; passing a shared cache
// lets surrounding passes (SSA verification, register allocation) reuse
// the same analyses.
func NewTranslation(f *ir.Func, opt Options, an *analysis.Cache) (*Translation, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if opt.Strategy == SreedharIII {
		opt.Virtualize = true
	}
	if an == nil {
		an = analysis.NewCache(f)
	}
	return &Translation{F: f, Opt: opt, Stats: &Stats{}, An: an}, nil
}

// SetScratch installs a caller-owned Scratch the mutation phases will work
// in; it must be called before Insert. The caller keeps ownership: the
// scratch is reusable (not concurrently) for the next translation as soon
// as Rewrite finished. Under Options.ReferenceAlloc the call is ignored —
// the reference baseline allocates fresh working state by design.
func (t *Translation) SetScratch(sc *Scratch) {
	if t.Opt.ReferenceAlloc {
		return
	}
	t.sc = sc
	t.pooled = false
}

// ensureScratch attaches a pool-drawn scratch when none was installed.
func (t *Translation) ensureScratch() {
	if t.sc == nil && !t.Opt.ReferenceAlloc {
		t.sc = GetScratch()
		t.pooled = true
	}
}

// releaseScratch detaches the scratch at the end of Rewrite, saving the
// grown affinity buffer and the congruence member lists back and returning
// pool-drawn scratches.
func (t *Translation) releaseScratch() {
	if t.sc == nil {
		return
	}
	t.sc.affs = t.affs[:0]
	t.affs = nil
	t.ins = nil
	if t.classes != nil {
		t.classes.Retire()
	}
	if t.pooled {
		PutScratch(t.sc)
	}
	t.sc = nil
}

// listPool returns the congruence member-list pool (nil for the reference
// baseline, selecting per-instance storage).
func (t *Translation) listPool() *congruence.ListPool {
	if t.sc == nil {
		return nil
	}
	return &t.sc.lists
}

// newInsertion returns the insertion storage for a function of nblocks
// blocks: the scratch's recycled one, or a fresh one for the reference
// baseline.
func (t *Translation) newInsertion(nblocks int) *sreedhar.Insertion {
	ins := &sreedhar.Insertion{}
	if t.sc != nil {
		ins = &t.sc.ins
	}
	ins.Reset(nblocks)
	return ins
}

// coScratch returns the coalescer's scratch view (nil for the reference
// baseline).
func (t *Translation) coScratch() *coalesce.Scratch {
	if t.sc == nil {
		return nil
	}
	return &t.sc.co
}

// backend returns the liveness-set representation the options select.
func (t *Translation) backend() liveness.Backend {
	if t.Opt.OrderedSets {
		return liveness.OrderedSets
	}
	return liveness.Bitsets
}

// enter checks phase ordering and starts the phase timer.
func (t *Translation) enter(stage int, name string) (time.Time, error) {
	if t.stage != stage {
		return time.Time{}, fmt.Errorf("core: phase %s run out of order (stage %d)", name, t.stage)
	}
	t.stage++
	return time.Now(), nil
}

// Insert is phase 1: the correctness pre-passes (Section II-A) plus copy
// insertion — real parallel copies (Method I) or empty carriers for the
// virtualized translation (Method III style).
func (t *Translation) Insert() error {
	start, err := t.enter(0, "insert")
	if err != nil {
		return err
	}
	t.ensureScratch()
	f, st := t.F, t.Stats

	// Normalize duplicate-pred edges and split edges whose φ argument is
	// defined by the predecessor's terminator (the Br_dec case of Figure 2,
	// where copy insertion alone cannot split the live range).
	st.SplitEdges += len(sreedhar.SplitDuplicatePredEdges(f))
	st.SplitEdges += len(sreedhar.SplitBranchDefEdges(f))
	if t.Opt.SplitCriticalEdges {
		st.SplitEdges += splitAllCritical(f)
	}

	for _, b := range f.Blocks {
		st.Phis += len(b.Phis)
	}
	st.Blocks = len(f.Blocks)

	t.ins = t.newInsertion(len(f.Blocks))
	if t.Opt.Virtualize {
		sreedhar.PrepareParallelCopies(f, t.ins)
	} else {
		if err := sreedhar.InsertCopiesInto(f, t.ins); err != nil {
			return err
		}
	}
	// Copy insertion edits instruction lists in place (ir.InsertBefore has
	// no *Func receiver to bump the counter itself).
	f.MarkCodeMutated()

	st.InsertNanos += time.Since(start).Nanoseconds()
	return nil
}

// Analyze is phase 2: compute the substrates of the value-based
// interference relation — dominance, def-use, SSA values, the liveness
// oracle (dataflow sets or the fast checker), and, when requested, the
// interference graph. Everything is pulled through the analysis cache so
// later phases, and surrounding passes, share the results.
func (t *Translation) Analyze() error {
	start, err := t.enter(1, "analyze")
	if err != nil {
		return err
	}
	f := t.F

	dt := t.An.Dom()
	t.An.DefUse()
	t.vals = ssa.Values(f, dt)
	if t.Opt.LiveCheck {
		t.lck = t.An.LiveCheck()
	} else {
		t.live = t.An.Liveness(t.backend())
	}
	if t.Opt.UseGraph {
		t.graph = t.An.GraphWith(graphMode(t.Opt.Strategy), t.vals, t.backend())
	}

	t.Stats.AnalyzeNanos += time.Since(start).Nanoseconds()
	return nil
}

// oracle returns the block-liveness view phase 3 queries — the cache serves
// the instance phase 2 computed.
func (t *Translation) oracle() interference.BlockLiveness {
	if t.Opt.LiveCheck {
		return t.An.LiveCheck()
	}
	return t.An.Liveness(t.backend())
}

// Coalesce is phase 3: aggressive coalescing of φ-related and
// register-renaming copies alike, driven by affinity weights, with the
// congruence classes answering interference queries through the cached
// analyses. Under virtualization the φ copies are emulated and only the
// ones that fail to coalesce are materialized; the def-use index is kept
// consistent throughout and revalidated in the cache.
func (t *Translation) Coalesce() error {
	start, err := t.enter(2, "coalesce")
	if err != nil {
		return err
	}
	f, st, opt := t.F, t.Stats, t.Opt

	t.chk = &interference.Checker{
		F: f, DT: t.An.Dom(), DU: t.An.DefUse(), Live: t.oracle(), Vals: t.vals,
		Reference: opt.ReferenceQueries,
	}
	t.classes = congruence.NewIn(t.chk, t.listPool())
	precoalescePinned(f, t.classes)
	m := &coalesce.Machinery{Chk: t.chk, Classes: t.classes, Graph: t.graph, Linear: opt.Linear, Scratch: t.coScratch()}

	if t.sc != nil {
		t.affs = t.sc.affs[:0]
	}
	// φ-nodes of Method I are coalesced by construction (Lemma 1).
	if !opt.Virtualize {
		for _, node := range t.ins.PhiNodes {
			for i := 1; i < len(node); i++ {
				t.classes.MergeForced(node[0], node[i])
			}
		}
		t.affs = append(t.affs, t.ins.Affinities...)
	}
	t.affs = sreedhar.CollectRealCopiesInto(f, t.ins, t.affs)

	if opt.Virtualize {
		vz := &coalesce.Virtualizer{M: m, Ins: t.ins, Variant: engineVariant(opt.Strategy), Live: t.live}
		vres := vz.Run(f)
		// Register-constraint and leftover copies: Sreedhar III complements
		// virtualization with the SSA-based coalescing of Method I for
		// them; our variants use the value-based rule.
		nonPhi := engineVariant(opt.Strategy)
		if opt.Strategy == SreedharIII {
			nonPhi = coalesce.SreedharI
		}
		t.res = coalesce.Run(m, t.affs, nonPhi, false)
		t.affs = append(t.affs, vres.Materialized...)
		for range vres.Materialized {
			t.res.Statuses = append(t.res.Statuses, coalesce.Remaining)
		}
		st.MaterializedVars = len(vres.Materialized)
		st.Affinities = len(t.affs) + vres.Removed
	} else if opt.Strategy == Optimistic {
		t.res = coalesce.RunOptimistic(m, t.affs)
		st.Affinities = len(t.affs)
	} else {
		groupPhis := opt.Strategy == ValueIS || opt.Strategy == Sharing
		t.res = coalesce.Run(m, t.affs, engineVariant(opt.Strategy), groupPhis)
		st.Affinities = len(t.affs)
	}
	if opt.Strategy == Sharing {
		st.SharedRemoved = coalesce.Share(m, t.affs, t.res)
	}

	// Materialization minted fresh variables but kept the def-use index
	// consistent (AddDef/AddUse); tell the cache the index is still good.
	t.An.Preserve(analysis.DefUse)

	st.CoalesceNanos += time.Since(start).Nanoseconds()

	// Tally remaining copies (parallel pairs before sequentialization).
	for i, s := range t.res.Statuses {
		if s == coalesce.Remaining {
			st.RemainingCopies++
			st.RemainingWeight += t.affs[i].Weight
		}
	}
	return nil
}

// Rewrite is phase 4: leave CSSA — rename to class representatives, drop
// φ-functions and coalesced copies, sequentialize the remaining parallel
// copies optimally, fold degenerate jump blocks back, and verify.
func (t *Translation) Rewrite() error {
	start, err := t.enter(3, "rewrite")
	if err != nil {
		return err
	}
	f, st := t.F, t.Stats

	rewrite(f, t.classes, t.An.DefUse(), t.affs, t.res.Statuses, t.Opt.KeepParallelCopies, st, t.sc)
	f.MarkCodeMutated() // renaming edits operands in place

	// Pessimistically split edges whose copies all coalesced away leave a
	// lone jump behind; fold those blocks back.
	st.CleanedBlocks = ir.CleanupJumpBlocks(f)
	st.RewriteNanos += time.Since(start).Nanoseconds()

	st.Vars = len(f.Vars)
	fillFootprint(st, f, t.graph, t.live, t.lck)
	st.IntersectionTests = t.chk.Queries
	t.releaseScratch()
	if err := ir.Verify(f); err != nil {
		return fmt.Errorf("core: translated function fails verification: %w", err)
	}
	return nil
}

// CoalesceResult exposes the per-affinity coalescing decisions of the
// Coalesce phase (nil before it ran). The differential oracle tests compare
// it across the optimized and reference query paths.
func (t *Translation) CoalesceResult() *coalesce.Result { return t.res }

// Translate rewrites f, which must be in strict SSA form, into equivalent
// φ-free standard code, returning the statistics of the run. f is mutated
// in place.
func Translate(f *ir.Func, opt Options) (*Stats, error) {
	return TranslateWith(f, opt, nil)
}

// TranslateWith is Translate with a caller-provided analysis cache, so the
// translation shares dominance, def-use, and liveness with surrounding
// passes. an may be nil.
func TranslateWith(f *ir.Func, opt Options, an *analysis.Cache) (*Stats, error) {
	return TranslateInto(f, opt, an, nil)
}

// TranslateInto is TranslateWith with an explicit, caller-owned Scratch —
// batch drivers hand every function translated by one worker the same
// scratch. sc may be nil, in which case (unless opt.ReferenceAlloc) the
// translation draws one from the package pool for its own duration.
func TranslateInto(f *ir.Func, opt Options, an *analysis.Cache, sc *Scratch) (*Stats, error) {
	t, err := NewTranslation(f, opt, an)
	if err != nil {
		return nil, err
	}
	if sc != nil {
		t.SetScratch(sc)
	}
	for _, phase := range []func() error{t.Insert, t.Analyze, t.Coalesce, t.Rewrite} {
		if err := phase(); err != nil {
			// A failed phase must not strand a pool-drawn scratch or the
			// grown buffers a caller-owned one would get back at the end of
			// Rewrite.
			t.releaseScratch()
			return t.Stats, err
		}
	}
	return t.Stats, nil
}

// engineVariant maps a strategy to the class-level interference predicate.
func engineVariant(s Strategy) coalesce.Variant {
	switch s {
	case Intersect, SreedharIII:
		return coalesce.Intersect
	case SreedharI:
		return coalesce.SreedharI
	case Chaitin:
		return coalesce.Chaitin
	default:
		return coalesce.Value
	}
}

// graphMode maps a strategy to the relation stored in the bit matrix.
func graphMode(s Strategy) interference.GraphMode {
	switch s {
	case Intersect, SreedharI, SreedharIII:
		return interference.ModeIntersect
	case Chaitin:
		return interference.ModeChaitin
	default:
		return interference.ModeValue
	}
}

// splitAllCritical splits every critical edge of f.
func splitAllCritical(f *ir.Func) int {
	n := 0
	blocks := f.Blocks // splits append; iterate the original slice
	for _, b := range blocks {
		for _, s := range append([]*ir.Block(nil), b.Succs...) {
			if ir.IsCriticalEdge(b, s) {
				ir.SplitEdge(f, b, s)
				n++
			}
		}
	}
	return n
}

// precoalescePinned merges all variables pinned to one architectural
// register into a single labeled class (Section III-D). The register map is
// created lazily: functions without pinned variables — the common case —
// pay nothing.
func precoalescePinned(f *ir.Func, classes *congruence.Classes) {
	var byReg map[string]ir.VarID
	for i, v := range f.Vars {
		if v.Reg == "" {
			continue
		}
		if byReg == nil {
			byReg = map[string]ir.VarID{}
		}
		if first, ok := byReg[v.Reg]; ok {
			classes.MergeForced(first, ir.VarID(i))
		} else {
			byReg[v.Reg] = ir.VarID(i)
		}
	}
}

// fillFootprint records measured and evaluated memory footprints.
func fillFootprint(st *Stats, f *ir.Func, g *interference.Graph, live *liveness.Info, lck *livecheck.Checker) {
	nv, nb := len(f.Vars), len(f.Blocks)
	if g != nil {
		st.GraphBytes = g.AllocatedBytes()
		st.GraphEval = (nv + 7) / 8 * nv / 2
	}
	if live != nil {
		st.LiveSetBytes = live.Bytes()
		st.LiveSetEval = live.OrderedBytes()
		st.LiveSetBitEval = liveness.BitsetBytes(nv, nb)
	}
	if lck != nil {
		st.LiveCheckBytes = lck.Bytes()
		st.LiveCheckEval = livecheck.EvaluatedBytes(nb)
	}
}
