// Package core is the paper's out-of-SSA translator (Boissinot, Darte,
// Rastello, Dupont de Dinechin, Guillon — "Revisiting Out-of-SSA
// Translation for Correctness, Code Quality, and Efficiency", CGO 2009).
//
// The translation has four conceptual phases (Section III):
//
//  1. insert parallel copies for all φ-functions (Method I of Sreedhar et
//     al.) and coalesce each φ's fresh variables into a φ-node — this alone
//     makes the translation correct;
//  2. compute the value-based interference relation, using the SSA value
//     V(x) that comes for free from copy chains;
//  3. coalesce aggressively, φ-related copies and register-renaming copies
//     alike, driven by affinity weights;
//  4. sequentialize the remaining parallel copies optimally.
//
// Options select the engineering variants benchmarked in the paper:
// virtualization of the copy insertion (Method III style), interference
// graph versus direct checks (InterCheck), dataflow liveness sets versus
// fast liveness checking (LiveCheck), and the quadratic versus linear
// congruence-class interference test (Linear). Correctness never depends on
// the options; only speed, memory footprint, and — across the Figure 5
// strategies — the number of remaining copies do.
package core

import (
	"fmt"
	"time"

	"repro/internal/coalesce"
	"repro/internal/congruence"
	"repro/internal/dom"
	"repro/internal/interference"
	"repro/internal/ir"
	"repro/internal/livecheck"
	"repro/internal/liveness"
	"repro/internal/sreedhar"
	"repro/internal/ssa"
)

// Strategy is the coalescing strategy: the seven variants of Figure 5.
type Strategy int

const (
	// Intersect coalesces only classes with disjoint live ranges.
	Intersect Strategy = iota
	// SreedharI adds Sreedhar's exemption of the copy pair itself.
	SreedharI
	// Chaitin uses Chaitin's copy-aware conservative interference.
	Chaitin
	// Value uses the paper's value-based interference.
	Value
	// SreedharIII virtualizes the copy insertion with intersection-based
	// interference (the paper's baseline, Method III of Sreedhar et al.).
	SreedharIII
	// ValueIS is Value plus the per-φ greedy independent-set search.
	ValueIS
	// Sharing is ValueIS plus the copy-sharing post-pass.
	Sharing
	// Optimistic is an extension beyond the paper's Figure 5: Budimlić-style
	// optimistic coalescing followed by de-coalescing of interfering
	// classes, with value-based interference (the combination the paper's
	// conclusion describes as orthogonal and compatible).
	Optimistic
)

var strategyNames = [...]string{
	Intersect:   "Intersect",
	SreedharI:   "Sreedhar I",
	Chaitin:     "Chaitin",
	Value:       "Value",
	SreedharIII: "Sreedhar III",
	ValueIS:     "Value+IS",
	Sharing:     "Sharing",
	Optimistic:  "Optimistic",
}

func (s Strategy) String() string { return strategyNames[s] }

// Strategies lists all Figure 5 variants in presentation order.
var Strategies = []Strategy{Intersect, SreedharI, Chaitin, Value, SreedharIII, ValueIS, Sharing}

// Options configure the translator.
type Options struct {
	// Strategy selects the coalescing variant (Figure 5). SreedharIII
	// implies Virtualize.
	Strategy Strategy
	// Virtualize emulates the φ-copies and materializes only the ones that
	// fail to coalesce ("Us III"; Section IV-C). Without it, all copies are
	// inserted up front ("Us I").
	Virtualize bool
	// UseGraph builds an interference graph (half-size bit matrix) and
	// answers pair queries from it. Incompatible with LiveCheck (the graph
	// construction needs liveness sets). Disabling it is the paper's
	// "InterCheck" option.
	UseGraph bool
	// LiveCheck replaces dataflow liveness sets by the CFG-only fast
	// liveness checker (Section IV-A).
	LiveCheck bool
	// Linear uses the linear-time congruence-class interference test
	// (Section IV-B) instead of the quadratic all-pairs test.
	Linear bool
	// OrderedSets stores liveness sets as sorted slices instead of bit
	// vectors — the representation measured by the paper (Figure 7). It is
	// slower; results are identical. Meaningless with LiveCheck.
	OrderedSets bool
	// SplitCriticalEdges splits every critical edge before translation.
	// The paper discusses this alternative on the lost-copy problem
	// (Figure 4): with the back edge split, u no longer interferes with x2
	// and a different copy placement becomes possible. It trades extra
	// blocks (and jumps) for coalescing freedom.
	SplitCriticalEdges bool
	// KeepParallelCopies skips phase 4 (sequentialization), leaving
	// OpParCopy instructions in the output; used by tests that inspect the
	// parallel form.
	KeepParallelCopies bool
}

// Validate rejects inconsistent option combinations.
func (o *Options) Validate() error {
	if o.UseGraph && o.LiveCheck {
		return fmt.Errorf("core: UseGraph needs liveness sets; it cannot be combined with LiveCheck")
	}
	if o.OrderedSets && o.LiveCheck {
		return fmt.Errorf("core: OrderedSets selects a liveness-set representation; LiveCheck has no sets")
	}
	if o.Strategy == SreedharIII && !o.Virtualize {
		return fmt.Errorf("core: the SreedharIII strategy requires Virtualize")
	}
	if o.Strategy == Optimistic && o.Virtualize {
		return fmt.Errorf("core: Optimistic de-coalescing needs the full copy set; it cannot be virtualized")
	}
	return nil
}

// Stats reports what the translation did and what it cost; the benchmark
// harness derives Figures 5-7 from it.
type Stats struct {
	Blocks, Vars, Phis int
	// Affinities counts all candidate copies: φ-related (virtual or real)
	// plus pre-existing register-constraint copies.
	Affinities      int
	RemainingCopies int     // copies left after coalescing (parallel pairs)
	RemainingWeight float64 // frequency-weighted remaining copies
	SharedRemoved   int     // copies removed by the sharing post-pass
	FinalCopies     int     // sequential copy instructions in the output
	CycleCopies     int     // extra copies inserted to break cycles
	SplitEdges      int     // edges split by the correctness pre-passes
	CleanedBlocks   int     // degenerate jump blocks removed afterwards

	// Machinery instrumentation.
	IntersectionTests int // variable-pair live-range intersection tests
	MaterializedVars  int // primed variables introduced

	// Per-phase wall-clock time: correctness pre-passes + copy insertion,
	// analyses (dominance, def-use, values, liveness/livecheck, graph),
	// coalescing, and the rewrite/sequentialization.
	InsertNanos, AnalyzeNanos, CoalesceNanos, RewriteNanos int64

	// Memory footprint, measured (bytes actually held by the structures)
	// and evaluated with the paper's perfect-memory formulas (Figure 7).
	GraphBytes, GraphEval         int
	LiveSetBytes, LiveSetEval     int // ordered-set representation
	LiveSetBitEval                int // bit-set formula
	LiveCheckBytes, LiveCheckEval int
}

// Translate rewrites f, which must be in strict SSA form, into equivalent
// φ-free standard code, returning the statistics of the run. f is mutated
// in place.
func Translate(f *ir.Func, opt Options) (*Stats, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if opt.Strategy == SreedharIII {
		opt.Virtualize = true
	}
	st := &Stats{}
	phase := time.Now()
	mark := func(dst *int64) {
		now := time.Now()
		*dst += now.Sub(phase).Nanoseconds()
		phase = now
	}

	// Correctness pre-passes (Section II-A): normalize duplicate-pred edges
	// and split edges whose φ argument is defined by the predecessor's
	// terminator (the Br_dec case of Figure 2, where copy insertion alone
	// cannot split the live range).
	st.SplitEdges += len(sreedhar.SplitDuplicatePredEdges(f))
	st.SplitEdges += len(sreedhar.SplitBranchDefEdges(f))
	if opt.SplitCriticalEdges {
		st.SplitEdges += splitAllCritical(f)
	}

	dt := dom.Build(f)
	for _, b := range f.Blocks {
		st.Phis += len(b.Phis)
	}
	st.Blocks = len(f.Blocks)

	var (
		ins  *sreedhar.Insertion
		err  error
		affs []sreedhar.Affinity
	)
	if opt.Virtualize {
		ins = &sreedhar.Insertion{
			BeginCopies: make([]*ir.Instr, len(f.Blocks)),
			EndCopies:   make([]*ir.Instr, len(f.Blocks)),
		}
		sreedhar.PrepareParallelCopies(f, ins)
	} else {
		if ins, err = sreedhar.InsertCopies(f); err != nil {
			return nil, err
		}
	}

	mark(&st.InsertNanos)
	du := ir.NewDefUse(f)
	vals := ssa.Values(f, dt)

	var live *liveness.Info
	var oracle interference.BlockLiveness
	var lck *livecheck.Checker
	if opt.LiveCheck {
		lck = livecheck.New(f, dt, du)
		oracle = lck
	} else {
		be := liveness.Bitsets
		if opt.OrderedSets {
			be = liveness.OrderedSets
		}
		live = liveness.ComputeWith(f, be)
		oracle = live
	}
	chk := &interference.Checker{F: f, DT: dt, DU: du, Live: oracle, Vals: vals}
	classes := congruence.New(chk)
	precoalescePinned(f, classes)

	var graph *interference.Graph
	if opt.UseGraph {
		graph = interference.BuildGraph(f, live, graphMode(opt.Strategy), vals)
	}
	m := &coalesce.Machinery{Chk: chk, Classes: classes, Graph: graph, Linear: opt.Linear}
	mark(&st.AnalyzeNanos)

	// φ-nodes of Method I are coalesced by construction (Lemma 1).
	if !opt.Virtualize {
		for _, node := range ins.PhiNodes {
			for i := 1; i < len(node); i++ {
				classes.MergeForced(node[0], node[i])
			}
		}
		affs = append(affs, ins.Affinities...)
	}
	affs = append(affs, collectRealCopies(f, ins)...)

	var res *coalesce.Result
	if opt.Virtualize {
		vz := &coalesce.Virtualizer{M: m, Ins: ins, Variant: engineVariant(opt.Strategy), Live: live}
		vres := vz.Run(f)
		// Register-constraint and leftover copies: Sreedhar III complements
		// virtualization with the SSA-based coalescing of Method I for
		// them; our variants use the value-based rule.
		nonPhi := engineVariant(opt.Strategy)
		if opt.Strategy == SreedharIII {
			nonPhi = coalesce.SreedharI
		}
		res = coalesce.Run(m, affs, nonPhi, false)
		affs = append(affs, vres.Materialized...)
		for range vres.Materialized {
			res.Statuses = append(res.Statuses, coalesce.Remaining)
		}
		st.MaterializedVars = len(vres.Materialized)
		st.Affinities = len(affs) + vres.Removed
	} else if opt.Strategy == Optimistic {
		res = coalesce.RunOptimistic(m, affs)
		st.Affinities = len(affs)
	} else {
		groupPhis := opt.Strategy == ValueIS || opt.Strategy == Sharing
		res = coalesce.Run(m, affs, engineVariant(opt.Strategy), groupPhis)
		st.Affinities = len(affs)
	}
	if opt.Strategy == Sharing {
		st.SharedRemoved = coalesce.Share(m, affs, res)
	}

	mark(&st.CoalesceNanos)

	// Tally remaining copies (parallel pairs before sequentialization).
	for i, s := range res.Statuses {
		if s == coalesce.Remaining {
			st.RemainingCopies++
			st.RemainingWeight += affs[i].Weight
		}
	}

	// Phase 4: leave CSSA — rename to class representatives, drop
	// φ-functions and coalesced copies, sequentialize parallel copies.
	rewrite(f, classes, du, affs, res.Statuses, opt.KeepParallelCopies, st)

	// Pessimistically split edges whose copies all coalesced away leave a
	// lone jump behind; fold those blocks back.
	st.CleanedBlocks = ir.CleanupJumpBlocks(f)
	mark(&st.RewriteNanos)

	st.Vars = len(f.Vars)
	fillFootprint(st, f, graph, live, lck)
	st.IntersectionTests = chk.Queries
	if err := ir.Verify(f); err != nil {
		return st, fmt.Errorf("core: translated function fails verification: %w", err)
	}
	return st, nil
}

// engineVariant maps a strategy to the class-level interference predicate.
func engineVariant(s Strategy) coalesce.Variant {
	switch s {
	case Intersect, SreedharIII:
		return coalesce.Intersect
	case SreedharI:
		return coalesce.SreedharI
	case Chaitin:
		return coalesce.Chaitin
	default:
		return coalesce.Value
	}
}

// graphMode maps a strategy to the relation stored in the bit matrix.
func graphMode(s Strategy) interference.GraphMode {
	switch s {
	case Intersect, SreedharI, SreedharIII:
		return interference.ModeIntersect
	case Chaitin:
		return interference.ModeChaitin
	default:
		return interference.ModeValue
	}
}

// splitAllCritical splits every critical edge of f.
func splitAllCritical(f *ir.Func) int {
	n := 0
	blocks := f.Blocks // splits append; iterate the original slice
	for _, b := range blocks {
		for _, s := range append([]*ir.Block(nil), b.Succs...) {
			if ir.IsCriticalEdge(b, s) {
				ir.SplitEdge(f, b, s)
				n++
			}
		}
	}
	return n
}

// precoalescePinned merges all variables pinned to one architectural
// register into a single labeled class (Section III-D).
func precoalescePinned(f *ir.Func, classes *congruence.Classes) {
	byReg := map[string]ir.VarID{}
	for i, v := range f.Vars {
		if v.Reg == "" {
			continue
		}
		if first, ok := byReg[v.Reg]; ok {
			classes.MergeForced(first, ir.VarID(i))
		} else {
			byReg[v.Reg] = ir.VarID(i)
		}
	}
}

// collectRealCopies gathers affinities for the copies that existed before
// copy insertion (register renaming constraints, optimization leftovers),
// skipping the parallel copies the insertion itself created.
func collectRealCopies(f *ir.Func, ins *sreedhar.Insertion) []sreedhar.Affinity {
	skip := map[*ir.Instr]bool{}
	for _, pc := range ins.BeginCopies {
		if pc != nil {
			skip[pc] = true
		}
	}
	for _, pc := range ins.EndCopies {
		if pc != nil {
			skip[pc] = true
		}
	}
	var out []sreedhar.Affinity
	for _, b := range f.Blocks {
		for i, in := range b.Instrs {
			if skip[in] {
				continue
			}
			switch in.Op {
			case ir.OpCopy:
				out = append(out, sreedhar.Affinity{
					Dst: in.Defs[0], Src: in.Uses[0], Weight: b.Freq,
					Block: b.ID, Slot: ir.SlotOfInstr(i), Phi: -1, Instr: in,
				})
			case ir.OpParCopy:
				for j, d := range in.Defs {
					out = append(out, sreedhar.Affinity{
						Dst: d, Src: in.Uses[j], Weight: b.Freq,
						Block: b.ID, Slot: ir.SlotOfInstr(i), Phi: -1, Instr: in,
					})
				}
			}
		}
	}
	return out
}

// fillFootprint records measured and evaluated memory footprints.
func fillFootprint(st *Stats, f *ir.Func, g *interference.Graph, live *liveness.Info, lck *livecheck.Checker) {
	nv, nb := len(f.Vars), len(f.Blocks)
	if g != nil {
		st.GraphBytes = g.AllocatedBytes()
		st.GraphEval = (nv + 7) / 8 * nv / 2
	}
	if live != nil {
		st.LiveSetBytes = live.Bytes()
		st.LiveSetEval = live.OrderedBytes()
		st.LiveSetBitEval = liveness.BitsetBytes(nv, nb)
	}
	if lck != nil {
		st.LiveCheckBytes = lck.Bytes()
		st.LiveCheckEval = livecheck.EvaluatedBytes(nb)
	}
}
