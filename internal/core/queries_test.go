package core_test

import (
	"testing"

	"repro/internal/cfggen"
	"repro/internal/core"
	"repro/internal/ir"
)

// strategyOptions returns a direct-query (no interference graph)
// configuration of s, so every intersection test flows through the checker
// and lands in Stats.IntersectionTests.
func strategyOptions(s core.Strategy) core.Options {
	opt := core.Options{Strategy: s, Linear: true, LiveCheck: true}
	if s == core.SreedharIII {
		opt = core.Options{Strategy: s, Virtualize: true}
	}
	return opt
}

// TestEveryStrategyCountsQueries is the regression test for the Chaitin
// query-count bug: ChaitinInterferes performed its intersection tests via
// LiveAfter without ever incrementing Checker.Queries, so
// Stats.IntersectionTests reported 0 for the Chaitin strategy and
// Figure 6-style output undercounted. Every Figure 5 strategy (plus the
// Optimistic extension) must report a nonzero, plausible query count on a
// φ-heavy function.
func TestEveryStrategyCountsQueries(t *testing.T) {
	p := cfggen.DefaultProfile("queries", 631)
	p.Funcs = 3
	funcs := cfggen.Generate(p)
	strategies := append(append([]core.Strategy(nil), core.Strategies...), core.Optimistic)
	for _, s := range strategies {
		total, affs := 0, 0
		for _, f := range funcs {
			st, err := core.Translate(ir.Clone(f), strategyOptions(s))
			if err != nil {
				t.Fatalf("%v: %v", s, err)
			}
			total += st.IntersectionTests
			affs += st.Affinities
		}
		if total == 0 {
			t.Fatalf("%v: IntersectionTests = 0 on a φ-heavy workload", s)
		}
		// Plausibility: the class-level machinery issues at most a few tests
		// per member pair per affinity; anything beyond a generous quadratic
		// envelope means runaway double counting.
		if limit := affs * affs * 64; total > limit {
			t.Fatalf("%v: IntersectionTests = %d implausibly high (affinities %d, limit %d)",
				s, total, affs, limit)
		}
	}
}
