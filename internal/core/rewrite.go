package core

import (
	"repro/internal/coalesce"
	"repro/internal/congruence"
	"repro/internal/ir"
	"repro/internal/parcopy"
	"repro/internal/sreedhar"
)

// rewrite leaves CSSA (Section II-B): every variable is renamed to its
// congruence-class representative, φ-functions are removed, coalesced and
// shared copies disappear, and the remaining parallel copies are
// sequentialized with the optimal algorithm of Section III-C.
//
// sc supplies the phase's working state: the duplicate-destination stamps
// of pruneParCopy and the sequentializer's tables. A nil sc (the
// ReferenceAlloc baseline) falls back to the pre-pooling behavior — a map
// per parallel copy, the map-based sequentializer, and the double-copy
// instruction splice.
func rewrite(f *ir.Func, classes *congruence.Classes, du *ir.DefUse,
	affs []sreedhar.Affinity, statuses []coalesce.Status,
	keepParallel bool, st *Stats, sc *Scratch) {

	// Copies removed by sharing are deleted although their endpoints are in
	// different classes: another member of the destination class already
	// carries the value. Delete the pairs before renaming, while operand
	// identities still match the affinity records.
	for i, s := range statuses {
		if s != coalesce.SharedRemoved {
			continue
		}
		a := affs[i]
		switch a.Instr.Op {
		case ir.OpCopy:
			a.Instr.Op = ir.OpNop
			a.Instr.Defs, a.Instr.Uses = nil, nil
		case ir.OpParCopy:
			removePair(a.Instr, a.Dst, a.Src)
		}
	}

	// Propagate register labels to the class representatives so pinning
	// survives in the generated code.
	for v := range f.Vars {
		if r := classes.Reg(ir.VarID(v)); r != "" {
			f.Vars[classes.Find(ir.VarID(v))].Reg = r
		}
	}

	// Pair usefulness, judged before renaming: a copy whose destination has
	// no recorded use writes a value nobody reads; keeping it after classes
	// merged could even clobber a live class member, so such pairs are
	// dropped, and duplicate-destination dedup prefers the used pair.
	liveDst := func(v ir.VarID) bool { return len(du.Uses(v)) > 0 }

	for _, b := range f.Blocks {
		// φ-functions dissolve into their congruence class; the truncation
		// keeps the backing array for the block's next incarnation.
		b.Phis = b.Phis[:0]
		out := b.Instrs[:0]
		for _, in := range b.Instrs {
			if in.Op == ir.OpNop {
				continue
			}
			if in.Op == ir.OpParCopy {
				dropDeadPairs(in, liveDst)
			}
			if in.Op == ir.OpCopy && !liveDst(in.Defs[0]) {
				continue
			}
			for i, d := range in.Defs {
				in.Defs[i] = classes.Find(d)
			}
			for i, u := range in.Uses {
				in.Uses[i] = classes.Find(u)
			}
			switch in.Op {
			case ir.OpCopy:
				if in.Defs[0] == in.Uses[0] {
					continue // coalesced: self copy
				}
			case ir.OpParCopy:
				pruneParCopy(in, sc, len(f.Vars))
				if len(in.Defs) == 0 {
					continue
				}
			}
			out = append(out, in)
		}
		b.Instrs = out
	}

	if !keepParallel {
		fresh := func() ir.VarID { return f.NewVar("swap") }
		for _, b := range f.Blocks {
			for idx := 0; idx < len(b.Instrs); idx++ {
				in := b.Instrs[idx]
				if in.Op != ir.OpParCopy {
					continue
				}
				pairs := len(in.Defs)
				var seq []parcopy.Copy
				if sc != nil {
					seq = sc.par.SequentializeInstr(f, b, idx, fresh)
				} else {
					seq = parcopy.SequentializeInstrReference(f, b, idx, fresh)
				}
				st.CycleCopies += len(seq) - pairs
				idx += len(seq) - 1
			}
		}
	}

	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpCopy {
				st.FinalCopies++
			}
		}
	}
}

// removePair deletes the dst←src component from a parallel copy.
func removePair(in *ir.Instr, dst, src ir.VarID) {
	for i, d := range in.Defs {
		if d == dst && in.Uses[i] == src {
			in.Defs = append(in.Defs[:i], in.Defs[i+1:]...)
			in.Uses = append(in.Uses[:i], in.Uses[i+1:]...)
			return
		}
	}
}

// dropDeadPairs removes parallel-copy components whose destination is never
// used (pre-renaming identities).
func dropDeadPairs(in *ir.Instr, liveDst func(ir.VarID) bool) {
	defs, uses := in.Defs[:0], in.Uses[:0]
	for i, d := range in.Defs {
		if !liveDst(d) {
			continue
		}
		defs = append(defs, d)
		uses = append(uses, in.Uses[i])
	}
	in.Defs, in.Uses = defs, uses
}

// pruneParCopy drops self pairs and duplicate destinations after renaming.
// Two live pairs writing the same destination can only survive coalescing
// when their sources carry the same value (paper, Section III-C), so
// keeping the first is safe; dead pairs were removed beforehand. The
// duplicate check uses the scratch's epoch-stamped table when available and
// a fresh map (the reference baseline) otherwise.
func pruneParCopy(in *ir.Instr, sc *Scratch, nvars int) {
	var stamp []uint32
	var epoch uint32
	var seen map[ir.VarID]bool
	if sc != nil {
		stamp, epoch = sc.stampFor(nvars)
	} else {
		seen = map[ir.VarID]bool{}
	}
	dup := func(d ir.VarID) bool {
		if stamp != nil {
			if stamp[d] == epoch {
				return true
			}
			stamp[d] = epoch
			return false
		}
		if seen[d] {
			return true
		}
		seen[d] = true
		return false
	}
	defs, uses := in.Defs[:0], in.Uses[:0]
	for i, d := range in.Defs {
		s := in.Uses[i]
		if d == s || dup(d) {
			continue
		}
		defs = append(defs, d)
		uses = append(uses, s)
	}
	in.Defs, in.Uses = defs, uses
}
