package core

import (
	"math"
	"sync"

	"repro/internal/coalesce"
	"repro/internal/congruence"
	"repro/internal/ir"
	"repro/internal/liveness"
	"repro/internal/parcopy"
	"repro/internal/sreedhar"
)

// Scratch owns the reusable working state of one translation's mutation
// phases: the copy-insertion carriers and φ-node lists (a recycled
// sreedhar.Insertion), the affinity buffer the coalescing phase collects
// into, the coalescer's sort/virtualizer/sharing buffers, the parallel-copy
// sequentializer's tables, and the rewrite phase's duplicate-destination
// stamps. It mirrors liveness.Scratch: a Scratch may be reused across
// functions of any size (buffers grow and are invalidated per run) but not
// concurrently.
//
// Translate draws a Scratch from a package pool per call; the batch driver
// (internal/pipeline) instead holds one per worker and threads it through
// every function the worker translates, which is what makes steady-state
// batch translation allocation-free (amortized). Nothing handed out by a
// Scratch survives the translation that used it: the rewrite phase ends the
// scratch's involvement, and the translated function only references
// arena memory owned by the function itself (ir slab allocation).
type Scratch struct {
	ins   sreedhar.Insertion
	affs  []sreedhar.Affinity
	par   parcopy.Scratch
	co    coalesce.Scratch
	lists congruence.ListPool
	live  liveness.Scratch

	// stamp/epoch implement the rewrite phase's per-parallel-copy duplicate
	// destination check without a per-instruction map.
	stamp []uint32
	epoch uint32

	// memoVars snapshots the input's variable identities across a memo
	// materialization (MemoEntry.Materialize), so memo hits on the batch
	// hot path stay allocation-free in steady state.
	memoVars []ir.Var
}

// MemoVarBuf returns the scratch's materialization buffer; the caller must
// store the possibly-grown buffer back with SetMemoVarBuf.
func (sc *Scratch) MemoVarBuf() []ir.Var { return sc.memoVars }

// SetMemoVarBuf stores the materialization buffer back after use.
func (sc *Scratch) SetMemoVarBuf(buf []ir.Var) { sc.memoVars = buf }

// NewScratch returns an empty scratch for explicit reuse across
// translations.
func NewScratch() *Scratch { return &Scratch{} }

// LivenessScratch returns the scratch's liveness worklist working state.
// The batch driver installs it into each function's analysis cache
// (analysis.Cache.SetLivenessScratch) so a worker's liveness
// recomputations reuse worker-private buffers instead of round-tripping
// the liveness package's sync.Pool per computation. Same discipline as
// the rest of the scratch: any number of sequential runs, never two at
// once.
func (sc *Scratch) LivenessScratch() *liveness.Scratch { return &sc.live }

var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

// GetScratch draws a scratch from the package pool.
func GetScratch() *Scratch { return scratchPool.Get().(*Scratch) }

// PutScratch returns a scratch to the package pool. The caller must not use
// it afterwards.
func PutScratch(sc *Scratch) { scratchPool.Put(sc) }

// stampFor returns the duplicate-destination stamp table sized for n
// variables with a fresh epoch.
func (sc *Scratch) stampFor(n int) ([]uint32, uint32) {
	if sc.epoch == math.MaxUint32 {
		for i := range sc.stamp {
			sc.stamp[i] = 0
		}
		sc.epoch = 0
	}
	sc.epoch++
	if len(sc.stamp) < n {
		sc.stamp = make([]uint32, n)
	}
	return sc.stamp, sc.epoch
}
