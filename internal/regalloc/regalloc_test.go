package regalloc_test

import (
	"fmt"
	"testing"

	"repro/internal/cfggen"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/regalloc"
)

func translated(t *testing.T, seed int64, n int) []*ir.Func {
	t.Helper()
	p := cfggen.DefaultProfile("ra", seed)
	p.Funcs = n
	funcs := cfggen.Generate(p)
	for _, f := range funcs {
		if _, err := core.Translate(f, core.Options{Strategy: core.Sharing, Linear: true, LiveCheck: true}); err != nil {
			t.Fatal(err)
		}
	}
	return funcs
}

func pool(n int) []string {
	regs := []string{"R0", "R1"}
	for i := len(regs); i < n; i++ {
		regs = append(regs, fmt.Sprintf("r%d", i))
	}
	return regs
}

// TestAllocateAndVerify allocates every translated function with pools of
// several sizes and runs the independent verifier. This is also an
// end-to-end check on the translator: had coalescing ever merged two
// interfering variables, the merged variable's interval would be fine but
// the program's semantics — checked elsewhere — and the spill behaviour
// would drift; here we assert structural consistency.
func TestAllocateAndVerify(t *testing.T) {
	for _, regs := range []int{4, 6, 12, 24} {
		for _, f := range translated(t, int64(1000+regs), 6) {
			res, err := regalloc.Allocate(f, pool(regs))
			if err != nil {
				t.Fatalf("%s: %v", f.Name, err)
			}
			if err := regalloc.Verify(f, res); err != nil {
				t.Fatalf("%s (pool %d): %v", f.Name, regs, err)
			}
			if res.RegsUsed > regs {
				t.Fatalf("%s: used %d registers from a pool of %d", f.Name, res.RegsUsed, regs)
			}
		}
	}
}

func TestPinnedVariablesGetTheirRegister(t *testing.T) {
	for _, f := range translated(t, 2000, 8) {
		res, err := regalloc.Allocate(f, pool(10))
		if err != nil {
			t.Fatal(err)
		}
		for v, vr := range f.Vars {
			if vr.Reg == "" {
				continue
			}
			got := res.RegOf[v]
			if got != "" && got != vr.Reg {
				t.Fatalf("%s: %s pinned to %s, allocated %s", f.Name, vr.Name, vr.Reg, got)
			}
		}
	}
}

func TestSmallPoolSpills(t *testing.T) {
	spills := 0
	for _, f := range translated(t, 3000, 6) {
		res, err := regalloc.Allocate(f, pool(3))
		if err != nil {
			t.Fatal(err)
		}
		if err := regalloc.Verify(f, res); err != nil {
			t.Fatal(err)
		}
		spills += res.Spills
	}
	if spills == 0 {
		t.Fatal("a 3-register pool must force spills on this workload")
	}
}

func TestRejectsPhis(t *testing.T) {
	f := ir.MustParse(`
func p {
entry:
  a = param 0
  br a l r
l:
  jump j
r:
  jump j
j:
  x = phi l:a r:a
  ret x
}
`)
	if _, err := regalloc.Allocate(f, pool(4)); err == nil {
		t.Fatal("φ-carrying input must be rejected")
	}
}

func TestRejectsMissingPinnedRegister(t *testing.T) {
	f := ir.NewFunc("m")
	b := f.NewBlock("entry")
	x := f.NewPinnedVar("x", "R9")
	b.Instrs = []*ir.Instr{
		{Op: ir.OpConst, Defs: []ir.VarID{x}, Aux: 1},
		{Op: ir.OpRet, Uses: []ir.VarID{x}},
	}
	if _, err := regalloc.Allocate(f, []string{"r0", "r1"}); err == nil {
		t.Fatal("pool without the pinned register must be rejected")
	}
}

func TestVerifyCatchesBadAssignment(t *testing.T) {
	f := ir.MustParse(`
func bad {
entry:
  a = param 0
  b = param 1
  c = add a b
  print c
  ret a
}
`)
	res, err := regalloc.Allocate(f, pool(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := regalloc.Verify(f, res); err != nil {
		t.Fatal(err)
	}
	// Force a and b into one register: they are simultaneously live.
	res.RegOf[0] = "r2"
	res.RegOf[1] = "r2"
	if err := regalloc.Verify(f, res); err == nil {
		t.Fatal("verifier must reject overlapping assignment")
	}
}

// TestApplySemantics is the end-to-end back-end check: generate SSA code,
// translate out of SSA, allocate registers, rewrite the code onto physical
// registers, and compare observable behaviour with the original program on
// several inputs. Any interference missed by coalescing or allocation
// would corrupt a value and fail here.
func TestApplySemantics(t *testing.T) {
	inputs := [][]int64{{0, 0}, {4, 9}, {-6, 2}}
	for _, seed := range []int64{4000, 4001, 4002} {
		p := cfggen.DefaultProfile("apply", seed)
		p.Funcs = 5
		for _, orig := range cfggen.Generate(p) {
			f := ir.Clone(orig)
			if _, err := core.Translate(f, core.Options{Strategy: core.Sharing, Linear: true, LiveCheck: true}); err != nil {
				t.Fatal(err)
			}
			res, err := regalloc.Allocate(f, pool(16))
			if err != nil {
				t.Fatal(err)
			}
			if err := regalloc.Verify(f, res); err != nil {
				t.Fatal(err)
			}
			if err := regalloc.Apply(f, res); err != nil {
				t.Fatal(err)
			}
			if err := ir.Verify(f); err != nil {
				t.Fatalf("%s: applied code invalid: %v", f.Name, err)
			}
			for _, in := range inputs {
				want, err := interp.Run(orig, in, 200000)
				if err != nil {
					t.Fatal(err)
				}
				got, err := interp.Run(f, in, 200000)
				if err != nil {
					t.Fatalf("%s: allocated code failed on %v: %v\n%s", f.Name, in, err, f)
				}
				if !interp.Equal(want, got) {
					t.Fatalf("%s: allocated code misbehaves on %v\n%s", f.Name, in, f)
				}
			}
		}
	}
}
