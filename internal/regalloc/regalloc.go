// Package regalloc is a linear-scan register allocator for the standard
// (φ-free) code produced by the out-of-SSA translator. The paper's JIT
// context (Section I) motivates it: JIT back ends avoid interference
// graphs and allocate with linear scan, which is exactly why the
// translator must be fast, memory-lean, and must leave few copies.
//
// The allocator is deliberately classic (Poletto-Sarkar style, coarse
// intervals, furthest-end spilling) and honours the translator's register
// pinning: a variable pinned to an architectural register receives that
// register, evicting whoever holds it. The package also provides an
// independent verifier that re-derives liveness and checks that no two
// simultaneously live variables share a register — which doubles as an
// end-to-end check that coalescing never merged interfering variables.
package regalloc

import (
	"fmt"
	"sort"

	"repro/internal/bitset"
	"repro/internal/ir"
	"repro/internal/liveness"
)

// Interval is the coarse live interval of one variable over the linearized
// function.
type Interval struct {
	Var        ir.VarID
	Start, End int32
	Reg        string // assigned register; "" when spilled
	Spilled    bool
	Pinned     string // required architectural register, if any
}

// Result reports an allocation.
type Result struct {
	Intervals []Interval
	RegOf     []string // per variable; "" = spilled or never live
	Spills    int
	RegsUsed  int
}

// Allocate runs linear scan over f with the given register pool. Pinned
// variables require their architectural register to be in the pool. f must
// be φ-free (translate out of SSA first).
func Allocate(f *ir.Func, pool []string) (*Result, error) {
	return AllocateWith(f, pool, liveness.Compute(f))
}

// AllocateWith is Allocate with caller-provided dataflow liveness, so one
// liveness computation can be shared between interval construction and
// Verify (or served by the pipeline's analysis cache). live must describe
// the current instructions of f.
func AllocateWith(f *ir.Func, pool []string, live *liveness.Info) (*Result, error) {
	for _, b := range f.Blocks {
		if len(b.Phis) != 0 {
			return nil, fmt.Errorf("regalloc: %s still contains φ-functions", f.Name)
		}
	}
	inPool := map[string]bool{}
	for _, r := range pool {
		if inPool[r] {
			return nil, fmt.Errorf("regalloc: duplicate register %s in pool", r)
		}
		inPool[r] = true
	}

	intervals := buildIntervals(f, live)
	for i := range intervals {
		if p := f.Vars[intervals[i].Var].Reg; p != "" {
			if !inPool[p] {
				return nil, fmt.Errorf("regalloc: pinned register %s not in pool", p)
			}
			intervals[i].Pinned = p
		}
	}
	sort.SliceStable(intervals, func(i, j int) bool {
		if intervals[i].Start != intervals[j].Start {
			return intervals[i].Start < intervals[j].Start
		}
		return intervals[i].Var < intervals[j].Var
	})

	res := &Result{RegOf: make([]string, len(f.Vars))}
	var active []*Interval
	free := append([]string(nil), pool...)
	used := map[string]bool{}

	take := func(reg string) {
		for i, r := range free {
			if r == reg {
				free = append(free[:i], free[i+1:]...)
				return
			}
		}
	}
	release := func(reg string) { free = append(free, reg) }
	expire := func(start int32) {
		keep := active[:0]
		for _, a := range active {
			if a.End < start {
				release(a.Reg)
			} else {
				keep = append(keep, a)
			}
		}
		active = keep
	}
	spill := func(iv *Interval) {
		iv.Spilled = true
		iv.Reg = ""
		res.Spills++
	}
	evict := func(reg string) error {
		for i, a := range active {
			if a.Reg != reg {
				continue
			}
			if a.Pinned != "" {
				return fmt.Errorf("regalloc: overlapping intervals pinned to %s (%s)", reg, a.Pinned)
			}
			spill(a)
			active = append(active[:i], active[i+1:]...)
			release(reg)
			return nil
		}
		return nil
	}

	for i := range intervals {
		iv := &intervals[i]
		expire(iv.Start)
		if iv.Pinned != "" {
			held := false
			for _, r := range free {
				if r == iv.Pinned {
					held = true
				}
			}
			if !held {
				if err := evict(iv.Pinned); err != nil {
					return nil, err
				}
			}
			take(iv.Pinned)
			iv.Reg = iv.Pinned
			active = append(active, iv)
			used[iv.Reg] = true
			continue
		}
		if len(free) > 0 {
			iv.Reg = free[0]
			free = free[1:]
			active = append(active, iv)
			used[iv.Reg] = true
			continue
		}
		// No register: spill the furthest-ending unpinned interval.
		victim := iv
		for _, a := range active {
			if a.Pinned == "" && a.End > victim.End {
				victim = a
			}
		}
		if victim == iv {
			spill(iv)
			continue
		}
		iv.Reg = victim.Reg
		used[iv.Reg] = true
		spill(victim)
		for j, a := range active {
			if a == victim {
				active[j] = iv
				break
			}
		}
	}

	for _, iv := range intervals {
		if !iv.Spilled {
			res.RegOf[iv.Var] = iv.Reg
		}
	}
	res.Intervals = intervals
	res.RegsUsed = len(used)
	return res, nil
}

// buildIntervals linearizes the blocks in their slice order and computes a
// coarse [start, end] interval per variable from dataflow liveness.
func buildIntervals(f *ir.Func, live *liveness.Info) []Interval {
	start := make([]int32, len(f.Vars))
	end := make([]int32, len(f.Vars))
	seen := bitset.New(len(f.Vars))
	for i := range start {
		start[i] = 1<<31 - 1
		end[i] = -1
	}
	touch := func(v ir.VarID, at int32) {
		seen.Add(int(v))
		if at < start[v] {
			start[v] = at
		}
		if at > end[v] {
			end[v] = at
		}
	}
	pos := int32(0)
	for _, b := range f.Blocks {
		blockStart := pos
		live.In(b.ID).ForEach(func(v int) { touch(ir.VarID(v), blockStart) })
		for _, in := range b.Instrs {
			pos++
			for _, u := range in.Uses {
				touch(u, pos)
			}
			for _, d := range in.Defs {
				touch(d, pos)
			}
		}
		live.Out(b.ID).ForEach(func(v int) { touch(ir.VarID(v), pos) })
	}
	var out []Interval
	seen.ForEach(func(v int) {
		out = append(out, Interval{Var: ir.VarID(v), Start: start[v], End: end[v]})
	})
	return out
}

// Verify independently re-derives liveness and checks the assignment: no
// two simultaneously live register-resident variables share a register, and
// every pinned register-resident variable holds its architectural register.
func Verify(f *ir.Func, res *Result) error {
	return VerifyWith(f, res, liveness.Compute(f))
}

// VerifyWith is Verify with caller-provided liveness — the pipeline threads
// the same liveness.Info through allocation and verification instead of
// recomputing it for each.
func VerifyWith(f *ir.Func, res *Result, live *liveness.Info) error {
	for v, reg := range res.RegOf {
		if p := f.Vars[v].Reg; p != "" && reg != "" && reg != p {
			return fmt.Errorf("regalloc: %s pinned to %s but assigned %s",
				f.VarName(ir.VarID(v)), p, reg)
		}
	}
	check := func(set *bitset.Set, where string) error {
		held := map[string]ir.VarID{}
		var err error
		set.ForEach(func(v int) {
			if err != nil {
				return
			}
			reg := res.RegOf[v]
			if reg == "" {
				return
			}
			if prev, ok := held[reg]; ok {
				err = fmt.Errorf("regalloc: %s and %s both live in %s at %s",
					f.VarName(prev), f.VarName(ir.VarID(v)), reg, where)
				return
			}
			held[reg] = ir.VarID(v)
		})
		return err
	}
	lv := bitset.New(len(f.Vars))
	for _, b := range f.Blocks {
		lv.Clear()
		live.Out(b.ID).ForEach(func(v int) { lv.Add(v) })
		if err := check(lv, "exit of "+b.Name); err != nil {
			return err
		}
		for i := len(b.Instrs) - 1; i >= 0; i-- {
			in := b.Instrs[i]
			for _, d := range in.Defs {
				lv.Remove(int(d))
			}
			for _, u := range in.Uses {
				lv.Add(int(u))
			}
			if err := check(lv, fmt.Sprintf("%s[%d]", b.Name, i)); err != nil {
				return err
			}
		}
	}
	return nil
}
