package regalloc

import (
	"fmt"

	"repro/internal/ir"
)

// Apply rewrites f according to an allocation: every register-resident
// variable is renamed to a shared per-register variable, while spilled
// variables keep their own name (standing in for a stack slot). The result
// is an executable model of the allocated code — if the allocation (or the
// preceding out-of-SSA coalescing) had ever merged two simultaneously live
// values, running the rewritten function through the interpreter would
// produce different observable behaviour. The test suite uses exactly that
// as an end-to-end semantic check of the whole back end.
//
// Apply must be called on the same (φ-free) function the allocation was
// computed for; it reports an error if f has gained variables since.
func Apply(f *ir.Func, res *Result) error {
	if len(res.RegOf) != len(f.Vars) {
		return fmt.Errorf("regalloc: allocation is for %d variables, function has %d",
			len(res.RegOf), len(f.Vars))
	}
	regVar := map[string]ir.VarID{}
	mapped := make([]ir.VarID, len(f.Vars))
	for v := range f.Vars {
		reg := res.RegOf[v]
		if reg == "" {
			mapped[v] = ir.VarID(v) // spilled: keeps its own slot
			continue
		}
		rv, ok := regVar[reg]
		if !ok {
			rv = f.NewVar("%" + reg)
			f.Vars[rv].Reg = reg
			regVar[reg] = rv
		}
		mapped[v] = rv
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for i, d := range in.Defs {
				in.Defs[i] = mapped[d]
			}
			for i, u := range in.Uses {
				in.Uses[i] = mapped[u]
			}
		}
	}
	return nil
}
