// Package bench regenerates the paper's evaluation (Figures 5, 6 and 7) on
// the synthetic SPEC CINT2000 stand-in suite of package cfggen. It is
// shared by cmd/ssabench and the root testing.B benchmarks.
package bench

import (
	"time"

	"repro/internal/cfggen"
	"repro/internal/core"
	"repro/internal/ir"
)

// Benchmark is one named workload of the suite.
type Benchmark struct {
	Name  string
	Funcs []*ir.Func
}

// spec describes the eleven SPEC CINT2000 benchmarks the paper evaluates
// (eon, the C++ benchmark, is excluded there too). The size knobs roughly
// track the relative code sizes of the originals: gcc is by far the
// largest, mcf the smallest.
var spec = []struct {
	name  string
	seed  int64
	funcs int
	stmts int
}{
	{"164.gzip", 164, 10, 160},
	{"175.vpr", 175, 14, 190},
	{"176.gcc", 176, 24, 280},
	{"181.mcf", 181, 6, 110},
	{"186.crafty", 186, 14, 210},
	{"197.parser", 197, 16, 180},
	{"253.perlbmk", 253, 18, 240},
	{"254.gap", 254, 16, 210},
	{"255.vortex", 255, 16, 230},
	{"256.bzip2", 256, 8, 140},
	{"300.twolf", 300, 14, 200},
}

// Suite generates the eleven benchmarks deterministically. scale multiplies
// function counts (1 reproduces the default suite; tests use a smaller
// scale).
func Suite(scale float64) []Benchmark {
	out := make([]Benchmark, 0, len(spec))
	for _, s := range spec {
		p := cfggen.DefaultProfile(s.name, s.seed)
		p.Funcs = int(float64(s.funcs)*scale + 0.5)
		if p.Funcs < 1 {
			p.Funcs = 1
		}
		p.MaxStmts = s.stmts
		p.MinStmts = s.stmts / 3
		out = append(out, Benchmark{Name: s.name, Funcs: cfggen.Generate(p)})
	}
	return out
}

// Names returns the benchmark names in suite order plus the "sum" column.
func Names(suite []Benchmark) []string {
	names := make([]string, 0, len(suite)+1)
	for _, b := range suite {
		names = append(names, b.Name)
	}
	return append(names, "sum")
}

// translate runs one configuration over a fresh clone of f.
func translate(f *ir.Func, opt core.Options) *core.Stats {
	st, err := core.Translate(ir.Clone(f), opt)
	if err != nil {
		panic("bench: " + f.Name + ": " + err.Error())
	}
	return st
}

// runSuite translates every function of every benchmark, returning the
// per-benchmark aggregated stats and the wall-clock time spent inside the
// translator only.
func runSuite(suite []Benchmark, opt core.Options) ([]core.Stats, time.Duration) {
	agg := make([]core.Stats, len(suite))
	var elapsed time.Duration
	for i, b := range suite {
		for _, f := range b.Funcs {
			clone := ir.Clone(f)
			start := time.Now()
			st, err := core.Translate(clone, opt)
			elapsed += time.Since(start)
			if err != nil {
				panic("bench: " + f.Name + ": " + err.Error())
			}
			accumulate(&agg[i], st)
		}
	}
	return agg, elapsed
}

func accumulate(dst *core.Stats, st *core.Stats) {
	dst.Blocks += st.Blocks
	dst.Vars += st.Vars
	dst.Phis += st.Phis
	dst.Affinities += st.Affinities
	dst.RemainingCopies += st.RemainingCopies
	dst.RemainingWeight += st.RemainingWeight
	dst.SharedRemoved += st.SharedRemoved
	dst.FinalCopies += st.FinalCopies
	dst.CycleCopies += st.CycleCopies
	dst.SplitEdges += st.SplitEdges
	dst.IntersectionTests += st.IntersectionTests
	dst.MaterializedVars += st.MaterializedVars
	dst.GraphBytes += st.GraphBytes
	dst.GraphEval += st.GraphEval
	dst.LiveSetBytes += st.LiveSetBytes
	dst.LiveSetEval += st.LiveSetEval
	dst.LiveSetBitEval += st.LiveSetBitEval
	dst.LiveCheckBytes += st.LiveCheckBytes
	dst.LiveCheckEval += st.LiveCheckEval
}
