// Package coalesce implements the paper's aggressive coalescing engine
// (Section III-B): once copy insertion has made the program conventional,
// removing copies is a standard aggressive coalescing problem over
// congruence classes, driven by affinity weights (block frequencies), with
// interference decided by one of the definitions compared in Figure 5.
package coalesce

import (
	"math"
	"sort"

	"repro/internal/congruence"
	"repro/internal/interference"
	"repro/internal/ir"
	"repro/internal/sreedhar"
)

// Variant selects the interference definition used when deciding whether
// two congruence classes may be coalesced — the seven-way comparison of the
// paper's Figure 5 (Sreedhar III and the IS/Sharing refinements are driven
// from the pipeline; this enum covers the class-level predicate).
type Variant int

const (
	// Intersect: classes coalesce when no two members' live ranges
	// intersect.
	Intersect Variant = iota
	// SreedharI: like Intersect but the copy pair itself is exempted
	// (Sreedhar's SSA-based coalescing).
	SreedharI
	// Chaitin: one member live at a definition of the other, definitions by
	// copies between the two exempted.
	Chaitin
	// Value: the paper's value-based interference — intersection plus
	// different SSA values.
	Value
)

// String names the variant as in the paper's figures.
func (v Variant) String() string {
	switch v {
	case Intersect:
		return "Intersect"
	case SreedharI:
		return "Sreedhar I"
	case Chaitin:
		return "Chaitin"
	case Value:
		return "Value"
	}
	return "unknown"
}

// Machinery bundles how interference is actually tested: directly against
// the checker, from a prebuilt interference graph, and with the linear or
// quadratic class-level algorithm (paper, Section IV).
type Machinery struct {
	Chk     *interference.Checker
	Classes *congruence.Classes
	// Graph, when non-nil, answers variable-pair queries from the bit
	// matrix instead of recomputing intersections.
	Graph *interference.Graph
	// Linear selects the paper's linear-time class interference test. It
	// applies to the Value variant (with value chains) and to Intersect;
	// the pair-exemption variants need the quadratic form.
	Linear bool
	// Scratch, when non-nil, supplies the reusable per-run buffers of the
	// affinity sort, the virtualizer, and the sharing post-pass. Nil makes
	// every run allocate fresh buffers (the reference baseline).
	Scratch *Scratch
}

// pairPred returns the variable-pair predicate for the variant.
func (m *Machinery) pairPred(v Variant) congruence.Pred {
	if m.Graph != nil {
		// The graph was built in the matching mode by the pipeline.
		return func(x, y ir.VarID) bool { return m.Graph.Has(x, y) }
	}
	switch v {
	case Intersect, SreedharI:
		return func(x, y ir.VarID) bool { return m.Chk.Intersect(x, y) }
	case Chaitin:
		return func(x, y ir.VarID) bool { return m.Chk.ChaitinInterferes(x, y) }
	default:
		return func(x, y ir.VarID) bool { return m.Chk.Interferes(x, y) }
	}
}

// Status records the fate of one affinity.
type Status uint8

const (
	// Remaining: the copy stays in the generated code.
	Remaining Status = iota
	// Coalesced: source and destination ended in the same congruence class.
	Coalesced
	// SharedRemoved: the copy was removed by the sharing post-pass even
	// though its endpoints are in different classes (another variable of
	// the destination class already carries the value).
	SharedRemoved
)

// Result summarizes one coalescing run.
type Result struct {
	Statuses        []Status // aligned with the input affinities
	Removed         int
	RemainingCount  int
	RemovedWeight   float64
	RemainingWeight float64
}

// ClassesInterfere applies the variant's class-level test. exemptA/exemptB
// carry the copy pair for SreedharI's exemption (ir.NoVar otherwise).
func ClassesInterfere(m *Machinery, v Variant, a, b, exemptA, exemptB ir.VarID) bool {
	if m.Classes.SameClass(a, b) {
		return false
	}
	// Classes pinned to different architectural registers always interfere
	// (paper, Section III-D).
	ra, rb := m.Classes.Reg(a), m.Classes.Reg(b)
	if ra != "" && rb != "" && ra != rb {
		return true
	}
	if m.Linear && m.Graph == nil {
		switch v {
		case Value:
			return m.Classes.InterferesLinear(a, b)
		case Intersect:
			return m.Classes.InterferesLinearPure(a, b)
		}
	}
	if v != SreedharI {
		exemptA, exemptB = ir.NoVar, ir.NoVar
	}
	return m.Classes.InterferesQuadratic(a, b, m.pairPred(v), exemptA, exemptB)
}

// merge coalesces the classes of a and b with the machinery-appropriate
// merge (chain-consuming after a linear check, plain otherwise).
func merge(m *Machinery, v Variant, a, b ir.VarID) {
	if m.Linear && v == Value && m.Graph == nil {
		m.Classes.Merge(a, b) // consumes the equal-ancestor scratch
		return
	}
	m.Classes.MergeSimple(a, b)
}

// Run processes the affinities with the given variant. Order: strictly
// decreasing weight, ties broken by input position (deterministic). When
// groupPhis is true the φ-related affinities are processed φ-function by
// φ-function first (each φ's copies by decreasing weight — the greedy
// independent-set search of Value+IS and Method III), then the remaining
// copies globally by weight.
func Run(m *Machinery, affs []sreedhar.Affinity, v Variant, groupPhis bool) *Result {
	res := &Result{Statuses: make([]Status, len(affs))}
	order := sortOrder(m.Scratch, affs, groupPhis)
	for _, i := range order {
		a := affs[i]
		if m.Classes.SameClass(a.Dst, a.Src) {
			res.Statuses[i] = Coalesced
			continue
		}
		if ClassesInterfere(m, v, a.Dst, a.Src, a.Dst, a.Src) {
			res.Statuses[i] = Remaining
			continue
		}
		merge(m, v, a.Dst, a.Src)
		res.Statuses[i] = Coalesced
	}
	res.tally(affs)
	return res
}

func (r *Result) tally(affs []sreedhar.Affinity) {
	r.Removed, r.RemainingCount = 0, 0
	r.RemovedWeight, r.RemainingWeight = 0, 0
	for i, s := range r.Statuses {
		if s == Remaining {
			r.RemainingCount++
			r.RemainingWeight += affs[i].Weight
		} else {
			r.Removed++
			r.RemovedWeight += affs[i].Weight
		}
	}
}

// sortKey is one precomputed comparison key of sortOrder.
type sortKey struct {
	group  int32 // φ index, or MaxInt32 for the trailing non-φ section
	weight float64
	idx    int32
}

// sortOrder returns the processing order of the affinities: strictly
// decreasing weight within each group, ties broken by input position. The
// comparison keys (φ group, weight, index) are precomputed into one flat
// slice, so the sort compares adjacent struct fields instead of chasing
// affs[order[i]] indirections through a closure per comparison — and with
// the distinct index as the final key the order is total, so the plain
// (unstable) sort is deterministic without SliceStable's extra passes.
// The key and order buffers come from sc when provided; the returned slice
// is then owned by the scratch and valid until its next run.
func sortOrder(sc *Scratch, affs []sreedhar.Affinity, groupPhis bool) []int {
	var keys []sortKey
	var order []int
	if sc != nil {
		keys = growKeys(sc.keys, len(affs))
		order = growInts(sc.order, len(affs))
		sc.keys, sc.order = keys, order
	} else {
		keys = make([]sortKey, len(affs))
		order = make([]int, len(affs))
	}
	for i, a := range affs {
		g := int32(math.MaxInt32)
		if groupPhis && a.Phi >= 0 {
			g = int32(a.Phi) // φ-related first, φ-function by φ-function
		}
		keys[i] = sortKey{group: g, weight: a.Weight, idx: int32(i)}
	}
	sort.Slice(keys, func(x, y int) bool {
		kx, ky := &keys[x], &keys[y]
		if kx.group != ky.group {
			return kx.group < ky.group
		}
		if kx.weight != ky.weight {
			return kx.weight > ky.weight
		}
		return kx.idx < ky.idx
	})
	for i := range keys {
		order[i] = int(keys[i].idx)
	}
	return order
}

// growKeys returns s resized to n, reusing its capacity.
func growKeys(s []sortKey, n int) []sortKey {
	if cap(s) < n {
		return make([]sortKey, n)
	}
	return s[:n]
}

// growInts returns s resized to n, reusing its capacity.
func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}
