package coalesce

import (
	"sort"

	"repro/internal/ir"
	"repro/internal/sreedhar"
)

// RunOptimistic implements the coalescing scheme of Budimlić et al. that
// the paper's conclusion singles out as "orthogonal to and compatible with"
// its techniques: optimistically merge every copy-related pair that passes
// a rough, cheap filter (only the pair itself is tested), then walk the
// resulting tentative groups and de-coalesce the classes that turn out to
// interfere with what has been kept.
//
// φ-node classes are atomic — their members implement a φ-function and can
// never be separated — so the optimistic grouping and the de-coalescing
// both operate on whole congruence classes. Interference uses the paper's
// value-based definition throughout.
func RunOptimistic(m *Machinery, affs []sreedhar.Affinity) *Result {
	// The linear class test's equal-ancestor bookkeeping assumes a strict
	// check-then-merge discipline; de-coalescing checks one class against
	// many kept classes before merging, so quadratic tests are used here
	// regardless of the machinery's Linear flag.
	if m.Linear {
		mq := *m
		mq.Linear = false
		m = &mq
	}
	res := &Result{Statuses: make([]Status, len(affs))}

	// Phase 1: optimistic grouping of class representatives. The cheap
	// filter tests only the copy pair itself (plus register labels).
	group := map[ir.VarID]ir.VarID{}
	var find func(x ir.VarID) ir.VarID
	find = func(x ir.VarID) ir.VarID {
		r, ok := group[x]
		if !ok || r == x {
			group[x] = x
			return x
		}
		root := find(r)
		group[x] = root
		return root
	}
	weightOf := map[ir.VarID]float64{}
	for _, a := range affs {
		ra, rb := m.Classes.Find(a.Dst), m.Classes.Find(a.Src)
		weightOf[find(ra)] += a.Weight
		weightOf[find(rb)] += a.Weight
		if ra == rb {
			continue
		}
		if la, lb := m.Classes.Reg(a.Dst), m.Classes.Reg(a.Src); la != "" && lb != "" && la != lb {
			continue
		}
		if m.Chk.Interferes(a.Dst, a.Src) {
			continue // rough filter: the pair itself interferes
		}
		group[find(ra)] = find(rb)
	}

	// Collect the tentative groups.
	members := map[ir.VarID][]ir.VarID{}
	for x := range group {
		members[find(x)] = append(members[find(x)], x)
	}

	// Phase 2: de-coalesce. Within each group, keep classes greedily by
	// decreasing attached copy weight; a class interfering with the kept
	// set is ejected and stays separate.
	for _, grp := range members {
		if len(grp) < 2 {
			continue
		}
		sort.SliceStable(grp, func(i, j int) bool {
			wi, wj := weightOf[grp[i]], weightOf[grp[j]]
			if wi != wj {
				return wi > wj
			}
			return grp[i] < grp[j]
		})
		kept := grp[:1]
		for _, cls := range grp[1:] {
			ok := true
			for _, k := range kept {
				if ClassesInterfere(m, Value, cls, k, ir.NoVar, ir.NoVar) {
					ok = false
					break
				}
			}
			if !ok {
				continue // de-coalesced: the class leaves the group
			}
			kept = append(kept, cls)
		}
		for _, k := range kept[1:] {
			m.Classes.MergeSimple(kept[0], k)
		}
	}

	// Statuses follow from the final classes.
	for i, a := range affs {
		if m.Classes.SameClass(a.Dst, a.Src) {
			res.Statuses[i] = Coalesced
		}
	}
	res.tally(affs)
	return res
}
