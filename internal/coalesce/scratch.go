package coalesce

import "repro/internal/ir"

// Scratch holds the coalescing engine's reusable per-run working state:
// the precomputed sort keys and order of the affinity loop, the
// virtualizer's per-φ item and member buffers, and the copy-sharing
// post-pass's value index. A Scratch may be reused across functions of any
// size but not concurrently; a nil Machinery.Scratch makes every phase
// allocate fresh buffers (the pre-pooling behavior, kept as the reference
// baseline of the translate trajectory).
type Scratch struct {
	// sortOrder buffers.
	keys  []sortKey
	order []int

	// Virtualizer per-φ buffers.
	items   []vitem
	members []vmember

	// Share's value→members index (CSR layout) and processing order.
	shCount []int32
	shStart []int32
	shFlat  []ir.VarID
	shOrder []int
}

// NewScratch returns an empty scratch for explicit reuse across runs.
func NewScratch() *Scratch { return &Scratch{} }

// i32buf returns s resized to n and zeroed, reusing its capacity.
func i32buf(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}
