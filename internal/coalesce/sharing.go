package coalesce

import (
	"sort"

	"repro/internal/ir"
	"repro/internal/sreedhar"
)

// Share runs the paper's copy-sharing post-pass (Sections III-B and III-E,
// variant "Sharing") over the affinities that survived coalescing. For a
// remaining copy a ↦ b, if some variable c with V(c) = V(a) is live just
// after the copy, then c already carries the value b needs:
//
//  1. if class(c) == class(b) ≠ class(a), the copy is redundant outright;
//  2. if class(a), class(b), class(c) are pairwise different and class(b)
//     can be coalesced with class(c) under the Value rule, coalescing them
//     makes the copy redundant.
//
// Share updates res in place and returns the number of copies it removed.
func Share(m *Machinery, affs []sreedhar.Affinity, res *Result) int {
	// Index variables by SSA value so candidates are found in O(|class|).
	// The index is CSR-shaped — counting pass, prefix sums, fill pass into
	// one flat array — with every buffer drawn from the scratch, so the
	// default Sharing strategy builds it without per-value allocations.
	sc := m.Scratch
	n := len(m.Chk.F.Vars)
	var count, start []int32
	var flat []ir.VarID
	var order []int
	if sc != nil {
		count = i32buf(sc.shCount, n)
		start = i32buf(sc.shStart, n+1)
		sc.shCount, sc.shStart = count, start
	} else {
		count = make([]int32, n)
		start = make([]int32, n+1)
	}
	defined := 0
	for v := 0; v < n; v++ {
		if m.Chk.DU.HasDef(ir.VarID(v)) {
			count[m.Chk.Value(ir.VarID(v))]++
			defined++
		}
	}
	for v := 0; v < n; v++ {
		start[v+1] = start[v] + count[v]
		count[v] = start[v] // reuse count as the fill cursor
	}
	if sc != nil {
		if cap(sc.shFlat) < defined {
			sc.shFlat = make([]ir.VarID, defined)
		}
		flat = sc.shFlat[:defined]
	} else {
		flat = make([]ir.VarID, defined)
	}
	for v := 0; v < n; v++ {
		if m.Chk.DU.HasDef(ir.VarID(v)) {
			val := m.Chk.Value(ir.VarID(v))
			flat[count[val]] = ir.VarID(v)
			count[val]++
		}
	}
	membersOf := func(val ir.VarID) []ir.VarID { return flat[start[val]:start[val+1]] }

	// Heaviest copies first: sharing opportunities consumed by cheap copies
	// should not block expensive ones.
	if sc != nil {
		order = sc.shOrder[:0]
	} else {
		order = make([]int, 0, len(affs)) // the pre-pooling allocation shape
	}
	for i, s := range res.Statuses {
		if s == Remaining {
			order = append(order, i)
		}
	}
	if sc != nil {
		sc.shOrder = order
	}
	sort.SliceStable(order, func(x, y int) bool {
		return affs[order[x]].Weight > affs[order[y]].Weight
	})

	removed := 0
	for _, i := range order {
		a := affs[i]
		src, dst := a.Src, a.Dst
		for _, c := range membersOf(m.Chk.Value(src)) {
			if c == src || c == dst {
				continue
			}
			if !m.Chk.LiveAfter(c, a.Block, a.Slot) {
				continue
			}
			x, y, z := m.Classes.Find(src), m.Classes.Find(dst), m.Classes.Find(c)
			if z == y && y != x {
				res.Statuses[i] = SharedRemoved
				removed++
				break
			}
			if x != y && y != z && x != z &&
				!ClassesInterfere(m, Value, dst, c, ir.NoVar, ir.NoVar) {
				merge(m, Value, dst, c)
				res.Statuses[i] = SharedRemoved
				removed++
				break
			}
		}
	}
	res.tally(affs)
	return removed
}
