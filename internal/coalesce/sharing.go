package coalesce

import (
	"sort"

	"repro/internal/ir"
	"repro/internal/sreedhar"
)

// Share runs the paper's copy-sharing post-pass (Sections III-B and III-E,
// variant "Sharing") over the affinities that survived coalescing. For a
// remaining copy a ↦ b, if some variable c with V(c) = V(a) is live just
// after the copy, then c already carries the value b needs:
//
//  1. if class(c) == class(b) ≠ class(a), the copy is redundant outright;
//  2. if class(a), class(b), class(c) are pairwise different and class(b)
//     can be coalesced with class(c) under the Value rule, coalescing them
//     makes the copy redundant.
//
// Share updates res in place and returns the number of copies it removed.
func Share(m *Machinery, affs []sreedhar.Affinity, res *Result) int {
	// Index variables by SSA value so candidates are found in O(|class|).
	valueMembers := map[ir.VarID][]ir.VarID{}
	for v := range m.Chk.F.Vars {
		vid := ir.VarID(v)
		if m.Chk.DU.HasDef(vid) {
			valueMembers[m.Chk.Value(vid)] = append(valueMembers[m.Chk.Value(vid)], vid)
		}
	}

	// Heaviest copies first: sharing opportunities consumed by cheap copies
	// should not block expensive ones.
	order := make([]int, 0, len(affs))
	for i, s := range res.Statuses {
		if s == Remaining {
			order = append(order, i)
		}
	}
	sort.SliceStable(order, func(x, y int) bool {
		return affs[order[x]].Weight > affs[order[y]].Weight
	})

	removed := 0
	for _, i := range order {
		a := affs[i]
		src, dst := a.Src, a.Dst
		for _, c := range valueMembers[m.Chk.Value(src)] {
			if c == src || c == dst {
				continue
			}
			if !m.Chk.LiveAfter(c, a.Block, a.Slot) {
				continue
			}
			x, y, z := m.Classes.Find(src), m.Classes.Find(dst), m.Classes.Find(c)
			if z == y && y != x {
				res.Statuses[i] = SharedRemoved
				removed++
				break
			}
			if x != y && y != z && x != z &&
				!ClassesInterfere(m, Value, dst, c, ir.NoVar, ir.NoVar) {
				merge(m, Value, dst, c)
				res.Statuses[i] = SharedRemoved
				removed++
				break
			}
		}
	}
	res.tally(affs)
	return removed
}
