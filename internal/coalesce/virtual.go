package coalesce

import (
	"repro/internal/ir"
	"repro/internal/liveness"
	"repro/internal/sreedhar"
)

// Virtualizer emulates the φ-related copies instead of inserting them
// (paper, Section IV-C; Method III of Sreedhar et al.). φ-functions are
// processed one at a time; each φ operand is *virtually* copied into the
// φ-node and the copy is materialized — appended to the pre-created
// parallel copy, with a fresh primed variable — only when the operand's
// congruence class interferes with the φ-node built so far.
//
// Because materializing a copy only ever shrinks the live range of the
// operand, earlier attachment decisions stay valid. When a materialized
// primed variable still conflicts with an already-attached operand class,
// that operand is detached and materialized as well; primed variables of
// one φ never conflict with each other (Lemma 1), so the cascade
// terminates.
//
// The per-φ working state — the weighted operand items and the attached
// member classes — lives in flat value slices drawn from the machinery's
// Scratch (fresh ones per φ when it is nil). Items remember the attached
// member by a stable per-φ id, so detaching a member is a scan over the
// item slice instead of a per-member allocated list.
type Virtualizer struct {
	M   *Machinery
	Ins *sreedhar.Insertion // pre-created empty parallel copies
	// Variant is the interference definition: Value for the paper's
	// "Us III", Intersect for the Sreedhar III baseline.
	Variant Variant
	// Live must be set when the machinery uses an interference graph or
	// liveness sets: materializations update LiveOut of the predecessor and
	// add graph edges for the new variable (the bookkeeping the paper
	// credits for Method III's implementation complexity).
	Live *liveness.Info
}

// VirtualResult reports the outcome of virtualization.
type VirtualResult struct {
	// Materialized lists the copies that were actually inserted; they are
	// the remaining φ-related copies of the translation.
	Materialized                   []sreedhar.Affinity
	Removed                        int // virtual copies coalesced away
	RemovedWeight, RemainingWeight float64
}

// vitem is one φ operand to place into the φ-node.
type vitem struct {
	v      ir.VarID
	pred   int32 // predecessor index; -1 for the φ result
	weight float64
	member int32 // id of the member the item attached through; -1 = none
}

// vmember is one congruence class attached to the φ-node under
// construction. The id is stable for the φ's lifetime even as members are
// removed, so items can refer to their member without per-member lists.
type vmember struct {
	rep ir.VarID
	id  int32
}

// Run virtualizes every φ-function of f. The function must already carry
// the empty parallel copies of sreedhar.PrepareParallelCopies (via an
// Insertion with no affinities).
func (vz *Virtualizer) Run(f *ir.Func) *VirtualResult {
	res := &VirtualResult{}
	phiID := 0
	for _, b := range f.Blocks {
		for _, phi := range b.Phis {
			vz.phi(f, b, phi, phiID, res)
			phiID++
		}
	}
	return res
}

func (vz *Virtualizer) phi(f *ir.Func, b *ir.Block, phi *ir.Instr, phiID int, res *VirtualResult) {
	sc := vz.M.Scratch
	var items []vitem
	var members []vmember
	if sc != nil {
		items, members = sc.items[:0], sc.members[:0]
	}
	items = append(items, vitem{v: phi.Defs[0], pred: -1, weight: b.Freq, member: -1})
	for i := range phi.Uses {
		items = append(items, vitem{v: phi.Uses[i], pred: int32(i), weight: b.Preds[i].Freq, member: -1})
	}
	// Decreasing weight, result first on ties (stable order).
	for i := 1; i < len(items); i++ {
		for j := i; j > 0 && items[j].weight > items[j-1].weight; j-- {
			items[j], items[j-1] = items[j-1], items[j]
		}
	}

	nextID := int32(0)
	for idx := range items {
		if vz.attach(idx, items, &members, &nextID) {
			res.Removed++
			res.RemovedWeight += items[idx].weight
			continue
		}
		p := vz.materialize(f, b, phi, &items[idx], phiID, res)
		// The primed variable must join the φ-node; conflicts with
		// already-attached operand classes detach (and materialize) them.
		vz.attachPrimed(f, b, phi, p, phiID, items, &members, &nextID, res)
	}
	// All attached classes were pairwise checked: coalesce them into the
	// φ-node congruence class.
	for i := 1; i < len(members); i++ {
		vz.M.Classes.MergeForced(members[0].rep, members[i].rep)
	}
	if sc != nil {
		sc.items, sc.members = items[:0], members[:0]
	}
}

// attach tries to add items[idx]'s congruence class to the φ-node. It
// reports success; on failure the caller materializes a copy.
func (vz *Virtualizer) attach(idx int, items []vitem, members *[]vmember, nextID *int32) bool {
	it := &items[idx]
	cls := vz.M.Classes.Find(it.v)
	for mi := range *members {
		if vz.M.Classes.Find((*members)[mi].rep) == cls {
			it.member = (*members)[mi].id
			return true // already part of the φ-node
		}
	}
	for mi := range *members {
		if ClassesInterfere(vz.M, vz.Variant, it.v, (*members)[mi].rep, ir.NoVar, ir.NoVar) {
			return false
		}
	}
	id := *nextID
	*nextID++
	*members = append(*members, vmember{rep: cls, id: id})
	it.member = id
	return true
}

// attachPrimed inserts the freshly materialized variable p into the φ-node,
// detaching and materializing any attached operand class it conflicts with.
func (vz *Virtualizer) attachPrimed(f *ir.Func, b *ir.Block, phi *ir.Instr, p ir.VarID, phiID int,
	items []vitem, members *[]vmember, nextID *int32, res *VirtualResult) {
	for {
		conflict := -1
		for mi := range *members {
			if ClassesInterfere(vz.M, vz.Variant, p, (*members)[mi].rep, ir.NoVar, ir.NoVar) {
				conflict = mi
				break
			}
		}
		if conflict < 0 {
			break
		}
		m := (*members)[conflict]
		*members = append((*members)[:conflict], (*members)[conflict+1:]...)
		// Every operand that attached through this class loses its free
		// ride: each gets its own materialized copy (which, being primed,
		// cannot conflict with p or other primed variables).
		for idx := range items {
			if items[idx].member != m.id {
				continue
			}
			items[idx].member = -1
			res.Removed--
			res.RemovedWeight -= items[idx].weight
			q := vz.materialize(f, b, phi, &items[idx], phiID, res)
			vz.attachPrimed(f, b, phi, q, phiID, items, members, nextID, res)
		}
	}
	id := *nextID
	*nextID++
	*members = append(*members, vmember{rep: vz.M.Classes.Find(p), id: id})
}

// materialize appends the real copy for it to the pre-created parallel
// copy, creating the primed variable, rewriting the φ, and updating the
// def-use index, the value table, the liveness sets, and the interference
// graph as configured. It returns the primed variable.
func (vz *Virtualizer) materialize(f *ir.Func, b *ir.Block, phi *ir.Instr, it *vitem, phiID int, res *VirtualResult) ir.VarID {
	chk := vz.M.Chk
	du := chk.DU
	if it.pred < 0 {
		// Result a0: the φ now defines a'0 and the begin parallel copy
		// performs a0 ← a'0.
		a0 := it.v
		begin := vz.Ins.BeginCopies[b.ID]
		slot := slotOf(b, begin)
		p := f.NewDerivedVar(a0)
		chk.Vals = append(chk.Vals, chk.Vals[a0]) // a0 is a copy of p: same value class
		begin.Defs = append(begin.Defs, a0)
		begin.Uses = append(begin.Uses, p)
		phi.Defs[0] = p
		du.AddDef(p, b.ID, 0, phi)
		du.AddUse(p, b.ID, slot, begin)
		du.ReplaceDef(a0, b.ID, slot, begin)
		chk.DefMoved(p)
		chk.DefMoved(a0)
		vz.addGraphEdgesResult(b, p)
		res.Materialized = append(res.Materialized, sreedhar.Affinity{
			Dst: a0, Src: p, Weight: it.weight, Block: b.ID, Slot: slot, Phi: phiID, Instr: begin,
		})
		res.RemainingWeight += it.weight
		return p
	}
	// Argument ai of predecessor i: the end parallel copy of the
	// predecessor performs a'i ← ai and the φ reads a'i.
	ai := it.v
	pred := b.Preds[it.pred]
	end := vz.Ins.EndCopies[pred.ID]
	slot := slotOf(pred, end)
	p := f.NewDerivedVar(ai)
	chk.Vals = append(chk.Vals, chk.Vals[ai]) // the copy gives p the value of ai
	end.Defs = append(end.Defs, p)
	end.Uses = append(end.Uses, ai)
	phi.Uses[it.pred] = p
	du.AddDef(p, pred.ID, slot, end)
	du.AddUse(ai, pred.ID, slot, end)
	du.RemoveUse(ai, pred.ID, ir.PhiUseSlot, phi)
	du.AddUse(p, pred.ID, ir.PhiUseSlot, phi)
	chk.DefMoved(p)
	if vz.Live != nil {
		out := vz.Live.Out(pred.ID)
		out.Add(int(p))
		if !vz.stillLiveOut(ai, pred) {
			out.Remove(int(ai))
		}
	}
	vz.addGraphEdgesArg(pred, p, slot)
	res.Materialized = append(res.Materialized, sreedhar.Affinity{
		Dst: p, Src: ai, Weight: it.weight, Block: pred.ID, Slot: slot, Phi: phiID, Instr: end,
	})
	res.RemainingWeight += it.weight
	return p
}

// stillLiveOut recomputes whether ai remains live at the predecessor's exit
// after its φ use moved into the block: it must be live-in of a successor
// or feed another φ along one of the predecessor's edges.
func (vz *Virtualizer) stillLiveOut(ai ir.VarID, pred *ir.Block) bool {
	for _, s := range pred.Succs {
		if vz.Live.LiveInBlock(ai, s.ID) {
			return true
		}
		pi := s.PredIndex(pred)
		for _, phi := range s.Phis {
			if phi.Uses[pi] == ai {
				return true
			}
		}
	}
	return false
}

// addGraphEdgesArg records the interferences of a primed variable defined
// by the end parallel copy of pred: it is live from the copy to the edge,
// so it meets everything live after the copy — the block's live-out set,
// terminator uses, and its sibling parallel-copy destinations.
func (vz *Virtualizer) addGraphEdgesArg(pred *ir.Block, p ir.VarID, slot int32) {
	if vz.M.Graph == nil {
		return
	}
	g, chk := vz.M.Graph, vz.M.Chk
	g.GrowTo(len(chk.F.Vars))
	add := func(l ir.VarID) {
		if l == p {
			return
		}
		if vz.Variant == Value && chk.Vals != nil && chk.Vals[l] == chk.Vals[p] {
			return
		}
		g.AddEdge(p, l)
	}
	vz.Live.Out(pred.ID).ForEach(func(l int) { add(ir.VarID(l)) })
	if t := pred.Terminator(); t != nil {
		for _, u := range t.Uses {
			add(u)
		}
	}
	if end := vz.Ins.EndCopies[pred.ID]; end != nil {
		for _, d := range end.Defs {
			if chk.LiveAfter(d, pred.ID, slot) {
				add(d)
			}
		}
	}
}

// addGraphEdgesResult records the interferences of a primed φ result: it is
// live from the block entry to the begin parallel copy, meeting the live-in
// variables and the block's other φ results.
func (vz *Virtualizer) addGraphEdgesResult(b *ir.Block, p ir.VarID) {
	if vz.M.Graph == nil {
		return
	}
	g, chk := vz.M.Graph, vz.M.Chk
	g.GrowTo(len(chk.F.Vars))
	add := func(l ir.VarID) {
		if l == p {
			return
		}
		if vz.Variant == Value && chk.Vals != nil && chk.Vals[l] == chk.Vals[p] {
			return
		}
		g.AddEdge(p, l)
	}
	vz.Live.In(b.ID).ForEach(func(l int) { add(ir.VarID(l)) })
	for _, phi := range b.Phis {
		if phi.Defs[0] != p {
			add(phi.Defs[0])
		}
	}
}

func slotOf(b *ir.Block, in *ir.Instr) int32 {
	for i, x := range b.Instrs {
		if x == in {
			return ir.SlotOfInstr(i)
		}
	}
	panic("coalesce: parallel copy not found in block")
}
