package coalesce_test

import (
	"testing"

	"repro/internal/cfggen"
	"repro/internal/coalesce"
	"repro/internal/congruence"
	"repro/internal/dom"
	"repro/internal/interference"
	"repro/internal/ir"
	"repro/internal/liveness"
	"repro/internal/sreedhar"
	"repro/internal/ssa"
)

func setup(f *ir.Func, linear bool) (*coalesce.Machinery, *sreedhar.Insertion) {
	sreedhar.SplitDuplicatePredEdges(f)
	sreedhar.SplitBranchDefEdges(f)
	ins, err := sreedhar.InsertCopies(f)
	if err != nil {
		panic(err)
	}
	dt := dom.Build(f)
	chk := &interference.Checker{
		F: f, DT: dt, DU: ir.NewDefUse(f), Live: liveness.Compute(f),
		Vals: ssa.Values(f, dt),
	}
	classes := congruence.New(chk)
	for _, node := range ins.PhiNodes {
		for i := 1; i < len(node); i++ {
			classes.MergeForced(node[0], node[i])
		}
	}
	return &coalesce.Machinery{Chk: chk, Classes: classes, Linear: linear}, ins
}

// TestNoInterferingClassesAfterRun is the engine's safety invariant: after
// any variant's run, no congruence class contains two members that
// interfere under the value-based definition.
func TestNoInterferingClassesAfterRun(t *testing.T) {
	variants := []coalesce.Variant{
		coalesce.Intersect, coalesce.SreedharI, coalesce.Chaitin, coalesce.Value,
	}
	p := cfggen.DefaultProfile("safety", 600)
	p.Funcs = 5
	for _, orig := range cfggen.Generate(p) {
		for _, v := range variants {
			for _, linear := range []bool{false, true} {
				f := ir.Clone(orig)
				m, ins := setup(f, linear)
				coalesce.Run(m, ins.Affinities, v, false)
				assertClassesClean(t, f, m)
			}
		}
	}
}

func assertClassesClean(t *testing.T, f *ir.Func, m *coalesce.Machinery) {
	t.Helper()
	seen := map[ir.VarID]bool{}
	for v := range f.Vars {
		root := m.Classes.Find(ir.VarID(v))
		if seen[root] {
			continue
		}
		seen[root] = true
		ms := m.Classes.Members(root)
		for i, x := range ms {
			for _, y := range ms[i+1:] {
				if m.Chk.Interferes(x, y) {
					t.Fatalf("%s: coalesced class holds interfering %s and %s",
						f.Name, f.VarName(x), f.VarName(y))
				}
			}
		}
	}
}

// TestWeightPriority: two φ arguments pinned to different architectural
// registers cannot both join the φ-node; the heavier copy must win.
func TestWeightPriority(t *testing.T) {
	src := `
func w {
entry:
  a = param 0
  jump loop
loop (freq 100):
  x = phi entry:a loop:b
  one = const 1
  b = add x one
  ten = const 10
  c = cmplt b ten
  br c loop exit
exit:
  ret x
}
`
	f := ir.MustParse(src)
	// Pin the two φ arguments to different registers: their classes can
	// never merge, so exactly one of them joins the φ-node — weight order
	// decides which.
	for i, v := range f.Vars {
		if v.Name == "a" {
			f.Vars[i].Reg = "R0"
		}
		if v.Name == "b" {
			f.Vars[i].Reg = "R1"
		}
	}
	m, ins := setup(f, true)
	res := coalesce.Run(m, ins.Affinities, coalesce.Value, false)
	for i, a := range ins.Affinities {
		blk := f.Blocks[a.Block]
		switch {
		case blk.Freq >= 100 && f.VarName(a.Src) == "b":
			if res.Statuses[i] != coalesce.Coalesced {
				t.Fatalf("heavy copy of b must coalesce: %+v", res.Statuses)
			}
		case blk.Freq < 100 && f.VarName(a.Src) == "a":
			if res.Statuses[i] != coalesce.Remaining {
				t.Fatalf("light copy of a must lose to b: %+v", res.Statuses)
			}
		}
	}
}

// TestRegisterConflictBlocksCoalescing: classes pinned to different
// architectural registers must never merge.
func TestRegisterConflictBlocksCoalescing(t *testing.T) {
	f := ir.NewFunc("regs")
	b := f.NewBlock("entry")
	x := f.NewPinnedVar("x", "R0")
	y := f.NewPinnedVar("y", "R1")
	b.Instrs = []*ir.Instr{
		{Op: ir.OpConst, Defs: []ir.VarID{x}, Aux: 1},
		{Op: ir.OpCopy, Defs: []ir.VarID{y}, Uses: []ir.VarID{x}},
		{Op: ir.OpPrint, Uses: []ir.VarID{y}},
		{Op: ir.OpRet},
	}
	dt := dom.Build(f)
	chk := &interference.Checker{
		F: f, DT: dt, DU: ir.NewDefUse(f), Live: liveness.Compute(f),
		Vals: ssa.Values(f, dt),
	}
	m := &coalesce.Machinery{Chk: chk, Classes: congruence.New(chk)}
	affs := sreedhar.CollectExistingCopies(f)
	res := coalesce.Run(m, affs, coalesce.Value, false)
	if res.RemainingCount != 1 {
		t.Fatalf("the x→y copy must remain (different registers), got %+v", res)
	}
	if m.Classes.SameClass(x, y) {
		t.Fatal("pinned classes merged across registers")
	}
}

// TestSharingRemovesRedundantCopy reproduces the paper's sharing situation:
// two copies of the same value where coalescing is blocked, but the second
// copy can reuse the first.
func TestSharingRemovesRedundantCopy(t *testing.T) {
	// b = copy a and c = copy a cannot coalesce with a because a's class
	// also holds z ("after some other coalescing", paper Section III-B),
	// and z interferes with both b and c. But V(b) = V(c) = a and b is live
	// just after c's copy, so sharing coalesces b with c and drops the
	// second copy.
	src := `
func sh {
entry:
  a = param 0
  z = param 1
  b = copy a
  c = copy a
  d = add b c
  e = add d z
  print e
  ret a
}
`
	f := ir.MustParse(src)
	dt := dom.Build(f)
	chk := &interference.Checker{
		F: f, DT: dt, DU: ir.NewDefUse(f), Live: liveness.Compute(f),
		Vals: ssa.Values(f, dt),
	}
	m := &coalesce.Machinery{Chk: chk, Classes: congruence.New(chk), Linear: true}
	a, z := ir.VarID(0), ir.VarID(1)
	m.Classes.MergeForced(a, z) // emulate a prior coalescing decision
	affs := sreedhar.CollectExistingCopies(f)
	res := coalesce.Run(m, affs, coalesce.Value, false)
	if res.RemainingCount != 2 {
		t.Fatalf("both copies must be blocked by z in a's class: %+v", res)
	}
	removed := coalesce.Share(m, affs, res)
	if removed != 1 {
		t.Fatalf("sharing must remove one copy, removed %d", removed)
	}
	b, c := ir.VarID(2), ir.VarID(3)
	if !m.Classes.SameClass(b, c) {
		t.Fatal("sharing must coalesce b and c")
	}
}

// TestVirtualizerMatchesMethodIQuality: with value-based interference, the
// virtualized translator must coalesce the same φ copies as Method I
// followed by per-φ greedy coalescing (the paper's claim that quality does
// not depend on virtualization).
func TestVirtualizerMatchesMethodIQuality(t *testing.T) {
	p := cfggen.DefaultProfile("virtq", 700)
	p.Funcs = 6
	for _, orig := range cfggen.Generate(p) {
		// Method I + per-φ greedy (Value+IS ordering).
		f1 := ir.Clone(orig)
		m1, ins1 := setup(f1, true)
		res1 := coalesce.Run(m1, ins1.Affinities, coalesce.Value, true)

		// Virtualized.
		f2 := ir.Clone(orig)
		sreedhar.SplitDuplicatePredEdges(f2)
		sreedhar.SplitBranchDefEdges(f2)
		ins2 := &sreedhar.Insertion{
			BeginCopies: make([]*ir.Instr, len(f2.Blocks)),
			EndCopies:   make([]*ir.Instr, len(f2.Blocks)),
		}
		sreedhar.PrepareParallelCopies(f2, ins2)
		dt := dom.Build(f2)
		chk := &interference.Checker{
			F: f2, DT: dt, DU: ir.NewDefUse(f2), Live: liveness.Compute(f2),
			Vals: ssa.Values(f2, dt),
		}
		m2 := &coalesce.Machinery{Chk: chk, Classes: congruence.New(chk), Linear: true}
		vz := &coalesce.Virtualizer{M: m2, Ins: ins2, Variant: coalesce.Value,
			Live: chk.Live.(*liveness.Info)}
		res2 := vz.Run(f2)

		if res1.RemainingCount != len(res2.Materialized) {
			t.Logf("Method I remaining: %d, virtualized materialized: %d (func %s)",
				res1.RemainingCount, len(res2.Materialized), orig.Name)
			// The orders differ slightly (virtualization processes the φ
			// result eagerly); allow a small gap but not a blowup.
			diff := res1.RemainingCount - len(res2.Materialized)
			if diff < -2 || diff > 2 {
				t.Fatalf("quality gap too large: %d vs %d",
					res1.RemainingCount, len(res2.Materialized))
			}
		}
	}
}
