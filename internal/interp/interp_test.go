package interp_test

import (
	"testing"

	"repro/internal/interp"
	"repro/internal/ir"
)

func run(t *testing.T, src string, params ...int64) *interp.Result {
	t.Helper()
	f := ir.MustParse(src)
	res, err := interp.Run(f, params, 10000)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

func TestArithAndBranch(t *testing.T) {
	src := `
func f {
entry:
  a = param 0
  b = param 1
  s = add a b
  d = sub a b
  m = mul a b
  n = neg a
  lt = cmplt a b
  eq = cmpeq a b
  print s
  print d
  print m
  print n
  print lt
  print eq
  br lt yes no
yes:
  one = const 1
  ret one
no:
  zero = const 0
  ret zero
}
`
	res := run(t, src, 3, 5)
	want := []int64{8, -2, 15, -3, 1, 0}
	for i, w := range want {
		if res.Trace[i] != w {
			t.Fatalf("trace[%d] = %d, want %d", i, res.Trace[i], w)
		}
	}
	if !res.HasRet || res.Ret != 1 {
		t.Fatalf("ret = %v/%v", res.Ret, res.HasRet)
	}
}

func TestPhiSelectsByIncomingEdge(t *testing.T) {
	src := `
func f {
entry:
  p = param 0
  a = const 10
  b = const 20
  br p t e
t:
  jump j
e:
  jump j
j:
  x = phi t:a e:b
  ret x
}
`
	if r := run(t, src, 1); r.Ret != 10 {
		t.Fatalf("taken path: ret %d", r.Ret)
	}
	if r := run(t, src, 0); r.Ret != 20 {
		t.Fatalf("fallthrough path: ret %d", r.Ret)
	}
}

func TestPhisEvaluateInParallel(t *testing.T) {
	// The classic swap: both φs must read the pre-iteration values.
	src := `
func f {
entry:
  a = const 1
  b = const 2
  n = const 3
  jump h
h:
  x = phi entry:a h:y2
  y = phi entry:b h:x2
  x2 = copy x
  y2 = copy y
  one = const 1
  n = sub n one
  zero = const 0
  c = cmplt zero n
  br c h out
out:
  print x
  print y
  ret x
}
`
	// After 2 swaps x=1,y=2 → (2,1) → (1,2); loop runs 3 iterations: the φ
	// reads swap each time: iter1 x=1,y=2; iter2 x=2,y=1; iter3 x=1,y=2.
	r := run(t, src)
	if r.Trace[0] != 1 || r.Trace[1] != 2 {
		t.Fatalf("swap semantics broken: %v", r.Trace)
	}
}

func TestParallelCopySwap(t *testing.T) {
	src := `
func f {
entry:
  a = const 7
  b = const 9
  parcopy a:b b:a
  print a
  print b
  ret a
}
`
	r := run(t, src)
	if r.Trace[0] != 9 || r.Trace[1] != 7 {
		t.Fatalf("parallel copy must swap: %v", r.Trace)
	}
}

func TestBrDec(t *testing.T) {
	src := `
func f {
entry:
  n = const 3
  jump h
h:
  i = phi entry:n h:j
  print i
  j = brdec i h out
out:
  print j
  ret j
}
`
	r := run(t, src)
	// i printed each iteration: 3,2,1; then j = 0 printed.
	want := []int64{3, 2, 1, 0}
	if len(r.Trace) != 4 {
		t.Fatalf("trace %v", r.Trace)
	}
	for i, w := range want {
		if r.Trace[i] != w {
			t.Fatalf("trace %v, want %v", r.Trace, want)
		}
	}
}

func TestStepLimit(t *testing.T) {
	src := `
func f {
entry:
  jump entry
}
`
	f := ir.MustParse(src)
	if _, err := interp.Run(f, nil, 100); err != interp.ErrStepLimit {
		t.Fatalf("want step limit error, got %v", err)
	}
}

func TestUndefinedReadIsError(t *testing.T) {
	// x is only assigned on one path but read on both.
	src := `
func f {
entry:
  p = param 0
  br p t e
t:
  x = const 1
  jump j
e:
  jump j
j:
  ret x
}
`
	f := ir.MustParse(src)
	if _, err := interp.Run(f, []int64{0}, 100); err == nil {
		t.Fatal("read of undefined variable must fail")
	}
	if _, err := interp.Run(f, []int64{1}, 100); err != nil {
		t.Fatalf("defined path must succeed: %v", err)
	}
}

func TestMissingParamsReadAsZero(t *testing.T) {
	src := `
func f {
entry:
  a = param 5
  ret a
}
`
	if r := run(t, src); r.Ret != 0 {
		t.Fatalf("missing param must be 0, got %d", r.Ret)
	}
}

func TestEqual(t *testing.T) {
	a := &interp.Result{Ret: 1, HasRet: true, Trace: []int64{1, 2}}
	b := &interp.Result{Ret: 1, HasRet: true, Trace: []int64{1, 2}}
	if !interp.Equal(a, b) {
		t.Fatal("identical results must be equal")
	}
	b.Trace[1] = 3
	if interp.Equal(a, b) {
		t.Fatal("different traces must differ")
	}
	c := &interp.Result{Ret: 1, HasRet: false, Trace: []int64{1, 2}}
	if interp.Equal(a, c) {
		t.Fatal("ret presence matters")
	}
}
