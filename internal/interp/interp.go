// Package interp executes ir functions, both in SSA form (φ-functions are
// evaluated with parallel-copy semantics on block entry) and in standard
// form after out-of-SSA translation. It is the semantic-equivalence oracle
// of the test suite: a translation is correct iff the translated program
// produces the same observable behaviour (print trace and return value) as
// the SSA program on every input — this is how the lost-copy and swap
// problems manifest as test failures rather than silent miscompilations.
package interp

import (
	"errors"
	"fmt"

	"repro/internal/ir"
)

// Result is the observable behaviour of one execution.
type Result struct {
	Ret    int64
	HasRet bool
	Trace  []int64 // values printed by OpPrint, in order
	Steps  int     // executed instructions, φs included
}

// ErrStepLimit is returned when execution exceeds the step budget.
var ErrStepLimit = errors.New("interp: step limit exceeded")

// Run executes f with the given parameter values, stopping with ErrStepLimit
// after maxSteps instructions. Reading a variable that has not been assigned
// is an error: it indicates a miscompilation rather than a legal execution.
func Run(f *ir.Func, params []int64, maxSteps int) (*Result, error) {
	env := make([]int64, len(f.Vars))
	def := make([]bool, len(f.Vars))
	res := &Result{}

	read := func(v ir.VarID) (int64, error) {
		if !def[v] {
			return 0, fmt.Errorf("interp: read of undefined variable %s", f.VarName(v))
		}
		return env[v], nil
	}
	write := func(v ir.VarID, x int64) {
		env[v] = x
		def[v] = true
	}

	b := f.Entry()
	var from *ir.Block
	for {
		// φ-functions execute in parallel on entry.
		if len(b.Phis) > 0 {
			if from == nil {
				return nil, fmt.Errorf("interp: φ in entry block %s", b.Name)
			}
			pi := b.PredIndex(from)
			if pi < 0 {
				return nil, fmt.Errorf("interp: arrived in %s from non-predecessor %s", b.Name, from.Name)
			}
			vals := make([]int64, len(b.Phis))
			for i, phi := range b.Phis {
				v, err := read(phi.Uses[pi])
				if err != nil {
					return nil, err
				}
				vals[i] = v
				res.Steps++
			}
			for i, phi := range b.Phis {
				write(phi.Defs[0], vals[i])
			}
		}
		for _, in := range b.Instrs {
			res.Steps++
			if res.Steps > maxSteps {
				return nil, ErrStepLimit
			}
			switch in.Op {
			case ir.OpNop:
			case ir.OpConst:
				write(in.Defs[0], in.Aux)
			case ir.OpParam:
				var p int64
				if int(in.Aux) < len(params) {
					p = params[in.Aux]
				}
				write(in.Defs[0], p)
			case ir.OpCopy:
				v, err := read(in.Uses[0])
				if err != nil {
					return nil, err
				}
				write(in.Defs[0], v)
			case ir.OpParCopy:
				tmp := make([]int64, len(in.Uses))
				for i, u := range in.Uses {
					v, err := read(u)
					if err != nil {
						return nil, err
					}
					tmp[i] = v
				}
				for i, d := range in.Defs {
					write(d, tmp[i])
				}
			case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpCmpLT, ir.OpCmpEQ:
				x, err := read(in.Uses[0])
				if err != nil {
					return nil, err
				}
				y, err := read(in.Uses[1])
				if err != nil {
					return nil, err
				}
				var r int64
				switch in.Op {
				case ir.OpAdd:
					r = x + y
				case ir.OpSub:
					r = x - y
				case ir.OpMul:
					r = x * y
				case ir.OpCmpLT:
					if x < y {
						r = 1
					}
				case ir.OpCmpEQ:
					if x == y {
						r = 1
					}
				}
				write(in.Defs[0], r)
			case ir.OpNeg:
				x, err := read(in.Uses[0])
				if err != nil {
					return nil, err
				}
				write(in.Defs[0], -x)
			case ir.OpPrint:
				x, err := read(in.Uses[0])
				if err != nil {
					return nil, err
				}
				res.Trace = append(res.Trace, x)
			case ir.OpJump:
				from, b = b, b.Succs[0]
			case ir.OpBranch:
				c, err := read(in.Uses[0])
				if err != nil {
					return nil, err
				}
				if c != 0 {
					from, b = b, b.Succs[0]
				} else {
					from, b = b, b.Succs[1]
				}
			case ir.OpBrDec:
				c, err := read(in.Uses[0])
				if err != nil {
					return nil, err
				}
				c--
				write(in.Defs[0], c)
				if c != 0 {
					from, b = b, b.Succs[0]
				} else {
					from, b = b, b.Succs[1]
				}
			case ir.OpRet:
				if len(in.Uses) == 1 {
					v, err := read(in.Uses[0])
					if err != nil {
						return nil, err
					}
					res.Ret, res.HasRet = v, true
				}
				return res, nil
			default:
				return nil, fmt.Errorf("interp: unknown op %s", in.Op)
			}
			if in.Op.IsTerminator() {
				break
			}
		}
	}
}

// Equal reports whether two results are observably identical.
func Equal(a, b *Result) bool {
	if a.HasRet != b.HasRet || (a.HasRet && a.Ret != b.Ret) || len(a.Trace) != len(b.Trace) {
		return false
	}
	for i := range a.Trace {
		if a.Trace[i] != b.Trace[i] {
			return false
		}
	}
	return true
}
