package faults

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// reset returns the framework to its pristine state between tests.
func reset() {
	Disable()
}

func TestDisarmedInjectIsNil(t *testing.T) {
	defer reset()
	p := Register("test.disarmed")
	if err := p.Inject(); err != nil {
		t.Fatalf("disarmed Inject returned %v", err)
	}
	if err := Inject("test.disarmed"); err != nil {
		t.Fatalf("disarmed Inject(name) returned %v", err)
	}
	if Active() {
		t.Fatal("Active() true before Enable")
	}
}

func TestErrorKindAlways(t *testing.T) {
	defer reset()
	p := Register("test.err")
	if err := Enable("test.err=err", 1); err != nil {
		t.Fatal(err)
	}
	if !Active() {
		t.Fatal("Active() false after Enable")
	}
	for i := 0; i < 3; i++ {
		err := p.Inject()
		var fe *Error
		if !errors.As(err, &fe) || fe.Point != "test.err" {
			t.Fatalf("want *Error{test.err}, got %v", err)
		}
	}
	st := Snapshot()["test.err"]
	if st.Evals != 3 || st.Fires != 3 {
		t.Fatalf("snapshot = %+v, want 3/3", st)
	}
}

func TestPanicKind(t *testing.T) {
	defer reset()
	p := Register("test.panic")
	if err := Enable("test.panic=panic", 1); err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		pv, ok := r.(*PanicValue)
		if !ok || pv.Point != "test.panic" {
			t.Fatalf("recovered %v, want *PanicValue{test.panic}", r)
		}
	}()
	p.Inject()
	t.Fatal("Inject did not panic")
}

func TestSleepKind(t *testing.T) {
	defer reset()
	p := Register("test.sleep")
	if err := Enable("test.sleep=sleep=20ms", 1); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := p.Inject(); err != nil {
		t.Fatalf("sleep fault returned %v", err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("sleep fault returned after %v, want >= 20ms", d)
	}
}

func TestEveryNth(t *testing.T) {
	defer reset()
	p := Register("test.every")
	if err := Enable("test.every=err:every=3", 1); err != nil {
		t.Fatal(err)
	}
	var pattern []bool
	for i := 0; i < 9; i++ {
		pattern = append(pattern, p.Inject() != nil)
	}
	want := []bool{false, false, true, false, false, true, false, false, true}
	for i := range want {
		if pattern[i] != want[i] {
			t.Fatalf("every=3 pattern = %v, want %v", pattern, want)
		}
	}
}

func TestOnce(t *testing.T) {
	defer reset()
	p := Register("test.once")
	if err := Enable("test.once=err:once", 1); err != nil {
		t.Fatal(err)
	}
	if p.Inject() == nil {
		t.Fatal("first evaluation did not fire")
	}
	for i := 0; i < 5; i++ {
		if p.Inject() != nil {
			t.Fatal("one-shot fired twice")
		}
	}
}

func TestProbabilityDeterministic(t *testing.T) {
	defer reset()
	p := Register("test.prob")
	run := func(seed int64) []bool {
		if err := Enable("test.prob=err:0.5", seed); err != nil {
			t.Fatal(err)
		}
		out := make([]bool, 64)
		for i := range out {
			out[i] = p.Inject() != nil
		}
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different firing schedules")
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical 64-step schedules")
	}
	fires := 0
	for _, f := range a {
		if f {
			fires++
		}
	}
	if fires == 0 || fires == len(a) {
		t.Fatalf("p=0.5 fired %d/64 times", fires)
	}
}

func TestEnableRejectsUnknownPoint(t *testing.T) {
	defer reset()
	Register("test.known")
	err := Enable("test.knwon=err", 1)
	if err == nil || !strings.Contains(err.Error(), "unknown failpoint") {
		t.Fatalf("want unknown-failpoint error, got %v", err)
	}
	if Active() {
		t.Fatal("failed Enable armed the gate")
	}
}

func TestEnableRejectsBadSpecs(t *testing.T) {
	defer reset()
	Register("test.spec")
	for _, spec := range []string{
		"",
		"test.spec",
		"test.spec=boom",
		"test.spec=err:1.5",
		"test.spec=err:-0.1",
		"test.spec=err:every=0",
		"test.spec=sleep=nope",
		"test.spec=sleep=-1ms",
		"test.spec=err:0.1:extra",
		"test.spec=err,test.spec=panic",
	} {
		if err := Enable(spec, 1); err == nil {
			t.Errorf("Enable(%q) succeeded, want error", spec)
		}
	}
}

func TestDisableDisarmsAndKeepsCounters(t *testing.T) {
	defer reset()
	p := Register("test.disable")
	if err := Enable("test.disable=err", 1); err != nil {
		t.Fatal(err)
	}
	p.Inject()
	Disable()
	if p.Inject() != nil {
		t.Fatal("Inject fired after Disable")
	}
	if st := Snapshot()["test.disable"]; st.Fires != 1 {
		t.Fatalf("Disable cleared counters: %+v", st)
	}
}

func TestEnableResetsCounters(t *testing.T) {
	defer reset()
	p := Register("test.reset")
	if err := Enable("test.reset=err", 1); err != nil {
		t.Fatal(err)
	}
	p.Inject()
	if err := Enable("test.reset=err", 2); err != nil {
		t.Fatal(err)
	}
	if st := Snapshot()["test.reset"]; st.Evals != 0 || st.Fires != 0 {
		t.Fatalf("re-Enable kept counters: %+v", st)
	}
}

func TestRegisterIsIdempotent(t *testing.T) {
	a := Register("test.idem")
	b := Register("test.idem")
	if a != b {
		t.Fatal("Register returned distinct points for one name")
	}
	found := false
	for _, n := range Names() {
		if n == "test.idem" {
			found = true
		}
	}
	if !found {
		t.Fatal("Names() missing registered point")
	}
}

func TestConcurrentInject(t *testing.T) {
	defer reset()
	p := Register("test.conc")
	if err := Enable("test.conc=err:0.5", 7); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				p.Inject()
			}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if st := Snapshot()["test.conc"]; st.Evals != 1600 {
		t.Fatalf("evals = %d, want 1600", st.Evals)
	}
}
