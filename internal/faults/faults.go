// Package faults is the repo-wide failpoint framework: named injection
// points compiled into the production code paths (parser, pass pipeline,
// translation memo, bench store, every serve handler stage) that are inert
// until a test — or the ssad -faults flag — arms them with a deterministic,
// seeded schedule. The chaos suite drives the serving stack while these
// points fire to prove the resilience layer: a daemon that stays up, books
// that balance, and requests that always end in exactly one outcome.
//
// A package declares its points once at init time and fires them inline:
//
//	var fpDecode = faults.Register("serve.decode")
//
//	if err := fpDecode.Inject(); err != nil { ... }
//
// When nothing is armed, Inject is a single atomic load — the package-level
// gate — so production binaries pay effectively nothing for carrying the
// points. Arming happens through a schedule spec:
//
//	faults.Enable("serve.decode=err:0.01,pipeline.outofssa=panic:every=500", seed)
//
// Grammar: comma-separated  name=kind[:activation]  clauses, where kind is
//
//	err          return an *Error from Inject
//	panic        panic with a *PanicValue
//	sleep=DUR    sleep DUR, then return nil (latency fault)
//
// and the optional activation is one of
//
//	<float>      fire with that probability (seeded, deterministic)
//	every=N      fire on every Nth evaluation
//	once         fire on the first evaluation only
//
// Omitting the activation fires on every evaluation. Each point draws from
// its own deterministic generator derived from the schedule seed and the
// point name, so a given (spec, seed) pair produces the same firing
// schedule on every run — chaos failures reproduce.
package faults

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Error is the error an armed err-kind failpoint returns from Inject.
type Error struct {
	// Point is the failpoint's registered name.
	Point string
}

func (e *Error) Error() string { return "faults: injected failure at " + e.Point }

// PanicValue is the value an armed panic-kind failpoint panics with, so
// recovery sites can attribute the panic to its injection point.
type PanicValue struct {
	// Point is the failpoint's registered name.
	Point string
}

func (p *PanicValue) String() string { return "faults: injected panic at " + p.Point }

// Kind classifies what an armed failpoint does when it fires.
type Kind uint8

// The fault kinds.
const (
	// KindError returns an *Error from Inject.
	KindError Kind = iota
	// KindPanic panics with a *PanicValue.
	KindPanic
	// KindSleep sleeps for the configured duration and returns nil.
	KindSleep
)

// config is one armed schedule clause. It is immutable except for the
// firing counters, which are guarded by the owning Point's mutex.
type config struct {
	kind  Kind
	sleep time.Duration

	// Activation: exactly one of prob/every/once is set; none means fire
	// on every evaluation.
	prob  float64
	every int64
	once  bool

	evals int64 // evaluations under this config
	fired bool  // for once
	rng   *rand.Rand
}

// Point is one registered failpoint. Points are created by Register
// (typically in a package-level var) and live for the process's lifetime.
type Point struct {
	name  string
	evals atomic.Int64 // evaluations while armed, since the last Enable
	fires atomic.Int64 // faults actually delivered, since the last Enable

	mu  sync.Mutex
	cfg *config // nil while this point is unarmed
}

// Name returns the point's registered name.
func (p *Point) Name() string { return p.name }

var (
	// armed is the package-level gate: false means every Inject call
	// returns immediately after one atomic load.
	armed atomic.Bool

	regMu    sync.Mutex
	registry = map[string]*Point{}
)

// Register declares (or retrieves) the failpoint with the given name.
// Registering the same name twice returns the same Point, so tests and the
// owning package can share one.
func Register(name string) *Point {
	regMu.Lock()
	defer regMu.Unlock()
	if p, ok := registry[name]; ok {
		return p
	}
	p := &Point{name: name}
	registry[name] = p
	return p
}

// Names returns every registered failpoint name, sorted.
func Names() []string {
	regMu.Lock()
	defer regMu.Unlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Active reports whether any failpoint schedule is currently armed.
func Active() bool { return armed.Load() }

// Enable replaces the active schedule with the parsed spec, seeds every
// named point deterministically, resets all firing counters, and arms the
// package gate. Naming a point that no imported package has registered is
// an error — it is almost always a typo, and a silently inert clause would
// make a chaos run prove nothing.
func Enable(spec string, seed int64) error {
	cfgs, err := parseSpec(spec, seed)
	if err != nil {
		return err
	}
	regMu.Lock()
	defer regMu.Unlock()
	for name, p := range registry {
		p.mu.Lock()
		p.cfg = cfgs[name]
		p.mu.Unlock()
		p.evals.Store(0)
		p.fires.Store(0)
	}
	armed.Store(true)
	return nil
}

// Disable disarms every failpoint and the package gate. Firing counters
// are kept until the next Enable, so a test can Disable and then read its
// Snapshot.
func Disable() {
	armed.Store(false)
	regMu.Lock()
	defer regMu.Unlock()
	for _, p := range registry {
		p.mu.Lock()
		p.cfg = nil
		p.mu.Unlock()
	}
}

// parseSpec parses the schedule grammar documented on the package. The
// caller must not have mutated the registry between parse and install; the
// strict unknown-name check runs here.
func parseSpec(spec string, seed int64) (map[string]*config, error) {
	cfgs := map[string]*config{}
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		name, rest, ok := strings.Cut(clause, "=")
		name = strings.TrimSpace(name)
		if !ok || name == "" {
			return nil, fmt.Errorf("faults: bad clause %q (want name=kind[:activation])", clause)
		}
		regMu.Lock()
		_, known := registry[name]
		regMu.Unlock()
		if !known {
			return nil, fmt.Errorf("faults: unknown failpoint %q (registered: %s)",
				name, strings.Join(Names(), ", "))
		}
		if _, dup := cfgs[name]; dup {
			return nil, fmt.Errorf("faults: failpoint %q named twice", name)
		}
		cfg, err := parseClause(rest)
		if err != nil {
			return nil, fmt.Errorf("faults: clause %q: %w", clause, err)
		}
		cfg.rng = rand.New(rand.NewSource(seed ^ int64(hashName(name))))
		cfgs[name] = cfg
	}
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("faults: empty schedule spec")
	}
	return cfgs, nil
}

// parseClause parses "kind[:activation]" — everything right of the '='.
func parseClause(rest string) (*config, error) {
	parts := strings.Split(rest, ":")
	cfg := &config{}
	kind := strings.TrimSpace(parts[0])
	switch {
	case kind == "err":
		cfg.kind = KindError
	case kind == "panic":
		cfg.kind = KindPanic
	case strings.HasPrefix(kind, "sleep="):
		d, err := time.ParseDuration(strings.TrimPrefix(kind, "sleep="))
		if err != nil {
			return nil, fmt.Errorf("bad sleep duration: %w", err)
		}
		if d <= 0 {
			return nil, fmt.Errorf("sleep duration must be positive, got %s", d)
		}
		cfg.kind = KindSleep
		cfg.sleep = d
	default:
		return nil, fmt.Errorf("unknown fault kind %q (err, panic, or sleep=DUR)", kind)
	}
	if len(parts) > 2 {
		return nil, fmt.Errorf("too many ':' fields")
	}
	if len(parts) == 1 {
		return cfg, nil
	}
	act := strings.TrimSpace(parts[1])
	switch {
	case act == "once":
		cfg.once = true
	case strings.HasPrefix(act, "every="):
		n, err := strconv.ParseInt(strings.TrimPrefix(act, "every="), 10, 64)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad every=N activation %q", act)
		}
		cfg.every = n
	default:
		p, err := strconv.ParseFloat(act, 64)
		if err != nil || p <= 0 || p > 1 {
			return nil, fmt.Errorf("bad activation %q (float probability, every=N, or once)", act)
		}
		cfg.prob = p
	}
	return cfg, nil
}

// hashName is FNV-1a, inlined to keep the package dependency-free.
func hashName(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Inject evaluates the failpoint: nil when the framework is disarmed, the
// point has no schedule clause, or the clause decided not to fire this
// time; otherwise the configured fault — an *Error return, a *PanicValue
// panic, or a latency sleep (which returns nil). The disarmed path is a
// single atomic load.
func (p *Point) Inject() error {
	if !armed.Load() {
		return nil
	}
	return p.inject()
}

// Inject fires the named failpoint; unregistered names are inert. Prefer
// holding the *Point from Register on hot paths.
func Inject(name string) error {
	if !armed.Load() {
		return nil
	}
	regMu.Lock()
	p := registry[name]
	regMu.Unlock()
	if p == nil {
		return nil
	}
	return p.inject()
}

func (p *Point) inject() error {
	p.mu.Lock()
	cfg := p.cfg
	if cfg == nil {
		p.mu.Unlock()
		return nil
	}
	p.evals.Add(1)
	cfg.evals++
	fire := true
	switch {
	case cfg.once:
		fire = !cfg.fired
		cfg.fired = true
	case cfg.every > 0:
		fire = cfg.evals%cfg.every == 0
	case cfg.prob > 0:
		fire = cfg.rng.Float64() < cfg.prob
	}
	if !fire {
		p.mu.Unlock()
		return nil
	}
	p.fires.Add(1)
	kind, sleep := cfg.kind, cfg.sleep
	p.mu.Unlock()

	switch kind {
	case KindPanic:
		panic(&PanicValue{Point: p.name})
	case KindSleep:
		time.Sleep(sleep)
		return nil
	default:
		return &Error{Point: p.name}
	}
}

// PointStats is one point's firing record since the last Enable.
type PointStats struct {
	// Evals counts Inject evaluations that reached an armed clause.
	Evals int64
	// Fires counts faults actually delivered.
	Fires int64
}

// Snapshot returns the firing record of every registered point. Points
// that were never evaluated while armed report zeros.
func Snapshot() map[string]PointStats {
	regMu.Lock()
	defer regMu.Unlock()
	out := make(map[string]PointStats, len(registry))
	for name, p := range registry {
		out[name] = PointStats{Evals: p.evals.Load(), Fires: p.fires.Load()}
	}
	return out
}
