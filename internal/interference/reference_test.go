package interference_test

import (
	"testing"

	"repro/internal/cfggen"
	"repro/internal/coalesce"
	"repro/internal/congruence"
	"repro/internal/dom"
	"repro/internal/interference"
	"repro/internal/ir"
	"repro/internal/livecheck"
	"repro/internal/liveness"
	"repro/internal/sreedhar"
	"repro/internal/ssa"
)

// agree fails the test when the optimized query path (binary-search
// LiveAfter, packed def-point keys) and the reference implementations
// disagree anywhere on f.
func agree(t *testing.T, f *ir.Func, chk *interference.Checker, stage string) {
	t.Helper()
	n := len(f.Vars)
	for a := 0; a < n; a++ {
		av := ir.VarID(a)
		for b := 0; b < n; b++ {
			bv := ir.VarID(b)
			if got, want := chk.DefDominates(av, bv), chk.DefDominatesReference(av, bv); got != want {
				t.Fatalf("%s/%s: DefDominates(%s,%s) = %v, reference %v",
					f.Name, stage, f.VarName(av), f.VarName(bv), got, want)
			}
			got, want := chk.DefOrder(av, bv), chk.DefOrderReference(av, bv)
			if (got < 0) != (want < 0) || (got > 0) != (want > 0) {
				t.Fatalf("%s/%s: DefOrder(%s,%s) = %d, reference %d",
					f.Name, stage, f.VarName(av), f.VarName(bv), got, want)
			}
		}
		for _, b := range f.Blocks {
			for slot := int32(0); slot <= int32(len(b.Instrs)); slot++ {
				if got, want := chk.LiveAfter(av, b.ID, slot), chk.LiveAfterReference(av, b.ID, slot); got != want {
					t.Fatalf("%s/%s: LiveAfter(%s, %d, %d) = %v, reference %v",
						f.Name, stage, f.VarName(av), b.ID, slot, got, want)
				}
			}
		}
	}
}

func buildChecker(f *ir.Func, useLiveCheck bool) *interference.Checker {
	dt := dom.Build(f)
	du := ir.NewDefUse(f)
	var live interference.BlockLiveness
	if useLiveCheck {
		live = livecheck.New(f, dt, du)
	} else {
		live = liveness.ComputeWith(f, liveness.Bitsets)
	}
	return &interference.Checker{F: f, DT: dt, DU: du, Live: live, Vals: ssa.Values(f, dt)}
}

// TestOptimizedQueriesMatchReference is the differential property test of
// the tentpole: on random and large generated CFGs, under both liveness
// backends, the binary-search LiveAfter and the packed def-order keys must
// agree with the pre-optimization linear-scan implementations — before and
// after the virtualized translator moves definitions around
// (ReplaceDef/AddUse/RemoveUse through materialization).
func TestOptimizedQueriesMatchReference(t *testing.T) {
	var funcs []*ir.Func
	p := cfggen.DefaultProfile("refdiff", 911)
	p.Funcs = 4
	funcs = append(funcs, cfggen.Generate(p)...)
	funcs = append(funcs, cfggen.GenerateLarge(cfggen.LargeCoalesceProfile("refdiff-large", 913, 0.04))...)

	for fi, f := range funcs {
		useLiveCheck := fi%2 == 0
		sreedhar.SplitDuplicatePredEdges(f)
		sreedhar.SplitBranchDefEdges(f)

		// Stage 1: static function, copies not yet inserted.
		agree(t, f, buildChecker(f, useLiveCheck), "static")

		// Stage 2: run the virtualized translator, which materializes
		// copies through AddDef/AddUse/RemoveUse/ReplaceDef and reports the
		// moves with DefMoved; the cached keys must track every move.
		ins := &sreedhar.Insertion{
			BeginCopies: make([]*ir.Instr, len(f.Blocks)),
			EndCopies:   make([]*ir.Instr, len(f.Blocks)),
		}
		sreedhar.PrepareParallelCopies(f, ins)
		dt := dom.Build(f)
		du := ir.NewDefUse(f)
		live := liveness.ComputeWith(f, liveness.Bitsets)
		var oracle interference.BlockLiveness = live
		if useLiveCheck {
			oracle = livecheck.New(f, dt, du)
		}
		chk := &interference.Checker{F: f, DT: dt, DU: du, Live: oracle, Vals: ssa.Values(f, dt)}
		classes := congruence.New(chk)
		m := &coalesce.Machinery{Chk: chk, Classes: classes, Linear: true}
		vz := &coalesce.Virtualizer{M: m, Ins: ins, Variant: coalesce.Value, Live: live}
		vz.Run(f)
		agree(t, f, chk, "virtualized")
	}
}
