// Package interference implements the paper's notions of live-range
// intersection and interference (Section III-A):
//
//   - Intersect: the live ranges of a and b share a program point. In SSA
//     this reduces to "the variable whose definition dominates the other's
//     is live just after that other definition" (Budimlić et al.).
//   - Chaitin: a is live at the definition of b and that definition is not
//     a copy between a and b (or symmetrically).
//   - Value-based (the paper's contribution): a and b interfere iff their
//     live ranges intersect *and* V(a) ≠ V(b), where V is the SSA value of
//     package ssa. With this definition the interference relation never has
//     to be updated or rebuilt after coalescing.
//
// Liveness is consumed through the BlockLiveness interface so that the same
// tests run from dataflow liveness sets (package liveness) or from the fast
// liveness checker (package livecheck) — the paper's "LiveCheck" option.
//
// The dominance-based test only pays off when each individual query is
// near-constant (Budimlić et al.), so the hot primitives avoid per-query
// re-derivation: LiveAfter binary-searches the (block, slot)-sorted use
// lists of ir.DefUse instead of scanning them, and DefOrder/DefDominates
// compare packed per-variable def-point keys (preorder<<32|slot, cached in
// the Checker) instead of chasing DefBlock→PreOrder indirections on every
// call. The pre-optimization implementations survive as the *Reference
// methods — the differential oracle of the tests and of the coalescing
// trajectory benchmark — and the Reference flag reroutes the whole checker
// to them.
package interference

import (
	"repro/internal/dom"
	"repro/internal/ir"
)

// BlockLiveness answers block-boundary liveness queries. Both
// liveness.Info and livecheck.Checker satisfy it.
type BlockLiveness interface {
	// LiveInBlock reports whether v is live at entry of block b (φ results
	// of b excluded).
	LiveInBlock(v ir.VarID, b int) bool
	// LiveOutBlock reports whether v is live at exit of block b, φ uses of
	// successors included.
	LiveOutBlock(v ir.VarID, b int) bool
}

// Checker bundles the structures needed for interference queries.
type Checker struct {
	F    *ir.Func
	DT   *dom.Tree
	DU   *ir.DefUse
	Live BlockLiveness
	// Vals is the SSA value of every variable (ssa.Values). It may be nil,
	// in which case value-based queries degrade to pure intersection.
	Vals []ir.VarID

	// Reference answers every query with the pre-optimization
	// implementations (linear use-list scans, per-query def-point
	// derivation). Semantics are identical; only cost differs. It is the
	// kept baseline of the coalescing trajectory benchmark.
	Reference bool

	// Queries counts the live-range intersection tests performed, for the
	// instrumentation behind the paper's Figure 6 discussion.
	Queries int

	// Cached def-point keys, built lazily on first order/dominance query
	// and extended as the variable universe grows. defKey packs
	// (preorder+1)<<32 | slot so one uint64 comparison decides DefOrder;
	// defPre/defPost answer block-level dominance without going through
	// DefBlock. The virtualized translator invalidates moved definitions
	// with DefMoved.
	defKey  []uint64
	defPre  []int32
	defPost []int32
}

// Value returns V(v), or v itself when no value information is installed.
func (c *Checker) Value(v ir.VarID) ir.VarID {
	if c.Vals == nil {
		return v
	}
	return c.Vals[v]
}

// ensureKeys extends the cached def-point keys to the current variable
// universe, computing keys for any variables added since the last call.
func (c *Checker) ensureKeys() {
	for len(c.defKey) < len(c.F.Vars) {
		c.defKey = append(c.defKey, 0)
		c.defPre = append(c.defPre, -1)
		c.defPost = append(c.defPost, -1)
		c.refreshKey(ir.VarID(len(c.defKey) - 1))
	}
}

// refreshKey recomputes the cached def-point key of v from DU and DT.
func (c *Checker) refreshKey(v ir.VarID) {
	if !c.DU.HasDef(v) {
		c.defKey[v] = 0
		c.defPre[v] = -1
		c.defPost[v] = -1
		return
	}
	db := c.DU.DefBlock(v)
	pre, post := c.DT.PreOrder(db), c.DT.PostOrder(db)
	c.defPre[v] = pre
	c.defPost[v] = post
	c.defKey[v] = uint64(uint32(pre+1))<<32 | uint64(uint32(c.DU.DefSlot(v)))
}

// DefMoved tells the checker that the definition point of v changed (or was
// just created) — the virtualized translator calls it after ReplaceDef /
// AddDef so the packed keys stay in sync with the def-use index.
func (c *Checker) DefMoved(v ir.VarID) {
	if c.Reference {
		return // the reference path derives per query; no cache to maintain
	}
	c.ensureKeys()
	c.refreshKey(v)
}

// LiveAfter reports whether v is live immediately after the instruction at
// the given slot of block b — after the instruction's reads and writes.
// Uses of v at that very slot do not keep it alive past the slot.
func (c *Checker) LiveAfter(v ir.VarID, b int, slot int32) bool {
	if c.Reference {
		return c.LiveAfterReference(v, b, slot)
	}
	if !c.DU.HasDef(v) {
		return false
	}
	db, ds := c.DU.DefBlock(v), c.DU.DefSlot(v)
	if db == b {
		if ds > slot {
			return false // defined later in the block
		}
	} else if !c.DT.Dominates(db, b) {
		return false // definition does not reach the block
	}
	if c.DU.UsedInBlockAfter(v, b, slot) {
		return true
	}
	return c.Live.LiveOutBlock(v, b)
}

// LiveAfterReference is LiveAfter with the pre-optimization linear scan of
// the whole use list (order-independent, hence insensitive to the sorted
// storage) — the differential baseline.
func (c *Checker) LiveAfterReference(v ir.VarID, b int, slot int32) bool {
	if !c.DU.HasDef(v) {
		return false
	}
	db, ds := c.DU.DefBlock(v), c.DU.DefSlot(v)
	if db == b {
		if ds > slot {
			return false
		}
	} else if !c.DT.Dominates(db, b) {
		return false
	}
	for _, u := range c.DU.Uses(v) {
		if int(u.Block) == b && u.Slot > slot {
			return true
		}
	}
	return c.Live.LiveOutBlock(v, b)
}

// DefOrder compares the definition points of a and b in the pre-DFS order
// of the dominator tree: negative when def(a) precedes def(b), 0 when the
// points coincide (components of one parallel copy or φs of one block).
// Variables without a definition sort last.
func (c *Checker) DefOrder(a, b ir.VarID) int {
	if c.Reference {
		return c.DefOrderReference(a, b)
	}
	ha, hb := c.DU.HasDef(a), c.DU.HasDef(b)
	switch {
	case !ha && !hb:
		return int(a) - int(b)
	case !ha:
		return 1
	case !hb:
		return -1
	}
	c.ensureKeys()
	switch ka, kb := c.defKey[a], c.defKey[b]; {
	case ka < kb:
		return -1
	case ka > kb:
		return 1
	}
	return 0
}

// DefOrderReference derives both definition points per query, as the
// pre-optimization implementation did.
func (c *Checker) DefOrderReference(a, b ir.VarID) int {
	ha, hb := c.DU.HasDef(a), c.DU.HasDef(b)
	switch {
	case !ha && !hb:
		return int(a) - int(b)
	case !ha:
		return 1
	case !hb:
		return -1
	}
	pa, pb := c.DT.PreOrder(c.DU.DefBlock(a)), c.DT.PreOrder(c.DU.DefBlock(b))
	if pa != pb {
		return int(pa - pb)
	}
	if sa, sb := c.DU.DefSlot(a), c.DU.DefSlot(b); sa != sb {
		return int(sa - sb)
	}
	return 0
}

// DefDominates reports whether the definition point of a dominates the
// definition point of b (reflexively at equal points).
func (c *Checker) DefDominates(a, b ir.VarID) bool {
	if c.Reference {
		return c.DefDominatesReference(a, b)
	}
	if !c.DU.HasDef(a) || !c.DU.HasDef(b) {
		return false
	}
	c.ensureKeys()
	ka, kb := c.defKey[a], c.defKey[b]
	if ka>>32 == kb>>32 {
		// Same preorder number means same block — except for the shared
		// "unreachable" sentinel, where block identity must be recheckd.
		if c.defPre[a] < 0 && c.DU.DefBlock(a) != c.DU.DefBlock(b) {
			return false
		}
		return ka <= kb // slot comparison: the preorder halves are equal
	}
	pa, pb := c.defPre[a], c.defPre[b]
	return pa >= 0 && pb >= 0 && pa < pb && c.defPost[b] <= c.defPost[a]
}

// DefDominatesReference is the per-query derivation baseline.
func (c *Checker) DefDominatesReference(a, b ir.VarID) bool {
	if !c.DU.HasDef(a) || !c.DU.HasDef(b) {
		return false
	}
	da, db := c.DU.DefBlock(a), c.DU.DefBlock(b)
	if da == db {
		return c.DU.DefSlot(a) <= c.DU.DefSlot(b)
	}
	return c.DT.Dominates(da, db)
}

// Intersect reports whether the live ranges of a and b share a point.
// By the SSA dominance property this holds iff the variable whose
// definition dominates the other's is live just after that definition.
func (c *Checker) Intersect(a, b ir.VarID) bool {
	if a == b {
		return true
	}
	c.Queries++
	if !c.DU.HasDef(a) || !c.DU.HasDef(b) {
		return false
	}
	switch {
	case c.DefDominates(b, a) && !c.DefDominates(a, b):
		a, b = b, a // make a the dominating one
	case c.DefDominates(a, b):
		// already ordered; equal points also land here
	default:
		return false // neither definition dominates the other
	}
	return c.LiveAfter(a, c.DU.DefBlock(b), c.DU.DefSlot(b)) &&
		c.LiveAfter(b, c.DU.DefBlock(b), c.DU.DefSlot(b))
}

// Interferes implements the paper's value-based interference: intersecting
// live ranges with different values.
func (c *Checker) Interferes(a, b ir.VarID) bool {
	if a == b {
		return false
	}
	if c.Vals != nil && c.Vals[a] == c.Vals[b] {
		return false
	}
	return c.Intersect(a, b)
}

// ChaitinInterferes implements Chaitin's conservative test: one variable is
// live at the definition point of the other and that definition is not a
// copy between the two.
func (c *Checker) ChaitinInterferes(a, b ir.VarID) bool {
	if a == b || !c.DU.HasDef(a) || !c.DU.HasDef(b) {
		return false
	}
	// This is an intersection test at b's (or a's) definition point, just
	// like Intersect — it must count toward Stats.IntersectionTests, or the
	// Chaitin strategy reports zero Figure 6 queries.
	c.Queries++
	if c.DefDominates(b, a) && !c.DefDominates(a, b) {
		a, b = b, a
	} else if !c.DefDominates(a, b) {
		return false
	}
	// a's definition dominates b's: they can only meet at b's definition.
	db, ds := c.DU.DefBlock(b), c.DU.DefSlot(b)
	if !c.LiveAfter(a, db, ds) || !c.LiveAfter(b, db, ds) {
		return false
	}
	if in := c.DU.DefInstr(b); in != nil && (in.IsCopyOf(b, a) || in.IsCopyOf(a, b)) {
		return false
	}
	return true
}
