// Package interference implements the paper's notions of live-range
// intersection and interference (Section III-A):
//
//   - Intersect: the live ranges of a and b share a program point. In SSA
//     this reduces to "the variable whose definition dominates the other's
//     is live just after that other definition" (Budimlić et al.).
//   - Chaitin: a is live at the definition of b and that definition is not
//     a copy between a and b (or symmetrically).
//   - Value-based (the paper's contribution): a and b interfere iff their
//     live ranges intersect *and* V(a) ≠ V(b), where V is the SSA value of
//     package ssa. With this definition the interference relation never has
//     to be updated or rebuilt after coalescing.
//
// Liveness is consumed through the BlockLiveness interface so that the same
// tests run from dataflow liveness sets (package liveness) or from the fast
// liveness checker (package livecheck) — the paper's "LiveCheck" option.
package interference

import (
	"repro/internal/dom"
	"repro/internal/ir"
)

// BlockLiveness answers block-boundary liveness queries. Both
// liveness.Info and livecheck.Checker satisfy it.
type BlockLiveness interface {
	// LiveInBlock reports whether v is live at entry of block b (φ results
	// of b excluded).
	LiveInBlock(v ir.VarID, b int) bool
	// LiveOutBlock reports whether v is live at exit of block b, φ uses of
	// successors included.
	LiveOutBlock(v ir.VarID, b int) bool
}

// Checker bundles the structures needed for interference queries.
type Checker struct {
	F    *ir.Func
	DT   *dom.Tree
	DU   *ir.DefUse
	Live BlockLiveness
	// Vals is the SSA value of every variable (ssa.Values). It may be nil,
	// in which case value-based queries degrade to pure intersection.
	Vals []ir.VarID

	// Queries counts the live-range intersection tests performed, for the
	// instrumentation behind the paper's Figure 6 discussion.
	Queries int
}

// Value returns V(v), or v itself when no value information is installed.
func (c *Checker) Value(v ir.VarID) ir.VarID {
	if c.Vals == nil {
		return v
	}
	return c.Vals[v]
}

// LiveAfter reports whether v is live immediately after the instruction at
// the given slot of block b — after the instruction's reads and writes.
// Uses of v at that very slot do not keep it alive past the slot.
func (c *Checker) LiveAfter(v ir.VarID, b int, slot int32) bool {
	if !c.DU.HasDef(v) {
		return false
	}
	db, ds := c.DU.DefBlock(v), c.DU.DefSlot(v)
	if db == b {
		if ds > slot {
			return false // defined later in the block
		}
	} else if !c.DT.Dominates(db, b) {
		return false // definition does not reach the block
	}
	for _, u := range c.DU.Uses(v) {
		if int(u.Block) == b && u.Slot > slot {
			return true
		}
	}
	return c.Live.LiveOutBlock(v, b)
}

// DefOrder compares the definition points of a and b in the pre-DFS order
// of the dominator tree: negative when def(a) precedes def(b), 0 when the
// points coincide (components of one parallel copy or φs of one block).
// Variables without a definition sort last.
func (c *Checker) DefOrder(a, b ir.VarID) int {
	ha, hb := c.DU.HasDef(a), c.DU.HasDef(b)
	switch {
	case !ha && !hb:
		return int(a) - int(b)
	case !ha:
		return 1
	case !hb:
		return -1
	}
	pa, pb := c.DT.PreOrder(c.DU.DefBlock(a)), c.DT.PreOrder(c.DU.DefBlock(b))
	if pa != pb {
		return int(pa - pb)
	}
	if sa, sb := c.DU.DefSlot(a), c.DU.DefSlot(b); sa != sb {
		return int(sa - sb)
	}
	return 0
}

// DefDominates reports whether the definition point of a dominates the
// definition point of b (reflexively at equal points).
func (c *Checker) DefDominates(a, b ir.VarID) bool {
	if !c.DU.HasDef(a) || !c.DU.HasDef(b) {
		return false
	}
	da, db := c.DU.DefBlock(a), c.DU.DefBlock(b)
	if da == db {
		return c.DU.DefSlot(a) <= c.DU.DefSlot(b)
	}
	return c.DT.Dominates(da, db)
}

// Intersect reports whether the live ranges of a and b share a point.
// By the SSA dominance property this holds iff the variable whose
// definition dominates the other's is live just after that definition.
func (c *Checker) Intersect(a, b ir.VarID) bool {
	if a == b {
		return true
	}
	c.Queries++
	if !c.DU.HasDef(a) || !c.DU.HasDef(b) {
		return false
	}
	switch {
	case c.DefDominates(b, a) && !c.DefDominates(a, b):
		a, b = b, a // make a the dominating one
	case c.DefDominates(a, b):
		// already ordered; equal points also land here
	default:
		return false // neither definition dominates the other
	}
	return c.LiveAfter(a, c.DU.DefBlock(b), c.DU.DefSlot(b)) &&
		c.LiveAfter(b, c.DU.DefBlock(b), c.DU.DefSlot(b))
}

// Interferes implements the paper's value-based interference: intersecting
// live ranges with different values.
func (c *Checker) Interferes(a, b ir.VarID) bool {
	if a == b {
		return false
	}
	if c.Vals != nil && c.Vals[a] == c.Vals[b] {
		return false
	}
	return c.Intersect(a, b)
}

// ChaitinInterferes implements Chaitin's conservative test: one variable is
// live at the definition point of the other and that definition is not a
// copy between the two.
func (c *Checker) ChaitinInterferes(a, b ir.VarID) bool {
	if a == b || !c.DU.HasDef(a) || !c.DU.HasDef(b) {
		return false
	}
	if c.DefDominates(b, a) && !c.DefDominates(a, b) {
		a, b = b, a
	} else if !c.DefDominates(a, b) {
		return false
	}
	// a's definition dominates b's: they can only meet at b's definition.
	db, ds := c.DU.DefBlock(b), c.DU.DefSlot(b)
	if !c.LiveAfter(a, db, ds) || !c.LiveAfter(b, db, ds) {
		return false
	}
	if in := c.DU.DefInstr(b); in != nil && (in.IsCopyOf(b, a) || in.IsCopyOf(a, b)) {
		return false
	}
	return true
}
