package interference_test

import (
	"testing"

	"repro/internal/cfggen"
	"repro/internal/dom"
	"repro/internal/interference"
	"repro/internal/ir"
	"repro/internal/livecheck"
	"repro/internal/liveness"
	"repro/internal/sreedhar"
	"repro/internal/ssa"
)

func newChecker(f *ir.Func, useLiveCheck bool) *interference.Checker {
	dt := dom.Build(f)
	du := ir.NewDefUse(f)
	var live interference.BlockLiveness
	if useLiveCheck {
		live = livecheck.New(f, dt, du)
	} else {
		live = liveness.Compute(f)
	}
	return &interference.Checker{F: f, DT: dt, DU: du, Live: live, Vals: ssa.Values(f, dt)}
}

const straightSrc = `
func s {
entry:
  a = param 0
  b = copy a
  c = add a b
  d = copy c
  print b
  print d
  ret c
}
`

func varID(f *ir.Func, n string) ir.VarID {
	for i, v := range f.Vars {
		if v.Name == n {
			return ir.VarID(i)
		}
	}
	panic(n)
}

func TestIntersectStraightLine(t *testing.T) {
	f := ir.MustParse(straightSrc)
	chk := newChecker(f, false)
	a, b, c, d := varID(f, "a"), varID(f, "b"), varID(f, "c"), varID(f, "d")
	// a live until c's def; b live until print; c live to the end.
	if !chk.Intersect(a, b) {
		t.Fatal("a and b overlap (a used at c's def, b live past it)")
	}
	if !chk.Intersect(c, b) {
		t.Fatal("c defined while b still live")
	}
	if chk.Intersect(a, d) {
		t.Fatal("a dead before d defined")
	}
	if !chk.Intersect(c, d) {
		t.Fatal("c live at ret, d until print")
	}
}

func TestValueBasedInterference(t *testing.T) {
	f := ir.MustParse(straightSrc)
	chk := newChecker(f, false)
	a, b, c, d := varID(f, "a"), varID(f, "b"), varID(f, "c"), varID(f, "d")
	// b = copy a: same value, intersecting ranges, no interference.
	if chk.Interferes(a, b) {
		t.Fatal("copies of the same value never interfere")
	}
	// c is a fresh value: interferes with b.
	if !chk.Interferes(c, b) {
		t.Fatal("different values with intersecting ranges interfere")
	}
	if chk.Interferes(c, d) {
		t.Fatal("d copies c: no interference")
	}
	_ = a
}

func TestChaitinExemption(t *testing.T) {
	f := ir.MustParse(straightSrc)
	chk := newChecker(f, false)
	a, b := varID(f, "a"), varID(f, "b")
	if chk.ChaitinInterferes(a, b) {
		t.Fatal("Chaitin exempts the copy at b's definition")
	}
	c, bb := varID(f, "c"), varID(f, "b")
	if !chk.ChaitinInterferes(c, bb) {
		t.Fatal("c's def is not a copy of b: Chaitin interference")
	}
	// b is still live at d's definition (print b comes later) and d's def
	// copies c, not b: no exemption applies.
	if !chk.ChaitinInterferes(varID(f, "d"), b) {
		t.Fatal("b live at d's definition and d is not a copy of b")
	}
}

// TestGraphMatchesChecker builds the interference graph in each mode and
// compares every pair against the direct predicates, with both liveness
// backends feeding the checker.
func TestGraphMatchesChecker(t *testing.T) {
	p := cfggen.DefaultProfile("graph", 41)
	p.Funcs = 5
	for _, f := range cfggen.Generate(p) {
		sreedhar.SplitDuplicatePredEdges(f)
		sreedhar.SplitBranchDefEdges(f)
		if _, err := sreedhar.InsertCopies(f); err != nil {
			t.Fatal(err)
		}
		live := liveness.Compute(f)
		for _, useLC := range []bool{false, true} {
			chk := newChecker(f, useLC)
			pred := map[interference.GraphMode]func(a, b ir.VarID) bool{
				interference.ModeIntersect: chk.Intersect,
				interference.ModeChaitin:   chk.ChaitinInterferes,
				interference.ModeValue:     chk.Interferes,
			}
			for mode, want := range pred {
				g := interference.BuildGraph(f, live, mode, chk.Vals)
				for a := 0; a < len(f.Vars); a++ {
					for b := a + 1; b < len(f.Vars); b++ {
						av, bv := ir.VarID(a), ir.VarID(b)
						if !chk.DU.HasDef(av) || !chk.DU.HasDef(bv) {
							continue
						}
						if g.Has(av, bv) != want(av, bv) {
							t.Fatalf("%s mode %d livecheck=%v: graph(%s,%s)=%v checker=%v\n%s",
								f.Name, mode, useLC, f.VarName(av), f.VarName(bv),
								g.Has(av, bv), want(av, bv), f)
						}
					}
				}
			}
		}
	}
}

func TestDefOrderIsPreDFS(t *testing.T) {
	funcs := cfggen.Generate(cfggen.DefaultProfile("order", 43))
	for _, f := range funcs[:3] {
		chk := newChecker(f, false)
		for a := 0; a < len(f.Vars); a++ {
			for b := 0; b < len(f.Vars); b++ {
				av, bv := ir.VarID(a), ir.VarID(b)
				if !chk.DU.HasDef(av) || !chk.DU.HasDef(bv) {
					continue
				}
				// Dominance implies order: if def(a) strictly dominates
				// def(b) then a precedes b in pre-DFS order.
				if chk.DefDominates(av, bv) && !chk.DefDominates(bv, av) {
					if chk.DefOrder(av, bv) >= 0 {
						t.Fatalf("%s: dominating def must precede", f.Name)
					}
				}
				// Antisymmetry at distinct points.
				if chk.DefOrder(av, bv) < 0 && chk.DefOrder(bv, av) < 0 {
					t.Fatalf("%s: DefOrder not antisymmetric", f.Name)
				}
			}
		}
	}
}

func TestIntersectionIsSymmetric(t *testing.T) {
	funcs := cfggen.Generate(cfggen.DefaultProfile("sym", 47))
	for _, f := range funcs[:4] {
		chk := newChecker(f, false)
		n := len(f.Vars)
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				av, bv := ir.VarID(a), ir.VarID(b)
				if chk.Intersect(av, bv) != chk.Intersect(bv, av) {
					t.Fatalf("%s: Intersect not symmetric for %s,%s",
						f.Name, f.VarName(av), f.VarName(bv))
				}
				if chk.Interferes(av, bv) != chk.Interferes(bv, av) {
					t.Fatalf("%s: Interferes not symmetric", f.Name)
				}
			}
		}
	}
}

// TestFigure1Interference reproduces the paper's Figure 1 subtlety: the
// terminator of B2 uses u, so a copy v' inserted before the branch must
// intersect u even though u is not in B2's live-out set.
func TestFigure1Interference(t *testing.T) {
	src := `
func fig1 {
entry:
  u = param 0
  v = param 1
  c = cmplt u v
  br c b1 b2
b1:
  jump b0
b2:
  parcopy vp:v
  br u b3 b0
b3:
  print u
  ret u
b0:
  w = phi b1:u b2:vp
  print w
  ret w
}
`
	f := ir.MustParse(src)
	chk := newChecker(f, false)
	u, vp := varID(f, "u"), varID(f, "vp")
	if !chk.Intersect(u, vp) {
		t.Fatal("v' must intersect u: the branch reads u after the copy")
	}
	if !chk.Interferes(u, vp) {
		t.Fatal("u and v' carry different values: interference")
	}
}
