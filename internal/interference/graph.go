package interference

import (
	"repro/internal/bitset"
	"repro/internal/ir"
	"repro/internal/liveness"
)

// GraphMode selects the relation stored in a Graph.
type GraphMode int

const (
	// ModeIntersect stores pure live-range intersection.
	ModeIntersect GraphMode = iota
	// ModeChaitin stores intersection minus Chaitin's copy exemption at the
	// definition point.
	ModeChaitin
	// ModeValue stores the paper's value-based interference: intersection
	// between variables with different SSA values.
	ModeValue
)

// Graph is an interference graph stored as a half-size bit matrix, the
// representation the paper's baseline (Sreedhar III) and the non-InterCheck
// variants use. Construction walks every block backwards once with a live
// set, so it costs O(instructions × live variables) and needs liveness
// sets, both of which the paper's memory/speed variants try to avoid.
type Graph struct {
	m    *bitset.Matrix
	mode GraphMode
}

// BuildGraph constructs the interference graph of f.
// vals may be nil unless mode is ModeValue.
func BuildGraph(f *ir.Func, live *liveness.Info, mode GraphMode, vals []ir.VarID) *Graph {
	g := &Graph{m: bitset.NewMatrix(len(f.Vars)), mode: mode}
	lv := bitset.New(len(f.Vars))
	for _, b := range f.Blocks {
		lv.Clear()
		live.Out(b.ID).ForEach(func(v int) { lv.Add(v) })
		for i := len(b.Instrs) - 1; i >= 0; i-- {
			in := b.Instrs[i]
			g.defs(in, lv, vals)
			for _, d := range in.Defs {
				lv.Remove(int(d))
			}
			for _, u := range in.Uses {
				lv.Add(int(u))
			}
		}
		// φ definitions are all written in parallel at block entry; each
		// surviving φ result interferes with everything live across the
		// entry, other surviving φ results of the block included (they are
		// in lv when used later).
		for _, phi := range b.Phis {
			if lv.Has(int(phi.Defs[0])) {
				g.def1(phi.Defs[0], phi, lv, vals)
			}
		}
	}
	return g
}

// defs records the interferences created by one instruction's definitions
// against the variables live after it (already in lv minus nothing) — lv
// holds the live-after set when called.
func (g *Graph) defs(in *ir.Instr, liveAfter *bitset.Set, vals []ir.VarID) {
	// A definition that is dead at its own definition point has an empty
	// live range and intersects nothing, matching Checker.Intersect.
	// Destinations of one parallel copy are written simultaneously, so
	// surviving ones are already in liveAfter and get paired by def1.
	for _, d := range in.Defs {
		if liveAfter.Has(int(d)) {
			g.def1(d, in, liveAfter, vals)
		}
	}
}

func (g *Graph) def1(d ir.VarID, in *ir.Instr, liveAfter *bitset.Set, vals []ir.VarID) {
	liveAfter.ForEach(func(l int) {
		if ir.VarID(l) == d {
			return
		}
		g.pair(d, ir.VarID(l), in, vals)
	})
}

// pair records interference between d (being defined by in, possibly nil)
// and live variable l, applying the mode's exemptions.
func (g *Graph) pair(d, l ir.VarID, in *ir.Instr, vals []ir.VarID) {
	switch g.mode {
	case ModeChaitin:
		if in != nil && (in.IsCopyOf(d, l) || in.IsCopyOf(l, d)) {
			return
		}
	case ModeValue:
		if vals != nil && vals[d] == vals[l] {
			return
		}
	}
	g.m.Set(int(d), int(l))
}

// Has reports whether a and b are recorded as interfering.
func (g *Graph) Has(a, b ir.VarID) bool { return g.m.Has(int(a), int(b)) }

// Bytes returns the current footprint of the bit matrix.
func (g *Graph) Bytes() int { return g.m.Bytes() }

// AllocatedBytes returns the cumulative allocation including growth.
func (g *Graph) AllocatedBytes() int { return g.m.AllocatedBytes() }

// GrowTo extends the variable universe (Method III introduces variables on
// the fly; the matrix grows as the paper describes in Section IV-D).
func (g *Graph) GrowTo(n int) { g.m.GrowTo(n) }

// AddEdge records an interference discovered after construction (used by
// virtualization when materializing copies).
func (g *Graph) AddEdge(a, b ir.VarID) { g.m.Set(int(a), int(b)) }
