package dom

import "repro/internal/ir"

// BuildLT computes the dominator tree with the Lengauer-Tarjan algorithm
// (simple path-compression variant, O(E·α(E,V))). It produces a Tree
// identical to Build's; the iterative Cooper-Harvey-Kennedy construction is
// the default because it is simpler and fast enough at JIT-relevant sizes,
// and the two implementations are checked against each other by the test
// suite. BuildLT exists as the asymptotically better alternative for very
// large functions.
func BuildLT(f *ir.Func) *Tree {
	n := len(f.Blocks)
	lt := &ltState{
		f:      f,
		semi:   make([]int, n),
		vertex: make([]int, 0, n),
		parent: make([]int, n),
		idom:   make([]int, n),
		label:  make([]int, n),
		anc:    make([]int, n),
		bucket: make([][]int, n),
		dfn:    make([]int, n),
	}
	for i := 0; i < n; i++ {
		lt.semi[i] = -1
		lt.parent[i] = -1
		lt.idom[i] = -1
		lt.anc[i] = -1
		lt.label[i] = i
		lt.dfn[i] = -1
	}
	lt.dfs(f.Entry().ID)

	// Process vertices in reverse DFS order (excluding the root).
	for i := len(lt.vertex) - 1; i >= 1; i-- {
		w := lt.vertex[i]
		// Semidominator: minimum over predecessors of eval().
		for _, p := range f.Blocks[w].Preds {
			if lt.dfn[p.ID] < 0 {
				continue // unreachable predecessor
			}
			u := lt.eval(p.ID)
			if lt.semi[u] < lt.semi[w] {
				lt.semi[w] = lt.semi[u]
			}
		}
		sd := lt.vertex[lt.semi[w]]
		lt.bucket[sd] = append(lt.bucket[sd], w)
		lt.anc[w] = lt.parent[w]
		// Implicitly compute idoms for the parent's bucket.
		pw := lt.parent[w]
		for _, v := range lt.bucket[pw] {
			u := lt.eval(v)
			if lt.semi[u] < lt.semi[v] {
				lt.idom[v] = u // defer: idom(v) = idom(u), fixed below
			} else {
				lt.idom[v] = pw
			}
		}
		lt.bucket[pw] = lt.bucket[pw][:0]
	}
	// Final pass in DFS order fixes the deferred idoms.
	for _, w := range lt.vertex[1:] {
		if lt.idom[w] != lt.vertex[lt.semi[w]] {
			lt.idom[w] = lt.idom[lt.idom[w]]
		}
	}

	// Assemble a Tree equivalent to Build's result.
	t := &Tree{
		f:      f,
		idom:   make([]int, n),
		rpoPos: make([]int32, n),
	}
	for i := range t.idom {
		t.idom[i] = -1
		t.rpoPos[i] = -1
	}
	entry := f.Entry().ID
	t.idom[entry] = entry
	for _, w := range lt.vertex[1:] {
		t.idom[w] = lt.idom[w]
	}
	// RPO: recompute with the same postorder walk Build uses, so the Tree's
	// auxiliary orders behave identically.
	post := postorder(f)
	t.rpo = make([]int, len(post))
	for i, b := range post {
		pos := len(post) - 1 - i
		t.rpo[pos] = b
		t.rpoPos[b] = int32(pos)
	}
	t.children = make([][]int, n)
	for _, b := range t.rpo {
		if b == entry {
			continue
		}
		t.children[t.idom[b]] = append(t.children[t.idom[b]], b)
	}
	t.number()
	return t
}

type ltState struct {
	f      *ir.Func
	semi   []int // semidominator DFS number
	vertex []int // DFS number → block
	parent []int // DFS tree parent
	idom   []int
	label  []int // path-compression label (block with min semi on path)
	anc    []int // forest ancestor
	bucket [][]int
	dfn    []int // block → DFS number
}

func (lt *ltState) dfs(root int) {
	type frame struct {
		b, next int
	}
	stack := []frame{{b: root}}
	lt.dfn[root] = 0
	lt.semi[root] = 0
	lt.vertex = append(lt.vertex, root)
	for len(stack) > 0 {
		fr := &stack[len(stack)-1]
		blk := lt.f.Blocks[fr.b]
		if fr.next < len(blk.Succs) {
			s := blk.Succs[fr.next].ID
			fr.next++
			if lt.dfn[s] < 0 {
				lt.dfn[s] = len(lt.vertex)
				lt.semi[s] = len(lt.vertex)
				lt.vertex = append(lt.vertex, s)
				lt.parent[s] = fr.b
				stack = append(stack, frame{b: s})
			}
			continue
		}
		stack = stack[:len(stack)-1]
	}
}

// eval returns the block with minimum semidominator number on the forest
// path from v's root to v, compressing the path.
func (lt *ltState) eval(v int) int {
	if lt.anc[v] < 0 {
		return lt.label[v]
	}
	lt.compress(v)
	return lt.label[v]
}

func (lt *ltState) compress(v int) {
	// Iterative path compression: collect the path to the root, then fold
	// labels top-down.
	var path []int
	for lt.anc[lt.anc[v]] >= 0 {
		path = append(path, v)
		v = lt.anc[v]
	}
	for i := len(path) - 1; i >= 0; i-- {
		w := path[i]
		a := lt.anc[w]
		if lt.semi[lt.label[a]] < lt.semi[lt.label[w]] {
			lt.label[w] = lt.label[a]
		}
		lt.anc[w] = lt.anc[a]
	}
}

// postorder walks the CFG exactly like Build.
func postorder(f *ir.Func) []int {
	n := len(f.Blocks)
	post := make([]int, 0, n)
	state := make([]int8, n)
	type frame struct {
		b    *ir.Block
		next int
	}
	stack := []frame{{b: f.Entry()}}
	state[f.Entry().ID] = 1
	for len(stack) > 0 {
		fr := &stack[len(stack)-1]
		if fr.next < len(fr.b.Succs) {
			s := fr.b.Succs[fr.next]
			fr.next++
			if state[s.ID] == 0 {
				state[s.ID] = 1
				stack = append(stack, frame{b: s})
			}
			continue
		}
		state[fr.b.ID] = 2
		post = append(post, fr.b.ID)
		stack = stack[:len(stack)-1]
	}
	return post
}

// number assigns pre/post DFS numbers over the dominator tree (shared by
// both constructions).
func (t *Tree) number() {
	n := len(t.f.Blocks)
	t.pre = make([]int32, n)
	t.post = make([]int32, n)
	for i := range t.pre {
		t.pre[i] = -1
		t.post[i] = -1
	}
	entry := t.f.Entry().ID
	var clock int32
	type nframe struct {
		b, next int
	}
	nstack := []nframe{{b: entry}}
	t.pre[entry] = clock
	clock++
	for len(nstack) > 0 {
		fr := &nstack[len(nstack)-1]
		if fr.next < len(t.children[fr.b]) {
			c := t.children[fr.b][fr.next]
			fr.next++
			t.pre[c] = clock
			clock++
			nstack = append(nstack, nframe{b: c})
			continue
		}
		t.post[fr.b] = clock
		clock++
		nstack = nstack[:len(nstack)-1]
	}
}
