// Package dom computes dominator trees, dominance frontiers, and loop
// nesting depths over the ir CFG. The dominator tree is built with the
// iterative algorithm of Cooper, Harvey and Kennedy; dominance queries are
// answered in O(1) with pre/post DFS numbering of the tree, which is the
// primitive both the linear congruence-class interference test (paper,
// Section IV-B) and the fast liveness check (Section IV-A) rely on.
package dom

import (
	"repro/internal/ir"
)

// Tree is the dominator tree of a function plus derived orderings.
type Tree struct {
	f        *ir.Func
	idom     []int   // immediate dominator (block ID); entry maps to itself
	children [][]int // dominator-tree children
	pre      []int32 // dominator-tree preorder number
	post     []int32 // dominator-tree postorder number
	rpo      []int   // reverse postorder of the CFG (reachable blocks only)
	rpoPos   []int32 // position of each block in rpo; -1 if unreachable

	frontier  [][]int // lazily computed dominance frontier
	loopDepth []int   // lazily computed loop nesting depth
}

// Build computes the dominator tree of f. Unreachable blocks have no
// dominator and are reported by Reachable.
func Build(f *ir.Func) *Tree {
	n := len(f.Blocks)
	t := &Tree{
		f:      f,
		idom:   make([]int, n),
		rpoPos: make([]int32, n),
	}
	for i := range t.idom {
		t.idom[i] = -1
		t.rpoPos[i] = -1
	}

	// Postorder DFS from the entry, iterative to tolerate deep CFGs.
	post := postorder(f)
	t.rpo = make([]int, len(post))
	for i, b := range post {
		pos := len(post) - 1 - i
		t.rpo[pos] = b
		t.rpoPos[b] = int32(pos)
	}

	// Cooper-Harvey-Kennedy iteration.
	entry := f.Entry().ID
	t.idom[entry] = entry
	for changed := true; changed; {
		changed = false
		for _, b := range t.rpo {
			if b == entry {
				continue
			}
			newIdom := -1
			for _, p := range f.Blocks[b].Preds {
				if t.idom[p.ID] < 0 {
					continue // unreachable or not yet processed
				}
				if newIdom < 0 {
					newIdom = p.ID
				} else {
					newIdom = t.intersect(p.ID, newIdom)
				}
			}
			if newIdom >= 0 && t.idom[b] != newIdom {
				t.idom[b] = newIdom
				changed = true
			}
		}
	}

	// Children lists and DFS numbering of the dominator tree. The lists are
	// carved out of one flat array (CSR layout): counting pass, region
	// carve, fill pass — a constant number of allocations instead of one
	// append chain per interior node.
	t.children = make([][]int, n)
	counts := make([]int32, n)
	total := 0
	for _, b := range t.rpo {
		if b == entry {
			continue
		}
		counts[t.idom[b]]++
		total++
	}
	flat := make([]int, total)
	off := 0
	for p, c := range counts {
		if c == 0 {
			continue
		}
		t.children[p] = flat[off : off : off+int(c)]
		off += int(c)
	}
	for _, b := range t.rpo {
		if b == entry {
			continue
		}
		p := t.idom[b]
		t.children[p] = append(t.children[p], b)
	}
	t.number()
	return t
}

// intersect walks two blocks up the (partially built) dominator tree to
// their common ancestor, comparing positions in reverse postorder.
func (t *Tree) intersect(a, b int) int {
	for a != b {
		for t.rpoPos[a] > t.rpoPos[b] {
			a = t.idom[a]
		}
		for t.rpoPos[b] > t.rpoPos[a] {
			b = t.idom[b]
		}
	}
	return a
}

// Func returns the function the tree was built for.
func (t *Tree) Func() *ir.Func { return t.f }

// Reachable reports whether block b is reachable from the entry.
func (t *Tree) Reachable(b int) bool { return t.rpoPos[b] >= 0 }

// IDom returns the immediate dominator of b, or -1 for the entry block and
// unreachable blocks.
func (t *Tree) IDom(b int) int {
	if b == t.f.Entry().ID || t.idom[b] < 0 {
		return -1
	}
	return t.idom[b]
}

// Children returns the dominator-tree children of b.
func (t *Tree) Children(b int) []int { return t.children[b] }

// Dominates reports whether block a dominates block b (reflexively), in
// O(1) using the DFS numbering.
func (t *Tree) Dominates(a, b int) bool {
	if t.pre[a] < 0 || t.pre[b] < 0 {
		return false
	}
	return t.pre[a] <= t.pre[b] && t.post[b] <= t.post[a]
}

// StrictlyDominates reports whether a dominates b and a != b.
func (t *Tree) StrictlyDominates(a, b int) bool { return a != b && t.Dominates(a, b) }

// PreOrder returns the dominator-tree preorder number of b (-1 if
// unreachable). Listing variables by the preorder of their definition block
// yields the "pre-DFS order" the paper's Algorithm 2 requires.
func (t *Tree) PreOrder(b int) int32 { return t.pre[b] }

// PostOrder returns the dominator-tree postorder number of b (-1 if
// unreachable). Together with PreOrder it answers dominance in O(1):
// a dominates b iff pre(a) <= pre(b) and post(b) <= post(a) — the pair the
// interference checker caches per definition point.
func (t *Tree) PostOrder(b int) int32 { return t.post[b] }

// RPO returns the blocks in reverse postorder of the CFG.
func (t *Tree) RPO() []int { return t.rpo }

// Frontier returns the dominance frontier of every block, computed once on
// first use with the Cooper-Harvey-Kennedy per-join walk.
func (t *Tree) Frontier() [][]int {
	if t.frontier != nil {
		return t.frontier
	}
	n := len(t.f.Blocks)
	df := make([][]int, n)
	inDF := make([]int32, n)
	for i := range inDF {
		inDF[i] = -1
	}
	for _, bID := range t.rpo {
		b := t.f.Blocks[bID]
		if len(b.Preds) < 2 {
			continue
		}
		for _, p := range b.Preds {
			if !t.Reachable(p.ID) {
				continue
			}
			runner := p.ID
			for runner != t.idom[bID] {
				if inDF[runner] != int32(bID) {
					inDF[runner] = int32(bID)
					df[runner] = append(df[runner], bID)
				}
				runner = t.idom[runner]
			}
		}
	}
	t.frontier = df
	return df
}

// LoopDepth returns the loop nesting depth of every block, derived from the
// natural loops of back edges (u→v with v dominating u). Blocks outside any
// loop have depth 0. The workload generator and coalescer use 10^depth as
// the default frequency/affinity weight.
func (t *Tree) LoopDepth() []int {
	if t.loopDepth != nil {
		return t.loopDepth
	}
	n := len(t.f.Blocks)
	depth := make([]int, n)
	for _, uID := range t.rpo {
		u := t.f.Blocks[uID]
		for _, v := range u.Succs {
			if !t.Dominates(v.ID, uID) {
				continue
			}
			// Natural loop of back edge u→v: v plus all blocks that reach u
			// without passing through v. The header's own predecessors are
			// never expanded (it is marked in-loop up front).
			inLoop := make([]bool, n)
			inLoop[v.ID] = true
			var work []int
			if !inLoop[uID] {
				inLoop[uID] = true
				work = append(work, uID)
			}
			for len(work) > 0 {
				x := work[len(work)-1]
				work = work[:len(work)-1]
				for _, p := range t.f.Blocks[x].Preds {
					if t.Reachable(p.ID) && !inLoop[p.ID] {
						inLoop[p.ID] = true
						work = append(work, p.ID)
					}
				}
			}
			for b := 0; b < n; b++ {
				if inLoop[b] {
					depth[b]++
				}
			}
		}
	}
	t.loopDepth = depth
	return depth
}
