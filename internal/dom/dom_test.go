package dom_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cfggen"
	"repro/internal/dom"
	"repro/internal/ir"
)

const diamond = `
func d {
entry:
  p = param 0
  br p t e
t:
  jump j
e:
  jump j
j:
  x = phi t:p e:p
  br x loop out
loop (freq 10):
  q = add x x
  br q loop out
out:
  ret p
}
`

func TestIDomDiamondAndLoop(t *testing.T) {
	f := ir.MustParse(diamond)
	dt := dom.Build(f)
	name := func(id int) string {
		if id < 0 {
			return "-"
		}
		return f.Blocks[id].Name
	}
	want := map[string]string{"t": "entry", "e": "entry", "j": "entry", "loop": "j", "out": "j"}
	for _, b := range f.Blocks {
		if b.Name == "entry" {
			if dt.IDom(b.ID) != -1 {
				t.Fatal("entry has no idom")
			}
			continue
		}
		if got := name(dt.IDom(b.ID)); got != want[b.Name] {
			t.Errorf("idom(%s) = %s, want %s", b.Name, got, want[b.Name])
		}
	}
	// out has two preds (j and loop): idom = j.
	if !dt.Dominates(blockID(f, "entry"), blockID(f, "out")) {
		t.Fatal("entry dominates everything")
	}
	if dt.Dominates(blockID(f, "t"), blockID(f, "j")) {
		t.Fatal("t must not dominate j")
	}
	if !dt.Dominates(blockID(f, "j"), blockID(f, "j")) {
		t.Fatal("dominance is reflexive")
	}
}

func TestFrontier(t *testing.T) {
	f := ir.MustParse(diamond)
	dt := dom.Build(f)
	df := dt.Frontier()
	hasIn := func(b string, target string) bool {
		for _, x := range df[blockID(f, b)] {
			if f.Blocks[x].Name == target {
				return true
			}
		}
		return false
	}
	if !hasIn("t", "j") || !hasIn("e", "j") {
		t.Fatal("j must be in DF of both arms")
	}
	if !hasIn("loop", "loop") {
		t.Fatal("loop header in its own frontier (back edge)")
	}
	if hasIn("entry", "j") {
		t.Fatal("entry dominates j; j not in its frontier")
	}
}

func TestLoopDepth(t *testing.T) {
	f := ir.MustParse(diamond)
	dt := dom.Build(f)
	depth := dt.LoopDepth()
	if depth[blockID(f, "loop")] != 1 {
		t.Fatalf("loop depth = %d", depth[blockID(f, "loop")])
	}
	if depth[blockID(f, "entry")] != 0 || depth[blockID(f, "out")] != 0 {
		t.Fatal("blocks outside loops must have depth 0")
	}
}

func TestUnreachableBlocks(t *testing.T) {
	f := ir.MustParse(diamond)
	dead := f.NewBlock("dead")
	dead.Instrs = []*ir.Instr{{Op: ir.OpRet}}
	dt := dom.Build(f)
	if dt.Reachable(dead.ID) {
		t.Fatal("dead block reported reachable")
	}
	if dt.Dominates(dead.ID, blockID(f, "out")) || dt.Dominates(blockID(f, "entry"), dead.ID) {
		t.Fatal("unreachable blocks dominate nothing and are dominated by nothing")
	}
}

// slowDominates is the definition: a dominates b iff removing a makes b
// unreachable from the entry (or a == b).
func slowDominates(f *ir.Func, a, b int) bool {
	if a == b {
		return true
	}
	seen := make([]bool, len(f.Blocks))
	seen[a] = true // pretend a is removed
	stack := []int{f.Entry().ID}
	if f.Entry().ID == a {
		return true
	}
	seen[f.Entry().ID] = true
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if x == b {
			return false
		}
		for _, s := range f.Blocks[x].Succs {
			if !seen[s.ID] {
				seen[s.ID] = true
				stack = append(stack, s.ID)
			}
		}
	}
	return true // b unreachable without a
}

// TestDominanceAgainstDefinition checks Build's O(1) queries against the
// brute-force definition on generated CFGs.
func TestDominanceAgainstDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	funcs := cfggen.Generate(cfggen.DefaultProfile("dom", 11))
	for _, f := range funcs {
		dt := dom.Build(f)
		n := len(f.Blocks)
		for trial := 0; trial < 200; trial++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if !dt.Reachable(a) || !dt.Reachable(b) {
				continue
			}
			want := slowDominates(f, a, b)
			if got := dt.Dominates(a, b); got != want {
				t.Fatalf("%s: Dominates(%s, %s) = %v, want %v",
					f.Name, f.Blocks[a].Name, f.Blocks[b].Name, got, want)
			}
		}
		// idom sanity: the immediate dominator strictly dominates its block
		// and every other dominator of the block dominates the idom.
		for _, b := range f.Blocks[1:] {
			if !dt.Reachable(b.ID) {
				continue
			}
			id := dt.IDom(b.ID)
			if id < 0 || !dt.StrictlyDominates(id, b.ID) {
				t.Fatalf("%s: idom(%s) invalid", f.Name, b.Name)
			}
		}
	}
}

// TestRPOIsTopologicalModuloBackEdges: every edge that is not a retreating
// edge goes forward in RPO.
func TestRPOIsTopologicalModuloBackEdges(t *testing.T) {
	funcs := cfggen.Generate(cfggen.DefaultProfile("rpo", 13))
	for _, f := range funcs {
		dt := dom.Build(f)
		pos := make([]int, len(f.Blocks))
		for i := range pos {
			pos[i] = -1
		}
		for i, b := range dt.RPO() {
			pos[b] = i
		}
		for _, b := range f.Blocks {
			if pos[b.ID] < 0 {
				continue
			}
			for _, s := range b.Succs {
				if dt.Dominates(s.ID, b.ID) {
					continue // back edge
				}
				if pos[s.ID] <= pos[b.ID] {
					t.Fatalf("%s: edge %s→%s not forward in RPO", f.Name, b.Name, s.Name)
				}
			}
		}
	}
}

func blockID(f *ir.Func, name string) int {
	for _, b := range f.Blocks {
		if b.Name == name {
			return b.ID
		}
	}
	panic("no block " + name)
}

// TestLTMatchesCHK: the Lengauer-Tarjan construction must produce exactly
// the same immediate dominators as the iterative one, on hand graphs and on
// the generated suite.
func TestLTMatchesCHK(t *testing.T) {
	var funcs []*ir.Func
	funcs = append(funcs, ir.MustParse(diamond))
	for seed := int64(0); seed < 4; seed++ {
		p := cfggen.DefaultProfile("lt", 900+seed)
		p.Funcs = 5
		funcs = append(funcs, cfggen.Generate(p)...)
	}
	for _, f := range funcs {
		a := dom.Build(f)
		b := dom.BuildLT(f)
		for _, blk := range f.Blocks {
			if a.IDom(blk.ID) != b.IDom(blk.ID) {
				t.Fatalf("%s: idom(%s): CHK=%d LT=%d", f.Name, blk.Name,
					a.IDom(blk.ID), b.IDom(blk.ID))
			}
			for _, other := range f.Blocks {
				if a.Dominates(blk.ID, other.ID) != b.Dominates(blk.ID, other.ID) {
					t.Fatalf("%s: Dominates(%s,%s) disagree", f.Name, blk.Name, other.Name)
				}
			}
		}
	}
}

// TestDominanceTransitivity is a quick property over generated graphs.
func TestDominanceTransitivity(t *testing.T) {
	funcs := cfggen.Generate(cfggen.DefaultProfile("trans", 77))
	f := funcs[0]
	dt := dom.Build(f)
	n := len(f.Blocks)
	check := func(a, b, c uint8) bool {
		x, y, z := int(a)%n, int(b)%n, int(c)%n
		if dt.Dominates(x, y) && dt.Dominates(y, z) && !dt.Dominates(x, z) {
			return false
		}
		// Antisymmetry: mutual dominance implies equality.
		if x != y && dt.Dominates(x, y) && dt.Dominates(y, x) {
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}
