package cfggen_test

import (
	"testing"

	"repro/internal/cfggen"
	"repro/internal/dom"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/ssa"
)

func neardupProfile() cfggen.NearDuplicateProfile {
	p := cfggen.DefaultProfile("neardup", 13)
	p.Funcs = 4
	return cfggen.NearDuplicateProfile{Base: p, Clones: 4, EditSeed: 14}
}

// TestNearDuplicatesShape: deterministic output, base functions identical
// to a plain Generate run, clones interleaved right behind their base, and
// every clone in verifiable strict SSA form.
func TestNearDuplicatesShape(t *testing.T) {
	p := neardupProfile()
	got := cfggen.GenerateNearDuplicates(p)
	again := cfggen.GenerateNearDuplicates(p)
	if len(got) != len(again) || len(got) != p.Base.Funcs*(p.Clones+1) {
		t.Fatalf("%d functions (rerun %d), want %d", len(got), len(again), p.Base.Funcs*(p.Clones+1))
	}
	for i := range got {
		if got[i].String() != again[i].String() {
			t.Fatalf("function %d not deterministic", i)
		}
	}

	base := cfggen.Generate(p.Base)
	stride := p.Clones + 1
	for i, b := range base {
		if got[i*stride].String() != b.String() {
			t.Fatalf("base %s was perturbed by near-duplication", b.Name)
		}
	}

	for _, f := range got {
		if err := ssa.Verify(f, dom.Build(f)); err != nil {
			t.Fatalf("%s is not strict SSA: %v", f.Name, err)
		}
	}
}

// TestNearDuplicatesFingerprints: rename-only clones share their base's
// fingerprint (the guaranteed memo hits); structurally edited clones do
// not (the guaranteed misses).
func TestNearDuplicatesFingerprints(t *testing.T) {
	p := neardupProfile()
	got := cfggen.GenerateNearDuplicates(p)
	stride := p.Clones + 1
	for i := 0; i < len(got); i += stride {
		base := got[i]
		fp := base.Fingerprint()
		for j := 0; j < p.Clones; j++ {
			c := got[i+1+j]
			same := c.Fingerprint() == fp
			switch j % 3 {
			case 0:
				if !same {
					t.Fatalf("rename-only clone %s moved the fingerprint", c.Name)
				}
			case 1:
				if same {
					t.Fatalf("dead-copy clone %s kept its base's fingerprint", c.Name)
				}
			}
			// j%3 == 2 may fall back to rename-only; either is fine.
		}
	}
}

// TestNearDuplicatesBehaviour: every clone is observably equivalent to its
// base — the edits change structure (or nothing but names), never
// behaviour.
func TestNearDuplicatesBehaviour(t *testing.T) {
	p := neardupProfile()
	got := cfggen.GenerateNearDuplicates(p)
	stride := p.Clones + 1
	params := [][]int64{{0, 0}, {1, 7}, {13, 5}}
	for i := 0; i < len(got); i += stride {
		base := got[i]
		for j := 0; j < p.Clones; j++ {
			c := got[i+1+j]
			for _, in := range params {
				want, errW := interp.Run(base, in, 1<<20)
				have, errH := interp.Run(c, in, 1<<20)
				if (errW == nil) != (errH == nil) {
					t.Fatalf("%s: interp errors diverge from base: %v vs %v", c.Name, errW, errH)
				}
				if errW == nil && !interp.Equal(want, have) {
					t.Fatalf("%s: behaviour differs from base on %v", c.Name, in)
				}
			}
		}
	}
}

// TestNearDuplicatesKeepNamesUnique: rename and edit clones must still
// round-trip through the textual form (unique printable names), which the
// serve-layer corpus rendering depends on. Parsing normalizes block order,
// so the check is structural — same counts and same behaviour through the
// wire — plus print-stability of the parsed form.
func TestNearDuplicatesKeepNamesUnique(t *testing.T) {
	for _, f := range cfggen.GenerateNearDuplicates(neardupProfile()) {
		r, err := ir.Parse(f.String())
		if err != nil {
			t.Fatalf("%s does not round-trip: %v", f.Name, err)
		}
		// Var counts differ legitimately: the universe keeps entries the
		// printed form never references. Block structure must survive.
		if len(r.Blocks) != len(f.Blocks) {
			t.Fatalf("%s: reparse changed block count: %d vs %d",
				f.Name, len(r.Blocks), len(f.Blocks))
		}
		for _, in := range [][]int64{{0, 0}, {3, 4}} {
			want, errW := interp.Run(f, in, 1<<20)
			have, errH := interp.Run(r, in, 1<<20)
			if (errW == nil) != (errH == nil) || (errW == nil && !interp.Equal(want, have)) {
				t.Fatalf("%s: behaviour changed through the wire on %v", f.Name, in)
			}
		}
	}
}
