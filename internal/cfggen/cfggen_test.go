package cfggen_test

import (
	"testing"

	"repro/internal/cfggen"
	"repro/internal/dom"
	"repro/internal/interference"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/liveness"
	"repro/internal/ssa"
)

func TestDeterministic(t *testing.T) {
	a := cfggen.Generate(cfggen.DefaultProfile("det", 5))
	b := cfggen.Generate(cfggen.DefaultProfile("det", 5))
	if len(a) != len(b) {
		t.Fatal("function counts differ")
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Fatalf("function %d differs between runs", i)
		}
	}
}

func TestGeneratedAreStrictSSA(t *testing.T) {
	for _, f := range cfggen.Generate(cfggen.DefaultProfile("strict", 8)) {
		if err := ssa.Verify(f, dom.Build(f)); err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
	}
}

func TestGeneratedTerminate(t *testing.T) {
	inputs := [][]int64{{0, 0}, {9, -4}, {1, 1}}
	for _, f := range cfggen.Generate(cfggen.DefaultProfile("term", 12)) {
		for _, in := range inputs {
			if _, err := interp.Run(f, in, 200000); err != nil {
				t.Fatalf("%s on %v: %v", f.Name, in, err)
			}
		}
	}
}

// TestPinnedRangesDisjoint: the generator must keep same-register pinned
// variables non-intersecting, because the translator force-merges them.
func TestPinnedRangesDisjoint(t *testing.T) {
	for _, f := range cfggen.Generate(cfggen.DefaultProfile("pin", 19)) {
		dt := dom.Build(f)
		chk := &interference.Checker{
			F: f, DT: dt, DU: ir.NewDefUse(f), Live: liveness.Compute(f),
		}
		byReg := map[string][]ir.VarID{}
		for i, v := range f.Vars {
			if v.Reg != "" {
				byReg[v.Reg] = append(byReg[v.Reg], ir.VarID(i))
			}
		}
		for reg, vars := range byReg {
			for i, x := range vars {
				for _, y := range vars[i+1:] {
					if chk.Intersect(x, y) {
						t.Fatalf("%s: pinned %s and %s (both %s) intersect",
							f.Name, f.VarName(x), f.VarName(y), reg)
					}
				}
			}
		}
	}
}

// TestWorkloadIsInteresting: the suite must actually exercise the paper's
// machinery — φs, non-conventional webs, pinned copies, Br_dec loops.
func TestWorkloadIsInteresting(t *testing.T) {
	phis, brdecs, pinned, copies := 0, 0, 0, 0
	for _, f := range cfggen.Generate(cfggen.DefaultProfile("mix", 27)) {
		for _, b := range f.Blocks {
			phis += len(b.Phis)
			for _, in := range b.Instrs {
				switch in.Op {
				case ir.OpBrDec:
					brdecs++
				case ir.OpCopy:
					copies++
				}
			}
		}
		for _, v := range f.Vars {
			if v.Reg != "" {
				pinned++
			}
		}
	}
	if phis < 20 || brdecs < 1 || pinned < 4 || copies < 5 {
		t.Fatalf("workload too tame: %d φs, %d brdecs, %d pinned, %d copies",
			phis, brdecs, pinned, copies)
	}
}

func TestFrequenciesFollowLoopDepth(t *testing.T) {
	for _, f := range cfggen.Generate(cfggen.DefaultProfile("freq", 33)) {
		dt := dom.Build(f)
		depth := dt.LoopDepth()
		for _, b := range f.Blocks {
			want := 1.0
			for i := 0; i < depth[b.ID] && i < 6; i++ {
				want *= 10
			}
			if b.Freq != want {
				t.Fatalf("%s/%s: freq %v at depth %d", f.Name, b.Name, b.Freq, depth[b.ID])
			}
		}
	}
}
