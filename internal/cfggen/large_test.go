package cfggen

import (
	"testing"

	"repro/internal/dom"
	"repro/internal/ir"
)

func TestLargeDeterministic(t *testing.T) {
	p := LargeLivenessProfile("det", 9, 0.05)
	a := GenerateLarge(p)
	b := GenerateLarge(p)
	if len(a) != len(b) {
		t.Fatal("function count differs")
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Fatalf("func %d differs between runs", i)
		}
	}
}

// TestLargeShape: the corpus must actually contain what the liveness
// trajectory claims — valid SSA-sized CFGs with deep loop nests and wide
// many-predecessor joins carrying φ pressure.
func TestLargeShape(t *testing.T) {
	fns := GenerateLarge(LargeLivenessProfile("shape", 77, 0.25))
	maxDepth, maxPreds, widePhis := 0, 0, 0
	for _, f := range fns {
		if err := ir.Verify(f); err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		if len(f.Blocks) < 200 {
			t.Fatalf("%s: only %d blocks at scale 0.25; the corpus must be large", f.Name, len(f.Blocks))
		}
		depth := dom.Build(f).LoopDepth()
		for _, b := range f.Blocks {
			if depth[b.ID] > maxDepth {
				maxDepth = depth[b.ID]
			}
			if len(b.Preds) > maxPreds {
				maxPreds = len(b.Preds)
			}
			for _, phi := range b.Phis {
				if len(phi.Uses) >= 6 {
					widePhis++
				}
			}
		}
	}
	if maxDepth < 3 {
		t.Fatalf("max loop depth %d: want deep nests", maxDepth)
	}
	if maxPreds < 6 {
		t.Fatalf("max join width %d: want wide switch joins", maxPreds)
	}
	if widePhis == 0 {
		t.Fatal("no wide φs: joins carry no pressure")
	}
}

// TestLargeScaleGrowsBlocks: the scale knob must actually control corpus
// size, with thousands of blocks at scale 1.
func TestLargeScaleGrowsBlocks(t *testing.T) {
	small := GenerateLarge(LargeLivenessProfile("sc", 5, 0.1))
	p := LargeLivenessProfile("sc", 5, 1)
	p.Funcs = 1
	big := GenerateLarge(p)
	if len(big[0].Blocks) < 1500 {
		t.Fatalf("scale-1 function has %d blocks; want thousands", len(big[0].Blocks))
	}
	if len(small[0].Blocks) >= len(big[0].Blocks) {
		t.Fatal("scale must shrink the corpus")
	}
}
