package cfggen

import (
	"fmt"
	"testing"
)

// TestGenerateDoesNotPanic pins down generator bugs early with a readable
// dump of the offending pre-SSA function.
func TestGenerateDoesNotPanic(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		p := DefaultProfile("dbg", seed)
		p.Funcs = 8
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("seed %d: %v\n%s", seed, r, lastDump)
				}
			}()
			Generate(p)
		}()
	}
}

var lastDump string

func init() { debugHook = func(s string) { lastDump = s } }

var _ = fmt.Sprintf
