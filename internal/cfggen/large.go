package cfggen

import (
	"math/rand"

	"repro/internal/ir"
	"repro/internal/ssa"
)

// LargeProfile describes one synthetic large-CFG workload for the liveness
// trajectory benchmarks: functions of thousands of blocks combining deeply
// nested loops, wide switch-like dispatches whose arms all rejoin in one
// block (many-predecessor joins → dense φ pressure after SSA construction),
// and a pool of shared variables mutated everywhere so their live ranges
// span most of the CFG.
type LargeProfile struct {
	Name string
	Seed int64
	// Funcs is the number of functions to generate.
	Funcs int
	// Blocks is the approximate block budget of one function (pre-SSA;
	// SSA construction adds φs, not blocks).
	Blocks int
	// LoopDepth bounds loop nesting (deep loops make the naive fixpoint
	// re-sweep the whole function once per nesting level).
	LoopDepth int
	// SwitchWidth bounds the arm count of one dispatch.
	SwitchWidth int
	// SharedVars is the size of the mutated-everywhere variable pool.
	SharedVars int
	// FoldCopies is the per-copy probability that post-construction copy
	// propagation folds it. Folding extends live ranges across the copy;
	// the survivors stay in the program as coalescible affinities, so a
	// *low* value yields the copy-dense shape the coalescing trajectory
	// wants.
	FoldCopies float64
	// SwapShuffle is the per-loop-header probability of emitting a
	// two-variable swap of shared variables. Swaps carried around a back
	// edge are the paper's swap problem (Figure 3): after copy folding, the
	// loop φs permute values, so some φ-related copies can never coalesce
	// and the surviving parallel copies contain cycles — the input that
	// exercises the sequentializer's cycle breaking. Zero (the default)
	// draws no randomness, keeping the other profiles' corpora unchanged.
	SwapShuffle float64
}

// LargeLivenessProfile returns the profile the BENCH_liveness trajectory
// uses, scaled by scale (1 ≈ 4 functions of ~2000 blocks each).
func LargeLivenessProfile(name string, seed int64, scale float64) LargeProfile {
	blocks := int(2000 * scale)
	if blocks < 64 {
		blocks = 64
	}
	return LargeProfile{
		Name: name, Seed: seed, Funcs: 4,
		Blocks: blocks, LoopDepth: 8, SwitchWidth: 12, SharedVars: 24,
		FoldCopies: 0.5,
	}
}

// LargeCoalesceProfile returns the profile of the BENCH_coalesce
// trajectory: wider switch joins (wide φs), a larger shared-variable pool
// (dense φ pressure), and most copies kept unfolded (dense affinities), at
// a smaller block budget — coalescing work grows faster than block count.
// 1 ≈ 3 functions of ~800 blocks each.
func LargeCoalesceProfile(name string, seed int64, scale float64) LargeProfile {
	blocks := int(800 * scale)
	if blocks < 48 {
		blocks = 48
	}
	return LargeProfile{
		Name: name, Seed: seed, Funcs: 3,
		Blocks: blocks, LoopDepth: 5, SwitchWidth: 18, SharedVars: 32,
		FoldCopies: 0.25,
	}
}

// LargeTranslateProfile returns the profile of the BENCH_translate
// trajectory: the end-to-end translation benchmark wants functions that
// exercise every phase — φ pressure for copy insertion, kept copies for the
// coalescer, and enough live-range interference (aggressive copy folding
// extends ranges across the folded copies) that parallel copies survive
// into the sequentializer — at a block budget small enough that all
// Figure 5 strategies finish quickly. 1 ≈ 2 functions of ~500 blocks each.
func LargeTranslateProfile(name string, seed int64, scale float64) LargeProfile {
	blocks := int(500 * scale)
	if blocks < 40 {
		blocks = 40
	}
	return LargeProfile{
		Name: name, Seed: seed, Funcs: 2,
		Blocks: blocks, LoopDepth: 6, SwitchWidth: 14, SharedVars: 24,
		FoldCopies: 0.8, SwapShuffle: 0.5,
	}
}

// LargeScaleProfile returns the profile of the BENCH_scale multicore
// trajectory: a batch of medium functions — the per-function work grain of
// a realistic compile batch — rather than a handful of huge ones, so a
// worker sweep has enough independent units to schedule. scale multiplies
// the per-function block budget; the function count stays fixed so the
// dispatch shape (shards, steal opportunities) is comparable across
// scales. 1 ≈ 30 functions of ~240 blocks each.
func LargeScaleProfile(name string, seed int64, scale float64) LargeProfile {
	blocks := int(240 * scale)
	if blocks < 32 {
		blocks = 32
	}
	return LargeProfile{
		Name: name, Seed: seed, Funcs: 30,
		Blocks: blocks, LoopDepth: 5, SwitchWidth: 10, SharedVars: 16,
		FoldCopies: 0.6, SwapShuffle: 0.2,
	}
}

// GenerateLarge builds the profile's functions in SSA form, deterministically
// from the seed.
func GenerateLarge(p LargeProfile) []*ir.Func {
	rng := rand.New(rand.NewSource(p.Seed))
	funcs := make([]*ir.Func, 0, p.Funcs)
	for i := 0; i < p.Funcs; i++ {
		g := &largeGen{p: p, rng: rand.New(rand.NewSource(rng.Int63()))}
		f := g.function(i)
		dt, _ := ssa.Construct(f)
		// Fold the profile's share of the copies: folding extends live
		// ranges across copies without killing the φ webs; the survivors
		// stay coalescible affinities.
		prng := rand.New(rand.NewSource(rng.Int63()))
		ssa.PropagateCopiesWhere(f, dt, func(ir.VarID) bool { return prng.Float64() < p.FoldCopies })
		ssa.EliminateDeadCode(f)
		ssa.SortPhisByDef(f)
		funcs = append(funcs, f)
	}
	return funcs
}

type largeGen struct {
	p      LargeProfile
	rng    *rand.Rand
	bd     *ir.Builder
	budget int // remaining block budget
	shared []ir.VarID
	blkSeq int
	varSeq int
}

// block mints a uniquely named block and charges the budget.
func (g *largeGen) block(prefix string) *ir.Block {
	g.blkSeq++
	g.budget--
	return g.bd.Block(prefix + itoa(g.blkSeq))
}

func (g *largeGen) varName(prefix string) string {
	g.varSeq++
	return prefix + itoa(g.varSeq)
}

func (g *largeGen) pickShared() ir.VarID { return g.shared[g.rng.Intn(len(g.shared))] }

// mutate overwrites one shared variable from two others — the statement
// shape that turns into φ pressure at every join.
func (g *largeGen) mutate() {
	op := arithOps[g.rng.Intn(len(arithOps))]
	g.bd.Cur.Instrs = append(g.bd.Cur.Instrs, &ir.Instr{
		Op:   op,
		Defs: []ir.VarID{g.pickShared()},
		Uses: []ir.VarID{g.pickShared(), g.pickShared()},
	})
}

// swap exchanges two shared variables through a temporary — around a back
// edge this is the swap problem whose φ copies cannot coalesce (the
// SwapShuffle knob).
func (g *largeGen) swap() {
	x := g.pickShared()
	y := g.pickShared()
	t := g.bd.Copy(x)
	g.bd.CopyTo(x, y)
	g.bd.CopyTo(y, t)
}

func (g *largeGen) function(idx int) *ir.Func {
	g.bd = ir.NewBuilder(g.p.Name + "_f" + itoa(idx))
	g.budget = g.p.Blocks

	g.shared = []ir.VarID{g.bd.Param(0), g.bd.Param(1)}
	for len(g.shared) < g.p.SharedVars {
		g.shared = append(g.shared, g.bd.Const(int64(g.rng.Intn(32)+1)))
	}
	g.body(0)
	// Read every shared variable at the exit so all of them stay live
	// across the whole CFG — the dense-set stress the trajectory wants.
	for _, v := range g.shared {
		g.bd.Print(v)
	}
	g.bd.Ret(g.shared[0])
	return g.bd.F
}

// body emits nested structure until the block budget runs out.
func (g *largeGen) body(depth int) {
	for g.budget > 0 {
		r := g.rng.Float64()
		switch {
		case depth < g.p.LoopDepth && r < 0.40:
			g.loop(depth)
		case r < 0.85:
			g.switchStmt(depth)
		default:
			for i := 0; i < 2+g.rng.Intn(4); i++ {
				g.mutate()
			}
			g.budget-- // straight-line run charged like a block
		}
		if depth > 0 && g.rng.Float64() < 0.30 {
			return
		}
	}
}

// loop emits a bounded counting loop whose header carries mutations and a
// nested body; some loops use the branch-with-decrement terminator.
func (g *largeGen) loop(depth int) {
	f := g.bd.F
	n := f.NewVar(g.varName("n"))
	g.bd.Cur.Instrs = append(g.bd.Cur.Instrs,
		&ir.Instr{Op: ir.OpConst, Defs: []ir.VarID{n}, Aux: int64(2 + g.rng.Intn(4))})
	header := g.block("h")
	exit := g.block("x")
	g.bd.Jump(header)

	g.bd.SetBlock(header)
	for i := 0; i < 1+g.rng.Intn(3); i++ {
		g.mutate()
	}
	// Guarded draw: profiles with SwapShuffle == 0 consume no randomness
	// here, so their generated corpora are bit-identical to before.
	if g.p.SwapShuffle > 0 && g.rng.Float64() < g.p.SwapShuffle {
		g.swap()
	}
	if depth+1 < g.p.LoopDepth && g.rng.Float64() < 0.6 {
		g.body(depth + 1)
	}
	if g.rng.Float64() < 0.25 {
		g.bd.Cur.Instrs = append(g.bd.Cur.Instrs,
			&ir.Instr{Op: ir.OpBrDec, Defs: []ir.VarID{n}, Uses: []ir.VarID{n}})
		ir.AddEdge(g.bd.Cur, header)
		ir.AddEdge(g.bd.Cur, exit)
	} else {
		one := g.bd.Const(1)
		g.bd.Cur.Instrs = append(g.bd.Cur.Instrs,
			&ir.Instr{Op: ir.OpSub, Defs: []ir.VarID{n}, Uses: []ir.VarID{n, one}})
		zero := g.bd.Const(0)
		cond := g.bd.Arith(ir.OpCmpLT, zero, n)
		g.bd.Branch(cond, header, exit)
	}
	g.bd.SetBlock(exit)
}

// switchStmt emits a wide dispatch: a cmpeq chain selecting one of w arms,
// every arm mutating shared variables and rejoining in a single block — a
// join with w predecessors, i.e. w-argument φs after SSA construction.
func (g *largeGen) switchStmt(depth int) {
	maxW := g.p.SwitchWidth
	if maxW < 2 {
		maxW = 2
	}
	w := 2 + g.rng.Intn(maxW-1)
	sel := g.pickShared()
	join := g.block("j")
	arms := make([]*ir.Block, w)
	for i := range arms {
		arms[i] = g.block("a")
	}
	for i := 0; i < w-1; i++ {
		k := g.bd.Const(int64(i))
		c := g.bd.Arith(ir.OpCmpEQ, sel, k)
		if i == w-2 {
			g.bd.Branch(c, arms[i], arms[i+1])
		} else {
			t := g.block("t")
			g.bd.Branch(c, arms[i], t)
			g.bd.SetBlock(t)
		}
	}
	for _, a := range arms {
		g.bd.SetBlock(a)
		for i := 0; i < 1+g.rng.Intn(3); i++ {
			g.mutate()
		}
		if depth+1 < g.p.LoopDepth && g.budget > 0 && g.rng.Float64() < 0.10 {
			g.body(depth + 1)
		}
		g.bd.Jump(join)
	}
	g.bd.SetBlock(join)
}
