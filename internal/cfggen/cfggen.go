// Package cfggen generates synthetic compilation workloads that stand in
// for the paper's SPEC CINT2000 functions (compiled by the ST200 Open64
// compiler and handed to a CLI JIT). The out-of-SSA algorithms only observe
// CFG shape, SSA structure, live ranges, and copy affinities, so the
// generator reproduces the properties that matter:
//
//   - structured, reducible control flow with nested loops, if/else chains,
//     and bounded counting loops (some using the DSP branch-with-decrement);
//   - mutation-heavy straight-line code so SSA construction creates φ webs;
//   - aggressive copy propagation after construction, which extends live
//     ranges across copies and makes the form non-conventional;
//   - call-like sites with register-pinned variables, producing the
//     renaming-constraint copies of Section III-D;
//   - loop-depth-derived block frequencies serving as affinity weights.
//
// Generation is fully deterministic from the profile seed. Loops have small
// constant trip counts so the interpreter-based equivalence tests terminate.
package cfggen

import (
	"math/rand"

	"repro/internal/dom"
	"repro/internal/ir"
	"repro/internal/ssa"
)

// debugHook, when set by tests, receives the textual pre-SSA form of each
// generated function before construction.
var debugHook func(string)

// Profile describes one synthetic benchmark.
type Profile struct {
	Name  string
	Seed  int64
	Funcs int
	// MinStmts/MaxStmts bound the statement budget of one function.
	MinStmts, MaxStmts int
	// MaxDepth bounds control-structure nesting.
	MaxDepth int
	// CallProb is the per-statement probability of a register-pinned
	// call-like site; CopyProb of an explicit copy; MutateProb of assigning
	// to an existing variable instead of a fresh one.
	CallProb, CopyProb, MutateProb float64
	// BrDecProb is the probability that a counting loop uses the
	// branch-with-decrement terminator.
	BrDecProb float64
	// Propagate applies SSA copy propagation + dead code elimination after
	// construction (breaking conventionality). PropagateFrac is the fraction
	// of copy uses actually folded (1 = all); partial folding leaves
	// same-value copies in place, as real optimizer output does.
	Propagate     bool
	PropagateFrac float64
}

// DefaultProfile returns a medium-sized profile.
func DefaultProfile(name string, seed int64) Profile {
	return Profile{
		Name: name, Seed: seed, Funcs: 12,
		MinStmts: 20, MaxStmts: 90, MaxDepth: 4,
		CallProb: 0.06, CopyProb: 0.18, MutateProb: 0.45, BrDecProb: 0.15,
		Propagate: true, PropagateFrac: 0.7,
	}
}

// GenerateRaw builds the profile's functions *before* SSA construction:
// structured control flow with multiple assignments per variable and no
// φ-functions. Useful for inspecting the front-end shape and for driving
// ssa.Construct explicitly.
func GenerateRaw(p Profile) []*ir.Func {
	rng := rand.New(rand.NewSource(p.Seed))
	funcs := make([]*ir.Func, 0, p.Funcs)
	for i := 0; i < p.Funcs; i++ {
		g := &gen{p: p, rng: rand.New(rand.NewSource(rng.Int63()))}
		funcs = append(funcs, g.function(i))
	}
	return funcs
}

// Generate builds the profile's functions in SSA form, copy-propagated when
// the profile asks for it, with loop-based block frequencies installed.
func Generate(p Profile) []*ir.Func {
	rng := rand.New(rand.NewSource(p.Seed))
	funcs := make([]*ir.Func, 0, p.Funcs)
	for i := 0; i < p.Funcs; i++ {
		g := &gen{
			p:   p,
			rng: rand.New(rand.NewSource(rng.Int63())),
		}
		f := g.function(i)
		if debugHook != nil {
			debugHook(f.String())
		}
		dt, _ := ssa.Construct(f)
		if p.Propagate {
			frac := p.PropagateFrac
			if frac <= 0 {
				frac = 1
			}
			prng := rand.New(rand.NewSource(rng.Int63()))
			ssa.PropagateCopiesWhere(f, dt, func(ir.VarID) bool {
				return prng.Float64() < frac
			})
			ssa.EliminateDeadCode(f)
		}
		ssa.SortPhisByDef(f)
		InstallFrequencies(f, dt)
		funcs = append(funcs, f)
	}
	return funcs
}

// InstallFrequencies sets each block's frequency to 10^loopdepth, the
// classic static profile estimate the paper uses as coalescing weight.
func InstallFrequencies(f *ir.Func, dt *dom.Tree) {
	depth := dt.LoopDepth()
	for _, b := range f.Blocks {
		fr := 1.0
		for i := 0; i < depth[b.ID] && i < 6; i++ {
			fr *= 10
		}
		b.Freq = fr
	}
}

type gen struct {
	p      Profile
	rng    *rand.Rand
	bd     *ir.Builder
	budget int
	pinned int // distinct architectural registers minted
	blkSeq int // unique block-name counter
	varSeq int // unique variable-name counter
}

// varName mints a unique variable base name (SSA versioning appends ".k",
// so distinct ir variables must not share names for textual round-trips).
func (g *gen) varName(prefix string) string {
	g.varSeq++
	return prefix + itoa(g.varSeq)
}

// block mints a uniquely named block (textual round-trips need unique names).
func (g *gen) block(prefix string) *ir.Block {
	g.blkSeq++
	return g.bd.Block(prefix + itoa(g.blkSeq))
}

// function builds one non-SSA function with mutation-heavy structured code.
func (g *gen) function(idx int) *ir.Func {
	g.bd = ir.NewBuilder(g.p.Name + "_f" + itoa(idx))
	g.budget = g.p.MinStmts + g.rng.Intn(g.p.MaxStmts-g.p.MinStmts+1)

	vars := []ir.VarID{
		g.bd.Param(0),
		g.bd.Param(1),
		g.bd.Const(int64(g.rng.Intn(20) + 1)),
		g.bd.Const(int64(g.rng.Intn(20) + 1)),
	}
	g.body(&vars, 0)
	g.bd.Print(g.pick(vars))
	g.bd.Ret(g.pick(vars))
	return g.bd.F
}

// body emits statements into the current block until the budget share for
// this nesting level runs out.
func (g *gen) body(vars *[]ir.VarID, depth int) {
	for g.budget > 0 {
		g.budget--
		r := g.rng.Float64()
		switch {
		case depth < g.p.MaxDepth && r < 0.10:
			g.ifElse(vars, depth)
		case depth < g.p.MaxDepth && r < 0.18:
			g.loop(vars, depth)
		case r < 0.18+g.p.CallProb:
			g.callSite(vars)
		case r < 0.18+g.p.CallProb+g.p.CopyProb:
			g.copyStmt(vars)
		case r < 0.30+g.p.CallProb+g.p.CopyProb:
			g.bd.Print(g.pick(*vars))
		default:
			g.arith(vars)
		case depth > 0 && r > 0.97:
			return // leave the nest early sometimes
		}
	}
}

func (g *gen) pick(vars []ir.VarID) ir.VarID { return vars[g.rng.Intn(len(vars))] }

var arithOps = []ir.Op{ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpCmpLT, ir.OpCmpEQ}

// arith emits a binary operation, either into a fresh variable or mutating
// an existing one (which is what creates φ-functions later).
func (g *gen) arith(vars *[]ir.VarID) {
	op := arithOps[g.rng.Intn(len(arithOps))]
	a, b := g.pick(*vars), g.pick(*vars)
	if g.rng.Float64() < g.p.MutateProb {
		dst := g.pick(*vars)
		g.bd.Cur.Instrs = append(g.bd.Cur.Instrs,
			&ir.Instr{Op: op, Defs: []ir.VarID{dst}, Uses: []ir.VarID{a, b}})
		return
	}
	*vars = append(*vars, g.bd.Arith(op, a, b))
}

// copyStmt emits an explicit copy, into a fresh or an existing variable.
func (g *gen) copyStmt(vars *[]ir.VarID) {
	src := g.pick(*vars)
	if g.rng.Float64() < g.p.MutateProb {
		dst := g.pick(*vars)
		if dst != src {
			g.bd.CopyTo(dst, src)
		}
		return
	}
	*vars = append(*vars, g.bd.Copy(src))
}

// callSite emits a call-like sequence with calling-convention pinning: the
// argument is copied into a register-pinned variable whose live range spans
// only the site, and the result is read out of another pinned variable.
// Reusing the same ir-level variable across sites gives all its SSA
// versions the same register, which precoalescing later merges.
func (g *gen) callSite(vars *[]ir.VarID) {
	reg := "R" + itoa(g.rng.Intn(2)) // few registers → real constraint pressure
	f := g.bd.F
	arg := f.NewPinnedVar(g.varName("arg"+reg+"_"), reg)
	g.bd.CopyTo(arg, g.pick(*vars))
	// The "call" computes into the pinned variable itself.
	res := f.NewPinnedVar(g.varName("ret"+reg+"_"), reg)
	g.bd.Cur.Instrs = append(g.bd.Cur.Instrs,
		&ir.Instr{Op: ir.OpAdd, Defs: []ir.VarID{res}, Uses: []ir.VarID{arg, arg}})
	out := g.bd.Copy(res)
	*vars = append(*vars, out)
	g.pinned++
}

// ifElse emits a two-armed conditional; both arms may mutate outer
// variables, creating join φs.
func (g *gen) ifElse(vars *[]ir.VarID, depth int) {
	cond := g.bd.Arith(ir.OpCmpLT, g.pick(*vars), g.pick(*vars))
	then := g.block("t")
	els := g.block("e")
	join := g.block("j")
	g.bd.Branch(cond, then, els)

	g.bd.SetBlock(then)
	thenVars := append([]ir.VarID(nil), *vars...)
	g.consume(depth, &thenVars)
	g.bd.Jump(join)

	g.bd.SetBlock(els)
	elseVars := append([]ir.VarID(nil), *vars...)
	if g.rng.Float64() < 0.7 {
		g.consume(depth, &elseVars)
	}
	g.bd.Jump(join)

	g.bd.SetBlock(join)
}

// loop emits a bounded counting loop; the counter mutates a fresh variable,
// the body mutates outer ones. Some loops use the branch-with-decrement
// terminator, exercising the Figure 2 machinery.
func (g *gen) loop(vars *[]ir.VarID, depth int) {
	f := g.bd.F
	n := f.NewVar(g.varName("n"))
	g.bd.Cur.Instrs = append(g.bd.Cur.Instrs,
		&ir.Instr{Op: ir.OpConst, Defs: []ir.VarID{n}, Aux: int64(2 + g.rng.Intn(4))})
	header := g.block("h")
	exit := g.block("x")
	g.bd.Jump(header)

	g.bd.SetBlock(header)
	bodyVars := append([]ir.VarID(nil), *vars...)
	g.consume(depth, &bodyVars)
	if g.rng.Float64() < g.p.BrDecProb {
		// n = brdec n: decrement and branch in one terminator; the def is
		// the same ir-level variable, so SSA renaming makes the φ argument
		// the terminator-defined version (Figure 2).
		g.bd.Cur.Instrs = append(g.bd.Cur.Instrs,
			&ir.Instr{Op: ir.OpBrDec, Defs: []ir.VarID{n}, Uses: []ir.VarID{n}})
		ir.AddEdge(g.bd.Cur, header)
		ir.AddEdge(g.bd.Cur, exit)
	} else {
		one := g.bd.Const(1)
		g.bd.Cur.Instrs = append(g.bd.Cur.Instrs,
			&ir.Instr{Op: ir.OpSub, Defs: []ir.VarID{n}, Uses: []ir.VarID{n, one}})
		zero := g.bd.Const(0)
		cond := g.bd.Arith(ir.OpCmpLT, zero, n)
		g.bd.Branch(cond, header, exit)
	}
	g.bd.SetBlock(exit)
}

// consume runs a nested body with a bounded share of the budget.
func (g *gen) consume(depth int, vars *[]ir.VarID) {
	save := g.budget
	share := 1 + g.rng.Intn(max(save/3, 1))
	g.budget = min(share, save)
	used := g.budget
	g.body(vars, depth+1)
	used -= g.budget
	g.budget = save - used - 1
	if g.budget < 0 {
		g.budget = 0
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
