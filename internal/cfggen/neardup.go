package cfggen

import (
	"repro/internal/ir"
)

// NearDuplicateProfile describes a memoization workload: a base corpus plus
// K near-duplicate clones of every base function. Real compile servers and
// JITs see this shape constantly — template instantiations, re-JITted
// methods, recompiled translation units — and it is the workload a
// translation memo (outofssa.Memo) exists for. Each clone differs from its
// base by one small local edit, cycling through three kinds:
//
//	j%3 == 0  rename-only: every variable and block renamed, structure
//	          untouched. The structural fingerprint ignores names, so these
//	          clones are guaranteed memo hits.
//	j%3 == 1  one dead extra copy (fresh const + copy of it) inserted
//	          before the entry block's terminator: a new fingerprint, the
//	          same observable behaviour.
//	j%3 == 2  one semantics-preserving swapped branch: the first
//	          conditional branch with distinct targets is rewritten to
//	          branch on (cond == 0) with its successors swapped. Falls back
//	          to rename-only when the function has no such branch.
//
// Generation is fully deterministic from Base.Seed and EditSeed. Existing
// profiles and corpora are untouched — near-duplication is a separate
// expansion over Generate's output.
type NearDuplicateProfile struct {
	// Base generates the underlying corpus (in SSA form, via Generate).
	Base Profile
	// Clones is the number of near-duplicates minted per base function.
	Clones int
	// EditSeed varies the constants the structural edits introduce.
	EditSeed int64
}

// GenerateNearDuplicates builds the base corpus and interleaves each base
// function with its clones (base, its K clones, next base, …), so a single
// in-order pass over the result already exercises memo hits.
func GenerateNearDuplicates(p NearDuplicateProfile) []*ir.Func {
	base := Generate(p.Base)
	out := make([]*ir.Func, 0, len(base)*(p.Clones+1))
	for i, f := range base {
		out = append(out, f)
		for j := 0; j < p.Clones; j++ {
			c := ir.Clone(f)
			c.Name = f.Name + "_dup" + itoa(j)
			switch j % 3 {
			case 0:
				renameAll(c, j)
			case 1:
				addDeadCopy(c, p.EditSeed+int64(i)*31+int64(j))
			case 2:
				if !swapBranch(c, p.EditSeed+int64(i)*31+int64(j)) {
					renameAll(c, j)
				}
			}
			out = append(out, c)
		}
	}
	return out
}

// renameAll renames every variable and block with a clone-unique suffix.
// Names are display-only: the structural fingerprint, the analyses, and the
// translation are all name-insensitive, so a renamed clone is structurally
// identical to its base. Existing printable names stay unique because the
// base's names were.
func renameAll(f *ir.Func, j int) {
	suffix := "_d" + itoa(j)
	for id := range f.Vars {
		f.Vars[id].Name = f.VarName(ir.VarID(id)) + suffix
	}
	for _, b := range f.Blocks {
		b.Name += suffix
	}
}

// addDeadCopy inserts `c = const k; d = copy c` just before the entry
// block's terminator: two fresh single-definition variables, never used —
// strict SSA is preserved and the observable behaviour is unchanged, but
// the fingerprint moves.
func addDeadCopy(f *ir.Func, seed int64) {
	b := f.Entry()
	cv := f.NewVar("dupc" + itoa(int(seed&0xffff)))
	dv := f.NewVar("dupd" + itoa(int(seed&0xffff)))
	ins := []*ir.Instr{
		{Op: ir.OpConst, Defs: []ir.VarID{cv}, Aux: seed%97 + 1},
		{Op: ir.OpCopy, Defs: []ir.VarID{dv}, Uses: []ir.VarID{cv}},
	}
	at := len(b.Instrs)
	if at > 0 && b.Instrs[at-1].Op.IsTerminator() {
		at--
	}
	b.Instrs = append(b.Instrs[:at], append(ins, b.Instrs[at:]...)...)
	f.MarkBlockMutated(b)
}

// swapBranch rewrites the first conditional branch with distinct targets to
// test the negated condition with swapped successors: cond != 0 took
// Succs[0] before; afterwards (cond == 0) is 0 exactly then, and the old
// Succs[0] now sits in Succs[1]. Successor φ operands are indexed by the
// successors' Preds lists, which the swap does not touch. Returns false
// when the function has no such branch.
func swapBranch(f *ir.Func, seed int64) bool {
	for _, b := range f.Blocks {
		n := len(b.Instrs)
		if n == 0 {
			continue
		}
		t := b.Instrs[n-1]
		if t.Op != ir.OpBranch || b.Succs[0] == b.Succs[1] {
			continue
		}
		zv := f.NewVar("dupz" + itoa(int(seed&0xffff)))
		nv := f.NewVar("dupn" + itoa(int(seed&0xffff)))
		ins := []*ir.Instr{
			{Op: ir.OpConst, Defs: []ir.VarID{zv}, Aux: 0},
			{Op: ir.OpCmpEQ, Defs: []ir.VarID{nv}, Uses: []ir.VarID{t.Uses[0], zv}},
		}
		b.Instrs = append(b.Instrs[:n-1], append(ins, t)...)
		t.Uses[0] = nv
		b.Succs[0], b.Succs[1] = b.Succs[1], b.Succs[0]
		f.MarkCFGMutated()
		return true
	}
	return false
}
