package ssa

import "repro/internal/ir"

// Webs groups the variables of f into φ-webs: the equivalence classes of
// the transitive closure of "appears in the same φ-function". The SSA form
// is conventional (CSSA) exactly when no two variables of a web interfere,
// in which case every web can be given a single name and all φ-functions
// removed (paper, Section II-A).
//
// The returned slice maps each variable to its web representative
// (union-find root); variables not touching any φ map to themselves.
func Webs(f *ir.Func) []ir.VarID {
	parent := make([]ir.VarID, len(f.Vars))
	for i := range parent {
		parent[i] = ir.VarID(i)
	}
	var find func(x ir.VarID) ir.VarID
	find = func(x ir.VarID) ir.VarID {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b ir.VarID) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}
	for _, b := range f.Blocks {
		for _, phi := range b.Phis {
			for _, u := range phi.Uses {
				union(phi.Defs[0], u)
			}
		}
	}
	for i := range parent {
		parent[i] = find(ir.VarID(i))
	}
	return parent
}

// WebMembers inverts the representative map of Webs, returning only webs
// with at least two members (singletons are uninteresting to CSSA checks).
func WebMembers(webs []ir.VarID) map[ir.VarID][]ir.VarID {
	out := map[ir.VarID][]ir.VarID{}
	for v, r := range webs {
		out[r] = append(out[r], ir.VarID(v))
	}
	for r, members := range out {
		if len(members) < 2 {
			delete(out, r)
		}
	}
	return out
}
