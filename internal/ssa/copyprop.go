package ssa

import (
	"repro/internal/dom"
	"repro/internal/ir"
)

// PropagateCopies replaces every use of a copy destination with the copy's
// ultimate source, i.e. rewrites each use of x into V(x). This is the
// classic SSA copy-folding optimization; it preserves semantics but extends
// the live range of the source across the (now dead) copies, which is
// precisely what makes the SSA form non-conventional and a general
// out-of-SSA translation necessary (paper, Section I).
//
// It returns the number of rewritten operands. Dead copies are left in
// place; run EliminateDeadCode afterwards to drop them.
func PropagateCopies(f *ir.Func, dt *dom.Tree) int {
	return PropagateCopiesWhere(f, dt, func(ir.VarID) bool { return true })
}

// PropagateCopiesWhere is PropagateCopies restricted to uses for which
// replace returns true. The workload generator uses it to fold only a
// fraction of the copies, mimicking real optimizer output where some copies
// survive (and giving the finer coalescing strategies of Figure 5 something
// to distinguish themselves on).
func PropagateCopiesWhere(f *ir.Func, dt *dom.Tree, replace func(use ir.VarID) bool) int {
	vals := Values(f, dt)
	rewritten := 0
	repl := func(ops []ir.VarID) {
		for i, u := range ops {
			nv := vals[u]
			if nv == u || !replace(u) {
				continue
			}
			// Register-pinned variables are left alone: replacing a use of
			// a pinned variable would drop the renaming constraint, and
			// substituting a pinned source would stretch a physical
			// register's live range across unrelated code.
			if f.Vars[u].Reg != "" || f.Vars[nv].Reg != "" {
				continue
			}
			ops[i] = nv
			rewritten++
		}
	}
	for _, b := range f.Blocks {
		for _, in := range b.Phis {
			repl(in.Uses)
		}
		for _, in := range b.Instrs {
			// Keep the copies themselves intact so that they stay copies of
			// the representative value rather than self-copies.
			if in.Op == ir.OpCopy || in.Op == ir.OpParCopy {
				repl(in.Uses)
				continue
			}
			repl(in.Uses)
		}
	}
	if rewritten > 0 {
		f.MarkCodeMutated()
	}
	return rewritten
}

// EliminateDeadCode removes side-effect-free instructions whose results are
// unused, iterating until a fixpoint: dead copies left by PropagateCopies,
// dead φ-functions, and dead straight-line computations. Terminators,
// prints, and parameter loads for observable effects are kept (params are
// pure and may be removed). Returns the number of removed definitions.
func EliminateDeadCode(f *ir.Func) int {
	removed := 0
	for {
		useCount := make([]int, len(f.Vars))
		for _, b := range f.Blocks {
			for _, in := range b.Phis {
				for _, u := range in.Uses {
					useCount[u]++
				}
			}
			for _, in := range b.Instrs {
				for _, u := range in.Uses {
					useCount[u]++
				}
			}
		}
		changed := false
		for _, b := range f.Blocks {
			phis := b.Phis[:0]
			for _, in := range b.Phis {
				if useCount[in.Defs[0]] == 0 {
					removed++
					changed = true
					continue
				}
				phis = append(phis, in)
			}
			b.Phis = phis
			instrs := b.Instrs[:0]
			for _, in := range b.Instrs {
				if dead, n := pruneDead(in, useCount); dead {
					removed += n
					changed = true
					continue
				}
				instrs = append(instrs, in)
			}
			b.Instrs = instrs
		}
		if !changed {
			if removed > 0 {
				f.MarkCodeMutated()
			}
			return removed
		}
	}
}

// pruneDead reports whether in can be removed entirely; for parallel copies
// it drops dead components in place and removes the instruction only when
// none remain. n counts removed definitions.
func pruneDead(in *ir.Instr, useCount []int) (dead bool, n int) {
	switch in.Op {
	case ir.OpConst, ir.OpParam, ir.OpCopy, ir.OpAdd, ir.OpSub, ir.OpMul,
		ir.OpNeg, ir.OpCmpLT, ir.OpCmpEQ:
		if useCount[in.Defs[0]] == 0 {
			return true, 1
		}
	case ir.OpParCopy:
		defs, uses := in.Defs[:0], in.Uses[:0]
		for i, d := range in.Defs {
			if useCount[d] == 0 {
				n++
				continue
			}
			defs = append(defs, d)
			uses = append(uses, in.Uses[i])
		}
		in.Defs, in.Uses = defs, uses
		if len(defs) == 0 {
			return true, n
		}
	}
	return false, n
}
