// Package ssa builds and manipulates SSA form on the ir CFG: dominance-
// frontier φ placement with Cytron-style renaming, the "same value" analysis
// V(x) the paper's value-based interference relies on (Section III-A),
// copy propagation (the SSA optimization that breaks conventionality and
// motivates a general out-of-SSA translation), dead code elimination, φ-web
// computation, and a strict SSA verifier.
package ssa

import (
	"fmt"
	"sort"

	"repro/internal/bitset"
	"repro/internal/dom"
	"repro/internal/ir"
	"repro/internal/liveness"
)

// Construct rewrites f, which may assign each variable several times, into
// pruned SSA form: φ-functions are placed on the iterated dominance
// frontier of each variable's definition blocks, restricted to blocks where
// the variable is live-in (pruned SSA, so no φ ever needs a value from a
// path that never defines the variable), and variables are renamed so each
// has a unique definition. Every live use must be dominated by a
// definition; Construct panics otherwise (the workload generator and tests
// only produce strict programs).
//
// It returns the dominator tree (valid for the rewritten function) and a
// map from new variables to the original variable they version.
func Construct(f *ir.Func) (*dom.Tree, []ir.VarID) {
	dt := dom.Build(f)
	return dt, ConstructWith(f, dt, liveness.Compute(f))
}

// ConstructWith is Construct with caller-provided dominance and liveness
// (both for the pre-SSA function), letting a pass manager serve them from
// its analysis cache. Construction leaves the CFG untouched, so dt remains
// valid for the rewritten function; liveness does not.
func ConstructWith(f *ir.Func, dt *dom.Tree, live *liveness.Info) []ir.VarID {
	nOrig := len(f.Vars)

	// Definition sites and single-block usage, per original variable.
	defBlocks := make([][]int, nOrig)
	inOneBlock := make([]int32, nOrig) // -1 unseen, -2 several blocks, else the block
	for i := range inOneBlock {
		inOneBlock[i] = -1
	}
	touch := func(v ir.VarID, b int) {
		switch inOneBlock[v] {
		case -1:
			inOneBlock[v] = int32(b)
		case int32(b), -2:
		default:
			inOneBlock[v] = -2
		}
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for _, u := range in.Uses {
				touch(u, b.ID)
			}
			for _, d := range in.Defs {
				defBlocks[d] = append(defBlocks[d], b.ID)
				touch(d, b.ID)
			}
		}
		if len(b.Phis) > 0 {
			panic("ssa: Construct input already contains φ-functions")
		}
	}

	// φ placement on iterated dominance frontiers.
	df := dt.Frontier()
	hasPhi := make([]map[ir.VarID]*ir.Instr, len(f.Blocks))
	for v := ir.VarID(0); int(v) < nOrig; v++ {
		if len(defBlocks[v]) == 0 || inOneBlock[v] >= 0 {
			continue
		}
		work := append([]int(nil), defBlocks[v]...)
		onWork := bitset.New(len(f.Blocks))
		for _, b := range work {
			onWork.Add(b)
		}
		for len(work) > 0 {
			b := work[len(work)-1]
			work = work[:len(work)-1]
			for _, y := range df[b] {
				if hasPhi[y] == nil {
					hasPhi[y] = map[ir.VarID]*ir.Instr{}
				}
				if _, ok := hasPhi[y][v]; ok {
					continue
				}
				if !live.In(y).Has(int(v)) {
					// Pruned SSA: a φ is only needed where the variable is
					// live; this also guarantees every φ argument has a
					// dominating definition.
					hasPhi[y][v] = nil
					continue
				}
				blk := f.Blocks[y]
				phi := &ir.Instr{
					Op:   ir.OpPhi,
					Defs: []ir.VarID{v},
					Uses: make([]ir.VarID, len(blk.Preds)),
				}
				for i := range phi.Uses {
					phi.Uses[i] = v
				}
				blk.Phis = append(blk.Phis, phi)
				hasPhi[y][v] = phi
				if !onWork.Has(y) {
					onWork.Add(y)
					work = append(work, y)
				}
			}
		}
	}

	// Renaming along the dominator tree.
	r := &renamer{
		f:      f,
		dt:     dt,
		stacks: make([][]ir.VarID, nOrig),
		counts: make([]int, nOrig),
		origOf: make([]ir.VarID, nOrig),
	}
	for i := range r.origOf {
		r.origOf[i] = ir.VarID(i)
	}
	r.block(f.Entry().ID)
	return r.origOf
}

type renamer struct {
	f      *ir.Func
	dt     *dom.Tree
	stacks [][]ir.VarID
	counts []int // versions minted per original, for unique names
	origOf []ir.VarID
}

func (r *renamer) fresh(orig ir.VarID) ir.VarID {
	n := fmt.Sprintf("%s.%d", r.f.VarName(orig), r.counts[orig])
	r.counts[orig]++
	nv := r.f.NewVar(n)
	r.f.Vars[nv].Reg = r.f.Vars[orig].Reg
	r.origOf = append(r.origOf, orig)
	return nv
}

func (r *renamer) top(orig ir.VarID) ir.VarID {
	st := r.stacks[orig]
	if len(st) == 0 {
		panic("ssa: use of " + r.f.VarName(orig) + " without dominating definition")
	}
	return st[len(st)-1]
}

func (r *renamer) block(bID int) {
	b := r.f.Blocks[bID]
	var pushed []ir.VarID

	def := func(in *ir.Instr, i int) {
		orig := in.Defs[i]
		nv := r.fresh(orig)
		r.stacks[orig] = append(r.stacks[orig], nv)
		pushed = append(pushed, orig)
		in.Defs[i] = nv
	}
	for _, in := range b.Phis {
		def(in, 0)
	}
	for _, in := range b.Instrs {
		for i, u := range in.Uses {
			in.Uses[i] = r.top(u)
		}
		for i := range in.Defs {
			def(in, i)
		}
	}
	for _, s := range b.Succs {
		pi := s.PredIndex(b)
		for _, phi := range s.Phis {
			orig := phi.Uses[pi]
			if int(orig) < len(r.stacks) { // still an original name
				phi.Uses[pi] = r.top(orig)
			}
		}
	}
	for _, c := range r.dt.Children(bID) {
		r.block(c)
	}
	for i := len(pushed) - 1; i >= 0; i-- {
		orig := pushed[i]
		r.stacks[orig] = r.stacks[orig][:len(r.stacks[orig])-1]
	}
}

// SortPhisByDef orders the φ-functions of every block by their defined
// variable, giving deterministic iteration to the translator.
func SortPhisByDef(f *ir.Func) {
	for _, b := range f.Blocks {
		sort.SliceStable(b.Phis, func(i, j int) bool {
			return b.Phis[i].Defs[0] < b.Phis[j].Defs[0]
		})
	}
}
