package ssa

import (
	"repro/internal/dom"
	"repro/internal/ir"
)

// Values computes the paper's "SSA value" V(x) of every variable
// (Section III-A): walking the dominator tree in preorder, a copy b = a
// (plain or a parallel-copy component) gives V(b) = V(a); any other
// definition, φ-functions included, gives V(b) = b. Two variables with the
// same value never interfere, no matter how their live ranges intersect.
//
// The value of a class is the variable whose definition dominates the
// definitions of all other members, so V is idempotent: V(V(x)) = V(x).
// Variables without a definition get themselves as value.
func Values(f *ir.Func, dt *dom.Tree) []ir.VarID {
	vals := make([]ir.VarID, len(f.Vars))
	for i := range vals {
		vals[i] = ir.VarID(i)
	}
	var walk func(bID int)
	walk = func(bID int) {
		b := f.Blocks[bID]
		for _, in := range b.Phis {
			vals[in.Defs[0]] = in.Defs[0]
		}
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpCopy:
				vals[in.Defs[0]] = vals[in.Uses[0]]
			case ir.OpParCopy:
				for i, d := range in.Defs {
					vals[d] = vals[in.Uses[i]]
				}
			default:
				for _, d := range in.Defs {
					vals[d] = d
				}
			}
		}
		for _, c := range dt.Children(bID) {
			walk(c)
		}
	}
	walk(f.Entry().ID)
	return vals
}
