package ssa_test

import (
	"math/rand"
	"testing"

	"repro/internal/cfggen"
	"repro/internal/dom"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/ssa"
)

// nonSSASrc assigns x and y several times across control flow.
const nonSSASrc = `
func m {
entry:
  x = param 0
  y = const 0
  c = cmplt y x
  br c t e
t:
  x = add x x
  jump j
e:
  y = add x y
  jump j
j:
  z = add x y
  print z
  n = const 3
  jump h
h:
  y = add y z
  one = const 1
  n = sub n one
  zero = const 0
  k = cmplt zero n
  br k h out
out:
  print y
  ret x
}
`

func TestConstructProducesStrictSSA(t *testing.T) {
	f := ir.MustParse(nonSSASrc)
	dt, origOf := ssa.Construct(f)
	if err := ssa.Verify(f, dt); err != nil {
		t.Fatalf("not strict SSA: %v\n%s", err, f)
	}
	// x had defs in entry and t and is used at the join and beyond: the join
	// needs a φ for x; the loop header needs φs for y and n.
	phiAt := func(name string) int {
		for _, b := range f.Blocks {
			if b.Name == name {
				return len(b.Phis)
			}
		}
		return -1
	}
	if phiAt("j") == 0 {
		t.Fatal("join block must carry φs")
	}
	if phiAt("h") == 0 {
		t.Fatal("loop header must carry φs")
	}
	if len(origOf) != len(f.Vars) {
		t.Fatal("origOf must cover the final universe")
	}
}

func TestConstructPreservesSemantics(t *testing.T) {
	inputs := [][]int64{{0, 0}, {1, 0}, {-3, 5}, {10, 2}}
	orig := ir.MustParse(nonSSASrc)
	f := ir.MustParse(nonSSASrc)
	ssa.Construct(f)
	for _, in := range inputs {
		want, err := interp.Run(orig, in, 10000)
		if err != nil {
			t.Fatal(err)
		}
		got, err := interp.Run(f, in, 10000)
		if err != nil {
			t.Fatal(err)
		}
		if !interp.Equal(want, got) {
			t.Fatalf("SSA construction changed behaviour on %v", in)
		}
	}
}

func TestConstructGeneratedSemantics(t *testing.T) {
	// The generator runs Construct internally with Propagate off/on; here we
	// compare pre/post forms explicitly on its raw functions via roundtrip.
	p := cfggen.DefaultProfile("ssasem", 31)
	p.Funcs = 6
	inputs := [][]int64{{0, 0}, {7, -2}, {100, 3}}
	for _, f := range cfggen.Generate(p) {
		// Generated functions are already SSA; re-verify strictness.
		dt := dom.Build(f)
		if err := ssa.Verify(f, dt); err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		_ = inputs
	}
}

func TestValuesFollowCopyChains(t *testing.T) {
	src := `
func v {
entry:
  a = param 0
  b = copy a
  c = copy b
  d = add a b
  e = copy d
  br a l r
l:
  jump j
r:
  jump j
j:
  p = phi l:c r:e
  q = copy p
  print q
  ret q
}
`
	f := ir.MustParse(src)
	dt := dom.Build(f)
	vals := ssa.Values(f, dt)
	get := func(n string) ir.VarID {
		for i, v := range f.Vars {
			if v.Name == n {
				return vals[i]
			}
		}
		panic(n)
	}
	if get("b") != get("a") || get("c") != get("a") {
		t.Fatal("copy chain must collapse to a")
	}
	if get("d") == get("a") || get("e") != get("d") {
		t.Fatal("d is a fresh value; e copies it")
	}
	// φ defines a fresh value even when arguments could be equal.
	if get("p") == get("a") || get("p") == get("d") {
		t.Fatal("φ result is a new value")
	}
	if get("q") != get("p") {
		t.Fatal("q copies the φ value")
	}
	// Idempotence: V(V(x)) = V(x).
	for i := range vals {
		if vals[vals[i]] != vals[i] {
			t.Fatalf("V not idempotent at %s", f.VarName(ir.VarID(i)))
		}
	}
}

func TestParallelCopyValues(t *testing.T) {
	src := `
func pc {
entry:
  a = param 0
  b = param 1
  parcopy x:a y:b
  print x
  print y
  ret a
}
`
	f := ir.MustParse(src)
	vals := ssa.Values(f, dom.Build(f))
	get := func(n string) ir.VarID {
		for i, v := range f.Vars {
			if v.Name == n {
				return vals[i]
			}
		}
		panic(n)
	}
	if get("x") != get("a") || get("y") != get("b") {
		t.Fatal("parallel copy components must propagate values")
	}
}

func TestPropagateCopiesBreaksCSSAButNotSemantics(t *testing.T) {
	p := cfggen.DefaultProfile("prop", 37)
	p.Funcs = 6
	p.Propagate = false
	inputs := [][]int64{{2, 3}, {-1, 8}}
	for _, f := range cfggen.Generate(p) {
		orig := ir.Clone(f)
		dt := dom.Build(f)
		n := ssa.PropagateCopies(f, dt)
		removed := ssa.EliminateDeadCode(f)
		if err := ssa.Verify(f, dom.Build(f)); err != nil {
			t.Fatalf("%s: propagation broke SSA: %v", f.Name, err)
		}
		for _, in := range inputs {
			want, err := interp.Run(orig, in, 100000)
			if err != nil {
				t.Fatal(err)
			}
			got, err := interp.Run(f, in, 100000)
			if err != nil {
				t.Fatal(err)
			}
			if !interp.Equal(want, got) {
				t.Fatalf("%s: copy propagation changed behaviour (rewrote %d, removed %d)",
					f.Name, n, removed)
			}
		}
	}
}

func TestEliminateDeadCode(t *testing.T) {
	src := `
func d {
entry:
  a = param 0
  dead1 = const 5
  dead2 = add dead1 dead1
  b = copy a
  print a
  ret b
}
`
	f := ir.MustParse(src)
	removed := ssa.EliminateDeadCode(f)
	if removed != 2 {
		t.Fatalf("removed %d, want 2 (dead chain)", removed)
	}
	for _, in := range f.Blocks[0].Instrs {
		for _, d := range in.Defs {
			if name := f.VarName(d); name == "dead1" || name == "dead2" {
				t.Fatal("dead instruction survived")
			}
		}
	}
}

func TestWebs(t *testing.T) {
	src := `
func w {
entry:
  a = param 0
  b = param 1
  br a l r
l:
  jump j
r:
  jump j
j:
  p = phi l:a r:b
  q = phi l:b r:a
  z = add p q
  print z
  ret z
}
`
	f := ir.MustParse(src)
	webs := ssa.Webs(f)
	id := func(n string) ir.VarID {
		for i, v := range f.Vars {
			if v.Name == n {
				return ir.VarID(i)
			}
		}
		panic(n)
	}
	// Both φs mention a and b: everything collapses into one web.
	if webs[id("p")] != webs[id("q")] || webs[id("p")] != webs[id("a")] || webs[id("a")] != webs[id("b")] {
		t.Fatal("p, q, a, b must share a web")
	}
	if webs[id("z")] == webs[id("p")] {
		t.Fatal("z touches no φ: separate web")
	}
	members := ssa.WebMembers(webs)
	if len(members) != 1 {
		t.Fatalf("one non-trivial web expected, got %d", len(members))
	}
}

func TestVerifyCatchesUseBeforeDef(t *testing.T) {
	src := `
func bad {
entry:
  b = add a a
  a = param 0
  ret b
}
`
	f := ir.MustParse(src)
	if err := ssa.Verify(f, dom.Build(f)); err == nil {
		t.Fatal("use before def must be rejected")
	}
}

func TestSortPhisDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	_ = rng
	f := ir.MustParse(nonSSASrc)
	ssa.Construct(f)
	ssa.SortPhisByDef(f)
	for _, b := range f.Blocks {
		for i := 1; i < len(b.Phis); i++ {
			if b.Phis[i-1].Defs[0] > b.Phis[i].Defs[0] {
				t.Fatal("φs not sorted")
			}
		}
	}
}
