package ssa

import (
	"fmt"

	"repro/internal/dom"
	"repro/internal/ir"
)

// Verify checks strict SSA form: on top of the structural checks of
// ir.Verify, every variable has at most one definition and every use is
// dominated by its definition (φ uses by dominance of the corresponding
// predecessor's exit).
func Verify(f *ir.Func, dt *dom.Tree) error {
	if err := ir.Verify(f); err != nil {
		return err
	}
	var du *ir.DefUse
	err := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("%v", r)
			}
		}()
		du = ir.NewDefUse(f)
		return nil
	}()
	if err != nil {
		return err
	}
	for v := range f.Vars {
		vid := ir.VarID(v)
		if !du.HasDef(vid) {
			if len(du.Uses(vid)) > 0 {
				return fmt.Errorf("variable %s used but never defined", f.VarName(vid))
			}
			continue
		}
		db, ds := du.DefBlock(vid), du.DefSlot(vid)
		for _, u := range du.Uses(vid) {
			ub := int(u.Block)
			if ub == db {
				// Within a block: the definition must precede the use. A φ
				// use sits at the block's very end (PhiUseSlot); same-slot
				// operands (e.g. a parallel copy using its own target) are
				// fine because all reads happen before writes.
				if u.Slot < ds || (u.Slot == ds && u.Instr != du.DefInstr(vid)) {
					return fmt.Errorf("use of %s in %s precedes its definition",
						f.VarName(vid), f.Blocks[ub].Name)
				}
				continue
			}
			if !dt.Dominates(db, ub) {
				return fmt.Errorf("use of %s in %s not dominated by definition in %s",
					f.VarName(vid), f.Blocks[ub].Name, f.Blocks[db].Name)
			}
		}
	}
	return nil
}
