package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSetBasic(t *testing.T) {
	s := New(100)
	if !s.Empty() || s.Count() != 0 {
		t.Fatal("new set must be empty")
	}
	s.Add(3)
	s.Add(64)
	s.Add(99)
	if s.Count() != 3 || !s.Has(3) || !s.Has(64) || !s.Has(99) || s.Has(4) {
		t.Fatalf("unexpected contents: %v", s)
	}
	s.Remove(64)
	if s.Has(64) || s.Count() != 2 {
		t.Fatal("remove failed")
	}
	if got := s.String(); got != "{3, 99}" {
		t.Fatalf("String() = %q", got)
	}
}

func TestSetGrowOnAdd(t *testing.T) {
	s := New(1)
	s.Add(500)
	if !s.Has(500) || s.Len() < 501 {
		t.Fatal("Add must grow the set")
	}
	if s.Has(1000) {
		t.Fatal("out-of-range Has must be false")
	}
}

// TestSetAgainstMapModel drives a Set and a map[int]bool with the same
// random operations and compares observations.
func TestSetAgainstMapModel(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := New(64)
	m := map[int]bool{}
	for i := 0; i < 20000; i++ {
		v := rng.Intn(300)
		switch rng.Intn(3) {
		case 0:
			s.Add(v)
			m[v] = true
		case 1:
			s.Remove(v)
			delete(m, v)
		case 2:
			if s.Has(v) != m[v] {
				t.Fatalf("step %d: Has(%d) = %v, model %v", i, v, s.Has(v), m[v])
			}
		}
	}
	if s.Count() != len(m) {
		t.Fatalf("Count = %d, model %d", s.Count(), len(m))
	}
	n := 0
	s.ForEach(func(v int) {
		if !m[v] {
			t.Fatalf("ForEach yielded %d not in model", v)
		}
		n++
	})
	if n != len(m) {
		t.Fatalf("ForEach yielded %d values, model has %d", n, len(m))
	}
}

func fromInts(vals []uint16) *Set {
	s := New(0)
	for _, v := range vals {
		s.Add(int(v) % 500)
	}
	return s
}

func TestAddNegativePanics(t *testing.T) {
	s := New(64)
	defer func() {
		if recover() == nil {
			t.Fatal("Add(-1) must panic, not silently set bit 63 of word 0")
		}
		if s.Has(63) {
			t.Fatal("Add(-1) corrupted the set before panicking")
		}
	}()
	s.Add(-1)
}

func TestUnionWithAndNot(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 200; trial++ {
		s, tt, u := New(130), New(130), New(130)
		model := map[int]bool{}
		for i := 0; i < 40; i++ {
			v := rng.Intn(130)
			switch rng.Intn(3) {
			case 0:
				s.Add(v)
				model[v] = true
			case 1:
				tt.Add(v)
			default:
				u.Add(v)
			}
		}
		before := map[int]bool{}
		for k, v := range model {
			before[k] = v
		}
		tt.ForEach(func(v int) {
			if !u.Has(v) {
				model[v] = true
			}
		})
		changed := s.UnionWithAndNot(tt, u)
		wantChanged := len(model) != len(before)
		if changed != wantChanged {
			t.Fatalf("trial %d: changed = %v, want %v", trial, changed, wantChanged)
		}
		for v := 0; v < 130; v++ {
			if s.Has(v) != model[v] {
				t.Fatalf("trial %d: element %d: got %v want %v", trial, v, s.Has(v), model[v])
			}
		}
	}
}

func TestResetShrinksCapacity(t *testing.T) {
	s := New(1000)
	s.Add(900)
	s.Reset(100)
	if !s.Empty() || s.Len() != 100 {
		t.Fatalf("Reset: len=%d empty=%v", s.Len(), s.Empty())
	}
	if s.Bytes() != 2*8 {
		t.Fatalf("Reset must shrink the payload view: %d bytes", s.Bytes())
	}
	// A set unioned with a reset scratch must not inherit the old capacity.
	d := New(100)
	d.UnionWith(s)
	if d.Bytes() != 2*8 {
		t.Fatalf("union with reset scratch leaked capacity: %d bytes", d.Bytes())
	}
	s.Reset(2000)
	if s.Len() != 2000 || !s.Empty() {
		t.Fatal("Reset must also grow")
	}
}

func TestSetAlgebraProperties(t *testing.T) {
	// Union is commutative on membership; intersection is contained in both;
	// difference removes exactly the other's elements.
	f := func(a, b []uint16) bool {
		sa, sb := fromInts(a), fromInts(b)
		u1 := sa.Copy()
		u1.UnionWith(sb)
		u2 := sb.Copy()
		u2.UnionWith(sa)
		if !u1.Equal(u2) {
			return false
		}
		inter := sa.Copy()
		inter.IntersectWith(sb)
		ok := true
		inter.ForEach(func(v int) {
			if !sa.Has(v) || !sb.Has(v) {
				ok = false
			}
		})
		if sa.Intersects(sb) != !inter.Empty() {
			return false
		}
		diff := sa.Copy()
		diff.DifferenceWith(sb)
		diff.ForEach(func(v int) {
			if !sa.Has(v) || sb.Has(v) {
				ok = false
			}
		})
		return ok && diff.Count()+inter.Count() == sa.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSetEqualDifferentCapacities(t *testing.T) {
	a, b := New(10), New(1000)
	a.Add(5)
	b.Add(5)
	if !a.Equal(b) || !b.Equal(a) {
		t.Fatal("equality must ignore capacity")
	}
	b.Add(700)
	if a.Equal(b) {
		t.Fatal("sets differ")
	}
}

func TestCopyFromClearsTail(t *testing.T) {
	a := New(200)
	a.Add(150)
	b := New(10)
	b.Add(3)
	a.CopyFrom(b)
	if a.Has(150) || !a.Has(3) || a.Count() != 1 {
		t.Fatalf("CopyFrom left stale bits: %v", a)
	}
}

func TestMatrixSymmetricRelation(t *testing.T) {
	m := NewMatrix(10)
	m.Set(2, 7)
	if !m.Has(7, 2) || !m.Has(2, 7) {
		t.Fatal("matrix must be symmetric")
	}
	if m.Has(2, 6) || m.Has(0, 0) == true && false {
		t.Fatal("unrelated pair reported")
	}
	m.Set(9, 9)
	if !m.Has(9, 9) {
		t.Fatal("diagonal must work")
	}
	m.Clear(2, 7)
	if m.Has(2, 7) {
		t.Fatal("Clear failed")
	}
}

func TestMatrixGrowPreservesAndCounts(t *testing.T) {
	m := NewMatrix(4)
	m.Set(1, 3)
	before := m.AllocatedBytes()
	m.Set(100, 2) // implies growth
	if !m.Has(1, 3) || !m.Has(2, 100) {
		t.Fatal("growth lost bits")
	}
	if m.AllocatedBytes() <= before {
		t.Fatal("growth must add to cumulative allocation")
	}
	if m.Bytes() > m.AllocatedBytes() {
		t.Fatal("current bytes cannot exceed cumulative")
	}
}

func TestMatrixAgainstMapModel(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := NewMatrix(1)
	model := map[[2]int]bool{}
	key := func(i, j int) [2]int {
		if i < j {
			i, j = j, i
		}
		return [2]int{i, j}
	}
	for step := 0; step < 5000; step++ {
		i, j := rng.Intn(80), rng.Intn(80)
		switch rng.Intn(3) {
		case 0:
			m.Set(i, j)
			model[key(i, j)] = true
		case 1:
			m.Clear(i, j)
			delete(model, key(i, j))
		default:
			if m.Has(i, j) != model[key(i, j)] {
				t.Fatalf("step %d: Has(%d,%d) mismatch", step, i, j)
			}
		}
	}
}

func TestEvaluatedBytesFormula(t *testing.T) {
	// ceil(n/8) * n / 2, straight from the paper.
	cases := map[int]int{0: 0, 1: 0, 8: 4, 16: 16, 100: 650}
	for n, want := range cases {
		if got := EvaluatedBytes(n); got != want {
			t.Errorf("EvaluatedBytes(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestOrderedBasic(t *testing.T) {
	o := NewOrdered(0)
	for _, v := range []int{5, 1, 9, 5, 3} {
		o.Add(v)
	}
	if o.Len() != 4 {
		t.Fatalf("Len = %d", o.Len())
	}
	want := []int{1, 3, 5, 9}
	got := o.Elems()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Elems = %v", got)
		}
	}
	if !o.Remove(5) || o.Remove(5) || o.Has(5) {
		t.Fatal("Remove misbehaved")
	}
	if o.Bytes() != 4*3 {
		t.Fatalf("Bytes = %d", o.Bytes())
	}
}

func TestOrderedMatchesSet(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	o := NewOrdered(0)
	s := New(0)
	for i := 0; i < 5000; i++ {
		v := rng.Intn(200)
		switch rng.Intn(3) {
		case 0:
			o.Add(v)
			s.Add(v)
		case 1:
			o.Remove(v)
			s.Remove(v)
		default:
			if o.Has(v) != s.Has(v) {
				t.Fatalf("step %d: divergence on %d", i, v)
			}
		}
	}
	if o.Len() != s.Count() {
		t.Fatal("size divergence")
	}
	i := 0
	elems := s.Elems()
	o.ForEach(func(v int) {
		if elems[i] != v {
			t.Fatalf("order divergence at %d", i)
		}
		i++
	})
}

func TestOrderedUnionWith(t *testing.T) {
	a, b := NewOrdered(0), NewOrdered(0)
	a.Add(1)
	a.Add(5)
	b.Add(5)
	b.Add(9)
	if !a.UnionWith(b) {
		t.Fatal("union should change a")
	}
	if a.Len() != 3 || !a.Has(9) {
		t.Fatal("union wrong")
	}
	if a.UnionWith(b) {
		t.Fatal("second union should be a no-op")
	}
}

// TestOrderedMergeOpsMatchModel drives the merge-based unions (UnionWith,
// UnionSorted, UnionWithAndNot) against a per-element model.
func TestOrderedMergeOpsMatchModel(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 300; trial++ {
		o := NewOrdered(0)
		src := NewOrdered(0)
		excl := New(150)
		model := map[int]bool{}
		for i := 0; i < 30; i++ {
			v := rng.Intn(150)
			switch rng.Intn(3) {
			case 0:
				o.Add(v)
				model[v] = true
			case 1:
				src.Add(v)
			default:
				excl.Add(v)
			}
		}
		sizeBefore := o.Len()
		var changed bool
		switch trial % 3 {
		case 0:
			changed = o.UnionWith(src)
			src.ForEach(func(v int) { model[v] = true })
		case 1:
			var sorted []int32
			src.ForEach(func(v int) { sorted = append(sorted, int32(v)) })
			changed = o.UnionSorted(sorted)
			src.ForEach(func(v int) { model[v] = true })
		default:
			changed = o.UnionWithAndNot(src, excl)
			src.ForEach(func(v int) {
				if !excl.Has(v) {
					model[v] = true
				}
			})
		}
		if changed != (o.Len() != sizeBefore) {
			t.Fatalf("trial %d: changed = %v but size %d -> %d", trial, changed, sizeBefore, o.Len())
		}
		if o.Len() != len(model) {
			t.Fatalf("trial %d: len %d, model %d", trial, o.Len(), len(model))
		}
		prev := -1
		bad := false
		o.ForEach(func(v int) {
			if !model[v] || v <= prev {
				bad = true
			}
			prev = v
		})
		if bad {
			t.Fatalf("trial %d: elements unsorted or out of model: %v", trial, o.Elems())
		}
	}
}
