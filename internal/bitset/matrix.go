package bitset

// Matrix is a symmetric boolean relation over [0, n) stored as a half-size
// (lower-triangular) bit matrix, the representation used by the paper for
// interference graphs. It can grow dynamically, mirroring the incremental
// variable introduction of Sreedhar's Method III; the benchmark harness
// accounts for the reallocation overhead this causes (paper, Section IV-D).
type Matrix struct {
	bits      []uint64
	n         int
	allocated int // cumulative bytes ever allocated, for "measured" footprint
}

// NewMatrix returns an empty relation over [0, n).
func NewMatrix(n int) *Matrix {
	m := &Matrix{}
	m.GrowTo(n)
	return m
}

func triSize(n int) int { return n * (n + 1) / 2 }

func triIndex(i, j int) int {
	if i < j {
		i, j = j, i
	}
	return triSize(i) + j
}

// N returns the current universe size.
func (m *Matrix) N() int { return m.n }

// GrowTo extends the universe to at least n elements.
func (m *Matrix) GrowTo(n int) {
	if n <= m.n {
		return
	}
	words := (triSize(n) + wordBits - 1) / wordBits
	if words > len(m.bits) {
		nb := make([]uint64, words)
		copy(nb, m.bits)
		m.bits = nb
		m.allocated += words * 8
	}
	m.n = n
}

// Set records that i and j are related.
func (m *Matrix) Set(i, j int) {
	if i >= m.n || j >= m.n {
		max := i
		if j > max {
			max = j
		}
		m.GrowTo(max + 1)
	}
	k := triIndex(i, j)
	m.bits[k/wordBits] |= 1 << (uint(k) % wordBits)
}

// Has reports whether i and j are related.
func (m *Matrix) Has(i, j int) bool {
	if i < 0 || j < 0 || i >= m.n || j >= m.n {
		return false
	}
	k := triIndex(i, j)
	return m.bits[k/wordBits]&(1<<(uint(k)%wordBits)) != 0
}

// Clear removes the relation between i and j.
func (m *Matrix) Clear(i, j int) {
	if i < 0 || j < 0 || i >= m.n || j >= m.n {
		return
	}
	k := triIndex(i, j)
	m.bits[k/wordBits] &^= 1 << (uint(k) % wordBits)
}

// Bytes returns the current payload size in bytes.
func (m *Matrix) Bytes() int { return len(m.bits) * 8 }

// AllocatedBytes returns the cumulative bytes allocated over the lifetime of
// the matrix, including growth reallocations (the paper's "measured"
// footprint for dynamically grown matrices).
func (m *Matrix) AllocatedBytes() int { return m.allocated }

// EvaluatedBytes is the paper's perfect-memory formula for a half-size bit
// matrix over nvars variables: ceil(nvars/8) * nvars / 2.
func EvaluatedBytes(nvars int) int { return (nvars + 7) / 8 * nvars / 2 }
