package bitset

import "sort"

// Ordered is a sorted slice of distinct ints: the "ordered set"
// representation the paper uses for liveness sets in the memory-footprint
// comparison of Figure 7.
type Ordered struct {
	elems []int32
}

// NewOrdered returns an empty ordered set with the given capacity hint.
func NewOrdered(capHint int) *Ordered {
	return &Ordered{elems: make([]int32, 0, capHint)}
}

// Len returns the number of elements.
func (o *Ordered) Len() int { return len(o.elems) }

// Has reports whether v is in the set.
func (o *Ordered) Has(v int) bool {
	i := sort.Search(len(o.elems), func(i int) bool { return o.elems[i] >= int32(v) })
	return i < len(o.elems) && o.elems[i] == int32(v)
}

// Add inserts v, keeping the slice sorted. Reports whether the set changed.
func (o *Ordered) Add(v int) bool {
	i := sort.Search(len(o.elems), func(i int) bool { return o.elems[i] >= int32(v) })
	if i < len(o.elems) && o.elems[i] == int32(v) {
		return false
	}
	o.elems = append(o.elems, 0)
	copy(o.elems[i+1:], o.elems[i:])
	o.elems[i] = int32(v)
	return true
}

// Clear removes all elements, keeping the backing capacity. The liveness
// repair path uses it to re-seed a retained set from its base contribution.
func (o *Ordered) Clear() { o.elems = o.elems[:0] }

// Remove deletes v if present. Reports whether the set changed.
func (o *Ordered) Remove(v int) bool {
	i := sort.Search(len(o.elems), func(i int) bool { return o.elems[i] >= int32(v) })
	if i >= len(o.elems) || o.elems[i] != int32(v) {
		return false
	}
	o.elems = append(o.elems[:i], o.elems[i+1:]...)
	return true
}

// UnionWith adds all elements of t with a linear two-pointer merge;
// reports whether the set changed. (Still an ordered-set algorithm — the
// paper's representation — just not a quadratic one.)
func (o *Ordered) UnionWith(t *Ordered) bool {
	return o.unionSorted(t.elems, nil)
}

// UnionSorted adds the elements of the sorted, duplicate-free slice elems;
// reports whether the set changed. The slice is not retained.
func (o *Ordered) UnionSorted(elems []int32) bool {
	return o.unionSorted(elems, nil)
}

// UnionWithAndNot adds every element of t that is not in excl — the
// dataflow transfer o |= t \ excl — and reports whether o changed.
func (o *Ordered) UnionWithAndNot(t *Ordered, excl *Set) bool {
	return o.unionSorted(t.elems, excl)
}

// unionSorted merges the sorted slice src into o, skipping elements present
// in excl (which may be nil). A first two-pointer scan counts the missing
// elements so the no-change case allocates nothing.
func (o *Ordered) unionSorted(src []int32, excl *Set) bool {
	missing := 0
	i := 0
	for _, v := range src {
		if excl != nil && excl.Has(int(v)) {
			continue
		}
		for i < len(o.elems) && o.elems[i] < v {
			i++
		}
		if i >= len(o.elems) || o.elems[i] != v {
			missing++
		}
	}
	if missing == 0 {
		return false
	}
	merged := make([]int32, 0, len(o.elems)+missing)
	i = 0
	for _, v := range src {
		if excl != nil && excl.Has(int(v)) {
			continue
		}
		for i < len(o.elems) && o.elems[i] < v {
			merged = append(merged, o.elems[i])
			i++
		}
		if i < len(o.elems) && o.elems[i] == v {
			continue // appended on a later iteration of the outer loop
		}
		merged = append(merged, v)
	}
	merged = append(merged, o.elems[i:]...)
	o.elems = merged
	return true
}

// ForEach calls f for each element in increasing order.
func (o *Ordered) ForEach(f func(int)) {
	for _, v := range o.elems {
		f(int(v))
	}
}

// Elems returns a copy of the elements in increasing order.
func (o *Ordered) Elems() []int {
	out := make([]int, len(o.elems))
	for i, v := range o.elems {
		out[i] = int(v)
	}
	return out
}

// Bytes returns the payload footprint: 4 bytes per stored element
// (the paper's "evaluated (ordered sets)" counts the size of each set).
func (o *Ordered) Bytes() int { return 4 * len(o.elems) }

// CapBytes returns the allocated footprint including slack capacity.
func (o *Ordered) CapBytes() int { return 4 * cap(o.elems) }
