// Package bitset provides the small set representations used throughout the
// out-of-SSA translator: dense bit sets, half-size triangular bit matrices
// (for interference graphs), and sorted "ordered sets" (the liveness-set
// representation benchmarked by the paper). Every container can report its
// memory footprint in bytes so the benchmark harness can reproduce the
// paper's Figure 7 measurements.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a dense bit set over small non-negative integers.
// The zero value is an empty set of capacity 0.
type Set struct {
	words []uint64
	n     int // capacity in bits
}

// New returns a set able to hold values in [0, n).
func New(n int) *Set {
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// NewBatch returns count sets, each able to hold values in [0, n), carved
// out of one shared backing array — two allocations total instead of two
// per set. Every set's word slice has exact capacity, so a Grow beyond n
// moves that set onto private backing and can never touch its neighbours.
func NewBatch(n, count int) []Set {
	wpb := (n + wordBits - 1) / wordBits
	words := make([]uint64, wpb*count)
	sets := make([]Set, count)
	for i := range sets {
		sets[i] = Set{words: words[i*wpb : (i+1)*wpb : (i+1)*wpb], n: n}
	}
	return sets
}

// Len returns the capacity of the set in bits.
func (s *Set) Len() int { return s.n }

// Grow extends the capacity to at least n bits, preserving contents.
func (s *Set) Grow(n int) {
	if n <= s.n {
		return
	}
	need := (n + wordBits - 1) / wordBits
	if need > len(s.words) {
		w := make([]uint64, need)
		copy(w, s.words)
		s.words = w
	}
	s.n = n
}

// Add inserts i into the set. Negative values are rejected with a panic:
// silently accepting them would set an unrelated bit (i%64 of word 0), the
// classic ir.NoVar-flows-into-a-set bug.
func (s *Set) Add(i int) {
	if i < 0 {
		panic(fmt.Sprintf("bitset: Add(%d): negative element", i))
	}
	if i >= s.n {
		s.Grow(i + 1)
	}
	s.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Remove deletes i from the set.
func (s *Set) Remove(i int) {
	if i < 0 || i >= s.n {
		return
	}
	s.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// Has reports whether i is in the set.
func (s *Set) Has(i int) bool {
	if i < 0 || i/wordBits >= len(s.words) {
		return false
	}
	return s.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Reset clears the set and sets its capacity to exactly n bits, reusing
// the backing array when it is large enough. Unlike Grow+Clear it also
// shrinks, so a pooled set does not leak a previous, larger capacity into
// sets it is unioned into.
func (s *Set) Reset(n int) {
	need := (n + wordBits - 1) / wordBits
	if need > cap(s.words) {
		s.words = make([]uint64, need)
	} else {
		s.words = s.words[:need]
		for i := range s.words {
			s.words[i] = 0
		}
	}
	s.n = n
}

// Clear removes all elements, keeping capacity.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Count returns the number of elements in the set.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Empty reports whether the set has no elements.
func (s *Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Copy returns an independent copy of s.
func (s *Set) Copy() *Set {
	w := make([]uint64, len(s.words))
	copy(w, s.words)
	return &Set{words: w, n: s.n}
}

// CopyFrom overwrites s with the contents of t, growing s if needed.
func (s *Set) CopyFrom(t *Set) {
	s.Grow(t.n)
	copy(s.words, t.words)
	for i := len(t.words); i < len(s.words); i++ {
		s.words[i] = 0
	}
}

// UnionWith adds all elements of t to s and reports whether s changed.
func (s *Set) UnionWith(t *Set) bool {
	s.Grow(t.n)
	changed := false
	for i, w := range t.words {
		old := s.words[i]
		nw := old | w
		if nw != old {
			s.words[i] = nw
			changed = true
		}
	}
	return changed
}

// UnionWithAndNot adds every element of t that is not in u to s — the
// dataflow transfer s |= t \ u — one word at a time, and reports whether s
// changed. It is the live-in update in = in ∪ (out \ defs) without per-bit
// callbacks.
func (s *Set) UnionWithAndNot(t, u *Set) bool {
	s.Grow(t.n)
	changed := false
	for i, w := range t.words {
		if i < len(u.words) {
			w &^= u.words[i]
		}
		old := s.words[i]
		nw := old | w
		if nw != old {
			s.words[i] = nw
			changed = true
		}
	}
	return changed
}

// IntersectWith keeps only elements present in both s and t.
func (s *Set) IntersectWith(t *Set) {
	for i := range s.words {
		if i < len(t.words) {
			s.words[i] &= t.words[i]
		} else {
			s.words[i] = 0
		}
	}
}

// DifferenceWith removes all elements of t from s.
func (s *Set) DifferenceWith(t *Set) {
	n := len(s.words)
	if len(t.words) < n {
		n = len(t.words)
	}
	for i := 0; i < n; i++ {
		s.words[i] &^= t.words[i]
	}
}

// Intersects reports whether s and t share at least one element.
func (s *Set) Intersects(t *Set) bool {
	n := len(s.words)
	if len(t.words) < n {
		n = len(t.words)
	}
	for i := 0; i < n; i++ {
		if s.words[i]&t.words[i] != 0 {
			return true
		}
	}
	return false
}

// Equal reports whether s and t contain exactly the same elements.
func (s *Set) Equal(t *Set) bool {
	long, short := s.words, t.words
	if len(long) < len(short) {
		long, short = short, long
	}
	for i := range short {
		if long[i] != short[i] {
			return false
		}
	}
	for i := len(short); i < len(long); i++ {
		if long[i] != 0 {
			return false
		}
	}
	return true
}

// ForEach calls f for each element in increasing order.
func (s *Set) ForEach(f func(int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			f(wi*wordBits + b)
			w &^= 1 << uint(b)
		}
	}
}

// Elems returns the elements in increasing order.
func (s *Set) Elems() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(i int) { out = append(out, i) })
	return out
}

// Bytes returns the memory footprint of the payload in bytes.
func (s *Set) Bytes() int { return len(s.words) * 8 }

// String renders the set as "{1, 5, 9}".
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
	})
	b.WriteByte('}')
	return b.String()
}
