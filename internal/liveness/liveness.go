// Package liveness computes classic per-block live-in/live-out sets with
// backward dataflow analysis, using the SSA conventions the paper relies
// on: a φ-function's arguments are live-out of the corresponding
// predecessors (they are read "on the edge"), and a φ-function's result is
// not live-in of its block (it is defined at block entry).
//
// The engine is a reverse-postorder worklist fixpoint over word-parallel
// set transfers: per-block upward-exposed/def/φ-edge sets are built once,
// then each dirty block recomputes out = φ-edge uses ∪ (∪ succ in) and
// in = upExposed ∪ (out \ defs) with whole-word bitset operations, pushing
// predecessors only when its live-in actually grew. The worklist is seeded
// in reverse postorder so loop bodies stabilize before their headers are
// revisited. All per-run working state lives in a Scratch that is pooled
// across runs, so batch translation does not re-allocate it per function.
//
// The sets can be stored in two backends: dense bit sets (fast, used by
// default) or sorted "ordered sets" — the representation of the paper's
// measured configurations (Figure 7 "Measured"; Sreedhar III and the
// default Us I/III all keep liveness as ordered sets). The choice affects
// speed and measured footprint, never results.
package liveness

import (
	"fmt"
	"sync"

	"repro/internal/bitset"
	"repro/internal/ir"
)

// VarSet is one liveness set; both backends implement it.
type VarSet interface {
	Has(v int) bool
	Add(v int) bool // reports whether the set changed
	Remove(v int) bool
	ForEach(f func(int))
	Count() int
	Bytes() int // measured footprint of the payload
}

type bitSet struct{ *bitset.Set }

func (s bitSet) Add(v int) bool {
	if s.Set.Has(v) {
		return false
	}
	s.Set.Add(v)
	return true
}
func (s bitSet) Remove(v int) bool {
	if !s.Set.Has(v) {
		return false
	}
	s.Set.Remove(v)
	return true
}

type ordSet struct{ *bitset.Ordered }

func (s ordSet) Add(v int) bool    { return s.Ordered.Add(v) }
func (s ordSet) Remove(v int) bool { return s.Ordered.Remove(v) }
func (s ordSet) Count() int        { return s.Ordered.Len() }
func (s ordSet) Bytes() int        { return s.Ordered.CapBytes() }

// Backend selects the set representation.
type Backend int

const (
	// Bitsets stores each set as a dense bit vector.
	Bitsets Backend = iota
	// OrderedSets stores each set as a sorted slice of variable IDs, the
	// paper's measured representation.
	OrderedSets
)

// Info holds the result of the dataflow analysis.
type Info struct {
	f       *ir.Func
	liveIn  []VarSet
	liveOut []VarSet
	// Iterations is the maximum number of times any single block was
	// processed (for the reference engine: full round-robin passes). A
	// well-seeded worklist keeps this near the loop-nesting depth.
	Iterations int
	// Pops is the total number of worklist pops the fixpoint took; the
	// reference engine reports passes × blocks. Diagnostics — the property
	// tests assert it stays bounded.
	Pops int

	// rep, when non-nil, is the retained state of an incremental
	// computation (ComputeIncremental): private transfer sets, the seed
	// order, and direct access to the backend storage, everything Repair
	// needs to patch the solution after a local edit.
	rep *repairState
}

// Repairable reports whether this Info was computed incrementally and can
// be patched by Repair.
func (l *Info) Repairable() bool { return l.rep != nil }

// Scratch holds the reusable working state of one liveness run: the
// per-block upward-exposed/def/φ-edge sets, the worklist, the seed order,
// and the visit counters. A Scratch may be reused across functions of any
// size (buffers grow and are cleared per run) but not concurrently.
type Scratch struct {
	sets    []*bitset.Set // 3 per block: upExposed, defs, φ-edge uses
	order   []int32       // reverse-postorder seed (worklist pop order)
	work    []int32       // worklist stack
	onList  []bool
	visits  []int32
	dfsNext []int32 // per-block DFS successor cursor
}

// NewScratch returns an empty scratch for explicit reuse across runs.
func NewScratch() *Scratch { return &Scratch{} }

var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

// prepare sizes the scratch for n blocks of nv variables and returns the
// per-block upExposed, defs, and φ-edge-use vectors, all cleared.
func (sc *Scratch) prepare(n, nv int) (ue, df, po []*bitset.Set) {
	for len(sc.sets) < 3*n {
		sc.sets = append(sc.sets, bitset.New(nv))
	}
	for _, s := range sc.sets[:3*n] {
		s.Reset(nv) // exact capacity: it propagates into the result sets
	}
	sc.prepareWork(n)
	return sc.sets[:n], sc.sets[n : 2*n], sc.sets[2*n : 3*n]
}

// prepareWork sizes and clears only the order/worklist/visit buffers — the
// part of prepare the incremental path reuses when the transfer sets live
// in retained, caller-owned storage instead of the scratch.
func (sc *Scratch) prepareWork(n int) {
	if cap(sc.order) < n {
		sc.order = make([]int32, 0, n)
		sc.work = make([]int32, 0, n)
		sc.onList = make([]bool, n)
		sc.visits = make([]int32, n)
		sc.dfsNext = make([]int32, n)
	}
	sc.order = sc.order[:0]
	sc.work = sc.work[:0]
	sc.onList = sc.onList[:n]
	sc.visits = sc.visits[:n]
	sc.dfsNext = sc.dfsNext[:n]
	for i := 0; i < n; i++ {
		sc.onList[i] = false
		sc.visits[i] = 0
		sc.dfsNext[i] = 0
	}
}

// Compute runs the analysis on f with bit-set storage.
func Compute(f *ir.Func) *Info { return ComputeWith(f, Bitsets) }

// ComputeWith runs the worklist analysis with the chosen backend, drawing
// its scratch from a package pool. The fixpoint operates directly on the
// stored representation, so the ordered backend pays its ordered-merge cost
// during construction too — as in the paper, where liveness set
// construction is part of the measured translation time.
func ComputeWith(f *ir.Func, be Backend) *Info {
	sc := scratchPool.Get().(*Scratch)
	defer scratchPool.Put(sc)
	return ComputeInto(f, be, sc)
}

// ComputeInto is ComputeWith with an explicit, caller-owned Scratch — the
// analysis cache hands each function's recomputations the same scratch.
func ComputeInto(f *ir.Func, be Backend, sc *Scratch) *Info {
	n := len(f.Blocks)
	nv := len(f.Vars)
	info := &Info{
		f:       f,
		liveIn:  make([]VarSet, n),
		liveOut: make([]VarSet, n),
	}
	if n == 0 {
		return info
	}
	ue, df, po := sc.prepare(n, nv)
	buildTransfer(f, ue, df, po)
	seedOrder(f, sc)

	if be == OrderedSets {
		computeOrdered(f, info, sc, ue, df, po)
	} else {
		computeBitsets(f, info, sc, ue, df, po)
	}
	return info
}

// buildTransfer fills, for each block position i (block IDs are positional,
// see ir.Verify), the upward-exposed uses ue[i], the definitions df[i]
// (φ results included: they are written at block entry, so they never enter
// live-in), and the φ-edge uses po[i]: the variables read "on the edge"
// out of block i by φ-functions of its successors.
func buildTransfer(f *ir.Func, ue, df, po []*bitset.Set) {
	for i, b := range f.Blocks {
		if b.ID != i {
			panic(fmt.Sprintf("liveness: block %q has ID %d at index %d; block IDs must be positional (ir.Verify)", b.Name, b.ID, i))
		}
		uei, dfi := ue[i], df[i]
		for _, in := range b.Phis {
			dfi.Add(int(in.Defs[0])) // φ uses are attributed to predecessors
			for pi, u := range in.Uses {
				po[b.Preds[pi].ID].Add(int(u))
			}
		}
		for _, in := range b.Instrs {
			// For parallel copies this is still correct: all uses are read
			// before any def is written, and the Uses/Defs order here keeps
			// that order.
			for _, u := range in.Uses {
				if !dfi.Has(int(u)) {
					uei.Add(int(u))
				}
			}
			for _, d := range in.Defs {
				dfi.Add(int(d))
			}
		}
	}
}

// seedOrder fills sc.order with the blocks in reverse postorder of the CFG
// (unreachable blocks appended first, so the stack pops them last). Pushing
// the order onto a LIFO worklist makes the first pops process the function
// backward — exits before entries — which is the fast direction for a
// backward dataflow problem.
func seedOrder(f *ir.Func, sc *Scratch) {
	n := len(f.Blocks)
	post := sc.work[:0] // borrow the (empty) worklist as the postorder buffer
	stack := append(sc.order[:0], 0)
	visited := sc.onList
	visited[0] = true
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		succs := f.Blocks[b].Succs
		if int(sc.dfsNext[b]) < len(succs) {
			s := succs[sc.dfsNext[b]]
			sc.dfsNext[b]++
			if !visited[s.ID] {
				visited[s.ID] = true
				stack = append(stack, int32(s.ID))
			}
			continue
		}
		post = append(post, b)
		stack = stack[:len(stack)-1]
	}
	order := stack[:0] // sc.order, now empty again
	for i := n - 1; i >= 0; i-- {
		if !visited[i] {
			order = append(order, int32(i)) // unreachable: popped last
		}
	}
	for i := len(post) - 1; i >= 0; i-- {
		order = append(order, post[i])
	}
	sc.order = order
	sc.work = post[:0]
	for i := 0; i < n; i++ {
		visited[i] = false
		sc.dfsNext[i] = 0
	}
}

// computeBitsets runs the worklist fixpoint with dense bit-set storage:
// every transfer is a whole-word union, no per-bit callbacks. The result
// sets are carved out of one batch backing (two allocations for all 2n
// sets) and the interface wrappers live in one slice, so constructing the
// result costs a constant number of allocations.
func computeBitsets(f *ir.Func, info *Info, sc *Scratch, ue, df, po []*bitset.Set) []bitset.Set {
	n := len(f.Blocks)
	nv := len(f.Vars)
	sets := bitset.NewBatch(nv, 2*n) // [0,n) live-in, [n,2n) live-out
	wrap := make([]bitSet, 2*n)
	for i := 0; i < n; i++ {
		in, out := &sets[i], &sets[n+i]
		in.UnionWith(ue[i])
		out.UnionWith(po[i])
		wrap[i] = bitSet{in}
		wrap[n+i] = bitSet{out}
		info.liveIn[i] = &wrap[i]
		info.liveOut[i] = &wrap[n+i]
	}
	sc.runWorklist(f, info, func(b int) bool {
		out := &sets[n+b]
		for _, s := range f.Blocks[b].Succs {
			out.UnionWith(&sets[s.ID])
		}
		return sets[b].UnionWithAndNot(out, df[b])
	})
	return sets
}

// computeOrdered runs the same worklist with sorted-slice storage. The
// static ue/φ-edge contributions are snapshotted once as sorted slices so
// the per-visit transfers are linear merges. Like the bit-set backend, the
// Ordered headers and interface wrappers come from two batch slices.
func computeOrdered(f *ir.Func, info *Info, sc *Scratch, ue, df, po []*bitset.Set) []bitset.Ordered {
	n := len(f.Blocks)
	sets := make([]bitset.Ordered, 2*n) // [0,n) live-in, [n,2n) live-out
	wrap := make([]ordSet, 2*n)
	var buf []int32 // seeding buffer, reused across blocks
	for i := 0; i < n; i++ {
		in, out := &sets[i], &sets[n+i]
		buf = appendElems(buf[:0], ue[i])
		in.UnionSorted(buf)
		buf = appendElems(buf[:0], po[i])
		out.UnionSorted(buf)
		wrap[i] = ordSet{in}
		wrap[n+i] = ordSet{out}
		info.liveIn[i] = &wrap[i]
		info.liveOut[i] = &wrap[n+i]
	}
	sc.runWorklist(f, info, func(b int) bool {
		out := &sets[n+b]
		for _, s := range f.Blocks[b].Succs {
			out.UnionWith(&sets[s.ID])
		}
		return sets[b].UnionWithAndNot(out, df[b])
	})
	return sets
}

// appendElems appends the elements of s to dst in increasing order (ForEach
// enumerates sorted).
func appendElems(dst []int32, s *bitset.Set) []int32 {
	s.ForEach(func(v int) { dst = append(dst, int32(v)) })
	return dst
}

// runWorklist drives the dirty-block fixpoint: visit recomputes block b's
// out/in from current successor live-ins and reports whether live-in grew;
// predecessors of grown blocks are re-queued. Seeding follows sc.order
// (reverse postorder) pushed onto a LIFO stack, so pops start at the exits.
func (sc *Scratch) runWorklist(f *ir.Func, info *Info, visit func(b int) bool) {
	work := sc.work[:0]
	for _, b := range sc.order {
		work = append(work, b)
		sc.onList[b] = true
	}
	for len(work) > 0 {
		b := int(work[len(work)-1])
		work = work[:len(work)-1]
		sc.onList[b] = false
		info.Pops++
		sc.visits[b]++
		if v := int(sc.visits[b]); v > info.Iterations {
			info.Iterations = v
		}
		if visit(b) {
			for _, p := range f.Blocks[b].Preds {
				if !sc.onList[p.ID] {
					sc.onList[p.ID] = true
					work = append(work, int32(p.ID))
				}
			}
		}
	}
	sc.work = work[:0]
}

// ComputeReference runs the pre-worklist engine: a naive round-robin
// fixpoint in reverse block order with element-wise transfers. It is kept
// as the differential-testing oracle for the worklist engine (and as the
// baseline of the BENCH_liveness trajectory); results are identical, only
// speed differs.
func ComputeReference(f *ir.Func, be Backend) *Info {
	n := len(f.Blocks)
	nv := len(f.Vars)
	mk := func() VarSet {
		if be == OrderedSets {
			return ordSet{bitset.NewOrdered(0)}
		}
		return bitSet{bitset.New(nv)}
	}
	info := &Info{
		f:       f,
		liveIn:  make([]VarSet, n),
		liveOut: make([]VarSet, n),
	}
	upExposed := make([]*bitset.Set, n)
	defs := make([]*bitset.Set, n)
	phiOut := make([]*bitset.Set, n)
	for i := 0; i < n; i++ {
		info.liveIn[i] = mk()
		info.liveOut[i] = mk()
		upExposed[i] = bitset.New(nv)
		defs[i] = bitset.New(nv)
		phiOut[i] = bitset.New(nv)
	}
	buildTransfer(f, upExposed, defs, phiOut)

	// Backward iteration to fixpoint; sets only grow, so "no Add changed
	// anything" is convergence.
	for changed := true; changed; {
		changed = false
		info.Iterations++
		info.Pops += n
		for i := n - 1; i >= 0; i-- {
			b := f.Blocks[i]
			out := info.liveOut[i]
			phiOut[i].ForEach(func(v int) {
				if out.Add(v) {
					changed = true
				}
			})
			for _, s := range b.Succs {
				info.liveIn[s.ID].ForEach(func(v int) {
					if out.Add(v) {
						changed = true
					}
				})
			}
			in := info.liveIn[i]
			out.ForEach(func(v int) {
				if !defs[i].Has(v) {
					if in.Add(v) {
						changed = true
					}
				}
			})
			upExposed[i].ForEach(func(v int) {
				if in.Add(v) {
					changed = true
				}
			})
		}
	}
	return info
}

// Func returns the analyzed function.
func (l *Info) Func() *ir.Func { return l.f }

// In returns the set of variables live at entry of block b
// (φ results of b excluded, by convention).
func (l *Info) In(b int) VarSet { return l.liveIn[b] }

// Out returns the set of variables live at exit of block b, including
// variables flowing into φ-functions of successors along b's edges.
func (l *Info) Out(b int) VarSet { return l.liveOut[b] }

// LiveInBlock reports whether v is live at entry of block b. It adapts the
// sets to the query interface shared with package livecheck.
func (l *Info) LiveInBlock(v ir.VarID, b int) bool { return l.liveIn[b].Has(int(v)) }

// LiveOutBlock reports whether v is live at exit of block b.
func (l *Info) LiveOutBlock(v ir.VarID, b int) bool { return l.liveOut[b].Has(int(v)) }

// Bytes returns the measured footprint of the stored sets.
func (l *Info) Bytes() int {
	total := 0
	for i := range l.liveIn {
		total += l.liveIn[i].Bytes() + l.liveOut[i].Bytes()
	}
	return total
}

// OrderedBytes returns the footprint of the live-in and live-out sets if
// stored as ordered sets: 4 bytes per element (paper, Figure 7,
// "Evaluated (Ordered sets)").
func (l *Info) OrderedBytes() int {
	total := 0
	for i := range l.liveIn {
		total += 4 * (l.liveIn[i].Count() + l.liveOut[i].Count())
	}
	return total
}

// BitsetBytes returns the paper's perfect-memory bit-set formula:
// ceil(nvars/8) * nblocks * 2.
func BitsetBytes(nvars, nblocks int) int { return (nvars + 7) / 8 * nblocks * 2 }
