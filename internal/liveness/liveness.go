// Package liveness computes classic per-block live-in/live-out sets with
// backward dataflow analysis, using the SSA conventions the paper relies
// on: a φ-function's arguments are live-out of the corresponding
// predecessors (they are read "on the edge"), and a φ-function's result is
// not live-in of its block (it is defined at block entry).
//
// The sets can be stored in two backends: dense bit sets (fast, used by
// default) or sorted "ordered sets" — the representation of the paper's
// measured configurations (Figure 7 "Measured"; Sreedhar III and the
// default Us I/III all keep liveness as ordered sets). The choice affects
// speed and measured footprint, never results.
package liveness

import (
	"repro/internal/bitset"
	"repro/internal/ir"
)

// VarSet is one liveness set; both backends implement it.
type VarSet interface {
	Has(v int) bool
	Add(v int) bool // reports whether the set changed
	Remove(v int) bool
	ForEach(f func(int))
	Count() int
	Bytes() int // measured footprint of the payload
}

type bitSet struct{ *bitset.Set }

func (s bitSet) Add(v int) bool {
	if s.Set.Has(v) {
		return false
	}
	s.Set.Add(v)
	return true
}
func (s bitSet) Remove(v int) bool {
	if !s.Set.Has(v) {
		return false
	}
	s.Set.Remove(v)
	return true
}

type ordSet struct{ *bitset.Ordered }

func (s ordSet) Add(v int) bool    { return s.Ordered.Add(v) }
func (s ordSet) Remove(v int) bool { return s.Ordered.Remove(v) }
func (s ordSet) Count() int        { return s.Ordered.Len() }
func (s ordSet) Bytes() int        { return s.Ordered.CapBytes() }

// Backend selects the set representation.
type Backend int

const (
	// Bitsets stores each set as a dense bit vector.
	Bitsets Backend = iota
	// OrderedSets stores each set as a sorted slice of variable IDs, the
	// paper's measured representation.
	OrderedSets
)

// Info holds the result of the dataflow analysis.
type Info struct {
	f       *ir.Func
	liveIn  []VarSet
	liveOut []VarSet
	// Iterations is the number of passes the fixpoint took (diagnostics).
	Iterations int
}

// Compute runs the analysis on f with bit-set storage.
func Compute(f *ir.Func) *Info { return ComputeWith(f, Bitsets) }

// ComputeWith runs the analysis with the chosen backend. The fixpoint
// operates directly on the stored representation, so the ordered backend
// pays its insertion cost during construction too — as in the paper, where
// liveness set construction is part of the measured translation time.
func ComputeWith(f *ir.Func, be Backend) *Info {
	n := len(f.Blocks)
	nv := len(f.Vars)
	mk := func() VarSet {
		if be == OrderedSets {
			return ordSet{bitset.NewOrdered(0)}
		}
		return bitSet{bitset.New(nv)}
	}
	info := &Info{
		f:       f,
		liveIn:  make([]VarSet, n),
		liveOut: make([]VarSet, n),
	}
	upExposed := make([]*bitset.Set, n)
	defs := make([]*bitset.Set, n)
	for i := 0; i < n; i++ {
		info.liveIn[i] = mk()
		info.liveOut[i] = mk()
		upExposed[i] = bitset.New(nv)
		defs[i] = bitset.New(nv)
	}

	for _, b := range f.Blocks {
		ue, df := upExposed[b.ID], defs[b.ID]
		for _, in := range b.Phis {
			df.Add(int(in.Defs[0])) // φ uses are attributed to predecessors
		}
		for _, in := range b.Instrs {
			// For parallel copies this is still correct: all uses are read
			// before any def is written, and the Defs/Uses loops below keep
			// that order.
			for _, u := range in.Uses {
				if !df.Has(int(u)) {
					ue.Add(int(u))
				}
			}
			for _, d := range in.Defs {
				df.Add(int(d))
			}
		}
	}

	// Backward iteration to fixpoint; sets only grow, so "no Add changed
	// anything" is convergence.
	for changed := true; changed; {
		changed = false
		info.Iterations++
		for i := n - 1; i >= 0; i-- {
			b := f.Blocks[i]
			out := info.liveOut[i]
			for _, s := range b.Succs {
				info.liveIn[s.ID].ForEach(func(v int) {
					if out.Add(v) {
						changed = true
					}
				})
				pi := s.PredIndex(b)
				for _, phi := range s.Phis {
					if out.Add(int(phi.Uses[pi])) {
						changed = true
					}
				}
			}
			in := info.liveIn[i]
			out.ForEach(func(v int) {
				if !defs[i].Has(v) {
					if in.Add(v) {
						changed = true
					}
				}
			})
			upExposed[i].ForEach(func(v int) {
				if in.Add(v) {
					changed = true
				}
			})
		}
	}
	return info
}

// Func returns the analyzed function.
func (l *Info) Func() *ir.Func { return l.f }

// In returns the set of variables live at entry of block b
// (φ results of b excluded, by convention).
func (l *Info) In(b int) VarSet { return l.liveIn[b] }

// Out returns the set of variables live at exit of block b, including
// variables flowing into φ-functions of successors along b's edges.
func (l *Info) Out(b int) VarSet { return l.liveOut[b] }

// LiveInBlock reports whether v is live at entry of block b. It adapts the
// sets to the query interface shared with package livecheck.
func (l *Info) LiveInBlock(v ir.VarID, b int) bool { return l.liveIn[b].Has(int(v)) }

// LiveOutBlock reports whether v is live at exit of block b.
func (l *Info) LiveOutBlock(v ir.VarID, b int) bool { return l.liveOut[b].Has(int(v)) }

// Bytes returns the measured footprint of the stored sets.
func (l *Info) Bytes() int {
	total := 0
	for i := range l.liveIn {
		total += l.liveIn[i].Bytes() + l.liveOut[i].Bytes()
	}
	return total
}

// OrderedBytes returns the footprint of the live-in and live-out sets if
// stored as ordered sets: 4 bytes per element (paper, Figure 7,
// "Evaluated (Ordered sets)").
func (l *Info) OrderedBytes() int {
	total := 0
	for i := range l.liveIn {
		total += 4 * (l.liveIn[i].Count() + l.liveOut[i].Count())
	}
	return total
}

// BitsetBytes returns the paper's perfect-memory bit-set formula:
// ceil(nvars/8) * nblocks * 2.
func BitsetBytes(nvars, nblocks int) int { return (nvars + 7) / 8 * nblocks * 2 }
