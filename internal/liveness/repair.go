// Incremental liveness repair: patch a previously computed solution after
// instruction-level edits confined to a known set of blocks, in time
// proportional to the edit's backward influence cone instead of the
// function.
//
// A stale solution cannot simply be re-iterated: the worklist fixpoint only
// grows sets, and a deleted use can leave liveness that cyclically supports
// itself around a loop — a fixpoint, but not the least one. Repair instead
// (1) rebuilds the transfer functions of every block whose transfer could
// have changed — the dirty blocks (ue/df) and their predecessors (φ-edge
// contributions po), (2) closes that set backward over predecessor edges
// (the only direction liveness propagates), (3) resets every block in the
// cone to its base contribution in = ue, out = po, and (4) re-runs the
// monotone grow worklist inside the cone, pulling intact boundary values
// from the live-ins of non-cone successors. Blocks outside the cone kept
// their least-fixpoint values, so the result equals a from-scratch
// computation.
package liveness

import (
	"repro/internal/bitset"
	"repro/internal/ir"
)

// repairState is what an incremental computation retains beyond the result
// sets: privately owned transfer vectors (the pooled scratch's would be
// clobbered by the next computation), the reverse-postorder seed, and the
// raw backend storage of the result sets.
type repairState struct {
	be Backend
	nv int // variable-universe size the transfers were built at

	ue, df, po []*bitset.Set // retained transfer sets, one batch backing
	order      []int32       // reverse-postorder seed (valid while CFG unchanged)

	bsets []bitset.Set     // Bitsets backend: [0,n) live-in, [n,2n) live-out
	osets []bitset.Ordered // OrderedSets backend: same layout

	affected []bool  // repair scratch: cone membership
	cone     []int32 // repair scratch: cone block list
	buf      []int32 // repair scratch: ordered-set seeding
}

// ComputeIncremental is ComputeWith, retaining the repair state on the
// returned Info so later local edits can be patched with Repair instead of
// recomputed. It costs one extra transfer-set batch per call; use it for
// long-lived analyses (editing sessions), not one-shot translations.
func ComputeIncremental(f *ir.Func, be Backend) *Info {
	sc := scratchPool.Get().(*Scratch)
	defer scratchPool.Put(sc)
	return ComputeIncrementalInto(f, be, sc)
}

// ComputeIncrementalInto is ComputeIncremental with a caller-owned Scratch.
// The scratch only hosts the worklist working state; the transfer sets are
// freshly allocated and owned by the returned Info.
func ComputeIncrementalInto(f *ir.Func, be Backend, sc *Scratch) *Info {
	n := len(f.Blocks)
	nv := len(f.Vars)
	info := &Info{
		f:       f,
		liveIn:  make([]VarSet, n),
		liveOut: make([]VarSet, n),
	}
	if n == 0 {
		return info
	}
	rep := &repairState{be: be, nv: nv}
	batch := bitset.NewBatch(nv, 3*n)
	rep.ue = make([]*bitset.Set, 3*n)
	for i := range batch {
		rep.ue[i] = &batch[i]
	}
	rep.ue, rep.df, rep.po = rep.ue[:n], rep.ue[n:2*n], rep.ue[2*n:3*n]
	buildTransfer(f, rep.ue, rep.df, rep.po)
	sc.prepareWork(n)
	seedOrder(f, sc)
	rep.order = append(rep.order, sc.order...)

	if be == OrderedSets {
		rep.osets = computeOrdered(f, info, sc, rep.ue, rep.df, rep.po)
	} else {
		rep.bsets = computeBitsets(f, info, sc, rep.ue, rep.df, rep.po)
	}
	info.rep = rep
	return info
}

// Repair patches info — which must come from ComputeIncremental on the same
// function — after instruction-level edits confined to the dirty blocks.
// The block/edge structure must be unchanged since the computation; the
// variable universe may have grown (sets resize on demand, and any block
// where a new variable is live lies inside the repair cone by
// construction). The patched solution is exactly the least fixpoint a
// from-scratch computation would produce.
func Repair(f *ir.Func, info *Info, dirty []int32) {
	rep := info.rep
	if rep == nil {
		panic("liveness: Repair on an Info without retained state (use ComputeIncremental)")
	}
	n := len(f.Blocks)
	if n != len(info.liveIn) {
		panic("liveness: Repair after a CFG change")
	}
	if len(dirty) == 0 {
		return
	}
	nv := len(f.Vars)
	if len(rep.affected) < n {
		rep.affected = make([]bool, n)
	}

	// 1. Re-derive the transfers that could have changed: ue/df of dirty
	// blocks, po of their predecessors. Re-deriving po of a dirty block
	// itself is harmless (idempotent), so the changed set C is simply
	// dirty ∪ preds(dirty) with all three vectors rebuilt per member.
	cone := rep.cone[:0]
	for _, b := range dirty {
		if !rep.affected[b] {
			rep.affected[b] = true
			cone = append(cone, b)
		}
		for _, p := range f.Blocks[b].Preds {
			if !rep.affected[p.ID] {
				rep.affected[p.ID] = true
				cone = append(cone, int32(p.ID))
			}
		}
	}
	for _, x := range cone {
		rep.rebuildTransfer(f, int(x), nv)
	}

	// 2. Backward closure over predecessor edges: the influence cone.
	for i := 0; i < len(cone); i++ {
		for _, p := range f.Blocks[cone[i]].Preds {
			if !rep.affected[p.ID] {
				rep.affected[p.ID] = true
				cone = append(cone, int32(p.ID))
			}
		}
	}

	// 3. Reset every cone block to its base contribution, then 4. grow to
	// fixpoint inside the cone. Non-cone successors contribute their intact
	// least-fixpoint live-ins at the boundary.
	var visit func(b int) bool
	if rep.be == OrderedSets {
		for _, x := range cone {
			rep.buf = appendElems(rep.buf[:0], rep.ue[x])
			in := &rep.osets[x]
			in.Clear()
			in.UnionSorted(rep.buf)
			rep.buf = appendElems(rep.buf[:0], rep.po[x])
			out := &rep.osets[n+int(x)]
			out.Clear()
			out.UnionSorted(rep.buf)
		}
		visit = func(b int) bool {
			out := &rep.osets[n+b]
			for _, s := range f.Blocks[b].Succs {
				out.UnionWith(&rep.osets[s.ID])
			}
			return rep.osets[b].UnionWithAndNot(out, rep.df[b])
		}
	} else {
		for _, x := range cone {
			in := &rep.bsets[x]
			in.Reset(nv)
			in.UnionWith(rep.ue[x])
			out := &rep.bsets[n+int(x)]
			out.Reset(nv)
			out.UnionWith(rep.po[x])
		}
		visit = func(b int) bool {
			out := &rep.bsets[n+b]
			for _, s := range f.Blocks[b].Succs {
				out.UnionWith(&rep.bsets[s.ID])
			}
			return rep.bsets[b].UnionWithAndNot(out, rep.df[b])
		}
	}
	rep.runConeWorklist(f, info, visit)

	for _, x := range cone {
		rep.affected[x] = false
	}
	rep.cone = cone[:0]
	rep.nv = nv
}

// rebuildTransfer re-derives block x's ue/df (from its φs and body) and po
// (from its successors' φs) from the current IR.
func (rep *repairState) rebuildTransfer(f *ir.Func, x, nv int) {
	b := f.Blocks[x]
	ue, df, po := rep.ue[x], rep.df[x], rep.po[x]
	ue.Reset(nv)
	df.Reset(nv)
	po.Reset(nv)
	for _, in := range b.Phis {
		df.Add(int(in.Defs[0]))
	}
	for _, in := range b.Instrs {
		for _, u := range in.Uses {
			if !df.Has(int(u)) {
				ue.Add(int(u))
			}
		}
		for _, d := range in.Defs {
			df.Add(int(d))
		}
	}
	for _, s := range b.Succs {
		for _, in := range s.Phis {
			for pi, p := range s.Preds {
				if p == b {
					po.Add(int(in.Uses[pi]))
				}
			}
		}
	}
}

// runConeWorklist is runWorklist restricted to the repair cone: the seed is
// the retained reverse postorder filtered by cone membership, and growth
// only ever pushes predecessors of cone blocks — which are in the cone by
// construction (it is closed under predecessors). The shared onList marks
// double as the queue filter.
func (rep *repairState) runConeWorklist(f *ir.Func, info *Info, visit func(b int) bool) {
	work := rep.buf[:0] // borrow; ordered seeding is done by now
	onList := rep.affected
	// affected[b] is true exactly for cone blocks; reuse it as onList so
	// the initial queue is the cone in reverse postorder.
	for _, b := range rep.order {
		if onList[b] {
			work = append(work, b)
		}
	}
	for len(work) > 0 {
		b := int(work[len(work)-1])
		work = work[:len(work)-1]
		if !onList[b] {
			continue
		}
		onList[b] = false
		info.Pops++
		if visit(b) {
			for _, p := range f.Blocks[b].Preds {
				if !onList[p.ID] {
					onList[p.ID] = true
					work = append(work, int32(p.ID))
				}
			}
		}
	}
	rep.buf = work[:0]
}
