package liveness_test

import (
	"testing"
	"testing/quick"

	"repro/internal/cfggen"
	"repro/internal/ir"
	"repro/internal/liveness"
)

const loopSrc = `
func l {
entry:
  a = param 0
  b = const 1
  jump head
head:
  x = phi entry:a latch:y
  c = cmplt x b
  br c body exit
body:
  y = add x b
  jump latch
latch:
  print y
  jump head
exit:
  print a
  ret x
}
`

func names(f *ir.Func, s liveness.VarSet) map[string]bool {
	out := map[string]bool{}
	s.ForEach(func(v int) { out[f.VarName(ir.VarID(v))] = true })
	return out
}

func TestKnownLoopLiveness(t *testing.T) {
	f := ir.MustParse(loopSrc)
	l := liveness.Compute(f)
	id := func(n string) int {
		for _, b := range f.Blocks {
			if b.Name == n {
				return b.ID
			}
		}
		panic(n)
	}

	// φ def x is not live-in of head; φ args are live-out of their preds.
	in := names(f, l.In(id("head")))
	if in["x"] {
		t.Fatal("φ result must not be live-in of its block")
	}
	if !in["a"] {
		t.Fatal("a is live-in of head (used in exit and as φ arg)")
	}
	outEntry := names(f, l.Out(id("entry")))
	if !outEntry["a"] {
		t.Fatal("a is live-out of entry (φ use on the edge)")
	}
	outLatch := names(f, l.Out(id("latch")))
	if !outLatch["y"] {
		t.Fatal("y is live-out of latch (φ use on the back edge)")
	}
	if outLatch["x"] {
		t.Fatal("x is dead after the branch consumed it and exit is not reachable from latch")
	}
	// x live-out of head along the exit edge (ret x).
	if !names(f, l.Out(id("head")))["x"] {
		t.Fatal("x is live-out of head (ret in exit)")
	}
}

func TestBackendsAgree(t *testing.T) {
	funcs := cfggen.Generate(cfggen.DefaultProfile("livebe", 21))
	for _, f := range funcs {
		a := liveness.ComputeWith(f, liveness.Bitsets)
		b := liveness.ComputeWith(f, liveness.OrderedSets)
		for _, blk := range f.Blocks {
			for v := range f.Vars {
				vid := ir.VarID(v)
				if a.LiveInBlock(vid, blk.ID) != b.LiveInBlock(vid, blk.ID) {
					t.Fatalf("%s/%s: live-in disagreement on %s", f.Name, blk.Name, f.VarName(vid))
				}
				if a.LiveOutBlock(vid, blk.ID) != b.LiveOutBlock(vid, blk.ID) {
					t.Fatalf("%s/%s: live-out disagreement on %s", f.Name, blk.Name, f.VarName(vid))
				}
			}
		}
		if a.OrderedBytes() != b.OrderedBytes() {
			t.Fatalf("%s: evaluated ordered footprint must not depend on backend", f.Name)
		}
	}
}

// sameSets asserts two Infos agree on every (block, var) membership.
func sameSets(t *testing.T, f *ir.Func, got, want *liveness.Info, label string) {
	t.Helper()
	for _, b := range f.Blocks {
		for v := range f.Vars {
			vid := ir.VarID(v)
			if got.LiveInBlock(vid, b.ID) != want.LiveInBlock(vid, b.ID) {
				t.Fatalf("%s %s/%s: live-in disagreement on %s", label, f.Name, b.Name, f.VarName(vid))
			}
			if got.LiveOutBlock(vid, b.ID) != want.LiveOutBlock(vid, b.ID) {
				t.Fatalf("%s %s/%s: live-out disagreement on %s", label, f.Name, b.Name, f.VarName(vid))
			}
		}
	}
}

// TestWorklistMatchesReference is the property test of the worklist engine:
// across randomized medium CFGs and the large-CFG corpus shapes, both
// backends must produce live sets identical to the naive round-robin
// reference fixpoint, with a bounded number of worklist pops.
func TestWorklistMatchesReference(t *testing.T) {
	var funcs []*ir.Func
	for _, seed := range []int64{3, 17, 99} {
		funcs = append(funcs, cfggen.Generate(cfggen.DefaultProfile("wl", seed))...)
	}
	funcs = append(funcs, cfggen.GenerateLarge(cfggen.LargeLivenessProfile("wlbig", 41, 0.05))...)
	for _, f := range funcs {
		for _, be := range []liveness.Backend{liveness.Bitsets, liveness.OrderedSets} {
			got := liveness.ComputeWith(f, be)
			want := liveness.ComputeReference(f, be)
			sameSets(t, f, got, want, "worklist-vs-reference")
			// Each block is seeded once; a block is revisited only when a
			// successor's live-in grew, and the sets-only-grow lattice has
			// height ≤ nvars, so pops are bounded by blocks × (nvars + 1).
			// In practice RPO seeding keeps revisits near the loop nesting
			// depth — assert a much tighter bound to catch ordering
			// regressions, not just nontermination.
			n := len(f.Blocks)
			if got.Pops < n {
				t.Fatalf("%s: %d pops for %d blocks: every block must be visited", f.Name, got.Pops, n)
			}
			if got.Pops > 12*n {
				t.Fatalf("%s: %d pops for %d blocks: worklist convergence degraded", f.Name, got.Pops, n)
			}
			if got.Iterations > want.Iterations {
				t.Fatalf("%s: worklist max visits %d exceeds reference passes %d",
					f.Name, got.Iterations, want.Iterations)
			}
		}
	}
}

// TestScratchReuseAcrossSizes reuses one Scratch over functions of varying
// block/variable counts, in both growing and shrinking order — stale bits
// or stale capacities from a previous run must never leak into results or
// measured footprints.
func TestScratchReuseAcrossSizes(t *testing.T) {
	big := cfggen.GenerateLarge(cfggen.LargeLivenessProfile("sc", 5, 0.05))
	small := cfggen.Generate(cfggen.DefaultProfile("sc2", 11))
	order := append(append([]*ir.Func{}, big...), small...)
	order = append(order, big[0]) // shrink then grow again
	sc := liveness.NewScratch()
	for _, f := range order {
		got := liveness.ComputeInto(f, liveness.Bitsets, sc)
		want := liveness.ComputeReference(f, liveness.Bitsets)
		sameSets(t, f, got, want, "scratch-reuse")
		if got.Bytes() != want.Bytes() {
			t.Fatalf("%s: pooled scratch changed measured footprint: %d vs %d",
				f.Name, got.Bytes(), want.Bytes())
		}
	}
}

// TestNonPositionalBlockIDs: liveness indexes every per-block vector
// positionally, so it must refuse a function whose block IDs drifted from
// their slice positions — and ir.Verify must flag that function first.
func TestNonPositionalBlockIDs(t *testing.T) {
	f := ir.MustParse(loopSrc)
	if err := ir.Verify(f); err != nil {
		t.Fatalf("baseline must verify: %v", err)
	}
	f.Blocks[1].ID, f.Blocks[2].ID = f.Blocks[2].ID, f.Blocks[1].ID
	if err := ir.Verify(f); err == nil {
		t.Fatal("ir.Verify must reject non-positional block IDs")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("liveness must panic on non-positional block IDs instead of mixing indices")
		}
	}()
	liveness.Compute(f)
}

// TestLivenessDefinition cross-checks the dataflow result against the
// path-based definition: v is live-out of b iff some φ-free-of-redef path
// from b's exit reaches a use of v.
func TestLivenessDefinition(t *testing.T) {
	funcs := cfggen.Generate(cfggen.DefaultProfile("livedef", 23))
	for _, f := range funcs[:4] {
		l := liveness.Compute(f)
		du := ir.NewDefUse(f)
		for _, b := range f.Blocks {
			for v := range f.Vars {
				vid := ir.VarID(v)
				if !du.HasDef(vid) {
					continue
				}
				want := slowLiveOut(f, du, vid, b.ID)
				if got := l.LiveOutBlock(vid, b.ID); got != want {
					t.Fatalf("%s: liveOut(%s, %s) = %v, want %v",
						f.Name, f.VarName(vid), b.Name, got, want)
				}
			}
		}
	}
}

// slowLiveOut: BFS from b's successors looking for an upward-exposed use of
// v (or a φ-use on an edge out of b), stopping at redefinitions.
func slowLiveOut(f *ir.Func, du *ir.DefUse, v ir.VarID, b int) bool {
	// φ use along an outgoing edge of b?
	for _, u := range du.Uses(v) {
		if u.Slot == ir.PhiUseSlot && int(u.Block) == b {
			return true
		}
	}
	visited := make([]bool, len(f.Blocks))
	var stack []int
	for _, s := range f.Blocks[b].Succs {
		stack = append(stack, s.ID)
	}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if visited[x] {
			continue
		}
		visited[x] = true
		blk := f.Blocks[x]
		upwardUse, redefined := false, false
		for _, phi := range blk.Phis {
			if phi.Defs[0] == v {
				redefined = true // φ defs rewrite v at block entry
			}
		}
	scan:
		for _, in := range blk.Instrs {
			if redefined {
				break
			}
			for _, u := range in.Uses {
				if u == v {
					upwardUse = true
					break scan
				}
			}
			for _, d := range in.Defs {
				if d == v {
					redefined = true
					break scan
				}
			}
		}
		if upwardUse {
			return true
		}
		if redefined {
			continue
		}
		// In SSA there are no redefinitions; φ defs shadow nothing either
		// (v is defined once). Continue through successors and check φ uses
		// along edges out of x.
		for _, u := range du.Uses(v) {
			if u.Slot == ir.PhiUseSlot && int(u.Block) == x {
				return true
			}
		}
		for _, s := range blk.Succs {
			stack = append(stack, s.ID)
		}
	}
	return false
}

// TestQuickDataflowInvariant: at the fixpoint, LiveOut(b) must equal the
// union of successors' LiveIn plus the φ uses along b's edges, and
// LiveIn(b) = upward-exposed ∪ (LiveOut \ defs). testing/quick picks the
// block and variable to probe.
func TestQuickDataflowInvariant(t *testing.T) {
	funcs := cfggen.Generate(cfggen.DefaultProfile("quickinv", 55))
	f := funcs[0]
	l := liveness.Compute(f)
	du := ir.NewDefUse(f)
	prop := func(bi, vi uint16) bool {
		b := f.Blocks[int(bi)%len(f.Blocks)]
		v := ir.VarID(int(vi) % len(f.Vars))
		want := false
		for _, s := range b.Succs {
			if l.LiveInBlock(v, s.ID) {
				want = true
			}
			pi := s.PredIndex(b)
			for _, phi := range s.Phis {
				if phi.Uses[pi] == v {
					want = true
				}
			}
		}
		if len(b.Succs) > 0 && l.LiveOutBlock(v, b.ID) != want {
			return false
		}
		// live-in implies (upward use) or (live-out and not defined here).
		if l.LiveInBlock(v, b.ID) {
			defHere := du.HasDef(v) && du.DefBlock(v) == b.ID
			if defHere {
				return false // pruned by the defs term
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 4000}); err != nil {
		t.Fatal(err)
	}
}
