package liveness_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cfggen"
	"repro/internal/ir"
	"repro/internal/liveness"
)

// mutateBlock applies one random instruction-level edit to a random block
// of f and returns that block's ID. Edits either add a use of an existing
// variable (extends liveness upward) or define a fresh variable and print
// it (grows the universe) — both confined to the block, so Repair's
// dirty-set contract holds.
func mutateBlock(f *ir.Func, rng *rand.Rand) int32 {
	b := f.Blocks[rng.Intn(len(f.Blocks))]
	n := len(b.Instrs)
	switch rng.Intn(3) {
	case 0: // new upward-exposed use
		v := ir.VarID(rng.Intn(len(f.Vars)))
		b.Instrs = append(b.Instrs[:n-1],
			&ir.Instr{Op: ir.OpPrint, Uses: []ir.VarID{v}},
			b.Instrs[n-1])
	case 1: // fresh def + local use: universe growth inside the cone
		src := ir.VarID(rng.Intn(len(f.Vars)))
		v := f.NewVar("")
		b.Instrs = append(b.Instrs[:n-1],
			&ir.Instr{Op: ir.OpCopy, Defs: []ir.VarID{v}, Uses: []ir.VarID{src}},
			b.Instrs[n-1])
	case 2: // remove a removable use: shrinks liveness, the case a stale
		// fixpoint cannot recover from by re-iteration
		for i := n - 2; i >= 0; i-- {
			if b.Instrs[i].Op == ir.OpPrint {
				b.Instrs = append(b.Instrs[:i], b.Instrs[i+1:]...)
				break
			}
		}
	}
	f.MarkBlockMutated(b)
	return int32(b.ID)
}

func checkAgainstReference(t *testing.T, f *ir.Func, got *liveness.Info, be liveness.Backend, tag string) {
	t.Helper()
	want := liveness.ComputeReference(f, be)
	for _, b := range f.Blocks {
		for v := range f.Vars {
			vid := ir.VarID(v)
			if got.LiveInBlock(vid, b.ID) != want.LiveInBlock(vid, b.ID) {
				t.Fatalf("%s: live-in(%s, %s) = %v, reference says %v",
					tag, f.VarName(vid), b.Name, got.LiveInBlock(vid, b.ID), want.LiveInBlock(vid, b.ID))
			}
			if got.LiveOutBlock(vid, b.ID) != want.LiveOutBlock(vid, b.ID) {
				t.Fatalf("%s: live-out(%s, %s) = %v, reference says %v",
					tag, f.VarName(vid), b.Name, got.LiveOutBlock(vid, b.ID), want.LiveOutBlock(vid, b.ID))
			}
		}
	}
}

// TestRepairMatchesReference drives random edit/repair sequences on the
// known loop and on generated functions and demands the patched solution
// equal a from-scratch reference computation after every single step, on
// both backends. The deleted-use edit (case 2 of mutateBlock) is the one
// that distinguishes true repair from re-iterating a stale fixpoint.
func TestRepairMatchesReference(t *testing.T) {
	var corpus []*ir.Func
	corpus = append(corpus, ir.MustParse(loopSrc))
	p := cfggen.DefaultProfile("repair", 7)
	p.Funcs = 4
	corpus = append(corpus, cfggen.Generate(p)...)

	for _, be := range []liveness.Backend{liveness.Bitsets, liveness.OrderedSets} {
		for fi, tmpl := range corpus {
			f := ir.Clone(tmpl)
			info := liveness.ComputeIncremental(f, be)
			if !info.Repairable() {
				t.Fatal("ComputeIncremental returned an unrepairable Info")
			}
			rng := rand.New(rand.NewSource(int64(100*fi) + int64(be)))
			for step := 0; step < 25; step++ {
				dirty := []int32{mutateBlock(f, rng)}
				if rng.Intn(2) == 0 { // batched edits repair in one call too
					dirty = append(dirty, mutateBlock(f, rng))
				}
				liveness.Repair(f, info, dirty)
				checkAgainstReference(t, f, info, be,
					fmt.Sprintf("backend %d func %s step %d", be, f.Name, step))
			}
		}
	}
}
