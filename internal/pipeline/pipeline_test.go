package pipeline

import (
	"context"
	"errors"
	"testing"

	"repro/internal/analysis"
	"repro/internal/cfggen"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/ir"
)

// workload generates a deterministic batch of SSA functions.
func workload(t *testing.T, seed int64, n int) []*ir.Func {
	t.Helper()
	p := cfggen.DefaultProfile("pipe", seed)
	p.Funcs = n
	return cfggen.Generate(p)
}

func zeroNanos(st core.Stats) core.Stats {
	st.InsertNanos, st.AnalyzeNanos, st.CoalesceNanos, st.RewriteNanos = 0, 0, 0, 0
	return st
}

// TestPipelineMatchesTranslate: pushing a function through the decomposed
// four-pass pipeline produces exactly the code and statistics of the
// monolithic core.Translate.
func TestPipelineMatchesTranslate(t *testing.T) {
	opts := []core.Options{
		{Strategy: core.Value, Linear: true, LiveCheck: true},
		{Strategy: core.Sharing, Linear: true, LiveCheck: true},
		{Strategy: core.SreedharIII, Virtualize: true, UseGraph: true, OrderedSets: true},
		{Strategy: core.Value, Virtualize: true},
		{Strategy: core.Chaitin, UseGraph: true},
	}
	for _, f := range workload(t, 7, 6) {
		for _, opt := range opts {
			a, b := ir.Clone(f), ir.Clone(f)
			want, err := core.Translate(a, opt)
			if err != nil {
				t.Fatalf("%s: %v", f.Name, err)
			}
			ctx, err := Translate(opt).Run(context.Background(), b)
			if err != nil {
				t.Fatalf("%s: pipeline: %v", f.Name, err)
			}
			if a.String() != b.String() {
				t.Fatalf("%s opt %+v: pipeline output differs from core.Translate:\n--- core\n%s--- pipeline\n%s",
					f.Name, opt, a, b)
			}
			if zeroNanos(*want) != zeroNanos(*ctx.Stats) {
				t.Fatalf("%s opt %+v: stats differ:\ncore:     %+v\npipeline: %+v",
					f.Name, opt, zeroNanos(*want), zeroNanos(*ctx.Stats))
			}
		}
	}
}

// TestRunBatchDeterministic is the batch-driver acceptance check: RunBatch
// with N workers produces byte-identical translated IR and an identical
// aggregate core.Stats to a sequential run over the same function set.
func TestRunBatchDeterministic(t *testing.T) {
	funcs := workload(t, 2026, 24)
	opt := core.Options{Strategy: core.Sharing, Linear: true, LiveCheck: true}

	// Sequential reference through core.Translate directly.
	seq := make([]*ir.Func, len(funcs))
	var seqStats core.Stats
	for i, f := range funcs {
		seq[i] = ir.Clone(f)
		st, err := core.Translate(seq[i], opt)
		if err != nil {
			t.Fatal(err)
		}
		seqStats.Accumulate(st)
	}

	for _, workers := range []int{1, 2, 4, 8} {
		clones := make([]*ir.Func, len(funcs))
		for i, f := range funcs {
			clones[i] = ir.Clone(f)
		}
		res := RunBatch(context.Background(), clones, Translate(opt), workers)
		if err := res.Err(); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range clones {
			if got, want := clones[i].String(), seq[i].String(); got != want {
				t.Fatalf("workers=%d func %d: IR differs from sequential run:\n--- sequential\n%s--- batch\n%s",
					workers, i, want, got)
			}
		}
		if zeroNanos(res.Stats) != zeroNanos(seqStats) {
			t.Fatalf("workers=%d: aggregate stats differ:\nsequential: %+v\nbatch:      %+v",
				workers, zeroNanos(seqStats), zeroNanos(res.Stats))
		}
	}
}

// hitDelta snapshots cache counters around one pass.
type hitDelta struct {
	hits, misses [analysis.NumKinds]uint64
}

func step(t *testing.T, ctx *Context, p Pass) hitDelta {
	t.Helper()
	var before hitDelta
	before.hits, before.misses = ctx.Cache.Hits, ctx.Cache.Misses
	if err := Apply(ctx, p); err != nil {
		t.Fatalf("pass %s: %v", p.Name, err)
	}
	var d hitDelta
	for k := range d.hits {
		d.hits[k] = ctx.Cache.Hits[k] - before.hits[k]
		d.misses[k] = ctx.Cache.Misses[k] - before.misses[k]
	}
	return d
}

// phiDiamond is an SSA function whose pre-passes split no edges, so the
// dominator tree computed before copy insertion stays valid throughout.
const phiDiamond = `
func cachetest {
entry:
  x = param 0
  zero = const 0
  c = cmplt x zero
  br c then else
then:
  one = const 1
  a = add x one
  jump join
else:
  two = const 2
  b = add x two
  c2 = copy b
  jump join
join:
  y = phi then:a else:c2
  print y
  ret y
}
`

// TestCacheServesPasses is the acceptance check for the shared analysis
// cache: across the pipeline, dominance, liveness/livecheck, and def-use
// are each computed once and then served to later passes from the cache —
// at least three distinct passes receive cached analyses without
// recomputation.
// TestRunBatchPooledLivenessScratch: batch translation with dataflow
// liveness sets (no LiveCheck, so every worker computes liveness through
// the pooled worklist scratch, and the graph configuration recomputes it
// after copy insertion) must stay deterministic for any worker count —
// the concurrency stress that would expose scratch sharing between
// workers, especially under -race.
func TestRunBatchPooledLivenessScratch(t *testing.T) {
	funcs := workload(t, 4047, 24)
	// UseGraph + OrderedSets exercises both backends' scratch paths via
	// the interference graph's liveness pull.
	for _, opt := range []core.Options{
		{Strategy: core.Value, UseGraph: true},
		{Strategy: core.Value, UseGraph: true, OrderedSets: true},
	} {
		seq := make([]*ir.Func, len(funcs))
		for i, f := range funcs {
			seq[i] = ir.Clone(f)
			if _, err := core.Translate(seq[i], opt); err != nil {
				t.Fatal(err)
			}
		}
		for _, workers := range []int{1, 8} {
			clones := make([]*ir.Func, len(funcs))
			for i, f := range funcs {
				clones[i] = ir.Clone(f)
			}
			res := RunBatch(context.Background(), clones, Translate(opt), workers)
			if err := res.Err(); err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			for i := range clones {
				if clones[i].String() != seq[i].String() {
					t.Fatalf("ordered=%v workers=%d func %d: IR differs from sequential run",
						opt.OrderedSets, workers, i)
				}
			}
		}
	}
}

func TestCacheServesPasses(t *testing.T) {
	t.Run("livecheck-config", func(t *testing.T) {
		f, err := ir.Parse(phiDiamond)
		if err != nil {
			t.Fatal(err)
		}
		ctx := NewContext(f)
		passes := append([]Pass{VerifySSA()},
			OutOfSSA(core.Options{Strategy: core.Value, Linear: true, LiveCheck: true})...)

		verify := step(t, ctx, passes[0])
		insert := step(t, ctx, passes[1])
		analyze := step(t, ctx, passes[2])
		coalesce := step(t, ctx, passes[3])
		rewrite := step(t, ctx, passes[4])
		_ = insert

		if verify.misses[analysis.Dom] != 1 {
			t.Fatalf("verify-ssa must compute dom once, got %d", verify.misses[analysis.Dom])
		}
		// Copy insertion only touched instructions: the analyze pass is
		// served the verify pass's dominator tree.
		if analyze.misses[analysis.Dom] != 0 || analyze.hits[analysis.Dom] == 0 {
			t.Fatalf("analyze recomputed dom: %+v", analyze)
		}
		if analyze.misses[analysis.LiveCheck] != 1 {
			t.Fatalf("analyze must compute livecheck once, got %d", analyze.misses[analysis.LiveCheck])
		}
		// Coalescing queries dominance, def-use, and the liveness checker —
		// all served from the cache.
		if coalesce.misses != (hitDelta{}.misses) {
			t.Fatalf("coalesce recomputed analyses: misses %v", coalesce.misses)
		}
		if coalesce.hits[analysis.Dom] == 0 || coalesce.hits[analysis.DefUse] == 0 || coalesce.hits[analysis.LiveCheck] == 0 {
			t.Fatalf("coalesce not served from cache: hits %v", coalesce.hits)
		}
		// The rewrite pass reuses the def-use index one more time.
		if rewrite.hits[analysis.DefUse] == 0 || rewrite.misses[analysis.DefUse] != 0 {
			t.Fatalf("rewrite not served def-use from cache: %+v", rewrite)
		}
		// Across the whole pipeline each analysis was computed exactly
		// once: dom (in verify-ssa, surviving copy insertion), def-use and
		// livecheck (in analyze, after copy insertion).
		if ctx.Cache.Misses[analysis.Dom] != 1 ||
			ctx.Cache.Misses[analysis.LiveCheck] != 1 ||
			ctx.Cache.Misses[analysis.DefUse] != 1 {
			t.Fatalf("unexpected recomputation: misses %v", ctx.Cache.Misses)
		}
	})

	t.Run("liveness-sets-config", func(t *testing.T) {
		f, err := ir.Parse(phiDiamond)
		if err != nil {
			t.Fatal(err)
		}
		ctx := NewContext(f)
		passes := OutOfSSA(core.Options{Strategy: core.Value, Virtualize: true})

		step(t, ctx, passes[0])
		analyze := step(t, ctx, passes[1])
		coalesce := step(t, ctx, passes[2])
		rewrite := step(t, ctx, passes[3])

		if analyze.misses[analysis.Liveness] != 1 {
			t.Fatalf("analyze must compute liveness once, got %d", analyze.misses[analysis.Liveness])
		}
		// The virtualized coalescer is served the same liveness sets.
		if coalesce.hits[analysis.Liveness] == 0 || coalesce.misses[analysis.Liveness] != 0 {
			t.Fatalf("coalesce not served liveness from cache: %+v", coalesce)
		}
		// It materializes copies but maintains def-use, so rewrite is still
		// served the cached index.
		if rewrite.hits[analysis.DefUse] == 0 || rewrite.misses[analysis.DefUse] != 0 {
			t.Fatalf("rewrite not served def-use from cache: %+v", rewrite)
		}
		if ctx.Cache.Misses[analysis.Liveness] != 1 {
			t.Fatalf("liveness recomputed: misses %v", ctx.Cache.Misses)
		}
	})
}

// TestFullPipelineRawToRegalloc drives the whole stack — SSA construction,
// copy folding, verification, out-of-SSA translation, cleanup, register
// allocation — over raw (pre-SSA) functions through one pipeline, and
// checks observable equivalence end to end.
func TestFullPipelineRawToRegalloc(t *testing.T) {
	p := cfggen.DefaultProfile("rawpipe", 99)
	p.Funcs = 8
	pool := []string{"R0", "R1", "r2", "r3", "r4", "r5", "r6", "r7"}
	pl := New(append([]Pass{
		ConstructSSA(),
		CopyProp(),
		VerifySSA(),
	}, append(OutOfSSA(core.Options{Strategy: core.Sharing, Linear: true, LiveCheck: true}),
		Cleanup(),
		RegAlloc(pool),
	)...)...)

	inputs := [][]int64{{0, 0}, {4, 9}, {-3, 14}}
	for _, f := range cfggen.GenerateRaw(p) {
		orig := ir.Clone(f)
		ctx, err := pl.Run(context.Background(), f)
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		if ctx.Stats == nil || ctx.Alloc == nil {
			t.Fatalf("%s: pipeline did not publish stats/allocation", f.Name)
		}
		for _, in := range inputs {
			want, err := interp.Run(orig, in, 500000)
			if err != nil {
				t.Fatal(err)
			}
			got, err := interp.Run(f, in, 500000)
			if err != nil {
				t.Fatal(err)
			}
			if !interp.Equal(want, got) {
				t.Fatalf("%s miscompiled on %v", f.Name, in)
			}
		}
	}
}

// TestRunBatchCollectsErrors: a failing function does not abort the batch;
// its error is reported at its index.
func TestRunBatchCollectsErrors(t *testing.T) {
	funcs := workload(t, 5, 3)
	// Sabotage the middle function: SreedharIII without Virtualize is
	// rejected by options validation at pipeline construction time, so
	// instead make a function that is not in SSA form (double definition).
	bad := ir.NewFunc("bad")
	b := bad.NewBlock("entry")
	v := bad.NewVar("x")
	b.Instrs = []*ir.Instr{
		{Op: ir.OpConst, Defs: []ir.VarID{v}, Aux: 1},
		{Op: ir.OpConst, Defs: []ir.VarID{v}, Aux: 2},
		{Op: ir.OpRet, Uses: []ir.VarID{v}},
	}
	all := []*ir.Func{funcs[0], bad, funcs[1]}
	opt := core.Options{Strategy: core.Value, Linear: true, LiveCheck: true}

	// NewDefUse panics on non-SSA input; the driver must turn that into a
	// per-function error, not a crash.
	res := RunBatch(context.Background(), all, Translate(opt), 2)
	if res.Errs[0] != nil || res.Errs[2] != nil {
		t.Fatalf("healthy functions failed: %v / %v", res.Errs[0], res.Errs[2])
	}
	if res.Errs[1] == nil {
		t.Fatal("non-SSA function must fail")
	}
	if res.Err() == nil {
		t.Fatal("BatchResult.Err must surface the failure")
	}
}

// TestRunBatchCancellation: cancelling the context mid-batch stops the
// dispatcher. With one worker the order is deterministic: the functions
// processed before the cancel succeed, the in-flight one stops at its next
// pass boundary, and everything behind it is never dispatched.
func TestRunBatchCancellation(t *testing.T) {
	funcs := workload(t, 11, 16)
	cctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	n := 0
	pl := New(append([]Pass{{
		Name: "cancel-on-third",
		Run: func(*Context) error {
			if n++; n == 3 {
				cancel()
			}
			return nil
		},
	}}, OutOfSSA(core.Options{Strategy: core.Value, Linear: true, LiveCheck: true})...)...)

	res := RunBatch(cctx, funcs, pl, 1)
	for i := 0; i < 2; i++ {
		if res.Errs[i] != nil {
			t.Fatalf("func %d failed: %v", i, res.Errs[i])
		}
	}
	// The third function cancels during its own first pass and is cut off
	// at the next pass boundary.
	if !errors.Is(res.Errs[2], context.Canceled) || res.Contexts[2] == nil {
		t.Fatalf("in-flight func: err=%v ctx=%v", res.Errs[2], res.Contexts[2])
	}
	for i := 3; i < len(funcs); i++ {
		if !errors.Is(res.Errs[i], context.Canceled) {
			t.Fatalf("func %d: want context.Canceled, got %v", i, res.Errs[i])
		}
		if res.Contexts[i] != nil {
			t.Fatalf("func %d was dispatched after cancellation", i)
		}
	}
	if !errors.Is(res.Err(), context.Canceled) {
		t.Fatalf("combined error hides the cancellation: %v", res.Err())
	}
	if got := len(funcs) - 3; n != 3 {
		t.Fatalf("ran %d functions, want 3 (skipped %d)", n, got)
	}
}

// TestRunBatchStreams: the report callback sees every dispatched function
// exactly once, index-aligned with the input.
func TestRunBatchStreams(t *testing.T) {
	funcs := workload(t, 13, 12)
	opt := core.Options{Strategy: core.Sharing, Linear: true, LiveCheck: true}
	seen := make([]int, len(funcs))
	res := RunBatchFunc(context.Background(), funcs, Translate(opt), 4, func(i int, pctx *Context, err error) {
		seen[i]++
		if err != nil || pctx == nil || pctx.Stats == nil {
			t.Errorf("func %d reported err=%v ctx=%v", i, err, pctx)
		}
	})
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("func %d reported %d times", i, c)
		}
	}
}

// TestPassErrorTyped: a pass failure surfaces as a *PassError carrying the
// function and pass names, reachable through BatchResult.Err with
// errors.As.
func TestPassErrorTyped(t *testing.T) {
	bad := ir.NewFunc("badfunc")
	b := bad.NewBlock("entry")
	v := bad.NewVar("x")
	b.Instrs = []*ir.Instr{
		{Op: ir.OpConst, Defs: []ir.VarID{v}, Aux: 1},
		{Op: ir.OpConst, Defs: []ir.VarID{v}, Aux: 2},
		{Op: ir.OpRet, Uses: []ir.VarID{v}},
	}
	opt := core.Options{Strategy: core.Value, Linear: true, LiveCheck: true}
	res := RunBatch(context.Background(), []*ir.Func{bad}, Translate(opt), 1)

	var pe *PassError
	if !errors.As(res.Err(), &pe) {
		t.Fatalf("no *PassError in %v", res.Err())
	}
	if pe.Func != "badfunc" || pe.Pass == "" || pe.Err == nil {
		t.Fatalf("PassError incomplete: %+v", pe)
	}
}
