package pipeline

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/liveness"
	"repro/internal/regalloc"
	"repro/internal/ssa"
)

// ConstructSSA returns the SSA-construction pass: the pre-SSA function is
// rewritten into pruned strict SSA form with deterministically ordered
// φ-functions. Dominance and (pre-SSA) liveness are served by the cache;
// construction leaves the CFG untouched, so the dominator tree survives
// into the following passes.
func ConstructSSA() Pass {
	return Pass{
		Name: "construct-ssa",
		Run: func(ctx *Context) error {
			dt := ctx.Cache.Dom()
			live := ctx.Cache.Liveness(liveness.Bitsets)
			ctx.SSAOrig = ssa.ConstructWith(ctx.Func, dt, live)
			ssa.SortPhisByDef(ctx.Func)
			return nil
		},
	}
}

// CopyProp returns the SSA copy-folding pass (followed by dead-code
// elimination) — the optimization that breaks conventionality and gives
// the out-of-SSA translator something to do.
func CopyProp() Pass {
	return Pass{
		Name: "copy-propagation",
		Run: func(ctx *Context) error {
			ssa.PropagateCopies(ctx.Func, ctx.Cache.Dom())
			ssa.EliminateDeadCode(ctx.Func)
			return nil
		},
	}
}

// VerifySSA returns a read-only pass that checks strict SSA form; it warms
// the cached dominator tree for the passes behind it.
func VerifySSA() Pass {
	return Pass{
		Name: "verify-ssa",
		Run: func(ctx *Context) error {
			return ssa.Verify(ctx.Func, ctx.Cache.Dom())
		},
	}
}

// OutOfSSA returns the four paper phases of the out-of-SSA translation as
// individual passes sharing one core.Translation: copy insertion, the
// interference analyses, coalescing, and the CSSA-leaving rewrite. The
// final pass publishes the translation statistics on the context.
func OutOfSSA(opt core.Options) []Pass { return OutOfSSAWithMemo(opt, nil) }

// OutOfSSAWithMemo is OutOfSSA backed by a shared translation memo. The
// insert pass fingerprints the still-unmutated input and looks it up; on a
// hit the stored output is materialized (zero-alloc CloneInto plus the
// input's variable identities) and the remaining phases no-op. On a miss
// the rewrite pass stores the finished translation. A nil memo degrades to
// the plain pipeline.
func OutOfSSAWithMemo(opt core.Options, memo *core.Memo) []Pass {
	return []Pass{
		{
			Name: "out-of-ssa-insert",
			Run: func(ctx *Context) error {
				if err := fpOutOfSSA.Inject(); err != nil {
					return err
				}
				if memo != nil {
					ctx.Memo = memo
					ctx.MemoChecked = true
					ctx.memoKey = core.MemoKeyFor(ctx.Func, opt)
					ctx.memoInVars = len(ctx.Func.Vars)
					if e := memo.Lookup(ctx.memoKey); e != nil {
						var buf []ir.Var
						if ctx.Scratch != nil {
							buf = ctx.Scratch.MemoVarBuf()
						}
						st, buf := e.Materialize(ctx.Func, buf)
						if ctx.Scratch != nil {
							ctx.Scratch.SetMemoVarBuf(buf)
						}
						ctx.MemoHit = true
						ctx.Stats = st
						return nil
					}
				}
				t, err := core.NewTranslation(ctx.Func, opt, ctx.Cache)
				if err != nil {
					return err
				}
				if ctx.Scratch != nil {
					t.SetScratch(ctx.Scratch)
				}
				ctx.Translation = t
				return t.Insert()
			},
		},
		{
			Name: "out-of-ssa-analyze",
			Run: func(ctx *Context) error {
				if ctx.MemoHit {
					return nil
				}
				return ctx.Translation.Analyze()
			},
		},
		{
			Name: "out-of-ssa-coalesce",
			Run: func(ctx *Context) error {
				if ctx.MemoHit {
					return nil
				}
				return ctx.Translation.Coalesce()
			},
			// The virtualized coalescer materializes copies but maintains
			// the def-use index as it goes (the phase also revalidates it
			// itself, for callers driving core.Translation directly).
			Preserves: []analysis.Kind{analysis.DefUse},
		},
		{
			Name: "out-of-ssa-rewrite",
			Run: func(ctx *Context) error {
				if ctx.MemoHit {
					return nil
				}
				if err := ctx.Translation.Rewrite(); err != nil {
					return err
				}
				ctx.Stats = ctx.Translation.Stats
				if memo != nil {
					memo.Store(ctx.memoKey, ctx.Func, ctx.memoInVars, ctx.Stats, ctx.Translation.CoalesceResult().Statuses)
				}
				return nil
			},
		},
	}
}

// Translate assembles the standard out-of-SSA pipeline for opt.
func Translate(opt core.Options) *Pipeline { return New(OutOfSSA(opt)...) }

// Cleanup returns the jump-block folding pass for φ-free code.
func Cleanup() Pass {
	return Pass{
		Name: "cleanup-jump-blocks",
		Run: func(ctx *Context) error {
			ctx.CleanedBlocks += ir.CleanupJumpBlocks(ctx.Func)
			return nil
		},
	}
}

// RegAlloc returns the linear-scan register-allocation pass over φ-free
// code, with the given register pool. One cached liveness computation is
// shared by interval construction and the independent verifier.
func RegAlloc(pool []string) Pass {
	return Pass{
		Name: "regalloc",
		Run: func(ctx *Context) error {
			live := ctx.Cache.Liveness(liveness.Bitsets)
			res, err := regalloc.AllocateWith(ctx.Func, pool, live)
			if err != nil {
				return err
			}
			if err := regalloc.VerifyWith(ctx.Func, res, ctx.Cache.Liveness(liveness.Bitsets)); err != nil {
				return fmt.Errorf("allocation invalid: %w", err)
			}
			ctx.Alloc = res
			return nil
		},
	}
}
