package pipeline

import (
	"sync"
	"sync/atomic"
)

// stealQueue is one worker's deque of input indices. The owner pops from
// the head (preserving rough input order, which keeps a worker walking its
// contiguous shard); thieves remove half of the remaining items from the
// tail, so owner and thief touch opposite ends and a steal moves the work
// farthest from what the owner is about to do anyway.
//
// All mutation happens under mu — steals are rare (one per idle episode,
// O(workers·log n) per batch in practice) and the owner's pop is a single
// uncontended lock acquisition in the common case, far cheaper than the
// per-function channel rendezvous it replaces. rem mirrors the queued
// count so victim selection can scan queues without taking their locks.
type stealQueue struct {
	mu    sync.Mutex
	items []int32
	head  int
	rem   atomic.Int32

	// Queues live in one slice; the padding keeps one queue's hot fields
	// (mu, rem) off its neighbours' cache lines.
	_ [64]byte
}

// seed installs the queue's initial contiguous shard. items must be
// capacity-clamped (three-index sliced) by the caller so a later pushBack
// append can never grow into a neighbouring shard's backing memory.
func (q *stealQueue) seed(items []int32) {
	q.items = items
	q.head = 0
	q.rem.Store(int32(len(items)))
}

// pop removes and returns the head item.
func (q *stealQueue) pop() (int, bool) {
	q.mu.Lock()
	if q.head == len(q.items) {
		q.mu.Unlock()
		return 0, false
	}
	i := q.items[q.head]
	q.head++
	q.rem.Add(-1)
	q.mu.Unlock()
	return int(i), true
}

// pushBack appends stolen items to the tail.
func (q *stealQueue) pushBack(items []int32) {
	q.mu.Lock()
	q.items = append(q.items, items...)
	q.rem.Add(int32(len(items)))
	q.mu.Unlock()
}

// stealTail moves the ceiling half of q's remaining items into buf[:0] and
// returns it (empty when q drained between the victim scan and the lock).
// The items are copied out under the lock: the returned slice aliases only
// buf, never q's backing array, so the thief may requeue them at leisure
// while the victim's owner keeps popping — or even appends stolen work of
// its own into the region the tail used to occupy.
func (q *stealQueue) stealTail(buf []int32) []int32 {
	q.mu.Lock()
	n := len(q.items) - q.head
	if n <= 0 {
		q.mu.Unlock()
		return buf
	}
	take := (n + 1) / 2
	buf = append(buf, q.items[len(q.items)-take:]...)
	q.items = q.items[:len(q.items)-take]
	q.rem.Add(int32(-take))
	q.mu.Unlock()
	return buf
}

// busiest returns the index of the queue (other than self) with the most
// remaining items, or -1 when every other queue is empty — at which point
// no new work can appear (the batch's work set is fixed; items mid-steal
// are owned by the thief that holds them), so an idle worker may exit.
func busiest(qs []stealQueue, self int) int {
	best, bestRem := -1, int32(0)
	for i := range qs {
		if i == self {
			continue
		}
		if r := qs[i].rem.Load(); r > bestRem {
			best, bestRem = i, r
		}
	}
	return best
}
