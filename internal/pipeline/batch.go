package pipeline

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/ir"
)

// BatchResult aggregates one RunBatch run.
type BatchResult struct {
	// Stats sums the translation statistics of every successfully
	// processed function, folded in input order; the wall-clock fields are
	// excluded (see core.Stats.Accumulate), so the aggregate is identical
	// for any worker count.
	Stats core.Stats
	// Contexts holds the final per-function contexts, index-aligned with
	// the input; an entry whose pipeline failed still carries the partial
	// context.
	Contexts []*Context
	// Errs is index-aligned with the input; nil entries succeeded.
	Errs []error
	// Workers is the worker count actually used.
	Workers int
}

// Err joins the per-function failures in input order (nil when all
// functions succeeded).
func (r *BatchResult) Err() error {
	var errs []error
	for i, err := range r.Errs {
		if err != nil {
			errs = append(errs, fmt.Errorf("func %d: %w", i, err))
		}
	}
	return errors.Join(errs...)
}

// RunBatch pushes every function through its own run of the pipeline on a
// pool of workers, mutating the functions in place. workers <= 0 selects
// runtime.NumCPU(). Every function gets a private context and analysis
// cache — that isolation is what makes the result deterministic: the
// translated IR and the aggregate statistics are bit-identical to a
// sequential run, because statistics are collected per index and folded
// in input order after the pool drains, keeping float accumulation
// independent of scheduling.
func RunBatch(funcs []*ir.Func, p *Pipeline, workers int) *BatchResult {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(funcs) {
		workers = len(funcs)
	}
	if workers < 1 {
		workers = 1
	}
	res := &BatchResult{
		Contexts: make([]*Context, len(funcs)),
		Errs:     make([]error, len(funcs)),
		Workers:  workers,
	}

	if workers == 1 {
		for i, f := range funcs {
			res.Contexts[i] = NewContext(f)
			res.Errs[i] = runSafe(p, res.Contexts[i])
		}
	} else {
		next := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					res.Contexts[i] = NewContext(funcs[i])
					res.Errs[i] = runSafe(p, res.Contexts[i])
				}
			}()
		}
		for i := range funcs {
			next <- i
		}
		close(next)
		wg.Wait()
	}

	for i := range funcs {
		if res.Errs[i] == nil && res.Contexts[i].Stats != nil {
			res.Stats.Accumulate(res.Contexts[i].Stats)
		}
	}
	return res
}

// runSafe runs the pipeline on ctx, converting a panic (malformed input
// tripping an internal invariant, e.g. non-SSA code reaching the def-use
// indexer) into a per-function error so one bad function cannot take down
// a whole batch.
func runSafe(p *Pipeline, ctx *Context) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("pipeline: panic: %v", r)
		}
	}()
	return p.RunContext(ctx)
}
