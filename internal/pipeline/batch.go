package pipeline

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/ir"
)

// BatchResult aggregates one RunBatch run.
type BatchResult struct {
	// Stats sums the translation statistics of every successfully
	// processed function, folded in input order; the wall-clock fields are
	// excluded (see core.Stats.Accumulate), so the aggregate is identical
	// for any worker count.
	Stats core.Stats
	// Contexts holds the final per-function contexts, index-aligned with
	// the input; an entry whose pipeline failed still carries the partial
	// context, and an entry the batch never dispatched (cancellation) is
	// nil.
	Contexts []*Context
	// Errs is index-aligned with the input; nil entries succeeded. A pass
	// failure is a *PassError; a function skipped because the batch was
	// canceled carries the context's error.
	Errs []error
	// Workers is the worker count actually used.
	Workers int
}

// Err joins the per-function failures in input order with errors.Join
// (nil when all functions succeeded). Pass failures are *PassError values
// wrapped with their input index, so both errors.As(&passErr) and
// errors.Is(err, context.Canceled) see through the combined error.
func (r *BatchResult) Err() error {
	var errs []error
	for i, err := range r.Errs {
		if err != nil {
			errs = append(errs, fmt.Errorf("func %d: %w", i, err))
		}
	}
	return errors.Join(errs...)
}

// RunBatch pushes every function through its own run of the pipeline on a
// pool of workers, mutating the functions in place. workers <= 0 selects
// runtime.NumCPU(). Every function gets a private context and analysis
// cache — that isolation is what makes the result deterministic: the
// translated IR and the aggregate statistics are bit-identical to a
// sequential run, because statistics are collected per index and folded
// in input order after the pool drains, keeping float accumulation
// independent of scheduling.
//
// Cancelling ctx stops the dispatcher: a function already handed to a
// worker stops at its next pass boundary with the context's error, and
// functions never dispatched are marked with the context's error and a
// nil Context.
func RunBatch(ctx context.Context, funcs []*ir.Func, p *Pipeline, workers int) *BatchResult {
	return RunBatchFunc(ctx, funcs, p, workers, nil)
}

// RunBatchFunc is RunBatch with a streaming observer: report, when
// non-nil, is invoked once per dispatched function as it completes, in
// completion order, with the input index, the per-function context, and
// its error. Calls are serialized (report needs no locking of its own)
// but their order depends on scheduling; functions skipped by
// cancellation are not reported.
func RunBatchFunc(ctx context.Context, funcs []*ir.Func, p *Pipeline, workers int, report func(int, *Context, error)) *BatchResult {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(funcs) {
		workers = len(funcs)
	}
	if workers < 1 {
		workers = 1
	}
	res := &BatchResult{
		Contexts: make([]*Context, len(funcs)),
		Errs:     make([]error, len(funcs)),
		Workers:  workers,
	}
	var reportMu sync.Mutex
	done := func(i int) {
		if report != nil {
			reportMu.Lock()
			report(i, res.Contexts[i], res.Errs[i])
			reportMu.Unlock()
		}
	}

	if workers == 1 {
		sc := core.GetScratch()
		for i, f := range funcs {
			if ctx.Err() != nil {
				break
			}
			res.Contexts[i] = NewContext(f)
			res.Contexts[i].Scratch = sc
			res.Errs[i] = runSafe(ctx, p, res.Contexts[i])
			res.Contexts[i].Scratch = nil
			done(i)
		}
		core.PutScratch(sc)
	} else {
		next := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				// One pooled scratch per worker: every function this worker
				// translates reuses the same buffers, the point of the
				// zero-steady-state-allocation design.
				sc := core.GetScratch()
				defer core.PutScratch(sc)
				for i := range next {
					res.Contexts[i] = NewContext(funcs[i])
					res.Contexts[i].Scratch = sc
					res.Errs[i] = runSafe(ctx, p, res.Contexts[i])
					res.Contexts[i].Scratch = nil
					done(i)
				}
			}()
		}
		for i := range funcs {
			if ctx.Err() != nil {
				break
			}
			select {
			case next <- i:
			case <-ctx.Done():
			}
		}
		close(next)
		wg.Wait()
	}

	// Functions the dispatcher never handed out carry the cancellation
	// cause at their index (a dispatched function always has a context,
	// even when its pipeline failed).
	if err := ctx.Err(); err != nil {
		for i := range funcs {
			if res.Contexts[i] == nil && res.Errs[i] == nil {
				res.Errs[i] = err
			}
		}
	}

	for i := range funcs {
		if res.Errs[i] == nil && res.Contexts[i] != nil && res.Contexts[i].Stats != nil {
			res.Stats.Accumulate(res.Contexts[i].Stats)
		}
	}
	return res
}

// runSafe runs the pipeline on pctx; pass failures and pass panics arrive
// as *PassError from Apply, and a panic outside any pass is still caught
// here so one bad function cannot take down a whole batch.
func runSafe(ctx context.Context, p *Pipeline, pctx *Context) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("pipeline: panic: %v", r)
		}
	}()
	return p.RunContext(ctx, pctx)
}
