package pipeline

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/ir"
)

// BatchResult aggregates one RunBatch run.
type BatchResult struct {
	// Stats sums the translation statistics of every successfully
	// processed function, folded in input order; the wall-clock fields are
	// excluded (see core.Stats.Accumulate), so the aggregate is identical
	// for any worker count.
	Stats core.Stats
	// Contexts holds the final per-function contexts, index-aligned with
	// the input; an entry whose pipeline failed still carries the partial
	// context, and an entry the batch never dispatched (cancellation) is
	// nil.
	Contexts []*Context
	// Errs is index-aligned with the input; nil entries succeeded. A pass
	// failure is a *PassError; a function skipped because the batch was
	// canceled carries the context's error.
	Errs []error
	// Workers is the worker count actually used.
	Workers int
}

// Err joins the per-function failures in input order with errors.Join
// (nil when all functions succeeded). Pass failures are *PassError values
// wrapped with their input index, so both errors.As(&passErr) and
// errors.Is(err, context.Canceled) see through the combined error.
func (r *BatchResult) Err() error {
	var errs []error
	for i, err := range r.Errs {
		if err != nil {
			errs = append(errs, fmt.Errorf("func %d: %w", i, err))
		}
	}
	return errors.Join(errs...)
}

// clampWorkers resolves the requested worker count: workers <= 0 selects
// runtime.GOMAXPROCS(0) — not NumCPU, so a capped scheduler (container
// quota, `go test -cpu`) is respected instead of oversubscribed — and the
// count is clamped to the batch size.
func clampWorkers(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// RunBatch pushes every function through its own run of the pipeline on a
// pool of work-stealing workers, mutating the functions in place.
// workers <= 0 selects runtime.GOMAXPROCS(0). Every function gets a
// private context and analysis cache — that isolation is what makes the
// result deterministic: the translated IR and the aggregate statistics
// are bit-identical to a sequential run for any worker count and any
// steal schedule, because statistics are collected per index and folded
// in input order after the pool drains, keeping float accumulation
// independent of scheduling.
//
// Cancelling ctx stops the pool: a function already claimed by a worker
// stops at its next pass boundary with the context's error, and functions
// never claimed are marked with the context's error and a nil Context.
func RunBatch(ctx context.Context, funcs []*ir.Func, p *Pipeline, workers int) *BatchResult {
	return RunBatchFunc(ctx, funcs, p, workers, nil)
}

// RunBatchFunc is RunBatch with a streaming observer: report, when
// non-nil, is invoked once per claimed function as it completes, in
// completion order, with the input index, the per-function context, and
// its error. Calls are serialized (report needs no locking of its own)
// but their order depends on scheduling; functions skipped by
// cancellation are not reported. The calls run on a dedicated drainer
// goroutine fed by a full-batch buffered channel, so a slow observer
// back-pressures nothing — workers never serialize on reporting.
func RunBatchFunc(ctx context.Context, funcs []*ir.Func, p *Pipeline, workers int, report func(int, *Context, error)) *BatchResult {
	workers = clampWorkers(workers, len(funcs))
	res := &BatchResult{
		Contexts: make([]*Context, len(funcs)),
		Errs:     make([]error, len(funcs)),
		Workers:  workers,
	}
	if workers == 1 {
		runBatchSeq(ctx, funcs, p, res, report)
	} else {
		runBatchStealing(ctx, funcs, p, res, workers, report)
	}
	markSkipped(ctx, res)
	foldStats(res)
	return res
}

// runOne pushes funcs[i] through the pipeline on worker-owned working
// state: sc is the worker's private core.Scratch for the whole batch, and
// its liveness scratch additionally serves every liveness (re)computation
// the function's analysis cache performs — no global sync.Pool traffic,
// and with it no cross-core contention, on the per-function path. Both
// attachments are detached before the context escapes to the caller, so
// post-batch use of a Context can never race a scratch now owned by
// someone else.
func runOne(ctx context.Context, p *Pipeline, funcs []*ir.Func, res *BatchResult, i int, sc *core.Scratch) {
	pctx := NewContext(funcs[i])
	pctx.Cache.SetLivenessScratch(sc.LivenessScratch())
	pctx.Scratch = sc
	res.Contexts[i] = pctx
	res.Errs[i] = runSafe(ctx, p, pctx)
	pctx.Scratch = nil
	pctx.Cache.SetLivenessScratch(nil)
}

// runBatchSeq is the single-worker fast path: input order, no goroutines,
// report invoked inline (one worker cannot contend with itself). The
// scratch comes from the core pool — one Get/Put per batch, not per
// function — so a long-lived caller (the serve daemon) reuses warm
// buffers across requests instead of growing a fresh scratch each time.
func runBatchSeq(ctx context.Context, funcs []*ir.Func, p *Pipeline, res *BatchResult, report func(int, *Context, error)) {
	sc := core.GetScratch()
	defer core.PutScratch(sc)
	for i := range funcs {
		if ctx.Err() != nil {
			break
		}
		runOne(ctx, p, funcs, res, i, sc)
		if report != nil {
			report(i, res.Contexts[i], res.Errs[i])
		}
	}
}

// runBatchStealing is the multicore driver. The input index space is cut
// into contiguous shards, one per worker — dispatch is O(1) amortized per
// function (slice bookkeeping, no synchronized handoff). A worker drains
// its own deque from the head; when empty it steals the tail half of the
// remaining work from the busiest victim, so a straggler shard (one huge
// CFG near the end of the input) is flattened across the pool instead of
// idling everyone behind one worker.
func runBatchStealing(ctx context.Context, funcs []*ir.Func, p *Pipeline, res *BatchResult, workers int, report func(int, *Context, error)) {
	n := len(funcs)
	idx := make([]int32, n)
	for i := range idx {
		idx[i] = int32(i)
	}
	qs := make([]stealQueue, workers)
	for w := 0; w < workers; w++ {
		lo := w * n / workers
		hi := (w + 1) * n / workers
		// Capacity-clamped: a steal-append on this queue reallocates
		// privately instead of growing into the next worker's shard.
		qs[w].seed(idx[lo:hi:hi])
	}

	// The streaming observer runs on its own drainer goroutine; the
	// channel holds the whole batch, so a worker's send never blocks.
	var reports chan int32
	var drain sync.WaitGroup
	if report != nil {
		reports = make(chan int32, n)
		drain.Add(1)
		go func() {
			defer drain.Done()
			for i := range reports {
				report(int(i), res.Contexts[i], res.Errs[i])
			}
		}()
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(self int) {
			defer wg.Done()
			// Fully private working state for the life of the batch: one
			// pool round-trip per worker per batch (not per function), no
			// buffer ever shared with another core while the batch runs.
			// The congruence list pool and the liveness worklist scratch
			// ride inside (core.Scratch owns both), so the steady-state
			// translation path is contention-free — and because the scratch
			// returns to the core pool when the batch drains, a long-lived
			// server translating many small batches reuses the same warm
			// buffers across requests.
			sc := core.GetScratch()
			defer core.PutScratch(sc)
			var buf []int32
			q := &qs[self]
			for {
				if ctx.Err() != nil {
					return
				}
				i, ok := q.pop()
				if !ok {
					v := busiest(qs, self)
					if v < 0 {
						return
					}
					buf = qs[v].stealTail(buf[:0])
					if len(buf) == 0 {
						continue // victim drained under us; rescan
					}
					i = int(buf[0])
					if len(buf) > 1 {
						q.pushBack(buf[1:])
					}
				}
				runOne(ctx, p, funcs, res, i, sc)
				if reports != nil {
					reports <- int32(i)
				}
			}
		}(w)
	}
	wg.Wait()
	if reports != nil {
		close(reports)
		drain.Wait()
	}
}

// RunBatchReference is the pre-work-stealing batch driver, kept as the
// differential oracle: a single unbuffered channel hands indices to the
// pool one synchronized rendezvous at a time, and every worker draws its
// scratch from the shared core pool. It honors the same contract as
// RunBatch — per-index contexts, input-order stats fold, cancellation
// marking — so the property tests can assert the work-stealing driver is
// bit-identical to it. New code should call RunBatch.
func RunBatchReference(ctx context.Context, funcs []*ir.Func, p *Pipeline, workers int) *BatchResult {
	workers = clampWorkers(workers, len(funcs))
	res := &BatchResult{
		Contexts: make([]*Context, len(funcs)),
		Errs:     make([]error, len(funcs)),
		Workers:  workers,
	}
	if workers == 1 {
		sc := core.GetScratch()
		for i := range funcs {
			if ctx.Err() != nil {
				break
			}
			res.Contexts[i] = NewContext(funcs[i])
			res.Contexts[i].Scratch = sc
			res.Errs[i] = runSafe(ctx, p, res.Contexts[i])
			res.Contexts[i].Scratch = nil
		}
		core.PutScratch(sc)
	} else {
		next := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				sc := core.GetScratch()
				defer core.PutScratch(sc)
				for i := range next {
					res.Contexts[i] = NewContext(funcs[i])
					res.Contexts[i].Scratch = sc
					res.Errs[i] = runSafe(ctx, p, res.Contexts[i])
					res.Contexts[i].Scratch = nil
				}
			}()
		}
		// Cancellation fast path: the moment ctx.Done fires inside the
		// rendezvous, the labeled break abandons the dispatch loop — the
		// remaining indices are never iterated; markSkipped carries them.
	dispatch:
		for i := range funcs {
			select {
			case next <- i:
			case <-ctx.Done():
				break dispatch
			}
		}
		close(next)
		wg.Wait()
	}
	markSkipped(ctx, res)
	foldStats(res)
	return res
}

// markSkipped marks the functions the driver never claimed with the
// cancellation cause (a claimed function always has a context, even when
// its pipeline failed).
func markSkipped(ctx context.Context, res *BatchResult) {
	err := ctx.Err()
	if err == nil {
		return
	}
	for i := range res.Errs {
		if res.Contexts[i] == nil && res.Errs[i] == nil {
			res.Errs[i] = err
		}
	}
}

// foldStats accumulates the per-function statistics in input order —
// the step that keeps the aggregate independent of scheduling.
func foldStats(res *BatchResult) {
	for i := range res.Contexts {
		if res.Errs[i] == nil && res.Contexts[i] != nil && res.Contexts[i].Stats != nil {
			res.Stats.Accumulate(res.Contexts[i].Stats)
		}
	}
}

// runSafe runs the pipeline on pctx; pass failures and pass panics arrive
// as *PassError from Apply, and a panic outside any pass is still caught
// here so one bad function cannot take down a whole batch.
func runSafe(ctx context.Context, p *Pipeline, pctx *Context) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("pipeline: panic: %v", r)
		}
	}()
	return p.RunContext(ctx, pctx)
}
