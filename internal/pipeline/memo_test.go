package pipeline

import (
	"context"
	"testing"

	"repro/internal/cfggen"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/ir"
)

// memoDiffOpts are the two option sets the memo trajectory measures: the
// paper's recommended configuration and the virtualized Sreedhar III
// baseline (exercising the def-use-preserving coalescer under the memo).
var memoDiffOpts = []core.Options{
	{Strategy: core.Sharing, Linear: true, LiveCheck: true},
	{Strategy: core.SreedharIII, Virtualize: true},
}

// TestMemoHitMatchesPlainPipeline: translating a structural duplicate
// through a warm memo must yield the same stats (modulo phase nanos), the
// same coalescing statuses, and observably equivalent code as the plain
// pipeline — the differential contract the bench oracle enforces per run.
func TestMemoHitMatchesPlainPipeline(t *testing.T) {
	p := cfggen.DefaultProfile("memopipe", 23)
	p.Funcs = 6
	corpus := cfggen.Generate(p)

	for _, opt := range memoDiffOpts {
		memo := core.NewMemo(0, 0)
		warm := New(OutOfSSAWithMemo(opt, memo)...)
		plain := New(OutOfSSA(opt)...)

		for _, tmpl := range corpus {
			// Warm the memo with one translation of the template...
			seed := ir.Clone(tmpl)
			sctx, err := warm.Run(context.Background(), seed)
			if err != nil {
				t.Fatal(err)
			}
			if sctx.MemoHit {
				t.Fatalf("%s: first translation hit a fresh memo", tmpl.Name)
			}

			// ...then push a renamed duplicate through both pipelines.
			dup := ir.Clone(tmpl)
			for id := range dup.Vars {
				dup.Vars[id].Name = dup.VarName(ir.VarID(id)) + "_x"
			}
			ref := ir.Clone(tmpl)

			dctx, err := warm.Run(context.Background(), dup)
			if err != nil {
				t.Fatal(err)
			}
			rctx, err := plain.Run(context.Background(), ref)
			if err != nil {
				t.Fatal(err)
			}
			if !dctx.MemoHit || !dctx.MemoChecked {
				t.Fatalf("%s: renamed duplicate missed the warm memo", tmpl.Name)
			}

			if zeroNanos(*dctx.Stats) != zeroNanos(*rctx.Stats) {
				t.Fatalf("%s: memoized stats differ from plain run:\n%+v\nvs\n%+v",
					tmpl.Name, zeroNanos(*dctx.Stats), zeroNanos(*rctx.Stats))
			}
			want := rctx.Translation.CoalesceResult().Statuses
			got := memo.Lookup(core.MemoKeyFor(ir.Clone(tmpl), opt)).Statuses()
			if len(got) != len(want) {
				t.Fatalf("%s: %d memoized statuses, plain run has %d", tmpl.Name, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s: status %d is %v, plain run says %v", tmpl.Name, i, got[i], want[i])
				}
			}
			for _, params := range [][]int64{{0, 0}, {1, 7}, {13, 5}} {
				a, errA := interp.Run(dup, params, 1<<20)
				b, errB := interp.Run(ref, params, 1<<20)
				if (errA == nil) != (errB == nil) {
					t.Fatalf("%s: interp errors diverge: %v vs %v", tmpl.Name, errA, errB)
				}
				if errA == nil && !interp.Equal(a, b) {
					t.Fatalf("%s: memoized code behaves differently on %v", tmpl.Name, params)
				}
			}
		}
	}
}

// TestMemoSharedAcrossBatchWorkers: a near-duplicate corpus pushed through
// RunBatch with a shared memo must translate every function correctly at
// any worker count, and the second pass over the same corpus must be all
// hits. Run under -race this is also the concurrency check on the memo.
func TestMemoSharedAcrossBatchWorkers(t *testing.T) {
	corpus := cfggen.GenerateNearDuplicates(cfggen.NearDuplicateProfile{
		Base:     cfggen.DefaultProfile("memobatch", 31),
		Clones:   3,
		EditSeed: 32,
	})
	opt := memoDiffOpts[0]

	for _, workers := range []int{1, 4} {
		memo := core.NewMemo(0, 0)
		p := New(OutOfSSAWithMemo(opt, memo)...)

		run := func() *BatchResult {
			funcs := make([]*ir.Func, len(corpus))
			for i, f := range corpus {
				funcs[i] = ir.Clone(f)
			}
			res := RunBatch(context.Background(), funcs, p, workers)
			for i, err := range res.Errs {
				if err != nil {
					t.Fatalf("workers=%d func %s: %v", workers, corpus[i].Name, err)
				}
			}
			return res
		}

		cold := run()
		warm := run()

		// The batch aggregate is scheduling-independent, so cold and warm
		// totals must agree exactly — memoization must not perturb stats.
		if zeroNanos(cold.Stats) != zeroNanos(warm.Stats) {
			t.Fatalf("workers=%d: warm aggregate differs from cold:\n%+v\nvs\n%+v",
				workers, zeroNanos(cold.Stats), zeroNanos(warm.Stats))
		}
		for i, ctx := range warm.Contexts {
			if !ctx.MemoHit {
				t.Fatalf("workers=%d: %s missed on the second pass", workers, corpus[i].Name)
			}
		}
	}
}
