package pipeline

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/cfggen"
	"repro/internal/coalesce"
	"repro/internal/core"
	"repro/internal/ir"
)

// stealWorkload builds the shape the work-stealing driver exists for: a
// pool of small functions with two much larger stragglers appended at the
// *end* of the input, so the last contiguous shard holds the most work and
// every multi-worker run has to steal to finish hot.
func stealWorkload(t *testing.T, seed int64, n int) []*ir.Func {
	t.Helper()
	funcs := workload(t, seed, n)
	p := cfggen.LargeScaleProfile("straggle", seed+1, 0.3)
	p.Funcs = 2
	return append(funcs, cfggen.GenerateLarge(p)...)
}

func statuses(pctx *Context) []coalesce.Status {
	if pctx == nil || pctx.Translation == nil || pctx.Translation.CoalesceResult() == nil {
		return nil
	}
	return pctx.Translation.CoalesceResult().Statuses
}

// TestRunBatchStealingMatchesReference is the work-stealing acceptance
// property: across worker counts (1/2/3/8/32 — contended, oversubscribed,
// and degenerate shardings alike) and both liveness-set backends, the
// stealing driver produces bit-identical translated IR, identical
// per-affinity coalescing decisions (Result.Statuses), and an identical
// aggregate Stats, compared against both a plain sequential run and the
// retained single-channel RunBatchReference dispatcher. CI runs it under
// -race, which additionally proves no two workers ever share scratch
// state.
func TestRunBatchStealingMatchesReference(t *testing.T) {
	funcs := stealWorkload(t, 8086, 28)
	for _, opt := range []core.Options{
		{Strategy: core.Sharing, Linear: true, LiveCheck: true},
		{Strategy: core.Value, Virtualize: true},
		{Strategy: core.Value, Virtualize: true, OrderedSets: true},
	} {
		pl := Translate(opt)

		// Sequential oracle: one function at a time through core.Translate.
		seq := make([]*ir.Func, len(funcs))
		var seqStats core.Stats
		for i, f := range funcs {
			seq[i] = ir.Clone(f)
			st, err := core.Translate(seq[i], opt)
			if err != nil {
				t.Fatal(err)
			}
			seqStats.Accumulate(st)
		}

		// Reference dispatcher at a fixed worker count.
		refClones := make([]*ir.Func, len(funcs))
		for i, f := range funcs {
			refClones[i] = ir.Clone(f)
		}
		ref := RunBatchReference(context.Background(), refClones, pl, 4)
		if err := ref.Err(); err != nil {
			t.Fatalf("opt %+v: reference driver: %v", opt, err)
		}

		for _, workers := range []int{1, 2, 3, 8, 32} {
			clones := make([]*ir.Func, len(funcs))
			for i, f := range funcs {
				clones[i] = ir.Clone(f)
			}
			res := RunBatch(context.Background(), clones, pl, workers)
			if err := res.Err(); err != nil {
				t.Fatalf("opt %+v workers=%d: %v", opt, workers, err)
			}
			for i := range clones {
				if got, want := clones[i].String(), seq[i].String(); got != want {
					t.Fatalf("opt %+v workers=%d func %d: stealing IR differs from sequential:\n--- sequential\n%s--- stealing\n%s",
						opt, workers, i, want, got)
				}
				if got, want := clones[i].String(), refClones[i].String(); got != want {
					t.Fatalf("opt %+v workers=%d func %d: stealing IR differs from RunBatchReference",
						opt, workers, i)
				}
				got, want := statuses(res.Contexts[i]), statuses(ref.Contexts[i])
				if len(got) != len(want) {
					t.Fatalf("opt %+v workers=%d func %d: %d statuses, reference has %d",
						opt, workers, i, len(got), len(want))
				}
				for j := range got {
					if got[j] != want[j] {
						t.Fatalf("opt %+v workers=%d func %d affinity %d: status %d, reference %d",
							opt, workers, i, j, got[j], want[j])
					}
				}
			}
			if zeroNanos(res.Stats) != zeroNanos(seqStats) {
				t.Fatalf("opt %+v workers=%d: aggregate stats differ from sequential:\nsequential: %+v\nstealing:   %+v",
					opt, workers, zeroNanos(seqStats), zeroNanos(res.Stats))
			}
			if zeroNanos(res.Stats) != zeroNanos(ref.Stats) {
				t.Fatalf("opt %+v workers=%d: aggregate stats differ from RunBatchReference", opt, workers)
			}
		}
	}
}

// TestRunBatchStealingCancellation cancels mid-batch with a racing worker
// pool: every index must end in exactly one of the three legal states —
// completed (bit-identical to the sequential run, counted in the stats
// fold), claimed-then-cut-off at a pass boundary (context error, partial
// context), or never claimed (context error, nil context) — and the
// aggregate must equal the input-order fold of exactly the completed
// functions.
func TestRunBatchStealingCancellation(t *testing.T) {
	funcs := stealWorkload(t, 2121, 24)
	opt := core.Options{Strategy: core.Sharing, Linear: true, LiveCheck: true}

	seq := make([]*ir.Func, len(funcs))
	for i, f := range funcs {
		seq[i] = ir.Clone(f)
		if _, err := core.Translate(seq[i], opt); err != nil {
			t.Fatal(err)
		}
	}

	cctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var started atomic.Int32
	pl := New(append([]Pass{{
		Name: "cancel-on-fifth",
		Run: func(*Context) error {
			if started.Add(1) == 5 {
				cancel()
			}
			return nil
		},
	}}, OutOfSSA(opt)...)...)

	clones := make([]*ir.Func, len(funcs))
	for i, f := range funcs {
		clones[i] = ir.Clone(f)
	}
	res := RunBatch(cctx, clones, pl, 4)

	var want core.Stats
	completed, skipped := 0, 0
	for i := range funcs {
		switch {
		case res.Errs[i] == nil:
			completed++
			if clones[i].String() != seq[i].String() {
				t.Fatalf("func %d completed but differs from sequential run", i)
			}
			if res.Contexts[i] == nil || res.Contexts[i].Stats == nil {
				t.Fatalf("func %d completed without stats", i)
			}
			want.Accumulate(res.Contexts[i].Stats)
		case errors.Is(res.Errs[i], context.Canceled):
			if res.Contexts[i] == nil {
				skipped++
			}
		default:
			t.Fatalf("func %d: unexpected error %v", i, res.Errs[i])
		}
	}
	if completed == len(funcs) {
		t.Fatal("cancellation had no effect — every function completed")
	}
	if !errors.Is(res.Err(), context.Canceled) {
		t.Fatalf("combined error hides the cancellation: %v", res.Err())
	}
	if zeroNanos(res.Stats) != zeroNanos(want) {
		t.Fatalf("aggregate stats are not the input-order fold of the completed functions:\nwant %+v\ngot  %+v",
			zeroNanos(want), zeroNanos(res.Stats))
	}
	t.Logf("completed %d, cut off %d, never claimed %d",
		completed, len(funcs)-completed-skipped, skipped)
}

// TestRunBatchWorkersDefaultGOMAXPROCS: workers <= 0 must resolve to
// runtime.GOMAXPROCS(0), not runtime.NumCPU() — a capped scheduler
// (container CPU quota, `go test -cpu 2`) would otherwise be
// oversubscribed by NumCPU goroutines contending for fewer Ps. The
// regression is observable by raising GOMAXPROCS above NumCPU: the old
// default stuck at NumCPU, the fixed one follows the scheduler.
func TestRunBatchWorkersDefaultGOMAXPROCS(t *testing.T) {
	gm := runtime.NumCPU() + 2
	old := runtime.GOMAXPROCS(gm)
	defer runtime.GOMAXPROCS(old)

	funcs := workload(t, 4242, gm+3)
	opt := core.Options{Strategy: core.Sharing, Linear: true, LiveCheck: true}
	for _, run := range []struct {
		name  string
		drive func(context.Context, []*ir.Func, *Pipeline, int) *BatchResult
	}{
		{"stealing", RunBatch},
		{"reference", RunBatchReference},
	} {
		clones := make([]*ir.Func, len(funcs))
		for i, f := range funcs {
			clones[i] = ir.Clone(f)
		}
		res := run.drive(context.Background(), clones, Translate(opt), 0)
		if err := res.Err(); err != nil {
			t.Fatalf("%s: %v", run.name, err)
		}
		if res.Workers != gm {
			t.Fatalf("%s: workers=0 resolved to %d, want GOMAXPROCS(0)=%d", run.name, res.Workers, gm)
		}
	}
}

// TestRunBatchReferenceCancellation: the retained reference dispatcher
// honors the same cancellation contract as the stealing driver — the
// moment ctx.Done fires in the dispatch rendezvous it stops handing out
// indices (no per-index tail iteration), and the never-dispatched suffix
// is marked with the context error and a nil context.
func TestRunBatchReferenceCancellation(t *testing.T) {
	funcs := workload(t, 11, 16)
	cctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	n := 0
	pl := New(append([]Pass{{
		Name: "cancel-on-third",
		Run: func(*Context) error {
			if n++; n == 3 {
				cancel()
			}
			return nil
		},
	}}, OutOfSSA(core.Options{Strategy: core.Value, Linear: true, LiveCheck: true})...)...)

	res := RunBatchReference(cctx, funcs, pl, 1)
	for i := 0; i < 2; i++ {
		if res.Errs[i] != nil {
			t.Fatalf("func %d failed: %v", i, res.Errs[i])
		}
	}
	if !errors.Is(res.Errs[2], context.Canceled) || res.Contexts[2] == nil {
		t.Fatalf("in-flight func: err=%v ctx=%v", res.Errs[2], res.Contexts[2])
	}
	for i := 3; i < len(funcs); i++ {
		if !errors.Is(res.Errs[i], context.Canceled) {
			t.Fatalf("func %d: want context.Canceled, got %v", i, res.Errs[i])
		}
		if res.Contexts[i] != nil {
			t.Fatalf("func %d was dispatched after cancellation", i)
		}
	}
	if n != 3 {
		t.Fatalf("ran %d functions, want 3", n)
	}
}
