package pipeline

import (
	"context"
	"testing"

	"repro/internal/coalesce"
	"repro/internal/core"
	"repro/internal/ir"
)

// TestRunBatchPooledTranslateScratch: batch translation with per-worker
// pooled core.Scratch reuse must not change the emitted code, the
// aggregate statistics, or any per-affinity coalescing decision
// (Result.Statuses) — compared against a sequential run of the
// ReferenceAlloc baseline, which shares no working state at all. Workers
// race over the scratch pool, so this is the test CI runs under -race
// alongside the pooled-liveness-scratch one.
func TestRunBatchPooledTranslateScratch(t *testing.T) {
	funcs := workload(t, 6071, 24)
	for _, opt := range []core.Options{
		{Strategy: core.Sharing, Linear: true, LiveCheck: true},
		{Strategy: core.Value, Virtualize: true, LiveCheck: true, Linear: true},
	} {
		// Sequential reference: pre-pooling allocation behavior, fresh
		// working state per function.
		refOpt := opt
		refOpt.ReferenceAlloc = true
		seq := make([]*ir.Func, len(funcs))
		seqStatuses := make([][]coalesce.Status, len(funcs))
		var seqStats core.Stats
		for i, f := range funcs {
			seq[i] = ir.Clone(f)
			tr, err := core.NewTranslation(seq[i], refOpt, nil)
			if err != nil {
				t.Fatal(err)
			}
			for _, phase := range []func() error{tr.Insert, tr.Analyze, tr.Coalesce, tr.Rewrite} {
				if err := phase(); err != nil {
					t.Fatal(err)
				}
			}
			seqStats.Accumulate(tr.Stats)
			seqStatuses[i] = append([]coalesce.Status(nil), tr.CoalesceResult().Statuses...)
		}

		for _, workers := range []int{1, 8} {
			clones := make([]*ir.Func, len(funcs))
			for i, f := range funcs {
				clones[i] = ir.Clone(f)
			}
			res := RunBatch(context.Background(), clones, Translate(opt), workers)
			if err := res.Err(); err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			for i := range clones {
				if clones[i].String() != seq[i].String() {
					t.Fatalf("opt %+v workers=%d func %d: pooled batch IR differs from reference sequential run",
						opt, workers, i)
				}
				got := res.Contexts[i].Translation.CoalesceResult().Statuses
				if len(got) != len(seqStatuses[i]) {
					t.Fatalf("opt %+v workers=%d func %d: %d statuses, reference has %d",
						opt, workers, i, len(got), len(seqStatuses[i]))
				}
				for j := range got {
					if got[j] != seqStatuses[i][j] {
						t.Fatalf("opt %+v workers=%d func %d affinity %d: status %d, reference %d",
							opt, workers, i, j, got[j], seqStatuses[i][j])
					}
				}
			}
			if zeroNanos(res.Stats) != zeroNanos(seqStats) {
				t.Fatalf("opt %+v workers=%d: aggregate stats differ from reference:\nreference: %+v\nbatch:     %+v",
					opt, workers, zeroNanos(seqStats), zeroNanos(res.Stats))
			}
		}
	}
}
