// Package pipeline is the pass architecture of the reproduction: a pass
// manager that runs uniform Pass values over one function, a shared
// invalidation-aware analysis cache (internal/analysis) each pass draws
// its substrates from, and a concurrent batch driver (RunBatch) that
// pushes many functions through the same pipeline on a worker pool.
//
// The paper's engineering point — out-of-SSA translation gets fast when
// expensive substrates are replaced by cheap on-demand machinery — shows
// up here as an architectural seam: dominance, def-use, liveness, the
// fast liveness checker, and the interference graph are computed lazily,
// memoized per function, invalidated by the IR's generation counters, and
// revalidated by passes that declare what they preserve. SSA construction,
// the four phases of the out-of-SSA translation, cleanup, and register
// allocation are all passes over that cache.
package pipeline

import (
	"context"
	"fmt"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/ir"
	"repro/internal/regalloc"
)

// Failpoints. fpPass fires inside Apply's recover scope on every pass
// application; fpOutOfSSA fires at the entry of the out-of-SSA insert
// pass, before the memo is consulted.
var (
	fpPass     = faults.Register("pipeline.pass")
	fpOutOfSSA = faults.Register("pipeline.outofssa")
)

// PassError is the typed failure of one pass on one function. It is the
// error value every pipeline entry point (Apply, Pipeline.Run, RunBatch)
// returns for a pass failure, so callers — including the public outofssa
// façade — can route on it with errors.As and still reach the underlying
// cause through Unwrap/errors.Is.
type PassError struct {
	// Func is the name of the function the pass was running on.
	Func string
	// Pass is the Name of the failing pass.
	Pass string
	// Err is the underlying failure.
	Err error
}

func (e *PassError) Error() string {
	return fmt.Sprintf("pipeline: func %s: pass %s: %v", e.Func, e.Pass, e.Err)
}

// Unwrap exposes the underlying failure to errors.Is/errors.As.
func (e *PassError) Unwrap() error { return e.Err }

// Cache is the shared analysis cache (see internal/analysis).
type Cache = analysis.Cache

// Context carries the per-function state a pipeline run threads through
// its passes.
type Context struct {
	// Func is the function under transformation, mutated in place.
	Func *ir.Func
	// Cache memoizes the analyses; passes must request dominance, def-use,
	// liveness, the liveness checker, and the interference graph through
	// it rather than computing their own.
	Cache *Cache
	// Scratch, when non-nil, is the pooled per-worker working state the
	// out-of-SSA phases translate in. The batch driver installs one per
	// worker so every function that worker processes reuses the same
	// buffers; a nil Scratch makes the translation draw one from the core
	// package pool for its own duration.
	Scratch *core.Scratch

	// Memo, when non-nil, is the shared translation memo the out-of-SSA
	// passes consult (see OutOfSSAWithMemo): the insert pass looks the
	// input's fingerprint up before mutating anything and, on a hit,
	// materializes the stored output instead of translating; the rewrite
	// pass stores fresh results. The store is safe to share across batch
	// workers and across requests.
	Memo *core.Memo
	// MemoChecked and MemoHit report what the memo did for this run: the
	// lookup happened, and it short-circuited the translation.
	MemoChecked, MemoHit bool
	memoKey              core.MemoKey
	memoInVars           int

	// Translation is the in-flight out-of-SSA translation, created by the
	// insert pass and consumed by the analyze/coalesce/rewrite passes.
	Translation *core.Translation
	// Stats is set by the out-of-SSA rewrite pass.
	Stats *core.Stats
	// Alloc is set by the register-allocation pass.
	Alloc *regalloc.Result
	// SSAOrig, set by the SSA-construction pass, maps each SSA variable to
	// the original variable it versions.
	SSAOrig []ir.VarID
	// CleanedBlocks counts blocks removed by the cleanup pass.
	CleanedBlocks int
}

// NewContext returns a fresh context for f with an empty cache.
func NewContext(f *ir.Func) *Context {
	return &Context{Func: f, Cache: analysis.NewCache(f)}
}

// Pass is one uniform pipeline step.
type Pass struct {
	// Name identifies the pass in errors and diagnostics.
	Name string
	// Run transforms ctx.Func (or only reads it).
	Run func(*Context) error
	// Preserves lists the analyses the pass keeps consistent by hand even
	// though it mutates the IR; the manager revalidates them in the cache
	// after the pass ran. Analyses of untouched layers (e.g. the dominator
	// tree across instruction-only rewriting) survive automatically via
	// the IR generation counters and need not be listed.
	Preserves []analysis.Kind
}

// Apply runs one pass on ctx and performs the cache bookkeeping the
// manager owes it. Exposed so tests (and tools) can single-step a
// pipeline while observing cache hit counts between passes. A failing
// pass — and a panicking one (malformed input tripping an internal
// invariant, e.g. non-SSA code reaching the def-use indexer) — comes back
// as a *PassError naming the function and the pass.
func Apply(ctx *Context, p Pass) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PassError{Func: ctx.Func.Name, Pass: p.Name, Err: fmt.Errorf("panic: %v", r)}
		}
	}()
	// Inside the recover scope on purpose: an injected panic exercises the
	// same containment path a real pass panic does.
	if err := fpPass.Inject(); err != nil {
		return &PassError{Func: ctx.Func.Name, Pass: p.Name, Err: err}
	}
	if err := p.Run(ctx); err != nil {
		return &PassError{Func: ctx.Func.Name, Pass: p.Name, Err: err}
	}
	for _, k := range p.Preserves {
		ctx.Cache.Preserve(k)
	}
	return nil
}

// Pipeline is an ordered list of passes.
type Pipeline struct {
	passes []Pass
}

// New assembles a pipeline from the given passes.
func New(passes ...Pass) *Pipeline { return &Pipeline{passes: passes} }

// Passes returns the pipeline's passes in order.
func (p *Pipeline) Passes() []Pass { return p.passes }

// Run pushes f through the pipeline and returns the final context. ctx
// cancellation is observed between passes: a canceled run returns the
// context's error and leaves the function in whatever state the completed
// passes produced.
func (p *Pipeline) Run(ctx context.Context, f *ir.Func) (*Context, error) {
	pctx := NewContext(f)
	return pctx, p.RunContext(ctx, pctx)
}

// RunContext pushes pctx.Func through the pipeline on an existing
// per-function context, checking ctx for cancellation before each pass.
func (p *Pipeline) RunContext(ctx context.Context, pctx *Context) error {
	for _, ps := range p.passes {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := Apply(pctx, ps); err != nil {
			return err
		}
	}
	return nil
}
