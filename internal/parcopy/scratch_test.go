package parcopy

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/ir"
)

// TestScratchMatchesReference: the epoch-stamped scratch engine and the
// kept map-based reference emit identical copy sequences on random
// parallel copies, including when one scratch is reused across many runs
// of different sizes.
func TestScratchMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	sc := NewScratch()
	for round := 0; round < 500; round++ {
		n := rng.Intn(12) + 1
		universe := n + rng.Intn(20) // IDs need not be dense
		perm := rng.Perm(universe)
		dsts := make([]ir.VarID, n)
		srcs := make([]ir.VarID, n)
		for i := 0; i < n; i++ {
			dsts[i] = ir.VarID(perm[i]) // unique destinations
			srcs[i] = ir.VarID(rng.Intn(universe))
		}
		fresh := func() ir.VarID { return ir.VarID(universe) }
		want := SequentializeReference(dsts, srcs, fresh)
		got := sc.Sequentialize(dsts, srcs, fresh)
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(append([]Copy(nil), got...), want) {
			t.Fatalf("round %d: scratch %v != reference %v (dsts=%v srcs=%v)",
				round, got, want, dsts, srcs)
		}
	}
}

// TestScratchDuplicateDestinationPanics: the duplicate-destination
// rejection of PR 3 survives the map→epoch-slice conversion, on the
// scratch engine directly and through the pooled wrapper (covered by
// TestDuplicateDestinationPanics).
func TestScratchDuplicateDestinationPanics(t *testing.T) {
	sc := NewScratch()
	// Warm the scratch so the stamps are non-zero when the duplicate shows.
	sc.Sequentialize(v(0, 1), v(1, 0), func() ir.VarID { return 9 })
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on duplicate destination")
		}
	}()
	sc.Sequentialize(v(1, 1), v(2, 3), nil)
}

// TestSpliceInPlacePreservesInstrIdentity: SequentializeInstr must keep
// every other instruction of the block — the ones before the parallel copy
// and the tail behind it — as the same *ir.Instr values in the same order,
// for tail shifts right (several copies), in place (one copy), and left
// (the all-self-copies parallel copy disappears).
func TestSpliceInPlacePreservesInstrIdentity(t *testing.T) {
	build := func(dsts, srcs []ir.VarID) (*ir.Func, *ir.Block, []*ir.Instr, []*ir.Instr) {
		f := ir.NewFunc("t")
		b := f.NewBlock("b")
		for i := 0; i < 8; i++ {
			f.NewVar("")
		}
		pre := []*ir.Instr{
			{Op: ir.OpConst, Defs: []ir.VarID{6}, Aux: 1},
			{Op: ir.OpConst, Defs: []ir.VarID{7}, Aux: 2},
		}
		tail := []*ir.Instr{
			{Op: ir.OpPrint, Uses: []ir.VarID{0}},
			{Op: ir.OpPrint, Uses: []ir.VarID{1}},
			{Op: ir.OpRet},
		}
		b.Instrs = append(append(append([]*ir.Instr{}, pre...),
			&ir.Instr{Op: ir.OpParCopy, Defs: dsts, Uses: srcs}), tail...)
		return f, b, pre, tail
	}
	check := func(t *testing.T, dsts, srcs []ir.VarID, wantCopies int) {
		t.Helper()
		f, b, pre, tail := build(dsts, srcs)
		sc := NewScratch()
		seq := sc.SequentializeInstr(f, b, len(pre), func() ir.VarID { return f.NewVar("tmp") })
		if len(seq) != wantCopies {
			t.Fatalf("want %d copies, got %v", wantCopies, seq)
		}
		if len(b.Instrs) != len(pre)+wantCopies+len(tail) {
			t.Fatalf("block length %d, want %d", len(b.Instrs), len(pre)+wantCopies+len(tail))
		}
		for i, in := range pre {
			if b.Instrs[i] != in {
				t.Fatalf("prefix instruction %d lost its identity", i)
			}
		}
		for i := 0; i < wantCopies; i++ {
			if in := b.Instrs[len(pre)+i]; in.Op != ir.OpCopy ||
				in.Defs[0] != seq[i].Dst || in.Uses[0] != seq[i].Src {
				t.Fatalf("copy %d does not match emitted sequence %v", i, seq)
			}
		}
		for i, in := range tail {
			if b.Instrs[len(pre)+wantCopies+i] != in {
				t.Fatalf("tail instruction %d lost its identity or order", i)
			}
		}
	}
	t.Run("grow", func(t *testing.T) { check(t, v(0, 1), v(1, 0), 3) })   // swap: tail shifts right
	t.Run("same", func(t *testing.T) { check(t, v(0), v(1), 1) })         // one copy: tail stays put
	t.Run("chain", func(t *testing.T) { check(t, v(0, 1), v(1, 2), 2) })  // chain: exact replacement
	t.Run("vanish", func(t *testing.T) { check(t, v(0, 1), v(0, 1), 0) }) // self copies: tail shifts left
	t.Run("shrink", func(t *testing.T) { check(t, v(0, 1, 2), v(0, 1, 3), 1) })
}

// TestSequentializeInstrMatchesReference: the in-place splice and the kept
// double-copy reference rewrite produce the same instruction stream.
func TestSequentializeInstrMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	sc := NewScratch()
	for round := 0; round < 200; round++ {
		n := rng.Intn(8) + 1
		perm := rng.Perm(n + 4)
		dsts := make([]ir.VarID, n)
		srcs := make([]ir.VarID, n)
		for i := 0; i < n; i++ {
			dsts[i] = ir.VarID(perm[i])
			srcs[i] = ir.VarID(rng.Intn(n + 4))
		}
		mk := func() (*ir.Func, *ir.Block) {
			f := ir.NewFunc("t")
			b := f.NewBlock("b")
			for i := 0; i < n+4; i++ {
				f.NewVar("")
			}
			b.Instrs = []*ir.Instr{
				{Op: ir.OpConst, Defs: []ir.VarID{0}, Aux: 7},
				{Op: ir.OpParCopy, Defs: append([]ir.VarID(nil), dsts...), Uses: append([]ir.VarID(nil), srcs...)},
				{Op: ir.OpRet},
			}
			return f, b
		}
		fo, bo := mk()
		fr, br := mk()
		sc.SequentializeInstr(fo, bo, 1, func() ir.VarID { return fo.NewVar("tmp") })
		SequentializeInstrReference(fr, br, 1, func() ir.VarID { return fr.NewVar("tmp") })
		if len(bo.Instrs) != len(br.Instrs) {
			t.Fatalf("round %d: lengths differ: %d vs %d", round, len(bo.Instrs), len(br.Instrs))
		}
		for i := range bo.Instrs {
			a, b := bo.Instrs[i], br.Instrs[i]
			if a.Op != b.Op || !reflect.DeepEqual(append([]ir.VarID(nil), a.Defs...), append([]ir.VarID(nil), b.Defs...)) ||
				!reflect.DeepEqual(append([]ir.VarID(nil), a.Uses...), append([]ir.VarID(nil), b.Uses...)) {
				t.Fatalf("round %d instr %d: %v/%v/%v vs %v/%v/%v",
					round, i, a.Op, a.Defs, a.Uses, b.Op, b.Defs, b.Uses)
			}
		}
	}
}
