package parcopy

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ir"
)

// simulate executes the emitted sequential copies on an environment seeded
// with the identity (env[v] = v) and returns the final environment.
func simulate(seq []Copy, vars int) []ir.VarID {
	env := make([]ir.VarID, vars+1)
	for i := range env {
		env[i] = ir.VarID(i)
	}
	for _, c := range seq {
		env[c.Dst] = env[c.Src]
	}
	return env
}

// checkParallel asserts that the sequentialization implements the parallel
// semantics dsts[i] = initial value of srcs[i].
func checkParallel(t *testing.T, dsts, srcs []ir.VarID, vars int) []Copy {
	t.Helper()
	fresh := func() ir.VarID { return ir.VarID(vars) } // one scratch slot
	seq := Sequentialize(dsts, srcs, fresh)
	env := simulate(seq, vars)
	touched := map[ir.VarID]bool{ir.VarID(vars): true}
	for i, d := range dsts {
		if env[d] != srcs[i] {
			t.Fatalf("dst %d: got value of %d, want %d (dsts=%v srcs=%v seq=%v)",
				d, env[d], srcs[i], dsts, srcs, seq)
		}
		touched[d] = true
	}
	for v := 0; v < vars; v++ {
		if !touched[ir.VarID(v)] && env[v] != ir.VarID(v) {
			t.Fatalf("non-destination %d was clobbered (dsts=%v srcs=%v seq=%v)", v, dsts, srcs, seq)
		}
	}
	return seq
}

func v(ids ...int) []ir.VarID {
	out := make([]ir.VarID, len(ids))
	for i, x := range ids {
		out[i] = ir.VarID(x)
	}
	return out
}

func TestSimpleChain(t *testing.T) {
	// a→b, b→c: tree copies, no extra variable, exactly two copies.
	seq := checkParallel(t, v(1, 2), v(0, 1), 3)
	if len(seq) != 2 {
		t.Fatalf("chain needs 2 copies, got %v", seq)
	}
}

func TestSwapNeedsOneExtraCopy(t *testing.T) {
	seq := checkParallel(t, v(0, 1), v(1, 0), 2)
	if len(seq) != 3 {
		t.Fatalf("a swap needs exactly 3 copies, got %v", seq)
	}
}

func TestThreeCycle(t *testing.T) {
	// (a→b, b→c, c→a): one cycle, 3 pairs → 4 copies.
	seq := checkParallel(t, v(1, 2, 0), v(0, 1, 2), 3)
	if len(seq) != 4 {
		t.Fatalf("3-cycle needs exactly 4 copies, got %v", seq)
	}
}

func TestPaperExample(t *testing.T) {
	// (a↦b, b↦c, c↦a, c↦d): circuit (a,b,c) plus tree edge c→d. The paper
	// generates d=c, c=a, a=b, b=d — four copies, no scratch.
	seq := checkParallel(t, v(1, 2, 0, 3), v(0, 1, 2, 2), 4)
	if len(seq) != 4 {
		t.Fatalf("want 4 copies, got %v", seq)
	}
}

func TestSelfCopiesDropped(t *testing.T) {
	seq := checkParallel(t, v(0, 1), v(0, 1), 2)
	if len(seq) != 0 {
		t.Fatalf("self copies must vanish, got %v", seq)
	}
}

func TestFanOut(t *testing.T) {
	// One source to many destinations: exactly n copies.
	seq := checkParallel(t, v(1, 2, 3), v(0, 0, 0), 4)
	if len(seq) != 3 {
		t.Fatalf("fan-out needs 3 copies, got %v", seq)
	}
}

func TestOverlappingCycleAndTree(t *testing.T) {
	// Swap with an extra reader of each swapped value: the duplication
	// breaks the cycle for free (no scratch copy).
	seq := checkParallel(t, v(0, 1, 2, 3), v(1, 0, 0, 1), 4)
	if len(seq) != 4 {
		t.Fatalf("want 4 copies (duplication breaks the cycle), got %v", seq)
	}
}

// TestRandomPermutationsAndTrees is the property test: random parallel
// copies (permutation cycles + fan-out trees) must be implemented with the
// minimum number of copies: pairs + one per cycle that duplicates nothing.
func TestRandomPermutationsAndTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 2000; trial++ {
		n := 2 + rng.Intn(10)
		// Random injective partial map dst→src over [0,n): permutations of a
		// random subset, plus extra fan-out destinations.
		perm := rng.Perm(n)
		var dsts, srcs []ir.VarID
		used := map[int]bool{}
		for i := 0; i < n; i++ {
			if rng.Intn(3) > 0 {
				dsts = append(dsts, ir.VarID(i))
				srcs = append(srcs, ir.VarID(perm[i]))
				used[i] = true
			}
		}
		// Fan-out extras: fresh destinations fed by arbitrary sources.
		extra := rng.Intn(3)
		for e := 0; e < extra; e++ {
			d := n + e
			dsts = append(dsts, ir.VarID(d))
			srcs = append(srcs, ir.VarID(rng.Intn(n)))
		}
		seq := checkParallel(t, dsts, srcs, n+extra)

		// Optimality: count closed cycles with no duplication.
		if got, want := len(seq), minCopies(dsts, srcs); got != want {
			t.Fatalf("trial %d: emitted %d copies, optimal %d (dsts=%v srcs=%v seq=%v)",
				trial, got, want, dsts, srcs, seq)
		}
	}
}

// minCopies computes the optimum: one copy per non-self pair plus one extra
// per cycle whose values are not duplicated outside the cycle.
func minCopies(dsts, srcs []ir.VarID) int {
	pairs := 0
	next := map[ir.VarID]ir.VarID{} // src → dst within the mapping
	indeg := map[ir.VarID]int{}     // times a var is used as a source
	for i := range dsts {
		if dsts[i] == srcs[i] {
			continue
		}
		pairs++
		next[srcs[i]] = dsts[i]
		indeg[srcs[i]]++
	}
	// A "closed cycle with no duplication" is a cycle in dst→src where every
	// cycle member's value feeds exactly one destination (its successor).
	extra := 0
	seen := map[ir.VarID]bool{}
	for i := range dsts {
		start := dsts[i]
		if dsts[i] == srcs[i] || seen[start] {
			continue
		}
		// Walk dst → its src's... follow cycle via next from start.
		cur, isCycle, dupFree := start, false, true
		for steps := 0; steps <= len(dsts); steps++ {
			seen[cur] = true
			if indeg[cur] > 1 {
				dupFree = false
			}
			nxt, ok := next[cur]
			if !ok {
				break
			}
			if nxt == start {
				isCycle = true
				break
			}
			cur = nxt
		}
		if isCycle && dupFree {
			extra++
		}
	}
	return pairs + extra
}

func TestNaiveCount(t *testing.T) {
	if NaiveCount(v(0, 1, 2), v(1, 0, 2)) != 4 {
		t.Fatal("naive count: two non-self pairs → 4")
	}
}

func TestSequentializeInstr(t *testing.T) {
	f := ir.NewFunc("t")
	b := f.NewBlock("b")
	a := f.NewVar("a")
	c := f.NewVar("b")
	b.Instrs = []*ir.Instr{
		{Op: ir.OpParCopy, Defs: []ir.VarID{a, c}, Uses: []ir.VarID{c, a}},
		{Op: ir.OpRet},
	}
	seq := SequentializeInstr(f, b, 0, func() ir.VarID { return f.NewVar("tmp") })
	if len(seq) != 3 || len(b.Instrs) != 4 {
		t.Fatalf("swap expands to 3 copies in place, got %v / %d instrs", seq, len(b.Instrs))
	}
	for _, in := range b.Instrs[:3] {
		if in.Op != ir.OpCopy {
			t.Fatalf("expected copies, got %s", in.Op)
		}
	}
	if b.Instrs[3].Op != ir.OpRet {
		t.Fatal("terminator must stay last")
	}
}

func TestMismatchedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on mismatched lists")
		}
	}()
	Sequentialize(v(1), v(1, 2), nil)
}

// TestDuplicateDestinationPanics: a destination appearing twice makes the
// parallel assignment ambiguous and used to silently corrupt the pred map
// (the second pair overwrote the first's predecessor, dropping a copy) —
// it must be rejected loudly instead.
func TestDuplicateDestinationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on duplicate destination")
		}
	}()
	// (a, a) ← (b, c): before the check, pred[a] was silently set to c and
	// the copy from b was lost.
	Sequentialize(v(1, 1), v(2, 3), nil)
}

// TestDuplicateSelfCopyDestinationPanics: the check covers self copies too
// — (a, a) ← (a, b) is just as ambiguous.
func TestDuplicateSelfCopyDestinationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on duplicate destination involving a self copy")
		}
	}()
	Sequentialize(v(1, 1), v(1, 2), nil)
}

// TestQuickParallelSemantics drives Sequentialize with testing/quick:
// arbitrary byte vectors are decoded into a valid parallel copy (unique
// destinations, arbitrary sources), which must always implement the
// parallel semantics with no more than pairs+cycles copies.
func TestQuickParallelSemantics(t *testing.T) {
	f := func(raw []byte) bool {
		if len(raw) == 0 {
			return true
		}
		n := int(raw[0])%10 + 2
		var dsts, srcs []ir.VarID
		for i, b := range raw[1:] {
			if i >= n {
				break
			}
			dsts = append(dsts, ir.VarID(i))
			srcs = append(srcs, ir.VarID(int(b)%n))
		}
		if len(dsts) == 0 {
			return true
		}
		fresh := func() ir.VarID { return ir.VarID(n) }
		seq := Sequentialize(dsts, srcs, fresh)
		env := simulate(seq, n)
		for i, d := range dsts {
			if env[d] != srcs[i] {
				return false
			}
		}
		return len(seq) <= len(dsts)+len(dsts)/2+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}
