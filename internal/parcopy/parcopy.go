// Package parcopy sequentializes parallel copies: it turns the parallel
// semantics (a1, …, an) ← (b1, …, bn) into an ordered list of plain copies
// using the minimum possible number of copies — exactly one extra copy,
// through one fresh variable, for each closed cycle that duplicates no
// value (paper, Section III-C, Algorithm 1; the algorithm matches C. May's
// solution to the parallel assignment problem).
package parcopy

import (
	"fmt"

	"repro/internal/ir"
)

// Copy is one sequential copy Dst ← Src.
type Copy struct {
	Dst, Src ir.VarID
}

// Sequentialize orders the parallel copy dsts[i] ← srcs[i]. Self copies
// (dst == src) are dropped. When a cycle must be broken, fresh() is invoked
// once to obtain a scratch variable; fresh is only called if needed and may
// be invoked several times for several disjoint cycles (each call may
// return the same variable: the cycles are broken one after the other).
//
// A destination may appear only once — a duplicate destination makes the
// parallel assignment ambiguous, and it would silently corrupt the pred map
// below (the later pair overwrites the earlier one's predecessor, dropping
// a copy) — so duplicates are rejected with a panic. Duplicate sources are
// allowed (one value copied to several destinations). The input slices are
// not modified.
func Sequentialize(dsts, srcs []ir.VarID, fresh func() ir.VarID) []Copy {
	if len(dsts) != len(srcs) {
		panic("parcopy: mismatched parallel copy operand lists")
	}
	seen := make(map[ir.VarID]bool, len(dsts))
	for _, d := range dsts {
		if seen[d] {
			panic(fmt.Sprintf("parcopy: destination %d appears twice in parallel copy", d))
		}
		seen[d] = true
	}
	// loc[a]: where the initial value of a is currently available.
	// pred[b]: the variable whose initial value must end up in b.
	loc := map[ir.VarID]ir.VarID{}
	pred := map[ir.VarID]ir.VarID{}
	var toDo, ready []ir.VarID
	var out []Copy

	emit := func(dst, src ir.VarID) { out = append(out, Copy{Dst: dst, Src: src}) }

	for i, b := range dsts {
		a := srcs[i]
		if a == b {
			continue // self copy: nothing to do
		}
		loc[b] = ir.NoVar
		pred[a] = ir.NoVar
	}
	for i, b := range dsts {
		a := srcs[i]
		if a == b {
			continue
		}
		loc[a] = a  // a is needed and not copied yet
		pred[b] = a // unique predecessor of b
		toDo = append(toDo, b)
	}
	for i, b := range dsts {
		if srcs[i] == b {
			continue
		}
		if loc[b] == ir.NoVar {
			ready = append(ready, b) // b is not used as a source: free to overwrite
		}
	}

	scratch := ir.NoVar
	for len(toDo) > 0 {
		for len(ready) > 0 {
			b := ready[len(ready)-1]
			ready = ready[:len(ready)-1]
			a := pred[b]
			c := loc[a] // the initial value of a is available in c
			emit(b, c)
			loc[a] = b // now available in b
			if a == c && pred[a] != ir.NoVar {
				// a's own value was just saved into b and a is itself the
				// destination of a pending copy: it can now be overwritten.
				ready = append(ready, a)
			}
		}
		b := toDo[len(toDo)-1]
		toDo = toDo[:len(toDo)-1]
		if b == loc[b] {
			// b still holds its own initial value yet remains a pending
			// destination: b closes a cycle with no duplication. Break it
			// with one extra copy through the scratch variable.
			if scratch == ir.NoVar {
				scratch = fresh()
			}
			emit(scratch, b)
			loc[b] = scratch
			ready = append(ready, b)
		}
	}
	return out
}

// SequentializeInstr rewrites the parallel-copy instruction in of block b
// into plain copies inserted at its position. fresh mints the cycle
// scratch variable on first use. It returns the emitted copies.
func SequentializeInstr(f *ir.Func, b *ir.Block, idx int, fresh func() ir.VarID) []Copy {
	in := b.Instrs[idx]
	if in.Op != ir.OpParCopy {
		panic("parcopy: instruction is not a parallel copy")
	}
	seq := Sequentialize(in.Defs, in.Uses, fresh)
	repl := make([]*ir.Instr, len(seq))
	for i, cp := range seq {
		repl[i] = &ir.Instr{Op: ir.OpCopy, Defs: []ir.VarID{cp.Dst}, Uses: []ir.VarID{cp.Src}}
	}
	rest := append([]*ir.Instr{}, b.Instrs[idx+1:]...)
	b.Instrs = append(b.Instrs[:idx], append(repl, rest...)...)
	return seq
}

// NaiveCount returns the number of copies a naive sequentializer would
// emit, materializing every copy through a private temporary: two copies
// per non-self pair. Used by the ablation benchmark contrasting
// Algorithm 1's optimality.
func NaiveCount(dsts, srcs []ir.VarID) int {
	n := 0
	for i := range dsts {
		if dsts[i] != srcs[i] {
			n += 2
		}
	}
	return n
}
