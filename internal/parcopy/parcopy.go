// Package parcopy sequentializes parallel copies: it turns the parallel
// semantics (a1, …, an) ← (b1, …, bn) into an ordered list of plain copies
// using the minimum possible number of copies — exactly one extra copy,
// through one fresh variable, for each closed cycle that duplicates no
// value (paper, Section III-C, Algorithm 1; the algorithm matches C. May's
// solution to the parallel assignment problem).
//
// The algorithm's working state — the loc/pred tables, the worklists, the
// duplicate-destination check — lives in a reusable Scratch keyed by
// variable ID and validated with epoch stamps, so the rewrite phase of a
// batch translation sequentializes thousands of parallel copies without
// allocating per copy. The pre-scratch map-based implementation is kept as
// SequentializeReference: it is the differential oracle of the scratch
// engine and the fixed baseline of the translate trajectory benchmark.
package parcopy

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/ir"
)

// Copy is one sequential copy Dst ← Src.
type Copy struct {
	Dst, Src ir.VarID
}

// Scratch holds the reusable working state of the sequentializer. A Scratch
// may be reused across parallel copies and functions of any size (tables
// grow on demand and are invalidated per run by epoch stamps) but not
// concurrently.
type Scratch struct {
	epoch uint32
	// seen stamps destinations of the current run (duplicate rejection).
	seen []uint32
	// stamp validates loc/pred: an entry is meaningful only when its stamp
	// equals the current epoch.
	stamp []uint32
	// loc[a]: where the initial value of a is currently available.
	// pred[b]: the variable whose initial value must end up in b.
	loc, pred   []ir.VarID
	toDo, ready []ir.VarID
	out         []Copy
}

// NewScratch returns an empty scratch for explicit reuse across runs.
func NewScratch() *Scratch { return &Scratch{} }

var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

// prepare starts a new run over variables < n.
func (sc *Scratch) prepare(n int) {
	if sc.epoch == math.MaxUint32 {
		// Epoch wrap: stale stamps could alias the new epoch; start over.
		for i := range sc.seen {
			sc.seen[i] = 0
			sc.stamp[i] = 0
		}
		sc.epoch = 0
	}
	sc.epoch++
	if len(sc.seen) < n {
		// Fresh zeroed tables: zero is never the current epoch, so no
		// copying of old stamps is needed.
		sc.seen = make([]uint32, n)
		sc.stamp = make([]uint32, n)
		sc.loc = make([]ir.VarID, n)
		sc.pred = make([]ir.VarID, n)
	}
	sc.toDo = sc.toDo[:0]
	sc.ready = sc.ready[:0]
	sc.out = sc.out[:0]
}

// Sequentialize orders the parallel copy dsts[i] ← srcs[i]. Self copies
// (dst == src) are dropped. When a cycle must be broken, fresh() is invoked
// once to obtain a scratch variable; fresh is only called if needed and may
// be invoked several times for several disjoint cycles (each call may
// return the same variable: the cycles are broken one after the other).
//
// A destination may appear only once — a duplicate destination makes the
// parallel assignment ambiguous, and it would silently corrupt the pred
// table below (the later pair overwrites the earlier one's predecessor,
// dropping a copy) — so duplicates are rejected with a panic. Duplicate
// sources are allowed (one value copied to several destinations). The input
// slices are not modified.
//
// The returned slice is owned by the scratch and only valid until its next
// run.
func (sc *Scratch) Sequentialize(dsts, srcs []ir.VarID, fresh func() ir.VarID) []Copy {
	if len(dsts) != len(srcs) {
		panic("parcopy: mismatched parallel copy operand lists")
	}
	max := ir.VarID(-1)
	for i := range dsts {
		if dsts[i] > max {
			max = dsts[i]
		}
		if srcs[i] > max {
			max = srcs[i]
		}
	}
	sc.prepare(int(max) + 1)
	ep := sc.epoch

	for _, d := range dsts {
		if sc.seen[d] == ep {
			panic(fmt.Sprintf("parcopy: destination %d appears twice in parallel copy", d))
		}
		sc.seen[d] = ep
	}

	// touch stamps v's loc/pred entries for this run, both "missing".
	touch := func(v ir.VarID) {
		if sc.stamp[v] != ep {
			sc.stamp[v] = ep
			sc.loc[v] = ir.NoVar
			sc.pred[v] = ir.NoVar
		}
	}
	for i, b := range dsts {
		a := srcs[i]
		if a == b {
			continue // self copy: nothing to do
		}
		touch(a)
		touch(b)
	}
	for i, b := range dsts {
		a := srcs[i]
		if a == b {
			continue
		}
		sc.loc[a] = a  // a is needed and not copied yet
		sc.pred[b] = a // unique predecessor of b
		sc.toDo = append(sc.toDo, b)
	}
	for i, b := range dsts {
		if srcs[i] == b {
			continue
		}
		if sc.loc[b] == ir.NoVar {
			sc.ready = append(sc.ready, b) // b is not used as a source: free to overwrite
		}
	}

	scratchVar := ir.NoVar
	for len(sc.toDo) > 0 {
		for len(sc.ready) > 0 {
			b := sc.ready[len(sc.ready)-1]
			sc.ready = sc.ready[:len(sc.ready)-1]
			a := sc.pred[b]
			c := sc.loc[a] // the initial value of a is available in c
			sc.out = append(sc.out, Copy{Dst: b, Src: c})
			sc.loc[a] = b // now available in b
			if a == c && sc.pred[a] != ir.NoVar {
				// a's own value was just saved into b and a is itself the
				// destination of a pending copy: it can now be overwritten.
				sc.ready = append(sc.ready, a)
			}
		}
		b := sc.toDo[len(sc.toDo)-1]
		sc.toDo = sc.toDo[:len(sc.toDo)-1]
		if b == sc.loc[b] {
			// b still holds its own initial value yet remains a pending
			// destination: b closes a cycle with no duplication. Break it
			// with one extra copy through the scratch variable.
			if scratchVar == ir.NoVar {
				scratchVar = fresh()
			}
			sc.out = append(sc.out, Copy{Dst: scratchVar, Src: b})
			sc.loc[b] = scratchVar
			sc.ready = append(sc.ready, b)
		}
	}
	return sc.out
}

// Sequentialize is the pooled convenience form of Scratch.Sequentialize:
// the working state comes from a package pool and the result is copied into
// a caller-owned slice.
func Sequentialize(dsts, srcs []ir.VarID, fresh func() ir.VarID) []Copy {
	sc := scratchPool.Get().(*Scratch)
	defer scratchPool.Put(sc)
	seq := sc.Sequentialize(dsts, srcs, fresh)
	if len(seq) == 0 {
		return nil
	}
	return append([]Copy(nil), seq...)
}

// SequentializeInstr rewrites the parallel-copy instruction at index idx of
// block b into plain copies inserted at its position, shifting the block
// tail in place (no temporary tail copy) and allocating the copy
// instructions from f's arena. fresh mints the cycle scratch variable on
// first use. It returns the emitted copies; the slice is owned by sc and
// valid until its next run. Instructions other than the replaced parallel
// copy keep their identity and order.
func (sc *Scratch) SequentializeInstr(f *ir.Func, b *ir.Block, idx int, fresh func() ir.VarID) []Copy {
	in := b.Instrs[idx]
	if in.Op != ir.OpParCopy {
		panic("parcopy: instruction is not a parallel copy")
	}
	seq := sc.Sequentialize(in.Defs, in.Uses, fresh)
	k := len(seq)
	switch {
	case k == 0:
		// Delete the instruction: shift the tail left in place.
		b.Instrs = append(b.Instrs[:idx], b.Instrs[idx+1:]...)
	default:
		// Grow by k-1 slots and shift the tail right in place (copy is a
		// memmove, so the overlap is fine), then write the replacements.
		old := len(b.Instrs)
		for i := 1; i < k; i++ {
			b.Instrs = append(b.Instrs, nil)
		}
		copy(b.Instrs[idx+k:], b.Instrs[idx+1:old])
		for i, cp := range seq {
			b.Instrs[idx+i] = f.NewCopy(cp.Dst, cp.Src)
		}
	}
	return seq
}

// SequentializeInstr is the pooled convenience form of
// Scratch.SequentializeInstr; the returned copies are caller-owned.
func SequentializeInstr(f *ir.Func, b *ir.Block, idx int, fresh func() ir.VarID) []Copy {
	sc := scratchPool.Get().(*Scratch)
	defer scratchPool.Put(sc)
	seq := sc.SequentializeInstr(f, b, idx, fresh)
	if len(seq) == 0 {
		return nil
	}
	return append([]Copy(nil), seq...)
}

// NaiveCount returns the number of copies a naive sequentializer would
// emit, materializing every copy through a private temporary: two copies
// per non-self pair. Used by the ablation benchmark contrasting
// Algorithm 1's optimality.
func NaiveCount(dsts, srcs []ir.VarID) int {
	n := 0
	for i := range dsts {
		if dsts[i] != srcs[i] {
			n += 2
		}
	}
	return n
}
