package parcopy

import (
	"fmt"

	"repro/internal/ir"
)

// SequentializeReference is the pre-scratch implementation of Algorithm 1:
// map-based loc/pred tables and a freshly allocated duplicate-destination
// set per run. It is kept as the differential oracle of the scratch engine
// and as part of the fixed "reference" baseline of the translate trajectory
// benchmark (core.Options.ReferenceAlloc). Results are identical to
// Scratch.Sequentialize; only allocation behavior differs.
func SequentializeReference(dsts, srcs []ir.VarID, fresh func() ir.VarID) []Copy {
	if len(dsts) != len(srcs) {
		panic("parcopy: mismatched parallel copy operand lists")
	}
	seen := make(map[ir.VarID]bool, len(dsts))
	for _, d := range dsts {
		if seen[d] {
			panic(fmt.Sprintf("parcopy: destination %d appears twice in parallel copy", d))
		}
		seen[d] = true
	}
	loc := map[ir.VarID]ir.VarID{}
	pred := map[ir.VarID]ir.VarID{}
	var toDo, ready []ir.VarID
	var out []Copy

	emit := func(dst, src ir.VarID) { out = append(out, Copy{Dst: dst, Src: src}) }

	for i, b := range dsts {
		a := srcs[i]
		if a == b {
			continue
		}
		loc[b] = ir.NoVar
		pred[a] = ir.NoVar
	}
	for i, b := range dsts {
		a := srcs[i]
		if a == b {
			continue
		}
		loc[a] = a
		pred[b] = a
		toDo = append(toDo, b)
	}
	for i, b := range dsts {
		if srcs[i] == b {
			continue
		}
		if loc[b] == ir.NoVar {
			ready = append(ready, b)
		}
	}

	scratch := ir.NoVar
	for len(toDo) > 0 {
		for len(ready) > 0 {
			b := ready[len(ready)-1]
			ready = ready[:len(ready)-1]
			a := pred[b]
			c := loc[a]
			emit(b, c)
			loc[a] = b
			if a == c && pred[a] != ir.NoVar {
				ready = append(ready, a)
			}
		}
		b := toDo[len(toDo)-1]
		toDo = toDo[:len(toDo)-1]
		if b == loc[b] {
			if scratch == ir.NoVar {
				scratch = fresh()
			}
			emit(scratch, b)
			loc[b] = scratch
			ready = append(ready, b)
		}
	}
	return out
}

// SequentializeInstrReference is the pre-scratch instruction rewrite: it
// heap-allocates one instruction and two operand slices per emitted copy
// and splices them in by copying the block tail twice through nested
// appends. Kept alongside SequentializeReference as the translate
// trajectory's fixed baseline.
func SequentializeInstrReference(f *ir.Func, b *ir.Block, idx int, fresh func() ir.VarID) []Copy {
	in := b.Instrs[idx]
	if in.Op != ir.OpParCopy {
		panic("parcopy: instruction is not a parallel copy")
	}
	seq := SequentializeReference(in.Defs, in.Uses, fresh)
	repl := make([]*ir.Instr, len(seq))
	for i, cp := range seq {
		repl[i] = &ir.Instr{Op: ir.OpCopy, Defs: []ir.VarID{cp.Dst}, Uses: []ir.VarID{cp.Src}}
	}
	rest := append([]*ir.Instr{}, b.Instrs[idx+1:]...)
	b.Instrs = append(b.Instrs[:idx], append(repl, rest...)...)
	return seq
}
