package congruence_test

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/cfggen"
	"repro/internal/congruence"
	"repro/internal/dom"
	"repro/internal/interference"
	"repro/internal/ir"
	"repro/internal/livecheck"
	"repro/internal/liveness"
	"repro/internal/sreedhar"
	"repro/internal/ssa"
)

func newChecker(f *ir.Func, useLiveCheck bool) *interference.Checker {
	dt := dom.Build(f)
	du := ir.NewDefUse(f)
	var live interference.BlockLiveness
	if useLiveCheck {
		live = livecheck.New(f, dt, du)
	} else {
		live = liveness.Compute(f)
	}
	return &interference.Checker{F: f, DT: dt, DU: du, Live: live, Vals: ssa.Values(f, dt)}
}

// quadValue is the reference: any cross pair interfering under the
// value-based definition.
func quadValue(chk *interference.Checker, xs, ys []ir.VarID) bool {
	for _, x := range xs {
		for _, y := range ys {
			if chk.Interferes(x, y) {
				return true
			}
		}
	}
	return false
}

func quadIntersect(chk *interference.Checker, xs, ys []ir.VarID) bool {
	for _, x := range xs {
		for _, y := range ys {
			if x != y && chk.Intersect(x, y) {
				return true
			}
		}
	}
	return false
}

// TestLinearMatchesQuadraticThroughMerges replays a realistic coalescing
// run: Method I copies inserted, φ-nodes pre-merged, then affinities
// processed in random order. Before every merge the linear and quadratic
// answers must agree; merges use the linear bookkeeping so the
// equal-intersecting-ancestor chains are exercised across a long mutation
// sequence.
func TestLinearMatchesQuadraticThroughMerges(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for seed := int64(0); seed < 5; seed++ {
		p := cfggen.DefaultProfile("cong", 200+seed)
		p.Funcs = 4
		for _, f := range cfggen.Generate(p) {
			sreedhar.SplitDuplicatePredEdges(f)
			sreedhar.SplitBranchDefEdges(f)
			ins, err := sreedhar.InsertCopies(f)
			if err != nil {
				t.Fatal(err)
			}
			chk := newChecker(f, seed%2 == 0)
			classes := congruence.New(chk)
			for _, node := range ins.PhiNodes {
				for i := 1; i < len(node); i++ {
					classes.MergeForced(node[0], node[i])
				}
			}
			affs := append([]sreedhar.Affinity(nil), ins.Affinities...)
			rng.Shuffle(len(affs), func(i, j int) { affs[i], affs[j] = affs[j], affs[i] })
			for _, a := range affs {
				if classes.SameClass(a.Dst, a.Src) {
					continue
				}
				want := quadValue(chk, classes.Members(a.Dst), classes.Members(a.Src))
				got := classes.InterferesLinear(a.Dst, a.Src)
				if got != want {
					t.Fatalf("%s: linear=%v quadratic=%v for classes of %s and %s\nX=%v\nY=%v\n%s",
						f.Name, got, want, f.VarName(a.Dst), f.VarName(a.Src),
						names(f, classes.Members(a.Dst)), names(f, classes.Members(a.Src)), f)
				}
				if !got {
					classes.Merge(a.Dst, a.Src)
				}
			}
		}
	}
}

// TestLinearPureMatchesQuadratic does the same for the pure-intersection
// form of Algorithm 2.
func TestLinearPureMatchesQuadratic(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	p := cfggen.DefaultProfile("congpure", 300)
	p.Funcs = 6
	for _, f := range cfggen.Generate(p) {
		sreedhar.SplitDuplicatePredEdges(f)
		sreedhar.SplitBranchDefEdges(f)
		ins, err := sreedhar.InsertCopies(f)
		if err != nil {
			t.Fatal(err)
		}
		chk := newChecker(f, false)
		classes := congruence.New(chk)
		for _, node := range ins.PhiNodes {
			for i := 1; i < len(node); i++ {
				classes.MergeForced(node[0], node[i])
			}
		}
		affs := append([]sreedhar.Affinity(nil), ins.Affinities...)
		rng.Shuffle(len(affs), func(i, j int) { affs[i], affs[j] = affs[j], affs[i] })
		for _, a := range affs {
			if classes.SameClass(a.Dst, a.Src) {
				continue
			}
			want := quadIntersect(chk, classes.Members(a.Dst), classes.Members(a.Src))
			got := classes.InterferesLinearPure(a.Dst, a.Src)
			if got != want {
				t.Fatalf("%s: linear-pure=%v quadratic=%v (%v vs %v)\n%s",
					f.Name, got, want, names(f, classes.Members(a.Dst)),
					names(f, classes.Members(a.Src)), f)
			}
			if !got {
				classes.MergeSimple(a.Dst, a.Src)
			}
		}
	}
}

func names(f *ir.Func, vs []ir.VarID) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = f.VarName(v)
	}
	return out
}

func TestMembersStaySorted(t *testing.T) {
	p := cfggen.DefaultProfile("sorted", 400)
	p.Funcs = 3
	for _, f := range cfggen.Generate(p) {
		sreedhar.SplitDuplicatePredEdges(f)
		sreedhar.SplitBranchDefEdges(f)
		ins, err := sreedhar.InsertCopies(f)
		if err != nil {
			t.Fatal(err)
		}
		chk := newChecker(f, false)
		classes := congruence.New(chk)
		for _, node := range ins.PhiNodes {
			for i := 1; i < len(node); i++ {
				classes.MergeForced(node[0], node[i])
			}
		}
		for _, a := range ins.Affinities {
			if !classes.SameClass(a.Dst, a.Src) && !classes.InterferesLinear(a.Dst, a.Src) {
				classes.Merge(a.Dst, a.Src)
			}
		}
		seen := map[ir.VarID]bool{}
		for v := range f.Vars {
			root := classes.Find(ir.VarID(v))
			if seen[root] {
				continue
			}
			seen[root] = true
			ms := classes.Members(root)
			for i := 1; i < len(ms); i++ {
				if d := chk.DefOrder(ms[i-1], ms[i]); d > 0 {
					t.Fatalf("%s: class of %s not in pre-DFS order", f.Name, f.VarName(root))
				}
			}
		}
	}
}

func TestUnionFindBasics(t *testing.T) {
	f := ir.MustParse(`
func u {
entry:
  a = param 0
  b = copy a
  c = copy a
  d = copy a
  print b
  print c
  print d
  ret a
}
`)
	chk := newChecker(f, false)
	classes := congruence.New(chk)
	a, b, c := ir.VarID(0), ir.VarID(1), ir.VarID(2)
	if classes.SameClass(a, b) {
		t.Fatal("fresh classes are singletons")
	}
	classes.MergeForced(a, b)
	classes.MergeForced(b, c)
	if !classes.SameClass(a, c) {
		t.Fatal("transitivity")
	}
	if len(classes.Members(a)) != 3 {
		t.Fatalf("members = %v", names(f, classes.Members(a)))
	}
}

func TestRegisterLabelsPropagate(t *testing.T) {
	f := ir.NewFunc("r")
	b := f.NewBlock("entry")
	x := f.NewPinnedVar("x", "R0")
	y := f.NewVar("y")
	z := f.NewPinnedVar("z", "R1")
	b.Instrs = []*ir.Instr{
		{Op: ir.OpConst, Defs: []ir.VarID{x}, Aux: 1},
		{Op: ir.OpCopy, Defs: []ir.VarID{y}, Uses: []ir.VarID{x}},
		{Op: ir.OpConst, Defs: []ir.VarID{z}, Aux: 2},
		{Op: ir.OpPrint, Uses: []ir.VarID{z}},
		{Op: ir.OpRet, Uses: []ir.VarID{y}},
	}
	chk := newChecker(f, false)
	classes := congruence.New(chk)
	if classes.Reg(x) != "R0" || classes.Reg(z) != "R1" || classes.Reg(y) != "" {
		t.Fatal("initial labels wrong")
	}
	classes.MergeForced(y, x)
	if classes.Reg(y) != "R0" {
		t.Fatal("label must survive the merge")
	}
}

// TestMergeForcedConflictingRegistersPanics: force-merging two classes
// pinned to *different* architectural registers must panic naming both
// registers — silently keeping one label would retarget the other
// register's variables and miscompile (the bug link used to have: the
// absorbed root's label overwrote the survivor's).
func TestMergeForcedConflictingRegistersPanics(t *testing.T) {
	f := ir.NewFunc("conflict")
	b := f.NewBlock("entry")
	x := f.NewPinnedVar("x", "R0")
	y := f.NewPinnedVar("y", "R1")
	b.Instrs = []*ir.Instr{
		{Op: ir.OpConst, Defs: []ir.VarID{x}, Aux: 1},
		{Op: ir.OpConst, Defs: []ir.VarID{y}, Aux: 2},
		{Op: ir.OpPrint, Uses: []ir.VarID{x}},
		{Op: ir.OpRet, Uses: []ir.VarID{y}},
	}
	chk := newChecker(f, false)
	classes := congruence.New(chk)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("MergeForced of differently-pinned classes must panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "R0") || !strings.Contains(msg, "R1") {
			t.Fatalf("panic must name both registers, got %v", r)
		}
	}()
	classes.MergeForced(x, y)
}

// TestMergeSamePinnedRegisterKeepsLabel: merging two classes pinned to the
// *same* register stays legal, in either merge direction.
func TestMergeSamePinnedRegisterKeepsLabel(t *testing.T) {
	f := ir.NewFunc("samereg")
	b := f.NewBlock("entry")
	x := f.NewPinnedVar("x", "R4")
	y := f.NewPinnedVar("y", "R4")
	z := f.NewVar("z")
	b.Instrs = []*ir.Instr{
		{Op: ir.OpConst, Defs: []ir.VarID{x}, Aux: 1},
		{Op: ir.OpCopy, Defs: []ir.VarID{z}, Uses: []ir.VarID{x}},
		{Op: ir.OpConst, Defs: []ir.VarID{y}, Aux: 2},
		{Op: ir.OpRet, Uses: []ir.VarID{y}},
	}
	chk := newChecker(f, false)
	classes := congruence.New(chk)
	classes.MergeForced(x, y)
	classes.MergeForced(z, x)
	if classes.Reg(x) != "R4" || classes.Reg(y) != "R4" || classes.Reg(z) != "R4" {
		t.Fatalf("label lost: %q %q %q", classes.Reg(x), classes.Reg(y), classes.Reg(z))
	}
}

// TestEqualAncInvariant: after a sequence of checked merges, equalAncIn(v)
// must be exactly the nearest dominating ancestor of v within its class
// that has the same value and intersects v — verified against brute force.
func TestEqualAncInvariant(t *testing.T) {
	p := cfggen.DefaultProfile("eqanc", 800)
	p.Funcs = 4
	for _, f := range cfggen.Generate(p) {
		sreedhar.SplitDuplicatePredEdges(f)
		sreedhar.SplitBranchDefEdges(f)
		ins, err := sreedhar.InsertCopies(f)
		if err != nil {
			t.Fatal(err)
		}
		chk := newChecker(f, false)
		classes := congruence.New(chk)
		for _, node := range ins.PhiNodes {
			for i := 1; i < len(node); i++ {
				classes.MergeForced(node[0], node[i])
			}
		}
		for _, a := range ins.Affinities {
			if !classes.SameClass(a.Dst, a.Src) && !classes.InterferesLinear(a.Dst, a.Src) {
				classes.Merge(a.Dst, a.Src)
			}
		}
		seen := map[ir.VarID]bool{}
		for v := range f.Vars {
			root := classes.Find(ir.VarID(v))
			if seen[root] {
				continue
			}
			seen[root] = true
			members := classes.Members(root)
			for _, m := range members {
				want := bruteEqualAnc(chk, members, m)
				if got := classes.EqualAncIn(m); got != want {
					t.Fatalf("%s: equalAncIn(%s) = %v, want %v (class %v)",
						f.Name, f.VarName(m), name(f, got), name(f, want), names(f, members))
				}
			}
		}
	}
}

func bruteEqualAnc(chk *interference.Checker, members []ir.VarID, v ir.VarID) ir.VarID {
	best := ir.NoVar
	for _, m := range members {
		if m == v || !chk.DefDominates(m, v) || chk.DefOrder(m, v) == 0 && m > v {
			continue
		}
		if chk.DefOrder(m, v) == 0 {
			continue // same definition point: not an ancestor in the forest
		}
		if chk.Value(m) != chk.Value(v) || !chk.Intersect(m, v) {
			continue
		}
		if best == ir.NoVar || chk.DefDominates(best, m) {
			best = m // m is nearer (dominated by the previous best)
		}
	}
	return best
}

func name(f *ir.Func, v ir.VarID) string {
	if v == ir.NoVar {
		return "-"
	}
	return f.VarName(v)
}
