// Package congruence maintains congruence classes — sets of variables that
// have been coalesced together — and implements the paper's third main
// contribution (Section IV-B): an interference test between two classes
// that performs only a *linear* number of variable-to-variable intersection
// tests, generalizing the dominance forests of Budimlić et al. without ever
// building the forest, and extended to the value-based interference
// definition via "equal intersecting ancestor" chains.
//
// Each class is kept as a list of variables sorted by the pre-DFS order of
// their definition points in the dominator tree. A simulated stack
// traversal of the implicit dominance forest visits the merged lists in
// order; a variable can only intersect an already-visited one if it
// intersects its nearest dominating ancestor or, with value equality in
// play, one of that ancestor's equal-intersecting-ancestor chain.
//
// A full coalescing run performs one merge per accepted affinity, so the
// class storage is allocation-conscious: member lists and register labels
// live in root-indexed slices (no map traffic on the hot path), merges
// reuse the backing arrays of the merged lists whenever one has the
// capacity, and retired arrays go to a small free list instead of the
// garbage collector. The per-merge-allocating baseline survives behind the
// Reference flag as the trajectory benchmark's fixed comparison point.
package congruence

import (
	"repro/internal/interference"
	"repro/internal/ir"
)

// Classes is a union-find of variables with per-class ordered member lists.
type Classes struct {
	chk    *interference.Checker
	parent []ir.VarID
	size   []int32
	lists  [][]ir.VarID // root → members in pre-DFS def order; nil for singletons
	reg    []string     // root → pinned register label ("" for none)

	// singles is the identity list 0..n-1; Members serves singleton classes
	// as one-element subslices of it instead of allocating per call.
	singles []ir.VarID

	// pool recycles member-list backing arrays retired by merges. It is
	// private by default; NewIn installs a caller-owned pool so successive
	// translations (and Retire at the end of each) share one set of arrays.
	pool *ListPool

	// stack is the reusable dominance-forest traversal stack of the linear
	// checks and of recomputeEqualAnc (one live traversal at a time).
	stack []stackEntry

	// Reference disables the scratch reuse: every merge allocates a fresh
	// exact-size member list, as the pre-pooling implementation did. The
	// coalescing trajectory benchmark measures against it.
	Reference bool

	// equalAncIn[v] is the nearest dominating ancestor of v *within v's
	// class* that has the same value and intersects v (paper, Section
	// IV-B); NoVar when none.
	equalAncIn []ir.VarID

	// Scratch for the linear check, consumed by Merge.
	equalAncOut []ir.VarID
	outEpoch    []uint32
	epoch       uint32

	// Tests counts variable-to-variable intersection tests issued by the
	// class-level checks (quadratic vs linear instrumentation).
	Tests int
}

// ListPool recycles class member-list backing arrays. One pool may serve
// many Classes instances sequentially (NewIn + Retire); sharing it across
// translations is what keeps steady-state coalescing free of per-merge
// allocations even though every translation starts fresh classes.
type ListPool struct {
	spare [][]ir.VarID
}

// put retires a backing array for reuse by later merges.
func (p *ListPool) put(a []ir.VarID) {
	if cap(a) == 0 {
		return
	}
	p.spare = append(p.spare, a[:0])
}

// take returns an empty list with capacity at least need, preferring a
// retired backing array over a fresh allocation.
func (p *ListPool) take(need int) []ir.VarID {
	for i := len(p.spare) - 1; i >= 0; i-- {
		if cap(p.spare[i]) >= need {
			s := p.spare[i]
			p.spare = append(p.spare[:i], p.spare[i+1:]...)
			return s[:0]
		}
	}
	return make([]ir.VarID, 0, need+need/2+4)
}

// New returns singleton classes over the variable universe of chk. The
// Reference flag of chk carries over, so a reference checker drives a
// reference merge path too.
func New(chk *interference.Checker) *Classes {
	return NewIn(chk, nil)
}

// NewIn is New with a caller-owned list pool feeding the merge storage;
// nil selects a private pool. Pair it with Retire to hand the grown arrays
// back when the classes are done.
func NewIn(chk *interference.Checker, pool *ListPool) *Classes {
	if pool == nil {
		pool = &ListPool{}
	}
	n := len(chk.F.Vars)
	c := &Classes{
		pool:        pool,
		chk:         chk,
		parent:      make([]ir.VarID, n),
		size:        make([]int32, n),
		lists:       make([][]ir.VarID, n),
		reg:         make([]string, n),
		singles:     make([]ir.VarID, n),
		Reference:   chk.Reference,
		equalAncIn:  make([]ir.VarID, n),
		equalAncOut: make([]ir.VarID, n),
		outEpoch:    make([]uint32, n),
	}
	for i := range c.parent {
		c.parent[i] = ir.VarID(i)
		c.size[i] = 1
		c.singles[i] = ir.VarID(i)
		c.equalAncIn[i] = ir.NoVar
		c.equalAncOut[i] = ir.NoVar
	}
	for i, v := range chk.F.Vars {
		c.reg[i] = v.Reg
	}
	return c
}

// grow extends the universe when virtualization materializes variables.
func (c *Classes) grow() {
	for len(c.parent) < len(c.chk.F.Vars) {
		v := ir.VarID(len(c.parent))
		c.parent = append(c.parent, v)
		c.size = append(c.size, 1)
		c.lists = append(c.lists, nil)
		c.reg = append(c.reg, c.chk.F.Vars[v].Reg)
		c.singles = append(c.singles, v)
		c.equalAncIn = append(c.equalAncIn, ir.NoVar)
		c.equalAncOut = append(c.equalAncOut, ir.NoVar)
		c.outEpoch = append(c.outEpoch, 0)
	}
}

// Find returns the representative of v's class.
func (c *Classes) Find(v ir.VarID) ir.VarID {
	if int(v) >= len(c.parent) {
		c.grow()
	}
	root := v
	for c.parent[root] != root {
		root = c.parent[root]
	}
	for c.parent[v] != root {
		c.parent[v], v = root, c.parent[v]
	}
	return root
}

// SameClass reports whether a and b are already coalesced.
func (c *Classes) SameClass(a, b ir.VarID) bool { return c.Find(a) == c.Find(b) }

// Members returns the class of v in pre-DFS definition order. The slice
// must not be mutated and is only valid until the next merge involving the
// class.
func (c *Classes) Members(v ir.VarID) []ir.VarID {
	root := c.Find(v)
	if l := c.lists[root]; l != nil {
		return l
	}
	return c.singles[root : root+1 : root+1]
}

// Reg returns the architectural register the class of v is pinned to, or "".
func (c *Classes) Reg(v ir.VarID) string { return c.reg[c.Find(v)] }

// less orders variables by pre-DFS order of definition points, breaking
// ties (φs of one block, components of one parallel copy) by variable ID.
func (c *Classes) less(a, b ir.VarID) bool {
	if d := c.chk.DefOrder(a, b); d != 0 {
		return d < 0
	}
	return a < b
}

// EqualAncIn exposes the per-variable equal-intersecting-ancestor within
// its class (testing hook).
func (c *Classes) EqualAncIn(v ir.VarID) ir.VarID { return c.equalAncIn[v] }

// Retire hands every live member list back to the classes' pool. The
// Classes must not be used afterwards; the translator calls it once the
// rewrite phase no longer needs class membership, so the next translation's
// merges reuse the arrays.
func (c *Classes) Retire() {
	if c.Reference {
		return // reference merges allocate exact-size lists by design
	}
	for i, l := range c.lists {
		if l != nil {
			c.pool.put(l)
			c.lists[i] = nil
		}
	}
}
