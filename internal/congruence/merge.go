package congruence

import "repro/internal/ir"

// Merge coalesces the classes of a and b. It must be called right after an
// InterferesLinear(a, b) call that returned false: the equal-intersecting-
// ancestor information computed during that check is folded into the merged
// class (paper: "the equal intersecting ancestor for the combined set is
// updated to the maximum, following the pre-DFS order, of equal_anc_in and
// equal_anc_out").
func (c *Classes) Merge(a, b ir.VarID) ir.VarID {
	ra, rb := c.Find(a), c.Find(b)
	if ra == rb {
		return ra
	}
	merged := c.mergeRoots(ra, rb)
	for _, v := range merged {
		c.equalAncIn[v] = c.maxPre(c.equalAncIn[v], c.getOut(v))
	}
	return c.link(ra, rb, merged)
}

// MergeForced coalesces two classes unconditionally — used for the φ-node
// classes of Method I (whose members are coalesced by construction) and for
// pre-coalescing variables pinned to the same register. The equal-
// intersecting-ancestor chains of the merged class are recomputed with one
// stack traversal.
func (c *Classes) MergeForced(a, b ir.VarID) ir.VarID {
	ra, rb := c.Find(a), c.Find(b)
	if ra == rb {
		return ra
	}
	merged := c.mergeRoots(ra, rb)
	c.recomputeEqualAnc(merged)
	return c.link(ra, rb, merged)
}

// MergeSimple coalesces two classes without maintaining the equal-
// intersecting-ancestor chains. It is the merge used by the quadratic
// machinery variants, which never consult the chains.
func (c *Classes) MergeSimple(a, b ir.VarID) ir.VarID {
	ra, rb := c.Find(a), c.Find(b)
	if ra == rb {
		return ra
	}
	return c.link(ra, rb, c.mergeRoots(ra, rb))
}

// link performs the union-find merge of roots ra and rb with the merged
// member list, propagating register labels. Two classes pinned to
// *different* architectural registers must never be merged — the class
// predicates treat such pairs as interfering, so reaching link with
// conflicting pins is a force-merge bug that would silently retarget one
// register's variables to the other; it panics instead.
func (c *Classes) link(ra, rb ir.VarID, merged []ir.VarID) ir.VarID {
	if c.size[ra] < c.size[rb] {
		ra, rb = rb, ra
	}
	if rr := c.reg[rb]; rr != "" {
		if ar := c.reg[ra]; ar != "" && ar != rr {
			panic("congruence: cannot merge classes pinned to different registers " +
				ar + " and " + rr)
		}
		c.reg[ra] = rr
		c.reg[rb] = ""
	}
	c.parent[rb] = ra
	c.size[ra] += c.size[rb]
	c.lists[ra] = merged
	c.lists[rb] = nil
	return ra
}

// mergeRoots merges the pre-DFS-ordered member lists of roots ra and rb in
// linear time, retiring both roots' list storage. The merge lands in one of
// the existing backing arrays when it fits (a backward merge, so the
// occupant is never overwritten before it is read); otherwise it goes to a
// free-listed or fresh array with append-style headroom, so a class absorbs
// many merges per allocation. Under Reference every merge allocates a fresh
// exact-size list — the pre-pooling behaviour the trajectory benchmark
// compares against.
func (c *Classes) mergeRoots(ra, rb ir.VarID) []ir.VarID {
	x, y := c.Members(ra), c.Members(rb)
	need := len(x) + len(y)
	if c.Reference {
		return c.mergeForward(make([]ir.VarID, 0, need), x, y)
	}
	ax, ay := c.lists[ra], c.lists[rb]
	c.lists[ra], c.lists[rb] = nil, nil
	if cap(ax) >= need {
		c.releaseList(ay)
		return c.mergeBackward(ax[:need], x, y)
	}
	if cap(ay) >= need {
		c.releaseList(ax)
		return c.mergeBackward(ay[:need], y, x)
	}
	out := c.mergeForward(c.takeList(need), x, y)
	c.releaseList(ax)
	c.releaseList(ay)
	return out
}

// mergeForward merges x and y into out (which must not alias either).
func (c *Classes) mergeForward(out, x, y []ir.VarID) []ir.VarID {
	i, j := 0, 0
	for i < len(x) && j < len(y) {
		if c.less(x[i], y[j]) {
			out = append(out, x[i])
			i++
		} else {
			out = append(out, y[j])
			j++
		}
	}
	out = append(out, x[i:]...)
	return append(out, y[j:]...)
}

// mergeBackward merges x and y into out, where x occupies the front of
// out's backing array. Writing from the back, the write index always stays
// ahead of the unread suffix of x; once y is exhausted the remaining prefix
// of x is already in place.
func (c *Classes) mergeBackward(out, x, y []ir.VarID) []ir.VarID {
	i, j := len(x)-1, len(y)-1
	for k := len(out) - 1; j >= 0; k-- {
		if i >= 0 && c.less(y[j], x[i]) {
			out[k] = x[i]
			i--
		} else {
			out[k] = y[j]
			j--
		}
	}
	return out
}

// takeList returns an empty list with capacity at least need from the pool.
func (c *Classes) takeList(need int) []ir.VarID { return c.pool.take(need) }

// releaseList retires a backing array for reuse by later merges.
func (c *Classes) releaseList(a []ir.VarID) { c.pool.put(a) }

// maxPre returns the nearer of two dominating ancestors: the one whose
// definition point comes later in pre-DFS order. NoVar loses to anything.
func (c *Classes) maxPre(x, y ir.VarID) ir.VarID {
	switch {
	case x == ir.NoVar:
		return y
	case y == ir.NoVar:
		return x
	case c.less(x, y):
		return y
	default:
		return x
	}
}

// recomputeEqualAnc rebuilds equalAncIn for a class given as a pre-DFS
// ordered list, by simulating the dominance-forest traversal and scanning
// the ancestor stack for the nearest same-value intersecting member.
func (c *Classes) recomputeEqualAnc(list []ir.VarID) {
	dom := c.takeStack()
	for _, cur := range list {
		for len(dom) > 0 && !c.chk.DefDominates(dom[len(dom)-1].v, cur) {
			dom = dom[:len(dom)-1]
		}
		c.equalAncIn[cur] = ir.NoVar
		for i := len(dom) - 1; i >= 0; i-- {
			anc := dom[i].v
			if c.chk.Value(anc) == c.chk.Value(cur) && c.chk.Intersect(anc, cur) {
				c.equalAncIn[cur] = anc
				break
			}
		}
		dom = append(dom, stackEntry{v: cur})
	}
	c.putStack(dom)
}
