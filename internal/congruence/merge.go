package congruence

import "repro/internal/ir"

// Merge coalesces the classes of a and b. It must be called right after an
// InterferesLinear(a, b) call that returned false: the equal-intersecting-
// ancestor information computed during that check is folded into the merged
// class (paper: "the equal intersecting ancestor for the combined set is
// updated to the maximum, following the pre-DFS order, of equal_anc_in and
// equal_anc_out").
func (c *Classes) Merge(a, b ir.VarID) ir.VarID {
	ra, rb := c.Find(a), c.Find(b)
	if ra == rb {
		return ra
	}
	merged := c.mergeLists(c.Members(ra), c.Members(rb))
	for _, v := range merged {
		c.equalAncIn[v] = c.maxPre(c.equalAncIn[v], c.getOut(v))
	}
	return c.link(ra, rb, merged)
}

// MergeForced coalesces two classes unconditionally — used for the φ-node
// classes of Method I (whose members are coalesced by construction) and for
// pre-coalescing variables pinned to the same register. The equal-
// intersecting-ancestor chains of the merged class are recomputed with one
// stack traversal.
func (c *Classes) MergeForced(a, b ir.VarID) ir.VarID {
	ra, rb := c.Find(a), c.Find(b)
	if ra == rb {
		return ra
	}
	merged := c.mergeLists(c.Members(ra), c.Members(rb))
	c.recomputeEqualAnc(merged)
	return c.link(ra, rb, merged)
}

// MergeSimple coalesces two classes without maintaining the equal-
// intersecting-ancestor chains. It is the merge used by the quadratic
// machinery variants, which never consult the chains.
func (c *Classes) MergeSimple(a, b ir.VarID) ir.VarID {
	ra, rb := c.Find(a), c.Find(b)
	if ra == rb {
		return ra
	}
	return c.link(ra, rb, c.mergeLists(c.Members(ra), c.Members(rb)))
}

// link performs the union-find merge of roots ra and rb with the merged
// member list, propagating register labels.
func (c *Classes) link(ra, rb ir.VarID, merged []ir.VarID) ir.VarID {
	if c.size[ra] < c.size[rb] {
		ra, rb = rb, ra
	}
	c.parent[rb] = ra
	c.size[ra] += c.size[rb]
	c.lists[ra] = merged
	delete(c.lists, rb)
	if r, ok := c.reg[rb]; ok {
		c.reg[ra] = r
		delete(c.reg, rb)
	}
	return ra
}

// mergeLists merges two pre-DFS-ordered member lists in linear time.
func (c *Classes) mergeLists(x, y []ir.VarID) []ir.VarID {
	out := make([]ir.VarID, 0, len(x)+len(y))
	i, j := 0, 0
	for i < len(x) && j < len(y) {
		if c.less(x[i], y[j]) {
			out = append(out, x[i])
			i++
		} else {
			out = append(out, y[j])
			j++
		}
	}
	out = append(out, x[i:]...)
	out = append(out, y[j:]...)
	return out
}

// maxPre returns the nearer of two dominating ancestors: the one whose
// definition point comes later in pre-DFS order. NoVar loses to anything.
func (c *Classes) maxPre(x, y ir.VarID) ir.VarID {
	switch {
	case x == ir.NoVar:
		return y
	case y == ir.NoVar:
		return x
	case c.less(x, y):
		return y
	default:
		return x
	}
}

// recomputeEqualAnc rebuilds equalAncIn for a class given as a pre-DFS
// ordered list, by simulating the dominance-forest traversal and scanning
// the ancestor stack for the nearest same-value intersecting member.
func (c *Classes) recomputeEqualAnc(list []ir.VarID) {
	var dom []ir.VarID
	for _, cur := range list {
		for len(dom) > 0 && !c.chk.DefDominates(dom[len(dom)-1], cur) {
			dom = dom[:len(dom)-1]
		}
		c.equalAncIn[cur] = ir.NoVar
		for i := len(dom) - 1; i >= 0; i-- {
			anc := dom[i]
			if c.chk.Value(anc) == c.chk.Value(cur) && c.chk.Intersect(anc, cur) {
				c.equalAncIn[cur] = anc
				break
			}
		}
		dom = append(dom, cur)
	}
}
