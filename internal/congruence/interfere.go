package congruence

import "repro/internal/ir"

// Pred is a variable-to-variable interference predicate used by the
// quadratic class test; x and y always belong to different classes.
type Pred func(x, y ir.VarID) bool

// stackEntry is one frame of the simulated dominance-forest traversal: a
// variable and which of the two classes ("red" or "blue") it came from.
type stackEntry struct {
	v   ir.VarID
	red bool
}

// takeStack hands out the reusable traversal stack (empty). Under Reference
// it returns nil so every traversal allocates afresh, as the pre-pooling
// implementation did.
func (c *Classes) takeStack() []stackEntry {
	if c.Reference {
		return nil
	}
	s := c.stack
	c.stack = nil
	return s[:0]
}

// putStack returns the (possibly grown) traversal stack to the pool.
func (c *Classes) putStack(s []stackEntry) {
	if !c.Reference {
		c.stack = s
	}
}

// InterferesQuadratic tests interference between the classes of a and b by
// testing every cross pair, the baseline the paper's "Linear" option
// replaces. exemptA/exemptB, when valid, skip the single pair
// (exemptA, exemptB) — Sreedhar's SSA-based coalescing rule, which omits
// the copy-related pair itself.
func (c *Classes) InterferesQuadratic(a, b ir.VarID, pred Pred, exemptA, exemptB ir.VarID) bool {
	if c.SameClass(a, b) {
		return false
	}
	for _, x := range c.Members(a) {
		for _, y := range c.Members(b) {
			if x == exemptA && y == exemptB || x == exemptB && y == exemptA {
				continue
			}
			c.Tests++
			if pred(x, y) {
				return true
			}
		}
	}
	return false
}

// InterferesLinear tests interference between the classes of a and b with
// the paper's merged dominance-forest traversal: a linear number of
// intersection tests in the total size of the two classes. When the checker
// carries value information the value-based definition is used, with
// equal-intersecting-ancestor chains; otherwise it degrades to the pure
// intersection test of Algorithm 2.
//
// A successful (non-interfering) call leaves the equal_anc_out scratch
// valid; Merge must be the next class operation to consume it, as in the
// paper's coalescing loop.
func (c *Classes) InterferesLinear(a, b ir.VarID) bool {
	ra, rb := c.Find(a), c.Find(b)
	if ra == rb {
		return false
	}
	c.epoch++
	red, blue := c.Members(ra), c.Members(rb)

	dom := c.takeStack()
	defer func() { c.putStack(dom) }()
	nr, nb := 0, 0 // stack entries from red / blue
	ri, bi := 0, 0

	for (ri < len(red) && nb > 0) || (bi < len(blue) && nr > 0) ||
		(ri < len(red) && bi < len(blue)) {
		var cur ir.VarID
		var curRed bool
		if bi == len(blue) || (ri < len(red) && c.less(red[ri], blue[bi])) {
			cur, curRed = red[ri], true
			ri++
		} else {
			cur, curRed = blue[bi], false
			bi++
		}
		// Pop entries that do not dominate cur: by pre-DFS order they can
		// never dominate a later variable either.
		for len(dom) > 0 && !c.chk.DefDominates(dom[len(dom)-1].v, cur) {
			if dom[len(dom)-1].red {
				nr--
			} else {
				nb--
			}
			dom = dom[:len(dom)-1]
		}
		var parent ir.VarID = ir.NoVar
		parentRed := false
		if len(dom) > 0 {
			parent, parentRed = dom[len(dom)-1].v, dom[len(dom)-1].red
		}
		if c.interference(cur, curRed, parent, parentRed) {
			return true
		}
		dom = append(dom, stackEntry{cur, curRed})
		if curRed {
			nr++
		} else {
			nb++
		}
	}
	return false
}

// InterferesLinearPure is Algorithm 2's two-set form with the *pure
// intersection* definition (no value information): since both classes are
// intersection-free and all cross pairs visited so far tested clean, a new
// intersection can only appear between the current variable and its
// dominance-forest parent when the two belong to different classes.
func (c *Classes) InterferesLinearPure(a, b ir.VarID) bool {
	ra, rb := c.Find(a), c.Find(b)
	if ra == rb {
		return false
	}
	red, blue := c.Members(ra), c.Members(rb)
	dom := c.takeStack()
	defer func() { c.putStack(dom) }()
	nr, nb := 0, 0
	ri, bi := 0, 0
	for (ri < len(red) && nb > 0) || (bi < len(blue) && nr > 0) ||
		(ri < len(red) && bi < len(blue)) {
		var cur ir.VarID
		var curRed bool
		if bi == len(blue) || (ri < len(red) && c.less(red[ri], blue[bi])) {
			cur, curRed = red[ri], true
			ri++
		} else {
			cur, curRed = blue[bi], false
			bi++
		}
		for len(dom) > 0 && !c.chk.DefDominates(dom[len(dom)-1].v, cur) {
			if dom[len(dom)-1].red {
				nr--
			} else {
				nb--
			}
			dom = dom[:len(dom)-1]
		}
		if len(dom) > 0 && dom[len(dom)-1].red != curRed {
			c.Tests++
			if c.chk.Intersect(dom[len(dom)-1].v, cur) {
				return true
			}
		}
		dom = append(dom, stackEntry{cur, curRed})
		if curRed {
			nr++
		} else {
			nb++
		}
	}
	return false
}

// interference is the paper's Function interference: cur's parent in the
// merged dominance forest is parent (possibly NoVar). It reports whether
// cur interferes with any already-visited variable of the other class, and
// updates cur's equal-intersecting-ancestor in the other class.
func (c *Classes) interference(cur ir.VarID, curRed bool, parent ir.VarID, parentRed bool) bool {
	c.setOut(cur, ir.NoVar)
	if parent == ir.NoVar {
		return false
	}
	b := parent
	if parentRed == curRed {
		b = c.getOut(parent) // switch to the parent's chain in the other class
	}
	if b == ir.NoVar {
		return false
	}
	if c.chk.Value(cur) != c.chk.Value(b) {
		return c.chainIntersect(cur, b)
	}
	c.updateEqualAncOut(cur, b)
	return false
}

// chainIntersect reports whether a intersects b or one of b's
// equal-intersecting ancestors within b's own class.
func (c *Classes) chainIntersect(a, b ir.VarID) bool {
	for tmp := b; tmp != ir.NoVar; tmp = c.equalAncIn[tmp] {
		c.Tests++
		if c.chk.Intersect(a, tmp) {
			return true
		}
	}
	return false
}

// updateEqualAncOut walks b's equal-intersecting-ancestor chain (same value
// as a, other class) to the nearest member intersecting a, recording it as
// a's equal-intersecting ancestor in the other class.
func (c *Classes) updateEqualAncOut(a, b ir.VarID) {
	tmp := b
	for tmp != ir.NoVar {
		c.Tests++
		if c.chk.Intersect(a, tmp) {
			break
		}
		tmp = c.equalAncIn[tmp]
	}
	c.setOut(a, tmp)
}

func (c *Classes) setOut(v, anc ir.VarID) {
	c.equalAncOut[v] = anc
	c.outEpoch[v] = c.epoch
}

func (c *Classes) getOut(v ir.VarID) ir.VarID {
	if c.outEpoch[v] != c.epoch {
		return ir.NoVar // not visited during the current check
	}
	return c.equalAncOut[v]
}
