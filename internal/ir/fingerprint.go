package ir

import "math"

// Fingerprint is a 128-bit canonical structural hash of a function: the
// block/edge structure, φ and body instructions, operand IDs, auxiliary
// constants, block frequencies, and register pins — everything translation
// decisions depend on — and nothing they do not: variable and block names
// never enter the hash, so two functions that differ only in naming
// collide by design. Two independent 64-bit lanes make a silent collision
// between structurally different functions (which would hand a memoized
// translation to the wrong input) negligible.
type Fingerprint struct {
	Hi, Lo uint64
}

// FNV-1a offsets/primes for the first lane; the second lane runs the same
// multiply-xor scheme with independent constants (splitmix64's increment
// and one of its mix multipliers), so the lanes do not cancel together.
const (
	fpOffsetHi = 0x9e3779b97f4a7c15
	fpPrimeHi  = 0xbf58476d1ce4e5b9
	fpOffsetLo = 14695981039346656037
	fpPrimeLo  = 1099511628211
)

// fpLanes accumulates the two hash lanes.
type fpLanes struct{ hi, lo uint64 }

func newFPLanes() fpLanes { return fpLanes{hi: fpOffsetHi, lo: fpOffsetLo} }

func (h *fpLanes) word(x uint64) {
	h.hi = (h.hi ^ x) * fpPrimeHi
	h.lo = (h.lo ^ x) * fpPrimeLo
}

func (h *fpLanes) str(s string) {
	h.word(uint64(len(s)))
	for i := 0; i < len(s); i++ {
		h.word(uint64(s[i]))
	}
}

// Fingerprint returns the function's structural hash. The result is cached
// against the generation counters, and when the edits since the last
// computation are fully attributed in the dirty-block log (MarkBlockMutated
// with no intervening wholesale mutation or CFG change), only the touched
// blocks are re-hashed: each block contributes one summand per lane, so the
// total is patched by subtracting the stale contributions and adding the
// fresh ones. Anything else falls back to a full pass over the function.
func (f *Func) Fingerprint() Fingerprint {
	if f.fpValid && f.fpCFG == f.cfgGen && f.fpCode == f.codeGen {
		return f.fp
	}
	if f.fpValid && f.fpCFG == f.cfgGen && f.fpNVars == len(f.Vars) {
		if dirty, ok := f.DirtySince(f.fpCode, nil); ok {
			for _, b := range dirty {
				old := f.fpBlocks[b]
				nw := blockLanes(f.Blocks[b])
				f.fpBlocks[b] = nw
				f.fp.Hi += nw[0] - old[0]
				f.fp.Lo += nw[1] - old[1]
			}
			f.fpCode = f.codeGen
			return f.fp
		}
	}
	f.fingerprintFull()
	return f.fp
}

// fingerprintFull recomputes the header and every per-block contribution.
func (f *Func) fingerprintFull() {
	h := newFPLanes()
	h.word(uint64(f.NumParams))
	h.word(uint64(len(f.Vars)))
	h.word(uint64(len(f.Blocks)))
	for _, v := range f.Vars {
		// Reg pins feed precoalescing; Name and base are display-only.
		if v.Reg == "" {
			h.word(0)
		} else {
			h.str(v.Reg)
		}
	}
	f.fpHdrHi, f.fpHdrLo = h.hi, h.lo

	if cap(f.fpBlocks) < len(f.Blocks) {
		f.fpBlocks = make([][2]uint64, len(f.Blocks))
	}
	f.fpBlocks = f.fpBlocks[:len(f.Blocks)]
	hi, lo := f.fpHdrHi, f.fpHdrLo
	for i, b := range f.Blocks {
		bl := blockLanes(b)
		f.fpBlocks[i] = bl
		hi += bl[0]
		lo += bl[1]
	}
	f.fp = Fingerprint{Hi: hi, Lo: lo}
	f.fpCFG, f.fpCode = f.cfgGen, f.codeGen
	f.fpNVars = len(f.Vars)
	f.fpValid = true
}

// blockLanes hashes one block's structure into a per-lane summand. The
// block's own position seeds the lanes, so the wrapping sum over blocks
// stays position-sensitive while remaining patchable per block.
func blockLanes(b *Block) [2]uint64 {
	h := newFPLanes()
	h.word(uint64(b.ID))
	h.word(math.Float64bits(b.Freq))
	h.word(uint64(len(b.Preds)))
	for _, p := range b.Preds {
		h.word(uint64(p.ID))
	}
	h.word(uint64(len(b.Succs)))
	for _, s := range b.Succs {
		h.word(uint64(s.ID))
	}
	h.word(uint64(len(b.Phis)))
	for _, in := range b.Phis {
		instrLanes(&h, in)
	}
	h.word(uint64(len(b.Instrs)))
	for _, in := range b.Instrs {
		instrLanes(&h, in)
	}
	return [2]uint64{h.hi, h.lo}
}

func instrLanes(h *fpLanes, in *Instr) {
	h.word(uint64(in.Op))
	h.word(uint64(in.Aux))
	h.word(uint64(len(in.Defs)))
	for _, d := range in.Defs {
		h.word(uint64(uint32(d)))
	}
	h.word(uint64(len(in.Uses)))
	for _, u := range in.Uses {
		h.word(uint64(uint32(u)))
	}
}
