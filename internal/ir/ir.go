// Package ir defines the intermediate representation used by the out-of-SSA
// translator: a control-flow graph of basic blocks holding three-address
// instructions, φ-functions with parallel-copy semantics, explicit parallel
// copy instructions, and the DSP-style branch-with-decrement terminator
// (Br_dec) that the paper uses to show that copy insertion alone cannot
// always translate out of SSA (Figure 2).
//
// The representation is deliberately simple: variables are indices into a
// per-function universe, instructions carry explicit def and use lists, and
// φ-function arguments are positionally matched with block predecessors.
package ir

import "fmt"

// VarID identifies a variable within a Func. NoVar marks an absent variable.
type VarID int32

// NoVar is the invalid variable ID.
const NoVar VarID = -1

// Var is a program variable. In SSA form each Var has exactly one defining
// instruction. Reg, when non-empty, pins the variable to an architectural
// register (calling conventions, dedicated registers); pinned variables are
// handled as described in Section III-D of the paper.
//
// Name may be empty: VarName then synthesizes a printable name on demand —
// "v<id>" for plain variables, the base's name plus a prime for variables
// created with NewDerivedVar. Deferring the string keeps the translation
// hot path free of per-variable string allocations.
type Var struct {
	ID   VarID
	Name string
	Reg  string

	// base, when not NoVar, is the variable this one was derived from
	// (NewDerivedVar); its display name is the base's name primed.
	base VarID
}

// Op is an instruction opcode.
type Op uint8

// Opcodes. OpJump..OpRet are terminators and must appear last in a block.
const (
	OpNop Op = iota
	OpConst
	OpParam
	OpCopy
	OpAdd
	OpSub
	OpMul
	OpNeg
	OpCmpLT
	OpCmpEQ
	OpPhi
	OpParCopy
	OpPrint
	OpJump
	OpBranch
	OpBrDec
	OpRet
)

var opNames = [...]string{
	OpNop:     "nop",
	OpConst:   "const",
	OpParam:   "param",
	OpCopy:    "copy",
	OpAdd:     "add",
	OpSub:     "sub",
	OpMul:     "mul",
	OpNeg:     "neg",
	OpCmpLT:   "cmplt",
	OpCmpEQ:   "cmpeq",
	OpPhi:     "phi",
	OpParCopy: "parcopy",
	OpPrint:   "print",
	OpJump:    "jump",
	OpBranch:  "br",
	OpBrDec:   "brdec",
	OpRet:     "ret",
}

func (op Op) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// IsTerminator reports whether op ends a basic block.
func (op Op) IsTerminator() bool { return op >= OpJump }

// DefinesAfterCopyPoint reports whether the terminator defines a variable
// after the pre-terminator copy-insertion point. Only Br_dec does: its
// decremented counter is written by the branch itself, so no copy can be
// placed between that definition and the block's outgoing edges (paper,
// Figure 2).
func (op Op) DefinesAfterCopyPoint() bool { return op == OpBrDec }

// Instr is a single instruction. Defs and Uses are variable operand lists:
//
//   - OpConst: Defs[0] = Aux (an integer literal)
//   - OpParam: Defs[0] = function input number Aux
//   - OpCopy: Defs[0] = Uses[0]
//   - arithmetic ops: Defs[0] = op(Uses...)
//   - OpPhi: Defs[0] = φ(Uses...), Uses[i] flowing from Block.Preds[i]
//   - OpParCopy: Defs[i] = Uses[i], all reads before all writes
//   - OpPrint: observable output of Uses[0]
//   - OpJump: to Succs[0]
//   - OpBranch: Uses[0] != 0 → Succs[0], else Succs[1]
//   - OpBrDec: Defs[0] = Uses[0]-1, then Defs[0] != 0 → Succs[0] else Succs[1]
//   - OpRet: returns Uses[0] if present
type Instr struct {
	Op   Op
	Defs []VarID
	Uses []VarID
	Aux  int64
}

// Def returns the single definition of the instruction, or NoVar.
func (in *Instr) Def() VarID {
	if len(in.Defs) == 1 {
		return in.Defs[0]
	}
	return NoVar
}

// IsCopyOf reports whether in copies src into dst (either a plain copy or a
// parallel-copy component).
func (in *Instr) IsCopyOf(dst, src VarID) bool {
	switch in.Op {
	case OpCopy:
		return in.Defs[0] == dst && in.Uses[0] == src
	case OpParCopy:
		for i, d := range in.Defs {
			if d == dst && in.Uses[i] == src {
				return true
			}
		}
	}
	return false
}

// Block is a basic block. Phis hold the φ-functions (conceptually executed
// in parallel at block entry); Instrs holds the ordinary instructions, the
// last of which must be a terminator. Freq is the estimated execution
// frequency used as the coalescing affinity weight.
type Block struct {
	ID     int
	Name   string
	Preds  []*Block
	Succs  []*Block
	Phis   []*Instr
	Instrs []*Instr
	Freq   float64
}

// Terminator returns the block's final instruction, or nil if absent.
func (b *Block) Terminator() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	t := b.Instrs[len(b.Instrs)-1]
	if !t.Op.IsTerminator() {
		return nil
	}
	return t
}

// PredIndex returns the position of p in b.Preds, or -1.
func (b *Block) PredIndex(p *Block) int {
	for i, q := range b.Preds {
		if q == p {
			return i
		}
	}
	return -1
}

// NumPoints returns the number of instruction slots in the block
// (φ-functions count as a single parallel slot 0 when present).
func (b *Block) NumPoints() int { return len(b.Phis) + len(b.Instrs) }

// Func is a function: a variable universe plus a CFG. Blocks[0] is the
// entry block. Block IDs always equal their index in Blocks.
//
// Two monotonic generation counters track mutation so analyses can be
// cached and invalidated precisely (the pass-manager protocol in
// internal/analysis): cfgGen advances whenever the block/edge structure
// changes, codeGen whenever instructions or the variable universe change.
// A CFG mutation advances both — renumbering blocks invalidates every
// instruction-level index too. The ir mutators below bump the counters
// themselves; code that edits Blocks/Instrs/Defs/Uses slices directly must
// call MarkCFGMutated or MarkCodeMutated to keep cached analyses honest.
type Func struct {
	Name      string
	Blocks    []*Block
	Vars      []*Var
	NumParams int

	cfgGen  uint64
	codeGen uint64

	// Dirty-block log: MarkBlockMutated appends one record per attributed
	// instruction-level edit, so analyses can repair themselves from the
	// exact set of touched blocks instead of recomputing (DirtySince). A
	// wholesale MarkCodeMutated/MarkCFGMutated — or a log overflow — raises
	// dirtyFloor to the current code generation, poisoning every older
	// baseline back to full recomputation.
	dirtyLog   []dirtyRec
	dirtyFloor uint64

	// Cached structural fingerprint (see fingerprint.go), valid while both
	// generations still match fpCFG/fpCode.
	fp               Fingerprint
	fpCFG, fpCode    uint64
	fpValid          bool
	fpBlocks         [][2]uint64 // per-block hash lanes, for incremental update
	fpHdrHi, fpHdrLo uint64      // header (vars/params) contribution
	fpNVars          int         // var-universe size the header was hashed at

	// Chunked arenas backing the function's Instr/Var records and small
	// operand slices (see slab.go). Their memory lives as long as the
	// function and is rewound by CloneInto.
	instrs instrArena
	vars   varArena
	ids    idArena

	// spareBlocks recycles Block records detached by CleanupJumpBlocks or
	// left over by CloneInto, so edge splitting and re-cloning reuse their
	// records and edge/instruction slice backing.
	spareBlocks []*Block
}

// CFGGen returns the generation of the block/edge structure.
func (f *Func) CFGGen() uint64 { return f.cfgGen }

// CodeGen returns the generation of the instruction/variable contents.
func (f *Func) CodeGen() uint64 { return f.codeGen }

// MarkCFGMutated records a change to the block/edge structure. It also
// advances the code generation: block removal or renumbering invalidates
// instruction-level analyses such as def-use and liveness.
func (f *Func) MarkCFGMutated() {
	f.cfgGen++
	f.codeGen++
	f.dirtyFloor = f.codeGen
	f.dirtyLog = f.dirtyLog[:0]
}

// MarkCodeMutated records a change to instructions or variables that left
// the block/edge structure intact (dominance stays valid, def-use and
// liveness do not). The change is unattributed: any baseline older than
// this generation can no longer be repaired from the dirty log.
func (f *Func) MarkCodeMutated() {
	f.codeGen++
	f.dirtyFloor = f.codeGen
	f.dirtyLog = f.dirtyLog[:0]
}

// dirtyRec is one dirty-log entry: block b was edited at code generation g.
type dirtyRec struct {
	gen   uint64
	block int32
}

// dirtyLogCap bounds the log; beyond it, per-block attribution stops paying
// for itself and the log degenerates to a wholesale invalidation.
const dirtyLogCap = 64

// MarkBlockMutated records an instruction-level edit attributed to block b:
// φ or body contents changed, but the block/edge structure did not. Unlike
// MarkCodeMutated, analyses that saw an earlier generation can repair
// themselves from the touched-block set (DirtySince) instead of
// recomputing. An edit that also changes the variable universe must mint
// the variables first (NewVar poisons the log) and then mark the edited
// blocks.
func (f *Func) MarkBlockMutated(b *Block) {
	f.codeGen++
	if len(f.dirtyLog) >= dirtyLogCap {
		f.dirtyFloor = f.codeGen
		f.dirtyLog = f.dirtyLog[:0]
		return
	}
	f.dirtyLog = append(f.dirtyLog, dirtyRec{gen: f.codeGen, block: int32(b.ID)})
}

// DirtySince returns the deduplicated IDs of the blocks edited after code
// generation g, appended to dst. ok is false when the edits since g are not
// fully attributed (a wholesale mutation or log overflow intervened) — the
// caller must fall back to recomputation. A valid baseline with no edits
// returns (dst, true).
func (f *Func) DirtySince(g uint64, dst []int32) (dirty []int32, ok bool) {
	if g < f.dirtyFloor {
		return dst, false
	}
	base := len(dst)
	for _, rec := range f.dirtyLog {
		if rec.gen <= g {
			continue
		}
		dup := false
		for _, b := range dst[base:] {
			if b == rec.block {
				dup = true
				break
			}
		}
		if !dup {
			dst = append(dst, rec.block)
		}
	}
	return dst, true
}

// NewFunc returns an empty function.
func NewFunc(name string) *Func { return &Func{Name: name} }

// NewVar adds a fresh variable with the given name to the universe. An
// empty name is kept empty and synthesized lazily by VarName ("v<id>"), so
// minting anonymous variables performs no string allocation.
func (f *Func) NewVar(name string) VarID {
	id := VarID(len(f.Vars))
	v := f.vars.alloc()
	*v = Var{ID: id, Name: name, base: NoVar}
	f.Vars = append(f.Vars, v)
	f.MarkCodeMutated()
	return id
}

// NewDerivedVar adds a fresh variable derived from base — the primed
// variables a' of copy insertion. The display name is the base's name plus
// a prime, synthesized only when asked for, so materializing copies does
// not allocate name strings.
func (f *Func) NewDerivedVar(base VarID) VarID {
	id := f.NewVar("")
	f.Vars[id].base = base
	return id
}

// NewPinnedVar adds a fresh variable pinned to architectural register reg.
func (f *Func) NewPinnedVar(name, reg string) VarID {
	id := f.NewVar(name)
	f.Vars[id].Reg = reg
	return id
}

// VarName returns a printable name for v, synthesizing one when the record
// carries no explicit name: "v<id>" for plain variables, the base's name
// primed for derived variables.
func (f *Func) VarName(v VarID) string {
	if v == NoVar {
		return "_"
	}
	vr := f.Vars[v]
	if vr.Name != "" {
		return vr.Name
	}
	if vr.base != NoVar {
		return f.VarName(vr.base) + "'"
	}
	return fmt.Sprintf("v%d", v)
}

// NewBlock appends a fresh block with frequency 1, reusing a recycled
// block record (and its slice backing) when one is available.
func (f *Func) NewBlock(name string) *Block {
	b := f.takeBlock()
	b.ID, b.Name, b.Freq = len(f.Blocks), name, 1
	if name == "" {
		b.Name = fmt.Sprintf("b%d", b.ID)
	}
	f.Blocks = append(f.Blocks, b)
	f.MarkCFGMutated()
	return b
}

// takeBlock returns a cleared block record from the spare list, or a fresh
// one. The record's slices are truncated, keeping their backing.
func (f *Func) takeBlock() *Block {
	n := len(f.spareBlocks)
	if n == 0 {
		return &Block{}
	}
	b := f.spareBlocks[n-1]
	f.spareBlocks = f.spareBlocks[:n-1]
	b.Preds = b.Preds[:0]
	b.Succs = b.Succs[:0]
	b.Phis = b.Phis[:0]
	b.Instrs = b.Instrs[:0]
	return b
}

// retireBlock hands a detached block record to the spare list for reuse.
// The caller must ensure nothing references it anymore.
func (f *Func) retireBlock(b *Block) { f.spareBlocks = append(f.spareBlocks, b) }

// Entry returns the entry block.
func (f *Func) Entry() *Block { return f.Blocks[0] }

// AddEdge records a control-flow edge from → to, keeping Preds/Succs
// consistent. The successor order of a block matches the operand order of
// its terminator (taken target first for branches).
func AddEdge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// NumInstrs returns the total instruction count of the function, φs included.
func (f *Func) NumInstrs() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Phis) + len(b.Instrs)
	}
	return n
}
