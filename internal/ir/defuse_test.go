package ir_test

import (
	"math/rand"
	"testing"

	"repro/internal/cfggen"
	"repro/internal/ir"
)

// usesSorted fails the test if the use list of any variable of f is not
// (block, slot)-sorted.
func usesSorted(t *testing.T, f *ir.Func, du *ir.DefUse) {
	t.Helper()
	for v := range f.Vars {
		us := du.Uses(ir.VarID(v))
		for i := 1; i < len(us); i++ {
			a, b := us[i-1], us[i]
			if a.Block > b.Block || (a.Block == b.Block && a.Slot > b.Slot) {
				t.Fatalf("%s: uses of %s not sorted: %v before %v",
					f.Name, f.VarName(ir.VarID(v)), a, b)
			}
		}
	}
}

// bruteUsedInBlockAfter is the linear-scan reference of UsedInBlockAfter.
func bruteUsedInBlockAfter(du *ir.DefUse, v ir.VarID, block int, slot int32) bool {
	for _, u := range du.Uses(v) {
		if int(u.Block) == block && u.Slot > slot {
			return true
		}
	}
	return false
}

func TestDefUseListsSorted(t *testing.T) {
	p := cfggen.DefaultProfile("dusort", 71)
	p.Funcs = 6
	for _, f := range cfggen.Generate(p) {
		usesSorted(t, f, ir.NewDefUse(f))
	}
}

func TestUsedInBlockAfterMatchesScan(t *testing.T) {
	p := cfggen.DefaultProfile("duquery", 73)
	p.Funcs = 4
	for _, f := range cfggen.Generate(p) {
		du := ir.NewDefUse(f)
		for v := range f.Vars {
			vid := ir.VarID(v)
			for _, b := range f.Blocks {
				for slot := int32(-1); slot <= int32(len(b.Instrs))+1; slot++ {
					got := du.UsedInBlockAfter(vid, b.ID, slot)
					want := bruteUsedInBlockAfter(du, vid, b.ID, slot)
					if got != want {
						t.Fatalf("%s: UsedInBlockAfter(%s, %d, %d) = %v, scan says %v",
							f.Name, f.VarName(vid), b.ID, slot, got, want)
					}
				}
				// φ-use lookups: exact key and the "nothing after a φ use"
				// boundary.
				wantPhi := false
				for _, u := range du.Uses(vid) {
					if int(u.Block) == b.ID && u.Slot == ir.PhiUseSlot {
						wantPhi = true
					}
				}
				if got := du.HasUseAt(vid, b.ID, ir.PhiUseSlot); got != wantPhi {
					t.Fatalf("%s: HasUseAt(%s, %d, φ) = %v, want %v",
						f.Name, f.VarName(vid), b.ID, got, wantPhi)
				}
				if du.UsedInBlockAfter(vid, b.ID, ir.PhiUseSlot) {
					t.Fatalf("%s: a use after the φ slot cannot exist", f.Name)
				}
			}
			// UsedOutsideBlock against a scan.
			for _, b := range f.Blocks {
				want := false
				for _, u := range du.Uses(vid) {
					if int(u.Block) != b.ID {
						want = true
					}
				}
				if got := du.UsedOutsideBlock(vid, b.ID); got != want {
					t.Fatalf("%s: UsedOutsideBlock(%s, %d) = %v, want %v",
						f.Name, f.VarName(vid), b.ID, got, want)
				}
			}
		}
	}
}

// TestAddRemoveUseKeepOrder hammers AddUse/RemoveUse with random sites and
// checks the sorted invariant plus the exact multiset after every step.
func TestAddRemoveUseKeepOrder(t *testing.T) {
	p := cfggen.DefaultProfile("dumut", 79)
	p.Funcs = 2
	rng := rand.New(rand.NewSource(7))
	for _, f := range cfggen.Generate(p) {
		du := ir.NewDefUse(f)
		type site struct {
			v     ir.VarID
			block int
			slot  int32
			in    *ir.Instr
		}
		var added []site
		marker := &ir.Instr{Op: ir.OpCopy}
		for step := 0; step < 200; step++ {
			if len(added) == 0 || rng.Intn(3) != 0 {
				v := ir.VarID(rng.Intn(len(f.Vars)))
				b := rng.Intn(len(f.Blocks))
				slot := int32(rng.Intn(20))
				if rng.Intn(8) == 0 {
					slot = ir.PhiUseSlot
				}
				du.AddUse(v, b, slot, marker)
				added = append(added, site{v, b, slot, marker})
			} else {
				i := rng.Intn(len(added))
				s := added[i]
				du.RemoveUse(s.v, s.block, s.slot, s.in)
				added = append(added[:i], added[i+1:]...)
			}
		}
		usesSorted(t, f, du)
		// Every recorded site must still be findable, then removable.
		for _, s := range added {
			if !du.HasUseAt(s.v, s.block, s.slot) {
				t.Fatalf("added use of %s at (%d,%d) lost", f.VarName(s.v), s.block, s.slot)
			}
			du.RemoveUse(s.v, s.block, s.slot, s.in)
		}
		usesSorted(t, f, du)
	}
}

func TestRemoveUseUnrecordedPanics(t *testing.T) {
	f := ir.MustParse("func f {\nentry:\n  x = const 1\n  ret x\n}")
	du := ir.NewDefUse(f)
	defer func() {
		if recover() == nil {
			t.Fatal("RemoveUse of an unrecorded use must panic")
		}
	}()
	du.RemoveUse(ir.VarID(0), 0, 99, &ir.Instr{Op: ir.OpCopy})
}
