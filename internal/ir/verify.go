package ir

import "fmt"

// Verify checks the structural integrity of the CFG: block IDs match
// indices, edges are symmetric, every reachable block ends in a terminator,
// φ argument counts match predecessor counts, terminators appear only in
// final position, and operand lists have the arities their opcodes demand.
func Verify(f *Func) error {
	for i, b := range f.Blocks {
		if b.ID != i {
			return fmt.Errorf("block %s: ID %d != index %d", b.Name, b.ID, i)
		}
		for _, s := range b.Succs {
			if s.PredIndex(b) < 0 {
				return fmt.Errorf("edge %s->%s not recorded in preds", b.Name, s.Name)
			}
		}
		for _, p := range b.Preds {
			found := false
			for _, s := range p.Succs {
				if s == b {
					found = true
				}
			}
			if !found {
				return fmt.Errorf("pred edge %s->%s not recorded in succs", p.Name, b.Name)
			}
		}
		t := b.Terminator()
		if t == nil {
			return fmt.Errorf("block %s: missing terminator", b.Name)
		}
		for j, in := range b.Instrs {
			if in.Op.IsTerminator() && j != len(b.Instrs)-1 {
				return fmt.Errorf("block %s: terminator %s at non-final position %d", b.Name, in.Op, j)
			}
			if in.Op == OpPhi {
				return fmt.Errorf("block %s: phi in instruction body", b.Name)
			}
			if err := checkArity(f, b, in); err != nil {
				return err
			}
		}
		for _, in := range b.Phis {
			if in.Op != OpPhi {
				return fmt.Errorf("block %s: non-phi %s in phi list", b.Name, in.Op)
			}
			if len(in.Uses) != len(b.Preds) {
				return fmt.Errorf("block %s: phi of %s has %d args for %d preds",
					b.Name, f.VarName(in.Defs[0]), len(in.Uses), len(b.Preds))
			}
		}
		switch t.Op {
		case OpJump:
			if len(b.Succs) != 1 {
				return fmt.Errorf("block %s: jump with %d successors", b.Name, len(b.Succs))
			}
		case OpBranch, OpBrDec:
			if len(b.Succs) != 2 {
				return fmt.Errorf("block %s: branch with %d successors", b.Name, len(b.Succs))
			}
		case OpRet:
			if len(b.Succs) != 0 {
				return fmt.Errorf("block %s: ret with successors", b.Name)
			}
		}
	}
	return nil
}

func checkArity(f *Func, b *Block, in *Instr) error {
	bad := func() error {
		return fmt.Errorf("block %s: %s has %d defs / %d uses", b.Name, in.Op, len(in.Defs), len(in.Uses))
	}
	for _, v := range in.Defs {
		if int(v) < 0 || int(v) >= len(f.Vars) {
			return fmt.Errorf("block %s: def of unknown variable %d", b.Name, v)
		}
	}
	for _, v := range in.Uses {
		if int(v) < 0 || int(v) >= len(f.Vars) {
			return fmt.Errorf("block %s: use of unknown variable %d", b.Name, v)
		}
	}
	switch in.Op {
	case OpConst, OpParam:
		if len(in.Defs) != 1 || len(in.Uses) != 0 {
			return bad()
		}
	case OpCopy, OpNeg, OpPrint:
		want := 1
		if in.Op == OpPrint {
			want = 0
		}
		if len(in.Defs) != want || len(in.Uses) != 1 {
			return bad()
		}
	case OpAdd, OpSub, OpMul, OpCmpLT, OpCmpEQ:
		if len(in.Defs) != 1 || len(in.Uses) != 2 {
			return bad()
		}
	case OpParCopy:
		if len(in.Defs) != len(in.Uses) {
			return bad()
		}
		seen := map[VarID]bool{}
		for _, d := range in.Defs {
			if seen[d] {
				return fmt.Errorf("block %s: parallel copy defines %s twice", b.Name, f.VarName(d))
			}
			seen[d] = true
		}
	case OpJump, OpNop:
		if len(in.Defs) != 0 || len(in.Uses) != 0 {
			return bad()
		}
	case OpBranch:
		if len(in.Defs) != 0 || len(in.Uses) != 1 {
			return bad()
		}
	case OpBrDec:
		if len(in.Defs) != 1 || len(in.Uses) != 1 {
			return bad()
		}
	case OpRet:
		if len(in.Defs) != 0 || len(in.Uses) > 1 {
			return bad()
		}
	}
	return nil
}
