package ir

import (
	"strings"
	"testing"
)

const sample = `
func f {
entry:
  a = param 0
  b = const 7
  c = add a b
  br c body exit
body (freq 10):
  d = phi entry:c body:e
  one = const 1
  e = sub d one
  print e
  br e body exit
exit:
  x = phi entry:c body:e
  ret x
}
`

func TestParsePrintRoundTrip(t *testing.T) {
	f := MustParse(sample)
	if err := Verify(f); err != nil {
		t.Fatal(err)
	}
	text := f.String()
	g, err := Parse(text)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, text)
	}
	if g.String() != text {
		t.Fatalf("round trip not stable:\n%s\nvs\n%s", text, g.String())
	}
}

func TestParseStructure(t *testing.T) {
	f := MustParse(sample)
	if len(f.Blocks) != 3 {
		t.Fatalf("blocks = %d", len(f.Blocks))
	}
	body := f.Blocks[1]
	if body.Name != "body" || body.Freq != 10 {
		t.Fatalf("body block wrong: %s freq %v", body.Name, body.Freq)
	}
	if len(body.Phis) != 1 || len(body.Preds) != 2 {
		t.Fatal("φ or preds wrong")
	}
	// φ argument order must match pred order.
	phi := body.Phis[0]
	for i, p := range body.Preds {
		arg := f.VarName(phi.Uses[i])
		if p.Name == "entry" && arg != "c" {
			t.Fatalf("arg for entry = %s", arg)
		}
		if p.Name == "body" && arg != "e" {
			t.Fatalf("arg for body = %s", arg)
		}
	}
	if f.NumParams != 1 {
		t.Fatalf("NumParams = %d", f.NumParams)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"func f {\nentry:\n  x = bogus y\n}",
		"func f {\n  x = const 1\n}",              // instruction outside block
		"func f {\nentry:\n  x = phi nosuch:y\n}", // unknown pred
		"func f {\nentry:\n  parcopy xy\n}",       // malformed parcopy operand
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestVerifyCatchesBrokenCFG(t *testing.T) {
	f := MustParse(sample)
	f.Blocks[0].Succs = f.Blocks[0].Succs[:1] // drop an edge one-sidedly
	if err := Verify(f); err == nil {
		t.Fatal("asymmetric edge not detected")
	}

	f = MustParse(sample)
	f.Blocks[2].Instrs = nil // remove terminator
	if err := Verify(f); err == nil {
		t.Fatal("missing terminator not detected")
	}

	f = MustParse(sample)
	f.Blocks[1].Phis[0].Uses = f.Blocks[1].Phis[0].Uses[:1]
	if err := Verify(f); err == nil {
		t.Fatal("φ arity mismatch not detected")
	}

	f = MustParse(sample)
	f.Blocks[0].Instrs = append(f.Blocks[0].Instrs, &Instr{Op: OpRet})
	if err := Verify(f); err == nil {
		t.Fatal("trailing instruction after terminator not detected")
	}
}

func TestDefUse(t *testing.T) {
	f := MustParse(sample)
	du := NewDefUse(f)
	c := findVar(f, "c")
	if du.DefBlock(c) != 0 {
		t.Fatalf("def block of c = %d", du.DefBlock(c))
	}
	uses := du.Uses(c)
	// c: branch use in entry, φ use (entry edge) ×2 for body and exit φs.
	var phiUses, branchUses int
	for _, u := range uses {
		if u.Slot == PhiUseSlot {
			if u.Block != 0 {
				t.Fatalf("φ use of c attributed to block %d", u.Block)
			}
			phiUses++
		} else {
			branchUses++
		}
	}
	if phiUses != 2 || branchUses != 1 {
		t.Fatalf("c uses: %d φ, %d direct", phiUses, branchUses)
	}

	e := findVar(f, "e")
	if du.DefSlot(e) <= 0 {
		t.Fatal("e defined in body at a positive slot")
	}
	d := findVar(f, "d")
	if du.DefSlot(d) != 0 {
		t.Fatal("φ defs live at slot 0")
	}
}

func TestDefUseRejectsDoubleDef(t *testing.T) {
	src := "func f {\nentry:\n  x = const 1\n  x = const 2\n  ret x\n}"
	f := MustParse(src)
	defer func() {
		if recover() == nil {
			t.Fatal("double definition must panic")
		}
	}()
	NewDefUse(f)
}

func TestCloneIndependence(t *testing.T) {
	f := MustParse(sample)
	g := Clone(f)
	if g.String() != f.String() {
		t.Fatal("clone must print identically")
	}
	g.Blocks[0].Instrs[0].Aux = 99
	g.Blocks[1].Phis[0].Uses[0] = 0
	g.Vars[0].Name = "zzz"
	if g.String() == f.String() {
		t.Fatal("mutating the clone must not affect the original")
	}
	for i, b := range g.Blocks {
		for j, p := range b.Preds {
			if p == f.Blocks[i].Preds[j] {
				t.Fatal("clone shares block pointers")
			}
		}
	}
}

func TestSplitEdge(t *testing.T) {
	f := MustParse(sample)
	entry, body := f.Blocks[0], f.Blocks[1]
	if !IsCriticalEdge(entry, body) {
		t.Fatal("entry→body is critical (2 succs, 2 preds)")
	}
	nb := SplitEdge(f, entry, body)
	if err := Verify(f); err != nil {
		t.Fatal(err)
	}
	if body.PredIndex(nb) != 0 {
		t.Fatal("new block must take over the pred slot")
	}
	if len(nb.Preds) != 1 || nb.Preds[0] != entry || len(nb.Succs) != 1 || nb.Succs[0] != body {
		t.Fatal("split block edges wrong")
	}
	// φ argument positions must be preserved.
	if f.VarName(body.Phis[0].Uses[0]) != "c" {
		t.Fatal("φ argument lost by split")
	}
}

func TestCopyInsertIndexBeforeTerminator(t *testing.T) {
	f := MustParse(sample)
	b := f.Blocks[1]
	idx := CopyInsertIndex(b)
	if b.Instrs[idx].Op != OpBranch {
		t.Fatal("copies must be inserted right before the terminator")
	}
}

func TestBrDecProperties(t *testing.T) {
	if !OpBrDec.DefinesAfterCopyPoint() || OpBranch.DefinesAfterCopyPoint() {
		t.Fatal("only Br_dec defines after the copy point")
	}
	if !OpBrDec.IsTerminator() || OpPhi.IsTerminator() {
		t.Fatal("terminator classification wrong")
	}
}

func TestIsCopyOf(t *testing.T) {
	in := &Instr{Op: OpParCopy, Defs: []VarID{1, 2}, Uses: []VarID{3, 4}}
	if !in.IsCopyOf(1, 3) || !in.IsCopyOf(2, 4) || in.IsCopyOf(1, 4) {
		t.Fatal("parallel copy pair detection wrong")
	}
	cp := &Instr{Op: OpCopy, Defs: []VarID{1}, Uses: []VarID{2}}
	if !cp.IsCopyOf(1, 2) || cp.IsCopyOf(2, 1) {
		t.Fatal("plain copy detection wrong")
	}
}

func findVar(f *Func, name string) VarID {
	for i, v := range f.Vars {
		if v.Name == name {
			return VarID(i)
		}
	}
	panic("no var " + name)
}

func TestPrintContainsFreq(t *testing.T) {
	f := MustParse(sample)
	if !strings.Contains(f.String(), "body (freq 10):") {
		t.Fatalf("frequency lost in printing:\n%s", f.String())
	}
}

func TestCleanupJumpBlocks(t *testing.T) {
	f := MustParse(sample)
	entry, body := f.Blocks[0], f.Blocks[1]
	nb := SplitEdge(f, entry, body)
	if err := Verify(f); err != nil {
		t.Fatal(err)
	}
	// The split block is jump-only: cleanup must fold it away again.
	removed := CleanupJumpBlocks(f)
	if removed != 1 {
		t.Fatalf("removed %d blocks, want 1", removed)
	}
	if err := Verify(f); err != nil {
		t.Fatal(err)
	}
	for _, b := range f.Blocks {
		if b == nb {
			t.Fatal("split block still present")
		}
	}
	// φ arguments and pred order must be intact.
	if f.VarName(body.Phis[0].Uses[body.PredIndex(entry)]) != "c" {
		t.Fatal("φ argument lost by cleanup")
	}
}

func TestCleanupKeepsNeededSplits(t *testing.T) {
	// Duplicate-pred hazard: both branch targets reach j through jump-only
	// blocks; folding both would give j duplicate predecessors, so at most
	// one may be removed.
	src := `
func k {
entry:
  p = param 0
  a = const 1
  b = const 2
  br p l r
l:
  jump j
r:
  jump j
j:
  x = phi l:a r:b
  ret x
}
`
	f := MustParse(src)
	CleanupJumpBlocks(f)
	if err := Verify(f); err != nil {
		t.Fatal(err)
	}
	j := f.Blocks[len(f.Blocks)-1]
	seen := map[*Block]bool{}
	for _, p := range j.Preds {
		if seen[p] {
			t.Fatal("cleanup created duplicate predecessors")
		}
		seen[p] = true
	}
}

func TestParseAll(t *testing.T) {
	src := sample + "\n" + strings.ReplaceAll(sample, "func f", "func g")
	funcs, err := ParseAll(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(funcs) != 2 || funcs[0].Name != "f" || funcs[1].Name != "g" {
		t.Fatalf("ParseAll wrong: %d funcs", len(funcs))
	}
	if _, err := ParseAll("   \n"); err == nil {
		t.Fatal("empty input must error")
	}
}
