package ir

// Builder is a convenience wrapper for constructing functions in tests,
// examples, and the synthetic workload generator.
type Builder struct {
	F   *Func
	Cur *Block
}

// NewBuilder returns a builder positioned at a fresh entry block.
func NewBuilder(name string) *Builder {
	f := NewFunc(name)
	return &Builder{F: f, Cur: f.NewBlock("entry")}
}

// Block creates a new block and returns it without changing the insertion
// point.
func (bd *Builder) Block(name string) *Block { return bd.F.NewBlock(name) }

// SetBlock moves the insertion point.
func (bd *Builder) SetBlock(b *Block) { bd.Cur = b }

func (bd *Builder) emit(in *Instr) *Instr {
	bd.Cur.Instrs = append(bd.Cur.Instrs, in)
	return in
}

// Const emits dst = Aux.
func (bd *Builder) Const(c int64) VarID {
	v := bd.F.NewVar("")
	bd.emit(&Instr{Op: OpConst, Defs: []VarID{v}, Aux: c})
	return v
}

// Param emits dst = param(i).
func (bd *Builder) Param(i int) VarID {
	v := bd.F.NewVar("")
	bd.emit(&Instr{Op: OpParam, Defs: []VarID{v}, Aux: int64(i)})
	if i+1 > bd.F.NumParams {
		bd.F.NumParams = i + 1
	}
	return v
}

// Copy emits dst = src into a fresh variable.
func (bd *Builder) Copy(src VarID) VarID {
	v := bd.F.NewVar("")
	bd.emit(&Instr{Op: OpCopy, Defs: []VarID{v}, Uses: []VarID{src}})
	return v
}

// CopyTo emits dst = src into an existing variable.
func (bd *Builder) CopyTo(dst, src VarID) {
	bd.emit(&Instr{Op: OpCopy, Defs: []VarID{dst}, Uses: []VarID{src}})
}

// Arith emits dst = op(args...) into a fresh variable.
func (bd *Builder) Arith(op Op, args ...VarID) VarID {
	v := bd.F.NewVar("")
	bd.emit(&Instr{Op: op, Defs: []VarID{v}, Uses: args})
	return v
}

// Print emits an observable print of v.
func (bd *Builder) Print(v VarID) { bd.emit(&Instr{Op: OpPrint, Uses: []VarID{v}}) }

// Phi inserts dst = φ(args...) at the top of block b. The argument order
// must match b.Preds.
func (bd *Builder) Phi(b *Block, dst VarID, args ...VarID) *Instr {
	in := &Instr{Op: OpPhi, Defs: []VarID{dst}, Uses: args}
	b.Phis = append(b.Phis, in)
	return in
}

// Jump terminates the current block with an unconditional jump.
func (bd *Builder) Jump(to *Block) {
	bd.emit(&Instr{Op: OpJump})
	AddEdge(bd.Cur, to)
}

// Branch terminates the current block with a conditional branch on cond.
func (bd *Builder) Branch(cond VarID, then, els *Block) {
	bd.emit(&Instr{Op: OpBranch, Uses: []VarID{cond}})
	AddEdge(bd.Cur, then)
	AddEdge(bd.Cur, els)
}

// BrDec terminates the current block with a branch-with-decrement: the
// fresh result is counter-1 and the branch is taken to then if it is
// non-zero. The result variable is returned.
func (bd *Builder) BrDec(counter VarID, then, els *Block) VarID {
	v := bd.F.NewVar("")
	bd.emit(&Instr{Op: OpBrDec, Defs: []VarID{v}, Uses: []VarID{counter}})
	AddEdge(bd.Cur, then)
	AddEdge(bd.Cur, els)
	return v
}

// Ret terminates the current block returning v (or nothing if v == NoVar).
func (bd *Builder) Ret(v VarID) {
	in := &Instr{Op: OpRet}
	if v != NoVar {
		in.Uses = []VarID{v}
	}
	bd.emit(in)
}

// CopyInsertIndex returns the index in b.Instrs where pre-terminator copies
// must be inserted: before the terminator, so that terminator uses read
// after the copies (the Figure 1 subtlety is handled by the interference
// computation, not by moving the point).
func CopyInsertIndex(b *Block) int {
	if t := b.Terminator(); t != nil {
		return len(b.Instrs) - 1
	}
	return len(b.Instrs)
}

// InsertBefore inserts instruction in at position idx of b.Instrs.
func InsertBefore(b *Block, idx int, in *Instr) {
	b.Instrs = append(b.Instrs, nil)
	copy(b.Instrs[idx+1:], b.Instrs[idx:])
	b.Instrs[idx] = in
}

// IsCriticalEdge reports whether the edge from → to is critical: from has
// several successors and to has several predecessors.
func IsCriticalEdge(from, to *Block) bool {
	return len(from.Succs) > 1 && len(to.Preds) > 1
}

// SplitEdge inserts a fresh block on the edge from → to and returns it.
// The new block carries the frequency of the edge (approximated by the
// minimum of the endpoint frequencies) and ends with a jump to to.
// φ-functions in to keep their argument positions because the predecessor
// slot of from is taken over by the new block.
func SplitEdge(f *Func, from, to *Block) *Block {
	nb := f.NewBlock(from.Name + "_" + to.Name)
	nb.Freq = from.Freq
	if to.Freq < nb.Freq {
		nb.Freq = to.Freq
	}
	nb.Instrs = append(nb.Instrs, f.NewInstr(OpJump))
	for i, s := range from.Succs {
		if s == to {
			from.Succs[i] = nb
			break
		}
	}
	for i, p := range to.Preds {
		if p == from {
			to.Preds[i] = nb
			break
		}
	}
	// Append into the (truncated) recycled backing rather than allocating
	// fresh one-element slices — edge splitting runs on the steady-state
	// translation path.
	nb.Preds = append(nb.Preds, from)
	nb.Succs = append(nb.Succs, to)
	return nb
}
