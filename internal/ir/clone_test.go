package ir_test

import (
	"testing"

	"repro/internal/ir"
)

const cloneSrc = `
func clonetest {
entry:
  x = param 0
  y = param 1
  c = cmplt x y
  br c a b
a:
  s = add x y
  jump join
b:
  t = sub x y
  c2 = copy t
  jump join
join:
  m = phi a:s b:c2
  print m
  ret m
}
`

// TestCloneIntoMatchesClone: CloneInto produces the same function text as
// Clone, and the rebuilt destination is fully detached from the source.
func TestCloneIntoMatchesClone(t *testing.T) {
	src, err := ir.Parse(cloneSrc)
	if err != nil {
		t.Fatal(err)
	}
	want := ir.Clone(src).String()
	dst := ir.NewFunc("")
	if got := ir.CloneInto(dst, src).String(); got != want {
		t.Fatalf("CloneInto differs from Clone:\n--- Clone\n%s--- CloneInto\n%s", want, got)
	}
	// Mutating the copy must not touch the source.
	dst.Blocks[0].Instrs[0].Defs[0] = 1
	dst.Vars[0].Name = "zzz"
	if src.String() == dst.String() {
		t.Fatal("mutating the CloneInto copy leaked into the source")
	}
}

// TestCloneIntoReuse: recycling one destination across many CloneInto calls
// — including after the destination grew (extra vars, blocks, instructions)
// — always reproduces the source exactly.
func TestCloneIntoReuse(t *testing.T) {
	src, err := ir.Parse(cloneSrc)
	if err != nil {
		t.Fatal(err)
	}
	want := src.String()
	dst := ir.NewFunc("")
	for round := 0; round < 5; round++ {
		ir.CloneInto(dst, src)
		if got := dst.String(); got != want {
			t.Fatalf("round %d: CloneInto drifted:\n%s", round, got)
		}
		// Grow the destination so the next round must rewind arenas and
		// truncate slices.
		v := dst.NewVar("extra")
		b := dst.NewBlock("extra")
		b.Instrs = append(b.Instrs, dst.NewCopy(v, v), dst.NewInstr(ir.OpRet))
	}
}

// TestCloneIntoSteadyStateAllocs: warm CloneInto into a recycled
// destination performs no heap allocation.
func TestCloneIntoSteadyStateAllocs(t *testing.T) {
	src, err := ir.Parse(cloneSrc)
	if err != nil {
		t.Fatal(err)
	}
	dst := ir.NewFunc("")
	ir.CloneInto(dst, src) // warm the arenas and slice capacities
	if n := testing.AllocsPerRun(50, func() { ir.CloneInto(dst, src) }); n > 0 {
		t.Fatalf("warm CloneInto allocates %v times per run, want 0", n)
	}
}
