package ir

// CleanupJumpBlocks removes trivial blocks that contain only an
// unconditional jump, rewiring their predecessors to the jump target. The
// out-of-SSA pre-passes split edges pessimistically; when every copy on a
// split edge coalesces away, the split block degenerates to a jump and this
// pass removes it again.
//
// A jump-only block is kept when removing it would create a duplicate
// predecessor of a block with φ-functions (it is doing edge-splitting work)
// or when it is the entry block. Returns the number of removed blocks.
func CleanupJumpBlocks(f *Func) int {
	removed := 0
	for changed := true; changed; {
		changed = false
		for _, b := range f.Blocks {
			if b == f.Entry() || len(b.Instrs) != 1 || b.Instrs[0].Op != OpJump {
				continue
			}
			if len(b.Phis) != 0 || len(b.Preds) == 0 {
				continue
			}
			target := b.Succs[0]
			if target == b {
				continue // self loop
			}
			if !canBypass(b, target) {
				continue
			}
			// Rewire every pred edge b←p into target←p, preserving the
			// positional φ arguments of target (b's slot is replaced by its
			// predecessors; since target has no duplicate-pred hazard —
			// checked above — the argument value is simply inherited).
			ti := target.PredIndex(b)
			for k, p := range b.Preds {
				for si, s := range p.Succs {
					if s == b {
						p.Succs[si] = target
					}
				}
				if k == 0 {
					target.Preds[ti] = p
				} else {
					target.Preds = append(target.Preds, p)
					for _, phi := range target.Phis {
						phi.Uses = append(phi.Uses, phi.Uses[ti])
					}
				}
			}
			b.Preds = b.Preds[:0] // detach, keeping the backing for reuse
			b.Succs = b.Succs[:0]
			removed++
			changed = true
		}
	}
	if removed > 0 {
		compact(f)
		f.MarkCFGMutated()
	}
	return removed
}

// canBypass reports whether rewiring b's predecessors straight to target is
// safe: no predecessor may end up a duplicate predecessor of a φ-carrying
// target, and predecessors with several successors must not create a
// critical edge that carries φ arguments implicitly (conservatively, any
// duplicate at all is rejected).
func canBypass(b, target *Block) bool {
	for _, p := range b.Preds {
		for _, q := range target.Preds {
			if q == p {
				return false
			}
		}
	}
	// Quadratic duplicate scan: predecessor lists are short, and a map here
	// would allocate once per candidate block on the rewrite hot path.
	for i, p := range b.Preds {
		for j := 0; j < i; j++ {
			if b.Preds[j] == p {
				return false
			}
		}
	}
	return true
}

// compact drops unreachable/detached blocks (retiring their records for
// reuse) and renumbers IDs.
func compact(f *Func) {
	keep := f.Blocks[:0]
	for _, b := range f.Blocks {
		if b == f.Entry() || len(b.Preds) > 0 || len(b.Succs) > 0 {
			keep = append(keep, b)
		} else {
			f.retireBlock(b)
		}
	}
	f.Blocks = keep
	for i, b := range f.Blocks {
		b.ID = i
	}
}
