package ir

// Slab allocation for the per-function IR storage. Out-of-SSA translation
// mints objects at a high rate — one Instr per inserted copy, one Var per
// primed variable, one or two small VarID slices per instruction — and the
// batch driver's steady state turns every one of those heap allocations
// into GC pressure. Each Func therefore owns three chunked arenas:
//
//   - an Instr arena handing out instruction records,
//   - a Var arena handing out variable records,
//   - a VarID arena handing out small operand slices (exact capacity, so an
//     append that outgrows one simply reallocates privately and can never
//     clobber a neighbouring slice).
//
// Arena memory lives exactly as long as the function: nothing is freed
// piecemeal, and CloneInto rewinds all three arenas when it rebuilds the
// function in place, which is what makes steady-state batch translation
// allocation-free (amortized). Objects obtained from a Func's arenas must
// not outlive it or be moved into another Func.

const (
	instrChunk = 64  // Instr records per arena chunk
	varChunk   = 64  // Var records per arena chunk
	idChunk    = 256 // VarID operand slots per arena chunk
)

// instrArena hands out Instr records from chunked backing arrays.
type instrArena struct {
	chunks [][]Instr
	ci     int // chunk cursor
	n      int // used slots in chunks[ci]
}

func (a *instrArena) alloc() *Instr {
	for a.ci < len(a.chunks) && a.n == len(a.chunks[a.ci]) {
		a.ci++
		a.n = 0
	}
	if a.ci == len(a.chunks) {
		a.chunks = append(a.chunks, make([]Instr, instrChunk))
	}
	in := &a.chunks[a.ci][a.n]
	a.n++
	*in = Instr{}
	return in
}

// reset rewinds the arena, keeping the chunks for reuse. Only safe when no
// previously handed-out record is referenced anymore.
func (a *instrArena) reset() { a.ci, a.n = 0, 0 }

// varArena hands out Var records from chunked backing arrays.
type varArena struct {
	chunks [][]Var
	ci     int
	n      int
}

func (a *varArena) alloc() *Var {
	for a.ci < len(a.chunks) && a.n == len(a.chunks[a.ci]) {
		a.ci++
		a.n = 0
	}
	if a.ci == len(a.chunks) {
		a.chunks = append(a.chunks, make([]Var, varChunk))
	}
	v := &a.chunks[a.ci][a.n]
	a.n++
	*v = Var{}
	return v
}

func (a *varArena) reset() { a.ci, a.n = 0, 0 }

// idArena hands out exact-capacity []VarID slices from chunked backing.
type idArena struct {
	chunks [][]VarID
	ci     int
	n      int
}

// alloc returns a zeroed slice of length and capacity n. Slices larger than
// a chunk get dedicated backing.
func (a *idArena) alloc(n int) []VarID {
	if n == 0 {
		return nil
	}
	if n > idChunk {
		return make([]VarID, n)
	}
	for a.ci < len(a.chunks) && a.n+n > len(a.chunks[a.ci]) {
		a.ci++
		a.n = 0
	}
	if a.ci == len(a.chunks) {
		a.chunks = append(a.chunks, make([]VarID, idChunk))
	}
	s := a.chunks[a.ci][a.n : a.n+n : a.n+n]
	a.n += n
	for i := range s {
		s[i] = 0
	}
	return s
}

func (a *idArena) reset() { a.ci, a.n = 0, 0 }

// NewInstr returns a fresh zeroed instruction with the given opcode,
// allocated from the function's instruction arena. The record belongs to f:
// it lives until the function is discarded or rebuilt with CloneInto.
func (f *Func) NewInstr(op Op) *Instr {
	in := f.instrs.alloc()
	in.Op = op
	return in
}

// NewOperands returns a zeroed []VarID of length n from the function's
// operand arena. The capacity is exactly n, so appending beyond it
// reallocates privately and never corrupts a neighbouring slice.
func (f *Func) NewOperands(n int) []VarID { return f.ids.alloc(n) }

// NewCopy returns a plain copy instruction dst ← src with arena-allocated
// operand lists.
func (f *Func) NewCopy(dst, src VarID) *Instr {
	in := f.NewInstr(OpCopy)
	in.Defs = f.ids.alloc(1)
	in.Uses = f.ids.alloc(1)
	in.Defs[0] = dst
	in.Uses[0] = src
	return in
}

// resetArenas rewinds all three arenas; CloneInto calls it before
// rebuilding the function, when every old record is dead.
func (f *Func) resetArenas() {
	f.instrs.reset()
	f.vars.reset()
	f.ids.reset()
}
