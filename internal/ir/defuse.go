package ir

import "math"

// Slot numbering inside a block: all φ-functions execute in parallel at
// slot 0; body instruction i occupies slot i+1. φ arguments are uses at the
// end of the corresponding predecessor and are recorded with slot
// PhiUseSlot in that predecessor.
const PhiUseSlot = math.MaxInt32

// SlotOfInstr returns the slot of body instruction index i.
func SlotOfInstr(i int) int32 { return int32(i + 1) }

// UseSite locates one use of a variable.
type UseSite struct {
	Block int32
	Slot  int32 // PhiUseSlot for φ uses (at the very end of Block)
	Instr *Instr
}

// DefUse indexes the unique definition and all uses of every variable of an
// SSA-form function. Variables without a definition (possible for function
// universes that grew speculatively) report DefBlock -1.
type DefUse struct {
	f        *Func
	defBlock []int32
	defSlot  []int32
	defInstr []*Instr
	uses     [][]UseSite
}

// NewDefUse builds the index. The function must be in SSA form (each
// variable defined at most once); a second definition panics.
func NewDefUse(f *Func) *DefUse {
	n := len(f.Vars)
	du := &DefUse{
		f:        f,
		defBlock: make([]int32, n),
		defSlot:  make([]int32, n),
		defInstr: make([]*Instr, n),
		uses:     make([][]UseSite, n),
	}
	for i := range du.defBlock {
		du.defBlock[i] = -1
	}
	def := func(v VarID, b int, slot int32, in *Instr) {
		if du.defBlock[v] >= 0 {
			panic("ir: variable " + f.VarName(v) + " defined twice (not SSA)")
		}
		du.defBlock[v] = int32(b)
		du.defSlot[v] = slot
		du.defInstr[v] = in
	}
	for _, b := range f.Blocks {
		for _, in := range b.Phis {
			def(in.Defs[0], b.ID, 0, in)
			for i, u := range in.Uses {
				du.uses[u] = append(du.uses[u], UseSite{Block: int32(b.Preds[i].ID), Slot: PhiUseSlot, Instr: in})
			}
		}
		for i, in := range b.Instrs {
			slot := SlotOfInstr(i)
			for _, d := range in.Defs {
				def(d, b.ID, slot, in)
			}
			for _, u := range in.Uses {
				du.uses[u] = append(du.uses[u], UseSite{Block: int32(b.ID), Slot: slot, Instr: in})
			}
		}
	}
	return du
}

// Func returns the indexed function.
func (du *DefUse) Func() *Func { return du.f }

// HasDef reports whether v has a definition.
func (du *DefUse) HasDef(v VarID) bool { return du.defBlock[v] >= 0 }

// DefBlock returns the ID of the defining block of v (-1 if undefined).
func (du *DefUse) DefBlock(v VarID) int { return int(du.defBlock[v]) }

// DefSlot returns the slot of the definition of v within its block.
func (du *DefUse) DefSlot(v VarID) int32 { return du.defSlot[v] }

// DefInstr returns the defining instruction of v, or nil.
func (du *DefUse) DefInstr(v VarID) *Instr { return du.defInstr[v] }

// Uses returns the use sites of v. The returned slice must not be mutated.
func (du *DefUse) Uses(v VarID) []UseSite { return du.uses[v] }

// grow extends the index when the function universe gained variables.
func (du *DefUse) grow() {
	for len(du.defBlock) < len(du.f.Vars) {
		du.defBlock = append(du.defBlock, -1)
		du.defSlot = append(du.defSlot, 0)
		du.defInstr = append(du.defInstr, nil)
		du.uses = append(du.uses, nil)
	}
}

// AddDef records a new definition of v at (block, slot); v must be a fresh
// variable without a prior definition. Used by the virtualized translator
// when it materializes a copy into a pre-created parallel copy, which keeps
// every existing slot stable.
func (du *DefUse) AddDef(v VarID, block int, slot int32, in *Instr) {
	du.grow()
	if du.defBlock[v] >= 0 {
		panic("ir: AddDef on already-defined variable " + du.f.VarName(v))
	}
	du.defBlock[v] = int32(block)
	du.defSlot[v] = slot
	du.defInstr[v] = in
}

// ReplaceDef moves the recorded definition of v to (block, slot, in) — used
// when the virtualized translator turns a φ result into a parallel-copy
// destination.
func (du *DefUse) ReplaceDef(v VarID, block int, slot int32, in *Instr) {
	du.grow()
	du.defBlock[v] = int32(block)
	du.defSlot[v] = slot
	du.defInstr[v] = in
}

// AddUse records a new use of v at (block, slot).
func (du *DefUse) AddUse(v VarID, block int, slot int32, in *Instr) {
	du.grow()
	du.uses[v] = append(du.uses[v], UseSite{Block: int32(block), Slot: slot, Instr: in})
}

// RemoveUse deletes one recorded use of v at (block, slot) by the given
// instruction. It panics when no such use exists (an indexing bug).
func (du *DefUse) RemoveUse(v VarID, block int, slot int32, in *Instr) {
	us := du.uses[v]
	for i, u := range us {
		if int(u.Block) == block && u.Slot == slot && u.Instr == in {
			us[i] = us[len(us)-1]
			du.uses[v] = us[:len(us)-1]
			return
		}
	}
	panic("ir: RemoveUse of unrecorded use of " + du.f.VarName(v))
}
