package ir

import (
	"math"
	"sort"
)

// Slot numbering inside a block: all φ-functions execute in parallel at
// slot 0; body instruction i occupies slot i+1. φ arguments are uses at the
// end of the corresponding predecessor and are recorded with slot
// PhiUseSlot in that predecessor.
const PhiUseSlot = math.MaxInt32

// SlotOfInstr returns the slot of body instruction index i.
func SlotOfInstr(i int) int32 { return int32(i + 1) }

// UseSite locates one use of a variable.
type UseSite struct {
	Block int32
	Slot  int32 // PhiUseSlot for φ uses (at the very end of Block)
	Instr *Instr
}

// before orders use sites by (block, slot) — the order every use list is
// kept in, so per-block queries are binary searches.
func (u UseSite) before(block int32, slot int32) bool {
	return u.Block < block || (u.Block == block && u.Slot < slot)
}

// DefUse indexes the unique definition and all uses of every variable of an
// SSA-form function. Variables without a definition (possible for function
// universes that grew speculatively) report DefBlock -1.
//
// Each use list is kept sorted by (block, slot); AddUse and RemoveUse
// preserve the order, which is what lets interference queries answer "is
// there a use of v in block b after slot s" with a binary search instead of
// a scan of the whole list.
type DefUse struct {
	f        *Func
	defBlock []int32
	defSlot  []int32
	defInstr []*Instr
	uses     [][]UseSite

	// rep, when non-nil, is the opt-in patch-repair state (EnableRepair /
	// RepairBlocks in defuse_repair.go).
	rep *duRepair
}

// NewDefUse builds the index. The function must be in SSA form (each
// variable defined at most once); a second definition panics.
//
// The use lists are carved out of one shared backing array: a counting pass
// sizes every variable's region, a fill pass appends into it. Building the
// index therefore costs a constant number of allocations instead of one per
// variable; each list's capacity equals its length, so a later AddUse that
// outgrows a region reallocates that list privately and can never clobber a
// neighbour's.
func NewDefUse(f *Func) *DefUse {
	n := len(f.Vars)
	du := &DefUse{
		f:        f,
		defBlock: make([]int32, n),
		defSlot:  make([]int32, n),
		defInstr: make([]*Instr, n),
		uses:     make([][]UseSite, n),
	}
	for i := range du.defBlock {
		du.defBlock[i] = -1
	}
	def := func(v VarID, b int, slot int32, in *Instr) {
		if du.defBlock[v] >= 0 {
			panic("ir: variable " + f.VarName(v) + " defined twice (not SSA)")
		}
		du.defBlock[v] = int32(b)
		du.defSlot[v] = slot
		du.defInstr[v] = in
	}

	// Pass 1: record definitions, count uses per variable.
	counts := make([]int32, n)
	total := 0
	for _, b := range f.Blocks {
		for _, in := range b.Phis {
			def(in.Defs[0], b.ID, 0, in)
			for _, u := range in.Uses {
				counts[u]++
				total++
			}
		}
		for i, in := range b.Instrs {
			slot := SlotOfInstr(i)
			for _, d := range in.Defs {
				def(d, b.ID, slot, in)
			}
			for _, u := range in.Uses {
				counts[u]++
				total++
			}
		}
	}

	// Carve per-variable regions out of one backing array.
	backing := make([]UseSite, total)
	off := 0
	for v, c := range counts {
		if c == 0 {
			continue
		}
		du.uses[v] = backing[off : off : off+int(c)]
		off += int(c)
	}

	// Pass 2: fill the regions (appends stay within the exact capacities).
	for _, b := range f.Blocks {
		for _, in := range b.Phis {
			for i, u := range in.Uses {
				du.uses[u] = append(du.uses[u], UseSite{Block: int32(b.Preds[i].ID), Slot: PhiUseSlot, Instr: in})
			}
		}
		for i, in := range b.Instrs {
			slot := SlotOfInstr(i)
			for _, u := range in.Uses {
				du.uses[u] = append(du.uses[u], UseSite{Block: int32(b.ID), Slot: slot, Instr: in})
			}
		}
	}

	// φ uses are recorded while visiting the φ block, not the predecessor,
	// so the collected lists are not yet (block, slot)-sorted.
	for _, us := range du.uses {
		if !sortedUses(us) {
			sort.SliceStable(us, func(i, j int) bool { return us[i].before(us[j].Block, us[j].Slot) })
		}
	}
	return du
}

// sortedUses reports whether us is already (block, slot)-sorted.
func sortedUses(us []UseSite) bool {
	for i := 1; i < len(us); i++ {
		if us[i].before(us[i-1].Block, us[i-1].Slot) {
			return false
		}
	}
	return true
}

// Func returns the indexed function.
func (du *DefUse) Func() *Func { return du.f }

// HasDef reports whether v has a definition.
func (du *DefUse) HasDef(v VarID) bool { return du.defBlock[v] >= 0 }

// DefBlock returns the ID of the defining block of v (-1 if undefined).
func (du *DefUse) DefBlock(v VarID) int { return int(du.defBlock[v]) }

// DefSlot returns the slot of the definition of v within its block.
func (du *DefUse) DefSlot(v VarID) int32 { return du.defSlot[v] }

// DefInstr returns the defining instruction of v, or nil.
func (du *DefUse) DefInstr(v VarID) *Instr { return du.defInstr[v] }

// Uses returns the use sites of v, sorted by (block, slot). The returned
// slice must not be mutated.
func (du *DefUse) Uses(v VarID) []UseSite { return du.uses[v] }

// searchUse returns the index of the first use of v that is not before
// (block, slot) — the lower bound of the key in the sorted use list.
func (du *DefUse) searchUse(v VarID, block int32, slot int32) int {
	us := du.uses[v]
	return sort.Search(len(us), func(i int) bool { return !us[i].before(block, slot) })
}

// UsedInBlockAfter reports whether v has a use in block strictly after
// slot, in O(log uses) — the query LiveAfter turns into a binary search.
func (du *DefUse) UsedInBlockAfter(v VarID, block int, slot int32) bool {
	if slot == math.MaxInt32 {
		return false // nothing lies after a φ use
	}
	i := du.searchUse(v, int32(block), slot+1)
	us := du.uses[v]
	return i < len(us) && us[i].Block == int32(block)
}

// HasUseAt reports whether v has a use at exactly (block, slot); with
// slot == PhiUseSlot this asks "does some φ of a successor read v along an
// edge out of block".
func (du *DefUse) HasUseAt(v VarID, block int, slot int32) bool {
	i := du.searchUse(v, int32(block), slot)
	us := du.uses[v]
	return i < len(us) && us[i].Block == int32(block) && us[i].Slot == slot
}

// UsedOutsideBlock reports whether v has a use in some block other than
// block. Because the list is block-sorted, checking its ends suffices.
func (du *DefUse) UsedOutsideBlock(v VarID, block int) bool {
	us := du.uses[v]
	return len(us) > 0 && (us[0].Block != int32(block) || us[len(us)-1].Block != int32(block))
}

// grow extends the index when the function universe gained variables.
func (du *DefUse) grow() {
	for len(du.defBlock) < len(du.f.Vars) {
		du.defBlock = append(du.defBlock, -1)
		du.defSlot = append(du.defSlot, 0)
		du.defInstr = append(du.defInstr, nil)
		du.uses = append(du.uses, nil)
	}
}

// AddDef records a new definition of v at (block, slot); v must be a fresh
// variable without a prior definition. Used by the virtualized translator
// when it materializes a copy into a pre-created parallel copy, which keeps
// every existing slot stable.
func (du *DefUse) AddDef(v VarID, block int, slot int32, in *Instr) {
	du.grow()
	if du.defBlock[v] >= 0 {
		panic("ir: AddDef on already-defined variable " + du.f.VarName(v))
	}
	du.defBlock[v] = int32(block)
	du.defSlot[v] = slot
	du.defInstr[v] = in
}

// ReplaceDef moves the recorded definition of v to (block, slot, in) — used
// when the virtualized translator turns a φ result into a parallel-copy
// destination.
func (du *DefUse) ReplaceDef(v VarID, block int, slot int32, in *Instr) {
	du.grow()
	du.defBlock[v] = int32(block)
	du.defSlot[v] = slot
	du.defInstr[v] = in
}

// AddUse records a new use of v at (block, slot), inserting it at its
// sorted position.
func (du *DefUse) AddUse(v VarID, block int, slot int32, in *Instr) {
	du.grow()
	i := du.searchUse(v, int32(block), slot)
	us := append(du.uses[v], UseSite{})
	copy(us[i+1:], us[i:])
	us[i] = UseSite{Block: int32(block), Slot: slot, Instr: in}
	du.uses[v] = us
}

// RemoveUse deletes one recorded use of v at (block, slot) by the given
// instruction, preserving the sorted order. It panics when no such use
// exists (an indexing bug).
func (du *DefUse) RemoveUse(v VarID, block int, slot int32, in *Instr) {
	us := du.uses[v]
	for i := du.searchUse(v, int32(block), slot); i < len(us); i++ {
		u := us[i]
		if int(u.Block) != block || u.Slot != slot {
			break // past the key: the use is not recorded
		}
		if u.Instr == in {
			du.uses[v] = append(us[:i], us[i+1:]...)
			return
		}
	}
	panic("ir: RemoveUse of unrecorded use of " + du.f.VarName(v))
}
