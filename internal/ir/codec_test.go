package ir

import (
	"strings"
	"testing"
)

const codecSrc = `
func diamond {
entry:
  p = param 0
  c0 = const 10
  c = cmplt p c0
  br c left right
left (freq 4):
  a = add p c0
  jump join
right:
  b = sub p c0
  jump join
join:
  x = phi left:a right:b
  print x
  ret x
}
`

func TestCodecRoundTrip(t *testing.T) {
	f := MustParse(codecSrc)
	// Exercise the fields Parse never produces: derived vars and pins.
	d := f.NewDerivedVar(VarID(0))
	f.Vars[d].Reg = "r7"

	data, err := EncodeJSON(f)
	if err != nil {
		t.Fatal(err)
	}
	g, err := DecodeJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name != f.Name || g.NumParams != f.NumParams {
		t.Fatalf("header mismatch: %s/%d vs %s/%d", g.Name, g.NumParams, f.Name, f.NumParams)
	}
	if len(g.Vars) != len(f.Vars) {
		t.Fatalf("var count %d, want %d", len(g.Vars), len(f.Vars))
	}
	for i := range f.Vars {
		fv, gv := f.Vars[i], g.Vars[i]
		if fv.Name != gv.Name || fv.Reg != gv.Reg || fv.base != gv.base {
			t.Fatalf("var %d mismatch: %+v vs %+v", i, *gv, *fv)
		}
		if f.VarName(VarID(i)) != g.VarName(VarID(i)) {
			t.Fatalf("var %d display name %q vs %q", i, g.VarName(VarID(i)), f.VarName(VarID(i)))
		}
	}
	if g.String() != f.String() {
		t.Fatalf("textual form changed:\n--- got\n%s\n--- want\n%s", g.String(), f.String())
	}
	// Pred order carries φ-argument matching; check it survives exactly.
	join := g.Blocks[3]
	if join.Preds[0].Name != "left" || join.Preds[1].Name != "right" {
		t.Fatalf("pred order lost: %s, %s", join.Preds[0].Name, join.Preds[1].Name)
	}
	if err := Verify(g); err != nil {
		t.Fatal(err)
	}
}

func TestCodecFreqSurvives(t *testing.T) {
	f := MustParse(codecSrc)
	data, err := EncodeJSON(f)
	if err != nil {
		t.Fatal(err)
	}
	g, err := DecodeJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if g.Blocks[1].Freq != 4 {
		t.Fatalf("freq = %v, want 4", g.Blocks[1].Freq)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	f := MustParse(codecSrc)
	good, err := EncodeJSON(f)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]string{
		"not json":        `{"name":`,
		"bad var index":   strings.Replace(string(good), `"uses":[0,1]`, `"uses":[0,99]`, 1),
		"bad block index": strings.Replace(string(good), `"succs":[1,2]`, `"succs":[1,42]`, 1),
		"bad opcode":      strings.Replace(string(good), `"op":14`, `"op":250`, 1),
		"no blocks":       `{"name":"x","num_params":0,"vars":[],"blocks":[]}`,
		"forward base":    `{"name":"x","num_params":0,"vars":[{"name":"a","base":1},{"name":"b"}],"blocks":[{"name":"e","freq":1,"preds":[],"succs":[],"instrs":[{"op":13}]}]}`,
		"neg params":      strings.Replace(string(good), `"num_params":1`, `"num_params":-2`, 1),
	}
	for name, data := range cases {
		if _, err := DecodeJSON([]byte(data)); err == nil {
			t.Errorf("%s: decode succeeded, want error", name)
		}
	}
}
