package ir

import (
	"fmt"
	"strings"
)

// String renders the function in the textual form accepted by Parse.
func (f *Func) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "func %s {\n", f.Name)
	for _, blk := range f.Blocks {
		if blk.Freq != 1 {
			fmt.Fprintf(&b, "%s (freq %g):\n", blk.Name, blk.Freq)
		} else {
			fmt.Fprintf(&b, "%s:\n", blk.Name)
		}
		for _, in := range blk.Phis {
			fmt.Fprintf(&b, "  %s\n", f.instrString(blk, in))
		}
		for _, in := range blk.Instrs {
			fmt.Fprintf(&b, "  %s\n", f.instrString(blk, in))
		}
	}
	b.WriteString("}\n")
	return b.String()
}

func (f *Func) instrString(blk *Block, in *Instr) string {
	name := func(v VarID) string { return f.VarName(v) }
	switch in.Op {
	case OpConst:
		return fmt.Sprintf("%s = const %d", name(in.Defs[0]), in.Aux)
	case OpParam:
		return fmt.Sprintf("%s = param %d", name(in.Defs[0]), in.Aux)
	case OpCopy:
		return fmt.Sprintf("%s = copy %s", name(in.Defs[0]), name(in.Uses[0]))
	case OpPhi:
		parts := make([]string, len(in.Uses))
		for i, u := range in.Uses {
			pred := "?"
			if i < len(blk.Preds) {
				pred = blk.Preds[i].Name
			}
			parts[i] = fmt.Sprintf("%s:%s", pred, name(u))
		}
		return fmt.Sprintf("%s = phi %s", name(in.Defs[0]), strings.Join(parts, " "))
	case OpParCopy:
		parts := make([]string, len(in.Defs))
		for i := range in.Defs {
			parts[i] = fmt.Sprintf("%s:%s", name(in.Defs[i]), name(in.Uses[i]))
		}
		return "parcopy " + strings.Join(parts, " ")
	case OpPrint:
		return fmt.Sprintf("print %s", name(in.Uses[0]))
	case OpJump:
		return fmt.Sprintf("jump %s", blk.Succs[0].Name)
	case OpBranch:
		return fmt.Sprintf("br %s %s %s", name(in.Uses[0]), blk.Succs[0].Name, blk.Succs[1].Name)
	case OpBrDec:
		return fmt.Sprintf("%s = brdec %s %s %s", name(in.Defs[0]), name(in.Uses[0]), blk.Succs[0].Name, blk.Succs[1].Name)
	case OpRet:
		if len(in.Uses) == 1 {
			return fmt.Sprintf("ret %s", name(in.Uses[0]))
		}
		return "ret"
	case OpNop:
		return "nop"
	default: // arithmetic
		ops := make([]string, len(in.Uses))
		for i, u := range in.Uses {
			ops[i] = name(u)
		}
		return fmt.Sprintf("%s = %s %s", name(in.Defs[0]), in.Op, strings.Join(ops, " "))
	}
}
