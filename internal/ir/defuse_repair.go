package ir

// Def-use patch repair: instead of rebuilding the whole index after a local
// edit, RepairBlocks re-derives exactly the entries attributable to the
// touched blocks. The membership index byBlock records, per block, every
// variable with an entry recorded at that block — definitions (φ and body),
// body uses, and φ uses of successor φ-functions (which the index records
// at the predecessor with Slot=PhiUseSlot) — so the purge phase knows which
// use lists to edit without scanning all of them.

// duRepair is the opt-in repair state of a DefUse index.
type duRepair struct {
	// byBlock[b] lists the variables with at least one index entry recorded
	// at block b. May contain duplicates; purge is idempotent.
	byBlock [][]VarID
	inR     []bool  // region membership scratch
	region  []int32 // region block list scratch
}

// EnableRepair builds the per-block membership index that RepairBlocks
// needs. Call it right after NewDefUse; an index built for one function
// snapshot repairs any sequence of later block-attributed edits as long as
// the block/edge structure is unchanged.
func (du *DefUse) EnableRepair() {
	n := len(du.f.Blocks)
	r := &duRepair{
		byBlock: make([][]VarID, n),
		inR:     make([]bool, n),
	}
	for _, b := range du.f.Blocks {
		for _, in := range b.Phis {
			r.byBlock[b.ID] = append(r.byBlock[b.ID], in.Defs[0])
			for pi, u := range in.Uses {
				p := b.Preds[pi].ID
				r.byBlock[p] = append(r.byBlock[p], u)
			}
		}
		for _, in := range b.Instrs {
			r.byBlock[b.ID] = append(r.byBlock[b.ID], in.Defs...)
			r.byBlock[b.ID] = append(r.byBlock[b.ID], in.Uses...)
		}
	}
	du.rep = r
}

// Repairable reports whether EnableRepair ran on this index.
func (du *DefUse) Repairable() bool { return du.rep != nil }

// RepairBlocks patches the index after instruction-level edits confined to
// the given blocks (ir.Func.MarkBlockMutated's dirty set). The block/edge
// structure must be unchanged since EnableRepair. Cost is proportional to
// the edited blocks and their predecessors, not the function.
//
// The repair region is dirty ∪ preds(dirty): editing a block's φ-functions
// invalidates use entries the index recorded at the predecessors
// (Slot=PhiUseSlot), so those blocks' entries are purged and re-derived
// too. Entries recorded at blocks outside the region are untouched — and
// provably unchanged, since every entry is attributed to exactly one block.
func (du *DefUse) RepairBlocks(dirty []int32) {
	r := du.rep
	if r == nil {
		panic("ir: RepairBlocks on a DefUse without EnableRepair")
	}
	f := du.f
	if len(r.byBlock) != len(f.Blocks) {
		panic("ir: RepairBlocks after a CFG change")
	}
	du.grow()

	// Region = dirty ∪ preds(dirty), deduplicated.
	region := r.region[:0]
	for _, b := range dirty {
		if !r.inR[b] {
			r.inR[b] = true
			region = append(region, b)
		}
		for _, p := range f.Blocks[b].Preds {
			if !r.inR[p.ID] {
				r.inR[p.ID] = true
				region = append(region, int32(p.ID))
			}
		}
	}

	// Purge: drop every entry recorded at a region block.
	for _, x := range region {
		for _, v := range r.byBlock[x] {
			du.purgeAt(v, x)
		}
		r.byBlock[x] = r.byBlock[x][:0]
	}

	// Re-derive the region's entries from the current IR.
	for _, x := range region {
		b := f.Blocks[x]
		for _, in := range b.Phis {
			du.repairDef(in.Defs[0], int(x), 0, in)
			r.byBlock[x] = append(r.byBlock[x], in.Defs[0])
		}
		for i, in := range b.Instrs {
			slot := SlotOfInstr(i)
			for _, d := range in.Defs {
				du.repairDef(d, int(x), slot, in)
				r.byBlock[x] = append(r.byBlock[x], d)
			}
			for _, u := range in.Uses {
				du.AddUse(u, int(x), slot, in)
				r.byBlock[x] = append(r.byBlock[x], u)
			}
		}
		// φ uses of successor φ-functions are recorded here, at x. A
		// successor reached by two edges out of x contributes one entry per
		// edge, matching NewDefUse; dedup the successor itself so its φs are
		// not scanned twice per distinct target.
		for si, s := range b.Succs {
			seen := false
			for _, t := range b.Succs[:si] {
				if t == s {
					seen = true
					break
				}
			}
			if seen {
				continue
			}
			for _, in := range s.Phis {
				for pi, p := range s.Preds {
					if p == b {
						du.AddUse(in.Uses[pi], int(x), PhiUseSlot, in)
						r.byBlock[x] = append(r.byBlock[x], in.Uses[pi])
					}
				}
			}
		}
	}

	for _, x := range region {
		r.inR[x] = false
	}
	r.region = region[:0]
}

// purgeAt removes every use of v recorded at block x and clears v's
// definition if it was recorded there. PhiUseSlot sorts last within a
// block, so the contiguous run starting at the block's lower bound covers
// φ-edge entries too.
func (du *DefUse) purgeAt(v VarID, x int32) {
	us := du.uses[v]
	lo := du.searchUse(v, x, 0)
	hi := lo
	for hi < len(us) && us[hi].Block == x {
		hi++
	}
	if hi > lo {
		du.uses[v] = append(us[:lo], us[hi:]...)
	}
	if du.defBlock[v] == x {
		du.defBlock[v] = -1
		du.defSlot[v] = 0
		du.defInstr[v] = nil
	}
}

// repairDef records a definition during re-derivation; a pre-existing
// definition (outside the purged region) means the edit broke SSA form.
func (du *DefUse) repairDef(v VarID, block int, slot int32, in *Instr) {
	if du.defBlock[v] >= 0 {
		panic("ir: variable " + du.f.VarName(v) + " defined twice (not SSA)")
	}
	du.defBlock[v] = int32(block)
	du.defSlot[v] = slot
	du.defInstr[v] = in
}
