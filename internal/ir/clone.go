package ir

// Clone returns a deep copy of f: fresh blocks, instructions, and variable
// records, with edges rewired to the copies. The benchmark harness
// translates each function once per configuration, so the original must
// stay pristine. The copy's records come from its own arenas (slab.go), so
// a clone costs one allocation per arena chunk rather than one per object.
func Clone(f *Func) *Func {
	return CloneInto(NewFunc(f.Name), f)
}

// CloneInto rebuilds dst as a deep copy of src and returns dst. All of
// dst's previous contents are discarded; its block records, slice backing
// arrays, and arenas are reused, so in steady state — cloning the same
// pristine template into the same destination between translations, the
// batch pattern of the translate trajectory — the copy performs no heap
// allocation at all. dst and src must be different functions, and nothing
// may retain pointers into dst's previous incarnation.
func CloneInto(dst, src *Func) *Func {
	if dst == src {
		panic("ir: CloneInto onto itself")
	}
	dst.Name = src.Name
	dst.NumParams = src.NumParams
	dst.resetArenas()

	// Variables: value-copy every record into arena storage.
	dst.Vars = growVars(dst.Vars[:0], len(src.Vars))
	for i, v := range src.Vars {
		nv := dst.vars.alloc()
		*nv = *v
		dst.Vars[i] = nv
	}

	// Blocks: reuse dst's old block records where available so their
	// Preds/Succs/Phis/Instrs backing arrays survive; surplus records go to
	// the spare list, shortfalls draw from it.
	old := dst.Blocks
	for i := len(src.Blocks); i < len(old); i++ {
		dst.retireBlock(old[i])
	}
	dst.Blocks = growBlocks(dst.Blocks[:0], len(src.Blocks))
	for i, b := range src.Blocks {
		var nb *Block
		if i < len(old) {
			nb = old[i]
			nb.Preds = nb.Preds[:0]
			nb.Succs = nb.Succs[:0]
			nb.Phis = nb.Phis[:0]
			nb.Instrs = nb.Instrs[:0]
		} else {
			nb = dst.takeBlock()
		}
		nb.ID, nb.Name, nb.Freq = b.ID, b.Name, b.Freq
		dst.Blocks[i] = nb
	}
	for i, b := range src.Blocks {
		nb := dst.Blocks[i]
		for _, p := range b.Preds {
			nb.Preds = append(nb.Preds, dst.Blocks[p.ID])
		}
		for _, s := range b.Succs {
			nb.Succs = append(nb.Succs, dst.Blocks[s.ID])
		}
		for _, in := range b.Phis {
			nb.Phis = append(nb.Phis, cloneInstrInto(dst, in))
		}
		for _, in := range b.Instrs {
			nb.Instrs = append(nb.Instrs, cloneInstrInto(dst, in))
		}
	}
	dst.MarkCFGMutated()
	return dst
}

// cloneInstrInto copies one instruction into dst's arenas.
func cloneInstrInto(dst *Func, in *Instr) *Instr {
	ni := dst.instrs.alloc()
	ni.Op, ni.Aux = in.Op, in.Aux
	if len(in.Defs) > 0 {
		ni.Defs = dst.ids.alloc(len(in.Defs))
		copy(ni.Defs, in.Defs)
	}
	if len(in.Uses) > 0 {
		ni.Uses = dst.ids.alloc(len(in.Uses))
		copy(ni.Uses, in.Uses)
	}
	return ni
}

// growVars returns s extended to length n, reusing its capacity.
func growVars(s []*Var, n int) []*Var {
	if cap(s) < n {
		return make([]*Var, n)
	}
	return s[:n]
}

// growBlocks returns s extended to length n, reusing its capacity.
func growBlocks(s []*Block, n int) []*Block {
	if cap(s) < n {
		return make([]*Block, n)
	}
	return s[:n]
}
