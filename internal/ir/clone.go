package ir

// Clone returns a deep copy of f: fresh blocks, instructions, and variable
// records, with edges rewired to the copies. The benchmark harness
// translates each function once per configuration, so the original must
// stay pristine.
func Clone(f *Func) *Func {
	nf := &Func{
		Name:      f.Name,
		NumParams: f.NumParams,
		Vars:      make([]*Var, len(f.Vars)),
		Blocks:    make([]*Block, len(f.Blocks)),
	}
	for i, v := range f.Vars {
		cp := *v
		nf.Vars[i] = &cp
	}
	for i, b := range f.Blocks {
		nf.Blocks[i] = &Block{ID: b.ID, Name: b.Name, Freq: b.Freq}
	}
	cloneInstr := func(in *Instr) *Instr {
		ni := &Instr{Op: in.Op, Aux: in.Aux}
		if len(in.Defs) > 0 {
			ni.Defs = append([]VarID(nil), in.Defs...)
		}
		if len(in.Uses) > 0 {
			ni.Uses = append([]VarID(nil), in.Uses...)
		}
		return ni
	}
	for i, b := range f.Blocks {
		nb := nf.Blocks[i]
		for _, p := range b.Preds {
			nb.Preds = append(nb.Preds, nf.Blocks[p.ID])
		}
		for _, s := range b.Succs {
			nb.Succs = append(nb.Succs, nf.Blocks[s.ID])
		}
		for _, in := range b.Phis {
			nb.Phis = append(nb.Phis, cloneInstr(in))
		}
		for _, in := range b.Instrs {
			nb.Instrs = append(nb.Instrs, cloneInstr(in))
		}
	}
	return nf
}
