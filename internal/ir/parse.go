package ir

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/faults"
)

// fpParse fires once per Parse call, before any input is consumed, so a
// chaos schedule can make well-formed sources fail to load.
var fpParse = faults.Register("parse.func")

// Parse reads the textual IR form produced by Func.String. The grammar is
// line oriented:
//
//	func NAME {
//	label (freq N):          // "(freq N)" optional
//	  x = const 42
//	  x = param 0
//	  x = copy y
//	  x = add y z            // sub, mul, neg, cmplt, cmpeq
//	  x = phi b0:a b1:b      // one argument per predecessor, in pred order
//	  parcopy d1:s1 d2:s2
//	  print x
//	  jump b1
//	  br c b1 b2
//	  x = brdec c b1 b2
//	  ret x                  // operand optional
//	}
//
// Branch targets create the predecessor lists in the order the edges appear,
// and φ arguments are matched against that order, so blocks that are branch
// targets of several blocks receive predecessors in source order.
func Parse(src string) (*Func, error) {
	if err := fpParse.Inject(); err != nil {
		return nil, err
	}
	p := &parser{
		vars:    map[string]VarID{},
		blocks:  map[string]*Block{},
		defined: map[string]bool{},
	}
	if err := p.run(src); err != nil {
		return nil, err
	}
	return p.f, nil
}

// MustParse is Parse for tests; it panics on error.
func MustParse(src string) *Func {
	f, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return f
}

// ParseAll parses a stream of functions (the output of cmd/ssagen, or
// several Func.String results concatenated).
func ParseAll(src string) ([]*Func, error) {
	var funcs []*Func
	var cur []string
	flush := func() error {
		hasFunc := false
		for _, l := range cur {
			if strings.HasPrefix(strings.TrimSpace(l), "func ") {
				hasFunc = true
				break
			}
		}
		if !hasFunc {
			cur = nil // leading blanks or comments only
			return nil
		}
		f, err := Parse(strings.Join(cur, "\n"))
		if err != nil {
			return err
		}
		funcs = append(funcs, f)
		cur = nil
		return nil
	}
	for _, line := range strings.Split(src, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "func ") {
			if err := flush(); err != nil {
				return nil, err
			}
		}
		cur = append(cur, line)
	}
	if err := flush(); err != nil {
		return nil, err
	}
	if len(funcs) == 0 {
		return nil, fmt.Errorf("ir: no functions found")
	}
	return funcs, nil
}

type parser struct {
	f      *Func
	vars   map[string]VarID
	blocks map[string]*Block
	// defined marks the labels that actually appeared; branch targets
	// create blocks eagerly (forward references), so anything left in
	// blocks but not in defined at the end is an undefined target.
	defined map[string]bool
	cur     *Block
	// deferred edges: φ argument resolution needs final pred order, and
	// pred order is fixed by edge creation order, so edges are created
	// eagerly but φ lines are resolved at the end.
	phiFixups []phiFixup
}

type phiFixup struct {
	block *Block
	instr *Instr
	args  []string // "pred:var"
	line  int
}

func (p *parser) block(name string) *Block {
	if b, ok := p.blocks[name]; ok {
		return b
	}
	b := p.f.NewBlock(name)
	p.blocks[name] = b
	return b
}

func (p *parser) v(name string) VarID {
	if id, ok := p.vars[name]; ok {
		return id
	}
	id := p.f.NewVar(name)
	p.vars[name] = id
	return id
}

func (p *parser) run(src string) error {
	lines := strings.Split(src, "\n")
	for ln, raw := range lines {
		line := raw
		if i := strings.Index(line, "//"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if err := p.line(line, ln+1); err != nil {
			return fmt.Errorf("line %d: %w", ln+1, err)
		}
	}
	if p.f == nil {
		return fmt.Errorf("no function found")
	}
	if len(p.f.Blocks) == 0 {
		return fmt.Errorf("function %q has no blocks", p.f.Name)
	}
	var undefined []string
	for name := range p.blocks {
		if !p.defined[name] {
			undefined = append(undefined, name)
		}
	}
	if len(undefined) > 0 {
		sort.Strings(undefined)
		return fmt.Errorf("undefined block target(s): %s", strings.Join(undefined, ", "))
	}
	for _, fix := range p.phiFixups {
		if err := p.fixPhi(fix); err != nil {
			return err
		}
	}
	return nil
}

func (p *parser) line(line string, ln int) error {
	switch {
	case strings.HasPrefix(line, "func "):
		if p.f != nil {
			return fmt.Errorf("second %q inside function body (use ParseAll for streams)", "func")
		}
		name := strings.TrimSuffix(strings.TrimSpace(strings.TrimPrefix(line, "func ")), "{")
		p.f = NewFunc(strings.TrimSpace(name))
		return nil
	case line == "}":
		return nil
	case strings.HasSuffix(line, ":"):
		if p.f == nil {
			return fmt.Errorf("label before func header")
		}
		return p.label(strings.TrimSuffix(line, ":"))
	}
	if p.cur == nil {
		return fmt.Errorf("instruction outside block: %q", line)
	}
	return p.instr(line, ln)
}

func (p *parser) label(text string) error {
	freq := 1.0
	name := text
	if i := strings.Index(text, "("); i >= 0 {
		name = strings.TrimSpace(text[:i])
		inner := strings.TrimSuffix(strings.TrimSpace(text[i+1:]), ")")
		fields := strings.Fields(inner)
		if len(fields) != 2 || fields[0] != "freq" {
			return fmt.Errorf("bad block annotation %q", inner)
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return fmt.Errorf("bad freq: %w", err)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return fmt.Errorf("freq %v out of range", v)
		}
		freq = v
	}
	if name == "" {
		return fmt.Errorf("empty block label")
	}
	if p.defined[name] {
		return fmt.Errorf("duplicate label %q", name)
	}
	p.defined[name] = true
	b := p.block(name)
	b.Freq = freq
	p.cur = b
	return nil
}

var arithOps = map[string]Op{
	"add": OpAdd, "sub": OpSub, "mul": OpMul, "neg": OpNeg,
	"cmplt": OpCmpLT, "cmpeq": OpCmpEQ,
}

func (p *parser) instr(line string, ln int) error {
	b := p.cur
	var dst string
	rest := line
	if i := strings.Index(line, "="); i >= 0 && !strings.Contains(line[:i], " phi") {
		dst = strings.TrimSpace(line[:i])
		rest = strings.TrimSpace(line[i+1:])
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return fmt.Errorf("empty instruction")
	}
	op, args := fields[0], fields[1:]

	emit := func(in *Instr) { b.Instrs = append(b.Instrs, in) }

	// arity rejects operand-count mismatches up front; without it, the
	// args[i] indexing below would panic on truncated lines.
	arity := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("op %q wants %d operand(s), got %d", op, n, len(args))
		}
		return nil
	}
	// def rejects definitions without a destination, which would
	// otherwise silently create an anonymous variable.
	def := func() error {
		if dst == "" {
			return fmt.Errorf("op %q needs a destination (dst = %s ...)", op, op)
		}
		return nil
	}

	switch op {
	case "const":
		if err := def(); err != nil {
			return err
		}
		if err := arity(1); err != nil {
			return err
		}
		c, err := strconv.ParseInt(args[0], 10, 64)
		if err != nil {
			return err
		}
		emit(&Instr{Op: OpConst, Defs: []VarID{p.v(dst)}, Aux: c})
	case "param":
		if err := def(); err != nil {
			return err
		}
		if err := arity(1); err != nil {
			return err
		}
		n, err := strconv.Atoi(args[0])
		if err != nil {
			return err
		}
		if n < 0 || n > maxParamIndex {
			return fmt.Errorf("param index %d out of range [0, %d]", n, maxParamIndex)
		}
		if n+1 > p.f.NumParams {
			p.f.NumParams = n + 1
		}
		emit(&Instr{Op: OpParam, Defs: []VarID{p.v(dst)}, Aux: int64(n)})
	case "copy":
		if err := def(); err != nil {
			return err
		}
		if err := arity(1); err != nil {
			return err
		}
		emit(&Instr{Op: OpCopy, Defs: []VarID{p.v(dst)}, Uses: []VarID{p.v(args[0])}})
	case "phi":
		if err := def(); err != nil {
			return err
		}
		in := &Instr{Op: OpPhi, Defs: []VarID{p.v(dst)}}
		b.Phis = append(b.Phis, in)
		p.phiFixups = append(p.phiFixups, phiFixup{block: b, instr: in, args: args, line: ln})
	case "parcopy":
		in := &Instr{Op: OpParCopy}
		for _, a := range args {
			parts := strings.SplitN(a, ":", 2)
			if len(parts) != 2 {
				return fmt.Errorf("bad parcopy operand %q", a)
			}
			in.Defs = append(in.Defs, p.v(parts[0]))
			in.Uses = append(in.Uses, p.v(parts[1]))
		}
		emit(in)
	case "print":
		if err := arity(1); err != nil {
			return err
		}
		emit(&Instr{Op: OpPrint, Uses: []VarID{p.v(args[0])}})
	case "jump":
		if err := arity(1); err != nil {
			return err
		}
		emit(&Instr{Op: OpJump})
		AddEdge(b, p.block(args[0]))
	case "br":
		if err := arity(3); err != nil {
			return err
		}
		emit(&Instr{Op: OpBranch, Uses: []VarID{p.v(args[0])}})
		AddEdge(b, p.block(args[1]))
		AddEdge(b, p.block(args[2]))
	case "brdec":
		if err := def(); err != nil {
			return err
		}
		if err := arity(3); err != nil {
			return err
		}
		emit(&Instr{Op: OpBrDec, Defs: []VarID{p.v(dst)}, Uses: []VarID{p.v(args[0])}})
		AddEdge(b, p.block(args[1]))
		AddEdge(b, p.block(args[2]))
	case "ret":
		if len(args) > 1 {
			return fmt.Errorf("op %q wants at most 1 operand, got %d", op, len(args))
		}
		in := &Instr{Op: OpRet}
		if len(args) == 1 {
			in.Uses = []VarID{p.v(args[0])}
		}
		emit(in)
	case "nop":
		if err := arity(0); err != nil {
			return err
		}
		emit(&Instr{Op: OpNop})
	default:
		aop, ok := arithOps[op]
		if !ok {
			return fmt.Errorf("unknown op %q", op)
		}
		if err := def(); err != nil {
			return err
		}
		want := 2
		if aop == OpNeg {
			want = 1
		}
		if err := arity(want); err != nil {
			return err
		}
		in := &Instr{Op: aop, Defs: []VarID{p.v(dst)}}
		for _, a := range args {
			in.Uses = append(in.Uses, p.v(a))
		}
		emit(in)
	}
	return nil
}

// maxParamIndex bounds OpParam's Aux so hostile sources can't demand an
// absurd NumParams.
const maxParamIndex = 65535

func (p *parser) fixPhi(fix phiFixup) error {
	in := fix.instr
	in.Uses = make([]VarID, len(fix.block.Preds))
	for i := range in.Uses {
		in.Uses[i] = NoVar
	}
	for _, a := range fix.args {
		parts := strings.SplitN(a, ":", 2)
		if len(parts) != 2 {
			return fmt.Errorf("line %d: bad phi operand %q", fix.line, a)
		}
		pred, ok := p.blocks[parts[0]]
		if !ok {
			return fmt.Errorf("line %d: unknown phi predecessor %q", fix.line, parts[0])
		}
		idx := fix.block.PredIndex(pred)
		if idx < 0 {
			return fmt.Errorf("line %d: block %s is not a predecessor of %s", fix.line, parts[0], fix.block.Name)
		}
		in.Uses[idx] = p.v(parts[1])
	}
	for i, u := range in.Uses {
		if u == NoVar {
			return fmt.Errorf("line %d: phi in %s missing argument for predecessor %s",
				fix.line, fix.block.Name, fix.block.Preds[i].Name)
		}
	}
	return nil
}
