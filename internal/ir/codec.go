package ir

import (
	"encoding/json"
	"fmt"
	"math"
)

// JSON codec for Func, built for memo persistence. The textual form
// (Func.String / Parse) is NOT a faithful round trip for that purpose:
// Parse assigns VarIDs by first textual appearance, which can permute the
// variable universe, and Materialize's contract depends on the exact Vars
// prefix order. This codec preserves the universe verbatim — variable
// order, derived bases, register pins — and records Preds/Succs as
// explicit index lists so predecessor order (which fixes φ-argument
// matching) survives.

type funcJSON struct {
	Name      string      `json:"name"`
	NumParams int         `json:"num_params"`
	Vars      []varJSON   `json:"vars"`
	Blocks    []blockJSON `json:"blocks"`
}

type varJSON struct {
	Name string `json:"name,omitempty"`
	Reg  string `json:"reg,omitempty"`
	// Base is the index of the variable this one derives from, or nil.
	Base *int `json:"base,omitempty"`
}

type blockJSON struct {
	Name   string      `json:"name"`
	Freq   float64     `json:"freq"`
	Preds  []int       `json:"preds"`
	Succs  []int       `json:"succs"`
	Phis   []instrJSON `json:"phis,omitempty"`
	Instrs []instrJSON `json:"instrs"`
}

type instrJSON struct {
	Op   uint8 `json:"op"`
	Defs []int `json:"defs,omitempty"`
	Uses []int `json:"uses,omitempty"`
	Aux  int64 `json:"aux,omitempty"`
}

// EncodeJSON renders f as a single JSON object.
func EncodeJSON(f *Func) ([]byte, error) {
	out := funcJSON{
		Name:      f.Name,
		NumParams: f.NumParams,
		Vars:      make([]varJSON, len(f.Vars)),
		Blocks:    make([]blockJSON, len(f.Blocks)),
	}
	for i, v := range f.Vars {
		vj := varJSON{Name: v.Name, Reg: v.Reg}
		if v.base != NoVar {
			b := int(v.base)
			vj.Base = &b
		}
		out.Vars[i] = vj
	}
	for i, b := range f.Blocks {
		bj := blockJSON{
			Name:  b.Name,
			Freq:  b.Freq,
			Preds: blockIndices(b.Preds),
			Succs: blockIndices(b.Succs),
		}
		for _, in := range b.Phis {
			bj.Phis = append(bj.Phis, encodeInstr(in))
		}
		for _, in := range b.Instrs {
			bj.Instrs = append(bj.Instrs, encodeInstr(in))
		}
		out.Blocks[i] = bj
	}
	return json.Marshal(out)
}

func blockIndices(bs []*Block) []int {
	out := make([]int, len(bs))
	for i, b := range bs {
		out[i] = b.ID
	}
	return out
}

func encodeInstr(in *Instr) instrJSON {
	return instrJSON{
		Op:   uint8(in.Op),
		Defs: varIndices(in.Defs),
		Uses: varIndices(in.Uses),
		Aux:  in.Aux,
	}
}

func varIndices(vs []VarID) []int {
	if len(vs) == 0 {
		return nil
	}
	out := make([]int, len(vs))
	for i, v := range vs {
		out[i] = int(v)
	}
	return out
}

// DecodeJSON rebuilds a Func from EncodeJSON output. Every index is bounds
// checked and the result must pass Verify, so a corrupted or hand-edited
// snapshot entry is rejected rather than smuggled into the process.
func DecodeJSON(data []byte) (*Func, error) {
	var in funcJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("ir: decode: %w", err)
	}
	if in.NumParams < 0 || in.NumParams > maxParamIndex+1 {
		return nil, fmt.Errorf("ir: decode %q: num_params %d out of range", in.Name, in.NumParams)
	}
	if len(in.Blocks) == 0 {
		return nil, fmt.Errorf("ir: decode %q: no blocks", in.Name)
	}
	f := NewFunc(in.Name)
	f.NumParams = in.NumParams
	for i, vj := range in.Vars {
		id := f.NewVar(vj.Name)
		if vj.Reg != "" {
			f.Vars[id].Reg = vj.Reg
		}
		if vj.Base != nil {
			// Bases must point strictly backwards: VarName recurses
			// through base links, and a forward or self link would cycle.
			if *vj.Base < 0 || *vj.Base >= i {
				return nil, fmt.Errorf("ir: decode %q: var %d has bad base %d", in.Name, i, *vj.Base)
			}
			f.Vars[id].base = VarID(*vj.Base)
		}
	}
	nb, nv := len(in.Blocks), len(in.Vars)
	for _, bj := range in.Blocks {
		b := f.NewBlock(bj.Name)
		if math.IsNaN(bj.Freq) || math.IsInf(bj.Freq, 0) || bj.Freq < 0 {
			return nil, fmt.Errorf("ir: decode %q: block %s freq %v out of range", in.Name, b.Name, bj.Freq)
		}
		b.Freq = bj.Freq
	}
	for i, bj := range in.Blocks {
		b := f.Blocks[i]
		var err error
		if b.Preds, err = resolveBlocks(f, bj.Preds, nb); err != nil {
			return nil, fmt.Errorf("ir: decode %q: block %s preds: %w", in.Name, b.Name, err)
		}
		if b.Succs, err = resolveBlocks(f, bj.Succs, nb); err != nil {
			return nil, fmt.Errorf("ir: decode %q: block %s succs: %w", in.Name, b.Name, err)
		}
		for _, ij := range bj.Phis {
			instr, err := decodeInstr(ij, nv)
			if err != nil {
				return nil, fmt.Errorf("ir: decode %q: block %s: %w", in.Name, b.Name, err)
			}
			b.Phis = append(b.Phis, instr)
		}
		for _, ij := range bj.Instrs {
			instr, err := decodeInstr(ij, nv)
			if err != nil {
				return nil, fmt.Errorf("ir: decode %q: block %s: %w", in.Name, b.Name, err)
			}
			b.Instrs = append(b.Instrs, instr)
		}
	}
	if err := Verify(f); err != nil {
		return nil, fmt.Errorf("ir: decode %q: %w", in.Name, err)
	}
	return f, nil
}

func resolveBlocks(f *Func, idx []int, nb int) ([]*Block, error) {
	if len(idx) == 0 {
		return nil, nil
	}
	out := make([]*Block, len(idx))
	for i, id := range idx {
		if id < 0 || id >= nb {
			return nil, fmt.Errorf("block index %d out of range [0, %d)", id, nb)
		}
		out[i] = f.Blocks[id]
	}
	return out, nil
}

func decodeInstr(ij instrJSON, nv int) (*Instr, error) {
	if Op(ij.Op) > OpRet {
		return nil, fmt.Errorf("bad opcode %d", ij.Op)
	}
	in := &Instr{Op: Op(ij.Op), Aux: ij.Aux}
	var err error
	if in.Defs, err = resolveVars(ij.Defs, nv); err != nil {
		return nil, err
	}
	if in.Uses, err = resolveVars(ij.Uses, nv); err != nil {
		return nil, err
	}
	return in, nil
}

func resolveVars(idx []int, nv int) ([]VarID, error) {
	if len(idx) == 0 {
		return nil, nil
	}
	out := make([]VarID, len(idx))
	for i, id := range idx {
		if id < 0 || id >= nv {
			return nil, fmt.Errorf("var index %d out of range [0, %d)", id, nv)
		}
		out[i] = VarID(id)
	}
	return out, nil
}
