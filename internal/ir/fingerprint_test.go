package ir_test

import (
	"math/rand"
	"testing"

	"repro/internal/ir"
)

const fpDiamondSrc = `
func diamond {
entry:
  x = param 0
  zero = const 0
  c = cmplt x zero
  br c then else
then:
  one = const 1
  a = add x one
  jump join
else:
  two = const 2
  b = add x two
  jump join
join:
  y = phi then:a else:b
  print y
  ret y
}
`

// TestFingerprintNameInsensitive: renaming every variable and block must
// not move the fingerprint — names never feed translation decisions, and
// the memo's whole point is that a renamed near-duplicate still hits.
func TestFingerprintNameInsensitive(t *testing.T) {
	f := ir.MustParse(fpDiamondSrc)
	fp := f.Fingerprint()

	g := ir.MustParse(fpDiamondSrc)
	for id := range g.Vars {
		g.Vars[id].Name = g.VarName(ir.VarID(id)) + "_renamed"
	}
	for _, b := range g.Blocks {
		b.Name += "_r"
	}
	if g.Fingerprint() != fp {
		t.Fatalf("rename moved the fingerprint: %v vs %v", g.Fingerprint(), fp)
	}
	g.Name = "other"
	if g.Fingerprint() != fp {
		t.Fatal("function name moved the fingerprint")
	}
}

// TestFingerprintStructuralSensitivity: every structural dimension the
// translation observes must move the fingerprint.
func TestFingerprintStructuralSensitivity(t *testing.T) {
	base := ir.MustParse(fpDiamondSrc).Fingerprint()

	edit := func(name string, mutate func(f *ir.Func)) {
		f := ir.MustParse(fpDiamondSrc)
		mutate(f)
		if f.Fingerprint() == base {
			t.Errorf("%s: fingerprint did not move", name)
		}
	}
	edit("extra instruction", func(f *ir.Func) {
		v := f.NewVar("extra")
		e := f.Entry()
		e.Instrs = append(e.Instrs[:len(e.Instrs)-1],
			&ir.Instr{Op: ir.OpConst, Defs: []ir.VarID{v}, Aux: 9},
			e.Instrs[len(e.Instrs)-1])
		f.MarkBlockMutated(e)
	})
	edit("changed aux", func(f *ir.Func) {
		f.Blocks[1].Instrs[0].Aux = 42
		f.MarkBlockMutated(f.Blocks[1])
	})
	edit("changed operand", func(f *ir.Func) {
		in := f.Blocks[1].Instrs[1] // a = add x one
		in.Uses[0] = in.Uses[1]
		f.MarkBlockMutated(f.Blocks[1])
	})
	edit("swapped successors", func(f *ir.Func) {
		e := f.Entry()
		e.Succs[0], e.Succs[1] = e.Succs[1], e.Succs[0]
		f.MarkCFGMutated()
	})
	edit("register pin", func(f *ir.Func) {
		f.Vars[0].Reg = "R0"
		f.MarkCodeMutated()
	})
	edit("block frequency", func(f *ir.Func) {
		f.Blocks[1].Freq = 100
		f.MarkBlockMutated(f.Blocks[1])
	})
}

// TestFingerprintIncrementalMatchesFull: a fingerprint patched from the
// dirty-block log must equal the from-scratch fingerprint of the same
// structure (computed on a clone, whose poisoned log forces the full path).
func TestFingerprintIncrementalMatchesFull(t *testing.T) {
	f := ir.MustParse(fpDiamondSrc)
	rng := rand.New(rand.NewSource(41))
	for step := 0; step < 40; step++ {
		_ = f.Fingerprint() // seed/refresh the per-block summand cache
		b := f.Blocks[rng.Intn(len(f.Blocks))]
		n := len(b.Instrs)
		switch rng.Intn(2) {
		case 0:
			b.Instrs = append(b.Instrs[:n-1],
				&ir.Instr{Op: ir.OpConst, Defs: []ir.VarID{0}, Aux: int64(step)},
				b.Instrs[n-1])
		case 1:
			b.Instrs[0].Aux = int64(rng.Intn(1000))
		}
		f.MarkBlockMutated(b)

		got := f.Fingerprint() // incremental: valid cache + dirty log
		want := ir.Clone(f).Fingerprint()
		if got != want {
			t.Fatalf("step %d: incremental fingerprint %v != full %v", step, got, want)
		}
	}
}

// TestDirtySince covers the dirty-block log contract: per-block records
// until capacity, wholesale poisoning by code/CFG marks, and the ok=false
// signal for generations before the floor.
func TestDirtySince(t *testing.T) {
	f := ir.MustParse(fpDiamondSrc)

	// The parse itself mutated wholesale; a generation captured now is at
	// the floor and usable.
	g := f.CodeGen()
	if dirty, ok := f.DirtySince(g, nil); !ok || len(dirty) != 0 {
		t.Fatalf("clean function: dirty=%v ok=%v", dirty, ok)
	}

	f.MarkBlockMutated(f.Blocks[1])
	f.MarkBlockMutated(f.Blocks[2])
	f.MarkBlockMutated(f.Blocks[1]) // duplicate must dedupe
	dirty, ok := f.DirtySince(g, nil)
	if !ok || len(dirty) != 2 {
		t.Fatalf("after two block edits: dirty=%v ok=%v", dirty, ok)
	}
	seen := map[int32]bool{dirty[0]: true, dirty[1]: true}
	if !seen[1] || !seen[2] {
		t.Fatalf("wrong dirty blocks: %v", dirty)
	}

	// A wholesale code mark poisons every older generation.
	f.MarkCodeMutated()
	if _, ok := f.DirtySince(g, nil); ok {
		t.Fatal("generation before a wholesale mark must not be repairable")
	}
	g = f.CodeGen()
	if dirty, ok := f.DirtySince(g, nil); !ok || len(dirty) != 0 {
		t.Fatalf("fresh generation after poison: dirty=%v ok=%v", dirty, ok)
	}

	// Overflowing the log poisons too.
	for i := 0; i < 100; i++ {
		f.MarkBlockMutated(f.Blocks[0])
	}
	if _, ok := f.DirtySince(g, nil); ok {
		t.Fatal("overflowed log must report not-repairable")
	}
}

// TestDefUseRepairMatchesFresh: random additive edit sequences, repaired
// via RepairBlocks from the dirty set, must leave the index identical to a
// from-scratch NewDefUse — including φ uses recorded at predecessor blocks.
func TestDefUseRepairMatchesFresh(t *testing.T) {
	srcs := []string{fpDiamondSrc, `
func l {
entry:
  a = param 0
  b = const 1
  jump head
head:
  x = phi entry:a latch:y
  c = cmplt x b
  br c body exit
body:
  y = add x b
  jump latch
latch:
  print y
  jump head
exit:
  print a
  ret x
}
`}
	for _, src := range srcs {
		f := ir.MustParse(src)
		du := ir.NewDefUse(f)
		du.EnableRepair()
		rng := rand.New(rand.NewSource(17))
		params := []ir.VarID{f.Blocks[0].Instrs[0].Defs[0]} // entry-defined, dominates everything

		g := f.CodeGen()
		for step := 0; step < 60; step++ {
			b := f.Blocks[rng.Intn(len(f.Blocks))]
			n := len(b.Instrs)
			switch rng.Intn(3) {
			case 0: // fresh def + use
				v := f.NewDerivedVar(params[0])
				b.Instrs = append(b.Instrs[:n-1],
					&ir.Instr{Op: ir.OpCopy, Defs: []ir.VarID{v}, Uses: []ir.VarID{params[0]}},
					b.Instrs[n-1])
			case 1: // extra use of an entry-dominating var
				b.Instrs = append(b.Instrs[:n-1],
					&ir.Instr{Op: ir.OpPrint, Uses: []ir.VarID{params[rng.Intn(len(params))]}},
					b.Instrs[n-1])
			case 2: // retarget an existing non-φ use
				for _, in := range b.Instrs {
					if in.Op == ir.OpPrint {
						in.Uses[0] = params[rng.Intn(len(params))]
						break
					}
				}
			}
			// NewVar (case 0) poisons the log wholesale; re-anchor the
			// generation on those steps and repair the block directly.
			dirty, ok := f.DirtySince(g, nil)
			if !ok {
				dirty = []int32{int32(b.ID)}
			}
			f.MarkBlockMutated(b)
			if d2, ok2 := f.DirtySince(g, nil); ok2 {
				dirty = d2
			}
			du.RepairBlocks(dirty)
			g = f.CodeGen()

			want := ir.NewDefUse(f)
			for v := range f.Vars {
				vid := ir.VarID(v)
				if du.HasDef(vid) != want.HasDef(vid) {
					t.Fatalf("step %d: var %s HasDef mismatch", step, f.VarName(vid))
				}
				if du.HasDef(vid) && (du.DefBlock(vid) != want.DefBlock(vid) || du.DefSlot(vid) != want.DefSlot(vid)) {
					t.Fatalf("step %d: var %s def site mismatch: (%d,%d) vs (%d,%d)",
						step, f.VarName(vid), du.DefBlock(vid), du.DefSlot(vid),
						want.DefBlock(vid), want.DefSlot(vid))
				}
				a, w := du.Uses(vid), want.Uses(vid)
				if len(a) != len(w) {
					t.Fatalf("step %d: var %s has %d uses, want %d", step, f.VarName(vid), len(a), len(w))
				}
				for i := range a {
					if a[i].Block != w[i].Block || a[i].Slot != w[i].Slot {
						t.Fatalf("step %d: var %s use %d at (%d,%d), want (%d,%d)",
							step, f.VarName(vid), i, a[i].Block, a[i].Slot, w[i].Block, w[i].Slot)
					}
				}
			}
		}
	}
}
