// Package livecheck implements fast liveness *checking* for SSA-form
// programs in the style of Boissinot et al. (CGO'08), the substrate the
// paper uses to drop liveness sets entirely (option "LiveCheck").
//
// Instead of dataflow liveness sets, the checker precomputes, per basic
// block, the set R(q) of blocks reachable from q in the reduced CFG (back
// edges removed, where back edges are DFS retreating edges — equivalently,
// for reducible CFGs, edges whose target dominates their source), plus the
// list of back edges.
//
// A query for variable a defined in block d (which dominates all its uses)
// then closes q's reachability over back edges *without ever crossing d*:
// starting from R(q), the targets of back edges whose source is reached are
// accepted — re-entering their loop — provided the target is strictly
// inside d's dominance region (a target outside it can only reach a's uses
// back through d, which redefines a; the definition block itself is a
// barrier). a is live-in at q iff the closure reaches a use. Because the
// structures depend only on the CFG, they stay valid while instructions are
// inserted or removed — exactly what the out-of-SSA translator needs while
// it inserts copies.
//
// The implementation is validated by differential tests against package
// liveness on generated (reducible) CFGs; irreducible CFGs are outside the
// scope of the workload generator, as in the paper's experimental setup.
package livecheck

import (
	"repro/internal/bitset"
	"repro/internal/dom"
	"repro/internal/interference"
	"repro/internal/ir"
)

// Checker implements the block-boundary liveness query interface shared
// with package liveness, so the translator swaps dataflow sets for the
// checker without touching its callers.
var _ interference.BlockLiveness = (*Checker)(nil)

// Checker answers liveness queries from CFG-only precomputation plus the
// def-use index of the current program.
type Checker struct {
	f     *ir.Func
	dt    *dom.Tree
	du    *ir.DefUse
	r     []*bitset.Set // reduced reachability per block
	backs []backEdge    // all back edges of the CFG

	// Per-query scratch, reused across queries; the checker is therefore
	// not safe for concurrent use.
	reach    *bitset.Set
	accepted *bitset.Set
	lastQ    int // block of the cached closure; -1 when invalid
	lastD    int // definition block of the cached closure
}

type backEdge struct{ src, tgt int }

// New precomputes the checking structures for f. The def-use index du must
// describe the current instructions of f; call SetDefUse after rewriting
// the program (the CFG-derived structures are reused as long as the CFG is
// unchanged).
func New(f *ir.Func, dt *dom.Tree, du *ir.DefUse) *Checker {
	n := len(f.Blocks)
	c := &Checker{f: f, dt: dt, du: du}

	// Identify back edges with a DFS from the entry: an edge is a back
	// edge when its target is on the current DFS stack (retreating edge).
	// backFrom[s] lists the back-edge targets out of block s (a handful at
	// most — the out-degree is bounded by the terminator arity).
	onStack := make([]bool, n)
	visited := make([]bool, n)
	backFrom := make([][]int, n)
	type frame struct {
		b    *ir.Block
		next int
	}
	stack := []frame{{b: f.Entry()}}
	visited[f.Entry().ID] = true
	onStack[f.Entry().ID] = true
	for len(stack) > 0 {
		fr := &stack[len(stack)-1]
		if fr.next < len(fr.b.Succs) {
			s := fr.b.Succs[fr.next]
			fr.next++
			if onStack[s.ID] {
				backFrom[fr.b.ID] = append(backFrom[fr.b.ID], s.ID)
				continue
			}
			if !visited[s.ID] {
				visited[s.ID] = true
				onStack[s.ID] = true
				stack = append(stack, frame{b: s})
			}
			continue
		}
		onStack[fr.b.ID] = false
		stack = stack[:len(stack)-1]
	}

	// Reduced reachability in reverse topological order: the reduced graph
	// is acyclic, and the reverse of the DFS postorder of the reduced graph
	// is a topological order. Reuse the dominator tree's RPO, which was
	// computed on the full graph; it is still a valid topological order of
	// the reduced graph because removing retreating edges keeps every
	// remaining edge forward or cross with respect to that DFS.
	c.r = make([]*bitset.Set, n)
	for i := 0; i < n; i++ {
		c.r[i] = bitset.New(n)
	}
	rpo := dt.RPO()
	for i := len(rpo) - 1; i >= 0; i-- {
		q := rpo[i]
		c.r[q].Add(q)
	succ:
		for _, s := range f.Blocks[q].Succs {
			for _, t := range backFrom[q] {
				if t == s.ID {
					continue succ
				}
			}
			c.r[q].UnionWith(c.r[s.ID])
		}
	}

	for s := 0; s < n; s++ {
		for _, t := range backFrom[s] {
			c.backs = append(c.backs, backEdge{s, t})
		}
	}
	c.reach = bitset.New(n)
	c.accepted = bitset.New(n)
	c.lastQ = -1
	return c
}

// closure computes, into c.reach, the blocks reachable from q without
// crossing the definition block d: R(q) closed over back edges whose target
// lies strictly inside d's dominance region. The result is cached for
// consecutive queries with the same (q, d).
func (c *Checker) closure(q, d int) *bitset.Set {
	if c.lastQ == q && c.lastD == d {
		return c.reach
	}
	c.lastQ, c.lastD = q, d
	c.reach.CopyFrom(c.r[q])
	c.accepted.Clear()
	for changed := true; changed; {
		changed = false
		for _, be := range c.backs {
			if c.accepted.Has(be.tgt) || be.tgt == d || !c.reach.Has(be.src) {
				continue
			}
			if !c.dt.StrictlyDominates(d, be.tgt) {
				continue // re-entering that loop would cross d
			}
			c.accepted.Add(be.tgt)
			c.reach.UnionWith(c.r[be.tgt])
			changed = true
		}
	}
	return c.reach
}

// SetDefUse installs a fresh def-use index after the program's instructions
// were rewritten (the CFG must be unchanged).
func (c *Checker) SetDefUse(du *ir.DefUse) { c.du = du }

// LiveInBlock reports whether v is live at entry of block q
// (φ results of q excluded, matching package liveness).
func (c *Checker) LiveInBlock(v ir.VarID, q int) bool {
	d := c.du.DefBlock(v)
	if d < 0 || d == q || !c.dt.Dominates(d, q) {
		return false
	}
	reach := c.closure(q, d)
	for _, u := range c.du.Uses(v) {
		ub := int(u.Block)
		if ub == d {
			// A body use inside the defining block sits before d's exit; a
			// φ use on an edge d→succ is only live on that very edge. In
			// both cases reaching it from elsewhere would cross d.
			continue
		}
		if reach.Has(ub) {
			return true
		}
	}
	return false
}

// LiveOutBlock reports whether v is live at exit of block q, including
// variables flowing into φ-functions of successors along q's edges.
func (c *Checker) LiveOutBlock(v ir.VarID, q int) bool {
	d := c.du.DefBlock(v)
	if d < 0 || !c.dt.Dominates(d, q) {
		return false
	}
	// The use lists are (block, slot)-sorted: a φ use along one of q's edges
	// is an exact-key lookup, and "some use beyond the defining block" is a
	// check of the list's ends.
	if c.du.HasUseAt(v, q, ir.PhiUseSlot) {
		return true // used by a φ of a successor along one of q's edges
	}
	if d == q {
		// Live-out of the defining block iff some use lies beyond it.
		return c.du.UsedOutsideBlock(v, q)
	}
	for _, s := range c.f.Blocks[q].Succs {
		if c.LiveInBlock(v, s.ID) {
			return true
		}
	}
	return false
}

// R exposes the reduced reachability of block q (tests).
func (c *Checker) R(q int) []int { return c.r[q].Elems() }

// Bytes returns the footprint of the precomputed structures measured as
// stored: one reachability bit set per block plus the two query scratch
// sets and the back-edge list.
func (c *Checker) Bytes() int {
	total := c.reach.Bytes() + c.accepted.Bytes() + 16*len(c.backs)
	for i := range c.r {
		total += c.r[i].Bytes()
	}
	return total
}

// EvaluatedBytes is the paper's perfect-memory formula for the checking
// structures: ceil(nblocks/8) * nblocks * 2.
func EvaluatedBytes(nblocks int) int { return (nblocks + 7) / 8 * nblocks * 2 }
