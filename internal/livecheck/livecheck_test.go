package livecheck_test

import (
	"testing"

	"repro/internal/cfggen"
	"repro/internal/dom"
	"repro/internal/ir"
	"repro/internal/livecheck"
	"repro/internal/liveness"
	"repro/internal/sreedhar"
)

// TestMatchesDataflowOnGeneratedCFGs is the core differential test: on the
// generator's (reducible) CFGs, the CFG-only checker must answer exactly
// like the dataflow liveness sets, for every variable at every block.
func TestMatchesDataflowOnGeneratedCFGs(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		p := cfggen.DefaultProfile("lc", 100+seed)
		p.Funcs = 6
		for _, f := range cfggen.Generate(p) {
			compareAll(t, f)
		}
	}
}

// TestMatchesDataflowAfterCopyInsertion repeats the comparison on the
// program the translator actually queries: after Method I copy insertion,
// with parallel copies and primed variables in place.
func TestMatchesDataflowAfterCopyInsertion(t *testing.T) {
	p := cfggen.DefaultProfile("lci", 321)
	p.Funcs = 6
	for _, f := range cfggen.Generate(p) {
		sreedhar.SplitDuplicatePredEdges(f)
		sreedhar.SplitBranchDefEdges(f)
		if _, err := sreedhar.InsertCopies(f); err != nil {
			t.Fatal(err)
		}
		compareAll(t, f)
	}
}

func compareAll(t *testing.T, f *ir.Func) {
	t.Helper()
	dt := dom.Build(f)
	du := ir.NewDefUse(f)
	lc := livecheck.New(f, dt, du)
	lv := liveness.Compute(f)
	for _, b := range f.Blocks {
		for v := range f.Vars {
			vid := ir.VarID(v)
			if gotIn, wantIn := lc.LiveInBlock(vid, b.ID), lv.LiveInBlock(vid, b.ID); gotIn != wantIn {
				t.Fatalf("%s: liveIn(%s, %s) = %v, dataflow says %v\n%s",
					f.Name, f.VarName(vid), b.Name, gotIn, wantIn, f)
			}
			if gotOut, wantOut := lc.LiveOutBlock(vid, b.ID), lv.LiveOutBlock(vid, b.ID); gotOut != wantOut {
				t.Fatalf("%s: liveOut(%s, %s) = %v, dataflow says %v\n%s",
					f.Name, f.VarName(vid), b.Name, gotOut, wantOut, f)
			}
		}
	}
}

// TestStructuresSurviveCopyInsertion: the precomputed structures depend
// only on the CFG, so inserting instructions must not invalidate them —
// only the def-use index is refreshed.
func TestStructuresSurviveCopyInsertion(t *testing.T) {
	p := cfggen.DefaultProfile("lcsurvive", 77)
	p.Funcs = 4
	for _, f := range cfggen.Generate(p) {
		sreedhar.SplitDuplicatePredEdges(f)
		sreedhar.SplitBranchDefEdges(f)
		dt := dom.Build(f)
		lc := livecheck.New(f, dt, ir.NewDefUse(f))
		if _, err := sreedhar.InsertCopies(f); err != nil {
			t.Fatal(err)
		}
		lc.SetDefUse(ir.NewDefUse(f)) // CFG unchanged: reuse R and T*
		lv := liveness.Compute(f)
		for _, b := range f.Blocks {
			for v := range f.Vars {
				vid := ir.VarID(v)
				if lc.LiveOutBlock(vid, b.ID) != lv.LiveOutBlock(vid, b.ID) {
					t.Fatalf("%s: stale-structure disagreement on %s at %s",
						f.Name, f.VarName(vid), b.Name)
				}
			}
		}
	}
}

func TestFootprintFormula(t *testing.T) {
	if livecheck.EvaluatedBytes(16) != 2*2*16 {
		t.Fatalf("EvaluatedBytes(16) = %d", livecheck.EvaluatedBytes(16))
	}
	f := ir.MustParse(`
func t {
entry:
  a = param 0
  jump b
b:
  print a
  ret a
}
`)
	dt := dom.Build(f)
	lc := livecheck.New(f, dt, ir.NewDefUse(f))
	if lc.Bytes() <= 0 {
		t.Fatal("measured footprint must be positive")
	}
}
