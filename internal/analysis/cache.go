// Package analysis provides the shared, invalidation-aware analysis cache
// of the pass pipeline. A Cache lazily computes and memoizes the expensive
// substrates of the out-of-SSA translator — dominance, def-use, dataflow
// liveness, the fast liveness checker, and the interference graph — keyed
// per *ir.Func, and invalidates them with the IR's generation counters
// (ir.Func.CFGGen/CodeGen):
//
//   - the dominator tree depends only on the block/edge structure, so it
//     survives instruction-level rewriting (copy insertion, renaming);
//   - def-use, liveness, the liveness checker, and the interference graph
//     additionally depend on the instruction contents.
//
// A pass that mutates the IR but keeps an analysis consistent by hand (the
// virtualized coalescer maintains the def-use index while it materializes
// copies) declares so with Preserve, which revalidates the entry at the
// current generations. Everything else goes stale automatically and is
// recomputed on the next request.
//
// The Cache is not safe for concurrent use; the batch driver gives each
// worker its own per-function cache.
package analysis

import (
	"repro/internal/dom"
	"repro/internal/interference"
	"repro/internal/ir"
	"repro/internal/livecheck"
	"repro/internal/liveness"
)

// Kind identifies one cached analysis.
type Kind uint8

const (
	// Dom is the dominator tree (dom.Build).
	Dom Kind = iota
	// DefUse is the SSA def-use index (ir.NewDefUse).
	DefUse
	// Liveness is dataflow per-block liveness (liveness.ComputeWith).
	Liveness
	// LiveCheck is the CFG-only fast liveness checker (livecheck.New).
	LiveCheck
	// Graph is the interference bit matrix (interference.BuildGraph).
	Graph
	// NumKinds bounds the Kind space.
	NumKinds
)

var kindNames = [...]string{
	Dom:       "dom",
	DefUse:    "defuse",
	Liveness:  "liveness",
	LiveCheck: "livecheck",
	Graph:     "graph",
}

func (k Kind) String() string { return kindNames[k] }

// gens snapshots the function generations an entry was computed at.
type gens struct{ cfg, code uint64 }

// Cache memoizes analyses for one function.
type Cache struct {
	f *ir.Func

	dom   *dom.Tree
	du    *ir.DefUse
	live  *liveness.Info
	lck   *livecheck.Checker
	graph *interference.Graph

	at      [NumKinds]gens
	liveBE  liveness.Backend
	liveSc  *liveness.Scratch
	graphMD interference.GraphMode

	// incremental enables dirty-set repair (EnableIncremental): liveness is
	// computed with retained transfer state and patched from the function's
	// dirty-block log when it goes stale, and the def-use index is patched
	// likewise, instead of both being recomputed wholesale. Off by default —
	// the retained state costs allocations the one-shot translation hot
	// path must not pay.
	incremental bool
	dirtyBuf    []int32

	// Hits and Misses count, per analysis, requests served from the cache
	// and requests that (re)computed. The pipeline tests assert on them.
	Hits, Misses [NumKinds]uint64
	// Repairs counts stale entries brought current by dirty-set patching
	// rather than recomputation (only ever non-zero after
	// EnableIncremental). A repair also counts as a miss-avoided: it is
	// reported separately, not folded into Hits.
	Repairs [NumKinds]uint64
}

// EnableIncremental switches the cache into incremental mode: subsequent
// liveness computations retain their transfer state
// (liveness.ComputeIncremental) and def-use indexes build their repair
// index, so when the function is edited through ir.Func.MarkBlockMutated
// the stale entries are patched from the dirty-block log in time
// proportional to the edit. Intended for long-lived analysis sessions over
// a function being edited; one-shot translations should leave it off.
func (c *Cache) EnableIncremental() { c.incremental = true }

// NewCache returns an empty cache for f.
func NewCache(f *ir.Func) *Cache { return &Cache{f: f} }

// Func returns the function the cache serves.
func (c *Cache) Func() *ir.Func { return c.f }

// now returns the function's current generations.
func (c *Cache) now() gens { return gens{cfg: c.f.CFGGen(), code: c.f.CodeGen()} }

// validCFG reports whether entry k was computed at the current CFG
// generation (sufficient for CFG-only analyses).
func (c *Cache) validCFG(k Kind) bool { return c.at[k].cfg == c.f.CFGGen() }

// valid reports whether entry k matches both current generations.
func (c *Cache) valid(k Kind) bool {
	return c.at[k].cfg == c.f.CFGGen() && c.at[k].code == c.f.CodeGen()
}

// Dom returns the dominator tree, rebuilding it only when the block/edge
// structure changed since it was computed.
func (c *Cache) Dom() *dom.Tree {
	if c.dom != nil && c.validCFG(Dom) {
		c.Hits[Dom]++
		return c.dom
	}
	c.Misses[Dom]++
	c.dom = dom.Build(c.f)
	c.at[Dom] = c.now()
	return c.dom
}

// DefUse returns the def-use index of the current instructions. In
// incremental mode a stale index whose staleness is fully attributed in
// the dirty-block log is patched in place (RepairBlocks) instead of
// rebuilt.
func (c *Cache) DefUse() *ir.DefUse {
	if c.du != nil && c.valid(DefUse) {
		c.Hits[DefUse]++
		return c.du
	}
	if c.incremental && c.du != nil && c.du.Repairable() && c.validCFG(DefUse) {
		if dirty, ok := c.f.DirtySince(c.at[DefUse].code, c.dirtyBuf[:0]); ok {
			c.dirtyBuf = dirty
			c.du.RepairBlocks(dirty)
			c.Repairs[DefUse]++
			c.at[DefUse] = c.now()
			return c.du
		}
	}
	c.Misses[DefUse]++
	c.du = ir.NewDefUse(c.f)
	if c.incremental {
		c.du.EnableRepair()
	}
	c.at[DefUse] = c.now()
	return c.du
}

// SetLivenessScratch installs a caller-owned worklist scratch that every
// subsequent Liveness (re)computation runs in, replacing the per-compute
// draw from the liveness package pool; nil reverts to the pool. The batch
// driver threads each worker's private scratch through the contexts it
// creates (and detaches it once the function is done), so per-function
// liveness recomputations stop contending on the global pool. The scratch
// is working state only — no returned Info references it — but it must
// not be shared with a concurrent computation.
func (c *Cache) SetLivenessScratch(sc *liveness.Scratch) { c.liveSc = sc }

// Liveness returns dataflow liveness with the requested backend. Asking for
// a different backend than the cached one recomputes. Every recomputation
// runs in the installed scratch (SetLivenessScratch) or, absent one, draws
// from the liveness package pool, so both the repeated invalidations within
// one function's translation and a batch worker translating thousands of
// functions reuse the same working-state buffers instead of re-allocating
// them per run.
func (c *Cache) Liveness(be liveness.Backend) *liveness.Info {
	if c.live != nil && c.liveBE == be && c.valid(Liveness) {
		c.Hits[Liveness]++
		return c.live
	}
	if c.incremental && c.live != nil && c.liveBE == be && c.live.Repairable() && c.validCFG(Liveness) {
		if dirty, ok := c.f.DirtySince(c.at[Liveness].code, c.dirtyBuf[:0]); ok {
			c.dirtyBuf = dirty
			liveness.Repair(c.f, c.live, dirty)
			c.Repairs[Liveness]++
			c.at[Liveness] = c.now()
			return c.live
		}
	}
	c.Misses[Liveness]++
	switch {
	case c.incremental && c.liveSc != nil:
		c.live = liveness.ComputeIncrementalInto(c.f, be, c.liveSc)
	case c.incremental:
		c.live = liveness.ComputeIncremental(c.f, be)
	case c.liveSc != nil:
		c.live = liveness.ComputeInto(c.f, be, c.liveSc)
	default:
		c.live = liveness.ComputeWith(c.f, be)
	}
	c.liveBE = be
	c.at[Liveness] = c.now()
	return c.live
}

// LiveCheck returns the fast liveness checker. Its construction pulls the
// dominator tree and def-use index through the cache, so those requests
// count as hits or misses of their own.
func (c *Cache) LiveCheck() *livecheck.Checker {
	if c.lck != nil && c.valid(LiveCheck) {
		c.Hits[LiveCheck]++
		return c.lck
	}
	c.Misses[LiveCheck]++
	dt := c.Dom()
	du := c.DefUse()
	c.lck = livecheck.New(c.f, dt, du)
	c.at[LiveCheck] = c.now()
	return c.lck
}

// GraphWith returns the interference graph for the given mode, pulling
// liveness sets (with the given backend) through the cache. vals is the
// SSA value indexing of ssa.Values and must correspond to the current
// code; a mode change recomputes, and IR mutation invalidates as usual.
func (c *Cache) GraphWith(mode interference.GraphMode, vals []ir.VarID, be liveness.Backend) *interference.Graph {
	if c.graph != nil && c.graphMD == mode && c.valid(Graph) {
		c.Hits[Graph]++
		return c.graph
	}
	c.Misses[Graph]++
	live := c.Liveness(be)
	c.graph = interference.BuildGraph(c.f, live, mode, vals)
	c.graphMD = mode
	c.at[Graph] = c.now()
	return c.graph
}

// Preserve declares that the caller kept analysis k consistent across the
// mutations it performed: the cached entry is revalidated at the current
// generations. Preserving an analysis that was never computed is a no-op.
func (c *Cache) Preserve(k Kind) {
	if c.computed(k) {
		c.at[k] = c.now()
	}
}

// Invalidate drops analysis k regardless of generations.
func (c *Cache) Invalidate(k Kind) {
	switch k {
	case Dom:
		c.dom = nil
	case DefUse:
		c.du = nil
	case Liveness:
		c.live = nil
	case LiveCheck:
		c.lck = nil
	case Graph:
		c.graph = nil
	}
}

// InvalidateAll drops every cached analysis.
func (c *Cache) InvalidateAll() {
	for k := Kind(0); k < NumKinds; k++ {
		c.Invalidate(k)
	}
}

// computed reports whether analysis k currently holds a value.
func (c *Cache) computed(k Kind) bool {
	switch k {
	case Dom:
		return c.dom != nil
	case DefUse:
		return c.du != nil
	case Liveness:
		return c.live != nil
	case LiveCheck:
		return c.lck != nil
	case Graph:
		return c.graph != nil
	}
	return false
}
