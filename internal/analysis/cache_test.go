package analysis

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/liveness"
)

// buildDiamond returns a small SSA function:
//
//	entry → (then | else) → join, with a φ in join.
func buildDiamond(t *testing.T) *ir.Func {
	t.Helper()
	f, err := ir.Parse(`
func diamond {
entry:
  x = param 0
  zero = const 0
  c = cmplt x zero
  br c then else
then:
  one = const 1
  a = add x one
  jump join
else:
  two = const 2
  b = add x two
  jump join
join:
  y = phi then:a else:b
  print y
  ret y
}
`)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestCacheMemoizes(t *testing.T) {
	f := buildDiamond(t)
	c := NewCache(f)

	dt := c.Dom()
	if c.Misses[Dom] != 1 || c.Hits[Dom] != 0 {
		t.Fatalf("first Dom: misses=%d hits=%d", c.Misses[Dom], c.Hits[Dom])
	}
	if c.Dom() != dt {
		t.Fatal("second Dom request returned a different tree")
	}
	if c.Hits[Dom] != 1 {
		t.Fatalf("second Dom was not a hit: hits=%d", c.Hits[Dom])
	}

	du := c.DefUse()
	live := c.Liveness(liveness.Bitsets)
	lck := c.LiveCheck()
	if c.DefUse() != du || c.Liveness(liveness.Bitsets) != live || c.LiveCheck() != lck {
		t.Fatal("repeated requests recomputed despite no mutation")
	}
}

// TestCacheCodeMutation: an instruction-level mutation must recompute
// def-use and liveness but preserve the dominator tree (the CFG is
// untouched).
func TestCacheCodeMutation(t *testing.T) {
	f := buildDiamond(t)
	c := NewCache(f)

	dt, du, live := c.Dom(), c.DefUse(), c.Liveness(liveness.Bitsets)

	// Append a copy instruction before the terminator of the entry block.
	v := f.NewVar("t") // bumps the code generation
	entry := f.Entry()
	ir.InsertBefore(entry, ir.CopyInsertIndex(entry), &ir.Instr{
		Op: ir.OpCopy, Defs: []ir.VarID{v}, Uses: []ir.VarID{entry.Instrs[0].Defs[0]},
	})

	if c.Dom() != dt {
		t.Fatal("dominator tree was recomputed although the CFG is unchanged")
	}
	if c.DefUse() == du {
		t.Fatal("stale def-use index served after instruction mutation")
	}
	if c.Liveness(liveness.Bitsets) == live {
		t.Fatal("stale liveness served after instruction mutation")
	}
}

// TestCacheCFGMutation: a CFG mutation must recompute everything.
func TestCacheCFGMutation(t *testing.T) {
	f := buildDiamond(t)
	c := NewCache(f)

	dt, du, live, lck := c.Dom(), c.DefUse(), c.Liveness(liveness.Bitsets), c.LiveCheck()

	// Split the critical-free edge entry→then.
	ir.SplitEdge(f, f.Blocks[0], f.Blocks[1])

	if c.Dom() == dt {
		t.Fatal("stale dominator tree served after CFG mutation")
	}
	if c.DefUse() == du {
		t.Fatal("stale def-use served after CFG mutation")
	}
	if c.Liveness(liveness.Bitsets) == live {
		t.Fatal("stale liveness served after CFG mutation")
	}
	if c.LiveCheck() == lck {
		t.Fatal("stale liveness checker served after CFG mutation")
	}
}

// TestCachePreserve: a pass that maintains an analysis by hand revalidates
// it with Preserve and keeps being served the same object, while
// non-preserved analyses are recomputed.
func TestCachePreserve(t *testing.T) {
	f := buildDiamond(t)
	c := NewCache(f)

	du := c.DefUse()
	live := c.Liveness(liveness.Bitsets)

	v := f.NewVar("m")
	entry := f.Entry()
	in := &ir.Instr{Op: ir.OpCopy, Defs: []ir.VarID{v}, Uses: []ir.VarID{entry.Instrs[0].Defs[0]}}
	idx := ir.CopyInsertIndex(entry)
	ir.InsertBefore(entry, idx, in)
	// The "pass" keeps the def-use index consistent itself.
	du.AddDef(v, entry.ID, ir.SlotOfInstr(idx), in)
	du.AddUse(entry.Instrs[0].Defs[0], entry.ID, ir.SlotOfInstr(idx), in)
	c.Preserve(DefUse)

	if c.DefUse() != du {
		t.Fatal("preserved def-use index was recomputed")
	}
	if c.Liveness(liveness.Bitsets) == live {
		t.Fatal("liveness was not preserved and must be recomputed")
	}
}

// TestCacheLivenessBackendChange: asking for the other representation
// recomputes even without mutation.
func TestCacheLivenessBackendChange(t *testing.T) {
	f := buildDiamond(t)
	c := NewCache(f)
	a := c.Liveness(liveness.Bitsets)
	b := c.Liveness(liveness.OrderedSets)
	if a == b {
		t.Fatal("backend change did not recompute liveness")
	}
	if c.Misses[Liveness] != 2 {
		t.Fatalf("misses = %d, want 2", c.Misses[Liveness])
	}
}

// TestCacheLivenessScratchReuse: recomputations after invalidation draw
// pooled worklist scratch; reuse must never leak stale state between runs
// — the recomputed sets must match a scratch-free reference computation.
func TestCacheLivenessScratchReuse(t *testing.T) {
	f := buildDiamond(t)
	c := NewCache(f)

	l1 := c.Liveness(liveness.Bitsets)
	// Append "print x" before the terminator of join: x becomes live
	// through both arms.
	join := f.Blocks[3]
	x := f.Vars[0].ID
	term := join.Instrs[len(join.Instrs)-1]
	join.Instrs = append(join.Instrs[:len(join.Instrs)-1],
		&ir.Instr{Op: ir.OpPrint, Uses: []ir.VarID{x}}, term)
	f.MarkCodeMutated()

	l2 := c.Liveness(liveness.Bitsets)
	if l2 == l1 {
		t.Fatal("mutation must recompute liveness")
	}
	if !l2.LiveInBlock(x, join.ID) {
		t.Fatal("recomputed liveness missed the new use")
	}
	// A fresh analysis agrees with the scratch-reusing one.
	ref := liveness.ComputeReference(f, liveness.Bitsets)
	for _, b := range f.Blocks {
		for v := range f.Vars {
			vid := ir.VarID(v)
			if l2.LiveInBlock(vid, b.ID) != ref.LiveInBlock(vid, b.ID) ||
				l2.LiveOutBlock(vid, b.ID) != ref.LiveOutBlock(vid, b.ID) {
				t.Fatalf("scratch reuse corrupted results at %s/%s", b.Name, f.VarName(vid))
			}
		}
	}
}
