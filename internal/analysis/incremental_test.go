package analysis

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/liveness"
)

// addPrint appends "print v" before the terminator of b and marks the edit
// as block-attributed, the shape incremental repair exists for.
func addPrint(f *ir.Func, b *ir.Block, v ir.VarID) {
	n := len(b.Instrs)
	b.Instrs = append(b.Instrs[:n-1],
		&ir.Instr{Op: ir.OpPrint, Uses: []ir.VarID{v}}, b.Instrs[n-1])
	f.MarkBlockMutated(b)
}

// TestCacheIncrementalRepair: in incremental mode a block-attributed edit
// patches the cached def-use index and liveness in place — same objects,
// Repairs counted, results equal to from-scratch computations.
func TestCacheIncrementalRepair(t *testing.T) {
	f := buildDiamond(t)
	c := NewCache(f)
	c.EnableIncremental()

	du := c.DefUse()
	live := c.Liveness(liveness.Bitsets)
	if !du.Repairable() || !live.Repairable() {
		t.Fatal("incremental mode must build repairable analyses")
	}

	// x becomes live through both arms of the diamond.
	join := f.Blocks[3]
	x := f.Vars[0].ID
	addPrint(f, join, x)

	if c.DefUse() != du {
		t.Fatal("repairable def-use index was rebuilt instead of patched")
	}
	if c.Liveness(liveness.Bitsets) != live {
		t.Fatal("repairable liveness was recomputed instead of patched")
	}
	if c.Repairs[DefUse] != 1 || c.Repairs[Liveness] != 1 {
		t.Fatalf("repairs = %v, want one for defuse and one for liveness", c.Repairs)
	}
	if c.Misses[DefUse] != 1 || c.Misses[Liveness] != 1 {
		t.Fatalf("a repair must not count as a miss: misses = %v", c.Misses)
	}

	// The patched results match from-scratch computations.
	want := ir.NewDefUse(f)
	if len(du.Uses(x)) != len(want.Uses(x)) {
		t.Fatalf("patched def-use has %d uses of x, fresh index %d",
			len(du.Uses(x)), len(want.Uses(x)))
	}
	ref := liveness.ComputeReference(f, liveness.Bitsets)
	for _, b := range f.Blocks {
		for v := range f.Vars {
			vid := ir.VarID(v)
			if live.LiveInBlock(vid, b.ID) != ref.LiveInBlock(vid, b.ID) ||
				live.LiveOutBlock(vid, b.ID) != ref.LiveOutBlock(vid, b.ID) {
				t.Fatalf("patched liveness differs from reference at %s/%s", b.Name, f.VarName(vid))
			}
		}
	}
	if !live.LiveInBlock(x, join.ID) {
		t.Fatal("patched liveness missed the new use")
	}
}

// TestCacheIncrementalFallsBackOnWholesaleEdit: an unattributed mutation
// (NewVar poisons the dirty log) must recompute, not repair.
func TestCacheIncrementalFallsBackOnWholesaleEdit(t *testing.T) {
	f := buildDiamond(t)
	c := NewCache(f)
	c.EnableIncremental()

	du := c.DefUse()
	live := c.Liveness(liveness.Bitsets)

	v := f.NewVar("w") // wholesale: poisons the dirty log
	entry := f.Entry()
	ir.InsertBefore(entry, ir.CopyInsertIndex(entry), &ir.Instr{
		Op: ir.OpCopy, Defs: []ir.VarID{v}, Uses: []ir.VarID{entry.Instrs[0].Defs[0]},
	})

	if c.DefUse() == du {
		t.Fatal("stale def-use served (or repaired) after an unattributed edit")
	}
	if c.Liveness(liveness.Bitsets) == live {
		t.Fatal("stale liveness served (or repaired) after an unattributed edit")
	}
	if c.Repairs[DefUse] != 0 || c.Repairs[Liveness] != 0 {
		t.Fatalf("unattributed edit must not count as repair: %v", c.Repairs)
	}
	if c.Misses[DefUse] != 2 || c.Misses[Liveness] != 2 {
		t.Fatalf("misses = %v, want 2 each", c.Misses)
	}
}

// TestCachePreserveIncremental: the TestCachePreserve contract holds in
// incremental mode — a hand-maintained def-use index revalidated with
// Preserve is served as-is (a hit, not a repair), while the stale liveness
// is brought current (here via repair, since the edit was block-attributed)
// and must reflect the new use.
func TestCachePreserveIncremental(t *testing.T) {
	f := buildDiamond(t)
	c := NewCache(f)
	c.EnableIncremental()

	du := c.DefUse()
	live := c.Liveness(liveness.Bitsets)

	// The "pass" adds a use of x in join, maintains def-use by hand, and
	// declares so; liveness is left stale.
	join := f.Blocks[3]
	x := f.Vars[0].ID
	idx := len(join.Instrs) - 1
	in := &ir.Instr{Op: ir.OpPrint, Uses: []ir.VarID{x}}
	ir.InsertBefore(join, idx, in)
	f.MarkBlockMutated(join)
	du.AddUse(x, join.ID, ir.SlotOfInstr(idx), in)
	c.Preserve(DefUse)

	hits := c.Hits[DefUse]
	if c.DefUse() != du {
		t.Fatal("preserved def-use index was recomputed")
	}
	if c.Hits[DefUse] != hits+1 || c.Repairs[DefUse] != 0 {
		t.Fatalf("preserve must serve a plain hit: hits %d→%d, repairs %d",
			hits, c.Hits[DefUse], c.Repairs[DefUse])
	}
	if c.Liveness(liveness.Bitsets) != live || c.Repairs[Liveness] != 1 {
		t.Fatal("stale liveness was not repaired in place")
	}
	if !live.LiveInBlock(x, join.ID) {
		t.Fatal("repaired liveness does not see the new use — stale data served")
	}
}
