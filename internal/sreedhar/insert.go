// Package sreedhar implements the two copy-placement strategies the paper
// builds on: Method I of Sreedhar et al. — insert all φ-related copies up
// front, turning the program into CSSA (Lemma 1) — and the virtualization
// of Method III, which emulates those copies and materializes only the ones
// that fail to coalesce (paper, Section IV-C).
//
// Both strategies share the copy placement discipline: one parallel copy at
// the end of every predecessor of a φ-block (before the terminator, so
// terminator uses read after the copies) and one parallel copy at the
// beginning of every φ-block (right after the φ-functions).
package sreedhar

import (
	"fmt"

	"repro/internal/ir"
)

// Affinity is a copy whose source and destination the coalescer would like
// to merge. Weight is the execution frequency of the enclosing block. Phi
// groups the n+1 copies of one φ-function (index into the insertion order);
// -1 marks copies that pre-existed in the program (register renaming
// constraints, leftover optimization copies).
type Affinity struct {
	Dst, Src ir.VarID
	Weight   float64
	Block    int   // block holding the copy
	Slot     int32 // slot of the copy instruction within the block
	Phi      int
	Instr    *ir.Instr // the OpCopy or OpParCopy carrying the copy
}

// Insertion is the result of Method I copy insertion. An Insertion may be
// reused across functions — Reset rewinds it while keeping every backing
// array — which is how the translator's pooled scratch keeps batch copy
// insertion allocation-free in steady state.
type Insertion struct {
	// PhiNodes lists, per φ-function, the fresh variables a'0..a'n that
	// constitute the φ-node and must be coalesced together (Lemma 1
	// guarantees they do not interfere).
	PhiNodes [][]ir.VarID
	// Affinities holds the φ-related copies, in φ order, plus nothing else;
	// use CollectExistingCopies for the pre-existing ones.
	Affinities []Affinity
	// BeginCopies and EndCopies index the parallel copy instructions
	// created per block (nil where none was needed).
	BeginCopies []*ir.Instr
	EndCopies   []*ir.Instr

	// nodeArena backs the PhiNodes entries: each node is an exact-capacity
	// subslice, so one growing array serves all φ-node lists of a run.
	nodeArena []ir.VarID
	// need is PrepareParallelCopies' per-block pair-count scratch.
	need []int32
}

// Reset prepares the insertion for a function of nblocks blocks, reusing
// all backing arrays. Call it before InsertCopiesInto or
// PrepareParallelCopies when recycling an Insertion.
func (ins *Insertion) Reset(nblocks int) {
	ins.BeginCopies = resetInstrSlice(ins.BeginCopies, nblocks)
	ins.EndCopies = resetInstrSlice(ins.EndCopies, nblocks)
	ins.PhiNodes = ins.PhiNodes[:0]
	ins.Affinities = ins.Affinities[:0]
	ins.nodeArena = ins.nodeArena[:0]
}

// resetInstrSlice returns s resized to n and cleared, reusing its capacity.
func resetInstrSlice(s []*ir.Instr, n int) []*ir.Instr {
	if cap(s) < n {
		return make([]*ir.Instr, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = nil
	}
	return s
}

// resetI32 returns s resized to n and zeroed, reusing its capacity.
func resetI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// InsertCopies applies Method I to f, which must be in SSA form: for every
// φ-function a0 = φ(a1..an) it creates fresh variables a'0..a'n, adds
// a'i ← ai to the end-parallel-copy of predecessor i, adds a0 ← a'0 to the
// begin-parallel-copy of the φ-block, and rewrites the φ-function to
// a'0 = φ(a'1..a'n). After this, the function is in CSSA form.
//
// A φ argument defined by the predecessor's own terminator (Br_dec) cannot
// be copied at the end of that predecessor — InsertCopies reports an error
// naming the offending edge; the caller must split it first (paper,
// Figure 2).
func InsertCopies(f *ir.Func) (*Insertion, error) {
	ins := &Insertion{}
	ins.Reset(len(f.Blocks))
	if err := InsertCopiesInto(f, ins); err != nil {
		return nil, err
	}
	return ins, nil
}

// InsertCopiesInto is InsertCopies into a caller-provided (typically
// recycled) Insertion; ins must have been Reset for f's block count. The
// primed variables are derived variables (ir.Func.NewDerivedVar) and the
// φ-node lists live in the insertion's arena, so a warm Insertion performs
// no per-φ allocation.
func InsertCopiesInto(f *ir.Func, ins *Insertion) error {
	if err := checkBranchDefs(f); err != nil {
		return err
	}
	PrepareParallelCopies(f, ins)
	phiID := 0
	for _, b := range f.Blocks {
		for _, phi := range b.Phis {
			a0 := phi.Defs[0]
			nodeStart := len(ins.nodeArena)

			a0p := f.NewDerivedVar(a0)
			ins.nodeArena = append(ins.nodeArena, a0p)
			begin := ins.BeginCopies[b.ID]
			begin.Defs = append(begin.Defs, a0)
			begin.Uses = append(begin.Uses, a0p)
			ins.Affinities = append(ins.Affinities, Affinity{
				Dst: a0, Src: a0p, Weight: b.Freq, Block: b.ID,
				Slot: ir.SlotOfInstr(indexOf(b, begin)), Phi: phiID, Instr: begin,
			})
			phi.Defs[0] = a0p

			for i, ai := range phi.Uses {
				pred := b.Preds[i]
				aip := f.NewDerivedVar(ai)
				ins.nodeArena = append(ins.nodeArena, aip)
				end := ins.EndCopies[pred.ID]
				end.Defs = append(end.Defs, aip)
				end.Uses = append(end.Uses, ai)
				ins.Affinities = append(ins.Affinities, Affinity{
					Dst: aip, Src: ai, Weight: pred.Freq, Block: pred.ID,
					Slot: ir.SlotOfInstr(indexOf(pred, end)), Phi: phiID, Instr: end,
				})
				phi.Uses[i] = aip
			}
			// Exact-capacity view: even if a later node's append reallocates
			// the arena, this slice keeps the already-written backing.
			ins.PhiNodes = append(ins.PhiNodes,
				ins.nodeArena[nodeStart:len(ins.nodeArena):len(ins.nodeArena)])
			phiID++
		}
	}
	return nil
}

// PrepareParallelCopies creates the (initially empty) begin parallel copy
// of every φ-block and the end parallel copy of every predecessor of a
// φ-block, recording them in ins. Creating all carriers up front keeps slot
// numbering stable while copies are materialized one by one — the
// virtualized translator depends on this. The carriers come from f's
// instruction arena, with operand lists pre-sized to the maximum number of
// pairs Method I can put into them, so materializing copies never grows a
// carrier's backing.
func PrepareParallelCopies(f *ir.Func, ins *Insertion) {
	// Upper-bound the pair counts: every φ contributes one pair to its
	// block's begin copy and one to each predecessor's end copy.
	ins.need = resetI32(ins.need, len(f.Blocks))
	need := ins.need
	for _, b := range f.Blocks {
		if len(b.Phis) == 0 {
			continue
		}
		for _, p := range b.Preds {
			need[p.ID] += int32(len(b.Phis))
		}
	}
	carrier := func(pairs int) *ir.Instr {
		pc := f.NewInstr(ir.OpParCopy)
		pc.Defs = f.NewOperands(pairs)[:0]
		pc.Uses = f.NewOperands(pairs)[:0]
		return pc
	}
	for _, b := range f.Blocks {
		if len(b.Phis) == 0 {
			continue
		}
		if ins.BeginCopies[b.ID] == nil {
			pc := carrier(len(b.Phis))
			ir.InsertBefore(b, 0, pc)
			ins.BeginCopies[b.ID] = pc
		}
		for _, p := range b.Preds {
			if ins.EndCopies[p.ID] == nil {
				pc := carrier(int(need[p.ID]))
				ir.InsertBefore(p, ir.CopyInsertIndex(p), pc)
				ins.EndCopies[p.ID] = pc
			}
		}
	}
}

// checkBranchDefs reports an error when a φ argument is defined by the
// corresponding predecessor's terminator, which makes copy insertion at the
// end of that predecessor impossible.
func checkBranchDefs(f *ir.Func) error {
	for _, b := range f.Blocks {
		for _, phi := range b.Phis {
			for i, ai := range phi.Uses {
				pred := b.Preds[i]
				t := pred.Terminator()
				if t == nil || !t.Op.DefinesAfterCopyPoint() {
					continue
				}
				for _, d := range t.Defs {
					if d == ai {
						return fmt.Errorf("sreedhar: φ argument %s is defined by the %s terminator of %s; split the edge %s→%s first",
							f.VarName(ai), t.Op, pred.Name, pred.Name, b.Name)
					}
				}
			}
		}
	}
	return nil
}

func indexOf(b *ir.Block, in *ir.Instr) int {
	for i, x := range b.Instrs {
		if x == in {
			return i
		}
	}
	panic("sreedhar: instruction not found in block")
}

// CollectExistingCopies returns affinities for the plain copies already in
// f (register renaming constraints and optimization leftovers), to be
// coalesced alongside the φ-related ones (paper, Section III-B).
func CollectExistingCopies(f *ir.Func) []Affinity {
	return collectCopies(f, nil, nil)
}

// CollectRealCopies is CollectExistingCopies restricted to the copies that
// pre-existed copy insertion: the parallel copies ins itself created are
// skipped.
func CollectRealCopies(f *ir.Func, ins *Insertion) []Affinity {
	return CollectRealCopiesInto(f, ins, nil)
}

// CollectRealCopiesInto is CollectRealCopies appending into dst (which may
// be a recycled buffer). The insertion's own carriers are recognized by
// pointer identity against the per-block BeginCopies/EndCopies records, so
// no skip set is built.
func CollectRealCopiesInto(f *ir.Func, ins *Insertion, dst []Affinity) []Affinity {
	return collectCopies(f, ins, dst)
}

func collectCopies(f *ir.Func, ins *Insertion, out []Affinity) []Affinity {
	for _, b := range f.Blocks {
		var begin, end *ir.Instr
		if ins != nil {
			begin, end = ins.BeginCopies[b.ID], ins.EndCopies[b.ID]
		}
		for i, in := range b.Instrs {
			if in == begin || in == end {
				continue
			}
			switch in.Op {
			case ir.OpCopy:
				out = append(out, Affinity{
					Dst: in.Defs[0], Src: in.Uses[0], Weight: b.Freq,
					Block: b.ID, Slot: ir.SlotOfInstr(i), Phi: -1, Instr: in,
				})
			case ir.OpParCopy:
				for j, d := range in.Defs {
					out = append(out, Affinity{
						Dst: d, Src: in.Uses[j], Weight: b.Freq,
						Block: b.ID, Slot: ir.SlotOfInstr(i), Phi: -1, Instr: in,
					})
				}
			}
		}
	}
	return out
}

// SplitDuplicatePredEdges splits edges so that no φ-block has the same
// predecessor twice. Copies for φ arguments are placed at the end of the
// predecessor, which cannot distinguish two parallel edges from the same
// block; Lemma 1 (disjoint predecessor blocks) needs this normalization.
func SplitDuplicatePredEdges(f *ir.Func) []*ir.Block {
	var added []*ir.Block
	for _, b := range f.Blocks {
		if len(b.Phis) == 0 {
			continue
		}
		// Quadratic scan instead of a per-block set: predecessor lists are
		// short, and a split replaces b.Preds[i] with the fresh block, so
		// later pairs still compare against the updated list.
		for i := 0; i < len(b.Preds); i++ {
			p := b.Preds[i]
			for j := 0; j < i; j++ {
				if b.Preds[j] == p {
					added = append(added, ir.SplitEdge(f, p, b))
					break
				}
			}
		}
	}
	return added
}

// SplitBranchDefEdges splits every edge whose φ argument is defined by the
// predecessor's terminator (the Br_dec situation of Figure 2), so that
// copy insertion becomes possible. It returns the inserted blocks. The
// rewritten φ arguments keep their variable; only the predecessor changes.
func SplitBranchDefEdges(f *ir.Func) []*ir.Block {
	var added []*ir.Block
	for _, b := range f.Blocks {
		if len(b.Phis) == 0 {
			continue
		}
		for i := 0; i < len(b.Preds); i++ {
			pred := b.Preds[i]
			t := pred.Terminator()
			if t == nil || !t.Op.DefinesAfterCopyPoint() {
				continue
			}
			needs := false
			for _, phi := range b.Phis {
				for _, d := range t.Defs {
					if phi.Uses[i] == d {
						needs = true
					}
				}
			}
			if needs {
				added = append(added, ir.SplitEdge(f, pred, b))
			}
		}
	}
	return added
}
