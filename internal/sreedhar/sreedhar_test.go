package sreedhar_test

import (
	"testing"

	"repro/internal/cfggen"
	"repro/internal/dom"
	"repro/internal/interference"
	"repro/internal/ir"
	"repro/internal/liveness"
	"repro/internal/sreedhar"
	"repro/internal/ssa"
)

// TestMethodIProducesCSSA is Lemma 1: after copy insertion, every φ-web is
// interference-free (checked with pure intersection — the strongest form),
// so giving each web one name is a correct out-of-SSA translation.
func TestMethodIProducesCSSA(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		p := cfggen.DefaultProfile("cssa", 500+seed)
		p.Funcs = 5
		for _, f := range cfggen.Generate(p) {
			sreedhar.SplitDuplicatePredEdges(f)
			sreedhar.SplitBranchDefEdges(f)
			if _, err := sreedhar.InsertCopies(f); err != nil {
				t.Fatal(err)
			}
			dt := dom.Build(f)
			if err := ssa.Verify(f, dt); err != nil {
				t.Fatalf("%s: insertion broke SSA: %v", f.Name, err)
			}
			chk := &interference.Checker{
				F: f, DT: dt, DU: ir.NewDefUse(f), Live: liveness.Compute(f),
			}
			webs := ssa.Webs(f)
			for _, members := range ssa.WebMembers(webs) {
				for i, x := range members {
					for _, y := range members[i+1:] {
						if chk.Intersect(x, y) {
							t.Fatalf("%s: web members %s and %s intersect — not CSSA\n%s",
								f.Name, f.VarName(x), f.VarName(y), f)
						}
					}
				}
			}
		}
	}
}

func TestInsertCopiesStructure(t *testing.T) {
	src := `
func s {
entry:
  a = param 0
  b = param 1
  br a l r
l:
  jump j
r:
  jump j
j:
  x = phi l:a r:b
  print x
  ret x
}
`
	f := ir.MustParse(src)
	ins, err := sreedhar.InsertCopies(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(ins.PhiNodes) != 1 || len(ins.PhiNodes[0]) != 3 {
		t.Fatalf("φ-node must have 3 fresh variables, got %v", ins.PhiNodes)
	}
	if len(ins.Affinities) != 3 {
		t.Fatalf("3 φ copies expected, got %d", len(ins.Affinities))
	}
	// The begin copy lands right after the φs of j; end copies before the
	// jumps of l and r.
	j := f.Blocks[3]
	if j.Name != "j" || j.Instrs[0].Op != ir.OpParCopy {
		t.Fatalf("begin parallel copy missing in j:\n%s", f)
	}
	for _, name := range []string{"l", "r"} {
		for _, b := range f.Blocks {
			if b.Name != name {
				continue
			}
			if b.Instrs[0].Op != ir.OpParCopy || b.Instrs[1].Op != ir.OpJump {
				t.Fatalf("end parallel copy must precede the terminator of %s:\n%s", name, f)
			}
		}
	}
	// The φ now reads only primed variables.
	phi := j.Phis[0]
	for _, u := range phi.Uses {
		if f.VarName(u) == "a" || f.VarName(u) == "b" {
			t.Fatal("φ arguments must be the primed copies")
		}
	}
}

func TestInsertCopiesRejectsBranchDefArgs(t *testing.T) {
	src := `
func b {
entry:
  n = param 0
  jump h
h:
  i = phi entry:n h:j
  j = brdec i h x
x:
  print j
  ret j
}
`
	f := ir.MustParse(src)
	if _, err := sreedhar.InsertCopies(f); err == nil {
		t.Fatal("φ argument defined by Br_dec must be rejected before splitting")
	}
	// After splitting the offending edge, insertion succeeds.
	split := sreedhar.SplitBranchDefEdges(f)
	if len(split) != 1 {
		t.Fatalf("one split expected, got %d", len(split))
	}
	if _, err := sreedhar.InsertCopies(f); err != nil {
		t.Fatalf("insertion after split: %v", err)
	}
	if err := ir.Verify(f); err != nil {
		t.Fatal(err)
	}
}

func TestSplitDuplicatePredEdges(t *testing.T) {
	// A conditional branch with both targets equal gives j two identical
	// predecessors.
	f := ir.NewFunc("dup")
	entry := f.NewBlock("entry")
	j := f.NewBlock("j")
	p := f.NewVar("p")
	a := f.NewVar("a")
	b := f.NewVar("b")
	x := f.NewVar("x")
	entry.Instrs = []*ir.Instr{
		{Op: ir.OpParam, Defs: []ir.VarID{p}},
		{Op: ir.OpConst, Defs: []ir.VarID{a}, Aux: 1},
		{Op: ir.OpConst, Defs: []ir.VarID{b}, Aux: 2},
		{Op: ir.OpBranch, Uses: []ir.VarID{p}},
	}
	ir.AddEdge(entry, j)
	ir.AddEdge(entry, j)
	j.Phis = []*ir.Instr{{Op: ir.OpPhi, Defs: []ir.VarID{x}, Uses: []ir.VarID{a, b}}}
	j.Instrs = []*ir.Instr{{Op: ir.OpRet, Uses: []ir.VarID{x}}}
	if err := ir.Verify(f); err != nil {
		t.Fatal(err)
	}
	added := sreedhar.SplitDuplicatePredEdges(f)
	if len(added) != 1 {
		t.Fatalf("one split expected, got %d", len(added))
	}
	if err := ir.Verify(f); err != nil {
		t.Fatal(err)
	}
	seen := map[*ir.Block]bool{}
	for _, pr := range j.Preds {
		if seen[pr] {
			t.Fatal("duplicate predecessors remain")
		}
		seen[pr] = true
	}
}

func TestCollectExistingCopies(t *testing.T) {
	src := `
func c {
entry (freq 2):
  a = param 0
  b = copy a
  parcopy x:a y:b
  print x
  print y
  ret b
}
`
	f := ir.MustParse(src)
	affs := sreedhar.CollectExistingCopies(f)
	if len(affs) != 3 {
		t.Fatalf("3 copies expected (1 plain + 2 parallel pairs), got %d", len(affs))
	}
	for _, a := range affs {
		if a.Phi != -1 {
			t.Fatal("existing copies are not φ-related")
		}
		if a.Weight != 2 {
			t.Fatalf("weight must be the block frequency, got %v", a.Weight)
		}
	}
}
