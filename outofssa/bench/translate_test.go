package bench

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/ir"
)

func TestTranslateCorpusDeterministicAndValid(t *testing.T) {
	a := TranslateCorpus(0.05)
	b := TranslateCorpus(0.05)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("corpus sizes: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].Func().String() != b[i].Func().String() {
			t.Fatalf("case %d not deterministic", i)
		}
		if err := ir.Verify(a[i].Func()); err != nil {
			t.Fatalf("%s: %v", a[i].Name, err)
		}
		if a[i].Blocks != len(a[i].Func().Blocks) || a[i].Vars != len(a[i].Func().Vars) {
			t.Fatalf("%s: stale metadata", a[i].Name)
		}
		if a[i].Phis == 0 {
			t.Fatalf("%s: corpus must carry φ pressure", a[i].Name)
		}
	}
}

// TestTranslateEnginesAgree runs the differential check on the very unit of
// work the trajectory measures: for every case and Figure 5 strategy, the
// pooled engine (CloneInto + reused scratch) and the reference engine
// (Clone + ReferenceAlloc) must emit byte-identical code and identical
// deterministic statistics.
func TestTranslateEnginesAgree(t *testing.T) {
	sc := core.NewScratch()
	for _, c := range TranslateCorpus(0.03) {
		dst := ir.NewFunc("")
		for _, s := range core.Strategies {
			opt := fig5Options(s)
			ir.CloneInto(dst, c.Func())
			stP, err := core.TranslateInto(dst, opt, nil, sc)
			if err != nil {
				t.Fatalf("%s/%v pooled: %v", c.Name, s, err)
			}
			refOpt := opt
			refOpt.ReferenceAlloc = true
			refc := ir.Clone(c.Func())
			stR, err := core.Translate(refc, refOpt)
			if err != nil {
				t.Fatalf("%s/%v reference: %v", c.Name, s, err)
			}
			if dst.String() != refc.String() {
				t.Fatalf("%s/%v: engines emit different code", c.Name, s)
			}
			if stP.RemainingCopies != stR.RemainingCopies || stP.FinalCopies != stR.FinalCopies {
				t.Fatalf("%s/%v: stats diverge: pooled %d/%d reference %d/%d", c.Name, s,
					stP.RemainingCopies, stP.FinalCopies, stR.RemainingCopies, stR.FinalCopies)
			}
		}
	}
}

// TestTranslateReportRoundTripAndGate: the JSON payload round-trips, the
// formatter covers every (case, strategy) pair, and the allocation gate
// flags regressions beyond the slack but tolerates noise within it.
func TestTranslateReportRoundTrip(t *testing.T) {
	rep := &TranslateReport{
		Scale: 0.05,
		Corpus: []TranslateCase{
			{Name: "c1", Blocks: 10, Vars: 20, Phis: 3},
		},
		Results: []TranslateResultRow{
			{Case: "c1", Strategy: "Value", Engine: "pooled", NsPerOp: 100, AllocsPerOp: 50, BytesPerOp: 1000},
			{Case: "c1", Strategy: "Value", Engine: "reference", NsPerOp: 200, AllocsPerOp: 500, BytesPerOp: 9000},
		},
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTranslateReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Scale != rep.Scale || len(back.Results) != len(rep.Results) {
		t.Fatalf("round trip lost data: %+v", back)
	}
	if s := FormatTranslate(rep); !strings.Contains(s, "c1") || !strings.Contains(s, "Value") {
		t.Fatalf("formatter misses rows:\n%s", s)
	}
}

func TestCheckTranslateAllocs(t *testing.T) {
	base := &TranslateReport{Scale: 0.05, Results: []TranslateResultRow{
		{Case: "c1", Strategy: "Value", Engine: "pooled", AllocsPerOp: 100},
		{Case: "c1", Strategy: "Value", Engine: "reference", AllocsPerOp: 1000},
	}}
	cur := func(allocs int64) *TranslateReport {
		return &TranslateReport{Scale: 0.05, Results: []TranslateResultRow{
			{Case: "c1", Strategy: "Value", Engine: "pooled", AllocsPerOp: allocs},
			// Reference rows never gate, however much they allocate.
			{Case: "c1", Strategy: "Value", Engine: "reference", AllocsPerOp: 5000},
		}}
	}
	if v := CheckTranslateAllocs(cur(110), base, 0.20); len(v) != 0 {
		t.Fatalf("within slack, got violations %v", v)
	}
	if v := CheckTranslateAllocs(cur(121), base, 0.20); len(v) != 1 {
		t.Fatalf("beyond slack, got %v", v)
	}
	// New rows without a baseline pass (corpus growth must not break CI).
	grown := cur(100)
	grown.Results = append(grown.Results, TranslateResultRow{
		Case: "c2", Strategy: "Value", Engine: "pooled", AllocsPerOp: 9999,
	})
	if v := CheckTranslateAllocs(grown, base, 0.20); len(v) != 0 {
		t.Fatalf("unbaselined rows must pass, got %v", v)
	}
	// A scale mismatch is reported instead of silently comparing.
	off := cur(100)
	off.Scale = 0.1
	if v := CheckTranslateAllocs(off, base, 0.20); len(v) != 1 {
		t.Fatalf("scale mismatch must be reported, got %v", v)
	}
}
