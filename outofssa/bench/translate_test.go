package bench

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ir"
)

func TestTranslateCorpusDeterministicAndValid(t *testing.T) {
	a := TranslateCorpus(0.05)
	b := TranslateCorpus(0.05)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("corpus sizes: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].Func().String() != b[i].Func().String() {
			t.Fatalf("case %d not deterministic", i)
		}
		if err := ir.Verify(a[i].Func()); err != nil {
			t.Fatalf("%s: %v", a[i].Name, err)
		}
		if a[i].Blocks != len(a[i].Func().Blocks) || a[i].Vars != len(a[i].Func().Vars) {
			t.Fatalf("%s: stale metadata", a[i].Name)
		}
		if a[i].Phis == 0 {
			t.Fatalf("%s: corpus must carry φ pressure", a[i].Name)
		}
	}
}

// TestTranslateEnginesAgree runs the differential check on the very unit of
// work the trajectory measures: for every case and Figure 5 strategy, the
// pooled engine (CloneInto + reused scratch) and the reference engine
// (Clone + ReferenceAlloc) must emit byte-identical code and identical
// deterministic statistics.
func TestTranslateEnginesAgree(t *testing.T) {
	sc := core.NewScratch()
	for _, c := range TranslateCorpus(0.03) {
		dst := ir.NewFunc("")
		for _, s := range core.Strategies {
			opt := fig5Options(s)
			ir.CloneInto(dst, c.Func())
			stP, err := core.TranslateInto(dst, opt, nil, sc)
			if err != nil {
				t.Fatalf("%s/%v pooled: %v", c.Name, s, err)
			}
			refOpt := opt
			refOpt.ReferenceAlloc = true
			refc := ir.Clone(c.Func())
			stR, err := core.Translate(refc, refOpt)
			if err != nil {
				t.Fatalf("%s/%v reference: %v", c.Name, s, err)
			}
			if dst.String() != refc.String() {
				t.Fatalf("%s/%v: engines emit different code", c.Name, s)
			}
			if stP.RemainingCopies != stR.RemainingCopies || stP.FinalCopies != stR.FinalCopies {
				t.Fatalf("%s/%v: stats diverge: pooled %d/%d reference %d/%d", c.Name, s,
					stP.RemainingCopies, stP.FinalCopies, stR.RemainingCopies, stR.FinalCopies)
			}
		}
	}
}
