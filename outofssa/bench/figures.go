package bench

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/pipeline"
)

// ---------------------------------------------------------------- Figure 5

// Fig5Row is one coalescing strategy's remaining-copy ratios, one column
// per benchmark plus the final "sum" column, normalized to the Intersect
// strategy as in the paper.
type Fig5Row struct {
	Strategy     core.Strategy
	Counts       []int     // raw remaining static copies
	Ratios       []float64 // vs Intersect
	WeightRatios []float64 // frequency-weighted ("dynamic") ratio vs Intersect
}

// fig5Options picks the machinery for a strategy: quality is independent of
// the machinery, so the fast combination is used except for the Sreedhar
// III baseline, which is inherently virtualized with an interference graph.
func fig5Options(s core.Strategy) core.Options {
	if s == core.SreedharIII {
		return core.Options{Strategy: s, Virtualize: true, UseGraph: true}
	}
	return core.Options{Strategy: s, Linear: true, LiveCheck: true}
}

// Fig5 reproduces Figure 5: the impact of interference accuracy and
// coalescing strategy on the number of remaining moves.
func Fig5(suite []Benchmark) []Fig5Row {
	return Fig5For(suite, core.Strategies)
}

// Fig5For is Fig5 restricted to the given strategies. The Intersect
// strategy is the paper's normalization baseline, so it is computed (and
// reported first) even when absent from the request.
func Fig5For(suite []Benchmark, strategies []core.Strategy) []Fig5Row {
	if len(strategies) == 0 || strategies[0] != core.Intersect {
		withBase := append([]core.Strategy{core.Intersect}, strategies...)
		strategies = withBase[:1]
		for _, s := range withBase[1:] {
			if s != core.Intersect {
				strategies = append(strategies, s)
			}
		}
	}
	n := len(suite) + 1 // + sum column
	rows := make([]Fig5Row, 0, len(strategies))
	var base, baseW []float64
	for _, s := range strategies {
		row := Fig5Row{
			Strategy:     s,
			Counts:       make([]int, n),
			Ratios:       make([]float64, n),
			WeightRatios: make([]float64, n),
		}
		counts := make([]float64, n)
		weights := make([]float64, n)
		for i, b := range suite {
			_, agg := translateBatch(b, fig5Options(s))
			counts[i] = float64(agg.RemainingCopies)
			weights[i] = agg.RemainingWeight
			counts[n-1] += counts[i]
			weights[n-1] += weights[i]
			row.Counts[i] = int(counts[i])
		}
		row.Counts[n-1] = int(counts[n-1])
		if base == nil {
			base, baseW = counts, weights
		}
		for i := range counts {
			row.Ratios[i] = ratio(counts[i], base[i])
			row.WeightRatios[i] = ratio(weights[i], baseW[i])
		}
		rows = append(rows, row)
	}
	return rows
}

func ratio(x, base float64) float64 {
	if base == 0 {
		if x == 0 {
			return 1
		}
		return 0
	}
	return x / base
}

// FormatFig5 renders the rows as the paper's figure: remaining-move ratio
// per benchmark, lower is better, Intersect = 1.0.
func FormatFig5(suite []Benchmark, rows []Fig5Row, weighted bool) string {
	var b strings.Builder
	title := "Figure 5: remaining static copies, normalized to Intersect"
	if weighted {
		title = "Figure 5 (companion): frequency-weighted remaining copies, normalized to Intersect"
	}
	fmt.Fprintf(&b, "%s\n", title)
	names := Names(suite)
	fmt.Fprintf(&b, "%-14s", "strategy")
	for _, n := range names {
		fmt.Fprintf(&b, " %12s", shorten(n))
	}
	b.WriteByte('\n')
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s", r.Strategy)
		vals := r.Ratios
		if weighted {
			vals = r.WeightRatios
		}
		for _, v := range vals {
			fmt.Fprintf(&b, " %12.3f", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func shorten(n string) string {
	if i := strings.IndexByte(n, '.'); i >= 0 && len(n) > 12 {
		return n[i+1:]
	}
	return n
}

// ---------------------------------------------------------------- Figure 6

// Config is one machinery combination of Figures 6 and 7.
type Config struct {
	Name string
	Opt  core.Options
}

// Fig6Configs lists the seven configurations of Figure 6, Sreedhar III
// first (it is the normalization baseline).
func Fig6Configs() []Config {
	return []Config{
		{"Sreedhar III", core.Options{Strategy: core.SreedharIII, Virtualize: true, UseGraph: true, OrderedSets: true}},
		{"Us III", core.Options{Strategy: core.Value, Virtualize: true, UseGraph: true, OrderedSets: true}},
		{"Us III + InterCheck", core.Options{Strategy: core.Value, Virtualize: true, OrderedSets: true}},
		{"Us III + InterCheck + LiveCheck", core.Options{Strategy: core.Value, Virtualize: true, LiveCheck: true}},
		{"Us III + Linear + InterCheck + LiveCheck", core.Options{Strategy: core.Value, Virtualize: true, LiveCheck: true, Linear: true}},
		{"Us I", core.Options{Strategy: core.Value, UseGraph: true, OrderedSets: true}},
		{"Us I + Linear + InterCheck + LiveCheck", core.Options{Strategy: core.Value, LiveCheck: true, Linear: true}},
	}
}

// Fig6Row is one configuration's translation time per benchmark (plus sum),
// normalized to Sreedhar III.
type Fig6Row struct {
	Config Config
	Times  []time.Duration
	Ratios []float64
}

// Fig6 reproduces Figure 6: out-of-SSA translation time. reps repeats each
// measurement and keeps the minimum, damping scheduler noise.
func Fig6(suite []Benchmark, reps int) []Fig6Row {
	if reps < 1 {
		reps = 1
	}
	cfgs := Fig6Configs()
	rows := make([]Fig6Row, len(cfgs))
	n := len(suite) + 1
	for ci, cfg := range cfgs {
		rows[ci] = Fig6Row{Config: cfg, Times: make([]time.Duration, n), Ratios: make([]float64, n)}
		pl := pipeline.Translate(cfg.Opt)
		for bi, b := range suite {
			best := time.Duration(0)
			for r := 0; r < reps; r++ {
				var elapsed time.Duration
				for _, f := range b.Funcs {
					clone := ir.Clone(f)
					start := time.Now()
					if _, err := pl.Run(context.Background(), clone); err != nil {
						panic("bench: " + err.Error())
					}
					elapsed += time.Since(start)
				}
				if r == 0 || elapsed < best {
					best = elapsed
				}
			}
			rows[ci].Times[bi] = best
			rows[ci].Times[n-1] += best
		}
	}
	for ci := range rows {
		for i := range rows[ci].Times {
			rows[ci].Ratios[i] = ratio(float64(rows[ci].Times[i]), float64(rows[0].Times[i]))
		}
	}
	return rows
}

// FormatFig6 renders the timing table (lower is better, Sreedhar III = 1.0).
func FormatFig6(suite []Benchmark, rows []Fig6Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6: out-of-SSA translation time, normalized to Sreedhar III\n")
	names := Names(suite)
	fmt.Fprintf(&b, "%-42s", "configuration")
	for _, n := range names {
		fmt.Fprintf(&b, " %12s", shorten(n))
	}
	b.WriteByte('\n')
	for _, r := range rows {
		fmt.Fprintf(&b, "%-42s", r.Config.Name)
		for _, v := range r.Ratios {
			fmt.Fprintf(&b, " %12.3f", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ---------------------------------------------------------------- Figure 7

// Fig7Row is one configuration's memory footprint under the three
// accountings of the paper (measured, evaluated with ordered sets,
// evaluated with bit sets), as maximum over functions and total.
type Fig7Row struct {
	Config                             Config
	MaxMeasured, MaxOrdered, MaxBitset int
	TotMeasured, TotOrdered, TotBitset int
}

// Fig7 reproduces Figure 7: memory footprint of the interference graph and
// liveness structures.
func Fig7(suite []Benchmark) []Fig7Row {
	cfgs := Fig6Configs()
	rows := make([]Fig7Row, len(cfgs))
	for ci, cfg := range cfgs {
		row := &rows[ci]
		row.Config = cfg
		for _, b := range suite {
			per, _ := translateBatch(b, cfg.Opt)
			for _, st := range per {
				meas := st.GraphBytes + st.LiveSetBytes + st.LiveCheckBytes
				ord := st.GraphEval + st.LiveSetEval + st.LiveCheckEval
				bit := st.GraphEval + st.LiveSetBitEval + st.LiveCheckEval
				row.TotMeasured += meas
				row.TotOrdered += ord
				row.TotBitset += bit
				row.MaxMeasured = max(row.MaxMeasured, meas)
				row.MaxOrdered = max(row.MaxOrdered, ord)
				row.MaxBitset = max(row.MaxBitset, bit)
			}
		}
	}
	return rows
}

// FormatFig7 renders both memory charts, normalized to Sreedhar III.
func FormatFig7(rows []Fig7Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7: memory footprint, normalized to Sreedhar III\n")
	fmt.Fprintf(&b, "%-42s %18s %18s %18s    %18s %18s %18s\n", "configuration",
		"max measured", "max ordered-eval", "max bitset-eval",
		"tot measured", "tot ordered-eval", "tot bitset-eval")
	base := rows[0]
	for _, r := range rows {
		fmt.Fprintf(&b, "%-42s %18.3f %18.3f %18.3f    %18.3f %18.3f %18.3f\n", r.Config.Name,
			ratio(float64(r.MaxMeasured), float64(base.MaxMeasured)),
			ratio(float64(r.MaxOrdered), float64(base.MaxOrdered)),
			ratio(float64(r.MaxBitset), float64(base.MaxBitset)),
			ratio(float64(r.TotMeasured), float64(base.TotMeasured)),
			ratio(float64(r.TotOrdered), float64(base.TotOrdered)),
			ratio(float64(r.TotBitset), float64(base.TotBitset)))
	}
	fmt.Fprintf(&b, "absolute totals (bytes): measured=%d ordered-eval=%d bitset-eval=%d (Sreedhar III)\n",
		base.TotMeasured, base.TotOrdered, base.TotBitset)
	return b.String()
}
