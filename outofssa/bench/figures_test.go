package bench

import (
	"strings"
	"testing"

	"repro/internal/core"
)

// TestFig5Shape regenerates Figure 5 at reduced scale and asserts the
// paper's qualitative ordering.
func TestFig5Shape(t *testing.T) {
	suite := Suite(0.25)
	rows := Fig5(suite)
	if len(rows) != len(core.Strategies) {
		t.Fatalf("rows = %d", len(rows))
	}
	sum := func(s core.Strategy) float64 {
		for _, r := range rows {
			if r.Strategy == s {
				return r.Ratios[len(r.Ratios)-1]
			}
		}
		t.Fatalf("no row for %v", s)
		return 0
	}
	if sum(core.Intersect) != 1.0 {
		t.Fatal("Intersect is the normalization baseline")
	}
	if !(sum(core.Value) <= sum(core.Chaitin) && sum(core.Chaitin) <= sum(core.SreedharI) &&
		sum(core.SreedharI) <= sum(core.Intersect)) {
		t.Fatalf("interference accuracy ordering violated: I=%v S1=%v C=%v V=%v",
			sum(core.Intersect), sum(core.SreedharI), sum(core.Chaitin), sum(core.Value))
	}
	if sum(core.ValueIS) > sum(core.Value)+1e-9 {
		t.Fatalf("Value+IS (%v) must not lose to Value (%v)", sum(core.ValueIS), sum(core.Value))
	}
	if sum(core.Sharing) > sum(core.ValueIS)+1e-9 {
		t.Fatalf("Sharing (%v) must not lose to Value+IS (%v)", sum(core.Sharing), sum(core.ValueIS))
	}
	if sum(core.ValueIS) > sum(core.SreedharIII) {
		t.Fatalf("Value+IS (%v) must beat the Sreedhar III baseline (%v)",
			sum(core.ValueIS), sum(core.SreedharIII))
	}
	out := FormatFig5(suite, rows, false)
	if !strings.Contains(out, "Sharing") || !strings.Contains(out, "sum") {
		t.Fatal("formatted table incomplete")
	}
}

// TestFig6Runs exercises the timing harness end to end (1 rep, small
// scale); timing ratios are hardware-dependent, so only structure and
// positivity are asserted.
func TestFig6Runs(t *testing.T) {
	suite := Suite(0.1)
	rows := Fig6(suite, 1)
	if len(rows) != len(Fig6Configs()) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		for i, d := range r.Times {
			if d <= 0 {
				t.Fatalf("%s: non-positive time in column %d", r.Config.Name, i)
			}
		}
	}
	for i, v := range rows[0].Ratios {
		if v != 1.0 {
			t.Fatalf("baseline ratio column %d = %v", i, v)
		}
	}
	if s := FormatFig6(suite, rows); !strings.Contains(s, "Sreedhar III") {
		t.Fatal("formatted table incomplete")
	}
}

// TestFig7Shape asserts the paper's memory-footprint ordering.
func TestFig7Shape(t *testing.T) {
	rows := Fig7(Suite(0.2))
	byName := map[string]Fig7Row{}
	for _, r := range rows {
		byName[r.Config.Name] = r
	}
	base := byName["Sreedhar III"]
	final := byName["Us I + Linear + InterCheck + LiveCheck"]
	if final.TotMeasured*5 > base.TotMeasured {
		t.Fatalf("final configuration must use ≥5x less measured memory: %d vs %d",
			final.TotMeasured, base.TotMeasured)
	}
	interCheck := byName["Us III + InterCheck"]
	if interCheck.TotMeasured >= base.TotMeasured {
		t.Fatal("dropping the interference graph must reduce the footprint")
	}
	if s := FormatFig7(rows); !strings.Contains(s, "absolute totals") {
		t.Fatal("formatted table incomplete")
	}
}

func TestSuiteDeterminismAndNames(t *testing.T) {
	a, b := Suite(0.1), Suite(0.1)
	if len(a) != 11 {
		t.Fatalf("11 benchmarks expected, got %d", len(a))
	}
	for i := range a {
		if a[i].Name != b[i].Name || len(a[i].Funcs) != len(b[i].Funcs) {
			t.Fatal("suite not deterministic")
		}
		for j := range a[i].Funcs {
			if a[i].Funcs[j].String() != b[i].Funcs[j].String() {
				t.Fatal("function bodies not deterministic")
			}
		}
	}
	names := Names(a)
	if names[0] != "164.gzip" || names[len(names)-1] != "sum" {
		t.Fatalf("names wrong: %v", names)
	}
}
