package bench

import (
	"testing"

	"repro/internal/cfggen"
	"repro/internal/ir"
	"repro/internal/liveness"
)

// ------------------------------------------------- Liveness trajectory
//
// The liveness trajectory benchmarks the engine's hottest analysis on a
// synthetic large-CFG corpus (deeply nested loops, wide switch dispatches,
// dense φ pressure; thousands of blocks per function at scale 1). The
// pre-worklist round-robin fixpoint (liveness.ComputeReference) is measured
// alongside as the fixed baseline, and the worklist rows carry the derived
// speedup/alloc_ratio metrics the trajectory's claim is about. Rows are
// keyed case × "engine/backend"; the envelope lands in the bench store and
// BENCH_liveness.json.

// LivenessCase is one corpus entry of the liveness trajectory.
type LivenessCase struct {
	Name   string `json:"name"`
	Blocks int    `json:"blocks"`
	Vars   int    `json:"vars"`
	Phis   int    `json:"phis"`
	fn     *ir.Func
}

// LivenessCorpus generates the deterministic large-CFG corpus. scale
// multiplies the per-function block budget (1 ≈ 2000 blocks per function;
// tests and -short runs use a fraction).
func LivenessCorpus(scale float64) []LivenessCase {
	profiles := []struct {
		name string
		seed int64
	}{
		{"deeploops-a", 1009},
		{"widejoins-b", 2003},
		{"phiheavy-c", 3001},
	}
	var out []LivenessCase
	for _, p := range profiles {
		for _, f := range cfggen.GenerateLarge(cfggen.LargeLivenessProfile(p.name, p.seed, scale)) {
			phis := 0
			for _, b := range f.Blocks {
				phis += len(b.Phis)
			}
			out = append(out, LivenessCase{
				Name: f.Name, Blocks: len(f.Blocks), Vars: len(f.Vars), Phis: phis, fn: f,
			})
		}
	}
	return out
}

// Func returns the case's function (tests drive the engines directly).
func (c *LivenessCase) Func() *ir.Func { return c.fn }

type livenessEngine struct {
	name string
	run  func(*ir.Func, liveness.Backend) *liveness.Info
}

var livenessEngines = []livenessEngine{
	{"worklist", func(f *ir.Func, be liveness.Backend) *liveness.Info {
		return liveness.ComputeWith(f, be)
	}},
	{"reference", liveness.ComputeReference},
}

var livenessBackends = []struct {
	name string
	be   liveness.Backend
}{
	{"bitsets", liveness.Bitsets},
	{"ordered", liveness.OrderedSets},
}

// livenessRunner measures every engine × backend combination over the
// corpus with testing.Benchmark.
type livenessRunner struct {
	scale  float64
	corpus []LivenessCase
}

// LivenessRunner builds the liveness trajectory runner at the given scale.
func LivenessRunner(scale float64) Runner {
	return &livenessRunner{scale: scale, corpus: LivenessCorpus(scale)}
}

func (r *livenessRunner) Trajectory() string { return "liveness" }
func (r *livenessRunner) Scale() float64     { return r.scale }

func (r *livenessRunner) Run(rep *Report) error {
	rep.SetParam("cases", formatNum(float64(len(r.corpus))))
	for i := range r.corpus {
		c := &r.corpus[i]
		for _, bk := range livenessBackends {
			type meas struct {
				res  testing.BenchmarkResult
				info *liveness.Info
			}
			byEngine := map[string]meas{}
			for _, eng := range livenessEngines {
				f, run, be := c.fn, eng.run, bk.be
				res := testing.Benchmark(func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						run(f, be)
					}
				})
				byEngine[eng.name] = meas{res: res, info: run(f, be)}
				variant := eng.name + "/" + bk.name
				rep.Sample(c.Name, variant, "ns_per_op", float64(res.NsPerOp()))
				rep.Sample(c.Name, variant, "allocs_per_op", float64(res.AllocsPerOp()))
				rep.Sample(c.Name, variant, "bytes_per_op", float64(res.AllocedBytesPerOp()))
				rep.Sample(c.Name, variant, "pops", float64(byEngine[eng.name].info.Pops))
				rep.Sample(c.Name, variant, "iterations", float64(byEngine[eng.name].info.Iterations))
			}
			// Derived claim metrics on the optimized rows: worklist vs
			// reference of the same pass, so the ratio is noise-paired.
			wl, ref := byEngine["worklist"], byEngine["reference"]
			variant := "worklist/" + bk.name
			rep.Sample(c.Name, variant, "speedup",
				ratio(float64(ref.res.NsPerOp()), float64(wl.res.NsPerOp())))
			rep.Sample(c.Name, variant, "alloc_ratio",
				ratio(float64(ref.res.AllocsPerOp()), float64(wl.res.AllocsPerOp())))
		}
	}
	return nil
}
