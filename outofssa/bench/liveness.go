package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"testing"

	"repro/internal/cfggen"
	"repro/internal/ir"
	"repro/internal/liveness"
)

// ------------------------------------------------- Liveness trajectory

// The liveness trajectory benchmarks the engine's hottest analysis on a
// synthetic large-CFG corpus (deeply nested loops, wide switch dispatches,
// dense φ pressure; thousands of blocks per function at scale 1) and
// records the results as BENCH_liveness.json, so the perf trend of the
// worklist engine is visible PR over PR. The pre-worklist round-robin
// fixpoint (liveness.ComputeReference) is measured alongside as the fixed
// baseline.

// LivenessCase is one corpus entry of the liveness trajectory.
type LivenessCase struct {
	Name   string `json:"name"`
	Blocks int    `json:"blocks"`
	Vars   int    `json:"vars"`
	Phis   int    `json:"phis"`
	fn     *ir.Func
}

// LivenessCorpus generates the deterministic large-CFG corpus. scale
// multiplies the per-function block budget (1 ≈ 2000 blocks per function;
// tests and -short runs use a fraction).
func LivenessCorpus(scale float64) []LivenessCase {
	profiles := []struct {
		name string
		seed int64
	}{
		{"deeploops-a", 1009},
		{"widejoins-b", 2003},
		{"phiheavy-c", 3001},
	}
	var out []LivenessCase
	for _, p := range profiles {
		for _, f := range cfggen.GenerateLarge(cfggen.LargeLivenessProfile(p.name, p.seed, scale)) {
			phis := 0
			for _, b := range f.Blocks {
				phis += len(b.Phis)
			}
			out = append(out, LivenessCase{
				Name: f.Name, Blocks: len(f.Blocks), Vars: len(f.Vars), Phis: phis, fn: f,
			})
		}
	}
	return out
}

// Func returns the case's function (tests drive the engines directly).
func (c *LivenessCase) Func() *ir.Func { return c.fn }

// LivenessResult is one (case, engine, backend) measurement.
type LivenessResult struct {
	Case    string `json:"case"`
	Engine  string `json:"engine"`  // "worklist" or "reference"
	Backend string `json:"backend"` // "bitsets" or "ordered"
	// NsPerOp, AllocsPerOp and BytesPerOp come from testing.Benchmark.
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// Pops and Iterations are the fixpoint effort of one run (worklist
	// pops / max visits of a single block; the reference engine reports
	// passes × blocks and passes).
	Pops       int `json:"pops"`
	Iterations int `json:"iterations"`
}

// LivenessReport is the BENCH_liveness.json payload.
type LivenessReport struct {
	Scale   float64          `json:"scale"`
	Corpus  []LivenessCase   `json:"corpus"`
	Results []LivenessResult `json:"results"`
}

type livenessEngine struct {
	name string
	run  func(*ir.Func, liveness.Backend) *liveness.Info
}

var livenessEngines = []livenessEngine{
	{"worklist", func(f *ir.Func, be liveness.Backend) *liveness.Info {
		return liveness.ComputeWith(f, be)
	}},
	{"reference", liveness.ComputeReference},
}

var livenessBackends = []struct {
	name string
	be   liveness.Backend
}{
	{"bitsets", liveness.Bitsets},
	{"ordered", liveness.OrderedSets},
}

// LivenessTrajectory measures every engine × backend combination over the
// corpus with testing.Benchmark and returns the report.
func LivenessTrajectory(scale float64) *LivenessReport {
	corpus := LivenessCorpus(scale)
	rep := &LivenessReport{Scale: scale, Corpus: corpus}
	for _, c := range corpus {
		for _, eng := range livenessEngines {
			for _, bk := range livenessBackends {
				f, run, be := c.fn, eng.run, bk.be
				r := testing.Benchmark(func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						run(f, be)
					}
				})
				info := run(f, be)
				rep.Results = append(rep.Results, LivenessResult{
					Case:        c.Name,
					Engine:      eng.name,
					Backend:     bk.name,
					NsPerOp:     float64(r.NsPerOp()),
					AllocsPerOp: r.AllocsPerOp(),
					BytesPerOp:  r.AllocedBytesPerOp(),
					Pops:        info.Pops,
					Iterations:  info.Iterations,
				})
			}
		}
	}
	return rep
}

// WriteJSON writes the report as indented JSON.
func (rep *LivenessReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// FormatLiveness renders the trajectory as a table: one row per case and
// backend, worklist vs reference side by side with the speedup and the
// allocation ratio.
func FormatLiveness(rep *LivenessReport) string {
	byKey := map[string]LivenessResult{}
	for _, r := range rep.Results {
		byKey[r.Case+"/"+r.Engine+"/"+r.Backend] = r
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Liveness trajectory (scale %g): worklist vs reference fixpoint\n", rep.Scale)
	fmt.Fprintf(&b, "%-22s %-8s %9s %9s %7s %12s %12s %7s\n",
		"case", "backend", "wl ns/op", "ref ns/op", "speedup", "wl allocs", "ref allocs", "alloc÷")
	for _, c := range rep.Corpus {
		for _, bk := range livenessBackends {
			wl, okW := byKey[c.Name+"/worklist/"+bk.name]
			ref, okR := byKey[c.Name+"/reference/"+bk.name]
			if !okW || !okR {
				continue
			}
			speed, allocR := 0.0, 0.0
			if wl.NsPerOp > 0 {
				speed = ref.NsPerOp / wl.NsPerOp
			}
			if wl.AllocsPerOp > 0 {
				allocR = float64(ref.AllocsPerOp) / float64(wl.AllocsPerOp)
			}
			fmt.Fprintf(&b, "%-22s %-8s %9.0f %9.0f %6.2fx %12d %12d %6.2fx\n",
				c.Name, bk.name, wl.NsPerOp, ref.NsPerOp, speed, wl.AllocsPerOp, ref.AllocsPerOp, allocR)
		}
	}
	return b.String()
}
