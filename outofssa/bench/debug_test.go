package bench

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ir"
)

const lostCopySrc = `
func lostcopy {
entry:
  x1 = param 0
  zero = const 0
  jump loop
loop:
  x2 = phi entry:x1 loop:x3
  one = const 1
  x3 = add x2 one
  ten = const 10
  c = cmplt x3 ten
  br c loop exit
exit:
  print x2
  ret x2
}
`

// TestStrategySpread is a canary: the lost-copy example must separate the
// Intersect strategy (which cannot coalesce x1 with the φ-node when x1
// stays live) from Value, and on the suite Value must remove strictly more
// copies than Intersect.
func TestStrategySpread(t *testing.T) {
	counts := map[core.Strategy]int{}
	for _, s := range core.Strategies {
		f := ir.MustParse(lostCopySrc)
		opt := fig5Options(s)
		st, err := core.Translate(f, opt)
		if err != nil {
			t.Fatal(err)
		}
		counts[s] = st.RemainingCopies
		t.Logf("lostcopy %-12s remaining=%d final=%d affinities=%d", s, st.RemainingCopies, st.FinalCopies, st.Affinities)
	}
	suite := Suite(0.3)
	suiteCounts := map[core.Strategy]int{}
	for _, s := range []core.Strategy{core.Intersect, core.Chaitin, core.Value} {
		tot, aff, phis := 0, 0, 0
		for _, b := range suite {
			for _, f := range b.Funcs {
				st, err := core.Translate(ir.Clone(f), fig5Options(s))
				if err != nil {
					t.Fatal(err)
				}
				tot += st.RemainingCopies
				aff += st.Affinities
				phis += st.Phis
			}
		}
		suiteCounts[s] = tot
		t.Logf("suite %-12s remaining=%d affinities=%d phis=%d", s, tot, aff, phis)
	}
	if suiteCounts[core.Value] >= suiteCounts[core.Intersect] {
		t.Errorf("suite: Value (%d) should beat Intersect (%d)",
			suiteCounts[core.Value], suiteCounts[core.Intersect])
	}
	// On the lost-copy problem every strategy must keep exactly the one
	// uncoalescible copy (x2 interferes with the φ-node; Figure 4d). The
	// Sreedhar III baseline may keep an extra one.
	for s, c := range counts {
		if s == core.SreedharIII {
			continue
		}
		if c != 1 {
			t.Errorf("%s: lost-copy should keep exactly 1 copy, got %d", s, c)
		}
	}
}
