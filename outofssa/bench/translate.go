package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"testing"

	"repro/internal/cfggen"
	"repro/internal/core"
	"repro/internal/ir"
)

// ------------------------------------------------ Translate trajectory
//
// The translate trajectory benchmarks the *whole* translation end to end —
// clone a pristine SSA template, run all four phases, emit φ-free code —
// in the steady-state batch pattern the engine's north star cares about.
// Two engines are compared on every (case, strategy) pair:
//
//   - "pooled": ir.CloneInto into a recycled destination plus
//     core.TranslateInto with one reused core.Scratch — the production
//     path, where the mutation phases perform no steady-state allocation
//     (slab-allocated instructions/variables/operands, recycled insertion
//     carriers, epoch-stamped sequentializer tables, pooled congruence
//     member lists);
//   - "reference": ir.Clone plus core.Translate under
//     Options.ReferenceAlloc — the pre-pooling allocation behavior, kept
//     alive as a fixed baseline exactly like the liveness and coalescing
//     trajectories' reference engines.
//
// Both engines produce byte-identical code (a differential test asserts
// it); the trajectory isolates allocation and time, not quality. Results
// are recorded as BENCH_translate.json per CI run, and CI gates on the
// pooled rows' allocs/op against the committed baseline.

// TranslateCase is one corpus entry of the translate trajectory: a pristine
// SSA function the benchmark repeatedly clones and translates.
type TranslateCase struct {
	Name   string `json:"name"`
	Blocks int    `json:"blocks"`
	Vars   int    `json:"vars"`
	Phis   int    `json:"phis"`

	fn *ir.Func
}

// TranslateCorpus generates the deterministic end-to-end corpus. scale
// multiplies the per-function block budget (1 ≈ 500 blocks per function;
// tests and -short runs use a fraction).
func TranslateCorpus(scale float64) []TranslateCase {
	profiles := []struct {
		name string
		seed int64
	}{
		{"endtoend-a", 8009},
		{"phimix-b", 9001},
	}
	var out []TranslateCase
	for _, p := range profiles {
		for _, f := range cfggen.GenerateLarge(cfggen.LargeTranslateProfile(p.name, p.seed, scale)) {
			phis := 0
			for _, b := range f.Blocks {
				phis += len(b.Phis)
			}
			out = append(out, TranslateCase{
				Name: f.Name, Blocks: len(f.Blocks), Vars: len(f.Vars), Phis: phis, fn: f,
			})
		}
	}
	return out
}

// Func returns the case's pristine function (tests drive the engines
// directly).
func (c *TranslateCase) Func() *ir.Func { return c.fn }

// TranslateResultRow is one (case, strategy, engine) measurement.
type TranslateResultRow struct {
	Case     string `json:"case"`
	Strategy string `json:"strategy"`
	Engine   string `json:"engine"` // "pooled" or "reference"
	// NsPerOp, AllocsPerOp and BytesPerOp come from testing.Benchmark; one
	// op is one clone+translate of the case's function.
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// RemainingCopies and FinalCopies summarize one run's output —
	// identical across engines (the differential test enforces it).
	RemainingCopies int `json:"remaining_copies"`
	FinalCopies     int `json:"final_copies"`
}

// TranslateReport is the BENCH_translate.json payload.
type TranslateReport struct {
	Scale   float64              `json:"scale"`
	Corpus  []TranslateCase      `json:"corpus"`
	Results []TranslateResultRow `json:"results"`
}

var translateEngines = []struct {
	name      string
	reference bool
}{
	{"pooled", false},
	{"reference", true},
}

// translateOnce runs one pooled op outside timing, for the output columns
// (identical across engines — TestTranslateEnginesAgree enforces it).
func translateOnce(c *TranslateCase, opt core.Options) *core.Stats {
	sc := core.NewScratch()
	dst := ir.NewFunc("")
	ir.CloneInto(dst, c.fn)
	st, err := core.TranslateInto(dst, opt, nil, sc)
	if err != nil {
		panic("bench: " + c.Name + ": " + err.Error())
	}
	return st
}

// TranslateTrajectory measures every case × Figure 5 strategy × engine
// combination with testing.Benchmark and returns the report.
func TranslateTrajectory(scale float64) *TranslateReport {
	corpus := TranslateCorpus(scale)
	rep := &TranslateReport{Scale: scale, Corpus: corpus}
	for i := range corpus {
		c := &corpus[i]
		for _, s := range core.Strategies {
			opt := fig5Options(s)
			// One untimed run fills the output columns for both engine rows:
			// the engines emit identical code (TestTranslateEnginesAgree).
			st := translateOnce(c, opt)
			for _, eng := range translateEngines {
				var r testing.BenchmarkResult
				if eng.reference {
					refOpt := opt
					refOpt.ReferenceAlloc = true
					r = testing.Benchmark(func(b *testing.B) {
						b.ReportAllocs()
						for i := 0; i < b.N; i++ {
							if _, err := core.Translate(ir.Clone(c.fn), refOpt); err != nil {
								b.Fatal(err)
							}
						}
					})
				} else {
					sc := core.NewScratch()
					dst := ir.NewFunc("")
					r = testing.Benchmark(func(b *testing.B) {
						b.ReportAllocs()
						for i := 0; i < b.N; i++ {
							ir.CloneInto(dst, c.fn)
							if _, err := core.TranslateInto(dst, opt, nil, sc); err != nil {
								b.Fatal(err)
							}
						}
					})
				}
				rep.Results = append(rep.Results, TranslateResultRow{
					Case:            c.Name,
					Strategy:        s.String(),
					Engine:          eng.name,
					NsPerOp:         float64(r.NsPerOp()),
					AllocsPerOp:     r.AllocsPerOp(),
					BytesPerOp:      r.AllocedBytesPerOp(),
					RemainingCopies: st.RemainingCopies,
					FinalCopies:     st.FinalCopies,
				})
			}
		}
	}
	return rep
}

// WriteJSON writes the report as indented JSON.
func (rep *TranslateReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// ReadTranslateReport parses a BENCH_translate.json payload.
func ReadTranslateReport(r io.Reader) (*TranslateReport, error) {
	rep := &TranslateReport{}
	if err := json.NewDecoder(r).Decode(rep); err != nil {
		return nil, fmt.Errorf("bench: parsing translate report: %w", err)
	}
	return rep, nil
}

// FormatTranslate renders the trajectory as a table: one row per case and
// strategy, pooled vs reference side by side with the speedup and the
// allocation ratio.
func FormatTranslate(rep *TranslateReport) string {
	byKey := map[string]TranslateResultRow{}
	for _, r := range rep.Results {
		byKey[r.Case+"/"+r.Strategy+"/"+r.Engine] = r
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Translate trajectory (scale %g): pooled vs reference allocation path\n", rep.Scale)
	fmt.Fprintf(&b, "%-18s %-12s %10s %10s %7s %11s %11s %7s\n",
		"case", "strategy", "pool ns/op", "ref ns/op", "speedup", "pool allocs", "ref allocs", "alloc÷")
	for _, c := range rep.Corpus {
		for _, s := range core.Strategies {
			pool, okP := byKey[c.Name+"/"+s.String()+"/pooled"]
			ref, okR := byKey[c.Name+"/"+s.String()+"/reference"]
			if !okP || !okR {
				continue
			}
			speed, allocR := 0.0, 0.0
			if pool.NsPerOp > 0 {
				speed = ref.NsPerOp / pool.NsPerOp
			}
			if pool.AllocsPerOp > 0 {
				allocR = float64(ref.AllocsPerOp) / float64(pool.AllocsPerOp)
			}
			fmt.Fprintf(&b, "%-18s %-12s %10.0f %10.0f %6.2fx %11d %11d %6.2fx\n",
				c.Name, s.String(), pool.NsPerOp, ref.NsPerOp, speed, pool.AllocsPerOp, ref.AllocsPerOp, allocR)
		}
	}
	return b.String()
}

// CheckTranslateAllocs is the allocation-regression gate: every pooled row
// of cur may allocate at most (1+slack)× the allocs/op of the matching row
// in the committed baseline. It returns one message per violation (empty
// means the gate passes); rows absent from the baseline are ignored, so
// corpus growth does not break CI. The reports must be measured at the
// same scale.
func CheckTranslateAllocs(cur, baseline *TranslateReport, slack float64) []string {
	if cur.Scale != baseline.Scale {
		return []string{fmt.Sprintf("scale mismatch: current %g, baseline %g — regenerate the baseline",
			cur.Scale, baseline.Scale)}
	}
	base := map[string]TranslateResultRow{}
	for _, r := range baseline.Results {
		if r.Engine == "pooled" {
			base[r.Case+"/"+r.Strategy] = r
		}
	}
	var violations []string
	for _, r := range cur.Results {
		if r.Engine != "pooled" {
			continue
		}
		b, ok := base[r.Case+"/"+r.Strategy]
		if !ok {
			continue
		}
		limit := int64(float64(b.AllocsPerOp) * (1 + slack))
		if r.AllocsPerOp > limit {
			violations = append(violations, fmt.Sprintf(
				"%s/%s: %d allocs/op exceeds baseline %d by more than %.0f%% (limit %d)",
				r.Case, r.Strategy, r.AllocsPerOp, b.AllocsPerOp, slack*100, limit))
		}
	}
	return violations
}
