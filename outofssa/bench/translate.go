package bench

import (
	"testing"

	"repro/internal/cfggen"
	"repro/internal/core"
	"repro/internal/ir"
)

// ------------------------------------------------ Translate trajectory
//
// The translate trajectory benchmarks the *whole* translation end to end —
// clone a pristine SSA template, run all four phases, emit φ-free code —
// in the steady-state batch pattern the engine's north star cares about.
// Two engines are compared on every (case, strategy) pair:
//
//   - "pooled": ir.CloneInto into a recycled destination plus
//     core.TranslateInto with one reused core.Scratch — the production
//     path, where the mutation phases perform no steady-state allocation;
//   - "reference": ir.Clone plus core.Translate under
//     Options.ReferenceAlloc — the pre-pooling allocation behavior, kept
//     alive as a fixed baseline exactly like the liveness and coalescing
//     trajectories' reference engines.
//
// Both engines produce byte-identical code (a differential test asserts
// it); the trajectory isolates allocation and time, not quality. Rows are
// keyed case × "strategy/engine"; the pooled rows' allocs_per_op is gated
// at +20% against the stored baseline by the compare policies, and
// copies_remaining is a zero-regress quality gate.

// TranslateCase is one corpus entry of the translate trajectory: a pristine
// SSA function the benchmark repeatedly clones and translates.
type TranslateCase struct {
	Name   string `json:"name"`
	Blocks int    `json:"blocks"`
	Vars   int    `json:"vars"`
	Phis   int    `json:"phis"`

	fn *ir.Func
}

// TranslateCorpus generates the deterministic end-to-end corpus. scale
// multiplies the per-function block budget (1 ≈ 500 blocks per function;
// tests and -short runs use a fraction).
func TranslateCorpus(scale float64) []TranslateCase {
	profiles := []struct {
		name string
		seed int64
	}{
		{"endtoend-a", 8009},
		{"phimix-b", 9001},
	}
	var out []TranslateCase
	for _, p := range profiles {
		for _, f := range cfggen.GenerateLarge(cfggen.LargeTranslateProfile(p.name, p.seed, scale)) {
			phis := 0
			for _, b := range f.Blocks {
				phis += len(b.Phis)
			}
			out = append(out, TranslateCase{
				Name: f.Name, Blocks: len(f.Blocks), Vars: len(f.Vars), Phis: phis, fn: f,
			})
		}
	}
	return out
}

// Func returns the case's pristine function (tests drive the engines
// directly).
func (c *TranslateCase) Func() *ir.Func { return c.fn }

// translateOnce runs one pooled op outside timing, for the output columns
// (identical across engines — TestTranslateEnginesAgree enforces it).
func translateOnce(c *TranslateCase, opt core.Options) *core.Stats {
	sc := core.NewScratch()
	dst := ir.NewFunc("")
	ir.CloneInto(dst, c.fn)
	st, err := core.TranslateInto(dst, opt, nil, sc)
	if err != nil {
		panic("bench: " + c.Name + ": " + err.Error())
	}
	return st
}

// translateRunner measures every case × Figure 5 strategy × engine
// combination with testing.Benchmark.
type translateRunner struct {
	scale  float64
	corpus []TranslateCase
}

// TranslateRunner builds the translate trajectory runner at the given
// scale.
func TranslateRunner(scale float64) Runner {
	return &translateRunner{scale: scale, corpus: TranslateCorpus(scale)}
}

func (r *translateRunner) Trajectory() string { return "translate" }
func (r *translateRunner) Scale() float64     { return r.scale }

func (r *translateRunner) Run(rep *Report) error {
	rep.SetParam("cases", formatNum(float64(len(r.corpus))))
	for i := range r.corpus {
		c := &r.corpus[i]
		for _, s := range core.Strategies {
			opt := fig5Options(s)
			// One untimed run fills the output columns for both engine rows:
			// the engines emit identical code (TestTranslateEnginesAgree).
			st := translateOnce(c, opt)

			refOpt := opt
			refOpt.ReferenceAlloc = true
			ref := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := core.Translate(ir.Clone(c.fn), refOpt); err != nil {
						b.Fatal(err)
					}
				}
			})
			sc := core.NewScratch()
			dst := ir.NewFunc("")
			pooled := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					ir.CloneInto(dst, c.fn)
					if _, err := core.TranslateInto(dst, opt, nil, sc); err != nil {
						b.Fatal(err)
					}
				}
			})

			for _, eng := range []struct {
				name string
				res  testing.BenchmarkResult
			}{{"pooled", pooled}, {"reference", ref}} {
				variant := s.String() + "/" + eng.name
				rep.Sample(c.Name, variant, "ns_per_op", float64(eng.res.NsPerOp()))
				rep.Sample(c.Name, variant, "allocs_per_op", float64(eng.res.AllocsPerOp()))
				rep.Sample(c.Name, variant, "bytes_per_op", float64(eng.res.AllocedBytesPerOp()))
				rep.Sample(c.Name, variant, "copies_remaining", float64(st.RemainingCopies))
				rep.Sample(c.Name, variant, "final_copies", float64(st.FinalCopies))
			}
			variant := s.String() + "/pooled"
			rep.Sample(c.Name, variant, "speedup",
				ratio(float64(ref.NsPerOp()), float64(pooled.NsPerOp())))
			rep.Sample(c.Name, variant, "alloc_ratio",
				ratio(float64(ref.AllocsPerOp()), float64(pooled.AllocsPerOp())))
		}
	}
	return nil
}
