// Package store is the persistent result store of the bench subsystem: an
// append-only, file-backed log of report envelopes keyed by content hash,
// plus named snapshots. It is deliberately pure Go — a directory with an
// NDJSON run log and a snapshot index — so the store is greppable,
// diffable, and committable without any external dependency.
//
// Layout (under the store directory, default .ssabench):
//
//	runs.ndjson     append-only, one JSON entry per line:
//	                {"id": ..., "trajectory": ..., "commit": ..., "report": {...}}
//	snapshots.json  {"name": "run id", ...}, rewritten atomically
//
// Append is a single O_APPEND write under a process-level lock, so
// concurrent appends from one process interleave whole lines; a torn or
// otherwise corrupt line is skipped (and counted) on load rather than
// poisoning the store. Entries are keyed (commit, trajectory, content
// hash): the id is derived from the report's canonical JSON, so appending
// the same measurement twice is detectable and resolvable by prefix.
package store

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/faults"
	"repro/outofssa/bench"
)

// fpAppend fires at Append entry, so chaos runs can verify callers survive
// a failing result store.
var fpAppend = faults.Register("bench.store.append")

// DefaultDir is the conventional store location at the repository root.
const DefaultDir = ".ssabench"

const (
	runsFile      = "runs.ndjson"
	snapshotsFile = "snapshots.json"
)

// Entry is one stored run: the envelope plus its store key.
type Entry struct {
	// ID is the content hash of the report's canonical JSON (16 hex
	// digits) — stable across re-appends of the same measurement.
	ID string `json:"id"`
	// Trajectory and Commit are denormalized from the report for listing
	// and resolution without decoding every envelope.
	Trajectory string        `json:"trajectory"`
	Commit     string        `json:"commit,omitempty"`
	Timestamp  string        `json:"timestamp,omitempty"`
	Report     *bench.Report `json:"report"`
}

// Store is a handle on one store directory. A Store is safe for
// concurrent use; cross-process appends are safe up to POSIX O_APPEND
// atomicity (whole-line writes).
type Store struct {
	dir string
	mu  sync.Mutex
}

// Open opens (creating if needed) the store directory.
func Open(dir string) (*Store, error) {
	if dir == "" {
		dir = DefaultDir
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// ID computes the store key of a report: the first 16 hex digits of the
// SHA-256 of its canonical (compact) JSON.
func ID(rep *bench.Report) (string, error) {
	raw, err := json.Marshal(rep)
	if err != nil {
		return "", fmt.Errorf("store: encoding report: %w", err)
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:8]), nil
}

// Append adds one envelope to the run log and returns its id. Appending a
// report whose id is already present is a no-op (idempotent re-append).
func (s *Store) Append(rep *bench.Report) (string, error) {
	if err := fpAppend.Inject(); err != nil {
		return "", err
	}
	if rep == nil || rep.Trajectory == "" {
		return "", fmt.Errorf("store: refusing to append a report with no trajectory")
	}
	id, err := ID(rep)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	entries, _, err := s.load()
	if err != nil {
		return "", err
	}
	for i := range entries {
		if entries[i].ID == id {
			return id, nil
		}
	}
	line, err := json.Marshal(Entry{
		ID:         id,
		Trajectory: rep.Trajectory,
		Commit:     rep.Env.Commit,
		Timestamp:  rep.Env.Timestamp,
		Report:     rep,
	})
	if err != nil {
		return "", fmt.Errorf("store: encoding entry: %w", err)
	}
	path := filepath.Join(s.dir, runsFile)
	// A writer that died mid-line leaves a torn, newline-less tail; writing
	// straight after it would weld this entry onto the corrupt line. Seal
	// the torn line first so the new entry stays recoverable.
	if tail, err := lastByte(path); err != nil {
		return "", err
	} else if tail != 0 && tail != '\n' {
		line = append([]byte{'\n'}, line...)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return "", fmt.Errorf("store: %w", err)
	}
	_, werr := f.Write(append(line, '\n'))
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return "", fmt.Errorf("store: appending run: %w", werr)
	}
	return id, nil
}

// lastByte returns the final byte of the file (0 for a missing or empty
// file).
func lastByte(path string) (byte, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil || st.Size() == 0 {
		return 0, err
	}
	var b [1]byte
	if _, err := f.ReadAt(b[:], st.Size()-1); err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	return b[0], nil
}

// List returns every stored run in append order, plus the number of
// corrupt lines that were skipped (a torn concurrent write or a truncated
// tail must not poison the whole store).
func (s *Store) List() ([]Entry, int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.load()
}

// load reads the run log; the caller holds s.mu.
func (s *Store) load() ([]Entry, int, error) {
	f, err := os.Open(filepath.Join(s.dir, runsFile))
	if os.IsNotExist(err) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	var (
		entries []Entry
		skipped int
	)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<28)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var e Entry
		if err := json.Unmarshal([]byte(line), &e); err != nil || e.ID == "" || e.Report == nil {
			skipped++
			continue
		}
		entries = append(entries, e)
	}
	if err := sc.Err(); err != nil {
		return entries, skipped, fmt.Errorf("store: reading run log: %w", err)
	}
	return entries, skipped, nil
}

// Snapshots returns the snapshot name → run id map.
func (s *Store) Snapshots() (map[string]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.loadSnapshots()
}

func (s *Store) loadSnapshots() (map[string]string, error) {
	raw, err := os.ReadFile(filepath.Join(s.dir, snapshotsFile))
	if os.IsNotExist(err) {
		return map[string]string{}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	snaps := map[string]string{}
	if err := json.Unmarshal(raw, &snaps); err != nil {
		return nil, fmt.Errorf("store: parsing %s: %w", snapshotsFile, err)
	}
	return snaps, nil
}

// Snapshot names a stored run. ref resolves like Resolve (id prefix,
// "latest", "latest:<trajectory>", or an existing snapshot name); the
// index is rewritten atomically (write + rename).
func (s *Store) Snapshot(name, ref string) error {
	if name == "" || strings.ContainsAny(name, " \t\n") {
		return fmt.Errorf("store: invalid snapshot name %q", name)
	}
	e, err := s.Resolve(ref)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	snaps, err := s.loadSnapshots()
	if err != nil {
		return err
	}
	snaps[name] = e.ID
	raw, err := json.MarshalIndent(snaps, "", "  ")
	if err != nil {
		return fmt.Errorf("store: encoding snapshots: %w", err)
	}
	tmp := filepath.Join(s.dir, snapshotsFile+".tmp")
	if err := os.WriteFile(tmp, append(raw, '\n'), 0o644); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, snapshotsFile)); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Resolve maps a reference to a stored run. Accepted forms:
//
//	latest                  the most recently appended run
//	latest:<trajectory>     the most recent run of one trajectory
//	<snapshot name>         a name registered with Snapshot
//	<id or id prefix>       the run's content hash (unique prefix allowed)
func (s *Store) Resolve(ref string) (Entry, error) {
	if ref == "" {
		ref = "latest"
	}
	entries, _, err := s.List()
	if err != nil {
		return Entry{}, err
	}
	if ref == "latest" || strings.HasPrefix(ref, "latest:") {
		traj := strings.TrimPrefix(ref, "latest:")
		if traj == "latest" {
			traj = ""
		}
		for i := len(entries) - 1; i >= 0; i-- {
			if traj == "" || entries[i].Trajectory == traj {
				return entries[i], nil
			}
		}
		return Entry{}, fmt.Errorf("store: no stored run matches %q", ref)
	}
	snaps, err := s.Snapshots()
	if err != nil {
		return Entry{}, err
	}
	target := ref
	if id, ok := snaps[ref]; ok {
		target = id
	}
	var matches []Entry
	for _, e := range entries {
		if e.ID == target {
			return e, nil
		}
		if strings.HasPrefix(e.ID, target) {
			matches = append(matches, e)
		}
	}
	switch len(matches) {
	case 1:
		return matches[0], nil
	case 0:
		return Entry{}, fmt.Errorf("store: no stored run matches %q", ref)
	default:
		ids := make([]string, len(matches))
		for i := range matches {
			ids[i] = matches[i].ID
		}
		sort.Strings(ids)
		return Entry{}, fmt.Errorf("store: ambiguous reference %q matches %s", ref, strings.Join(ids, ", "))
	}
}

// Export writes the resolved run's envelope as indented JSON — the format
// of the committed BENCH_*.json trajectory files, re-readable by
// bench.ReadReport and by `ssabench compare`.
func (s *Store) Export(w io.Writer, ref string) error {
	e, err := s.Resolve(ref)
	if err != nil {
		return err
	}
	return e.Report.WriteJSON(w)
}
