package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/outofssa/bench"
)

func report(trajectory string, seed float64) *bench.Report {
	rep := bench.NewReport(trajectory, 0.05)
	rep.Count = 3
	for i := 0; i < 3; i++ {
		rep.Sample("c1", "pooled", "ns_per_op", 100+seed+float64(i))
		rep.Sample("c1", "pooled", "allocs_per_op", 50+seed)
	}
	return rep
}

// TestStoreRoundTrip: append → list → snapshot → resolve → export, and the
// export re-reads as the very report that went in.
func TestStoreRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	repA, repB := report("translate", 0), report("liveness", 7)
	idA, err := s.Append(repA)
	if err != nil {
		t.Fatal(err)
	}
	idB, err := s.Append(repB)
	if err != nil {
		t.Fatal(err)
	}
	if idA == idB {
		t.Fatalf("distinct reports share id %s", idA)
	}

	// Idempotent re-append: same content, same id, no duplicate entry.
	again, err := s.Append(repA)
	if err != nil || again != idA {
		t.Fatalf("re-append: id %s err %v, want %s", again, err, idA)
	}
	entries, skipped, err := s.List()
	if err != nil || skipped != 0 {
		t.Fatalf("list: skipped %d err %v", skipped, err)
	}
	if len(entries) != 2 || entries[0].ID != idA || entries[1].ID != idB {
		t.Fatalf("unexpected entries: %+v", entries)
	}
	if entries[0].Trajectory != "translate" || entries[1].Trajectory != "liveness" {
		t.Fatalf("denormalized trajectories wrong: %+v", entries)
	}

	// Resolution forms: latest, latest:traj, id prefix, snapshot name.
	if e, err := s.Resolve("latest"); err != nil || e.ID != idB {
		t.Fatalf("latest → %v %v, want %s", e.ID, err, idB)
	}
	if e, err := s.Resolve("latest:translate"); err != nil || e.ID != idA {
		t.Fatalf("latest:translate → %v %v, want %s", e.ID, err, idA)
	}
	if e, err := s.Resolve(idA[:6]); err != nil || e.ID != idA {
		t.Fatalf("prefix → %v %v, want %s", e.ID, err, idA)
	}
	if err := s.Snapshot("v1-baseline", idA); err != nil {
		t.Fatal(err)
	}
	if e, err := s.Resolve("v1-baseline"); err != nil || e.ID != idA {
		t.Fatalf("snapshot → %v %v, want %s", e.ID, err, idA)
	}
	if _, err := s.Resolve("nosuch"); err == nil {
		t.Fatal("resolving a bogus ref must fail")
	}

	// Export is the committed-BENCH format: a plain envelope.
	var buf bytes.Buffer
	if err := s.Export(&buf, "v1-baseline"); err != nil {
		t.Fatal(err)
	}
	back, err := bench.ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Trajectory != "translate" || len(back.Rows) != len(repA.Rows) {
		t.Fatalf("export round-trip lost data: %+v", back)
	}
	exported, err := ID(back)
	if err != nil || exported != idA {
		t.Fatalf("exported report re-hashes to %s (err %v), want %s", exported, err, idA)
	}
}

// TestStoreCorruptLines: a torn tail (truncated concurrent write) and a
// garbage line in the middle are skipped and counted; the intact entries
// stay readable.
func TestStoreCorruptLines(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	idA, err := s.Append(report("translate", 0))
	if err != nil {
		t.Fatal(err)
	}

	log := filepath.Join(dir, "runs.ndjson")
	f, err := os.OpenFile(log, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// Garbage mid-line, then a valid entry, then a torn tail.
	if _, err := f.WriteString("{not json at all\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	idB, err := s.Append(report("liveness", 3))
	if err != nil {
		t.Fatal(err)
	}
	f, err = os.OpenFile(log, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"id": "deadbeef", "report": {"schema`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	entries, skipped, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 2 {
		t.Fatalf("want 2 skipped corrupt lines, got %d", skipped)
	}
	if len(entries) != 2 || entries[0].ID != idA || entries[1].ID != idB {
		t.Fatalf("intact entries lost: %+v", entries)
	}
	// Appends keep working after corruption, and the new entry resolves.
	idC, err := s.Append(report("scale", 9))
	if err != nil {
		t.Fatal(err)
	}
	if e, err := s.Resolve("latest"); err != nil || e.ID != idC {
		t.Fatalf("latest after corruption → %v %v, want %s", e.ID, err, idC)
	}
}

// TestStoreConcurrentAppend: parallel appends through two handles on the
// same directory interleave whole lines — every run is recoverable and
// nothing is skipped.
func TestStoreConcurrentAppend(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	const perHandle = 8
	var wg sync.WaitGroup
	for g, s := range []*Store{s1, s2} {
		wg.Add(1)
		go func(g int, s *Store) {
			defer wg.Done()
			for i := 0; i < perHandle; i++ {
				rep := report(fmt.Sprintf("traj-%d", g), float64(i))
				rep.SetParam("i", fmt.Sprint(i))
				if _, err := s.Append(rep); err != nil {
					t.Errorf("append g=%d i=%d: %v", g, i, err)
				}
			}
		}(g, s)
	}
	wg.Wait()
	entries, skipped, err := s1.List()
	if err != nil || skipped != 0 {
		t.Fatalf("list: skipped %d err %v", skipped, err)
	}
	if len(entries) != 2*perHandle {
		t.Fatalf("want %d entries, got %d", 2*perHandle, len(entries))
	}
	seen := map[string]bool{}
	for _, e := range entries {
		if seen[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
		if e.Report == nil || e.Report.Schema != bench.SchemaVersion {
			t.Fatalf("malformed stored report: %+v", e)
		}
	}
}
