package bench

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"repro/internal/cfggen"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/pipeline"
)

// ------------------------------------------------ Memoization trajectory
//
// The memo trajectory measures what the translation memo buys on the
// workload it exists for: near-duplicate corpora (a base corpus plus K
// structurally edited clones per function — the template-instantiation /
// re-JIT shape a compile server sees). Three timed batch passes per
// strategy:
//
//   - "uncached":  the plain pipeline, no memo — the differential baseline;
//   - "memo-cold": a fresh memo, first pass over the corpus (rename-only
//     clones already hit — the fingerprint ignores names);
//   - "memo-warm": the populated memo, second pass — every function hits
//     and materializes with a zero-alloc clone instead of translating.
//
// Every (case, strategy) row also runs the differential oracle: the
// memoized output must behave identically to the uncached translation
// (interpreter equivalence), with identical statistics (modulo wall clock)
// and identical per-φ coalescing statuses; the verdict lands in the
// envelope as the gateable 0/1 metric oracle_clean. cmd/ssaload -dup
// produces the committed artifact (BENCH_memo.json, with a daemon point
// on top) and the memo compare policies gate it: warm_speedup ≥2, full
// warm hit rate, every oracle row clean.

// MemoCorpus generates the deterministic near-duplicate corpus: baseFuncs
// distinct functions, clones edited near-duplicates each, interleaved.
func MemoCorpus(baseFuncs, clones int, seed int64) []*ir.Func {
	p := cfggen.DefaultProfile("memodup", seed)
	p.Funcs = baseFuncs
	// Larger-than-default functions: the analyses a memo hit skips grow
	// faster than the linear materializing clone it pays for, so the
	// trajectory measures the regime the memo targets.
	p.MinStmts, p.MaxStmts = 80, 220
	return cfggen.GenerateNearDuplicates(cfggen.NearDuplicateProfile{
		Base:     p,
		Clones:   clones,
		EditSeed: seed + 1,
	})
}

// MemoStrategies are the strategy rows of the memo trajectory: the façade
// default (value-based sharing) and the virtualized Sreedhar III baseline,
// so both the materializing and the virtualized coalescer feed the memo.
func MemoStrategies() []struct {
	Name string
	Opt  core.Options
} {
	return []struct {
		Name string
		Opt  core.Options
	}{
		{"sharing", core.Options{Strategy: core.Sharing, Linear: true, LiveCheck: true}},
		{"sreedhar3", core.Options{Strategy: core.SreedharIII, Virtualize: true}},
	}
}

// RunMemoBatch measures the three batch passes and the differential-oracle
// rows for every strategy over the given pristine corpus (which is never
// mutated — every pass clones it afresh), folding everything into the
// envelope. reps is the best-of repetition count per timed pass (≥1).
func RunMemoBatch(rep *Report, corpus []*ir.Func, workers, reps int) error {
	if reps < 1 {
		reps = 1
	}
	rep.SetParam("corpus_funcs", formatNum(float64(len(corpus))))
	rep.SetParam("workers", formatNum(float64(pipelineWorkers(workers, len(corpus)))))
	rep.SetParam("reps", formatNum(float64(reps)))
	ctx := context.Background()

	fresh := func() []*ir.Func {
		out := make([]*ir.Func, len(corpus))
		for i, f := range corpus {
			out[i] = ir.Clone(f)
		}
		return out
	}
	runPass := func(pl *pipeline.Pipeline) (int64, error) {
		fns := fresh()
		t0 := time.Now()
		res := pipeline.RunBatch(ctx, fns, pl, workers)
		nanos := time.Since(t0).Nanoseconds()
		for i, err := range res.Errs {
			if err != nil {
				return 0, fmt.Errorf("bench: memo pass: func %d (%s): %w", i, corpus[i].Name, err)
			}
		}
		return nanos, nil
	}
	perFunc := func(nanos int64) float64 {
		if len(corpus) == 0 {
			return 0
		}
		return float64(nanos) / float64(len(corpus))
	}
	hitRate := func(hits, misses uint64) float64 {
		if hits+misses == 0 {
			return 0
		}
		return float64(hits) / float64(hits+misses)
	}

	for _, st := range MemoStrategies() {
		// Uncached baseline.
		var best int64
		for r := 0; r < reps; r++ {
			nanos, err := runPass(pipeline.New(pipeline.OutOfSSA(st.Opt)...))
			if err != nil {
				return err
			}
			if r == 0 || nanos < best {
				best = nanos
			}
		}
		rep.Sample(st.Name, "uncached", "nanos_per_func", perFunc(best))

		// Cold: fresh memo per rep — a second pass over the same memo would
		// silently measure the warm path.
		var memo *core.Memo
		for r := 0; r < reps; r++ {
			memo = core.NewMemo(0, 0)
			nanos, err := runPass(pipeline.New(pipeline.OutOfSSAWithMemo(st.Opt, memo)...))
			if err != nil {
				return err
			}
			if r == 0 || nanos < best {
				best = nanos
			}
		}
		cold := memo.Stats()
		coldBest := best
		rep.Sample(st.Name, "memo-cold", "nanos_per_func", perFunc(coldBest))
		rep.Sample(st.Name, "memo-cold", "hit_rate", hitRate(cold.Hits, cold.Misses))

		// Warm: the populated memo, fresh input clones per rep.
		pl := pipeline.New(pipeline.OutOfSSAWithMemo(st.Opt, memo)...)
		for r := 0; r < reps; r++ {
			before := memo.Stats()
			nanos, err := runPass(pl)
			if err != nil {
				return err
			}
			if r == 0 || nanos < best {
				best = nanos
			}
			if r == reps-1 {
				after := memo.Stats()
				rep.Sample(st.Name, "memo-warm", "nanos_per_func", perFunc(best))
				rep.Sample(st.Name, "memo-warm", "hit_rate",
					hitRate(after.Hits-before.Hits, after.Misses-before.Misses))
				rep.Sample(st.Name, "memo-warm", "warm_speedup",
					ratio(float64(coldBest), float64(best)))
			}
		}

		// Differential oracle per corpus function, against the warm memo.
		for _, f := range corpus {
			clean, err := memoCase(ctx, f, st.Opt, memo)
			if err != nil {
				return err
			}
			v := 0.0
			if clean {
				v = 1
			}
			rep.Sample(f.Name, st.Name+"/oracle", "oracle_clean", v)
		}
	}
	return nil
}

// MemoDaemonVariant names the daemon-traffic row variant.
func MemoDaemonVariant(clients int) string { return fmt.Sprintf("clients=%d", clients) }

// AddMemoDaemonPoint folds the daemon-mode measurement — near-duplicate
// traffic replayed against a memo-enabled server (cmd/ssaload -dup) — into
// the envelope as the row ("daemon", "clients=N"). memoHitRate is the
// server's own view (GET /v1/stats, memo section).
func AddMemoDaemonPoint(rep *Report, p ServePoint, memoHitRate float64) {
	variant := MemoDaemonVariant(p.Clients)
	rep.Sample("daemon", variant, "requests", float64(p.Requests))
	rep.Sample("daemon", variant, "funcs", float64(p.Funcs))
	rep.Sample("daemon", variant, "memo_hit_rate", memoHitRate)
	rep.Sample("daemon", variant, "p50_us", p.P50Micros)
	rep.Sample("daemon", variant, "p99_us", p.P99Micros)
}

// memoInterpParams are the interpreter inputs of the differential oracle.
var memoInterpParams = [][]int64{{0, 0}, {1, 7}, {13, 5}}

const memoInterpSteps = 1 << 20

// memoCase runs the differential oracle for one function: translate a clone
// uncached, translate another from the warm memo, and compare behaviour,
// statistics, and coalescing statuses. It reports whether every check was
// clean.
func memoCase(ctx context.Context, f *ir.Func, opt core.Options, memo *core.Memo) (bool, error) {
	ref := ir.Clone(f) // pristine SSA source, the semantic reference

	plain := ir.Clone(f)
	pctxPlain, err := pipeline.New(pipeline.OutOfSSA(opt)...).Run(ctx, plain)
	if err != nil {
		return false, fmt.Errorf("bench: memo oracle: uncached %s: %w", f.Name, err)
	}

	memoized := ir.Clone(f)
	key := core.MemoKeyFor(memoized, opt)
	pctxMemo, err := pipeline.New(pipeline.OutOfSSAWithMemo(opt, memo)...).Run(ctx, memoized)
	if err != nil {
		return false, fmt.Errorf("bench: memo oracle: memoized %s: %w", f.Name, err)
	}
	memoHit := pctxMemo.MemoHit

	// Statistics, wall clock excluded (memoized stats carry none).
	a, b := *pctxPlain.Stats, *pctxMemo.Stats
	a.InsertNanos, a.AnalyzeNanos, a.CoalesceNanos, a.RewriteNanos = 0, 0, 0, 0
	b.InsertNanos, b.AnalyzeNanos, b.CoalesceNanos, b.RewriteNanos = 0, 0, 0, 0
	statsMatch := a == b

	// Coalescing statuses: the uncached run's against the stored entry's.
	statusesMatch := false
	if e := memo.Lookup(key); e != nil && pctxPlain.Translation != nil {
		want := pctxPlain.Translation.CoalesceResult().Statuses
		got := e.Statuses()
		statusesMatch = len(want) == len(got)
		for i := 0; statusesMatch && i < len(want); i++ {
			if want[i] != got[i] {
				statusesMatch = false
			}
		}
	}

	// Observable behaviour: memoized output vs the SSA source and vs the
	// uncached translation, on every parameter vector.
	equivalent := true
	for _, params := range memoInterpParams {
		re, err := interp.Run(ref, params, memoInterpSteps)
		if err != nil {
			return false, fmt.Errorf("bench: memo oracle: interpreting source %s: %w", f.Name, err)
		}
		pe, err := interp.Run(plain, params, memoInterpSteps)
		if err != nil {
			return false, fmt.Errorf("bench: memo oracle: interpreting uncached %s: %w", f.Name, err)
		}
		me, err := interp.Run(memoized, params, memoInterpSteps)
		if err != nil {
			return false, fmt.Errorf("bench: memo oracle: interpreting memoized %s: %w", f.Name, err)
		}
		if !interp.Equal(re, me) || !interp.Equal(pe, me) {
			equivalent = false
		}
	}
	return memoHit && statsMatch && statusesMatch && equivalent, nil
}

// pipelineWorkers mirrors the batch driver's worker clamp for reporting.
func pipelineWorkers(workers, funcs int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	workers = min(workers, funcs)
	return max(workers, 1)
}
