package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"

	"repro/internal/cfggen"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/pipeline"
)

// ------------------------------------------------ Memoization trajectory
//
// The memo trajectory measures what the translation memo buys on the
// workload it exists for: near-duplicate corpora (a base corpus plus K
// structurally edited clones per function — the template-instantiation /
// re-JIT shape a compile server sees). Three timed batch passes per
// strategy:
//
//   - "uncached":  the plain pipeline, no memo — the differential baseline;
//   - "memo-cold": a fresh memo, first pass over the corpus (rename-only
//     clones already hit — the fingerprint ignores names);
//   - "memo-warm": the populated memo, second pass — every function hits
//     and materializes with a zero-alloc clone instead of translating.
//
// Every (case, strategy) row also runs the differential oracle: the
// memoized output must behave identically to the uncached translation
// (interpreter equivalence), with identical statistics (modulo wall clock)
// and identical per-φ coalescing statuses. cmd/ssaload -dup produces the
// committed artifact (BENCH_memo.json, with a daemon point on top) and CI
// gates it with CheckMemo: warm ≥2× faster than cold, full warm hit rate,
// every oracle row clean.

// MemoPass is one timed batch pass over the whole near-duplicate corpus.
type MemoPass struct {
	// Kind is "uncached", "memo-cold", or "memo-warm".
	Kind string `json:"kind"`
	// Strategy names the coalescing strategy of the pass.
	Strategy string `json:"strategy"`
	// Funcs is the corpus size the pass translated.
	Funcs int `json:"funcs"`
	// Nanos is the best-of-reps wall clock of the whole pass.
	Nanos int64 `json:"nanos"`
	// NanosPerFunc is Nanos / Funcs.
	NanosPerFunc float64 `json:"nanos_per_func"`
	// MemoHits/MemoMisses are the memo lookups of one rep of this pass
	// (zero for the uncached pass).
	MemoHits   uint64 `json:"memo_hits"`
	MemoMisses uint64 `json:"memo_misses"`
	// HitRate is MemoHits / (MemoHits + MemoMisses).
	HitRate float64 `json:"hit_rate"`
}

// MemoCase is one differential-oracle row: one corpus function under one
// strategy, translated uncached and from the warm memo, compared.
type MemoCase struct {
	Name     string `json:"name"`
	Strategy string `json:"strategy"`
	// MemoHit reports the warm translation was actually served from the
	// memo (not silently re-translated).
	MemoHit bool `json:"memo_hit"`
	// StatsMatch reports identical translation statistics (wall-clock
	// fields excluded — the memoized stats carry none).
	StatsMatch bool `json:"stats_match"`
	// StatusesMatch reports identical per-φ coalescing statuses.
	StatusesMatch bool `json:"statuses_match"`
	// Equivalent reports interpreter-observable equivalence of the memoized
	// output against both the SSA source and the uncached translation.
	Equivalent bool `json:"equivalent"`
}

// MemoDaemonPoint is the daemon-mode measurement: near-duplicate traffic
// replayed against a memo-enabled server (cmd/ssaload -dup).
type MemoDaemonPoint struct {
	Clients  int   `json:"clients"`
	Requests int64 `json:"requests"`
	Funcs    int64 `json:"funcs"`
	// MemoHitRate is the server's own view (GET /v1/stats, memo section).
	MemoHitRate float64 `json:"memo_hit_rate"`
	P50Micros   float64 `json:"p50_us"`
	P99Micros   float64 `json:"p99_us"`
}

// MemoReport is the BENCH_memo.json payload.
type MemoReport struct {
	// BaseFuncs/Clones/CorpusFuncs describe the near-duplicate corpus:
	// BaseFuncs distinct functions, Clones edited clones each.
	BaseFuncs   int   `json:"base_funcs"`
	Clones      int   `json:"clones"`
	CorpusFuncs int   `json:"corpus_funcs"`
	Seed        int64 `json:"seed"`
	// Workers is the batch worker-pool size the passes ran on; Cores the
	// machine's GOMAXPROCS.
	Workers int `json:"workers"`
	Cores   int `json:"cores"`

	Passes []MemoPass       `json:"passes"`
	Cases  []MemoCase       `json:"cases"`
	Daemon *MemoDaemonPoint `json:"daemon,omitempty"`
}

// WriteJSON writes the report as indented JSON.
func (rep *MemoReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// ReadMemoReport reads a report written by WriteJSON.
func ReadMemoReport(r io.Reader) (*MemoReport, error) {
	var rep MemoReport
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return nil, fmt.Errorf("bench: reading memo report: %w", err)
	}
	return &rep, nil
}

// MemoCorpus generates the deterministic near-duplicate corpus: baseFuncs
// distinct functions, clones edited near-duplicates each, interleaved.
func MemoCorpus(baseFuncs, clones int, seed int64) []*ir.Func {
	p := cfggen.DefaultProfile("memodup", seed)
	p.Funcs = baseFuncs
	// Larger-than-default functions: the analyses a memo hit skips grow
	// faster than the linear materializing clone it pays for, so the
	// trajectory measures the regime the memo targets.
	p.MinStmts, p.MaxStmts = 80, 220
	return cfggen.GenerateNearDuplicates(cfggen.NearDuplicateProfile{
		Base:     p,
		Clones:   clones,
		EditSeed: seed + 1,
	})
}

// memoStrategies are the strategy rows of the memo trajectory: the façade
// default (value-based sharing) and the virtualized Sreedhar III baseline,
// so both the materializing and the virtualized coalescer feed the memo.
func memoStrategies() []struct {
	Name string
	Opt  core.Options
} {
	return []struct {
		Name string
		Opt  core.Options
	}{
		{"sharing", core.Options{Strategy: core.Sharing, Linear: true, LiveCheck: true}},
		{"sreedhar3", core.Options{Strategy: core.SreedharIII, Virtualize: true}},
	}
}

// RunMemoBatch measures the three batch passes and the differential-oracle
// rows for every strategy over the given pristine corpus (which is never
// mutated — every pass clones it afresh). reps is the best-of repetition
// count per timed pass (≥1).
func RunMemoBatch(rep *MemoReport, corpus []*ir.Func, workers, reps int) error {
	if reps < 1 {
		reps = 1
	}
	rep.CorpusFuncs = len(corpus)
	rep.Workers = pipelineWorkers(workers, len(corpus))
	rep.Cores = runtime.GOMAXPROCS(0)
	ctx := context.Background()

	fresh := func() []*ir.Func {
		out := make([]*ir.Func, len(corpus))
		for i, f := range corpus {
			out[i] = ir.Clone(f)
		}
		return out
	}
	runPass := func(pl *pipeline.Pipeline) (int64, error) {
		fns := fresh()
		t0 := time.Now()
		res := pipeline.RunBatch(ctx, fns, pl, workers)
		nanos := time.Since(t0).Nanoseconds()
		for i, err := range res.Errs {
			if err != nil {
				return 0, fmt.Errorf("bench: memo pass: func %d (%s): %w", i, corpus[i].Name, err)
			}
		}
		return nanos, nil
	}

	for _, st := range memoStrategies() {
		// Uncached baseline.
		var best int64
		for r := 0; r < reps; r++ {
			nanos, err := runPass(pipeline.New(pipeline.OutOfSSA(st.Opt)...))
			if err != nil {
				return err
			}
			if r == 0 || nanos < best {
				best = nanos
			}
		}
		rep.Passes = append(rep.Passes, memoPass("uncached", st.Name, len(corpus), best, 0, 0))

		// Cold: fresh memo per rep — a second pass over the same memo would
		// silently measure the warm path.
		var memo *core.Memo
		for r := 0; r < reps; r++ {
			memo = core.NewMemo(0, 0)
			nanos, err := runPass(pipeline.New(pipeline.OutOfSSAWithMemo(st.Opt, memo)...))
			if err != nil {
				return err
			}
			if r == 0 || nanos < best {
				best = nanos
			}
		}
		cold := memo.Stats()
		rep.Passes = append(rep.Passes, memoPass("memo-cold", st.Name, len(corpus), best, cold.Hits, cold.Misses))

		// Warm: the populated memo, fresh input clones per rep.
		pl := pipeline.New(pipeline.OutOfSSAWithMemo(st.Opt, memo)...)
		for r := 0; r < reps; r++ {
			before := memo.Stats()
			nanos, err := runPass(pl)
			if err != nil {
				return err
			}
			if r == 0 || nanos < best {
				best = nanos
			}
			if r == reps-1 {
				after := memo.Stats()
				rep.Passes = append(rep.Passes, memoPass("memo-warm", st.Name, len(corpus), best,
					after.Hits-before.Hits, after.Misses-before.Misses))
			}
		}

		// Differential oracle per corpus function, against the warm memo.
		for _, f := range corpus {
			c, err := memoCase(ctx, f, st.Name, st.Opt, memo)
			if err != nil {
				return err
			}
			rep.Cases = append(rep.Cases, c)
		}
	}
	return nil
}

// memoPass assembles one MemoPass row.
func memoPass(kind, strategy string, funcs int, nanos int64, hits, misses uint64) MemoPass {
	p := MemoPass{Kind: kind, Strategy: strategy, Funcs: funcs, Nanos: nanos,
		MemoHits: hits, MemoMisses: misses}
	if funcs > 0 {
		p.NanosPerFunc = float64(nanos) / float64(funcs)
	}
	if hits+misses > 0 {
		p.HitRate = float64(hits) / float64(hits+misses)
	}
	return p
}

// memoInterpParams are the interpreter inputs of the differential oracle.
var memoInterpParams = [][]int64{{0, 0}, {1, 7}, {13, 5}}

const memoInterpSteps = 1 << 20

// memoCase runs the differential oracle for one function: translate a clone
// uncached, translate another from the warm memo, and compare behaviour,
// statistics, and coalescing statuses.
func memoCase(ctx context.Context, f *ir.Func, strategy string, opt core.Options, memo *core.Memo) (MemoCase, error) {
	c := MemoCase{Name: f.Name, Strategy: strategy}

	ref := ir.Clone(f) // pristine SSA source, the semantic reference

	plain := ir.Clone(f)
	pctxPlain, err := pipeline.New(pipeline.OutOfSSA(opt)...).Run(ctx, plain)
	if err != nil {
		return c, fmt.Errorf("bench: memo oracle: uncached %s: %w", f.Name, err)
	}

	memoized := ir.Clone(f)
	key := core.MemoKeyFor(memoized, opt)
	pctxMemo, err := pipeline.New(pipeline.OutOfSSAWithMemo(opt, memo)...).Run(ctx, memoized)
	if err != nil {
		return c, fmt.Errorf("bench: memo oracle: memoized %s: %w", f.Name, err)
	}
	c.MemoHit = pctxMemo.MemoHit

	// Statistics, wall clock excluded (memoized stats carry none).
	a, b := *pctxPlain.Stats, *pctxMemo.Stats
	a.InsertNanos, a.AnalyzeNanos, a.CoalesceNanos, a.RewriteNanos = 0, 0, 0, 0
	b.InsertNanos, b.AnalyzeNanos, b.CoalesceNanos, b.RewriteNanos = 0, 0, 0, 0
	c.StatsMatch = a == b

	// Coalescing statuses: the uncached run's against the stored entry's.
	if e := memo.Lookup(key); e != nil && pctxPlain.Translation != nil {
		want := pctxPlain.Translation.CoalesceResult().Statuses
		got := e.Statuses()
		c.StatusesMatch = len(want) == len(got)
		for i := 0; c.StatusesMatch && i < len(want); i++ {
			if want[i] != got[i] {
				c.StatusesMatch = false
			}
		}
	}

	// Observable behaviour: memoized output vs the SSA source and vs the
	// uncached translation, on every parameter vector.
	c.Equivalent = true
	for _, params := range memoInterpParams {
		re, err := interp.Run(ref, params, memoInterpSteps)
		if err != nil {
			return c, fmt.Errorf("bench: memo oracle: interpreting source %s: %w", f.Name, err)
		}
		pe, err := interp.Run(plain, params, memoInterpSteps)
		if err != nil {
			return c, fmt.Errorf("bench: memo oracle: interpreting uncached %s: %w", f.Name, err)
		}
		me, err := interp.Run(memoized, params, memoInterpSteps)
		if err != nil {
			return c, fmt.Errorf("bench: memo oracle: interpreting memoized %s: %w", f.Name, err)
		}
		if !interp.Equal(re, me) || !interp.Equal(pe, me) {
			c.Equivalent = false
		}
	}
	return c, nil
}

// pipelineWorkers mirrors the batch driver's worker clamp for reporting.
func pipelineWorkers(workers, funcs int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > funcs {
		workers = funcs
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// FormatMemo renders the human-readable report.
func FormatMemo(rep *MemoReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "memoization trajectory: %d base funcs x (1+%d) near-duplicates = %d corpus funcs, %d workers, %d cores\n",
		rep.BaseFuncs, rep.Clones, rep.CorpusFuncs, rep.Workers, rep.Cores)
	fmt.Fprintf(&b, "%-10s  %-10s  %8s  %12s  %10s  %8s\n",
		"strategy", "pass", "funcs", "ns/func", "hits", "hitrate")
	for i := range rep.Passes {
		p := &rep.Passes[i]
		fmt.Fprintf(&b, "%-10s  %-10s  %8d  %12.0f  %10d  %8.2f\n",
			p.Strategy, p.Kind, p.Funcs, p.NanosPerFunc, p.MemoHits, p.HitRate)
	}
	ok := 0
	for i := range rep.Cases {
		c := &rep.Cases[i]
		if c.MemoHit && c.StatsMatch && c.StatusesMatch && c.Equivalent {
			ok++
		}
	}
	fmt.Fprintf(&b, "differential oracle: %d/%d case x strategy rows clean (memo hit, stats, statuses, behaviour)\n",
		ok, len(rep.Cases))
	if rep.Daemon != nil {
		d := rep.Daemon
		fmt.Fprintf(&b, "daemon: clients=%d requests=%d funcs=%d memo hit rate %.2f p50=%.0fus p99=%.0fus\n",
			d.Clients, d.Requests, d.Funcs, d.MemoHitRate, d.P50Micros, d.P99Micros)
	}
	return b.String()
}

// CheckMemo is the gate CI runs on a fresh trajectory: for every strategy
// the warm pass is at least twice as fast as the cold pass and hits on the
// whole corpus, and every differential-oracle row is clean. The cold hit
// rate is reported but not gated (work stealing can translate a base and
// its rename-clone concurrently, so cold hits are scheduling-dependent).
func CheckMemo(rep *MemoReport) []string {
	var violations []string
	if len(rep.Passes) == 0 {
		return []string{"no measured passes"}
	}
	byKey := map[string]*MemoPass{}
	for i := range rep.Passes {
		p := &rep.Passes[i]
		byKey[p.Strategy+"/"+p.Kind] = p
	}
	for _, st := range memoStrategies() {
		cold := byKey[st.Name+"/memo-cold"]
		warm := byKey[st.Name+"/memo-warm"]
		switch {
		case cold == nil || warm == nil:
			violations = append(violations, fmt.Sprintf("%s: missing cold or warm pass", st.Name))
		default:
			if warm.Nanos*2 > cold.Nanos {
				violations = append(violations, fmt.Sprintf(
					"%s: warm pass not >=2x faster than cold (warm %.0f ns/func, cold %.0f ns/func)",
					st.Name, warm.NanosPerFunc, cold.NanosPerFunc))
			}
			if warm.HitRate < 0.999 {
				violations = append(violations, fmt.Sprintf(
					"%s: warm hit rate %.3f < 1.0", st.Name, warm.HitRate))
			}
		}
	}
	if len(rep.Cases) == 0 {
		violations = append(violations, "no differential-oracle rows")
	}
	for i := range rep.Cases {
		c := &rep.Cases[i]
		if !c.MemoHit || !c.StatsMatch || !c.StatusesMatch || !c.Equivalent {
			violations = append(violations, fmt.Sprintf(
				"oracle %s/%s: hit=%v stats=%v statuses=%v equivalent=%v",
				c.Strategy, c.Name, c.MemoHit, c.StatsMatch, c.StatusesMatch, c.Equivalent))
		}
	}
	if d := rep.Daemon; d != nil {
		if d.Requests <= 0 {
			violations = append(violations, "daemon point completed no requests")
		}
		if d.MemoHitRate <= 0 {
			violations = append(violations, "daemon memo hit rate is zero (memo disabled server-side?)")
		}
	}
	return violations
}
