package bench

import (
	"testing"

	"repro/internal/cfggen"
	"repro/internal/coalesce"
	"repro/internal/congruence"
	"repro/internal/dom"
	"repro/internal/interference"
	"repro/internal/ir"
	"repro/internal/livecheck"
	"repro/internal/liveness"
	"repro/internal/sreedhar"
	"repro/internal/ssa"
)

// ------------------------------------------------ Coalescing trajectory
//
// The coalescing trajectory benchmarks the interference *query path* — the
// hot loop behind the paper's speed claims (Figures 6–7): per-affinity
// class interference tests, each decomposing into LiveAfter /
// DefOrder / DefDominates queries, plus the class merges between them. The
// corpus is φ/copy-dense (wide switch joins, a large shared-variable pool,
// most copies kept).
//
// The "reference" engine is the pre-optimization query path kept alive
// behind interference.Checker.Reference / congruence.Classes.Reference:
// linear use-list scans, per-query def-point derivation, per-merge class
// allocation. Both engines make identical coalescing decisions — a
// differential test asserts it on this very corpus — so the trajectory
// isolates cost, not quality. Rows are keyed case × "engine/backend";
// intersection_tests is the Figure 6 instrumentation and a gated quality
// metric.

// CoalesceCase is one corpus entry of the coalescing trajectory: a function
// with Method I copies already inserted, ready for class-level coalescing.
type CoalesceCase struct {
	Name       string `json:"name"`
	Blocks     int    `json:"blocks"`
	Vars       int    `json:"vars"`
	Phis       int    `json:"phis"`
	Affinities int    `json:"affinities"`

	fn   *ir.Func
	ins  *sreedhar.Insertion
	affs []sreedhar.Affinity
}

// CoalesceCorpus generates the deterministic φ/copy-dense corpus and runs
// copy insertion on it. scale multiplies the per-function block budget
// (1 ≈ 800 blocks per function; tests and -short runs use a fraction).
func CoalesceCorpus(scale float64) []CoalesceCase {
	profiles := []struct {
		name string
		seed int64
	}{
		{"phidense-a", 5003},
		{"copydense-b", 6007},
		{"widejoin-c", 7001},
	}
	var out []CoalesceCase
	for _, p := range profiles {
		for _, f := range cfggen.GenerateLarge(cfggen.LargeCoalesceProfile(p.name, p.seed, scale)) {
			sreedhar.SplitDuplicatePredEdges(f)
			sreedhar.SplitBranchDefEdges(f)
			ins, err := sreedhar.InsertCopies(f)
			if err != nil {
				panic("bench: " + f.Name + ": " + err.Error())
			}
			affs := append([]sreedhar.Affinity(nil), ins.Affinities...)
			affs = append(affs, sreedhar.CollectRealCopies(f, ins)...)
			phis := 0
			for _, b := range f.Blocks {
				phis += len(b.Phis)
			}
			out = append(out, CoalesceCase{
				Name: f.Name, Blocks: len(f.Blocks), Vars: len(f.Vars),
				Phis: phis, Affinities: len(affs),
				fn: f, ins: ins, affs: affs,
			})
		}
	}
	return out
}

// Func returns the case's function (tests drive the machinery directly).
func (c *CoalesceCase) Func() *ir.Func { return c.fn }

// PhiNodes returns the φ-node variable groups of the Method I insertion.
func (c *CoalesceCase) PhiNodes() [][]ir.VarID { return c.ins.PhiNodes }

// Affs returns the case's affinities (φ copies plus surviving real copies).
func (c *CoalesceCase) Affs() []sreedhar.Affinity { return c.affs }

// NewChecker builds an interference checker over the case with the given
// query path and liveness backend.
func (c *CoalesceCase) NewChecker(reference, useLiveCheck bool) *interference.Checker {
	dt := dom.Build(c.fn)
	du := ir.NewDefUse(c.fn)
	var live interference.BlockLiveness
	if useLiveCheck {
		live = livecheck.New(c.fn, dt, du)
	} else {
		live = liveness.ComputeWith(c.fn, liveness.Bitsets)
	}
	return &interference.Checker{
		F: c.fn, DT: dt, DU: du, Live: live,
		Vals: ssa.Values(c.fn, dt), Reference: reference,
	}
}

// RunCoalesce performs one full class-level coalescing pass over the case
// with the Value variant and the linear machinery: fresh congruence
// classes, forced φ-node merges, then the affinity loop. This is the unit
// of work the trajectory times.
func (c *CoalesceCase) RunCoalesce(chk *interference.Checker) *coalesce.Result {
	classes := congruence.New(chk)
	for _, node := range c.ins.PhiNodes {
		for i := 1; i < len(node); i++ {
			classes.MergeForced(node[0], node[i])
		}
	}
	m := &coalesce.Machinery{Chk: chk, Classes: classes, Linear: true}
	return coalesce.Run(m, c.affs, coalesce.Value, false)
}

var coalesceEngines = []struct {
	name      string
	reference bool
}{
	{"optimized", false},
	{"reference", true},
}

var coalesceBackends = []struct {
	name      string
	livecheck bool
}{
	{"livecheck", true},
	{"liveness", false},
}

// coalesceRunner measures every engine × backend combination over the
// corpus with testing.Benchmark.
type coalesceRunner struct {
	scale  float64
	corpus []CoalesceCase
}

// CoalesceRunner builds the coalescing trajectory runner at the given
// scale.
func CoalesceRunner(scale float64) Runner {
	return &coalesceRunner{scale: scale, corpus: CoalesceCorpus(scale)}
}

func (r *coalesceRunner) Trajectory() string { return "coalesce" }
func (r *coalesceRunner) Scale() float64     { return r.scale }

func (r *coalesceRunner) Run(rep *Report) error {
	rep.SetParam("cases", formatNum(float64(len(r.corpus))))
	for i := range r.corpus {
		c := &r.corpus[i]
		for _, bk := range coalesceBackends {
			byEngine := map[string]testing.BenchmarkResult{}
			for _, eng := range coalesceEngines {
				chk := c.NewChecker(eng.reference, bk.livecheck)
				res := testing.Benchmark(func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						c.RunCoalesce(chk)
					}
				})
				byEngine[eng.name] = res
				// A clean checker isolates the query count of one run.
				stat := c.NewChecker(eng.reference, bk.livecheck)
				cres := c.RunCoalesce(stat)
				variant := eng.name + "/" + bk.name
				rep.Sample(c.Name, variant, "ns_per_op", float64(res.NsPerOp()))
				rep.Sample(c.Name, variant, "allocs_per_op", float64(res.AllocsPerOp()))
				rep.Sample(c.Name, variant, "bytes_per_op", float64(res.AllocedBytesPerOp()))
				rep.Sample(c.Name, variant, "intersection_tests", float64(stat.Queries))
				rep.Sample(c.Name, variant, "copies_coalesced", float64(cres.Removed))
				rep.Sample(c.Name, variant, "copies_remaining", float64(cres.RemainingCount))
			}
			opt, ref := byEngine["optimized"], byEngine["reference"]
			variant := "optimized/" + bk.name
			rep.Sample(c.Name, variant, "speedup",
				ratio(float64(ref.NsPerOp()), float64(opt.NsPerOp())))
			rep.Sample(c.Name, variant, "alloc_ratio",
				ratio(float64(ref.AllocsPerOp()), float64(opt.AllocsPerOp())))
		}
	}
	return nil
}
