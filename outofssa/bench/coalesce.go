package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"testing"

	"repro/internal/cfggen"
	"repro/internal/coalesce"
	"repro/internal/congruence"
	"repro/internal/dom"
	"repro/internal/interference"
	"repro/internal/ir"
	"repro/internal/livecheck"
	"repro/internal/liveness"
	"repro/internal/sreedhar"
	"repro/internal/ssa"
)

// ------------------------------------------------ Coalescing trajectory
//
// The coalescing trajectory benchmarks the interference *query path* — the
// hot loop behind the paper's speed claims (Figures 6–7): per-affinity
// class interference tests, each decomposing into LiveAfter /
// DefOrder / DefDominates queries, plus the class merges between them. The
// corpus is φ/copy-dense (wide switch joins, a large shared-variable pool,
// most copies kept), and every engine × backend combination is measured
// with testing.Benchmark, recorded as BENCH_coalesce.json per CI run.
//
// The "reference" engine is the pre-optimization query path kept alive
// behind interference.Checker.Reference / congruence.Classes.Reference:
// linear use-list scans, per-query def-point derivation, per-merge class
// allocation. Both engines make identical coalescing decisions — a
// differential test asserts it on this very corpus — so the trajectory
// isolates cost, not quality.

// CoalesceCase is one corpus entry of the coalescing trajectory: a function
// with Method I copies already inserted, ready for class-level coalescing.
type CoalesceCase struct {
	Name       string `json:"name"`
	Blocks     int    `json:"blocks"`
	Vars       int    `json:"vars"`
	Phis       int    `json:"phis"`
	Affinities int    `json:"affinities"`

	fn   *ir.Func
	ins  *sreedhar.Insertion
	affs []sreedhar.Affinity
}

// CoalesceCorpus generates the deterministic φ/copy-dense corpus and runs
// copy insertion on it. scale multiplies the per-function block budget
// (1 ≈ 800 blocks per function; tests and -short runs use a fraction).
func CoalesceCorpus(scale float64) []CoalesceCase {
	profiles := []struct {
		name string
		seed int64
	}{
		{"phidense-a", 5003},
		{"copydense-b", 6007},
		{"widejoin-c", 7001},
	}
	var out []CoalesceCase
	for _, p := range profiles {
		for _, f := range cfggen.GenerateLarge(cfggen.LargeCoalesceProfile(p.name, p.seed, scale)) {
			sreedhar.SplitDuplicatePredEdges(f)
			sreedhar.SplitBranchDefEdges(f)
			ins, err := sreedhar.InsertCopies(f)
			if err != nil {
				panic("bench: " + f.Name + ": " + err.Error())
			}
			affs := append([]sreedhar.Affinity(nil), ins.Affinities...)
			affs = append(affs, sreedhar.CollectRealCopies(f, ins)...)
			phis := 0
			for _, b := range f.Blocks {
				phis += len(b.Phis)
			}
			out = append(out, CoalesceCase{
				Name: f.Name, Blocks: len(f.Blocks), Vars: len(f.Vars),
				Phis: phis, Affinities: len(affs),
				fn: f, ins: ins, affs: affs,
			})
		}
	}
	return out
}

// Func returns the case's function (tests drive the machinery directly).
func (c *CoalesceCase) Func() *ir.Func { return c.fn }

// PhiNodes returns the φ-node variable groups of the Method I insertion.
func (c *CoalesceCase) PhiNodes() [][]ir.VarID { return c.ins.PhiNodes }

// Affs returns the case's affinities (φ copies plus surviving real copies).
func (c *CoalesceCase) Affs() []sreedhar.Affinity { return c.affs }

// NewChecker builds an interference checker over the case with the given
// query path and liveness backend.
func (c *CoalesceCase) NewChecker(reference, useLiveCheck bool) *interference.Checker {
	dt := dom.Build(c.fn)
	du := ir.NewDefUse(c.fn)
	var live interference.BlockLiveness
	if useLiveCheck {
		live = livecheck.New(c.fn, dt, du)
	} else {
		live = liveness.ComputeWith(c.fn, liveness.Bitsets)
	}
	return &interference.Checker{
		F: c.fn, DT: dt, DU: du, Live: live,
		Vals: ssa.Values(c.fn, dt), Reference: reference,
	}
}

// RunCoalesce performs one full class-level coalescing pass over the case
// with the Value variant and the linear machinery: fresh congruence
// classes, forced φ-node merges, then the affinity loop. This is the unit
// of work the trajectory times.
func (c *CoalesceCase) RunCoalesce(chk *interference.Checker) *coalesce.Result {
	classes := congruence.New(chk)
	for _, node := range c.ins.PhiNodes {
		for i := 1; i < len(node); i++ {
			classes.MergeForced(node[0], node[i])
		}
	}
	m := &coalesce.Machinery{Chk: chk, Classes: classes, Linear: true}
	return coalesce.Run(m, c.affs, coalesce.Value, false)
}

// CoalesceResultRow is one (case, engine, backend) measurement.
type CoalesceResultRow struct {
	Case    string `json:"case"`
	Engine  string `json:"engine"`  // "optimized" or "reference"
	Backend string `json:"backend"` // "livecheck" or "liveness"
	// NsPerOp, AllocsPerOp and BytesPerOp come from testing.Benchmark.
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// Queries counts the variable-pair intersection tests of one run —
	// the Figure 6 instrumentation; identical across engines.
	Queries int `json:"queries"`
	// Coalesced and Remaining summarize the decisions of one run —
	// identical across engines (the differential test enforces it).
	Coalesced int `json:"coalesced"`
	Remaining int `json:"remaining"`
}

// CoalesceReport is the BENCH_coalesce.json payload.
type CoalesceReport struct {
	Scale   float64             `json:"scale"`
	Corpus  []CoalesceCase      `json:"corpus"`
	Results []CoalesceResultRow `json:"results"`
}

var coalesceEngines = []struct {
	name      string
	reference bool
}{
	{"optimized", false},
	{"reference", true},
}

var coalesceBackends = []struct {
	name      string
	livecheck bool
}{
	{"livecheck", true},
	{"liveness", false},
}

// CoalesceTrajectory measures every engine × backend combination over the
// corpus with testing.Benchmark and returns the report.
func CoalesceTrajectory(scale float64) *CoalesceReport {
	corpus := CoalesceCorpus(scale)
	rep := &CoalesceReport{Scale: scale, Corpus: corpus}
	for i := range corpus {
		c := &corpus[i]
		for _, eng := range coalesceEngines {
			for _, bk := range coalesceBackends {
				chk := c.NewChecker(eng.reference, bk.livecheck)
				r := testing.Benchmark(func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						c.RunCoalesce(chk)
					}
				})
				// A clean checker isolates the query count of one run.
				stat := c.NewChecker(eng.reference, bk.livecheck)
				res := c.RunCoalesce(stat)
				rep.Results = append(rep.Results, CoalesceResultRow{
					Case:        c.Name,
					Engine:      eng.name,
					Backend:     bk.name,
					NsPerOp:     float64(r.NsPerOp()),
					AllocsPerOp: r.AllocsPerOp(),
					BytesPerOp:  r.AllocedBytesPerOp(),
					Queries:     stat.Queries,
					Coalesced:   res.Removed,
					Remaining:   res.RemainingCount,
				})
			}
		}
	}
	return rep
}

// WriteJSON writes the report as indented JSON.
func (rep *CoalesceReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// FormatCoalesce renders the trajectory as a table: one row per case and
// backend, optimized vs reference side by side with the speedup and the
// allocation ratio.
func FormatCoalesce(rep *CoalesceReport) string {
	byKey := map[string]CoalesceResultRow{}
	for _, r := range rep.Results {
		byKey[r.Case+"/"+r.Engine+"/"+r.Backend] = r
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Coalescing trajectory (scale %g): optimized vs reference query path\n", rep.Scale)
	fmt.Fprintf(&b, "%-24s %-9s %10s %10s %7s %12s %12s %7s\n",
		"case", "backend", "opt ns/op", "ref ns/op", "speedup", "opt allocs", "ref allocs", "alloc÷")
	for _, c := range rep.Corpus {
		for _, bk := range coalesceBackends {
			opt, okO := byKey[c.Name+"/optimized/"+bk.name]
			ref, okR := byKey[c.Name+"/reference/"+bk.name]
			if !okO || !okR {
				continue
			}
			speed, allocR := 0.0, 0.0
			if opt.NsPerOp > 0 {
				speed = ref.NsPerOp / opt.NsPerOp
			}
			if opt.AllocsPerOp > 0 {
				allocR = float64(ref.AllocsPerOp) / float64(opt.AllocsPerOp)
			}
			fmt.Fprintf(&b, "%-24s %-9s %10.0f %10.0f %6.2fx %12d %12d %6.2fx\n",
				c.Name, bk.name, opt.NsPerOp, ref.NsPerOp, speed, opt.AllocsPerOp, ref.AllocsPerOp, allocR)
		}
	}
	return b.String()
}
