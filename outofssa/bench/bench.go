// Package bench regenerates the paper's evaluation (Figures 5, 6 and 7) on
// the synthetic SPEC CINT2000 stand-in suite of the workload generator. It
// is shared by cmd/ssabench and the root testing.B benchmarks, and is part
// of the public façade: its exported types use the aliases re-exported by
// package outofssa (Strategy, Options, Stats, Func), so external consumers
// never need an internal import.
package bench

import (
	"context"

	"repro/internal/cfggen"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/pipeline"
)

// Workers is the worker count handed to pipeline.RunBatch for the untimed
// figures (5 and 7); 0 selects runtime.NumCPU. The timed Figure 6 always
// measures sequentially. Results are identical for any value — the batch
// driver's aggregation is deterministic.
var Workers = 0

// Benchmark is one named workload of the suite.
type Benchmark struct {
	Name  string
	Funcs []*ir.Func
}

// spec describes the eleven SPEC CINT2000 benchmarks the paper evaluates
// (eon, the C++ benchmark, is excluded there too). The size knobs roughly
// track the relative code sizes of the originals: gcc is by far the
// largest, mcf the smallest.
var spec = []struct {
	name  string
	seed  int64
	funcs int
	stmts int
}{
	{"164.gzip", 164, 10, 160},
	{"175.vpr", 175, 14, 190},
	{"176.gcc", 176, 24, 280},
	{"181.mcf", 181, 6, 110},
	{"186.crafty", 186, 14, 210},
	{"197.parser", 197, 16, 180},
	{"253.perlbmk", 253, 18, 240},
	{"254.gap", 254, 16, 210},
	{"255.vortex", 255, 16, 230},
	{"256.bzip2", 256, 8, 140},
	{"300.twolf", 300, 14, 200},
}

// Suite generates the eleven benchmarks deterministically. scale multiplies
// function counts (1 reproduces the default suite; tests use a smaller
// scale).
func Suite(scale float64) []Benchmark {
	out := make([]Benchmark, 0, len(spec))
	for _, s := range spec {
		p := cfggen.DefaultProfile(s.name, s.seed)
		p.Funcs = int(float64(s.funcs)*scale + 0.5)
		if p.Funcs < 1 {
			p.Funcs = 1
		}
		p.MaxStmts = s.stmts
		p.MinStmts = s.stmts / 3
		out = append(out, Benchmark{Name: s.name, Funcs: cfggen.Generate(p)})
	}
	return out
}

// Names returns the benchmark names in suite order plus the "sum" column.
func Names(suite []Benchmark) []string {
	names := make([]string, 0, len(suite)+1)
	for _, b := range suite {
		names = append(names, b.Name)
	}
	return append(names, "sum")
}

// translateBatch pushes fresh clones of the benchmark's functions through
// the out-of-SSA pipeline on the package worker pool, returning the
// per-function stats (input order) and their aggregate.
func translateBatch(b Benchmark, opt core.Options) ([]*core.Stats, core.Stats) {
	clones := make([]*ir.Func, len(b.Funcs))
	for i, f := range b.Funcs {
		clones[i] = ir.Clone(f)
	}
	res := pipeline.RunBatch(context.Background(), clones, pipeline.Translate(opt), Workers)
	if err := res.Err(); err != nil {
		panic("bench: " + b.Name + ": " + err.Error())
	}
	per := make([]*core.Stats, len(clones))
	for i, ctx := range res.Contexts {
		per[i] = ctx.Stats
	}
	return per, res.Stats
}
