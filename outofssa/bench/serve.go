package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// ------------------------------------------------ Serving-latency trajectory
//
// The serve trajectory measures the daemon as a *service*: cmd/ssaload
// drives ssad (or an in-process server over loopback HTTP — same wire
// path, reproducible in CI) at a sweep of offered-load points and records
// client-observed throughput and latency quantiles per point. Unlike the
// other trajectories this one is produced by the load generator, not by
// testing.Benchmark; this file owns the report shape, the human-readable
// table, and the smoke gate CI runs on the artifact (BENCH_serve.json).

// ServePoint is one offered-load measurement: Clients concurrent closed-loop
// clients issuing requests back to back for the point's duration.
type ServePoint struct {
	// Clients is the offered load: concurrent closed-loop clients.
	Clients int `json:"clients"`
	// Requests/Failures/Overloaded count completed requests, hard failures
	// (transport or non-2xx other than 429), and 429 load-shed responses.
	Requests   int64 `json:"requests"`
	Failures   int64 `json:"failures"`
	Overloaded int64 `json:"overloaded"`
	// Funcs counts functions translated across the point's requests.
	Funcs int64 `json:"funcs"`
	// DurationSec is the measured wall clock of the point.
	DurationSec float64 `json:"duration_sec"`
	// RequestsPerSec and FuncsPerSec are the point's throughput.
	RequestsPerSec float64 `json:"requests_per_sec"`
	FuncsPerSec    float64 `json:"funcs_per_sec"`
	// Client-observed request latency quantiles, microseconds.
	P50Micros  float64 `json:"p50_us"`
	P90Micros  float64 `json:"p90_us"`
	P99Micros  float64 `json:"p99_us"`
	MeanMicros float64 `json:"mean_us"`
	MaxMicros  float64 `json:"max_us"`
}

// ServeReport is the BENCH_serve.json payload.
type ServeReport struct {
	// Addr records what was driven: an external daemon's address, or
	// "self-hosted" for the in-process loopback server.
	Addr string `json:"addr"`
	// Mode is "translate" (one function per request) or "batch" (Batch
	// functions per request, NDJSON streaming).
	Mode  string `json:"mode"`
	Batch int    `json:"batch,omitempty"`
	// Strategy is the per-request coalescing strategy driven.
	Strategy string `json:"strategy"`
	// CorpusFuncs is the number of distinct functions cycled through.
	CorpusFuncs int `json:"corpus_funcs"`
	// Workers/InFlight record the driven server's capacity knobs when
	// self-hosted (0 = that server's GOMAXPROCS default).
	Workers  int `json:"workers"`
	InFlight int `json:"in_flight"`
	// Cores is the load generator's GOMAXPROCS at measurement time.
	Cores  int          `json:"cores"`
	Points []ServePoint `json:"points"`
}

// WriteJSON writes the report as indented JSON.
func (rep *ServeReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// ReadServeReport reads a report written by WriteJSON.
func ReadServeReport(r io.Reader) (*ServeReport, error) {
	var rep ServeReport
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return nil, fmt.Errorf("bench: reading serve report: %w", err)
	}
	return &rep, nil
}

// FormatServe renders the human-readable table.
func FormatServe(rep *ServeReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "serving-latency trajectory: %s, mode %s", rep.Addr, rep.Mode)
	if rep.Mode == "batch" {
		fmt.Fprintf(&b, " (%d funcs/request)", rep.Batch)
	}
	fmt.Fprintf(&b, ", strategy %s, corpus %d funcs, %d cores\n",
		rep.Strategy, rep.CorpusFuncs, rep.Cores)
	fmt.Fprintf(&b, "%8s  %10s  %10s  %8s  %10s  %10s  %10s  %6s  %6s\n",
		"clients", "req/s", "funcs/s", "requests", "p50(us)", "p90(us)", "p99(us)", "429s", "fails")
	for i := range rep.Points {
		p := &rep.Points[i]
		fmt.Fprintf(&b, "%8d  %10.1f  %10.1f  %8d  %10.1f  %10.1f  %10.1f  %6d  %6d\n",
			p.Clients, p.RequestsPerSec, p.FuncsPerSec, p.Requests,
			p.P50Micros, p.P90Micros, p.P99Micros, p.Overloaded, p.Failures)
	}
	return b.String()
}

// CheckServe is the smoke gate CI runs on a fresh trajectory: every point
// completed requests, nothing hard-failed, and the latency quantiles are
// coherent (p50 ≤ p90 ≤ p99 ≤ max, all positive). 429s are legal — load
// shedding under offered overload is the design working, not a failure.
func CheckServe(rep *ServeReport) []string {
	var violations []string
	if len(rep.Points) == 0 {
		return []string{"no measured points"}
	}
	for i := range rep.Points {
		p := &rep.Points[i]
		bad := func(format string, args ...any) {
			violations = append(violations,
				fmt.Sprintf("clients=%d: %s", p.Clients, fmt.Sprintf(format, args...)))
		}
		if p.Requests <= 0 {
			bad("no completed requests")
			continue
		}
		if p.Failures > 0 {
			bad("%d hard-failed requests", p.Failures)
		}
		if p.P50Micros <= 0 {
			bad("nonpositive p50 %.1fus", p.P50Micros)
		}
		if p.P50Micros > p.P90Micros || p.P90Micros > p.P99Micros || p.P99Micros > p.MaxMicros {
			bad("incoherent quantiles p50=%.1f p90=%.1f p99=%.1f max=%.1f",
				p.P50Micros, p.P90Micros, p.P99Micros, p.MaxMicros)
		}
	}
	return violations
}
