package bench

import "fmt"

// ------------------------------------------------ Serving-latency trajectory
//
// The serve trajectory measures the daemon as a *service*: cmd/ssaload
// drives ssad (or an in-process server over loopback HTTP — same wire
// path, reproducible in CI) at a sweep of offered-load points and records
// client-observed throughput and latency quantiles per point. Unlike the
// testing.Benchmark trajectories this one is produced by the load
// generator, which folds each measured point into the shared report
// envelope via AddServePoint (one row per offered-load level, variant
// "clients=N"). The smoke gate the old ad-hoc checker applied — every
// point completed requests, nothing hard-failed, latency quantiles
// coherent — is now the serve compare policies; 429s are legal (load
// shedding under offered overload is the design working, not a failure).

// ServePoint is one offered-load measurement: Clients concurrent
// closed-loop clients issuing requests back to back for the point's
// duration.
type ServePoint struct {
	// Clients is the offered load: concurrent closed-loop clients.
	Clients int
	// Requests/Failures/Overloaded count completed requests, hard failures
	// (transport or non-2xx other than 429), and 429 load-shed responses.
	Requests   int64
	Failures   int64
	Overloaded int64
	// Funcs counts functions translated across the point's requests.
	Funcs int64
	// DurationSec is the measured wall clock of the point.
	DurationSec float64
	// RequestsPerSec and FuncsPerSec are the point's throughput.
	RequestsPerSec float64
	FuncsPerSec    float64
	// Client-observed request latency quantiles, microseconds.
	P50Micros  float64
	P90Micros  float64
	P99Micros  float64
	MeanMicros float64
	MaxMicros  float64
}

// ServeVariant names the row variant for an offered-load level.
func ServeVariant(clients int) string { return fmt.Sprintf("clients=%d", clients) }

// AddServePoint folds one measured load point into the envelope as the
// row ("load", "clients=N"). quantiles_coherent encodes the structural
// smoke check (0 < p50 ≤ p90 ≤ p99 ≤ max) as a gateable 0/1 metric.
func AddServePoint(rep *Report, p ServePoint) {
	variant := ServeVariant(p.Clients)
	coherent := 0.0
	if p.P50Micros > 0 && p.P50Micros <= p.P90Micros &&
		p.P90Micros <= p.P99Micros && p.P99Micros <= p.MaxMicros {
		coherent = 1
	}
	rep.Sample("load", variant, "requests", float64(p.Requests))
	rep.Sample("load", variant, "failures", float64(p.Failures))
	rep.Sample("load", variant, "overloaded", float64(p.Overloaded))
	rep.Sample("load", variant, "funcs", float64(p.Funcs))
	rep.Sample("load", variant, "requests_per_sec", p.RequestsPerSec)
	rep.Sample("load", variant, "funcs_per_sec", p.FuncsPerSec)
	rep.Sample("load", variant, "p50_us", p.P50Micros)
	rep.Sample("load", variant, "p90_us", p.P90Micros)
	rep.Sample("load", variant, "p99_us", p.P99Micros)
	rep.Sample("load", variant, "mean_us", p.MeanMicros)
	rep.Sample("load", variant, "max_us", p.MaxMicros)
	rep.Sample("load", variant, "quantiles_coherent", coherent)
}
