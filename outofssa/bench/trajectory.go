package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"time"
)

// ---------------------------------------------------------- Trajectory core
//
// Every perf trajectory of the engine — liveness, coalesce, translate,
// scale, serve, memo — emits the same versioned report envelope: run
// metadata (commit, machine shape, GOMAXPROCS, GOGC, timestamp) plus rows
// of named metric samples with repeat counts. The per-trajectory files
// shrink to corpus + metric definitions + a Runner that appends one sample
// per metric per pass; Measure drives the Runner -count times so the
// compare package has real variance to work with. The envelope is what the
// store appends, what compare gates, and what the committed BENCH_*.json
// exports contain.

// SchemaVersion is the envelope version; ReadReport rejects anything newer.
const SchemaVersion = 1

// Commit is recorded in every captured Env. It defaults to the
// SSABENCH_COMMIT environment variable; cmd layers overwrite it from
// `git rev-parse` or a flag before measuring.
var Commit = os.Getenv("SSABENCH_COMMIT")

// Env is the run metadata recorded uniformly in every report envelope —
// the serve and memo trajectories included. compare refuses (or warns
// loudly) when two reports disagree on the machine-shape fields.
type Env struct {
	Commit     string `json:"commit,omitempty"`
	GoVersion  string `json:"go_version"`
	OS         string `json:"os"`
	Arch       string `json:"arch"`
	Hostname   string `json:"hostname,omitempty"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// GOGC is the effective collector target at capture time (100 unless
	// overridden; -1 = off).
	GOGC      int    `json:"gogc"`
	Timestamp string `json:"timestamp"` // RFC3339
}

// MachineShape summarizes the fields two comparable runs must agree on.
func (e Env) MachineShape() string {
	return fmt.Sprintf("%s/%s cpus=%d gomaxprocs=%d gogc=%d",
		e.OS, e.Arch, e.NumCPU, e.GOMAXPROCS, e.GOGC)
}

// CaptureEnv records the current process environment.
func CaptureEnv() Env {
	gogc := debug.SetGCPercent(100)
	debug.SetGCPercent(gogc)
	host, _ := os.Hostname()
	return Env{
		Commit:     Commit,
		GoVersion:  runtime.Version(),
		OS:         runtime.GOOS,
		Arch:       runtime.GOARCH,
		Hostname:   host,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GOGC:       gogc,
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
	}
}

// Direction is a metric's better-direction.
type Direction int8

const (
	LowerIsBetter Direction = iota
	HigherIsBetter
)

// MetricDef describes one named metric of the trajectory suite.
type MetricDef struct {
	Name string
	Unit string
	// Better is the direction an improvement moves in.
	Better Direction
	// MachineSensitive metrics (wall clock and friends) are only
	// comparable between runs from the same machine shape; compare skips
	// their relative gates across machines. Counts and ratios stay gated.
	MachineSensitive bool
}

// metricDefs is the shared registry. Unknown metrics default to
// lower-is-better and machine-sensitive — the conservative reading.
var metricDefs = map[string]MetricDef{
	"ns_per_op":          {Unit: "ns/op", Better: LowerIsBetter, MachineSensitive: true},
	"nanos_per_func":     {Unit: "ns/func", Better: LowerIsBetter, MachineSensitive: true},
	"allocs_per_op":      {Unit: "allocs/op", Better: LowerIsBetter},
	"bytes_per_op":       {Unit: "B/op", Better: LowerIsBetter},
	"speedup":            {Unit: "x", Better: HigherIsBetter},
	"alloc_ratio":        {Unit: "x", Better: HigherIsBetter},
	"warm_speedup":       {Unit: "x", Better: HigherIsBetter},
	"efficiency":         {Unit: "", Better: HigherIsBetter},
	"pops":               {Unit: "", Better: LowerIsBetter},
	"iterations":         {Unit: "", Better: LowerIsBetter},
	"intersection_tests": {Unit: "", Better: LowerIsBetter},
	"copies_remaining":   {Unit: "", Better: LowerIsBetter},
	"copies_coalesced":   {Unit: "", Better: HigherIsBetter},
	"final_copies":       {Unit: "", Better: LowerIsBetter},
	"hit_rate":           {Unit: "", Better: HigherIsBetter},
	"memo_hit_rate":      {Unit: "", Better: HigherIsBetter},
	"oracle_clean":       {Unit: "", Better: HigherIsBetter},
	"requests":           {Unit: "", Better: HigherIsBetter, MachineSensitive: true},
	"funcs":              {Unit: "", Better: HigherIsBetter, MachineSensitive: true},
	"failures":           {Unit: "", Better: LowerIsBetter},
	"overloaded":         {Unit: "", Better: LowerIsBetter, MachineSensitive: true},
	"requests_per_sec":   {Unit: "req/s", Better: HigherIsBetter, MachineSensitive: true},
	"funcs_per_sec":      {Unit: "funcs/s", Better: HigherIsBetter, MachineSensitive: true},
	"p50_us":             {Unit: "us", Better: LowerIsBetter, MachineSensitive: true},
	"p90_us":             {Unit: "us", Better: LowerIsBetter, MachineSensitive: true},
	"p99_us":             {Unit: "us", Better: LowerIsBetter, MachineSensitive: true},
	"mean_us":            {Unit: "us", Better: LowerIsBetter, MachineSensitive: true},
	"max_us":             {Unit: "us", Better: LowerIsBetter, MachineSensitive: true},
	"quantiles_coherent": {Unit: "", Better: HigherIsBetter},
}

// MetricInfo returns the registry entry for name, or the conservative
// default (lower is better, machine-sensitive) for unknown metrics.
func MetricInfo(name string) MetricDef {
	if d, ok := metricDefs[name]; ok {
		d.Name = name
		return d
	}
	return MetricDef{Name: name, Better: LowerIsBetter, MachineSensitive: true}
}

// Metric is one named sample set of a row; Samples holds one value per
// measurement pass (the repeat count).
type Metric struct {
	Name    string    `json:"name"`
	Samples []float64 `json:"samples"`
}

// Median returns the sample median (0 for an empty set).
func (m *Metric) Median() float64 { return Median(m.Samples) }

// Median of a sample set; 0 when empty.
func Median(samples []float64) float64 {
	n := len(samples)
	if n == 0 {
		return 0
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Row is one measured configuration: a corpus case under a variant
// (strategy, engine, backend, sweep point…) with its metric sample sets.
type Row struct {
	Case    string   `json:"case"`
	Variant string   `json:"variant,omitempty"`
	Metrics []Metric `json:"metrics"`
}

// Metric returns the row's sample set for name, or nil.
func (r *Row) Metric(name string) *Metric {
	for i := range r.Metrics {
		if r.Metrics[i].Name == name {
			return &r.Metrics[i]
		}
	}
	return nil
}

// Report is the versioned envelope every trajectory emits: one store
// entry, one compare operand, one committed BENCH_*.json export.
type Report struct {
	Schema     int     `json:"schema"`
	Trajectory string  `json:"trajectory"`
	Scale      float64 `json:"scale,omitempty"`
	// Count is the repeat count: how many measurement passes contributed
	// samples (single-run reports degrade compare to point comparison).
	Count int `json:"count"`
	Env   Env `json:"env"`
	// Params carries trajectory-specific knobs worth reproducing the run
	// from (corpus sizes, sweep axes, request mode…).
	Params map[string]string `json:"params,omitempty"`
	Rows   []Row             `json:"rows"`
}

// NewReport assembles an empty envelope with a freshly captured Env.
func NewReport(trajectory string, scale float64) *Report {
	return &Report{
		Schema:     SchemaVersion,
		Trajectory: trajectory,
		Scale:      scale,
		Env:        CaptureEnv(),
	}
}

// SetParam records one trajectory-specific parameter.
func (rep *Report) SetParam(key, value string) {
	if rep.Params == nil {
		rep.Params = map[string]string{}
	}
	rep.Params[key] = value
}

// Row returns the (case, variant) row, appending an empty one on first use.
func (rep *Report) Row(case_, variant string) *Row {
	for i := range rep.Rows {
		if rep.Rows[i].Case == case_ && rep.Rows[i].Variant == variant {
			return &rep.Rows[i]
		}
	}
	rep.Rows = append(rep.Rows, Row{Case: case_, Variant: variant})
	return &rep.Rows[len(rep.Rows)-1]
}

// Sample appends one sample to the (case, variant, metric) cell.
func (rep *Report) Sample(case_, variant, metric string, v float64) {
	row := rep.Row(case_, variant)
	if m := row.Metric(metric); m != nil {
		m.Samples = append(m.Samples, v)
		return
	}
	row.Metrics = append(row.Metrics, Metric{Name: metric, Samples: []float64{v}})
}

// WriteJSON writes the envelope as indented JSON.
func (rep *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// ReadReport parses an envelope and validates its schema version.
func ReadReport(r io.Reader) (*Report, error) {
	rep := &Report{}
	if err := json.NewDecoder(r).Decode(rep); err != nil {
		return nil, fmt.Errorf("bench: parsing report envelope: %w", err)
	}
	if rep.Schema < 1 || rep.Schema > SchemaVersion {
		return nil, fmt.Errorf("bench: unsupported report schema %d (supported: 1..%d) — regenerate the report",
			rep.Schema, SchemaVersion)
	}
	if rep.Trajectory == "" {
		return nil, fmt.Errorf("bench: report envelope names no trajectory")
	}
	return rep, nil
}

// ReadReportFile is ReadReport over a file path.
func ReadReportFile(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadReport(f)
}

// Runner is what each trajectory implements: a corpus bound at
// construction plus one measurement pass that appends one sample per
// metric to the envelope's rows.
type Runner interface {
	// Trajectory names the trajectory ("liveness", "translate", …).
	Trajectory() string
	// Scale is the corpus scale the runner was constructed at.
	Scale() float64
	// Run performs one full measurement pass, appending samples via
	// rep.Sample. Deterministic metrics append identical samples; timed
	// metrics give compare real variance.
	Run(rep *Report) error
}

// Measure drives the runner count times (≥1) and returns the envelope.
func Measure(r Runner, count int) (*Report, error) {
	if count < 1 {
		count = 1
	}
	rep := NewReport(r.Trajectory(), r.Scale())
	rep.Count = count
	for i := 0; i < count; i++ {
		if err := r.Run(rep); err != nil {
			return nil, fmt.Errorf("bench: %s pass %d: %w", r.Trajectory(), i+1, err)
		}
	}
	return rep, nil
}

// FormatReport renders the envelope as the uniform human-readable table:
// one line per row, metrics as name=median (±half-range when the repeat
// count gives a spread).
func FormatReport(rep *Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s trajectory", rep.Trajectory)
	if rep.Scale != 0 {
		fmt.Fprintf(&b, " (scale %g)", rep.Scale)
	}
	fmt.Fprintf(&b, ", count %d — %s, %s", rep.Count, rep.Env.GoVersion, rep.Env.MachineShape())
	if rep.Env.Commit != "" {
		fmt.Fprintf(&b, ", commit %s", rep.Env.Commit)
	}
	b.WriteByte('\n')
	if len(rep.Params) > 0 {
		keys := make([]string, 0, len(rep.Params))
		for k := range rep.Params {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintf(&b, "params:")
		for _, k := range keys {
			fmt.Fprintf(&b, " %s=%s", k, rep.Params[k])
		}
		b.WriteByte('\n')
	}
	caseW, varW := len("case"), len("variant")
	for i := range rep.Rows {
		caseW = max(caseW, len(rep.Rows[i].Case))
		varW = max(varW, len(rep.Rows[i].Variant))
	}
	fmt.Fprintf(&b, "%-*s  %-*s  metrics\n", caseW, "case", varW, "variant")
	for i := range rep.Rows {
		row := &rep.Rows[i]
		fmt.Fprintf(&b, "%-*s  %-*s ", caseW, row.Case, varW, row.Variant)
		for j := range row.Metrics {
			m := &row.Metrics[j]
			fmt.Fprintf(&b, " %s=%s", m.Name, formatSamples(m.Samples))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// formatSamples renders median±half-range, eliding the spread when the
// samples agree (deterministic metrics) or there is only one.
func formatSamples(samples []float64) string {
	med := Median(samples)
	if len(samples) < 2 {
		return formatNum(med)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range samples {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if lo == hi {
		return formatNum(med)
	}
	return fmt.Sprintf("%s(±%s)", formatNum(med), formatNum((hi-lo)/2))
}

func formatNum(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.4g", v)
}
