package bench

import (
	"testing"

	"repro/internal/cfggen"
	"repro/internal/core"
	"repro/internal/ir"
)

func TestCoalesceCorpusDeterministicAndValid(t *testing.T) {
	a := CoalesceCorpus(0.05)
	b := CoalesceCorpus(0.05)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("corpus sizes: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].Func().String() != b[i].Func().String() {
			t.Fatalf("case %d not deterministic", i)
		}
		if err := ir.Verify(a[i].Func()); err != nil {
			t.Fatalf("%s: %v", a[i].Name, err)
		}
		if a[i].Blocks != len(a[i].Func().Blocks) || a[i].Vars != len(a[i].Func().Vars) ||
			a[i].Affinities != len(a[i].Affs()) {
			t.Fatalf("%s: stale metadata", a[i].Name)
		}
		if a[i].Phis == 0 || a[i].Affinities == 0 {
			t.Fatalf("%s: corpus must be φ/copy-dense (phis=%d affinities=%d)",
				a[i].Name, a[i].Phis, a[i].Affinities)
		}
	}
}

// TestCoalesceCorpusEnginesAgree runs the differential check on the very
// unit of work the trajectory measures: the optimized and reference query
// paths must coalesce identically, affinity by affinity.
func TestCoalesceCorpusEnginesAgree(t *testing.T) {
	for _, c := range CoalesceCorpus(0.03) {
		for _, bk := range coalesceBackends {
			opt := c.RunCoalesce(c.NewChecker(false, bk.livecheck))
			ref := c.RunCoalesce(c.NewChecker(true, bk.livecheck))
			if len(opt.Statuses) != len(ref.Statuses) {
				t.Fatalf("%s/%s: status lengths differ", c.Name, bk.name)
			}
			for i := range opt.Statuses {
				if opt.Statuses[i] != ref.Statuses[i] {
					t.Fatalf("%s/%s: affinity %d: optimized=%v reference=%v",
						c.Name, bk.name, i, opt.Statuses[i], ref.Statuses[i])
				}
			}
		}
	}
}

// oracleOptions returns the machinery the Figure 5 run uses for s, with the
// reference query path toggled.
func oracleOptions(s core.Strategy, reference bool) core.Options {
	opt := core.Options{Strategy: s, Linear: true, LiveCheck: true, ReferenceQueries: reference}
	if s == core.SreedharIII {
		opt = core.Options{Strategy: s, Virtualize: true, ReferenceQueries: reference}
	}
	return opt
}

// TestStrategiesReferenceOracle is the PR's acceptance oracle: for every
// Figure 5 strategy, the optimized query path (binary-search LiveAfter,
// packed def-point keys, pooled congruence scratch) and the kept reference
// path must make identical per-affinity coalescing decisions
// (Result.Statuses) — on the SPEC stand-in suite and on the φ/copy-dense
// trajectory corpus shape alike.
func TestStrategiesReferenceOracle(t *testing.T) {
	var funcs []*ir.Func
	for _, b := range Suite(0.05) {
		funcs = append(funcs, b.Funcs...)
	}
	funcs = append(funcs, cfggen.GenerateLarge(cfggen.LargeCoalesceProfile("oracle", 971, 0.04))...)

	for _, s := range core.Strategies {
		for _, f := range funcs {
			optRes := coalesceDecisions(t, ir.Clone(f), oracleOptions(s, false))
			refRes := coalesceDecisions(t, ir.Clone(f), oracleOptions(s, true))
			if len(optRes) != len(refRes) {
				t.Fatalf("%v/%s: status lengths differ: %d vs %d", s, f.Name, len(optRes), len(refRes))
			}
			for i := range optRes {
				if optRes[i] != refRes[i] {
					t.Fatalf("%v/%s: affinity %d decided differently: optimized=%v reference=%v",
						s, f.Name, i, optRes[i], refRes[i])
				}
			}
		}
	}
}

// coalesceDecisions runs the first three translation phases on f and
// returns the per-affinity statuses as plain ints.
func coalesceDecisions(t *testing.T, f *ir.Func, opt core.Options) []int {
	t.Helper()
	tr, err := core.NewTranslation(f, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, phase := range []func() error{tr.Insert, tr.Analyze, tr.Coalesce} {
		if err := phase(); err != nil {
			t.Fatal(err)
		}
	}
	res := tr.CoalesceResult()
	out := make([]int, len(res.Statuses))
	for i, s := range res.Statuses {
		out[i] = int(s)
	}
	return out
}
