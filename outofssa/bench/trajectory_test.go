package bench

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// fakeRunner appends deterministic and pass-varying samples so Measure's
// accumulation behaviour is observable.
type fakeRunner struct{ passes int }

func (r *fakeRunner) Trajectory() string { return "translate" }
func (r *fakeRunner) Scale() float64     { return 0.05 }
func (r *fakeRunner) Run(rep *Report) error {
	r.passes++
	rep.SetParam("cases", "1")
	rep.Sample("c1", "pooled", "copies_remaining", 7)                 // deterministic
	rep.Sample("c1", "pooled", "ns_per_op", float64(100+10*r.passes)) // varying
	return nil
}

// TestMeasureAccumulatesSamples: -count N drives N passes and each metric
// cell collects one sample per pass, under a single (case, variant) row.
func TestMeasureAccumulatesSamples(t *testing.T) {
	r := &fakeRunner{}
	rep, err := Measure(r, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.passes != 3 || rep.Count != 3 {
		t.Fatalf("passes=%d count=%d, want 3/3", r.passes, rep.Count)
	}
	if rep.Trajectory != "translate" || rep.Scale != 0.05 {
		t.Fatalf("envelope header: %+v", rep)
	}
	if len(rep.Rows) != 1 {
		t.Fatalf("repeat passes must reuse the row, got %d rows", len(rep.Rows))
	}
	row := rep.Row("c1", "pooled")
	det := row.Metric("copies_remaining")
	if len(det.Samples) != 3 || det.Median() != 7 {
		t.Fatalf("deterministic metric: %+v", det)
	}
	timed := row.Metric("ns_per_op")
	if len(timed.Samples) != 3 || timed.Median() != 120 {
		t.Fatalf("timed metric: %+v", timed)
	}
}

// TestReportJSONRoundTrip: the envelope round-trips through its JSON
// encoding — the committed BENCH_*.json format — with env and params
// intact, and ReadReport rejects future schemas and anonymous envelopes.
func TestReportJSONRoundTrip(t *testing.T) {
	rep, err := Measure(&fakeRunner{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Schema != SchemaVersion || back.Trajectory != rep.Trajectory ||
		back.Env.MachineShape() != rep.Env.MachineShape() ||
		back.Params["cases"] != "1" || len(back.Rows) != len(rep.Rows) {
		t.Fatalf("round trip lost data:\nwrote %+v\nread  %+v", rep, back)
	}
	got := back.Row("c1", "pooled").Metric("ns_per_op")
	want := rep.Row("c1", "pooled").Metric("ns_per_op")
	if len(got.Samples) != len(want.Samples) || got.Median() != want.Median() {
		t.Fatalf("samples lost: %+v vs %+v", got, want)
	}

	if _, err := ReadReport(strings.NewReader(fmt.Sprintf(`{"schema": %d, "trajectory": "x"}`, SchemaVersion+1))); err == nil {
		t.Fatal("future schema must be rejected")
	}
	if _, err := ReadReport(strings.NewReader(`{"schema": 1}`)); err == nil {
		t.Fatal("a report naming no trajectory must be rejected")
	}
}

// TestCaptureEnvRecordsMachineShape: the uniform metadata fields the
// compare gate keys on are all populated.
func TestCaptureEnvRecordsMachineShape(t *testing.T) {
	e := CaptureEnv()
	if e.GoVersion == "" || e.OS == "" || e.Arch == "" || e.Timestamp == "" {
		t.Fatalf("unpopulated env: %+v", e)
	}
	if e.NumCPU < 1 || e.GOMAXPROCS < 1 || e.GOGC == 0 {
		t.Fatalf("machine shape fields missing: %+v", e)
	}
	shape := e.MachineShape()
	for _, part := range []string{e.OS, "cpus=", "gomaxprocs=", "gogc="} {
		if !strings.Contains(shape, part) {
			t.Fatalf("machine shape %q misses %q", shape, part)
		}
	}
}

// TestMedian covers odd, even, single, and empty sample sets.
func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{3, 1, 2}, 2},
		{[]float64{4, 1, 3, 2}, 2.5},
	}
	for _, c := range cases {
		if got := Median(c.in); got != c.want {
			t.Errorf("Median(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

// TestMetricInfo: registered metrics keep their direction and sensitivity;
// unknown ones get the conservative default.
func TestMetricInfo(t *testing.T) {
	if d := MetricInfo("ns_per_op"); d.Better != LowerIsBetter || !d.MachineSensitive {
		t.Fatalf("ns_per_op: %+v", d)
	}
	if d := MetricInfo("allocs_per_op"); d.Better != LowerIsBetter || d.MachineSensitive {
		t.Fatalf("allocs_per_op must be machine-neutral: %+v", d)
	}
	if d := MetricInfo("warm_speedup"); d.Better != HigherIsBetter {
		t.Fatalf("warm_speedup: %+v", d)
	}
	if d := MetricInfo("never_heard_of_it"); d.Better != LowerIsBetter || !d.MachineSensitive {
		t.Fatalf("unknown metric must default conservatively: %+v", d)
	}
}

// TestFormatReport: the uniform table carries the header, params, spreads
// for varying metrics, and no spread for deterministic ones.
func TestFormatReport(t *testing.T) {
	rep, err := Measure(&fakeRunner{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	out := FormatReport(rep)
	for _, want := range []string{"translate trajectory", "count 3", "cases=1", "copies_remaining=7", "ns_per_op=120(±10)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("format missing %q:\n%s", want, out)
		}
	}
}

// TestServePointFoldsIntoEnvelope: the serve adapter emits one row per
// load point with the latency quantiles and the coherence verdict.
func TestServePointFoldsIntoEnvelope(t *testing.T) {
	rep := NewReport("serve", 1)
	AddServePoint(rep, ServePoint{
		Clients: 4, Requests: 100, Funcs: 400, DurationSec: 2,
		RequestsPerSec: 50, FuncsPerSec: 200,
		P50Micros: 10, P90Micros: 20, P99Micros: 30, MeanMicros: 12, MaxMicros: 40,
	})
	row := rep.Row("load", ServeVariant(4))
	if m := row.Metric("quantiles_coherent"); m == nil || m.Median() != 1 {
		t.Fatalf("coherent quantiles must score 1: %+v", row.Metrics)
	}
	if m := row.Metric("requests"); m == nil || m.Median() != 100 {
		t.Fatalf("requests lost: %+v", row.Metrics)
	}

	// Inverted quantiles flunk the coherence verdict.
	rep2 := NewReport("serve", 1)
	AddServePoint(rep2, ServePoint{
		Clients: 1, Requests: 10, P50Micros: 30, P90Micros: 20, P99Micros: 10, MaxMicros: 40,
	})
	if m := rep2.Row("load", ServeVariant(1)).Metric("quantiles_coherent"); m.Median() != 0 {
		t.Fatal("inverted quantiles must score 0")
	}
}
