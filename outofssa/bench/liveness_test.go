package bench

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/liveness"
)

func TestLivenessCorpusDeterministicAndValid(t *testing.T) {
	a := LivenessCorpus(0.05)
	b := LivenessCorpus(0.05)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("corpus sizes: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].Func().String() != b[i].Func().String() {
			t.Fatalf("case %d not deterministic", i)
		}
		if err := ir.Verify(a[i].Func()); err != nil {
			t.Fatalf("%s: %v", a[i].Name, err)
		}
		if a[i].Blocks != len(a[i].Func().Blocks) || a[i].Vars != len(a[i].Func().Vars) {
			t.Fatalf("%s: stale metadata", a[i].Name)
		}
	}
}

// TestLivenessCorpusEnginesAgree runs the differential check on the very
// corpus the trajectory measures (the benchmark claim depends on it).
func TestLivenessCorpusEnginesAgree(t *testing.T) {
	for _, c := range LivenessCorpus(0.03) {
		f := c.Func()
		got := liveness.ComputeWith(f, liveness.Bitsets)
		want := liveness.ComputeReference(f, liveness.Bitsets)
		for _, b := range f.Blocks {
			for v := range f.Vars {
				vid := ir.VarID(v)
				if got.LiveInBlock(vid, b.ID) != want.LiveInBlock(vid, b.ID) ||
					got.LiveOutBlock(vid, b.ID) != want.LiveOutBlock(vid, b.ID) {
					t.Fatalf("%s/%s: engines disagree on %s", c.Name, b.Name, f.VarName(vid))
				}
			}
		}
	}
}
