package bench

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/liveness"
)

func TestLivenessCorpusDeterministicAndValid(t *testing.T) {
	a := LivenessCorpus(0.05)
	b := LivenessCorpus(0.05)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("corpus sizes: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].Func().String() != b[i].Func().String() {
			t.Fatalf("case %d not deterministic", i)
		}
		if err := ir.Verify(a[i].Func()); err != nil {
			t.Fatalf("%s: %v", a[i].Name, err)
		}
		if a[i].Blocks != len(a[i].Func().Blocks) || a[i].Vars != len(a[i].Func().Vars) {
			t.Fatalf("%s: stale metadata", a[i].Name)
		}
	}
}

// TestLivenessCorpusEnginesAgree runs the differential check on the very
// corpus the trajectory measures (the benchmark claim depends on it).
func TestLivenessCorpusEnginesAgree(t *testing.T) {
	for _, c := range LivenessCorpus(0.03) {
		f := c.Func()
		got := liveness.ComputeWith(f, liveness.Bitsets)
		want := liveness.ComputeReference(f, liveness.Bitsets)
		for _, b := range f.Blocks {
			for v := range f.Vars {
				vid := ir.VarID(v)
				if got.LiveInBlock(vid, b.ID) != want.LiveInBlock(vid, b.ID) ||
					got.LiveOutBlock(vid, b.ID) != want.LiveOutBlock(vid, b.ID) {
					t.Fatalf("%s/%s: engines disagree on %s", c.Name, b.Name, f.VarName(vid))
				}
			}
		}
	}
}

func TestLivenessReportJSONAndFormat(t *testing.T) {
	rep := &LivenessReport{
		Scale: 0.5,
		Corpus: []LivenessCase{
			{Name: "c1", Blocks: 10, Vars: 20, Phis: 3},
		},
		Results: []LivenessResult{
			{Case: "c1", Engine: "worklist", Backend: "bitsets", NsPerOp: 100, AllocsPerOp: 5, BytesPerOp: 400, Pops: 12, Iterations: 2},
			{Case: "c1", Engine: "reference", Backend: "bitsets", NsPerOp: 1000, AllocsPerOp: 50, BytesPerOp: 4000, Pops: 40, Iterations: 4},
		},
	}
	var sb strings.Builder
	if err := rep.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var back LivenessReport
	if err := json.Unmarshal([]byte(sb.String()), &back); err != nil {
		t.Fatal(err)
	}
	if back.Scale != 0.5 || len(back.Results) != 2 || back.Results[0].Engine != "worklist" {
		t.Fatalf("round trip lost data: %+v", back)
	}
	table := FormatLiveness(rep)
	if !strings.Contains(table, "c1") || !strings.Contains(table, "10.00x") {
		t.Fatalf("table missing case or speedup:\n%s", table)
	}
}
