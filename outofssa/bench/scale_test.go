package bench

import (
	"bytes"
	"strings"
	"testing"
)

// TestScaleCorpusDeterministic: the batch corpus is a pure function of
// (seed, scale) — two generations are structurally identical, and the
// straggler functions sit at the end of the input (the dispatch shape the
// stealing driver is measured against).
func TestScaleCorpusDeterministic(t *testing.T) {
	a := ScaleCorpus(0.02)
	b := ScaleCorpus(0.02)
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("corpus sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].Func().String() != b[i].Func().String() {
			t.Fatalf("case %d differs between generations", i)
		}
	}
	last := a[len(a)-1]
	if !strings.HasPrefix(last.Name, "straggler") {
		t.Fatalf("stragglers must close the input, got %q last", last.Name)
	}
	grain := a[0]
	if last.Blocks <= grain.Blocks {
		t.Fatalf("straggler (%d blocks) is not larger than the grain functions (%d blocks)",
			last.Blocks, grain.Blocks)
	}
}

// TestCheckScaleEfficiency exercises the gate on handcrafted reports: a
// healthy curve passes, a collapsed one fails with a message naming the
// offending row, and a sweep missing the gated point is itself a
// violation.
func TestCheckScaleEfficiency(t *testing.T) {
	rep := &ScaleReport{
		Cores: 8,
		Results: []ScalePoint{
			{Workers: 1, GOGC: "100", Speedup: 1.0, Efficiency: 1.0},
			{Workers: 8, GOGC: "100", Speedup: 6.4, Efficiency: 0.8},
			{Workers: 8, GOGC: "off", Speedup: 5.6, Efficiency: 0.7},
		},
	}
	if v := CheckScaleEfficiency(rep, 8, 0.6); len(v) != 0 {
		t.Fatalf("healthy report failed the gate: %v", v)
	}

	rep.Results[2].Efficiency = 0.31
	v := CheckScaleEfficiency(rep, 8, 0.6)
	if len(v) != 1 || !strings.Contains(v[0], "gogc=off") {
		t.Fatalf("collapsed row not reported: %v", v)
	}

	if v := CheckScaleEfficiency(rep, 16, 0.6); len(v) != 1 || !strings.Contains(v[0], "no measurement") {
		t.Fatalf("missing sweep point not reported: %v", v)
	}
}

// TestScaleTrajectorySmoke runs a shrunken sweep end to end: every
// (workers, GOGC) point is measured, speedups are computed against the
// 1-worker row of the same GOGC setting, and the report round-trips
// through its JSON encoding.
func TestScaleTrajectorySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs testing.Benchmark sweeps")
	}
	oldW, oldGC := ScaleWorkers, ScaleGOGC
	ScaleWorkers, ScaleGOGC = []int{1, 2}, []ScaleGC{{"100", 100}}
	t.Cleanup(func() { ScaleWorkers, ScaleGOGC = oldW, oldGC })

	rep := ScaleTrajectory(0.02)
	if rep.Cores < 1 || rep.Funcs != len(rep.Corpus) || rep.Blocks <= 0 {
		t.Fatalf("malformed report header: %+v", rep)
	}
	if len(rep.Results) != 2 {
		t.Fatalf("want 2 sweep points, got %d", len(rep.Results))
	}
	for _, p := range rep.Results {
		if p.NsPerOp <= 0 || p.Speedup <= 0 || p.Efficiency <= 0 {
			t.Fatalf("unmeasured point: %+v", p)
		}
	}
	if rep.Results[0].Workers != 1 || rep.Results[0].Speedup != 1.0 {
		t.Fatalf("first point must be the 1-worker baseline: %+v", rep.Results[0])
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadScaleReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Cores != rep.Cores || len(back.Results) != len(rep.Results) ||
		back.Results[1] != rep.Results[1] {
		t.Fatalf("JSON round-trip lost data:\nwrote %+v\nread  %+v", rep.Results, back.Results)
	}
	if !strings.Contains(FormatScale(rep), "workers") {
		t.Fatal("FormatScale lost its header")
	}
}
