package bench

import (
	"strings"
	"testing"
)

// TestScaleCorpusDeterministic: the batch corpus is a pure function of
// (seed, scale) — two generations are structurally identical, and the
// straggler functions sit at the end of the input (the dispatch shape the
// stealing driver is measured against).
func TestScaleCorpusDeterministic(t *testing.T) {
	a := ScaleCorpus(0.02)
	b := ScaleCorpus(0.02)
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("corpus sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].Func().String() != b[i].Func().String() {
			t.Fatalf("case %d differs between generations", i)
		}
	}
	last := a[len(a)-1]
	if !strings.HasPrefix(last.Name, "straggler") {
		t.Fatalf("stragglers must close the input, got %q last", last.Name)
	}
	grain := a[0]
	if last.Blocks <= grain.Blocks {
		t.Fatalf("straggler (%d blocks) is not larger than the grain functions (%d blocks)",
			last.Blocks, grain.Blocks)
	}
}

// TestScaleTrajectorySmoke runs a shrunken sweep end to end through the
// shared Runner path: every (workers, GOGC) point lands as an envelope
// row, speedups are computed against the 1-worker point of the same GOGC
// setting, and the corpus shape lands in the params.
func TestScaleTrajectorySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs testing.Benchmark sweeps")
	}
	oldW, oldGC := ScaleWorkers, ScaleGOGC
	ScaleWorkers, ScaleGOGC = []int{1, 2}, []ScaleGC{{"100", 100}}
	t.Cleanup(func() { ScaleWorkers, ScaleGOGC = oldW, oldGC })

	rep, err := Measure(ScaleRunner(0.02), 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trajectory != "scale" || rep.Env.NumCPU < 1 {
		t.Fatalf("malformed envelope header: %+v", rep)
	}
	if rep.Params["funcs"] == "" || rep.Params["blocks"] == "" {
		t.Fatalf("corpus shape missing from params: %v", rep.Params)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("want 2 sweep points, got %d", len(rep.Rows))
	}
	for i := range rep.Rows {
		row := &rep.Rows[i]
		for _, name := range []string{"ns_per_op", "speedup", "efficiency"} {
			m := row.Metric(name)
			if m == nil || m.Median() <= 0 {
				t.Fatalf("unmeasured %s at %s/%s: %+v", name, row.Case, row.Variant, row.Metrics)
			}
		}
	}
	base := rep.Row("batch", ScaleVariant("100", 1))
	if got := base.Metric("speedup").Median(); got != 1.0 {
		t.Fatalf("1-worker baseline speedup = %v, want 1.0", got)
	}
	if !strings.Contains(FormatReport(rep), "workers=2") {
		t.Fatal("FormatReport lost the sweep variant")
	}
}
