package bench

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"testing"

	"repro/internal/cfggen"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/pipeline"
)

// ------------------------------------------------ Multicore scale trajectory
//
// The scale trajectory measures the batch driver as a *system*: one op is
// one RunBatch of the whole corpus — per-function clone included, so the
// clone cost parallelizes with the translation it feeds — swept over
// worker counts and GOGC settings in the shape of staticcheck's bench.sh
// (GOGC × GOMAXPROCS sweep). Each sweep point is one row (case "batch",
// variant "gogc=X/workers=N") recording ns/op, allocs/op, the speedup
// against the 1-worker point of the same GOGC row, and the parallel
// efficiency. The compare policies gate the efficiency floor at the
// 8-worker point.
//
// Efficiency is defined against *available* parallelism: speedup ÷
// min(workers, GOMAXPROCS at measurement time). A sweep point that
// oversubscribes the machine (32 workers on 8 cores) is held to the 8-way
// bar, not an impossible 32-way one, so the gate is meaningful on any
// hardware; the envelope's Env records the core count it was measured at.

// ScaleWorkers is the worker-count axis of the sweep. Package variables
// so tests (and callers with different hardware) can shrink the sweep.
var ScaleWorkers = []int{1, 2, 4, 8, 16, 32}

// ScaleGC is one GOGC setting of the sweep; Percent is the
// debug.SetGCPercent argument (-1 disables the collector).
type ScaleGC struct {
	Name    string
	Percent int
}

// ScaleGOGC is the GOGC axis of the sweep.
var ScaleGOGC = []ScaleGC{{"off", -1}, {"100", 100}, {"400", 400}}

// ScaleCase is one corpus entry of the scale trajectory.
type ScaleCase struct {
	Name   string `json:"name"`
	Blocks int    `json:"blocks"`
	Vars   int    `json:"vars"`
	Phis   int    `json:"phis"`
	fn     *ir.Func
}

// Func returns the case's pristine function (tests drive the driver
// directly).
func (c *ScaleCase) Func() *ir.Func { return c.fn }

// ScaleCorpus generates the deterministic batch corpus: a pool of
// medium-grain functions plus two ~4× stragglers appended at the *end* of
// the input — the chunked dispatcher's worst case (the last shard holds
// the most work), which work-stealing exists to flatten. scale multiplies
// the per-function block budget.
func ScaleCorpus(scale float64) []ScaleCase {
	var out []ScaleCase
	add := func(p cfggen.LargeProfile) {
		for _, f := range cfggen.GenerateLarge(p) {
			phis := 0
			for _, b := range f.Blocks {
				phis += len(b.Phis)
			}
			out = append(out, ScaleCase{
				Name: f.Name, Blocks: len(f.Blocks), Vars: len(f.Vars), Phis: phis, fn: f,
			})
		}
	}
	grain := cfggen.LargeScaleProfile("batchgrain", 7001, scale)
	add(grain)
	straggler := cfggen.LargeScaleProfile("straggler", 7019, scale)
	straggler.Funcs = 2
	// 4× the grain's *effective* budget, so the stragglers stay stragglers
	// even at tiny scales where the profile's minimum block floor kicks in.
	straggler.Blocks = grain.Blocks * 4
	add(straggler)
	return out
}

// ScaleVariant names the sweep-point row variant for a (GOGC, workers)
// pair — the compare policies match on it.
func ScaleVariant(gogc string, workers int) string {
	return fmt.Sprintf("gogc=%s/workers=%d", gogc, workers)
}

// scalePipeline assembles the measured pipeline: a leading pass clones
// the pristine template into the (recycled) input function, then the four
// out-of-SSA phases run. Putting the clone inside the pipeline keeps it
// on the parallel path — one batch op has no serial per-function section.
func scalePipeline(tmplOf map[*ir.Func]*ir.Func, opt core.Options) *pipeline.Pipeline {
	clone := pipeline.Pass{
		Name: "clone-template",
		Run: func(ctx *pipeline.Context) error {
			ir.CloneInto(ctx.Func, tmplOf[ctx.Func])
			return nil
		},
	}
	return pipeline.New(append([]pipeline.Pass{clone}, pipeline.OutOfSSA(opt)...)...)
}

// scaleRunner sweeps ScaleWorkers × ScaleGOGC over the corpus with
// testing.Benchmark. The recommended configuration (sharing strategy,
// linear checks, fast liveness checking) is measured — the trajectory
// tracks driver scalability, not strategy quality.
type scaleRunner struct {
	scale  float64
	corpus []ScaleCase
	dsts   []*ir.Func
	pl     *pipeline.Pipeline
	blocks int
	warm   bool
}

// ScaleRunner builds the scale trajectory runner at the given scale.
func ScaleRunner(scale float64) Runner {
	corpus := ScaleCorpus(scale)
	r := &scaleRunner{scale: scale, corpus: corpus}
	// Recycled destinations: every op CloneIntos the templates, so the op
	// measures the steady-state batch pattern, not first-touch allocation.
	r.dsts = make([]*ir.Func, len(corpus))
	tmplOf := make(map[*ir.Func]*ir.Func, len(corpus))
	for i := range corpus {
		r.blocks += corpus[i].Blocks
		r.dsts[i] = ir.NewFunc("")
		tmplOf[r.dsts[i]] = corpus[i].fn
	}
	opt := core.Options{Strategy: core.Sharing, Linear: true, LiveCheck: true}
	r.pl = scalePipeline(tmplOf, opt)
	return r
}

func (r *scaleRunner) Trajectory() string { return "scale" }
func (r *scaleRunner) Scale() float64     { return r.scale }

func (r *scaleRunner) Run(rep *Report) error {
	rep.SetParam("funcs", formatNum(float64(len(r.corpus))))
	rep.SetParam("blocks", formatNum(float64(r.blocks)))

	// One untimed warmup batch before any measurement: the first batch ever
	// run maps every recycled arena and grows the runtime heap to its
	// steady state. Without it the first sweep point (1 worker, first GOGC
	// row) would absorb that one-time cost, inflating its ns/op — and with
	// it the apparent speedup of every later point in its row.
	if !r.warm {
		if err := pipeline.RunBatch(context.Background(), r.dsts, r.pl, 0).Err(); err != nil {
			return fmt.Errorf("scale warmup: %w", err)
		}
		r.warm = true
	}

	cores := runtime.GOMAXPROCS(0)
	origGC := debug.SetGCPercent(100)
	defer debug.SetGCPercent(origGC)
	for _, gc := range ScaleGOGC {
		debug.SetGCPercent(gc.Percent)
		base := 0.0
		for _, w := range ScaleWorkers {
			runtime.GC() // level the heap between points, GOGC=off included
			workers := w
			res := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					br := pipeline.RunBatch(context.Background(), r.dsts, r.pl, workers)
					if err := br.Err(); err != nil {
						b.Fatal(err)
					}
				}
			})
			ns := float64(res.NsPerOp())
			if w == ScaleWorkers[0] {
				base = ns
			}
			speed := 0.0
			if ns > 0 {
				speed = base / ns
			}
			avail := min(w, cores)
			variant := ScaleVariant(gc.Name, w)
			rep.Sample("batch", variant, "ns_per_op", ns)
			rep.Sample("batch", variant, "allocs_per_op", float64(res.AllocsPerOp()))
			rep.Sample("batch", variant, "bytes_per_op", float64(res.AllocedBytesPerOp()))
			rep.Sample("batch", variant, "speedup", speed)
			rep.Sample("batch", variant, "efficiency", speed/float64(avail))
		}
	}
	return nil
}
