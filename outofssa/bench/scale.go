package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"strings"
	"testing"

	"repro/internal/cfggen"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/pipeline"
)

// ------------------------------------------------ Multicore scale trajectory
//
// The scale trajectory measures the batch driver as a *system*: one op is
// one RunBatch of the whole corpus — per-function clone included, so the
// clone cost parallelizes with the translation it feeds — swept over
// worker counts and GOGC settings in the shape of staticcheck's bench.sh
// (GOGC × GOMAXPROCS sweep). Each point records ns/op, allocs/op, the
// speedup against the 1-worker point of the same GOGC row, and the
// parallel efficiency. Results land in BENCH_scale.json per CI run, and
// CheckScaleEfficiency gates the curve the way the translate trajectory's
// allocation gate does.
//
// Efficiency is defined against *available* parallelism: speedup ÷
// min(workers, GOMAXPROCS at measurement time). A sweep point that
// oversubscribes the machine (32 workers on 8 cores) is held to the 8-way
// bar, not an impossible 32-way one, so the gate is meaningful on any
// hardware; the report records the core count it was measured at.

// ScaleWorkers is the worker-count axis of the sweep. Package variables
// so tests (and callers with different hardware) can shrink the sweep.
var ScaleWorkers = []int{1, 2, 4, 8, 16, 32}

// ScaleGC is one GOGC setting of the sweep; Percent is the
// debug.SetGCPercent argument (-1 disables the collector).
type ScaleGC struct {
	Name    string
	Percent int
}

// ScaleGOGC is the GOGC axis of the sweep.
var ScaleGOGC = []ScaleGC{{"off", -1}, {"100", 100}, {"400", 400}}

// ScaleCase is one corpus entry of the scale trajectory.
type ScaleCase struct {
	Name   string `json:"name"`
	Blocks int    `json:"blocks"`
	Vars   int    `json:"vars"`
	Phis   int    `json:"phis"`
	fn     *ir.Func
}

// Func returns the case's pristine function (tests drive the driver
// directly).
func (c *ScaleCase) Func() *ir.Func { return c.fn }

// ScaleCorpus generates the deterministic batch corpus: a pool of
// medium-grain functions plus two ~4× stragglers appended at the *end* of
// the input — the chunked dispatcher's worst case (the last shard holds
// the most work), which work-stealing exists to flatten. scale multiplies
// the per-function block budget.
func ScaleCorpus(scale float64) []ScaleCase {
	var out []ScaleCase
	add := func(p cfggen.LargeProfile) {
		for _, f := range cfggen.GenerateLarge(p) {
			phis := 0
			for _, b := range f.Blocks {
				phis += len(b.Phis)
			}
			out = append(out, ScaleCase{
				Name: f.Name, Blocks: len(f.Blocks), Vars: len(f.Vars), Phis: phis, fn: f,
			})
		}
	}
	grain := cfggen.LargeScaleProfile("batchgrain", 7001, scale)
	add(grain)
	straggler := cfggen.LargeScaleProfile("straggler", 7019, scale)
	straggler.Funcs = 2
	// 4× the grain's *effective* budget, so the stragglers stay stragglers
	// even at tiny scales where the profile's minimum block floor kicks in.
	straggler.Blocks = grain.Blocks * 4
	add(straggler)
	return out
}

// ScalePoint is one (workers, GOGC) measurement. One op is one full batch:
// clone every corpus function and translate it through the work-stealing
// driver.
type ScalePoint struct {
	Workers int    `json:"workers"`
	GOGC    string `json:"gogc"`
	// NsPerOp, AllocsPerOp and BytesPerOp come from testing.Benchmark.
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// Speedup is the 1-worker ns/op of the same GOGC row divided by this
	// point's ns/op.
	Speedup float64 `json:"speedup"`
	// Efficiency is Speedup ÷ min(Workers, the report's Cores).
	Efficiency float64 `json:"efficiency"`
}

// ScaleReport is the BENCH_scale.json payload.
type ScaleReport struct {
	Scale float64 `json:"scale"`
	// Cores is runtime.GOMAXPROCS(0) at measurement time — the available
	// parallelism Efficiency is normalized against.
	Cores int `json:"cores"`
	// Funcs and Blocks summarize the corpus (functions per batch op and
	// total block count).
	Funcs   int          `json:"funcs"`
	Blocks  int          `json:"blocks"`
	Corpus  []ScaleCase  `json:"corpus"`
	Results []ScalePoint `json:"results"`
}

// scalePipeline assembles the measured pipeline: a leading pass clones
// the pristine template into the (recycled) input function, then the four
// out-of-SSA phases run. Putting the clone inside the pipeline keeps it
// on the parallel path — one batch op has no serial per-function section.
func scalePipeline(tmplOf map[*ir.Func]*ir.Func, opt core.Options) *pipeline.Pipeline {
	clone := pipeline.Pass{
		Name: "clone-template",
		Run: func(ctx *pipeline.Context) error {
			ir.CloneInto(ctx.Func, tmplOf[ctx.Func])
			return nil
		},
	}
	return pipeline.New(append([]pipeline.Pass{clone}, pipeline.OutOfSSA(opt)...)...)
}

// ScaleTrajectory sweeps ScaleWorkers × ScaleGOGC over the corpus with
// testing.Benchmark and returns the report. The recommended configuration
// (sharing strategy, linear checks, fast liveness checking) is measured —
// the trajectory tracks driver scalability, not strategy quality.
func ScaleTrajectory(scale float64) *ScaleReport {
	corpus := ScaleCorpus(scale)
	rep := &ScaleReport{
		Scale:  scale,
		Cores:  runtime.GOMAXPROCS(0),
		Funcs:  len(corpus),
		Corpus: corpus,
	}
	// Recycled destinations: every op CloneIntos the templates, so the op
	// measures the steady-state batch pattern, not first-touch allocation.
	dsts := make([]*ir.Func, len(corpus))
	tmplOf := make(map[*ir.Func]*ir.Func, len(corpus))
	for i := range corpus {
		rep.Blocks += corpus[i].Blocks
		dsts[i] = ir.NewFunc("")
		tmplOf[dsts[i]] = corpus[i].fn
	}
	opt := core.Options{Strategy: core.Sharing, Linear: true, LiveCheck: true}
	pl := scalePipeline(tmplOf, opt)

	// One untimed warmup batch before any measurement: the first batch ever
	// run maps every recycled arena and grows the runtime heap to its
	// steady state. Without it the first sweep point (1 worker, first GOGC
	// row) would absorb that one-time cost, inflating its ns/op — and with
	// it the apparent speedup of every later point in its row.
	if err := pipeline.RunBatch(context.Background(), dsts, pl, 0).Err(); err != nil {
		panic("bench: scale warmup: " + err.Error())
	}

	origGC := debug.SetGCPercent(100)
	defer debug.SetGCPercent(origGC)
	for _, gc := range ScaleGOGC {
		debug.SetGCPercent(gc.Percent)
		base := 0.0
		for _, w := range ScaleWorkers {
			runtime.GC() // level the heap between points, GOGC=off included
			workers := w
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					res := pipeline.RunBatch(context.Background(), dsts, pl, workers)
					if err := res.Err(); err != nil {
						b.Fatal(err)
					}
				}
			})
			ns := float64(r.NsPerOp())
			if w == ScaleWorkers[0] {
				base = ns
			}
			speed := 0.0
			if ns > 0 {
				speed = base / ns
			}
			avail := w
			if rep.Cores < avail {
				avail = rep.Cores
			}
			rep.Results = append(rep.Results, ScalePoint{
				Workers:     w,
				GOGC:        gc.Name,
				NsPerOp:     ns,
				AllocsPerOp: r.AllocsPerOp(),
				BytesPerOp:  r.AllocedBytesPerOp(),
				Speedup:     speed,
				Efficiency:  speed / float64(avail),
			})
		}
	}
	return rep
}

// WriteJSON writes the report as indented JSON.
func (rep *ScaleReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// ReadScaleReport parses a BENCH_scale.json payload.
func ReadScaleReport(r io.Reader) (*ScaleReport, error) {
	rep := &ScaleReport{}
	if err := json.NewDecoder(r).Decode(rep); err != nil {
		return nil, fmt.Errorf("bench: parsing scale report: %w", err)
	}
	return rep, nil
}

// FormatScale renders the trajectory as a table: one row per (GOGC,
// workers) point with the speedup-vs-cores curve.
func FormatScale(rep *ScaleReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Scale trajectory (scale %g): %d funcs, %d blocks per batch op, %d cores\n",
		rep.Scale, rep.Funcs, rep.Blocks, rep.Cores)
	fmt.Fprintf(&b, "%-6s %8s %12s %12s %8s %11s\n",
		"gogc", "workers", "ns/op", "allocs/op", "speedup", "efficiency")
	last := ""
	for _, p := range rep.Results {
		if p.GOGC != last && last != "" {
			fmt.Fprintln(&b)
		}
		last = p.GOGC
		fmt.Fprintf(&b, "%-6s %8d %12.0f %12d %7.2fx %11.2f\n",
			p.GOGC, p.Workers, p.NsPerOp, p.AllocsPerOp, p.Speedup, p.Efficiency)
	}
	return b.String()
}

// CheckScaleEfficiency is the scalability gate: at the atWorkers sweep
// point, every GOGC row's parallel efficiency must be at least min
// (atWorkers 8 and min 0.6 are the CI defaults; both are tunable). It
// returns one message per violation — empty means the gate passes — and
// complains if the report has no measurement at atWorkers, so a shrunken
// sweep cannot silently pass.
func CheckScaleEfficiency(rep *ScaleReport, atWorkers int, min float64) []string {
	var violations []string
	found := false
	for _, p := range rep.Results {
		if p.Workers != atWorkers {
			continue
		}
		found = true
		if p.Efficiency < min {
			violations = append(violations, fmt.Sprintf(
				"gogc=%s workers=%d: parallel efficiency %.2f below the %.2f floor (speedup %.2fx on %d cores)",
				p.GOGC, p.Workers, p.Efficiency, min, p.Speedup, rep.Cores))
		}
	}
	if !found {
		violations = append(violations, fmt.Sprintf(
			"no measurement at %d workers — the sweep must include the gated point", atWorkers))
	}
	return violations
}
