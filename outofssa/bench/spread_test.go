package bench

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ir"
)

// liveOutSrc: the φ argument x3 is also used after the loop, so the copy
// u2 = x3 at the latch intersects x3's remaining live range. Intersect must
// keep that copy; Value coalesces it (same value).
const liveOutSrc = `
func liveout {
entry:
  x1 = param 0
  jump loop
loop:
  x2 = phi entry:x1 loop:x3
  one = const 1
  x3 = add x2 one
  ten = const 10
  c = cmplt x3 ten
  br c loop exit
exit:
  y = add x3 x2
  print y
  print x3
  ret x2
}
`

func TestValueBeatsIntersectOnLiveOutArg(t *testing.T) {
	counts := map[core.Strategy]int{}
	for _, s := range core.Strategies {
		f := ir.MustParse(liveOutSrc)
		st, err := core.Translate(f, fig5Options(s))
		if err != nil {
			t.Fatal(err)
		}
		counts[s] = st.RemainingCopies
		t.Logf("%-12s remaining=%d final=%d", s, st.RemainingCopies, st.FinalCopies)
	}
	if counts[core.Value] >= counts[core.Intersect] {
		t.Errorf("Value (%d) should beat Intersect (%d)", counts[core.Value], counts[core.Intersect])
	}
}
