// Package compare is the statistical A/B half of the bench subsystem: a
// benchstat-style comparison of two report envelopes (multiple samples per
// metric, median + spread, Mann-Whitney significance annotation,
// per-metric better-direction from the bench registry) plus a uniform
// policy gate that subsumes the old ad-hoc per-trajectory checks — the
// translate +20% allocation gate, the scale parallel-efficiency floor, the
// memo warm-speedup/oracle gate, the serve smoke checks — as data.
//
// Gate semantics: a Policy matches rows by (case, variant, metric) and
// fires a violation when the candidate's median moved beyond MaxRegress in
// the metric's worse direction relative to the baseline, or breached an
// absolute Min/Max bound. Medians damp run-to-run noise; the repeat count
// is surfaced so a single-sample comparison degrades to a loudly-warned
// point comparison instead of a silent pass. Relative gates on
// machine-sensitive metrics (wall clock, throughput) are skipped — with a
// warning — when the two envelopes disagree on machine shape and the
// caller opted into AllowMachineMismatch; by default a shape mismatch
// refuses to compare at all.
package compare

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/outofssa/bench"
)

// Options configures a comparison.
type Options struct {
	// Alpha is the significance level of the Mann-Whitney annotation
	// (default 0.05).
	Alpha float64
	// AllowMachineMismatch downgrades a machine-shape disagreement from a
	// refusal to a loud warning that skips relative gates on
	// machine-sensitive metrics.
	AllowMachineMismatch bool
}

// Delta is one (case, variant, metric) cell of the comparison.
type Delta struct {
	Case, Variant, Metric string
	OldMedian, NewMedian  float64
	OldN, NewN            int
	// PctChange is the signed relative change of the median (+ = larger).
	PctChange float64
	// WorsePct is the direction-adjusted regression amount: how far the
	// median moved in the metric's worse direction (≤0 = no worse).
	WorsePct float64
	// P is the Mann-Whitney two-sided p-value (NaN when either side has
	// too few samples for the test); Significant is P < alpha.
	P           float64
	Significant bool
	// PointComparison marks cells where either side has a single sample —
	// no variance to reason about.
	PointComparison bool
}

// Violation is one fired gate.
type Violation struct {
	Delta  Delta
	Policy Policy
	Msg    string
}

// Result is the outcome of one Compare or Check call.
type Result struct {
	Trajectory string
	Deltas     []Delta
	Warnings   []string
	Violations []Violation
}

// OK reports whether the gate passed.
func (r *Result) OK() bool { return len(r.Violations) == 0 }

// Messages returns the violation messages, one per fired gate.
func (r *Result) Messages() []string {
	out := make([]string, len(r.Violations))
	for i := range r.Violations {
		out[i] = r.Violations[i].Msg
	}
	return out
}

// Compare runs the statistical comparison of candidate against baseline
// and applies the policies. The envelopes must belong to the same
// trajectory; machine-shape disagreement refuses unless
// opts.AllowMachineMismatch.
func Compare(baseline, candidate *bench.Report, policies []Policy, opts Options) (*Result, error) {
	if baseline == nil || candidate == nil {
		return nil, fmt.Errorf("compare: nil report")
	}
	if baseline.Trajectory != candidate.Trajectory {
		return nil, fmt.Errorf("compare: trajectory mismatch: baseline %q vs candidate %q",
			baseline.Trajectory, candidate.Trajectory)
	}
	if baseline.Scale != candidate.Scale {
		return nil, fmt.Errorf("compare: scale mismatch: baseline %g vs candidate %g — regenerate the baseline",
			baseline.Scale, candidate.Scale)
	}
	if opts.Alpha == 0 {
		opts.Alpha = 0.05
	}
	res := &Result{Trajectory: candidate.Trajectory}

	sameShape := machineShapeEqual(baseline.Env, candidate.Env)
	if !sameShape {
		if !opts.AllowMachineMismatch {
			return nil, fmt.Errorf(
				"compare: machine shape mismatch: baseline [%s] vs candidate [%s] — rerun the baseline on this machine or pass the allow-machine-mismatch option",
				baseline.Env.MachineShape(), candidate.Env.MachineShape())
		}
		res.Warnings = append(res.Warnings, fmt.Sprintf(
			"MACHINE SHAPE MISMATCH: baseline [%s] vs candidate [%s] — relative gates on machine-sensitive metrics are skipped",
			baseline.Env.MachineShape(), candidate.Env.MachineShape()))
	}

	pointWarned := false
	for ci := range candidate.Rows {
		row := &candidate.Rows[ci]
		base := findRow(baseline, row.Case, row.Variant)
		if base == nil {
			// Corpus growth must not break the gate; absolute bounds still
			// apply below via Check-style evaluation.
			res.Warnings = append(res.Warnings, fmt.Sprintf(
				"%s/%s: no baseline row (new case?) — relative gates skipped", row.Case, row.Variant))
		}
		for mi := range row.Metrics {
			m := &row.Metrics[mi]
			d := Delta{
				Case: row.Case, Variant: row.Variant, Metric: m.Name,
				NewMedian: bench.Median(m.Samples), NewN: len(m.Samples),
				P: math.NaN(),
			}
			var bm *bench.Metric
			if base != nil {
				bm = base.Metric(m.Name)
			}
			if bm != nil {
				d.OldMedian = bench.Median(bm.Samples)
				d.OldN = len(bm.Samples)
				if d.OldMedian != 0 {
					d.PctChange = (d.NewMedian - d.OldMedian) / math.Abs(d.OldMedian) * 100
				} else if d.NewMedian != 0 {
					d.PctChange = math.Inf(sign(d.NewMedian))
				}
				def := bench.MetricInfo(m.Name)
				d.WorsePct = d.PctChange
				if def.Better == bench.HigherIsBetter {
					d.WorsePct = -d.PctChange
				}
				d.PointComparison = d.OldN < 2 || d.NewN < 2
				if !d.PointComparison {
					d.P = mannWhitneyP(bm.Samples, m.Samples)
					d.Significant = d.P < opts.Alpha
				}
				if d.PointComparison && !pointWarned && d.OldN > 0 {
					res.Warnings = append(res.Warnings,
						"single-sample rows present: comparison degrades to point comparison (rerun with -count ≥ 3 for real variance)")
					pointWarned = true
				}
			}
			res.Deltas = append(res.Deltas, d)
		}
	}

	applyPolicies(res, policies, sameShape)
	return res, nil
}

// Check applies only the absolute bounds of the policies to a single
// report — the self-gate a fresh trajectory runs with no baseline (serve
// smoke checks, memo oracle, efficiency floors).
func Check(candidate *bench.Report, policies []Policy) *Result {
	res := &Result{Trajectory: candidate.Trajectory}
	for ci := range candidate.Rows {
		row := &candidate.Rows[ci]
		for mi := range row.Metrics {
			m := &row.Metrics[mi]
			res.Deltas = append(res.Deltas, Delta{
				Case: row.Case, Variant: row.Variant, Metric: m.Name,
				NewMedian: bench.Median(m.Samples), NewN: len(m.Samples),
				P: math.NaN(),
			})
		}
	}
	applyAbsolute(res, policies)
	return res
}

// applyPolicies fires relative and absolute gates over the deltas.
func applyPolicies(res *Result, policies []Policy, sameShape bool) {
	for _, p := range policies {
		matched := false
		for i := range res.Deltas {
			d := &res.Deltas[i]
			if !p.matches(res.Trajectory, d.Case, d.Variant, d.Metric) {
				continue
			}
			matched = true
			def := bench.MetricInfo(d.Metric)
			// Relative gate: candidate median moved beyond MaxRegress in
			// the worse direction, against a baseline row that exists.
			if p.MaxRegress >= 0 && d.OldN > 0 {
				if !sameShape && def.MachineSensitive {
					// Warned once globally; cross-machine wall clock is
					// not comparable.
				} else if d.WorsePct > p.MaxRegress*100+1e-9 {
					note := ""
					if d.PointComparison {
						note = " [point comparison — no variance]"
					} else if !d.Significant {
						note = fmt.Sprintf(" [not significant at p=%.2f]", d.P)
					}
					res.Violations = append(res.Violations, Violation{
						Delta: *d, Policy: p,
						Msg: fmt.Sprintf("%s/%s: %s regressed %.1f%% (median %s → %s, limit +%.0f%%)%s",
							d.Case, d.Variant, d.Metric, d.WorsePct,
							formatVal(d.OldMedian), formatVal(d.NewMedian), p.MaxRegress*100, note),
					})
				}
			}
			fireAbsolute(res, p, d)
		}
		if !matched && p.Required {
			res.Violations = append(res.Violations, Violation{
				Policy: p,
				Msg: fmt.Sprintf("no measurement matches required gate %s (case %q variant %q) — the sweep must include the gated point",
					p.Metric, p.Case, p.Variant),
			})
		}
	}
}

// applyAbsolute is applyPolicies restricted to absolute bounds (Check).
func applyAbsolute(res *Result, policies []Policy) {
	for _, p := range policies {
		matched := false
		for i := range res.Deltas {
			d := &res.Deltas[i]
			if !p.matches(res.Trajectory, d.Case, d.Variant, d.Metric) {
				continue
			}
			matched = true
			fireAbsolute(res, p, d)
		}
		if !matched && p.Required {
			res.Violations = append(res.Violations, Violation{
				Policy: p,
				Msg: fmt.Sprintf("no measurement matches required gate %s (case %q variant %q) — the sweep must include the gated point",
					p.Metric, p.Case, p.Variant),
			})
		}
	}
}

// fireAbsolute applies a policy's Min/Max bounds to one delta.
func fireAbsolute(res *Result, p Policy, d *Delta) {
	if !math.IsNaN(p.MinValue) && d.NewMedian < p.MinValue-1e-9 {
		res.Violations = append(res.Violations, Violation{
			Delta: *d, Policy: p,
			Msg: fmt.Sprintf("%s/%s: %s median %s below the %s floor",
				d.Case, d.Variant, d.Metric, formatVal(d.NewMedian), formatVal(p.MinValue)),
		})
	}
	if !math.IsNaN(p.MaxValue) && d.NewMedian > p.MaxValue+1e-9 {
		res.Violations = append(res.Violations, Violation{
			Delta: *d, Policy: p,
			Msg: fmt.Sprintf("%s/%s: %s median %s above the %s ceiling",
				d.Case, d.Variant, d.Metric, formatVal(d.NewMedian), formatVal(p.MaxValue)),
		})
	}
}

func findRow(rep *bench.Report, case_, variant string) *bench.Row {
	for i := range rep.Rows {
		if rep.Rows[i].Case == case_ && rep.Rows[i].Variant == variant {
			return &rep.Rows[i]
		}
	}
	return nil
}

func machineShapeEqual(a, b bench.Env) bool {
	return a.OS == b.OS && a.Arch == b.Arch && a.NumCPU == b.NumCPU &&
		a.GOMAXPROCS == b.GOMAXPROCS && a.GOGC == b.GOGC
}

func sign(v float64) int {
	if v < 0 {
		return -1
	}
	return 1
}

// Format renders the comparison as a benchstat-style table: one line per
// delta with medians, the signed change, and the significance annotation,
// followed by warnings and violations.
func (r *Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "compare: %s trajectory\n", r.Trajectory)
	caseW, varW, metW := len("case"), len("variant"), len("metric")
	for i := range r.Deltas {
		d := &r.Deltas[i]
		caseW = max(caseW, len(d.Case))
		varW = max(varW, len(d.Variant))
		metW = max(metW, len(d.Metric))
	}
	fmt.Fprintf(&b, "%-*s  %-*s  %-*s  %12s  %12s  %9s  %s\n",
		caseW, "case", varW, "variant", metW, "metric", "old", "new", "delta", "note")
	for i := range r.Deltas {
		d := &r.Deltas[i]
		old := "—"
		if d.OldN > 0 {
			old = formatVal(d.OldMedian)
		}
		delta := "—"
		if d.OldN > 0 {
			delta = fmt.Sprintf("%+.1f%%", d.PctChange)
		}
		note := ""
		switch {
		case d.OldN == 0:
			note = "no baseline"
		case d.PointComparison:
			note = "point"
		case d.Significant:
			note = fmt.Sprintf("p=%.3f", d.P)
		case !math.IsNaN(d.P):
			note = fmt.Sprintf("~ (p=%.2f n=%d+%d)", d.P, d.OldN, d.NewN)
		}
		fmt.Fprintf(&b, "%-*s  %-*s  %-*s  %12s  %12s  %9s  %s\n",
			caseW, d.Case, varW, d.Variant, metW, d.Metric,
			old, formatVal(d.NewMedian), delta, note)
	}
	for _, w := range r.Warnings {
		fmt.Fprintf(&b, "warning: %s\n", w)
	}
	for i := range r.Violations {
		fmt.Fprintf(&b, "VIOLATION: %s\n", r.Violations[i].Msg)
	}
	if len(r.Violations) == 0 {
		fmt.Fprintf(&b, "gate: PASS (%d cells compared)\n", len(r.Deltas))
	} else {
		fmt.Fprintf(&b, "gate: FAIL (%d violations over %d cells)\n", len(r.Violations), len(r.Deltas))
	}
	return b.String()
}

func formatVal(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.4g", v)
}

// ------------------------------------------------------------ statistics

// mannWhitneyP computes the two-sided Mann-Whitney U test p-value with the
// normal approximation and tie correction — the benchstat significance
// annotation. Small sample counts cannot reach significance; that is
// surfaced, not hidden.
func mannWhitneyP(xs, ys []float64) float64 {
	n1, n2 := float64(len(xs)), float64(len(ys))
	if n1 == 0 || n2 == 0 {
		return math.NaN()
	}
	type obs struct {
		v     float64
		fromX bool
	}
	all := make([]obs, 0, len(xs)+len(ys))
	for _, v := range xs {
		all = append(all, obs{v, true})
	}
	for _, v := range ys {
		all = append(all, obs{v, false})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })

	// Midranks with tie groups; accumulate the tie correction term.
	ranks := make([]float64, len(all))
	tieTerm := 0.0
	for i := 0; i < len(all); {
		j := i
		for j < len(all) && all[j].v == all[i].v {
			j++
		}
		mid := float64(i+j-1)/2 + 1
		for k := i; k < j; k++ {
			ranks[k] = mid
		}
		t := float64(j - i)
		tieTerm += t*t*t - t
		i = j
	}
	r1 := 0.0
	for i, o := range all {
		if o.fromX {
			r1 += ranks[i]
		}
	}
	u1 := r1 - n1*(n1+1)/2
	u := math.Min(u1, n1*n2-u1)
	n := n1 + n2
	mean := n1 * n2 / 2
	variance := n1 * n2 / 12 * ((n + 1) - tieTerm/(n*(n-1)))
	if variance <= 0 {
		// All observations tied — no evidence of difference.
		return 1
	}
	// Continuity-corrected z; two-sided.
	z := (u - mean + 0.5) / math.Sqrt(variance)
	p := 2 * normalCDF(z)
	return math.Min(p, 1)
}

// normalCDF is Φ(z) for the standard normal distribution.
func normalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}
