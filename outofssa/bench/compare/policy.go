package compare

import (
	"fmt"
	"math"
	"strings"
)

// Policy is one gate over the comparison: which cells it matches and what
// it demands of them. The zero value matches nothing useful — build
// policies with the constructors or set MinValue/MaxValue to NaN
// explicitly (0 is a real bound for those fields, so NaN disables).
type Policy struct {
	// Metric is the exact metric name the gate applies to (required).
	Metric string
	// Trajectory, Case, and Variant are substring filters ("" matches
	// any). Variant "memo-warm" matches every memo-warm row, variant
	// "workers=8" matches every GOGC sweep at 8 workers, and so on.
	Trajectory, Case, Variant string
	// MaxRegress is the relative-regression gate: the candidate median may
	// move at most this fraction (0.20 = +20%) in the metric's worse
	// direction versus the baseline. Negative disables the relative gate.
	MaxRegress float64
	// MinValue and MaxValue are absolute bounds on the candidate median
	// (NaN disables each). These also apply with no baseline (Check).
	MinValue, MaxValue float64
	// Required makes the absence of any matching measurement itself a
	// violation — a sweep silently dropping its gated point must fail.
	Required bool
}

// Regress builds a relative-regression policy: metric may worsen at most
// maxRegress (fraction) against the baseline.
func Regress(metric string, maxRegress float64) Policy {
	return Policy{Metric: metric, MaxRegress: maxRegress,
		MinValue: math.NaN(), MaxValue: math.NaN()}
}

// Floor builds an absolute lower-bound policy on the candidate median.
func Floor(metric string, minValue float64) Policy {
	return Policy{Metric: metric, MaxRegress: -1,
		MinValue: minValue, MaxValue: math.NaN()}
}

// Ceiling builds an absolute upper-bound policy on the candidate median.
func Ceiling(metric string, maxValue float64) Policy {
	return Policy{Metric: metric, MaxRegress: -1,
		MinValue: math.NaN(), MaxValue: maxValue}
}

// On restricts the policy to rows whose case/variant contain the given
// substrings ("" leaves a filter open).
func (p Policy) On(case_, variant string) Policy {
	p.Case, p.Variant = case_, variant
	return p
}

// Require marks the policy Required.
func (p Policy) Require() Policy {
	p.Required = true
	return p
}

func (p Policy) matches(trajectory, case_, variant, metric string) bool {
	return p.Metric == metric &&
		strings.Contains(trajectory, p.Trajectory) &&
		strings.Contains(case_, p.Case) &&
		strings.Contains(variant, p.Variant)
}

// String renders the policy for gate listings.
func (p Policy) String() string {
	var parts []string
	if p.MaxRegress >= 0 {
		parts = append(parts, fmt.Sprintf("regress≤%.0f%%", p.MaxRegress*100))
	}
	if !math.IsNaN(p.MinValue) {
		parts = append(parts, fmt.Sprintf("≥%g", p.MinValue))
	}
	if !math.IsNaN(p.MaxValue) {
		parts = append(parts, fmt.Sprintf("≤%g", p.MaxValue))
	}
	scope := ""
	if p.Case != "" || p.Variant != "" {
		scope = fmt.Sprintf(" on %q/%q", p.Case, p.Variant)
	}
	return fmt.Sprintf("%s %s%s", p.Metric, strings.Join(parts, ","), scope)
}

// DefaultPolicies returns the standing gate of one trajectory — the
// policies that subsume the old bespoke checks. minEff parameterizes the
// scale trajectory's parallel-efficiency floor (≤0 picks the historical
// 0.6 default); it is ignored elsewhere.
func DefaultPolicies(trajectory string, minEff float64) []Policy {
	// Every trajectory: allocations are deterministic and machine-neutral,
	// so the historical translate +20% alloc gate generalizes; wall clock
	// gets a looser gate (skipped automatically across machine shapes);
	// translation quality must never regress at all.
	ps := []Policy{
		Regress("allocs_per_op", 0.20),
		Regress("ns_per_op", 0.35),
		Regress("nanos_per_func", 0.35),
		Regress("copies_remaining", 0),
		Regress("final_copies", 0),
		Regress("intersection_tests", 0),
	}
	switch trajectory {
	case "scale":
		if minEff <= 0 {
			minEff = 0.6
		}
		// The old CheckScaleEfficiency floor: the 8-worker point of every
		// GOGC setting must hold the efficiency floor, and the sweep must
		// actually include that point.
		ps = append(ps, Floor("efficiency", minEff).On("", "workers=8").Require())
	case "serve":
		ps = append(ps,
			Ceiling("failures", 0).Require(),
			Floor("requests", 1).Require(),
			Floor("quantiles_coherent", 1).Require(),
		)
	case "memo":
		ps = append(ps,
			Floor("warm_speedup", 2).On("", "memo-warm").Require(),
			Floor("hit_rate", 0.999).On("", "memo-warm").Require(),
			Floor("oracle_clean", 1).On("", "/oracle").Require(),
		)
	}
	return ps
}

// DaemonPolicies is the absolute self-gate of the memo daemon point
// (cmd/ssaload -dup): traffic flowed and the memo actually engaged.
func DaemonPolicies() []Policy {
	return []Policy{
		Floor("requests", 1).On("daemon", "").Require(),
		Floor("memo_hit_rate", 0.05).On("daemon", "").Require(),
	}
}
