package compare

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/outofssa/bench"
)

// synthetic builds an envelope with n samples per metric drawn around the
// given centers with a small relative jitter. Quality counts
// (copies_remaining etc.) are deterministic in the real harness, so they
// repeat exactly — that is what makes their zero-regress gate viable.
func synthetic(trajectory string, rng *rand.Rand, n int, jitter float64, centers map[string]float64) *bench.Report {
	rep := bench.NewReport(trajectory, 0.05)
	rep.Count = n
	deterministic := map[string]bool{"copies_remaining": true, "final_copies": true, "intersection_tests": true}
	for i := 0; i < n; i++ {
		for name, c := range centers {
			v := c
			if jitter > 0 && !deterministic[name] {
				v = c * (1 + (rng.Float64()*2-1)*jitter)
			}
			rep.Sample("case-a", "pooled", name, v)
		}
	}
	return rep
}

// scaled returns a copy of the centers with one metric multiplied.
func scaled(centers map[string]float64, metric string, factor float64) map[string]float64 {
	out := map[string]float64{}
	for k, v := range centers {
		out[k] = v
	}
	out[metric] *= factor
	return out
}

var baseCenters = map[string]float64{
	"ns_per_op":        10_000,
	"allocs_per_op":    120,
	"copies_remaining": 40,
	"speedup":          1.8,
}

// TestCompareInjectedRegressions: a synthetic regression of each metric
// kind — wall clock, allocations, quality count, higher-is-better ratio —
// must fire the gate; the injection direction matters.
func TestCompareInjectedRegressions(t *testing.T) {
	policies := append(DefaultPolicies("translate", 0), Regress("speedup", 0.10))
	cases := []struct {
		metric string
		factor float64
	}{
		{"ns_per_op", 1.60},        // +60% wall clock, limit +35%
		{"allocs_per_op", 1.30},    // +30% allocs, limit +20%
		{"copies_remaining", 1.05}, // any quality regression, limit 0
		{"speedup", 0.70},          // -30% on a higher-is-better metric
	}
	for _, tc := range cases {
		rng := rand.New(rand.NewSource(1))
		baseline := synthetic("translate", rng, 5, 0.02, baseCenters)
		candidate := synthetic("translate", rng, 5, 0.02, scaled(baseCenters, tc.metric, tc.factor))
		res, err := Compare(baseline, candidate, policies, Options{})
		if err != nil {
			t.Fatalf("%s: %v", tc.metric, err)
		}
		if res.OK() {
			t.Errorf("injected %s×%.2f regression passed the gate:\n%s", tc.metric, tc.factor, res.Format())
			continue
		}
		found := false
		for _, v := range res.Violations {
			if v.Delta.Metric == tc.metric {
				found = true
			}
		}
		if !found {
			t.Errorf("injected %s regression fired the wrong gate: %v", tc.metric, res.Messages())
		}
	}
}

// TestCompareNoiseWithinBoundsPasses: across many seeds, jitter well inside
// every limit must never fire — the gate tolerates measurement noise.
func TestCompareNoiseWithinBoundsPasses(t *testing.T) {
	policies := []Policy{
		Regress("ns_per_op", 0.35),
		Regress("allocs_per_op", 0.20),
		Regress("speedup", 0.20),
	}
	noisy := map[string]float64{"ns_per_op": 10_000, "allocs_per_op": 120, "speedup": 1.8}
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		baseline := synthetic("translate", rng, 7, 0.04, noisy)
		candidate := synthetic("translate", rng, 7, 0.04, noisy)
		res, err := Compare(baseline, candidate, policies, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.OK() {
			t.Fatalf("seed %d: noise within bounds fired the gate: %v", seed, res.Messages())
		}
	}
}

// TestCompareIdenticalRunPasses: comparing a report with itself — the CI
// self-check — is always clean, including the zero-regress quality gates.
func TestCompareIdenticalRunPasses(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rep := synthetic("translate", rng, 3, 0.05, baseCenters)
	res, err := Compare(rep, rep, DefaultPolicies("translate", 0), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("identical comparison fired the gate: %v", res.Messages())
	}
}

// TestCompareImprovementsPass: movement in the better direction is never a
// regression, however large.
func TestCompareImprovementsPass(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	baseline := synthetic("translate", rng, 5, 0.02, baseCenters)
	improved := scaled(scaled(baseCenters, "ns_per_op", 0.5), "speedup", 2)
	candidate := synthetic("translate", rng, 5, 0.02, improved)
	res, err := Compare(baseline, candidate, append(DefaultPolicies("translate", 0), Regress("speedup", 0.10)), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("improvement fired the gate: %v", res.Messages())
	}
}

// TestCompareSingleSamplePointComparison: n=1 rows still gate, but degrade
// to a loudly-warned point comparison rather than a silent pass.
func TestCompareSingleSamplePointComparison(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	baseline := synthetic("translate", rng, 1, 0, baseCenters)
	candidate := synthetic("translate", rng, 1, 0, scaled(baseCenters, "allocs_per_op", 1.5))
	res, err := Compare(baseline, candidate, DefaultPolicies("translate", 0), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() {
		t.Fatal("single-sample regression passed silently")
	}
	warned := false
	for _, w := range res.Warnings {
		if strings.Contains(w, "point comparison") {
			warned = true
		}
	}
	if !warned {
		t.Fatalf("missing single-sample warning: %v", res.Warnings)
	}
	for _, v := range res.Violations {
		if v.Delta.Metric == "allocs_per_op" && !strings.Contains(v.Msg, "point comparison") {
			t.Fatalf("violation does not flag the point comparison: %s", v.Msg)
		}
	}
}

// TestCompareMachineShapeMismatch: a shape mismatch refuses by default;
// with AllowMachineMismatch it warns and skips wall-clock relative gates
// but still fires machine-neutral ones (allocations, quality).
func TestCompareMachineShapeMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	baseline := synthetic("translate", rng, 3, 0.02, baseCenters)
	regressed := scaled(scaled(baseCenters, "ns_per_op", 2), "allocs_per_op", 1.5)
	candidate := synthetic("translate", rng, 3, 0.02, regressed)
	baseline.Env.NumCPU = candidate.Env.NumCPU + 8
	baseline.Env.GOMAXPROCS = candidate.Env.GOMAXPROCS + 8

	if _, err := Compare(baseline, candidate, DefaultPolicies("translate", 0), Options{}); err == nil {
		t.Fatal("machine shape mismatch must refuse by default")
	}

	res, err := Compare(baseline, candidate, DefaultPolicies("translate", 0), Options{AllowMachineMismatch: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Warnings) == 0 || !strings.Contains(res.Warnings[0], "MACHINE SHAPE MISMATCH") {
		t.Fatalf("missing machine-mismatch warning: %v", res.Warnings)
	}
	sawAlloc := false
	for _, v := range res.Violations {
		if v.Delta.Metric == "ns_per_op" {
			t.Fatalf("wall-clock gate fired across machine shapes: %s", v.Msg)
		}
		if v.Delta.Metric == "allocs_per_op" {
			sawAlloc = true
		}
	}
	if !sawAlloc {
		t.Fatalf("machine-neutral alloc gate skipped: %v", res.Messages())
	}
}

// TestCompareTrajectoryAndScaleMismatch: envelopes from different
// trajectories or corpus scales never compare.
func TestCompareTrajectoryAndScaleMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := synthetic("translate", rng, 3, 0.02, baseCenters)
	b := synthetic("liveness", rng, 3, 0.02, baseCenters)
	if _, err := Compare(a, b, nil, Options{}); err == nil {
		t.Fatal("trajectory mismatch must error")
	}
	c := synthetic("translate", rng, 3, 0.02, baseCenters)
	c.Scale = 0.5
	if _, err := Compare(a, c, nil, Options{}); err == nil {
		t.Fatal("scale mismatch must error")
	}
}

// TestCheckAbsoluteGates: the baseline-free self-gate fires floors and
// ceilings, and Required policies catch a sweep that dropped its point.
func TestCheckAbsoluteGates(t *testing.T) {
	rep := bench.NewReport("serve", 1)
	rep.Sample("load", "clients=2", "requests", 500)
	rep.Sample("load", "clients=2", "failures", 3)
	rep.Sample("load", "clients=2", "quantiles_coherent", 1)
	res := Check(rep, DefaultPolicies("serve", 0))
	if res.OK() {
		t.Fatalf("3 failures passed the zero-failure ceiling:\n%s", res.Format())
	}

	rep2 := bench.NewReport("serve", 1)
	rep2.Sample("load", "clients=2", "requests", 500)
	rep2.Sample("load", "clients=2", "failures", 0)
	rep2.Sample("load", "clients=2", "quantiles_coherent", 1)
	if res := Check(rep2, DefaultPolicies("serve", 0)); !res.OK() {
		t.Fatalf("clean serve report fired the gate: %v", res.Messages())
	}

	// A report missing the gated point entirely must fail, not pass.
	empty := bench.NewReport("serve", 1)
	if res := Check(empty, DefaultPolicies("serve", 0)); res.OK() {
		t.Fatal("empty report passed Required gates")
	}
}

// TestScaleEfficiencyFloor: the scale trajectory's 8-worker efficiency
// floor — the old CheckScaleEfficiency — as a compare policy.
func TestScaleEfficiencyFloor(t *testing.T) {
	rep := bench.NewReport("scale", 0.05)
	for _, gogc := range []string{"off", "100"} {
		rep.Sample("batch", "gogc="+gogc+"/workers=1", "efficiency", 1)
		rep.Sample("batch", "gogc="+gogc+"/workers=8", "efficiency", 0.72)
	}
	if res := Check(rep, DefaultPolicies("scale", 0.6)); !res.OK() {
		t.Fatalf("efficiency 0.72 ≥ 0.6 fired: %v", res.Messages())
	}
	if res := Check(rep, DefaultPolicies("scale", 0.8)); res.OK() {
		t.Fatal("efficiency 0.72 passed a 0.8 floor")
	}
}

// TestMannWhitney sanity: clearly separated samples are significant,
// identical samples are not, and NaN marks under-sampled sides.
func TestMannWhitney(t *testing.T) {
	lo := []float64{10, 11, 12, 10.5, 11.5, 10.2, 11.8, 10.9}
	hi := []float64{20, 21, 22, 20.5, 21.5, 20.2, 21.8, 20.9}
	if p := mannWhitneyP(lo, hi); p >= 0.05 {
		t.Fatalf("separated samples p=%.4f, want <0.05", p)
	}
	same := []float64{5, 5, 5, 5}
	if p := mannWhitneyP(same, same); p < 0.99 {
		t.Fatalf("identical samples p=%.4f, want ≈1", p)
	}
	if p := mannWhitneyP(nil, hi); !math.IsNaN(p) {
		t.Fatalf("empty side p=%v, want NaN", p)
	}
}

// TestFormatMentionsEverything: the rendered table carries the verdict,
// the warnings, and the violations — it is the CI log artifact.
func TestFormatMentionsEverything(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	baseline := synthetic("translate", rng, 3, 0.02, baseCenters)
	candidate := synthetic("translate", rng, 3, 0.02, scaled(baseCenters, "allocs_per_op", 2))
	res, err := Compare(baseline, candidate, DefaultPolicies("translate", 0), Options{})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Format()
	for _, want := range []string{"translate trajectory", "allocs_per_op", "VIOLATION", "gate: FAIL"} {
		if !strings.Contains(out, want) {
			t.Fatalf("format missing %q:\n%s", want, out)
		}
	}
}
