package serve

import (
	"math"
	"sync/atomic"
	"time"
)

// The latency histogram: fixed exponential buckets, lock-free recording,
// quantiles computed on scrape. Bucket bounds grow by 2^(1/4) (≈19% wide)
// from 1µs, so 120 buckets span 1µs to ~18 minutes — per-request serving
// latencies land in the fine-grained middle, and anything beyond the top
// bound is clamped into the last bucket (the tracked maximum still reports
// the true extreme).
const (
	histBuckets = 120
	histBaseNs  = 1_000 // 1µs
)

// histBounds[i] is the inclusive upper bound (nanoseconds) of bucket i.
var histBounds = func() [histBuckets]int64 {
	var b [histBuckets]int64
	for i := range b {
		b[i] = int64(histBaseNs * math.Pow(2, float64(i)/4))
	}
	return b
}()

// histogram records durations concurrently; the zero value is ready.
type histogram struct {
	counts [histBuckets]atomic.Uint64
	count  atomic.Int64
	sumNs  atomic.Int64
	maxNs  atomic.Int64
}

// observe records one duration.
func (h *histogram) observe(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	h.counts[bucketOf(ns)].Add(1)
	h.count.Add(1)
	h.sumNs.Add(ns)
	for {
		old := h.maxNs.Load()
		if ns <= old || h.maxNs.CompareAndSwap(old, ns) {
			return
		}
	}
}

// bucketOf returns the bucket index for a nanosecond latency.
func bucketOf(ns int64) int {
	lo, hi := 0, histBuckets-1
	for lo < hi {
		mid := (lo + hi) / 2
		if ns <= histBounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// histSnapshot is a consistent-enough copy of the histogram for quantile
// evaluation (individual bucket reads are atomic; a scrape racing new
// observations may be off by the in-flight handful, which is fine for
// monitoring).
type histSnapshot struct {
	counts [histBuckets]uint64
	count  int64
	sumNs  int64
	maxNs  int64
}

func (h *histogram) snapshot() histSnapshot {
	var s histSnapshot
	for i := range h.counts {
		s.counts[i] = h.counts[i].Load()
	}
	s.count = h.count.Load()
	s.sumNs = h.sumNs.Load()
	s.maxNs = h.maxNs.Load()
	return s
}

// quantile returns the q-quantile (0 ≤ q ≤ 1) in nanoseconds, linearly
// interpolated inside the containing bucket and clamped to the tracked
// maximum (interpolation toward a bucket's upper bound would otherwise
// report a latency larger than any ever observed); 0 when empty.
func (s *histSnapshot) quantile(q float64) float64 {
	var total uint64
	for i := range s.counts {
		total += s.counts[i]
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var seen float64
	for i, c := range s.counts {
		if c == 0 {
			continue
		}
		if seen+float64(c) >= rank {
			lo := float64(0)
			if i > 0 {
				lo = float64(histBounds[i-1])
			}
			hi := float64(histBounds[i])
			frac := (rank - seen) / float64(c)
			return min(lo+(hi-lo)*frac, float64(s.maxNs))
		}
		seen += float64(c)
	}
	return float64(s.maxNs)
}

// mean returns the mean latency in nanoseconds; 0 when empty.
func (s *histSnapshot) mean() float64 {
	if s.count == 0 {
		return 0
	}
	return float64(s.sumNs) / float64(s.count)
}
