// Package serve turns the out-of-SSA engine into a long-lived service: a
// Server wraps outofssa.Translator behind an HTTP+JSON API with per-request
// strategy/options, NDJSON-streamed batch results in completion order,
// admission control with backpressure (bounded in-flight slots, bounded
// queue, 429 + Retry-After on overflow), per-request deadlines, graceful
// drain, and a /v1/stats surface exposing the paper's Figure 5-style
// counters, analysis-cache hit rates, and serving-latency quantiles.
//
//	POST /v1/translate  one function  → JSON TranslateResponse
//	POST /v1/batch      many functions → NDJSON BatchItem*, BatchSummary
//	GET  /v1/stats      → JSON StatsResponse
//	GET  /healthz       → 200 (503 while draining)
//
// Request bodies are either a JSON TranslateRequest or — for curl-ability —
// the raw textual IR with options as query parameters. Client disconnects
// propagate: the request context cancels the translation at its next pass
// boundary (single functions) or stops the batch driver from dispatching
// further functions (batches), exactly the ctx plumbing outofssa.Translate
// and Stream already honour.
//
// The companion package serve/client is the typed Go client; cmd/ssad is
// the daemon around this package and cmd/ssaload the load generator.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/faults"
	"repro/outofssa"
)

// Failpoints, one per handler stage. Placement contract: err-kind faults
// fire before the request's terminal bucket is counted (the injection site
// does its own accounting), and panic-kind faults fire only where no
// terminal bucket has been counted yet, so the isolation middleware's
// Panicked classification keeps the books balanced.
var (
	fpDecode    = faults.Register("serve.decode")
	fpTranslate = faults.Register("serve.translate")
	fpEncode    = faults.Register("serve.encode")
	fpStats     = faults.Register("serve.stats")
)

// Config tunes a Server; the zero value selects every default.
type Config struct {
	// MaxInFlight bounds concurrently admitted requests (a batch counts as
	// one — its internal parallelism is BatchWorkers). <= 0 selects
	// GOMAXPROCS.
	MaxInFlight int
	// MaxQueue bounds requests waiting for a slot before the server sheds
	// load with 429; 0 selects 4 × MaxInFlight, negative means no queue at
	// all (reject the moment the in-flight slots are taken).
	MaxQueue int
	// DefaultTimeout is the per-request deadline when the request names
	// none; <= 0 selects 30s.
	DefaultTimeout time.Duration
	// MaxTimeout caps any requested deadline; <= 0 selects 5m.
	MaxTimeout time.Duration
	// BatchWorkers is the worker-pool size each /v1/batch request
	// translates on; <= 0 selects GOMAXPROCS (per request — combined with
	// MaxInFlight this bounds total parallelism).
	BatchWorkers int
	// MaxRequestBytes caps request bodies; <= 0 selects 16 MiB.
	MaxRequestBytes int64
	// MemoEntries bounds the server's shared translation memo (structurally
	// identical inputs translate once; see outofssa.NewMemo). 0 selects the
	// memo default (4096 entries); negative disables memoization entirely.
	MemoEntries int
	// MemoBytes bounds the memo's retained output bytes (approximate); 0
	// selects the memo default (256 MiB). Ignored when MemoEntries is
	// negative.
	MemoBytes int64
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = runtime.GOMAXPROCS(0)
	}
	switch {
	case c.MaxQueue < 0:
		c.MaxQueue = 0
	case c.MaxQueue == 0:
		c.MaxQueue = 4 * c.MaxInFlight
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.MaxRequestBytes <= 0 {
		c.MaxRequestBytes = 16 << 20
	}
	return c
}

// Server is the translation service. It is an http.Handler; New is the
// only constructor. A Server is safe for concurrent use and designed to
// live for the process's lifetime.
type Server struct {
	cfg      Config
	mux      *http.ServeMux
	gate     *gate
	stats    serverStats
	start    time.Time
	draining atomic.Bool

	// memo is the server-wide translation memo, shared by every request's
	// translator (nil when Config.MemoEntries is negative). Entries are keyed
	// by fingerprint + machinery options, so requests with different
	// strategies or toggles never observe each other's results.
	memo *outofssa.Memo

	// holdForTest, when non-nil, blocks every admitted request until the
	// channel is closed — the backpressure tests use it to pin the
	// in-flight slots deterministically.
	holdForTest chan struct{}
}

// New builds a Server from cfg (zero value for defaults).
func New(cfg Config) *Server {
	s := &Server{cfg: cfg.withDefaults(), start: time.Now()}
	s.gate = newGate(s.cfg.MaxInFlight, s.cfg.MaxQueue)
	if s.cfg.MemoEntries >= 0 {
		s.memo = outofssa.NewMemo(s.cfg.MemoEntries, s.cfg.MemoBytes)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/translate", s.recovering(true, s.handleTranslate))
	s.mux.HandleFunc("POST /v1/batch", s.recovering(true, s.handleBatch))
	s.mux.HandleFunc("GET /v1/stats", s.recovering(false, s.handleStats))
	s.mux.HandleFunc("GET /healthz", s.recovering(false, s.handleHealth))
	return s
}

// Memo returns the server-wide translation memo, or nil when memoization
// is disabled. The daemon uses it to persist the memo across restarts
// (snapshot on drain, load on boot).
func (s *Server) Memo() *outofssa.Memo { return s.memo }

// Config returns the server's configuration after defaulting.
func (s *Server) Config() Config { return s.cfg }

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Drain puts the server into drain mode: new work is refused with 503 +
// Retry-After while requests already admitted run to completion. The
// daemon calls it on SIGTERM before http.Server.Shutdown, so a load
// balancer sees the instance refuse crisply instead of queueing doomed
// work.
func (s *Server) Drain() { s.draining.Store(true) }

// Draining reports whether Drain was called.
func (s *Server) Draining() bool { return s.draining.Load() }

// AdminHandler returns the opt-in admin surface: /debug/pprof/* and a
// duplicate /v1/stats. The daemon binds it to a separate (typically
// loopback-only) port so profiling is never exposed on the serving
// address.
func (s *Server) AdminHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	return mux
}

// ------------------------------------------------------------ panic fences

// statusWriter tracks whether a handler already wrote a response, so the
// panic fence knows whether a 500 can still go on the wire. Unwrap exposes
// the underlying writer to http.NewResponseController (the batch handler's
// Flush must keep working through the wrapper).
type statusWriter struct {
	http.ResponseWriter
	wrote bool
}

func (sw *statusWriter) WriteHeader(status int) {
	sw.wrote = true
	sw.ResponseWriter.WriteHeader(status)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	sw.wrote = true
	return sw.ResponseWriter.Write(p)
}

func (sw *statusWriter) Unwrap() http.ResponseWriter { return sw.ResponseWriter }

// recovering is the handler-level panic isolation: a panic escaping h —
// a bug in the engine, or an injected fault — is contained to this request
// instead of killing the daemon. The recovered request gets a typed 500
// wire error when nothing has been written yet, panic_total always ticks,
// and countReq marks the translate/batch routes whose requests land in the
// Panicked bucket so the request books stay balanced. Gate slots and
// timers are safe across the unwind: handlers defer their releases before
// any code that can panic. http.ErrAbortHandler is the net/http-sanctioned
// abort and is re-raised.
func (s *Server) recovering(countReq bool, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if rec == http.ErrAbortHandler {
				panic(rec)
			}
			s.stats.panicTotal.Add(1)
			if countReq {
				s.stats.reqPanicked.Add(1)
			}
			if !sw.wrote {
				writeError(sw, http.StatusInternalServerError,
					fmt.Errorf("serve: internal panic: %v", rec))
			}
		}()
		h(sw, r)
	}
}

// ---------------------------------------------------------------- handlers

func (s *Server) handleTranslate(w http.ResponseWriter, r *http.Request) {
	s.stats.reqTranslate.Add(1)
	req, tr, ok := s.prepare(w, r)
	if !ok {
		return
	}
	fns, err := outofssa.ParseAll(req.Source)
	if err == nil && len(fns) != 1 {
		err = fmt.Errorf("serve: /v1/translate takes exactly one function, got %d (use /v1/batch)", len(fns))
	}
	if err != nil {
		s.stats.reqBadRequest.Add(1)
		writeError(w, http.StatusBadRequest, err)
		return
	}

	start := time.Now()
	ctx, cancel, admitted := s.admit(w, r, req)
	if !admitted {
		return
	}
	defer cancel()
	defer s.gate.release()
	s.hold()

	if err := fpTranslate.Inject(); err != nil {
		s.stats.hist.observe(time.Since(start))
		s.stats.reqFailed.Add(1)
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	res, terr := tr.Translate(ctx, fns[0])
	s.stats.hist.observe(time.Since(start))
	canceled := isCanceled(terr)
	s.stats.foldFunc(&res, canceled)
	switch {
	case canceled:
		s.stats.reqCanceled.Add(1)
		writeError(w, http.StatusGatewayTimeout, fmt.Errorf("serve: translation canceled: %w", terr))
		return
	case terr != nil:
		s.stats.reqFailed.Add(1)
		writeError(w, http.StatusUnprocessableEntity, terr)
		return
	}
	if err := fpEncode.Inject(); err != nil {
		s.stats.reqFailed.Add(1)
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	s.stats.reqOK.Add(1)
	resp := &TranslateResponse{
		Name:          fns[0].Name,
		Output:        fns[0].String(),
		Stats:         res.Stats,
		CleanedBlocks: res.CleanedBlocks,
		CacheHits:     res.Cache.Hits,
		CacheMisses:   res.Cache.Misses,
		MemoHit:       res.Cache.MemoHits > 0,
		ElapsedMicros: float64(time.Since(start).Nanoseconds()) / 1e3,
	}
	if res.Alloc != nil {
		resp.RegsUsed = res.Alloc.RegsUsed
		resp.Spills = res.Alloc.Spills
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.stats.reqBatch.Add(1)
	req, tr, ok := s.prepare(w, r)
	if !ok {
		return
	}
	fns, err := outofssa.ParseAll(req.Source)
	if err == nil && len(fns) == 0 {
		err = fmt.Errorf("serve: batch with no functions")
	}
	if err != nil {
		s.stats.reqBadRequest.Add(1)
		writeError(w, http.StatusBadRequest, err)
		return
	}

	start := time.Now()
	ctx, cancel, admitted := s.admit(w, r, req)
	if !admitted {
		return
	}
	defer cancel()
	defer s.gate.release()
	s.hold()

	// Last point where a batch fault can still be reported as a status
	// code: once the 200 header is out, errors can only end the stream.
	if err := fpTranslate.Inject(); err != nil {
		s.stats.hist.observe(time.Since(start))
		s.stats.reqFailed.Add(1)
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	enc := json.NewEncoder(w)

	sum := BatchSummary{Done: true, Funcs: len(fns)}
	var agg outofssa.Stats
	clientGone := false
	for i, res := range tr.Stream(ctx, fns) {
		canceled := isCanceled(res.Err)
		s.stats.foldFunc(&res, canceled)
		item := BatchItem{Index: i, Name: fns[i].Name}
		switch {
		case canceled:
			sum.Canceled++
			item.Canceled = true
			item.Error = res.Err.Error()
		case res.Err != nil:
			sum.Failed++
			item.Error = res.Err.Error()
			var perr *outofssa.PassError
			if errors.As(res.Err, &perr) {
				item.Pass = perr.Pass
			}
		default:
			sum.OK++
			item.Stats = res.Stats
			if !req.Quiet {
				item.Output = fns[i].String()
			}
			if res.Stats != nil {
				agg.Accumulate(res.Stats)
			}
		}
		if !clientGone {
			if err := enc.Encode(&item); err != nil {
				// The client went away; keep consuming the stream so the
				// batch accounting stays complete — ctx (the request
				// context) is already canceled, so remaining work stops at
				// pass boundaries and skipped functions are never yielded.
				clientGone = true
			} else {
				rc.Flush()
			}
		}
	}
	// Functions never claimed before cancellation are not yielded by
	// Stream; account them as canceled — in the summary and in the daemon's
	// cumulative counters, so every submitted function of an admitted batch
	// lands in exactly one functions bucket.
	if skipped := sum.Funcs - sum.OK - sum.Failed - sum.Canceled; skipped > 0 {
		sum.Canceled += skipped
		s.stats.funcsCanceled.Add(int64(skipped))
	}
	sum.Stats = &agg
	sum.ElapsedMicros = float64(time.Since(start).Nanoseconds()) / 1e3
	s.stats.hist.observe(time.Since(start))
	if ctx.Err() != nil || clientGone {
		s.stats.reqCanceled.Add(1)
	} else if sum.Failed > 0 {
		s.stats.reqFailed.Add(1)
	} else {
		s.stats.reqOK.Add(1)
	}
	if !clientGone {
		if enc.Encode(&sum) == nil {
			rc.Flush()
		}
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if err := fpStats.Inject(); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, s.statsResponse())
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, errors.New("draining"))
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// ------------------------------------------------------------- scaffolding

// prepare performs the per-request steps shared by translate and batch:
// drain refusal, body limit, request parsing, translator construction.
func (s *Server) prepare(w http.ResponseWriter, r *http.Request) (TranslateRequest, *outofssa.Translator, bool) {
	if s.draining.Load() {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, errors.New("serve: draining"))
		return TranslateRequest{}, nil, false
	}
	if err := fpDecode.Inject(); err != nil {
		s.stats.reqBadRequest.Add(1)
		writeError(w, http.StatusBadRequest, err)
		return TranslateRequest{}, nil, false
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxRequestBytes)
	req, err := parseRequest(r)
	if err != nil {
		s.stats.reqBadRequest.Add(1)
		status := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			status = http.StatusRequestEntityTooLarge
		}
		writeError(w, status, err)
		return req, nil, false
	}
	if req.Strategy == "" {
		req.Strategy = "sharing"
	}
	// The worker bound is the server's capacity decision, not the
	// client's: per-request workers are deliberately not a request field.
	var extra []outofssa.Option
	if s.cfg.BatchWorkers > 0 {
		extra = append(extra, outofssa.WithWorkers(s.cfg.BatchWorkers))
	}
	if s.memo != nil {
		extra = append(extra, outofssa.WithMemo(s.memo))
	}
	tr, err := req.translator(extra...)
	if err != nil {
		s.stats.reqBadRequest.Add(1)
		writeError(w, http.StatusBadRequest, err)
		return req, nil, false
	}
	return req, tr, true
}

// admit runs admission control and deadline setup. On false the response
// has been written (429/timeout accounting included). On true the caller
// holds a gate slot and owes both cancel and gate.release.
func (s *Server) admit(w http.ResponseWriter, r *http.Request, req TranslateRequest) (context.Context, context.CancelFunc, bool) {
	d := s.cfg.DefaultTimeout
	if req.TimeoutMillis > 0 {
		d = time.Duration(req.TimeoutMillis) * time.Millisecond
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	if err := s.gate.acquire(ctx); err != nil {
		cancel()
		if errors.Is(err, errOverloaded) {
			s.stats.reqOverloaded.Add(1)
			w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
			writeError(w, http.StatusTooManyRequests, errors.New("serve: overloaded: in-flight slots and queue full"))
			return nil, nil, false
		}
		// The caller gave up (disconnect) or timed out while queued.
		s.stats.reqCanceled.Add(1)
		writeError(w, http.StatusGatewayTimeout, fmt.Errorf("serve: queued past deadline: %w", err))
		return nil, nil, false
	}
	return ctx, cancel, true
}

// hold is the test hook: block while the package tests pin the slots.
func (s *Server) hold() {
	if s.holdForTest != nil {
		<-s.holdForTest
	}
}

// retryAfterSeconds derives the 429 Retry-After hint from observed mean
// latency and current congestion: roughly how long until a queue slot
// frees up, at least 1s.
func (s *Server) retryAfterSeconds() int {
	snap := s.stats.hist.snapshot()
	mean := snap.mean() / 1e9 // seconds
	waiting := float64(s.gate.queued.Load()+s.gate.inFlight.Load()) / float64(s.cfg.MaxInFlight)
	sec := int(math.Ceil(mean * waiting))
	if sec < 1 {
		sec = 1
	}
	if sec > 60 {
		sec = 60
	}
	return sec
}

// isCanceled reports whether err is a cancellation outcome (client
// disconnect or deadline) rather than a pass rejection. The pipeline
// returns the context's error for functions stopped at a pass boundary and
// for functions never claimed.
func isCanceled(err error) bool {
	return err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded))
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}
