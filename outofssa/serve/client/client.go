// Package client is the typed Go client of the ssad translation daemon
// (outofssa/serve): single translations, NDJSON-streamed batches with a
// per-item callback, and stats scraping. The load generator cmd/ssaload
// and the serve tests are its consumers.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/outofssa/serve"
)

// Client talks to one daemon. The zero value is not usable; use New. A
// plain Client performs exactly one HTTP attempt per call; WithRetry
// derives one that retries transient failures under a RetryPolicy.
type Client struct {
	base  string
	hc    *http.Client
	retry *RetryPolicy
}

// New builds a client for the daemon at baseURL (e.g.
// "http://127.0.0.1:8377"). hc may be nil for http.DefaultClient; streaming
// batches need a client without a global Timeout (use per-request contexts
// instead).
func New(baseURL string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(baseURL, "/"), hc: hc}
}

// APIError is a non-2xx daemon response. For 429 (overload) RetryAfter
// carries the server's backoff hint.
type APIError struct {
	StatusCode int
	Message    string
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("serve client: %d: %s", e.StatusCode, e.Message)
}

// IsOverloaded reports whether err is the daemon shedding load (HTTP 429);
// the caller should back off for the embedded RetryAfter.
func IsOverloaded(err error) (time.Duration, bool) {
	var ae *APIError
	if errors.As(err, &ae) && ae.StatusCode == http.StatusTooManyRequests {
		return ae.RetryAfter, true
	}
	return 0, false
}

// Translate submits one function. Under WithRetry, transient failures are
// retried and — when the policy sets Hedge — a slow attempt races a
// hedged duplicate (translation is pure, so duplicates are safe).
func (c *Client) Translate(ctx context.Context, req serve.TranslateRequest) (*serve.TranslateResponse, error) {
	if c.retry == nil {
		return c.translateOnce(ctx, req)
	}
	if c.retry.Hedge > 0 {
		return c.translateHedged(ctx, req)
	}
	return retryLoop(ctx, c.retry, func() (*serve.TranslateResponse, error) {
		return c.translateOnce(ctx, req)
	})
}

func (c *Client) translateOnce(ctx context.Context, req serve.TranslateRequest) (*serve.TranslateResponse, error) {
	resp, err := c.post(ctx, "/v1/translate", req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if err := errorFrom(resp); err != nil {
		return nil, err
	}
	var out serve.TranslateResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("serve client: decoding response: %w", err)
	}
	return &out, nil
}

// Batch submits a multi-function source and streams the results: item is
// called once per completed function, in the server's completion order. A
// non-nil item error aborts the stream (closing the connection cancels the
// server-side remainder). The returned summary is the server's trailer
// line; a stream that ended without one returns an error — the batch was
// cut short.
//
// Under WithRetry only failures from before the first delivered item are
// retried: once item has been called, a retry would replay results the
// caller already consumed, so mid-stream failures surface immediately.
func (c *Client) Batch(ctx context.Context, req serve.TranslateRequest, item func(serve.BatchItem) error) (*serve.BatchSummary, error) {
	if c.retry == nil {
		return c.batchOnce(ctx, req, item)
	}
	var delivered bool
	wrapped := func(it serve.BatchItem) error {
		delivered = true
		if item == nil {
			return nil
		}
		return item(it)
	}
	return retryLoopIf(ctx, c.retry, func() (*serve.BatchSummary, error) {
		delivered = false
		return c.batchOnce(ctx, req, wrapped)
	}, func() bool { return !delivered })
}

func (c *Client) batchOnce(ctx context.Context, req serve.TranslateRequest, item func(serve.BatchItem) error) (*serve.BatchSummary, error) {
	resp, err := c.post(ctx, "/v1/batch", req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if err := errorFrom(resp); err != nil {
		return nil, err
	}
	dec := json.NewDecoder(resp.Body)
	for {
		var raw json.RawMessage
		if err := dec.Decode(&raw); err == io.EOF {
			return nil, fmt.Errorf("serve client: batch stream ended without a summary (server canceled or died)")
		} else if err != nil {
			return nil, fmt.Errorf("serve client: decoding batch stream: %w", err)
		}
		var probe struct {
			Done bool `json:"done"`
		}
		if err := json.Unmarshal(raw, &probe); err != nil {
			return nil, fmt.Errorf("serve client: decoding batch line: %w", err)
		}
		if probe.Done {
			var sum serve.BatchSummary
			if err := json.Unmarshal(raw, &sum); err != nil {
				return nil, fmt.Errorf("serve client: decoding batch summary: %w", err)
			}
			return &sum, nil
		}
		var it serve.BatchItem
		if err := json.Unmarshal(raw, &it); err != nil {
			return nil, fmt.Errorf("serve client: decoding batch item: %w", err)
		}
		if item != nil {
			if err := item(it); err != nil {
				return nil, err
			}
		}
	}
}

// Stats scrapes GET /v1/stats (retried under WithRetry).
func (c *Client) Stats(ctx context.Context) (*serve.StatsResponse, error) {
	if c.retry == nil {
		return c.statsOnce(ctx)
	}
	return retryLoop(ctx, c.retry, func() (*serve.StatsResponse, error) {
		return c.statsOnce(ctx)
	})
}

func (c *Client) statsOnce(ctx context.Context) (*serve.StatsResponse, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/stats", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if err := errorFrom(resp); err != nil {
		return nil, err
	}
	var out serve.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("serve client: decoding stats: %w", err)
	}
	return &out, nil
}

func (c *Client) post(ctx context.Context, path string, req serve.TranslateRequest) (*http.Response, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	return c.hc.Do(hreq)
}

// errorFrom turns a non-2xx response into an *APIError (draining the
// body); 2xx returns nil with the body unread.
func errorFrom(resp *http.Response) error {
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		return nil
	}
	defer resp.Body.Close()
	msg := resp.Status
	var er struct {
		Error string `json:"error"`
	}
	if b, err := io.ReadAll(io.LimitReader(resp.Body, 64<<10)); err == nil {
		if json.Unmarshal(b, &er) == nil && er.Error != "" {
			msg = er.Error
		}
	}
	ae := &APIError{StatusCode: resp.StatusCode, Message: msg}
	// RFC 9110 §10.2.3 allows both delta-seconds and an HTTP-date; proxies
	// in front of the daemon commonly rewrite to the date form.
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if sec, err := strconv.Atoi(ra); err == nil {
			if sec > 0 {
				ae.RetryAfter = time.Duration(sec) * time.Second
			}
		} else if when, err := http.ParseTime(ra); err == nil {
			if d := time.Until(when); d > 0 {
				ae.RetryAfter = d
			}
		}
	}
	return ae
}
