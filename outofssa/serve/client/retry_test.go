package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/outofssa/serve"
)

const retrySrc = `
func f {
entry:
  a = param 0
  b = const 2
  c = add a b
  print c
  ret c
}
`

// flaky serves 429 (with the given Retry-After header) for the first n
// requests to a path, then delegates to the real server.
func flaky(t *testing.T, n int64, retryAfter string) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	srv := serve.New(serve.Config{})
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= n {
			if retryAfter != "" {
				w.Header().Set("Retry-After", retryAfter)
			}
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":"shed"}`))
			return
		}
		srv.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)
	return ts, &calls
}

func TestRetryAfterBothForms(t *testing.T) {
	for name, header := range map[string]string{
		"delta-seconds": "7",
		"http-date":     time.Now().Add(7 * time.Second).UTC().Format(http.TimeFormat),
	} {
		t.Run(name, func(t *testing.T) {
			ts, _ := flaky(t, 1, header)
			_, err := New(ts.URL, nil).Translate(context.Background(), serve.TranslateRequest{Source: retrySrc})
			ra, overloaded := IsOverloaded(err)
			if !overloaded {
				t.Fatalf("want 429 APIError, got %v", err)
			}
			if ra < 5*time.Second || ra > 8*time.Second {
				t.Fatalf("RetryAfter = %v, want ~7s", ra)
			}
		})
	}
}

func TestRetryEventuallySucceeds(t *testing.T) {
	ts, calls := flaky(t, 2, "")
	var retries []int
	c := New(ts.URL, nil).WithRetry(RetryPolicy{
		MaxAttempts: 4,
		BaseDelay:   time.Millisecond,
		OnRetry:     func(attempt int, err error, delay time.Duration) { retries = append(retries, attempt) },
	})
	out, err := c.Translate(context.Background(), serve.TranslateRequest{Source: retrySrc})
	if err != nil {
		t.Fatal(err)
	}
	if out.Name != "f" {
		t.Fatalf("translated %q, want f", out.Name)
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d calls, want 3", calls.Load())
	}
	if len(retries) != 2 || retries[0] != 1 || retries[1] != 2 {
		t.Fatalf("OnRetry attempts = %v, want [1 2]", retries)
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	ts, calls := flaky(t, 100, "")
	c := New(ts.URL, nil).WithRetry(RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond})
	_, err := c.Translate(context.Background(), serve.TranslateRequest{Source: retrySrc})
	if _, overloaded := IsOverloaded(err); !overloaded {
		t.Fatalf("want the last 429 back, got %v", err)
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d calls, want 3", calls.Load())
	}
}

func TestRetryHonorsRetryAfterHint(t *testing.T) {
	ts, _ := flaky(t, 1, "1")
	var sawDelay time.Duration
	c := New(ts.URL, nil).WithRetry(RetryPolicy{
		BaseDelay: time.Millisecond,
		MaxDelay:  30 * time.Second,
		OnRetry:   func(_ int, _ error, delay time.Duration) { sawDelay = delay },
	})
	start := time.Now()
	if _, err := c.Translate(context.Background(), serve.TranslateRequest{Source: retrySrc}); err != nil {
		t.Fatal(err)
	}
	if sawDelay != time.Second {
		t.Fatalf("delay = %v, want the server's 1s hint", sawDelay)
	}
	if elapsed := time.Since(start); elapsed < 900*time.Millisecond {
		t.Fatalf("returned after %v, did not actually wait the hint", elapsed)
	}
}

func TestRetryDoesNotRetryBadRequest(t *testing.T) {
	srv := serve.New(serve.Config{})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	var retried bool
	c := New(ts.URL, nil).WithRetry(RetryPolicy{
		BaseDelay: time.Millisecond,
		OnRetry:   func(int, error, time.Duration) { retried = true },
	})
	_, err := c.Translate(context.Background(), serve.TranslateRequest{Source: "not ir"})
	var ae *APIError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusBadRequest {
		t.Fatalf("want 400 APIError, got %v", err)
	}
	if retried {
		t.Fatal("retried a deterministic 400")
	}
}

func TestRetryContextBounded(t *testing.T) {
	ts, calls := flaky(t, 100, "")
	c := New(ts.URL, nil).WithRetry(RetryPolicy{MaxAttempts: 50, BaseDelay: 50 * time.Millisecond, MaxDelay: 50 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Translate(ctx, serve.TranslateRequest{Source: retrySrc})
	if err == nil {
		t.Fatal("want error")
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("retry loop ignored the context deadline")
	}
	if calls.Load() > 5 {
		t.Fatalf("server saw %d calls after context expiry", calls.Load())
	}
}

func TestRetryTransportError(t *testing.T) {
	// A connection-refused transport error is retryable; pointing at a
	// closed port exhausts attempts rather than failing on the first.
	ts := httptest.NewServer(http.NotFoundHandler())
	url := ts.URL
	ts.Close()
	var attempts int
	c := New(url, nil).WithRetry(RetryPolicy{
		MaxAttempts: 3,
		BaseDelay:   time.Millisecond,
		OnRetry:     func(int, error, time.Duration) { attempts++ },
	})
	if _, err := c.Translate(context.Background(), serve.TranslateRequest{Source: retrySrc}); err == nil {
		t.Fatal("want transport error")
	}
	if attempts != 2 {
		t.Fatalf("saw %d retries, want 2", attempts)
	}
}

func TestBatchRetriesOnlyBeforeFirstItem(t *testing.T) {
	ts, calls := flaky(t, 1, "")
	c := New(ts.URL, nil).WithRetry(RetryPolicy{BaseDelay: time.Millisecond})
	var items int
	sum, err := c.Batch(context.Background(), serve.TranslateRequest{Source: retrySrc, Quiet: true},
		func(serve.BatchItem) error { items++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if sum.OK != 1 || items != 1 {
		t.Fatalf("sum.OK=%d items=%d, want 1/1", sum.OK, items)
	}
	if calls.Load() != 2 {
		t.Fatalf("server saw %d calls, want 2 (one shed, one served)", calls.Load())
	}

	// An error from the caller's own item callback must not trigger a
	// replayed batch.
	before := calls.Load()
	sentinel := errors.New("caller abort")
	_, err = c.Batch(context.Background(), serve.TranslateRequest{Source: retrySrc, Quiet: true},
		func(serve.BatchItem) error { return sentinel })
	if !errors.Is(err, sentinel) {
		t.Fatalf("want sentinel back, got %v", err)
	}
	if calls.Load() != before+1 {
		t.Fatalf("server saw %d extra calls, want 1", calls.Load()-before)
	}
}

func TestHedgedTranslate(t *testing.T) {
	srv := serve.New(serve.Config{})
	var calls atomic.Int64
	release := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// First request stalls until released; the hedge must win.
		if calls.Add(1) == 1 {
			<-release
		}
		srv.ServeHTTP(w, r)
	}))
	t.Cleanup(func() { close(release); ts.Close() })

	var hedged bool
	c := New(ts.URL, nil).WithRetry(RetryPolicy{
		Hedge:   20 * time.Millisecond,
		OnRetry: func(_ int, err error, _ time.Duration) { hedged = err == nil },
	})
	start := time.Now()
	out, err := c.Translate(context.Background(), serve.TranslateRequest{Source: retrySrc})
	if err != nil {
		t.Fatal(err)
	}
	if out.Name != "f" {
		t.Fatalf("translated %q, want f", out.Name)
	}
	if !hedged {
		t.Fatal("hedge never launched")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("hedged call waited for the stalled attempt")
	}
	if calls.Load() != 2 {
		t.Fatalf("server saw %d calls, want 2", calls.Load())
	}
}

func TestHedgedFailFast(t *testing.T) {
	// Both attempts fail with 429: the hedged call returns the first error
	// after the second attempt (launched immediately on first failure).
	ts, calls := flaky(t, 100, "")
	c := New(ts.URL, nil).WithRetry(RetryPolicy{Hedge: time.Hour})
	_, err := c.Translate(context.Background(), serve.TranslateRequest{Source: retrySrc})
	if _, overloaded := IsOverloaded(err); !overloaded {
		t.Fatalf("want 429 back, got %v", err)
	}
	if calls.Load() != 2 {
		t.Fatalf("server saw %d calls, want 2", calls.Load())
	}
}

func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{context.Canceled, false},
		{context.DeadlineExceeded, false},
		{&APIError{StatusCode: 429}, true},
		{&APIError{StatusCode: 503}, true},
		{&APIError{StatusCode: 400}, false},
		{&APIError{StatusCode: 422}, false},
		{&APIError{StatusCode: 500}, false},
		{errors.New("read tcp: connection reset by peer"), true},
	}
	for _, tc := range cases {
		if got := Retryable(tc.err); got != tc.want {
			t.Errorf("Retryable(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}
