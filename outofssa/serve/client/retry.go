package client

import (
	"context"
	"errors"
	"math/rand/v2"
	"net/http"
	"time"

	"repro/outofssa/serve"
)

// RetryPolicy describes how a Client derived with WithRetry handles
// transient failures: capped exponential backoff with full jitter,
// honoring the server's Retry-After hint, bounded by the caller's context.
// It is the single source of truth for backoff against the daemon — the
// load generator and every other caller use it instead of hand-rolling
// 429 loops.
type RetryPolicy struct {
	// MaxAttempts bounds total attempts, the first included; <= 0 selects 4.
	MaxAttempts int
	// BaseDelay scales the backoff: the attempt-n retry waits a uniformly
	// random duration in [0, min(BaseDelay·2ⁿ⁻¹, MaxDelay)) — full jitter,
	// so synchronized clients desynchronize. <= 0 selects 100ms.
	BaseDelay time.Duration
	// MaxDelay caps both the backoff and an honored Retry-After hint;
	// <= 0 selects 5s.
	MaxDelay time.Duration
	// Hedge, when positive, arms hedged single-function requests: if a
	// Translate attempt has not returned after this long, a duplicate is
	// launched and the first success wins (the loser is canceled).
	// Translation is pure, so duplicates cost capacity, never correctness.
	Hedge time.Duration
	// OnRetry, when non-nil, observes every retry and hedge launch before
	// its delay: attempt is the 1-based attempt that just failed (or, for a
	// timer-triggered hedge, is still running, with err nil), err the
	// failure, delay the chosen backoff.
	OnRetry func(attempt int, err error, delay time.Duration)
}

func (p *RetryPolicy) maxAttempts() int {
	if p.MaxAttempts <= 0 {
		return 4
	}
	return p.MaxAttempts
}

func (p *RetryPolicy) baseDelay() time.Duration {
	if p.BaseDelay <= 0 {
		return 100 * time.Millisecond
	}
	return p.BaseDelay
}

func (p *RetryPolicy) maxDelay() time.Duration {
	if p.MaxDelay <= 0 {
		return 5 * time.Second
	}
	return p.MaxDelay
}

// delay picks the wait before the retry following failed attempt n,
// honoring a server Retry-After hint when the failure carries one.
func (p *RetryPolicy) delay(attempt int, err error) time.Duration {
	cap := p.maxDelay()
	var ae *APIError
	if errors.As(err, &ae) && ae.RetryAfter > 0 {
		if ae.RetryAfter < cap {
			return ae.RetryAfter
		}
		return cap
	}
	exp := p.baseDelay()
	for i := 1; i < attempt && exp < cap; i++ {
		exp *= 2
	}
	if exp > cap {
		exp = cap
	}
	return time.Duration(rand.Int64N(int64(exp) + 1))
}

// WithRetry derives a Client that applies policy to every call. The
// receiver is untouched, so one underlying connection pool can serve both
// retrying and single-attempt callers.
func (c *Client) WithRetry(policy RetryPolicy) *Client {
	cc := *c
	cc.retry = &policy
	return &cc
}

// Retryable reports whether err is worth retrying against the same daemon:
// load shedding (429), drain (503), and transport-level failures
// (connection reset, refused, broken stream) qualify; context
// cancellation/expiry and every other typed API error (4xx rejections,
// panic-isolation 500s — deterministic for a given request) do not.
func Retryable(err error) bool {
	if err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.StatusCode == http.StatusTooManyRequests ||
			ae.StatusCode == http.StatusServiceUnavailable
	}
	// Not a typed daemon response: the transport failed underneath us.
	return true
}

// retryLoop runs do under p until success, a non-retryable failure,
// attempt exhaustion, or context expiry — returning the last error.
func retryLoop[T any](ctx context.Context, p *RetryPolicy, do func() (T, error)) (T, error) {
	return retryLoopIf(ctx, p, do, nil)
}

// retryLoopIf is retryLoop with an extra per-failure veto (Batch uses it
// to refuse retrying once items were delivered).
func retryLoopIf[T any](ctx context.Context, p *RetryPolicy, do func() (T, error), allow func() bool) (T, error) {
	var zero T
	for attempt := 1; ; attempt++ {
		out, err := do()
		if err == nil {
			return out, nil
		}
		if attempt >= p.maxAttempts() || !Retryable(err) || ctx.Err() != nil ||
			(allow != nil && !allow()) {
			return zero, err
		}
		delay := p.delay(attempt, err)
		if p.OnRetry != nil {
			p.OnRetry(attempt, err, delay)
		}
		select {
		case <-ctx.Done():
			return zero, err
		case <-time.After(delay):
		}
	}
}

// translateHedged is Translate's hedged mode: one attempt starts
// immediately; if it neither succeeds nor fails within Hedge, a duplicate
// races it. A failed attempt also launches the duplicate at once
// (fail-fast hedging doubles as one retry). First success wins and cancels
// the loser; a non-retryable failure wins immediately.
func (c *Client) translateHedged(ctx context.Context, req serve.TranslateRequest) (*serve.TranslateResponse, error) {
	hctx, cancel := context.WithCancel(ctx)
	defer cancel() // reels in whichever attempt lost

	type result struct {
		out *serve.TranslateResponse
		err error
	}
	// Buffered to both attempts: the loser's send must never block a
	// goroutine forever after we return.
	ch := make(chan result, 2)
	launch := func() {
		go func() {
			out, err := c.translateOnce(hctx, req)
			ch <- result{out, err}
		}()
	}
	launch()
	timer := time.NewTimer(c.retry.Hedge)
	defer timer.Stop()

	launched, done := 1, 0
	var firstErr error
	for {
		select {
		case <-timer.C:
			if launched < 2 {
				if c.retry.OnRetry != nil {
					c.retry.OnRetry(1, nil, 0)
				}
				launch()
				launched++
			}
		case r := <-ch:
			done++
			if r.err == nil {
				return r.out, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
			if !Retryable(r.err) || ctx.Err() != nil {
				return nil, r.err
			}
			if launched < 2 {
				// The first attempt failed before the hedge timer: start
				// the second immediately rather than waiting out the timer.
				if c.retry.OnRetry != nil {
					c.retry.OnRetry(1, r.err, 0)
				}
				launch()
				launched++
			} else if done == launched {
				return nil, firstErr
			}
		}
	}
}
