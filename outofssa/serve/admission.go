package serve

import (
	"context"
	"errors"
	"sync/atomic"
)

// errOverloaded is returned by gate.acquire when both the in-flight slots
// and the wait queue are full; the handlers turn it into 429 with a
// Retry-After hint.
var errOverloaded = errors.New("serve: overloaded")

// gate is the admission controller: a bounded in-flight semaphore with a
// bounded wait queue in front of it. A request first tries to take a slot
// outright; failing that it joins the queue (blocking on the semaphore)
// unless the queue is already at capacity, in which case it is rejected
// immediately — the server never buffers unbounded work, it sheds it.
// Both depths are observable as gauges for /v1/stats.
type gate struct {
	sem      chan struct{}
	maxQueue int64
	queued   atomic.Int64
	inFlight atomic.Int64
}

func newGate(maxInFlight, maxQueue int) *gate {
	return &gate{sem: make(chan struct{}, maxInFlight), maxQueue: int64(maxQueue)}
}

// acquire admits the caller or fails: errOverloaded when the queue is
// full, the context's error when the caller gave up while queued. On nil
// return the caller holds a slot and must release it.
func (g *gate) acquire(ctx context.Context) error {
	select {
	case g.sem <- struct{}{}:
		g.inFlight.Add(1)
		return nil
	default:
	}
	if g.queued.Add(1) > g.maxQueue {
		g.queued.Add(-1)
		return errOverloaded
	}
	defer g.queued.Add(-1)
	select {
	case g.sem <- struct{}{}:
		g.inFlight.Add(1)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// release returns the caller's slot.
func (g *gate) release() {
	g.inFlight.Add(-1)
	<-g.sem
}
