// Chaos suite: a self-hosted daemon driven by mixed translate/batch
// traffic while a seeded failpoint schedule fires in every layer (parser,
// pass pipeline, memo, serve handlers). The invariants under fault:
//
//   - the daemon never dies — every panic is contained to its request;
//   - every request ends in exactly one of {2xx, typed 4xx/5xx, client
//     timeout} — no hung or unclassifiable outcomes;
//   - the /v1/stats books balance: requests land in exactly one terminal
//     bucket, admission gauges return to zero, goroutines do not leak;
//   - after the schedule is disarmed, traffic translates correctly against
//     the Interpret/Equivalent oracle — faults never corrupt results.
//
// SSAD_CHAOS_DURATION stretches the traffic window (CI runs 15s under
// -race; the default keeps `go test` fast).
package serve_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/outofssa"
	"repro/outofssa/serve"
	"repro/outofssa/serve/client"
)

// chaosDuration is the traffic window, overridable via SSAD_CHAOS_DURATION.
func chaosDuration(t *testing.T) time.Duration {
	t.Helper()
	if v := os.Getenv("SSAD_CHAOS_DURATION"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			t.Fatalf("bad SSAD_CHAOS_DURATION %q: %v", v, err)
		}
		return d
	}
	return 400 * time.Millisecond
}

// chaosSources builds a small pool of distinct single-function sources (so
// the memo sees both misses and hits) plus one multi-function batch source.
func chaosSources(t *testing.T) (singles []string, batch string) {
	t.Helper()
	for seed := int64(1); seed <= 6; seed++ {
		p := outofssa.DefaultProfile(fmt.Sprintf("chaos%d", seed), seed)
		p.Funcs = 1
		p.MaxStmts = 12
		p.MinStmts = 4
		fns := outofssa.Generate(p)
		singles = append(singles, fns[0].String()+"\n")
	}
	pb := outofssa.DefaultProfile("chaosbatch", 99)
	pb.Funcs = 4
	pb.MaxStmts = 10
	pb.MinStmts = 3
	var b strings.Builder
	for _, f := range outofssa.Generate(pb) {
		b.WriteString(f.String())
		b.WriteString("\n")
	}
	return singles, b.String()
}

// outcomes tallies terminal request classifications across the swarm.
type outcomes struct {
	ok      atomic.Int64 // 2xx
	typed   atomic.Int64 // *client.APIError (4xx/5xx with a wire body)
	timeout atomic.Int64 // client-side context expiry
	other   atomic.Int64 // anything else — must stay zero

	mu       sync.Mutex
	examples []string // first few unclassifiable errors, for the report
}

func (o *outcomes) classify(err error) {
	switch {
	case err == nil:
		o.ok.Add(1)
	case func() bool { var ae *client.APIError; return errors.As(err, &ae) }():
		o.typed.Add(1)
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		o.timeout.Add(1)
	default:
		o.other.Add(1)
		o.mu.Lock()
		if len(o.examples) < 5 {
			o.examples = append(o.examples, err.Error())
		}
		o.mu.Unlock()
	}
}

// quiesce polls stats until the admission gauges drop to zero and the
// request books balance, then returns the settled scrape.
func quiesce(t *testing.T, cl *client.Client) *serve.StatsResponse {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	var last *serve.StatsResponse
	for time.Now().Before(deadline) {
		st, err := cl.Stats(context.Background())
		if err == nil {
			last = st
			accounted := st.Requests.OK + st.Requests.Failed + st.Requests.Canceled +
				st.Requests.Overloaded + st.Requests.BadRequest + st.Requests.Panicked
			if st.InFlight == 0 && st.Queued == 0 && accounted == st.Requests.Translate+st.Requests.Batch {
				return st
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	if last == nil {
		t.Fatal("stats never became scrapable")
	}
	return last
}

func assertBooksBalance(t *testing.T, st *serve.StatsResponse) {
	t.Helper()
	accounted := st.Requests.OK + st.Requests.Failed + st.Requests.Canceled +
		st.Requests.Overloaded + st.Requests.BadRequest + st.Requests.Panicked
	if got := st.Requests.Translate + st.Requests.Batch; accounted != got {
		t.Errorf("request books do not balance: %d translate+batch vs %d accounted (%+v)",
			got, accounted, st.Requests)
	}
	if st.InFlight != 0 || st.Queued != 0 {
		t.Errorf("admission gauges did not return to zero: in_flight=%d queued=%d",
			st.InFlight, st.Queued)
	}
}

// chaosSchedule arms every registered layer: parser, pipeline (both the
// generic per-pass point and the out-of-SSA entry), memo store and
// materialize, and the serve handler stages. Panic kinds sit only where
// the containment story is interesting: inside the pipeline (recovered
// into *PassError by Apply) and in the handler (recovered into a 500 by
// the isolation middleware).
const chaosSchedule = "parse.func=err:0.03," +
	"pipeline.pass=err:0.02," +
	"pipeline.outofssa=panic:every=29," +
	"memo.store=err:0.25," +
	"memo.materialize=sleep=200us:0.25," +
	"serve.decode=err:0.02," +
	"serve.translate=panic:every=17," +
	"serve.encode=err:0.05," +
	"serve.stats=err:every=2"

func TestChaos(t *testing.T) {
	singles, batchSrc := chaosSources(t)
	ts, cl := startServer(t, serve.Config{MaxInFlight: 4, MaxQueue: 8, BatchWorkers: 2})
	goroutinesBefore := runtime.NumGoroutine()

	if err := outofssa.EnableFaults(chaosSchedule, 20260808); err != nil {
		t.Fatal(err)
	}
	defer outofssa.DisableFaults()

	var out outcomes
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for worker := 0; worker < 8; worker++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(worker), 7))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				ctx := context.Background()
				var cancel context.CancelFunc = func() {}
				req := serve.TranslateRequest{Quiet: true}
				roll := rng.IntN(10)
				switch {
				case roll < 2:
					// Aggressive client-side timeout: disconnects mid-queue
					// and mid-translation.
					ctx, cancel = context.WithTimeout(ctx, time.Duration(1+rng.IntN(3))*time.Millisecond)
					req.Source = singles[rng.IntN(len(singles))]
					_, err := cl.Translate(ctx, req)
					out.classify(err)
				case roll < 3:
					// Tiny server-side deadline: forces 504s.
					req.TimeoutMillis = 1
					req.Source = singles[rng.IntN(len(singles))]
					_, err := cl.Translate(ctx, req)
					out.classify(err)
				case roll < 6:
					req.Source = batchSrc
					_, err := cl.Batch(ctx, req, nil)
					out.classify(err)
				default:
					req.Source = singles[rng.IntN(len(singles))]
					_, err := cl.Translate(ctx, req)
					out.classify(err)
				}
				cancel()
				if i%50 == 0 {
					// Scrape under fire, so serve.stats fires too; outcome
					// intentionally unclassified (stats is not a books route).
					sctx, scancel := context.WithTimeout(context.Background(), time.Second)
					_, _ = cl.Stats(sctx)
					scancel()
				}
			}
		}(worker)
	}
	time.Sleep(chaosDuration(t))
	close(stop)
	wg.Wait()
	// Guarantee the stats failpoint sees enough evals regardless of how far
	// the swarm got in the window (under -race it runs far fewer ops).
	for i := 0; i < 4; i++ {
		sctx, scancel := context.WithTimeout(context.Background(), time.Second)
		_, _ = cl.Stats(sctx)
		scancel()
	}
	outofssa.DisableFaults()

	st := quiesce(t, cl)
	assertBooksBalance(t, st)

	// The daemon survived (trivially — we got a scrape), and it actually
	// absorbed panics, not just errors.
	if st.PanicTotal == 0 {
		t.Error("no panics were recovered; the panic failpoints never reached the middleware")
	}
	if st.Requests.Panicked == 0 {
		t.Error("no requests landed in the panicked bucket")
	}
	if out.ok.Load() == 0 {
		t.Error("no request succeeded under chaos; the schedule is too hot to prove liveness")
	}
	if n := out.other.Load(); n != 0 {
		t.Errorf("%d requests ended in an unclassifiable outcome (want {2xx, typed 4xx/5xx, client timeout}); e.g. %q",
			n, out.examples)
	}

	// Every armed layer must have delivered faults, or the run proved
	// nothing about that layer.
	snap := outofssa.FaultSnapshot()
	for _, point := range []string{
		"parse.func", "pipeline.pass", "pipeline.outofssa",
		"memo.store", "memo.materialize",
		"serve.decode", "serve.translate", "serve.encode", "serve.stats",
	} {
		if snap[point].Fires == 0 {
			t.Errorf("failpoint %s never fired (evals=%d); schedule or traffic shape is off",
				point, snap[point].Evals)
		}
	}

	// Post-chaos correctness: with the schedule disarmed, served output
	// must match a local reference translation on the interpreter oracle.
	for _, src := range singles[:3] {
		resp, err := cl.Translate(context.Background(), serve.TranslateRequest{Source: src})
		if err != nil {
			t.Fatalf("post-chaos translate: %v", err)
		}
		pristine := outofssa.MustParse(src)
		served, err := outofssa.ParseAll(resp.Output)
		if err != nil {
			t.Fatalf("post-chaos output does not parse: %v", err)
		}
		for trial := int64(0); trial < 3; trial++ {
			params := make([]int64, pristine.NumParams)
			for i := range params {
				params[i] = trial*7 + int64(i) + 1
			}
			want, err := outofssa.Interpret(pristine, params, 20000)
			if err != nil {
				continue // reference run didn't terminate cleanly; not an oracle case
			}
			got, err := outofssa.Interpret(served[0], params, 20000)
			if err != nil {
				t.Fatalf("post-chaos served output failed to execute: %v", err)
			}
			if !outofssa.Equivalent(want, got) {
				t.Fatalf("post-chaos behaviour differs for params %v:\n%s", params, resp.Output)
			}
		}
	}

	// Goroutine stability: the swarm, its timers, and every aborted request
	// must unwind. httptest keep-alive conns linger briefly; poll with
	// tolerance.
	ts.CloseClientConnections()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= goroutinesBefore+8 {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > goroutinesBefore+8 {
		buf := make([]byte, 1<<20)
		t.Errorf("goroutines grew %d -> %d under chaos\n%s",
			goroutinesBefore, n, buf[:runtime.Stack(buf, true)])
	}
}

// TestAdmissionBooksUnderDisconnectAndFaults is the focused satellite of
// TestChaos: deterministic every-N handler faults combined with mid-request
// client disconnects, asserting the admission accounting — not the fault
// surface — stays exact. Extends the TestBatchClientDisconnect leak story
// with faults in the mix.
func TestAdmissionBooksUnderDisconnectAndFaults(t *testing.T) {
	singles, batchSrc := chaosSources(t)
	_, cl := startServer(t, serve.Config{MaxInFlight: 2, MaxQueue: 2, BatchWorkers: 2})
	goroutinesBefore := runtime.NumGoroutine()

	if err := outofssa.EnableFaults("serve.translate=panic:every=5,serve.encode=err:every=7", 7); err != nil {
		t.Fatal(err)
	}
	defer outofssa.DisableFaults()

	var wg sync.WaitGroup
	for worker := 0; worker < 6; worker++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				switch {
				case i%3 == 0:
					// Disconnect mid-batch: cancel while the stream runs.
					ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
					_, _ = cl.Batch(ctx, serve.TranslateRequest{Source: batchSrc, Quiet: true}, nil)
					cancel()
				case i%3 == 1:
					ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
					_, _ = cl.Translate(ctx, serve.TranslateRequest{Source: singles[i%len(singles)], Quiet: true})
					cancel()
				default:
					_, _ = cl.Translate(context.Background(), serve.TranslateRequest{Source: singles[i%len(singles)], Quiet: true})
				}
			}
		}(worker)
	}
	wg.Wait()
	outofssa.DisableFaults()

	st := quiesce(t, cl)
	assertBooksBalance(t, st)
	if st.PanicTotal == 0 {
		t.Error("handler panic failpoint never fired")
	}

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && runtime.NumGoroutine() > goroutinesBefore+8 {
		time.Sleep(50 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > goroutinesBefore+8 {
		t.Errorf("goroutines grew %d -> %d", goroutinesBefore, n)
	}
}

// TestMemoSnapshotRestoresHitRate proves the restart story end to end:
// traffic warms server 1's memo, the memo is snapshotted, a brand-new
// server loads it, and replayed traffic hits the memo immediately.
func TestMemoSnapshotRestoresHitRate(t *testing.T) {
	singles, _ := chaosSources(t)

	s1 := serve.New(serve.Config{})
	ts1 := httptest.NewServer(s1)
	cl1 := client.New(ts1.URL, ts1.Client())
	for _, src := range singles {
		if _, err := cl1.Translate(context.Background(), serve.TranslateRequest{Source: src, Quiet: true}); err != nil {
			t.Fatal(err)
		}
	}
	var snap bytes.Buffer
	if err := s1.Memo().Snapshot(&snap); err != nil {
		t.Fatal(err)
	}
	ts1.Close()

	s2 := serve.New(serve.Config{})
	loaded, skipped, err := s2.Memo().Load(bytes.NewReader(snap.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded != len(singles) || skipped != 0 {
		t.Fatalf("loaded %d skipped %d, want %d/0", loaded, skipped, len(singles))
	}
	ts2 := httptest.NewServer(s2)
	t.Cleanup(ts2.Close)
	cl2 := client.New(ts2.URL, ts2.Client())

	for _, src := range singles {
		resp, err := cl2.Translate(context.Background(), serve.TranslateRequest{Source: src})
		if err != nil {
			t.Fatal(err)
		}
		if !resp.MemoHit {
			t.Fatalf("replayed request missed the restored memo")
		}
		// Restored entries must still behave: oracle the served output.
		pristine := outofssa.MustParse(src)
		served, err := outofssa.ParseAll(resp.Output)
		if err != nil {
			t.Fatalf("restored output does not parse: %v", err)
		}
		params := make([]int64, pristine.NumParams)
		for i := range params {
			params[i] = int64(i) + 3
		}
		if want, err := outofssa.Interpret(pristine, params, 20000); err == nil {
			got, err := outofssa.Interpret(served[0], params, 20000)
			if err != nil || !outofssa.Equivalent(want, got) {
				t.Fatalf("restored memo entry produced wrong behaviour (err=%v)", err)
			}
		}
	}
	st, err := cl2.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Memo == nil || st.Memo.Hits == 0 {
		t.Fatalf("stats report no memo hits after restore: %+v", st.Memo)
	}
}
