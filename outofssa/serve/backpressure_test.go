// White-box tests of admission control: these pin the in-flight slots
// deterministically through the holdForTest hook, which the black-box
// tests in serve_test.go cannot reach. (They must live in package serve;
// the typed client package cannot be imported here — it would cycle.)
package serve

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/outofssa"
)

func testSource(t *testing.T) string {
	t.Helper()
	p := outofssa.DefaultProfile("backpressure", 5)
	p.Funcs = 1
	return outofssa.Generate(p)[0].String()
}

// pinServer builds a server whose admitted requests block until release is
// called, so tests can fill the in-flight slots deterministically.
func pinServer(t *testing.T, cfg Config) (s *Server, ts *httptest.Server, release func()) {
	t.Helper()
	hold := make(chan struct{})
	s = New(cfg)
	s.holdForTest = hold
	ts = httptest.NewServer(s)
	t.Cleanup(ts.Close)
	var once sync.Once
	release = func() { once.Do(func() { close(hold) }) }
	t.Cleanup(release) // never leave blocked handlers behind a failed test
	return s, ts, release
}

func post(t *testing.T, url, src string) *http.Response {
	t.Helper()
	resp, err := http.Post(url+"/v1/translate", "text/plain", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// waitInFlight blocks until the gate shows n admitted requests.
func waitInFlight(t *testing.T, s *Server, n int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for s.gate.inFlight.Load() != n {
		if time.Now().After(deadline) {
			t.Fatalf("in-flight never reached %d (at %d)", n, s.gate.inFlight.Load())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestOverloadSheds429 fills the single in-flight slot (no queue) and
// checks the next request is shed with 429 + a positive Retry-After while
// the pinned request still completes once released.
func TestOverloadSheds429(t *testing.T) {
	s, ts, release := pinServer(t, Config{MaxInFlight: 1, MaxQueue: -1})
	src := testSource(t)

	type result struct {
		status int
		body   string
	}
	pinned := make(chan result, 1)
	go func() {
		resp := post(t, ts.URL, src)
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		pinned <- result{resp.StatusCode, string(b)}
	}()
	waitInFlight(t, s, 1)

	resp := post(t, ts.URL, src)
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full server answered %d: %s", resp.StatusCode, b)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("429 without usable Retry-After %q: %v", resp.Header.Get("Retry-After"), err)
	}

	release()
	got := <-pinned
	if got.status != http.StatusOK {
		t.Fatalf("pinned request died: %d: %s", got.status, got.body)
	}

	// Shed requests are never admitted: they must not appear in the latency
	// histogram or the ok/failed/canceled request counters.
	if n := s.stats.reqOverloaded.Load(); n != 1 {
		t.Fatalf("overloaded counter = %d, want 1", n)
	}
	if n := s.stats.reqOK.Load(); n != 1 {
		t.Fatalf("ok counter = %d, want 1", n)
	}
	if n := s.stats.hist.snapshot().count; n != 1 {
		t.Fatalf("latency count = %d, want 1 (shed requests must not be observed)", n)
	}
}

// TestQueueAdmitsThenSheds: with one slot and one queue seat, the second
// request waits (no 429) and the third is shed; releasing drains the queue.
func TestQueueAdmitsThenSheds(t *testing.T) {
	s, ts, release := pinServer(t, Config{MaxInFlight: 1, MaxQueue: 1})
	src := testSource(t)

	statuses := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp := post(t, ts.URL, src)
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			statuses <- resp.StatusCode
		}()
		if i == 0 {
			waitInFlight(t, s, 1)
		} else {
			deadline := time.Now().Add(5 * time.Second)
			for s.gate.queued.Load() != 1 {
				if time.Now().After(deadline) {
					t.Fatalf("second request never queued (queued=%d)", s.gate.queued.Load())
				}
				time.Sleep(time.Millisecond)
			}
		}
	}

	resp := post(t, ts.URL, src)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow past the queue answered %d", resp.StatusCode)
	}

	release()
	for i := 0; i < 2; i++ {
		if st := <-statuses; st != http.StatusOK {
			t.Fatalf("admitted request %d answered %d", i, st)
		}
	}
	if in, q := s.gate.inFlight.Load(), s.gate.queued.Load(); in != 0 || q != 0 {
		t.Fatalf("gauges not restored: in_flight=%d queued=%d", in, q)
	}
}

// TestConcurrentStatsIntegrity hammers translate, batch, bad requests, and
// stats scrapes concurrently (run under -race in CI) and then checks the
// books balance: every issued request is accounted exactly once.
func TestConcurrentStatsIntegrity(t *testing.T) {
	s := New(Config{MaxInFlight: 4})
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	src := testSource(t)
	batchSrc := src + "\n" + strings.ReplaceAll(src, "func ", "func second_")

	const perKind = 20
	var wg sync.WaitGroup
	for i := 0; i < perKind; i++ {
		wg.Add(4)
		go func() {
			defer wg.Done()
			resp := post(t, ts.URL, src)
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}()
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/batch?quiet=true", "text/plain", strings.NewReader(batchSrc))
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}()
		go func() {
			defer wg.Done()
			resp := post(t, ts.URL, "this does not parse")
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}()
		go func() {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/v1/stats")
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}()
	}
	wg.Wait()

	st := s.statsResponse()
	if st.Requests.Translate != 2*perKind || st.Requests.Batch != perKind {
		t.Fatalf("request counters: %+v", st.Requests)
	}
	admitted := st.Requests.OK + st.Requests.Failed + st.Requests.Canceled
	if admitted != 2*perKind || st.Requests.BadRequest != perKind {
		t.Fatalf("admission books don't balance: %+v", st.Requests)
	}
	if st.Latency.Count != admitted {
		t.Fatalf("latency count %d != admitted %d", st.Latency.Count, admitted)
	}
	if want := int64(3 * perKind); st.Functions.OK != want {
		t.Fatalf("functions ok = %d, want %d", st.Functions.OK, want)
	}
}

// TestHistogramQuantiles sanity-checks the lock-free histogram: a known
// distribution lands within one exponential bucket (ratio 2^¼ ≈ 19%) of
// the true quantiles and the snapshot is internally ordered.
func TestHistogramQuantiles(t *testing.T) {
	var h histogram
	for i := 1; i <= 1000; i++ {
		h.observe(time.Duration(i) * 100 * time.Microsecond) // 0.1ms .. 100ms uniform
	}
	snap := h.snapshot()
	if snap.count != 1000 {
		t.Fatalf("count %d", snap.count)
	}
	for _, c := range []struct {
		q, trueNs float64
	}{{0.50, 50e6}, {0.90, 90e6}, {0.99, 99e6}} {
		got := snap.quantile(c.q)
		if got < c.trueNs/1.3 || got > c.trueNs*1.3 {
			t.Errorf("q%.0f = %.2fms, want within a bucket of %.2fms", c.q*100, got/1e6, c.trueNs/1e6)
		}
	}
	if p50, p99 := snap.quantile(0.5), snap.quantile(0.99); p50 > p99 {
		t.Fatalf("quantiles not monotonic: p50=%f p99=%f", p50, p99)
	}
	if snap.maxNs < int64(snap.quantile(0.99)) {
		t.Fatalf("max %d below p99 %f", snap.maxNs, snap.quantile(0.99))
	}
}
