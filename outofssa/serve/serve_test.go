// Black-box tests of the serving surface, driven over real HTTP through
// the typed client: round-trips, per-request options, batch streaming,
// client disconnect mid-batch, deadlines, and drain. The backpressure
// tests that need the internal hold hook live in backpressure_test.go.
package serve_test

import (
	"bufio"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/outofssa"
	"repro/outofssa/serve"
	"repro/outofssa/serve/client"
)

// corpus renders n generated SSA functions to the wire format.
func corpus(t *testing.T, n, stmts int) string {
	t.Helper()
	p := outofssa.DefaultProfile("servetest", 11)
	p.Funcs = n
	if stmts > 0 {
		p.MaxStmts = stmts
		p.MinStmts = stmts / 3
	}
	var b strings.Builder
	for _, f := range outofssa.Generate(p) {
		b.WriteString(f.String())
		b.WriteString("\n")
	}
	return b.String()
}

func startServer(t *testing.T, cfg serve.Config) (*httptest.Server, *client.Client) {
	t.Helper()
	ts := httptest.NewServer(serve.New(cfg))
	t.Cleanup(ts.Close)
	return ts, client.New(ts.URL, ts.Client())
}

func TestTranslateRoundTrip(t *testing.T) {
	_, cl := startServer(t, serve.Config{})
	src := corpus(t, 1, 0)
	for _, name := range outofssa.StrategyNames() {
		resp, err := cl.Translate(context.Background(), serve.TranslateRequest{
			Source:   src,
			Strategy: name,
		})
		if err != nil {
			t.Fatalf("strategy %s: %v", name, err)
		}
		if resp.Name == "" || resp.Output == "" || resp.Stats == nil {
			t.Fatalf("strategy %s: incomplete response %+v", name, resp)
		}
		if strings.Contains(resp.Output, "phi ") {
			t.Fatalf("strategy %s: output still contains φs:\n%s", name, resp.Output)
		}
		// The translated output must itself parse: the wire format is closed
		// under translation.
		if _, err := outofssa.ParseAll(resp.Output); err != nil {
			t.Fatalf("strategy %s: output does not re-parse: %v", name, err)
		}
	}
}

// TestTranslateRawBodyAndQuery exercises the curl path: raw textual IR as
// the body, options as query parameters, no JSON anywhere in the request.
func TestTranslateRawBodyAndQuery(t *testing.T) {
	ts, _ := startServer(t, serve.Config{})
	src := corpus(t, 1, 0)
	resp, err := http.Post(ts.URL+"/v1/translate?strategy=intersect&graph=true&livecheck=false",
		"text/plain", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), `"output"`) {
		t.Fatalf("no output field in %s", body)
	}
}

func TestTranslateRejections(t *testing.T) {
	ts, cl := startServer(t, serve.Config{MaxRequestBytes: 64 << 10})
	ctx := context.Background()
	cases := []struct {
		name string
		req  serve.TranslateRequest
		want int
	}{
		{"unknown strategy", serve.TranslateRequest{Source: corpus(t, 1, 0), Strategy: "bogus"}, http.StatusBadRequest},
		{"parse failure", serve.TranslateRequest{Source: "func f {\nentry:\n  x = frobnicate y\n  ret x\n}"}, http.StatusBadRequest},
		{"multiple functions", serve.TranslateRequest{Source: corpus(t, 2, 0)}, http.StatusBadRequest},
		{"oversized body", serve.TranslateRequest{Source: strings.Repeat("x", 128<<10)}, http.StatusRequestEntityTooLarge},
	}
	for _, c := range cases {
		_, err := cl.Translate(ctx, c.req)
		var ae *client.APIError
		if !errors.As(err, &ae) || ae.StatusCode != c.want {
			t.Errorf("%s: want status %d, got %v", c.name, c.want, err)
		}
	}
	// Wrong method and unknown paths 404/405 rather than hang.
	resp, err := http.Get(ts.URL + "/v1/translate")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/translate: status %d", resp.StatusCode)
	}
}

func TestBatchStreamsItemsAndSummary(t *testing.T) {
	const n = 16
	_, cl := startServer(t, serve.Config{})
	var items []serve.BatchItem
	sum, err := cl.Batch(context.Background(),
		serve.TranslateRequest{Source: corpus(t, n, 0), Strategy: "valueis"},
		func(it serve.BatchItem) error { items = append(items, it); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != n {
		t.Fatalf("streamed %d items, want %d", len(items), n)
	}
	seen := make(map[int]bool)
	for _, it := range items {
		if it.Error != "" || it.Stats == nil || it.Output == "" {
			t.Fatalf("incomplete item %+v", it)
		}
		if seen[it.Index] {
			t.Fatalf("index %d streamed twice", it.Index)
		}
		seen[it.Index] = true
	}
	if sum.Funcs != n || sum.OK != n || sum.Failed != 0 || sum.Canceled != 0 {
		t.Fatalf("bad summary %+v", sum)
	}
	if sum.Stats == nil || sum.Stats.Phis == 0 {
		t.Fatalf("summary aggregate missing: %+v", sum.Stats)
	}
}

// TestBatchClientDisconnect proves the tentpole cancellation property: a
// client that drops mid-/v1/batch cancels the remaining work (functions
// stop at pass boundaries, never-claimed ones are never run) and the
// server's accounting still ends complete and consistent.
func TestBatchClientDisconnect(t *testing.T) {
	const n = 64
	ts, cl := startServer(t, serve.Config{BatchWorkers: 1})
	src := corpus(t, n, 4000) // big functions so the batch outlives the disconnect

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/batch?quiet=true",
		strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read exactly one streamed item, then vanish.
	if _, err := bufio.NewReader(resp.Body).ReadString('\n'); err != nil {
		t.Fatal(err)
	}
	cancel()
	resp.Body.Close()

	// The handler keeps consuming the stream after the client is gone so the
	// batch accounting completes; poll the stats until it has.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := cl.Stats(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		total := st.Functions.OK + st.Functions.Failed + st.Functions.Canceled
		if st.Requests.Canceled == 1 && total == n {
			if st.Functions.Canceled == 0 {
				t.Fatalf("disconnect canceled nothing: %+v", st.Functions)
			}
			if st.Functions.OK == 0 {
				t.Fatalf("nothing completed before the disconnect: %+v", st.Functions)
			}
			if st.Functions.Failed != 0 {
				t.Fatalf("disconnect misclassified as failure: %+v", st.Functions)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("batch accounting never completed: requests=%+v functions=%+v (want canceled=1, %d funcs)",
				st.Requests, st.Functions, n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestBatchDeadline: a request-scoped deadline cancels the remainder of a
// batch but the summary still arrives (the connection is alive — only the
// translation context expired).
func TestBatchDeadline(t *testing.T) {
	const n = 64
	_, cl := startServer(t, serve.Config{BatchWorkers: 1})
	sum, err := cl.Batch(context.Background(),
		serve.TranslateRequest{Source: corpus(t, n, 4000), Quiet: true, TimeoutMillis: 100},
		nil)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Funcs != n || sum.OK+sum.Failed+sum.Canceled != n {
		t.Fatalf("summary does not account every function: %+v", sum)
	}
	if sum.Canceled == 0 {
		t.Fatalf("30ms deadline canceled nothing across %d large functions: %+v", n, sum)
	}
}

func TestDrainRefusesNewWork(t *testing.T) {
	ts, cl := startServer(t, serve.Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy server: /healthz = %d", resp.StatusCode)
	}

	// Reach inside via the handler we constructed the test server with.
	ts.Config.Handler.(*serve.Server).Drain()

	_, err = cl.Translate(context.Background(), serve.TranslateRequest{Source: corpus(t, 1, 0)})
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining server accepted work: %v", err)
	}
	if ae.RetryAfter <= 0 {
		t.Fatalf("draining 503 without Retry-After: %+v", ae)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining server: /healthz = %d", resp.StatusCode)
	}
}

func TestStatsAccounting(t *testing.T) {
	const n = 8
	_, cl := startServer(t, serve.Config{})
	ctx := context.Background()
	src := corpus(t, 1, 0)
	for i := 0; i < n; i++ {
		if _, err := cl.Translate(ctx, serve.TranslateRequest{Source: src}); err != nil {
			t.Fatal(err)
		}
	}
	st, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests.Translate != n || st.Requests.OK != n || st.Functions.OK != n {
		t.Fatalf("request accounting: %+v / %+v", st.Requests, st.Functions)
	}
	if st.Latency.Count != n || st.Latency.P50Micros <= 0 ||
		st.Latency.P50Micros > st.Latency.P99Micros || st.Latency.P99Micros > st.Latency.MaxMicros {
		t.Fatalf("latency snapshot incoherent: %+v", st.Latency)
	}
	if st.Translation.Phis == 0 || st.Translation.IntersectionTests == 0 {
		t.Fatalf("Figure 5 aggregate missing: %+v", st.Translation)
	}
	if st.Cache.Misses == 0 {
		t.Fatalf("cache accounting missing: %+v", st.Cache)
	}
	// Same function 8 times through a shared translator: the analysis cache
	// must have hits, and the scrape's hit rate must agree with the tallies.
	if st.Cache.Hits == 0 {
		t.Fatalf("no cache hits across %d identical requests: %+v", n, st.Cache)
	}
	if st.PhaseNanos.Coalesce == 0 {
		t.Fatalf("phase timings missing: %+v", st.PhaseNanos)
	}
	if st.InFlight != 0 || st.Queued != 0 || st.Draining {
		t.Fatalf("idle gauges wrong: in_flight=%d queued=%d draining=%v", st.InFlight, st.Queued, st.Draining)
	}
}
