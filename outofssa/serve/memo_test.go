package serve_test

import (
	"context"
	"testing"

	"repro/outofssa"
	"repro/outofssa/serve"
)

// TestServerMemoHit: repeating a request against the server's built-in
// memo marks the repeat as served from the store, with identical output,
// and the /v1/stats memo section reflects the traffic.
func TestServerMemoHit(t *testing.T) {
	_, cl := startServer(t, serve.Config{})
	src := corpus(t, 1, 0)
	ctx := context.Background()

	first, err := cl.Translate(ctx, serve.TranslateRequest{Source: src})
	if err != nil {
		t.Fatal(err)
	}
	if first.MemoHit {
		t.Fatal("first request hit an empty memo")
	}
	second, err := cl.Translate(ctx, serve.TranslateRequest{Source: src})
	if err != nil {
		t.Fatal(err)
	}
	if !second.MemoHit {
		t.Fatal("repeated request missed the server memo")
	}
	// Memoized output must parse and carry no φs, like any translation.
	if second.Output == "" {
		t.Fatal("memo hit returned empty output")
	}
	if _, err := outofssa.ParseAll(second.Output); err != nil {
		t.Fatalf("memoized output does not re-parse: %v", err)
	}

	// Different machinery must not share entries: the same source under
	// another strategy is a miss.
	other, err := cl.Translate(ctx, serve.TranslateRequest{Source: src, Strategy: "sreedhar3"})
	if err != nil {
		t.Fatal(err)
	}
	if other.MemoHit {
		t.Fatal("memo served a translation recorded under different options")
	}

	st, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Memo == nil {
		t.Fatal("stats response has no memo section although the memo is on")
	}
	if st.Memo.Hits != 1 || st.Memo.Misses != 2 {
		t.Fatalf("memo stats hits=%d misses=%d, want 1 and 2", st.Memo.Hits, st.Memo.Misses)
	}
	if st.Memo.Entries != 2 || st.Memo.Bytes <= 0 {
		t.Fatalf("memo retention: %+v", st.Memo)
	}
	if want := 1.0 / 3.0; st.Memo.HitRate != want {
		t.Fatalf("memo hit rate %v, want %v", st.Memo.HitRate, want)
	}
}

// TestServerMemoDisabled: MemoEntries < 0 turns the memo off — repeats
// translate from scratch and /v1/stats carries no memo section.
func TestServerMemoDisabled(t *testing.T) {
	_, cl := startServer(t, serve.Config{MemoEntries: -1})
	src := corpus(t, 1, 0)
	ctx := context.Background()

	for i := 0; i < 2; i++ {
		resp, err := cl.Translate(ctx, serve.TranslateRequest{Source: src})
		if err != nil {
			t.Fatal(err)
		}
		if resp.MemoHit {
			t.Fatalf("request %d hit although the memo is disabled", i)
		}
	}
	st, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Memo != nil {
		t.Fatalf("disabled memo still reports a stats section: %+v", st.Memo)
	}
}
