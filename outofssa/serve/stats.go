package serve

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/outofssa"
)

// serverStats is the daemon's cumulative accounting. The request/function
// counters and the latency histogram are lock-free; the Figure 5-style
// aggregate (outofssa.Stats via Accumulate), the cache tallies, and the
// per-phase nanosecond sums fold under one short-held mutex, once per
// completed function.
type serverStats struct {
	reqTranslate  atomic.Int64
	reqBatch      atomic.Int64
	reqOK         atomic.Int64
	reqFailed     atomic.Int64
	reqCanceled   atomic.Int64
	reqOverloaded atomic.Int64
	reqBadRequest atomic.Int64
	reqPanicked   atomic.Int64

	// panicTotal counts every handler panic the isolation middleware
	// recovered, including on non-translation routes (reqPanicked covers
	// only translate/batch, so the request books still balance).
	panicTotal atomic.Int64

	funcsOK       atomic.Int64
	funcsFailed   atomic.Int64
	funcsCanceled atomic.Int64

	hist histogram

	mu    sync.Mutex
	agg   outofssa.Stats // deterministic counters of every successful function
	cache outofssa.CacheStats
	// Per-phase wall clock, summed across successful functions. These are
	// the fields Stats.Accumulate deliberately excludes (they are
	// scheduling-dependent), so the server sums them separately: the
	// aggregate counters stay deterministic, the timings stay observable.
	insertNs, analyzeNs, coalesceNs, rewriteNs int64
}

// foldFunc accounts one completed function: classify the outcome, fold
// the deterministic counters and timings of successes, and always fold
// the cache behaviour (a failing function still exercised the cache).
func (st *serverStats) foldFunc(res *outofssa.Result, canceled bool) {
	switch {
	case canceled:
		st.funcsCanceled.Add(1)
	case res.Err != nil:
		st.funcsFailed.Add(1)
	default:
		st.funcsOK.Add(1)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	st.cache.Add(res.Cache)
	if res.Err == nil && res.Stats != nil {
		st.agg.Accumulate(res.Stats)
		st.insertNs += res.Stats.InsertNanos
		st.analyzeNs += res.Stats.AnalyzeNanos
		st.coalesceNs += res.Stats.CoalesceNanos
		st.rewriteNs += res.Stats.RewriteNanos
	}
}

// StatsResponse is the JSON body of GET /v1/stats: the daemon's cumulative
// view of itself since start.
type StatsResponse struct {
	UptimeSeconds float64 `json:"uptime_seconds"`

	// Request accounting. OK + Failed + Canceled counts admitted requests
	// that ran; Overloaded counts 429 rejections (never admitted, never in
	// the latency histogram); BadRequest counts 4xx parse/option failures;
	// Panicked counts translate/batch requests ended by a recovered handler
	// panic. Every translate/batch request lands in exactly one of these
	// six buckets.
	Requests struct {
		Translate  int64 `json:"translate"`
		Batch      int64 `json:"batch"`
		OK         int64 `json:"ok"`
		Failed     int64 `json:"failed"`
		Canceled   int64 `json:"canceled"`
		Overloaded int64 `json:"overloaded"`
		BadRequest int64 `json:"bad_request"`
		Panicked   int64 `json:"panicked"`
	} `json:"requests"`

	// PanicTotal counts every panic the handler-isolation middleware
	// recovered, on any route. The daemon survives each one.
	PanicTotal int64 `json:"panic_total"`

	// Function accounting across all batches and single translations.
	Functions struct {
		OK       int64 `json:"ok"`
		Failed   int64 `json:"failed"`
		Canceled int64 `json:"canceled"`
	} `json:"functions"`

	// Admission gauges at scrape time.
	InFlight int64 `json:"in_flight"`
	Queued   int64 `json:"queued"`
	Draining bool  `json:"draining"`

	// Translation is the cumulative Figure 5-style aggregate over every
	// successful function (copies remaining, intersection tests, …),
	// folded with outofssa.Stats.Accumulate.
	Translation outofssa.Stats `json:"translation"`

	// PhaseNanos sums the per-phase wall clock of every successful
	// function: the paper's four-phase cost split, cumulatively.
	PhaseNanos struct {
		Insert   int64 `json:"insert"`
		Analyze  int64 `json:"analyze"`
		Coalesce int64 `json:"coalesce"`
		Rewrite  int64 `json:"rewrite"`
	} `json:"phase_nanos"`

	// Cache is the aggregate analysis-cache behaviour. Repairs counts stale
	// analyses brought current by incremental dirty-set patching instead of
	// recomputation.
	Cache struct {
		Hits    uint64  `json:"hits"`
		Misses  uint64  `json:"misses"`
		HitRate float64 `json:"hit_rate"`
		Repairs uint64  `json:"repairs"`
	} `json:"cache"`

	// Memo is the server-wide translation memo: lookups folded from every
	// translated function, plus the live store's retained size. Omitted when
	// the server was configured with memoization disabled.
	Memo *MemoSection `json:"memo,omitempty"`

	// Latency is the server-side request latency distribution (admitted
	// requests, admission wait included — what a client experiences once
	// past the 429 gate).
	Latency struct {
		Count      int64   `json:"count"`
		MeanMicros float64 `json:"mean_us"`
		P50Micros  float64 `json:"p50_us"`
		P90Micros  float64 `json:"p90_us"`
		P99Micros  float64 `json:"p99_us"`
		MaxMicros  float64 `json:"max_us"`
	} `json:"latency"`
}

// MemoSection is the translation-memo block of StatsResponse. Hits, Misses
// and HitRate are folded from per-function results (the same view a client
// assembles from memo_hit flags); Entries, Bytes and Evictions come from
// the live store.
type MemoSection struct {
	Hits      uint64  `json:"hits"`
	Misses    uint64  `json:"misses"`
	HitRate   float64 `json:"hit_rate"`
	Entries   int     `json:"entries"`
	Bytes     int64   `json:"bytes"`
	Evictions uint64  `json:"evictions"`
}

// statsResponse assembles the scrape.
func (s *Server) statsResponse() *StatsResponse {
	st := &s.stats
	out := &StatsResponse{UptimeSeconds: time.Since(s.start).Seconds()}
	out.Requests.Translate = st.reqTranslate.Load()
	out.Requests.Batch = st.reqBatch.Load()
	out.Requests.OK = st.reqOK.Load()
	out.Requests.Failed = st.reqFailed.Load()
	out.Requests.Canceled = st.reqCanceled.Load()
	out.Requests.Overloaded = st.reqOverloaded.Load()
	out.Requests.BadRequest = st.reqBadRequest.Load()
	out.Requests.Panicked = st.reqPanicked.Load()
	out.PanicTotal = st.panicTotal.Load()
	out.Functions.OK = st.funcsOK.Load()
	out.Functions.Failed = st.funcsFailed.Load()
	out.Functions.Canceled = st.funcsCanceled.Load()
	out.InFlight = s.gate.inFlight.Load()
	out.Queued = s.gate.queued.Load()
	out.Draining = s.draining.Load()

	st.mu.Lock()
	out.Translation = st.agg
	out.Cache.Hits = st.cache.Hits
	out.Cache.Misses = st.cache.Misses
	out.Cache.HitRate = st.cache.HitRate()
	out.Cache.Repairs = st.cache.Repairs
	if s.memo != nil {
		ms := s.memo.Stats()
		out.Memo = &MemoSection{
			Hits:      st.cache.MemoHits,
			Misses:    st.cache.MemoMisses,
			HitRate:   st.cache.MemoHitRate(),
			Entries:   ms.Entries,
			Bytes:     ms.Bytes,
			Evictions: ms.Evictions,
		}
	}
	out.PhaseNanos.Insert = st.insertNs
	out.PhaseNanos.Analyze = st.analyzeNs
	out.PhaseNanos.Coalesce = st.coalesceNs
	out.PhaseNanos.Rewrite = st.rewriteNs
	st.mu.Unlock()

	snap := st.hist.snapshot()
	out.Latency.Count = snap.count
	out.Latency.MeanMicros = snap.mean() / 1e3
	out.Latency.P50Micros = snap.quantile(0.50) / 1e3
	out.Latency.P90Micros = snap.quantile(0.90) / 1e3
	out.Latency.P99Micros = snap.quantile(0.99) / 1e3
	out.Latency.MaxMicros = float64(snap.maxNs) / 1e3
	return out
}
