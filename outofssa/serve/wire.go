package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"mime"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"repro/outofssa"
)

// TranslateRequest is the wire form of one translation request — the JSON
// body of POST /v1/translate and POST /v1/batch. For curl-ability both
// endpoints also accept the raw textual IR as the body (any non-JSON
// content type), with the remaining fields supplied as query parameters
// (?strategy=sharing&registers=4&timeout_ms=1000 …).
//
// The machinery toggles are pointers so that an absent field keeps the
// strategy's default (WithStrategy implies virtualization for sreedhar3,
// for example); a present field is applied after the strategy, last one
// wins, and the server validates the final combination exactly like
// outofssa.New does.
type TranslateRequest struct {
	// Source is the textual IR: exactly one function for /v1/translate,
	// any number of concatenated functions for /v1/batch.
	Source string `json:"source"`
	// Strategy names the coalescing strategy (one of
	// outofssa.StrategyNames, case-insensitive); empty selects the
	// server's default (sharing).
	Strategy string `json:"strategy,omitempty"`

	// Machinery toggles, mirroring the outofssa functional options.
	Virtualize   *bool `json:"virtualize,omitempty"`    // WithVirtualization
	Graph        *bool `json:"graph,omitempty"`         // WithInterferenceGraph
	LiveCheck    *bool `json:"livecheck,omitempty"`     // WithFastLiveness
	Linear       *bool `json:"linear,omitempty"`        // WithLinearClassTest
	OrderedSets  *bool `json:"ordered_sets,omitempty"`  // WithOrderedSets
	SplitEdges   *bool `json:"split_edges,omitempty"`   // WithCriticalEdgeSplitting
	KeepParallel *bool `json:"keep_parallel,omitempty"` // WithParallelCopies
	Verify       *bool `json:"verify,omitempty"`        // WithVerify (default on)

	// Registers, when positive, enables the register-allocation stage with
	// a pool of r0..r(n-1) (WithRegisters).
	Registers int `json:"registers,omitempty"`
	// TimeoutMillis is the per-request deadline; 0 selects the server's
	// default, and the server clamps any request to its configured
	// maximum.
	TimeoutMillis int64 `json:"timeout_ms,omitempty"`
	// Quiet, on /v1/batch, omits the translated IR text from the streamed
	// items (the functions are still translated server-side) — for load
	// generation, where the caller only wants timings and counters.
	Quiet bool `json:"quiet,omitempty"`
}

// translator builds the per-request Translator, with extra server-side
// options (worker bound) applied last. It reuses the public option
// constructors — outofssa.ParseStrategy for the name table and
// outofssa.New for Options.Validate — so a request can express exactly the
// configurations the CLI tools can, and an invalid combination fails with
// the same message.
func (req *TranslateRequest) translator(extra ...outofssa.Option) (*outofssa.Translator, error) {
	opts := []outofssa.Option{}
	if req.Strategy != "" {
		s, err := outofssa.ParseStrategy(req.Strategy)
		if err != nil {
			return nil, err
		}
		opts = append(opts, outofssa.WithStrategy(s))
	}
	if req.Virtualize != nil {
		opts = append(opts, outofssa.WithVirtualization(*req.Virtualize))
	}
	if req.Graph != nil {
		opts = append(opts, outofssa.WithInterferenceGraph(*req.Graph))
	}
	if req.LiveCheck != nil {
		opts = append(opts, outofssa.WithFastLiveness(*req.LiveCheck))
	}
	if req.Linear != nil {
		opts = append(opts, outofssa.WithLinearClassTest(*req.Linear))
	}
	if req.OrderedSets != nil {
		opts = append(opts, outofssa.WithOrderedSets(*req.OrderedSets))
	}
	if req.SplitEdges != nil {
		opts = append(opts, outofssa.WithCriticalEdgeSplitting(*req.SplitEdges))
	}
	if req.KeepParallel != nil {
		opts = append(opts, outofssa.WithParallelCopies(*req.KeepParallel))
	}
	if req.Verify != nil {
		opts = append(opts, outofssa.WithVerify(*req.Verify))
	}
	if req.Registers < 0 {
		return nil, fmt.Errorf("serve: negative register count %d", req.Registers)
	}
	if req.Registers > 0 {
		opts = append(opts, outofssa.WithRegisters(req.Registers))
	}
	opts = append(opts, extra...)
	return outofssa.New(opts...)
}

// parseRequest reads one TranslateRequest from an HTTP request. A JSON
// content type selects the JSON body form; anything else treats the whole
// body as the textual IR source. Query parameters are applied first in
// both forms, so a JSON body can still be combined with ?strategy=…, with
// the body winning where both name a field.
func parseRequest(r *http.Request) (TranslateRequest, error) {
	var req TranslateRequest
	if err := applyQuery(&req, r.URL.Query()); err != nil {
		return req, err
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		return req, fmt.Errorf("serve: reading request body: %w", err)
	}
	ct := r.Header.Get("Content-Type")
	if mt, _, err := mime.ParseMediaType(ct); err == nil && (mt == "application/json" || strings.HasSuffix(mt, "+json")) {
		if err := json.Unmarshal(body, &req); err != nil {
			return req, fmt.Errorf("serve: decoding JSON request: %w", err)
		}
	} else {
		req.Source = string(body)
	}
	if strings.TrimSpace(req.Source) == "" {
		return req, fmt.Errorf("serve: empty source")
	}
	return req, nil
}

// applyQuery folds URL query parameters into req, accepting the same
// field names as the JSON form.
func applyQuery(req *TranslateRequest, q url.Values) error {
	if v := q.Get("strategy"); v != "" {
		req.Strategy = v
	}
	boolParam := func(name string, dst **bool) error {
		v := q.Get(name)
		if v == "" {
			return nil
		}
		b, err := strconv.ParseBool(v)
		if err != nil {
			return fmt.Errorf("serve: query parameter %s: %w", name, err)
		}
		*dst = &b
		return nil
	}
	for name, dst := range map[string]**bool{
		"virtualize":    &req.Virtualize,
		"graph":         &req.Graph,
		"livecheck":     &req.LiveCheck,
		"linear":        &req.Linear,
		"ordered_sets":  &req.OrderedSets,
		"split_edges":   &req.SplitEdges,
		"keep_parallel": &req.KeepParallel,
		"verify":        &req.Verify,
	} {
		if err := boolParam(name, dst); err != nil {
			return err
		}
	}
	if v := q.Get("registers"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return fmt.Errorf("serve: query parameter registers: %w", err)
		}
		req.Registers = n
	}
	if v := q.Get("timeout_ms"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return fmt.Errorf("serve: query parameter timeout_ms: %w", err)
		}
		req.TimeoutMillis = n
	}
	if v := q.Get("quiet"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			return fmt.Errorf("serve: query parameter quiet: %w", err)
		}
		req.Quiet = b
	}
	return nil
}

// TranslateResponse is the JSON response of POST /v1/translate.
type TranslateResponse struct {
	// Name is the translated function's name.
	Name string `json:"name"`
	// Output is the translated (φ-free) function in the textual IR form.
	Output string `json:"output"`
	// Stats reports what the translation did (the paper's Figure 5-7
	// counters for this one function).
	Stats *outofssa.Stats `json:"stats,omitempty"`
	// CleanedBlocks counts degenerate jump blocks folded away.
	CleanedBlocks int `json:"cleaned_blocks,omitempty"`
	// CacheHits/CacheMisses report the function's analysis-cache
	// behaviour.
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
	// MemoHit reports that the whole translation was served from the
	// server's translation memo (a structurally identical function was
	// translated before with the same options).
	MemoHit bool `json:"memo_hit,omitempty"`
	// RegsUsed and Spills summarize the register allocation when the
	// request enabled it.
	RegsUsed int `json:"regs_used,omitempty"`
	Spills   int `json:"spills,omitempty"`
	// ElapsedMicros is the server-side wall clock of the translation
	// (admission wait excluded).
	ElapsedMicros float64 `json:"elapsed_us"`
}

// BatchItem is one line of the /v1/batch NDJSON stream: one function's
// outcome, emitted in completion order as the batch makes progress.
type BatchItem struct {
	// Index is the function's position in the request source.
	Index int `json:"index"`
	// Name is the function's name.
	Name string `json:"name"`
	// Output is the translated function's textual IR; empty when the
	// request set quiet, or when the function failed.
	Output string `json:"output,omitempty"`
	// Stats are the function's translation counters (successes only).
	Stats *outofssa.Stats `json:"stats,omitempty"`
	// Error is the per-function failure, when there was one; Pass names
	// the failing pass when the failure was a typed *outofssa.PassError,
	// and Canceled marks a function stopped (or skipped) by cancellation —
	// client disconnect or deadline — rather than rejected by a pass.
	Error    string `json:"error,omitempty"`
	Pass     string `json:"pass,omitempty"`
	Canceled bool   `json:"canceled,omitempty"`
}

// BatchSummary is the trailer line of the /v1/batch NDJSON stream,
// distinguished by "done": true. A stream that ends without one was cut
// short (client disconnect, server hard stop).
type BatchSummary struct {
	Done bool `json:"done"`
	// Funcs counts the functions in the request; OK, Failed and Canceled
	// partition how far they got (canceled functions were cut off by the
	// request deadline).
	Funcs    int `json:"funcs"`
	OK       int `json:"ok"`
	Failed   int `json:"failed"`
	Canceled int `json:"canceled"`
	// Stats aggregates the successful functions' counters via
	// Stats.Accumulate — deterministic for any worker count.
	Stats *outofssa.Stats `json:"stats,omitempty"`
	// ElapsedMicros is the server-side wall clock of the whole batch.
	ElapsedMicros float64 `json:"elapsed_us"`
}

// errorResponse is the JSON body of every non-2xx response.
type errorResponse struct {
	Error string `json:"error"`
}
