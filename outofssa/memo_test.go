package outofssa_test

import (
	"context"
	"testing"

	"repro/outofssa"
)

// TestWithMemo: a shared memo attached through the public façade serves
// the second batch over the same corpus entirely from the store, with the
// counters surfaced on Result.Cache and Memo.Stats, and the memoized code
// behaviourally equivalent to the uncached translation.
func TestWithMemo(t *testing.T) {
	p := outofssa.DefaultProfile("memopub", 47)
	p.Funcs = 6
	corpus := outofssa.Generate(p)

	m := outofssa.NewMemo(0, 0)
	tr, err := outofssa.New(outofssa.WithMemo(m))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := outofssa.New()
	if err != nil {
		t.Fatal(err)
	}

	clone := func() []*outofssa.Func {
		out := make([]*outofssa.Func, len(corpus))
		for i, f := range corpus {
			out[i] = outofssa.Clone(f)
		}
		return out
	}

	cold, err := tr.TranslateAll(context.Background(), clone())
	if err != nil {
		t.Fatal(err)
	}
	warmFns := clone()
	warm, err := tr.TranslateAll(context.Background(), warmFns)
	if err != nil {
		t.Fatal(err)
	}
	refFns := clone()
	ref, err := plain.TranslateAll(context.Background(), refFns)
	if err != nil {
		t.Fatal(err)
	}

	if cold.Stats != warm.Stats || warm.Stats != ref.Stats {
		t.Fatalf("aggregate stats diverge:\ncold %+v\nwarm %+v\nref  %+v",
			cold.Stats, warm.Stats, ref.Stats)
	}
	for i, r := range warm.Results {
		if r.Cache.MemoHits != 1 || r.Cache.MemoMisses != 0 {
			t.Fatalf("%s: warm run counted hits=%d misses=%d",
				corpus[i].Name, r.Cache.MemoHits, r.Cache.MemoMisses)
		}
		for _, params := range [][]int64{{0, 0}, {2, 9}} {
			a, errA := outofssa.Interpret(warmFns[i], params, 1<<20)
			b, errB := outofssa.Interpret(refFns[i], params, 1<<20)
			if (errA == nil) != (errB == nil) {
				t.Fatalf("%s: interpretation errors diverge: %v vs %v", corpus[i].Name, errA, errB)
			}
			if errA == nil && !outofssa.Equivalent(a, b) {
				t.Fatalf("%s: memoized translation behaves differently on %v", corpus[i].Name, params)
			}
		}
	}

	ms := m.Stats()
	if ms.Hits != uint64(len(corpus)) || ms.Misses != uint64(len(corpus)) {
		t.Fatalf("memo counters: %+v, want %d hits and %d misses", ms, len(corpus), len(corpus))
	}
	if got, want := ms.HitRate(), 0.5; got != want {
		t.Fatalf("hit rate %v, want %v", got, want)
	}
	if ms.Entries == 0 || ms.Bytes <= 0 {
		t.Fatalf("memo retained nothing: %+v", ms)
	}
}

// TestWithMemoValidation: only NewMemo-built memos are accepted; nil
// detaches without error.
func TestWithMemoValidation(t *testing.T) {
	if _, err := outofssa.New(outofssa.WithMemo(&outofssa.Memo{})); err == nil {
		t.Fatal("WithMemo accepted a zero-value Memo")
	}
	if _, err := outofssa.New(outofssa.WithMemo(nil)); err != nil {
		t.Fatalf("WithMemo(nil) must detach, got %v", err)
	}
}
