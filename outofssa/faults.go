package outofssa

import "repro/internal/faults"

// Fault injection, re-exported for the binaries (which, by CI-enforced
// convention, import only the public outofssa API). The framework itself —
// point registration, the schedule grammar, determinism guarantees — is
// documented on repro/internal/faults.

// EnableFaults arms the repo-wide failpoint schedule described by spec
// ("name=kind[:activation]", comma separated — e.g.
// "serve.decode=err:0.01,pipeline.outofssa=panic:every=500"), with all
// probabilistic activations drawn deterministically from seed. Naming an
// unregistered failpoint is an error.
func EnableFaults(spec string, seed int64) error { return faults.Enable(spec, seed) }

// DisableFaults disarms every failpoint.
func DisableFaults() { faults.Disable() }

// FaultPoints lists every registered failpoint name, sorted.
func FaultPoints() []string { return faults.Names() }

// FaultStats is one failpoint's record since the schedule was enabled.
type FaultStats struct {
	// Evals counts evaluations that reached an armed schedule clause.
	Evals int64
	// Fires counts faults actually delivered.
	Fires int64
}

// FaultSnapshot reports per-point evaluation and firing counts for the
// active (or most recently active) schedule.
func FaultSnapshot() map[string]FaultStats {
	snap := faults.Snapshot()
	out := make(map[string]FaultStats, len(snap))
	for name, st := range snap {
		out[name] = FaultStats{Evals: st.Evals, Fires: st.Fires}
	}
	return out
}
