package outofssa

import (
	"fmt"
	"io"

	"repro/internal/core"
)

// Memo is a shared, concurrency-safe store of completed translations,
// keyed by the input function's structural fingerprint (blocks, edges,
// instructions, operands, frequencies, register pins — never names) plus
// the translator's machinery configuration. Attach one to a Translator
// with WithMemo: structurally identical functions then translate once, and
// every later occurrence — in the same batch, across batches, or across
// daemon requests — materializes the stored output with a zero-alloc clone
// instead of re-running the pipeline.
//
// One Memo may back any number of Translators and is safe for concurrent
// use; entries are only shared between translators with an identical
// machinery configuration (the options are part of the key). Results are
// bit-identical to uncached translation up to the display names of
// translation-minted variables and blocks; statistics, coalescing
// decisions, and observable behaviour are identical — the differential
// tests in this package prove it.
type Memo struct {
	m *core.Memo
}

// MemoStats is a point-in-time snapshot of a Memo's counters.
type MemoStats struct {
	// Hits and Misses count lookups that did / did not find a stored
	// translation.
	Hits, Misses uint64
	// Evictions counts entries dropped by the LRU bounds.
	Evictions uint64
	// Entries and Bytes describe the current retained contents (Bytes is
	// approximate).
	Entries int
	Bytes   int64
}

// HitRate returns Hits / (Hits + Misses), or 0 when nothing was looked up.
func (s MemoStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// NewMemo returns a translation memo bounded to maxEntries stored
// translations and maxBytes of retained output (approximate). Zero selects
// the defaults (4096 entries, 256 MiB); a negative value disables that
// bound. Eviction is least-recently-used.
func NewMemo(maxEntries int, maxBytes int64) *Memo {
	return &Memo{m: core.NewMemo(maxEntries, maxBytes)}
}

// Stats snapshots the memo's counters.
func (m *Memo) Stats() MemoStats {
	st := m.m.Stats()
	return MemoStats{
		Hits:      st.Hits,
		Misses:    st.Misses,
		Evictions: st.Evictions,
		Entries:   st.Entries,
		Bytes:     st.Bytes,
	}
}

// Snapshot serializes the memo's contents to w as a versioned NDJSON
// stream, oldest entry first, for reloading with Load after a restart. The
// memo is locked for the duration; snapshot during drain, not under
// traffic.
func (m *Memo) Snapshot(w io.Writer) error { return m.m.Snapshot(w) }

// Load reads a Snapshot stream into the memo, returning how many entries
// were installed and how many damaged lines (torn tail, corruption) were
// skipped. Only a missing or incompatible header is an error. Loaded
// entries respect the memo's bounds.
func (m *Memo) Load(r io.Reader) (loaded, skipped int, err error) {
	return m.m.LoadSnapshot(r)
}

// WithMemo attaches a shared translation memo to the Translator: inputs
// whose structural fingerprint (and machinery configuration) match a
// stored translation are served from the memo instead of re-translated,
// and fresh translations are stored. The same Memo may be shared by many
// Translators and used from many goroutines; nil detaches. See Memo for
// the exact result guarantees.
func WithMemo(m *Memo) Option {
	return func(t *Translator) error {
		if m == nil {
			t.memo = nil
			return nil
		}
		if m.m == nil {
			return fmt.Errorf("outofssa: WithMemo needs a Memo built by NewMemo")
		}
		t.memo = m.m
		return nil
	}
}
