package outofssa

import (
	"fmt"
)

// Option configures a Translator at construction time. Options apply in
// order, last one wins; New validates the final combination.
type Option func(*Translator) error

// WithStrategy selects the coalescing strategy. Selecting SreedharIII
// turns virtualized copy insertion on; selecting Optimistic turns it off
// (de-coalescing needs the full copy set). Like every option this is
// last-wins: a later conflicting option is honoured, and New rejects the
// combination if it is invalid.
func WithStrategy(s Strategy) Option {
	return func(t *Translator) error {
		if int(s) < 0 || int(s) > int(Optimistic) {
			return fmt.Errorf("outofssa: invalid strategy %d", int(s))
		}
		t.opt.Strategy = s
		switch s {
		case SreedharIII:
			t.opt.Virtualize = true
		case Optimistic:
			t.opt.Virtualize = false
		}
		return nil
	}
}

// WithOptions replaces the whole machinery configuration — the escape
// hatch for callers that sweep configurations (benchmarks, the figure
// harness). Worker count, register pool, verification, and extra passes
// are Translator-level settings and are not touched.
func WithOptions(o Options) Option {
	return func(t *Translator) error {
		t.opt = o
		return nil
	}
}

// WithVirtualization emulates the φ copies and materializes only the ones
// that fail to coalesce (Method III style) instead of inserting all
// copies up front.
func WithVirtualization(on bool) Option {
	return func(t *Translator) error {
		t.opt.Virtualize = on
		return nil
	}
}

// WithInterferenceGraph answers pair queries from a precomputed bit
// matrix instead of direct checks. The graph construction needs liveness
// sets, so enabling it turns fast liveness checking off.
func WithInterferenceGraph(on bool) Option {
	return func(t *Translator) error {
		t.opt.UseGraph = on
		if on {
			t.opt.LiveCheck = false
		}
		return nil
	}
}

// WithFastLiveness replaces dataflow liveness sets by the CFG-only fast
// liveness checker (Section IV-A). Enabling it turns the interference
// graph and the ordered-set representation off — both need liveness sets.
func WithFastLiveness(on bool) Option {
	return func(t *Translator) error {
		t.opt.LiveCheck = on
		if on {
			t.opt.UseGraph = false
			t.opt.OrderedSets = false
		}
		return nil
	}
}

// WithLinearClassTest selects the linear-time congruence-class
// interference test (Section IV-B) over the quadratic all-pairs test.
func WithLinearClassTest(on bool) Option {
	return func(t *Translator) error {
		t.opt.Linear = on
		return nil
	}
}

// WithOrderedSets stores liveness sets as sorted slices instead of bit
// vectors (the representation measured by the paper's Figure 7). Enabling
// it turns fast liveness checking off.
func WithOrderedSets(on bool) Option {
	return func(t *Translator) error {
		t.opt.OrderedSets = on
		if on {
			t.opt.LiveCheck = false
		}
		return nil
	}
}

// WithCriticalEdgeSplitting splits every critical edge before
// translation, trading extra blocks for coalescing freedom.
func WithCriticalEdgeSplitting(on bool) Option {
	return func(t *Translator) error {
		t.opt.SplitCriticalEdges = on
		return nil
	}
}

// WithParallelCopies keeps the remaining parallel copies in the output
// instead of sequentializing them — for consumers that inspect or lower
// the parallel form themselves.
func WithParallelCopies(on bool) Option {
	return func(t *Translator) error {
		t.opt.KeepParallelCopies = on
		return nil
	}
}

// WithVerify toggles strict-SSA verification of the input before
// translation (on by default). The post-translation IR check always runs.
func WithVerify(on bool) Option {
	return func(t *Translator) error {
		t.verify = on
		return nil
	}
}

// WithWorkers sets the worker-pool size TranslateAll and Stream use;
// n <= 0 selects runtime.GOMAXPROCS(0). Results are identical for any
// worker count — only wall-clock changes.
func WithWorkers(n int) Option {
	return func(t *Translator) error {
		t.workers = n
		return nil
	}
}

// WithRegisters enables the register-allocation stage with a pool of k
// general-purpose registers named r0..r(k-1). k == 0 disables the stage.
func WithRegisters(k int) Option {
	return func(t *Translator) error {
		if k < 0 {
			return fmt.Errorf("outofssa: negative register count %d", k)
		}
		t.pool = nil
		for i := 0; i < k; i++ {
			t.pool = append(t.pool, fmt.Sprintf("r%d", i))
		}
		return nil
	}
}

// WithRegisterPool enables the register-allocation stage with explicitly
// named registers (matching the Reg pins of constrained variables).
func WithRegisterPool(regs ...string) Option {
	return func(t *Translator) error {
		t.pool = append([]string(nil), regs...)
		return nil
	}
}

// WithExtraPass appends a user-supplied pass, run on each function after
// the out-of-SSA rewrite (and before register allocation, when enabled).
// A failure is reported as a *PassError carrying the given name. Extra
// passes run in the order they were added.
func WithExtraPass(name string, run func(*Func) error) Option {
	return func(t *Translator) error {
		if name == "" || run == nil {
			return fmt.Errorf("outofssa: extra pass needs a name and a function")
		}
		t.extra = append(t.extra, extraPass{name: name, run: run})
		return nil
	}
}
