// Tests of the public façade, written against the exported surface only
// (external test package): typed errors, context cancellation, option
// validation, streaming, and the golden quickstart translation.
package outofssa_test

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/outofssa"
)

// quickstartSrc is the examples/quickstart input: a loop whose φ web is
// non-conventional (the lost-copy shape).
const quickstartSrc = `
func quickstart {
entry:
  x1 = param 0
  jump loop
loop (freq 10):
  x2 = phi entry:x1 loop:x3
  one = const 1
  x3 = add x2 one
  ten = const 10
  c = cmplt x3 ten
  br c loop exit
exit:
  print x2
  ret x2
}
`

// quickstartGolden locks the translated code the recommended quickstart
// configuration produces (value-based coalescing, linear class test, fast
// liveness checking) through the public façade.
const quickstartGolden = `func quickstart {
entry:
  x2' = param 0
  jump loop
loop (freq 10):
  x2 = copy x2'
  one = const 1
  x2' = add x2 one
  ten = const 10
  c = cmplt x2' ten
  br c loop exit
exit:
  print x2
  ret x2
}
`

// badSSASrc double-defines x, so strict-SSA verification rejects it.
const badSSASrc = `
func badfunc {
entry:
  x = const 1
  x = const 2
  ret x
}
`

func TestQuickstartGolden(t *testing.T) {
	f, err := outofssa.Parse(quickstartSrc)
	if err != nil {
		t.Fatal(err)
	}
	orig := outofssa.Clone(f)
	tr, err := outofssa.New(
		outofssa.WithStrategy(outofssa.Value),
		outofssa.WithLinearClassTest(true),
		outofssa.WithFastLiveness(true),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tr.Translate(context.Background(), f)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.String(); got != quickstartGolden {
		t.Fatalf("translated code drifted from golden:\n--- got\n%s--- want\n%s", got, quickstartGolden)
	}
	if res.Stats.Phis != 1 || res.Stats.Affinities != 3 || res.Stats.FinalCopies != 1 {
		t.Fatalf("stats drifted: phis=%d affinities=%d final=%d",
			res.Stats.Phis, res.Stats.Affinities, res.Stats.FinalCopies)
	}
	// And the translation is observably equivalent to the SSA original.
	for _, p := range [][]int64{{0}, {5}, {9}} {
		want, err := outofssa.Interpret(orig, p, 10000)
		if err != nil {
			t.Fatal(err)
		}
		got, err := outofssa.Interpret(f, p, 10000)
		if err != nil {
			t.Fatal(err)
		}
		if !outofssa.Equivalent(want, got) {
			t.Fatalf("not equivalent on %v", p)
		}
	}
}

func TestPassErrorThroughAPI(t *testing.T) {
	f, err := outofssa.Parse(badSSASrc)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := outofssa.New() // verification on by default
	if err != nil {
		t.Fatal(err)
	}
	res, err := tr.Translate(context.Background(), f)
	if err == nil {
		t.Fatal("non-SSA input must fail verification")
	}
	if !errors.Is(res.Err, err) && res.Err == nil {
		t.Fatal("Result.Err must carry the failure")
	}
	var pe *outofssa.PassError
	if !errors.As(err, &pe) {
		t.Fatalf("error is not a *PassError: %v", err)
	}
	if pe.Func != "badfunc" || pe.Pass != "verify-ssa" || pe.Err == nil {
		t.Fatalf("PassError incomplete: %+v", pe)
	}

	// The same failure is reachable through the joined batch error.
	good := outofssa.MustParse(quickstartSrc)
	bad := outofssa.MustParse(badSSASrc)
	batch, err := tr.TranslateAll(context.Background(), []*outofssa.Func{good, bad})
	if err == nil {
		t.Fatal("batch with a bad function must report an error")
	}
	if batch.Results[0].Err != nil {
		t.Fatalf("healthy function failed: %v", batch.Results[0].Err)
	}
	pe = nil
	if !errors.As(batch.Err(), &pe) || pe.Func != "badfunc" {
		t.Fatalf("batch error does not expose the *PassError: %v", batch.Err())
	}
}

func TestTranslateAllCancellation(t *testing.T) {
	prof := outofssa.DefaultProfile("cancel", 7)
	prof.Funcs = 16
	fns := outofssa.Generate(prof)

	cctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	n := 0
	tr, err := outofssa.New(
		outofssa.WithWorkers(1), // deterministic dispatch order
		outofssa.WithExtraPass("cancel-on-third", func(*outofssa.Func) error {
			if n++; n == 3 {
				cancel()
			}
			return nil
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := tr.TranslateAll(cctx, fns)
	if err == nil {
		t.Fatal("canceled batch must report an error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("batch error hides the cancellation: %v", err)
	}
	// The first three functions were dispatched (the third one canceled
	// during its own extra pass); everything behind them was never run.
	if n != 3 {
		t.Fatalf("%d functions ran, want 3", n)
	}
	for i := 0; i < 2; i++ {
		if batch.Results[i].Err != nil || batch.Results[i].Stats == nil {
			t.Fatalf("func %d should have completed: %+v", i, batch.Results[i])
		}
	}
	for i := 3; i < len(fns); i++ {
		r := batch.Results[i]
		if !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("func %d: want context.Canceled, got %v", i, r.Err)
		}
		if r.Stats != nil {
			t.Fatalf("func %d was translated after cancellation", i)
		}
	}
}

func TestStreamDeliversAll(t *testing.T) {
	prof := outofssa.DefaultProfile("stream", 21)
	prof.Funcs = 12
	fns := outofssa.Generate(prof)
	tr, err := outofssa.New(outofssa.WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]int, len(fns))
	for i, r := range tr.Stream(context.Background(), fns) {
		seen[i]++
		if r.Err != nil || r.Stats == nil || r.Func != fns[i] {
			t.Fatalf("func %d: bad streamed result %+v", i, r)
		}
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("func %d yielded %d times", i, c)
		}
	}

	// Breaking out early abandons the rest without deadlocking.
	fns = outofssa.Generate(prof)
	got := 0
	for range tr.Stream(context.Background(), fns) {
		got++
		break
	}
	if got != 1 {
		t.Fatalf("broke after %d results", got)
	}
}

// TestStreamAbandonmentLeaksNoGoroutines pins down the property the serve
// layer depends on: a client that walks away from a streamed batch (breaks
// out of the iter.Seq2) must not strand the workers or the drainer. Every
// abandoned Stream's goroutines — workers mid-function and the report
// drainer — must exit once the yield stops pulling.
func TestStreamAbandonmentLeaksNoGoroutines(t *testing.T) {
	prof := outofssa.DefaultProfile("leak", 33)
	prof.Funcs = 24
	tr, err := outofssa.New(outofssa.WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	for round := 0; round < 8; round++ {
		fns := outofssa.Generate(prof)
		for range tr.Stream(context.Background(), fns) {
			break // abandon with ~all of the batch unconsumed
		}
	}
	// The workers observe abandonment at their next report; give them a
	// bounded window to unwind rather than asserting instantaneous exit.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC() // nudge any parked finalizer-adjacent goroutines
		if n := runtime.NumGoroutine(); n <= before {
			return
		} else if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked by abandoned streams: %d before, %d after\n%s",
				before, n, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestParseFailureModes(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{
			name:    "unknown opcode",
			src:     "func f {\nentry:\n  x = frobnicate y\n  ret x\n}",
			wantErr: "unknown op",
		},
		{
			name:    "undefined block target",
			src:     "func f {\nentry:\n  x = const 1\n  jump nowhere\n}",
			wantErr: "undefined block",
		},
		{
			name:    "undefined branch target",
			src:     "func f {\nentry:\n  c = param 0\n  br c entry missing\n}",
			wantErr: "undefined block",
		},
		{
			name:    "duplicate label",
			src:     "func f {\nentry:\n  x = const 1\n  jump next\nnext:\n  print x\n  jump next\nnext:\n  ret x\n}",
			wantErr: "duplicate label",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := outofssa.Parse(c.src)
			if err == nil {
				t.Fatalf("no error for %q", c.src)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error %q does not mention %q", err, c.wantErr)
			}
		})
	}

	// The happy path still parses, and ParseAll propagates the same
	// failures for any function in the stream.
	if _, err := outofssa.Parse(quickstartSrc); err != nil {
		t.Fatal(err)
	}
	stream := quickstartSrc + "\nfunc g {\nentry:\n  jump gone\n}\n"
	if _, err := outofssa.ParseAll(stream); err == nil || !strings.Contains(err.Error(), "undefined block") {
		t.Fatalf("ParseAll missed the undefined target: %v", err)
	}
}

func TestStrategyTable(t *testing.T) {
	names := outofssa.StrategyNames()
	if len(names) != len(outofssa.Strategies)+1 { // + Optimistic
		t.Fatalf("StrategyNames has %d entries, want %d", len(names), len(outofssa.Strategies)+1)
	}
	for _, n := range names {
		s, err := outofssa.ParseStrategy(n)
		if err != nil {
			t.Fatalf("table name %q does not parse: %v", n, err)
		}
		if got := outofssa.StrategyNames()[indexOf(t, names, n)]; got != n {
			t.Fatalf("name %q resolved inconsistently", n)
		}
		// Round trip: the resolved strategy maps back to the same name.
		if _, err := outofssa.New(outofssa.WithStrategy(s)); err != nil {
			t.Fatalf("WithStrategy(%v) invalid: %v", s, err)
		}
	}
	// The historical flag spellings stay valid.
	for name, want := range map[string]outofssa.Strategy{
		"intersect": outofssa.Intersect, "sreedhar1": outofssa.SreedharI,
		"chaitin": outofssa.Chaitin, "value": outofssa.Value,
		"sreedhar3": outofssa.SreedharIII, "valueis": outofssa.ValueIS,
		"sharing": outofssa.Sharing, "optimistic": outofssa.Optimistic,
	} {
		got, err := outofssa.ParseStrategy(name)
		if err != nil || got != want {
			t.Fatalf("ParseStrategy(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := outofssa.ParseStrategy("bogus"); err == nil || !strings.Contains(err.Error(), "sharing") {
		t.Fatalf("unknown-strategy error must list the valid names: %v", err)
	}
}

func indexOf(t *testing.T, names []string, n string) int {
	t.Helper()
	for i, x := range names {
		if x == n {
			return i
		}
	}
	t.Fatalf("%q not found", n)
	return -1
}

func TestOptionValidation(t *testing.T) {
	// Inconsistent machinery through the escape hatch is rejected.
	if _, err := outofssa.New(outofssa.WithOptions(outofssa.Options{
		Strategy: outofssa.Value, UseGraph: true, LiveCheck: true,
	})); err == nil {
		t.Fatal("UseGraph+LiveCheck must be rejected")
	}
	// WithStrategy(SreedharIII) normalizes to a usable configuration.
	tr, err := outofssa.New(outofssa.WithStrategy(outofssa.SreedharIII))
	if err != nil {
		t.Fatal(err)
	}
	if cfg := tr.Config(); !cfg.Virtualize {
		t.Fatalf("SreedharIII did not imply virtualization: %+v", cfg)
	}
	// Functional options are last-wins and keep the combination legal.
	tr, err = outofssa.New(
		outofssa.WithFastLiveness(true),
		outofssa.WithInterferenceGraph(true),
	)
	if err != nil {
		t.Fatal(err)
	}
	if cfg := tr.Config(); !cfg.UseGraph || cfg.LiveCheck {
		t.Fatalf("graph option did not displace fast liveness: %+v", cfg)
	}
	// New validates rather than repairs: explicitly conflicting options
	// are rejected, and a later option overrides a strategy implication.
	if _, err := outofssa.New(outofssa.WithOptions(outofssa.Options{
		Strategy: outofssa.Optimistic, Virtualize: true,
	})); err == nil {
		t.Fatal("Optimistic+Virtualize must be rejected, not repaired")
	}
	if _, err := outofssa.New(
		outofssa.WithStrategy(outofssa.SreedharIII),
		outofssa.WithVirtualization(false),
	); err == nil {
		t.Fatal("explicitly de-virtualized SreedharIII must be rejected")
	}
	if _, err := outofssa.New(outofssa.WithRegisters(-1)); err == nil {
		t.Fatal("negative register count must be rejected")
	}
	if _, err := outofssa.New(outofssa.WithExtraPass("", nil)); err == nil {
		t.Fatal("anonymous extra pass must be rejected")
	}
	if _, err := outofssa.New(outofssa.WithStrategy(outofssa.Strategy(99))); err == nil {
		t.Fatal("out-of-range strategy must be rejected")
	}
}

func TestRegistersAndExtraPass(t *testing.T) {
	f := outofssa.MustParse(quickstartSrc)
	ran := false
	tr, err := outofssa.New(
		outofssa.WithRegisters(4),
		outofssa.WithExtraPass("observe", func(g *outofssa.Func) error {
			ran = true
			for _, b := range g.Blocks {
				if len(b.Phis) != 0 {
					return fmt.Errorf("extra pass saw φs in %s", b.Name)
				}
			}
			return nil
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tr.Translate(context.Background(), f)
	if err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("extra pass did not run")
	}
	if res.Alloc == nil || res.Alloc.RegsUsed < 1 || res.Alloc.RegsUsed > 4 {
		t.Fatalf("allocation missing or out of range: %+v", res.Alloc)
	}

	// A failing extra pass surfaces as a *PassError under its own name.
	tr, err = outofssa.New(outofssa.WithExtraPass("boom", func(*outofssa.Func) error {
		return fmt.Errorf("lowering rejected")
	}))
	if err != nil {
		t.Fatal(err)
	}
	_, err = tr.Translate(context.Background(), outofssa.MustParse(quickstartSrc))
	var pe *outofssa.PassError
	if !errors.As(err, &pe) || pe.Pass != "boom" {
		t.Fatalf("extra-pass failure not typed: %v", err)
	}
}

// TestBatchMatchesSequential: the public batch API is deterministic — any
// worker count produces the aggregate statistics (and IR) of a sequential
// run.
func TestBatchMatchesSequential(t *testing.T) {
	prof := outofssa.DefaultProfile("det", 33)
	prof.Funcs = 10
	base := outofssa.Generate(prof)

	var ref *outofssa.BatchResult
	var refText []string
	for _, workers := range []int{1, 4} {
		fns := make([]*outofssa.Func, len(base))
		for i, f := range base {
			fns[i] = outofssa.Clone(f)
		}
		tr, err := outofssa.New(outofssa.WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		batch, err := tr.TranslateAll(context.Background(), fns)
		if err != nil {
			t.Fatal(err)
		}
		text := make([]string, len(fns))
		for i, f := range fns {
			text[i] = f.String()
		}
		if ref == nil {
			ref, refText = batch, text
			continue
		}
		if batch.Stats.FinalCopies != ref.Stats.FinalCopies || batch.Stats.Phis != ref.Stats.Phis ||
			batch.Stats.RemainingWeight != ref.Stats.RemainingWeight {
			t.Fatalf("workers=%d: aggregate stats differ: %+v vs %+v", workers, batch.Stats, ref.Stats)
		}
		for i := range text {
			if text[i] != refText[i] {
				t.Fatalf("workers=%d func %d: IR differs from sequential run", workers, i)
			}
		}
	}
}
