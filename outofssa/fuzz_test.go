package outofssa_test

import (
	"context"
	"testing"

	"repro/outofssa"
)

// fuzzSeeds are the in-source seed corpus shared by both fuzz targets
// (testdata/fuzz/ holds the same shapes as committed corpus files, plus
// whatever the fuzzer later minimizes). They cover the paper's interesting
// structures: straight line, diamond with φ, the lost-copy loop, and the
// swap problem (cyclic parallel copy).
var fuzzSeeds = []string{
	"func f {\nentry:\n  a = param 0\n  b = const 2\n  c = add a b\n  print c\n  ret c\n}\n",
	`
func diamond {
entry:
  c = param 0
  x0 = const 1
  br c left right
left:
  x1 = const 2
  jump join
right:
  x2 = add x0 x0
  jump join
join:
  x3 = phi left:x1 right:x2
  print x3
  ret x3
}
`,
	`
func lostcopy {
entry:
  x1 = param 0
  jump loop
loop (freq 10):
  x2 = phi entry:x1 loop:x3
  one = const 1
  x3 = add x2 one
  ten = const 10
  c = cmplt x3 ten
  br c loop exit
exit:
  print x2
  ret x2
}
`,
	`
func swap {
entry:
  a1 = param 0
  b1 = param 1
  jump loop
loop:
  a2 = phi entry:a1 loop:b2
  b2 = phi entry:b1 loop:a2
  s = add a2 b2
  lim = const 20
  c = cmplt s lim
  br c loop exit
exit:
  ret s
}
`,
	"func g {\nentry:\n  x = const 7\n  ret x\n}\nfunc h {\nentry:\n  y = param 0\n  print y\n  ret y\n}\n",
	"not ir at all",
	"func broken {\nentry:\n  x = phi nowhere:y\n}\n",
}

// FuzzParse asserts the parser never panics, and that anything it accepts
// survives a print/re-parse round trip (String is Parse's inverse).
func FuzzParse(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		fn, err := outofssa.Parse(src)
		if err != nil {
			return
		}
		if _, err := outofssa.Parse(fn.String()); err != nil {
			t.Fatalf("accepted input does not re-parse after printing: %v\nprinted:\n%s", err, fn.String())
		}
	})
}

// FuzzTranslate is the differential oracle as a fuzz target: any function
// the parser and SSA verifier accept must translate identically (success
// or failure) under the reference machinery (linear scans, per-query
// recomputation, no pooled state) and the optimized default (fast
// liveness, linear class test), and both outputs must preserve the
// pristine function's observable behaviour under the interpreter.
func FuzzTranslate(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	refOpts := outofssa.DefaultOptions()
	refOpts.ReferenceQueries = true
	refOpts.ReferenceAlloc = true
	ref, err := outofssa.New(outofssa.WithOptions(refOpts))
	if err != nil {
		f.Fatal(err)
	}
	opt, err := outofssa.New()
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, src string) {
		fns, err := outofssa.ParseAll(src)
		if err != nil || len(fns) == 0 {
			return
		}
		fn := fns[0]
		if fn.NumParams > 8 {
			return // keep the interpreter's parameter vectors small
		}
		pristine := outofssa.Clone(fn)
		refIn := outofssa.Clone(fn)

		refRes, refErr := ref.Translate(context.Background(), refIn)
		optRes, optErr := opt.Translate(context.Background(), fn)
		if (refErr == nil) != (optErr == nil) {
			t.Fatalf("reference and optimized disagree on success: ref=%v opt=%v\ninput:\n%s",
				refErr, optErr, pristine)
		}
		if refErr != nil {
			return // both reject (e.g. not strict SSA): consistent, done
		}

		for trial := int64(0); trial < 3; trial++ {
			params := make([]int64, pristine.NumParams)
			for i := range params {
				params[i] = trial*5 + int64(i) - 1
			}
			want, err := outofssa.Interpret(pristine, params, 20000)
			if err != nil {
				continue // original run diverges or traps: not an oracle case
			}
			a, err := outofssa.Interpret(refRes.Func, params, 20000)
			if err != nil {
				t.Fatalf("reference output fails to execute for %v: %v", params, err)
			}
			b, err := outofssa.Interpret(optRes.Func, params, 20000)
			if err != nil {
				t.Fatalf("optimized output fails to execute for %v: %v", params, err)
			}
			if !outofssa.Equivalent(want, a) {
				t.Fatalf("reference translation changed behaviour for %v\ninput:\n%s\noutput:\n%s",
					params, pristine, refRes.Func)
			}
			if !outofssa.Equivalent(want, b) {
				t.Fatalf("optimized translation changed behaviour for %v\ninput:\n%s\noutput:\n%s",
					params, pristine, optRes.Func)
			}
		}
	})
}
