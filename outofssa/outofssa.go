// Package outofssa is the public façade of the reproduction of "Revisiting
// Out-of-SSA Translation for Correctness, Code Quality, and Efficiency"
// (Boissinot, Darte, Rastello, Dupont de Dinechin, Guillon — CGO 2009): the
// one supported way to drive the engine. Everything under internal/ is an
// implementation detail and may change without notice; this package — and
// its bench subpackage — is the stable surface.
//
// A Translator is built once from functional options and reused:
//
//	tr, err := outofssa.New(
//		outofssa.WithStrategy(outofssa.Sharing),
//		outofssa.WithWorkers(8),
//	)
//	f, err := outofssa.Parse(src)
//	res, err := tr.Translate(ctx, f)        // one function
//	batch, err := tr.TranslateAll(ctx, fns) // a whole method queue
//
// Translate and TranslateAll take a context.Context and honour
// cancellation: a batch stops dispatching new functions and an in-flight
// function stops at its next pass boundary. Per-function failures are
// typed — errors.As(err, &passErr) with *PassError yields the function
// name, the failing pass, and the cause — and TranslateAll combines them
// with errors.Join, so errors.Is/errors.As see through the batch error.
// Stream yields per-function Results as they complete, for consumers that
// overlap translation with downstream work.
package outofssa

import (
	"context"
	"errors"
	"fmt"
	"iter"

	"repro/internal/analysis"
	"repro/internal/cfggen"
	"repro/internal/core"
	"repro/internal/pipeline"
)

// Translator drives out-of-SSA translation with a fixed configuration.
// It is immutable after New and safe for concurrent use.
type Translator struct {
	opt     Options
	workers int
	pool    []string
	verify  bool
	extra   []extraPass
	memo    *core.Memo
}

type extraPass struct {
	name string
	run  func(*Func) error
}

// New builds a Translator. The zero configuration is DefaultOptions (the
// paper's recommended machinery, Sharing strategy) with input
// verification on, no register allocation, and GOMAXPROCS workers.
func New(opts ...Option) (*Translator, error) {
	t := &Translator{opt: DefaultOptions(), verify: true}
	for _, o := range opts {
		if o == nil {
			continue
		}
		if err := o(t); err != nil {
			return nil, err
		}
	}
	if err := t.opt.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// Config returns the machinery configuration the Translator runs with,
// after option normalization.
func (t *Translator) Config() Options { return t.opt }

// pipeline assembles the pass pipeline the Translator runs: optional SSA
// verification, the four out-of-SSA phases, user-supplied extra passes,
// and optional register allocation.
func (t *Translator) pipeline() *pipeline.Pipeline {
	var passes []pipeline.Pass
	if t.verify {
		passes = append(passes, pipeline.VerifySSA())
	}
	passes = append(passes, pipeline.OutOfSSAWithMemo(t.opt, t.memo)...)
	for _, ep := range t.extra {
		run := ep.run
		passes = append(passes, pipeline.Pass{
			Name: ep.name,
			Run: func(pctx *pipeline.Context) error {
				if err := run(pctx.Func); err != nil {
					return err
				}
				// The pass manager cannot see what a user pass touched;
				// assume everything and let the analysis cache recompute
				// (a CFG mutation advances the code generation too).
				pctx.Func.MarkCFGMutated()
				return nil
			},
		})
	}
	if len(t.pool) > 0 {
		passes = append(passes, pipeline.RegAlloc(t.pool))
	}
	return pipeline.New(passes...)
}

// Result is the outcome of translating one function.
type Result struct {
	// Func is the translated (φ-free) function — the same pointer that
	// was passed in, mutated in place. On failure it holds whatever state
	// the completed passes produced.
	Func *Func
	// Stats reports what the translation did; nil when the run failed
	// before the rewrite phase completed.
	Stats *Stats
	// Alloc is the register allocation, when enabled with
	// WithRegisters/WithRegisterPool; nil otherwise or on failure.
	Alloc *Allocation
	// CleanedBlocks counts degenerate jump blocks folded away after the
	// rewrite.
	CleanedBlocks int
	// Cache reports how the function's analysis cache behaved during the
	// run — how many analysis requests (dominance, def-use, liveness, the
	// fast liveness checker, the interference graph) were served from the
	// cache versus (re)computed. The serve layer aggregates these into its
	// /v1/stats hit rate.
	Cache CacheStats
	// Err is the per-function failure: a *PassError for a failing pass,
	// or the context's error when the batch was canceled before this
	// function ran. Nil on success.
	Err error
}

// CacheStats counts analysis-cache requests over one or more translations:
// Hits were served from the per-function cache, Misses (re)computed,
// Repairs patched in place from the dirty-block log (incremental mode).
// MemoHits/MemoMisses count translation-memo lookups (WithMemo) — a memo
// hit replaces the whole pipeline, so its run contributes no analysis
// hits or misses. The zero value is ready to use; Add folds another value
// in.
type CacheStats struct {
	Hits   uint64
	Misses uint64
	// Repairs counts stale analyses brought current by dirty-set patching
	// instead of recomputation.
	Repairs uint64
	// MemoHits and MemoMisses count translation-memo lookups.
	MemoHits   uint64
	MemoMisses uint64
}

// Add folds st into c.
func (c *CacheStats) Add(st CacheStats) {
	c.Hits += st.Hits
	c.Misses += st.Misses
	c.Repairs += st.Repairs
	c.MemoHits += st.MemoHits
	c.MemoMisses += st.MemoMisses
}

// HitRate returns Hits / (Hits + Misses), or 0 when nothing was requested.
func (c CacheStats) HitRate() float64 {
	if c.Hits+c.Misses == 0 {
		return 0
	}
	return float64(c.Hits) / float64(c.Hits+c.Misses)
}

// MemoHitRate returns MemoHits / (MemoHits + MemoMisses), or 0 when no
// memo was attached.
func (c CacheStats) MemoHitRate() float64 {
	if c.MemoHits+c.MemoMisses == 0 {
		return 0
	}
	return float64(c.MemoHits) / float64(c.MemoHits+c.MemoMisses)
}

// resultOf folds a pipeline outcome into the public Result shape.
func resultOf(f *Func, pctx *pipeline.Context, err error) Result {
	r := Result{Func: f, Err: err}
	if pctx != nil {
		r.Stats = pctx.Stats
		r.Alloc = pctx.Alloc
		r.CleanedBlocks = pctx.CleanedBlocks
		if pctx.Stats != nil {
			r.CleanedBlocks += pctx.Stats.CleanedBlocks
		}
		if pctx.Cache != nil {
			for _, h := range pctx.Cache.Hits {
				r.Cache.Hits += h
			}
			for _, m := range pctx.Cache.Misses {
				r.Cache.Misses += m
			}
			for _, rp := range pctx.Cache.Repairs {
				r.Cache.Repairs += rp
			}
		}
		if pctx.MemoChecked {
			if pctx.MemoHit {
				r.Cache.MemoHits++
			} else {
				r.Cache.MemoMisses++
			}
		}
	}
	return r
}

// Translate rewrites f, which must be in strict SSA form, into equivalent
// φ-free standard code, mutating it in place. The context is observed at
// pass boundaries. The returned Result is also populated on failure, with
// Result.Err set to the same (typed) error Translate returns.
func (t *Translator) Translate(ctx context.Context, f *Func) (Result, error) {
	pctx, err := t.pipeline().Run(ctx, f)
	return resultOf(f, pctx, err), err
}

// BatchResult aggregates one TranslateAll run.
type BatchResult struct {
	// Results is index-aligned with the input functions.
	Results []Result
	// Stats sums the statistics of every successful function, folded in
	// input order — identical for any worker count.
	Stats Stats
	// Workers is the worker-pool size actually used.
	Workers int
}

// Err joins the per-function failures in input order with errors.Join
// (nil when every function succeeded). errors.As locates the individual
// *PassError values; errors.Is(err, context.Canceled) detects a canceled
// batch.
func (r *BatchResult) Err() error {
	var errs []error
	for i := range r.Results {
		if e := r.Results[i].Err; e != nil {
			errs = append(errs, fmt.Errorf("func %d: %w", i, e))
		}
	}
	return errors.Join(errs...)
}

// TranslateAll pushes every function through its own run of the pipeline
// on a worker pool (see WithWorkers), mutating the functions in place.
// One failing function does not abort the batch; the returned error is
// BatchResult.Err — the errors.Join of the per-function failures — so a
// nil error means every function translated. Cancelling ctx stops the
// batch from dispatching further functions; the skipped ones carry the
// context's error in their Result.
func (t *Translator) TranslateAll(ctx context.Context, fns []*Func) (*BatchResult, error) {
	res := pipeline.RunBatch(ctx, fns, t.pipeline(), t.workers)
	out := &BatchResult{
		Results: make([]Result, len(fns)),
		Stats:   res.Stats,
		Workers: res.Workers,
	}
	for i := range fns {
		out.Results[i] = resultOf(fns[i], res.Contexts[i], res.Errs[i])
	}
	return out, out.Err()
}

// Stream translates the functions on the worker pool like TranslateAll
// but yields each (index, Result) pair as the function completes, in
// completion order, so downstream work can overlap the batch. Breaking
// out of the loop cancels the remaining work; functions skipped by
// cancellation are never yielded.
func (t *Translator) Stream(ctx context.Context, fns []*Func) iter.Seq2[int, Result] {
	pl := t.pipeline()
	return func(yield func(int, Result) bool) {
		sctx, cancel := context.WithCancel(ctx)
		defer cancel()
		type item struct {
			i int
			r Result
		}
		ch := make(chan item)
		abandoned := make(chan struct{})
		go func() {
			defer close(ch)
			pipeline.RunBatchFunc(sctx, fns, pl, t.workers, func(i int, pctx *pipeline.Context, err error) {
				select {
				case ch <- item{i, resultOf(fns[i], pctx, err)}:
				case <-abandoned:
				}
			})
		}()
		defer close(abandoned)
		for it := range ch {
			if !yield(it.i, it.r) {
				return
			}
		}
	}
}

// BuildSSA rewrites a pre-SSA function (multiple assignments, no φs — the
// GenerateRaw shape) into pruned strict SSA form: construction, optional
// copy folding with dead-code elimination (fold), verification, and
// loop-derived block frequencies. It is the front half of the pipeline
// the ssagen command exposes.
func BuildSSA(ctx context.Context, f *Func, fold bool) error {
	passes := []pipeline.Pass{pipeline.ConstructSSA()}
	if fold {
		passes = append(passes, pipeline.CopyProp())
	}
	passes = append(passes,
		pipeline.VerifySSA(),
		pipeline.Pass{
			Name: "install-frequencies",
			Run: func(pctx *pipeline.Context) error {
				cfggen.InstallFrequencies(pctx.Func, pctx.Cache.Dom())
				return nil
			},
		},
	)
	_, err := pipeline.New(passes...).Run(ctx, f)
	return err
}

// InstallLoopFrequencies assigns loop-nest-derived execution frequencies
// to the blocks of f (the weights affinity-guided coalescing optimizes),
// for inputs whose textual form carries no freq annotations.
func InstallLoopFrequencies(f *Func) {
	cfggen.InstallFrequencies(f, analysis.NewCache(f).Dom())
}
