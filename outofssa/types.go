package outofssa

import (
	"fmt"
	"strings"

	"repro/internal/cfggen"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/pipeline"
	"repro/internal/regalloc"
)

// The façade re-exports the engine's data types as aliases, so values
// returned here interoperate with the bench subpackage and so external
// consumers never need (and never may) import repro/internal/... .
type (
	// Func is one function of the textual IR, as produced by Parse or the
	// workload generator and mutated in place by translation. Its String
	// method renders the textual form Parse reads back.
	Func = ir.Func
	// Block is one basic block of a Func.
	Block = ir.Block
	// Instr is one instruction (or φ-function) of a Block.
	Instr = ir.Instr
	// Var is one variable of a Func; Reg pins it to an architectural
	// register (Section III-D of the paper).
	Var = ir.Var
	// VarID indexes a Func's Vars table.
	VarID = ir.VarID
	// Stats reports what one translation did and what it cost.
	Stats = core.Stats
	// Options is the full machinery configuration of the translator; most
	// callers use the functional options of New instead and never touch it
	// directly. WithOptions installs a complete value.
	Options = core.Options
	// Strategy selects the coalescing strategy (the paper's Figure 5
	// variants plus the Optimistic extension).
	Strategy = core.Strategy
	// Allocation is the result of the optional register-allocation stage
	// enabled by WithRegisters/WithRegisterPool.
	Allocation = regalloc.Result
	// Execution is the observable behaviour of one interpreted run: print
	// trace, return value, step count.
	Execution = interp.Result
	// PassError is the typed failure of one pass on one function; every
	// error the Translator returns for a failing function is (or wraps)
	// one, so errors.As-based routing works through TranslateAll and
	// BatchResult.Err.
	PassError = pipeline.PassError
	// Profile configures the synthetic workload generator.
	Profile = cfggen.Profile
	// NearDuplicateProfile configures the near-duplicate workload expansion
	// (a base corpus plus structurally edited clones) that exercises the
	// translation memo; see GenerateNearDuplicates.
	NearDuplicateProfile = cfggen.NearDuplicateProfile
)

// The coalescing strategies, re-exported.
const (
	// Intersect coalesces only classes with disjoint live ranges.
	Intersect = core.Intersect
	// SreedharI adds Sreedhar's exemption of the copy pair itself.
	SreedharI = core.SreedharI
	// Chaitin uses Chaitin's copy-aware conservative interference.
	Chaitin = core.Chaitin
	// Value uses the paper's value-based interference.
	Value = core.Value
	// SreedharIII virtualizes the copy insertion with intersection-based
	// interference (the paper's baseline). Selecting it implies
	// virtualization.
	SreedharIII = core.SreedharIII
	// ValueIS is Value plus the per-φ greedy independent-set search.
	ValueIS = core.ValueIS
	// Sharing is ValueIS plus the copy-sharing post-pass — the paper's
	// best-quality configuration and the façade default.
	Sharing = core.Sharing
	// Optimistic is the Budimlić-style optimistic-coalescing extension.
	Optimistic = core.Optimistic
)

// Strategies lists the paper's Figure 5 strategies in presentation order
// (Optimistic, the extension, is selectable but not part of the figure).
var Strategies = append([]Strategy(nil), core.Strategies...)

// selectable lists every strategy a name can resolve to, in table order.
var selectable = append(append([]Strategy(nil), core.Strategies...), Optimistic)

// flagName derives the canonical flag spelling of a strategy from its
// display name: lower case, roman numerals as digits, no separators —
// "Sreedhar III" becomes "sreedhar3", "Value+IS" becomes "valueis".
func flagName(s Strategy) string {
	n := strings.ToLower(s.String())
	n = strings.ReplaceAll(n, " iii", "3")
	n = strings.ReplaceAll(n, " i", "1")
	n = strings.ReplaceAll(n, "+", "")
	return strings.ReplaceAll(n, " ", "")
}

// StrategyNames returns the valid strategy names for ParseStrategy, in
// table order. Command-line tools derive their -strategy usage text from
// it, so the list can never drift from the Strategy table.
func StrategyNames() []string {
	names := make([]string, len(selectable))
	for i, s := range selectable {
		names[i] = flagName(s)
	}
	return names
}

// ParseStrategy resolves a strategy name (as listed by StrategyNames,
// case-insensitively) to its Strategy value.
func ParseStrategy(name string) (Strategy, error) {
	want := strings.ToLower(strings.TrimSpace(name))
	for _, s := range selectable {
		if flagName(s) == want {
			return s, nil
		}
	}
	return 0, fmt.Errorf("outofssa: unknown strategy %q (valid: %s)", name, strings.Join(StrategyNames(), ", "))
}

// DefaultOptions is the paper's recommended configuration: the Sharing
// strategy over value-based interference with the linear congruence-class
// test and fast liveness checking ("Us I + Linear + InterCheck +
// LiveCheck", plus the sharing post-pass).
func DefaultOptions() Options {
	return Options{Strategy: Sharing, Linear: true, LiveCheck: true}
}

// Parse reads one function in the textual IR form (grammar documented in
// the README); Func.String is its inverse.
func Parse(src string) (*Func, error) { return ir.Parse(src) }

// ParseAll parses a stream of concatenated functions.
func ParseAll(src string) ([]*Func, error) { return ir.ParseAll(src) }

// MustParse is Parse for tests and examples; it panics on error.
func MustParse(src string) *Func { return ir.MustParse(src) }

// Clone deep-copies a function; translation mutates in place, so keep a
// clone when the original is still needed (e.g. as interpreter reference).
func Clone(f *Func) *Func { return ir.Clone(f) }

// Interpret executes f — SSA or translated — with the given parameters,
// stopping with an error after maxSteps instructions. It is the semantic
// equivalence oracle: a translation is correct iff Equivalent holds
// between the executions of the original and the translated function on
// every input.
func Interpret(f *Func, params []int64, maxSteps int) (*Execution, error) {
	return interp.Run(f, params, maxSteps)
}

// Equivalent reports whether two executions have the same observable
// behaviour (print trace and return value).
func Equivalent(a, b *Execution) bool { return interp.Equal(a, b) }

// DefaultProfile returns the workload generator profile used by the
// benchmark suite, seeded deterministically.
func DefaultProfile(name string, seed int64) Profile { return cfggen.DefaultProfile(name, seed) }

// Generate produces a deterministic batch of strict-SSA functions (with a
// generator-chosen fraction of copies folded, leaving non-conventional
// φ webs for the translator).
func Generate(p Profile) []*Func { return cfggen.Generate(p) }

// GenerateRaw produces the pre-SSA form of the same workload: multiple
// assignments, no φ-functions. Feed it to BuildSSA.
func GenerateRaw(p Profile) []*Func { return cfggen.GenerateRaw(p) }

// GenerateNearDuplicates produces the base corpus interleaved with K
// near-duplicate clones per function (renamed-only, dead-copy, and
// swapped-branch edits) — the compile-server workload shape a translation
// memo (NewMemo/WithMemo) pays off on. Deterministic from the profile's
// seeds.
func GenerateNearDuplicates(p NearDuplicateProfile) []*Func {
	return cfggen.GenerateNearDuplicates(p)
}
