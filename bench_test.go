package repro

// Benchmarks regenerating the paper's evaluation, one per figure, plus
// ablations for the design choices called out in DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
//
// The figures proper (with per-benchmark columns and normalization) are
// produced by cmd/ssabench; these testing.B entries measure the same code
// paths and expose the headline metrics to `go test -bench`.

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"repro/internal/coalesce"
	"repro/internal/congruence"
	"repro/internal/core"
	"repro/internal/dom"
	"repro/internal/interference"
	"repro/internal/ir"
	"repro/internal/livecheck"
	"repro/internal/liveness"
	"repro/internal/parcopy"
	"repro/internal/pipeline"
	"repro/internal/sreedhar"
	"repro/internal/ssa"
	"repro/outofssa/bench"
)

var (
	suiteOnce sync.Once
	suite     []bench.Benchmark
	suiteFns  []*ir.Func
)

func workload() []*ir.Func {
	suiteOnce.Do(func() {
		suite = bench.Suite(0.25)
		for _, b := range suite {
			suiteFns = append(suiteFns, b.Funcs...)
		}
	})
	return suiteFns
}

func translateAll(b *testing.B, opt core.Options) *core.Stats {
	b.Helper()
	fns := workload()
	var last *core.Stats
	total := &core.Stats{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, f := range fns {
			clone := ir.Clone(f)
			b.StopTimer() // cloning is not part of the translation cost
			clone2 := clone
			b.StartTimer()
			st, err := core.Translate(clone2, opt)
			if err != nil {
				b.Fatal(err)
			}
			last = st
			if i == 0 {
				total.RemainingCopies += st.RemainingCopies
				total.FinalCopies += st.FinalCopies
			}
		}
	}
	b.ReportMetric(float64(total.RemainingCopies), "copies-remaining")
	_ = last
	return total
}

// BenchmarkFig5 measures each coalescing strategy; the copies-remaining
// metric is the quantity Figure 5 plots (normalize against Intersect).
func BenchmarkFig5(b *testing.B) {
	for _, s := range core.Strategies {
		opt := core.Options{Strategy: s, Linear: true, LiveCheck: true}
		if s == core.SreedharIII {
			opt = core.Options{Strategy: s, Virtualize: true, UseGraph: true}
		}
		b.Run(s.String(), func(b *testing.B) {
			translateAll(b, opt)
		})
	}
}

// BenchmarkFig6 times the seven machinery configurations of Figure 6 on the
// suite (Sreedhar III is the paper's baseline).
func BenchmarkFig6(b *testing.B) {
	for _, cfg := range bench.Fig6Configs() {
		b.Run(cfg.Name, func(b *testing.B) {
			translateAll(b, cfg.Opt)
		})
	}
}

// BenchmarkFig7 reports the memory footprints of Figure 7 as metrics:
// bytes actually held by the interference graph and liveness structures,
// plus the paper's perfect-memory evaluations.
func BenchmarkFig7(b *testing.B) {
	for _, cfg := range bench.Fig6Configs() {
		b.Run(cfg.Name, func(b *testing.B) {
			fns := workload()
			var measured, ordered, bits float64
			for i := 0; i < b.N; i++ {
				measured, ordered, bits = 0, 0, 0
				for _, f := range fns {
					st, err := core.Translate(ir.Clone(f), cfg.Opt)
					if err != nil {
						b.Fatal(err)
					}
					measured += float64(st.GraphBytes + st.LiveSetBytes + st.LiveCheckBytes)
					ordered += float64(st.GraphEval + st.LiveSetEval + st.LiveCheckEval)
					bits += float64(st.GraphEval + st.LiveSetBitEval + st.LiveCheckEval)
				}
			}
			b.ReportMetric(measured, "bytes-measured")
			b.ReportMetric(ordered, "bytes-ordered-eval")
			b.ReportMetric(bits, "bytes-bitset-eval")
		})
	}
}

// BenchmarkRunBatch sweeps worker counts over the synthetic workload,
// demonstrating the batch driver's scaling: every worker count produces
// identical translated IR and aggregate statistics; only wall-clock
// changes. The copies-remaining metric doubles as a determinism witness
// across the sub-benchmarks.
func BenchmarkRunBatch(b *testing.B) {
	fns := workload()
	opt := core.Options{Strategy: core.Sharing, Linear: true, LiveCheck: true}
	pl := pipeline.Translate(opt)
	seen := map[int]bool{}
	for _, w := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
		if seen[w] {
			continue
		}
		seen[w] = true
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			var remaining int
			for i := 0; i < b.N; i++ {
				b.StopTimer() // cloning is not part of the translation cost
				clones := make([]*ir.Func, len(fns))
				for j, f := range fns {
					clones[j] = ir.Clone(f)
				}
				b.StartTimer()
				res := pipeline.RunBatch(context.Background(), clones, pl, w)
				if err := res.Err(); err != nil {
					b.Fatal(err)
				}
				remaining = res.Stats.RemainingCopies
			}
			b.ReportMetric(float64(remaining), "copies-remaining")
		})
	}
}

// BenchmarkRunBatchReference runs the retained single-channel dispatcher
// on the same workload, so `go test -bench RunBatch` puts the
// work-stealing driver and its predecessor side by side.
func BenchmarkRunBatchReference(b *testing.B) {
	fns := workload()
	opt := core.Options{Strategy: core.Sharing, Linear: true, LiveCheck: true}
	pl := pipeline.Translate(opt)
	seen := map[int]bool{}
	for _, w := range []int{1, runtime.GOMAXPROCS(0)} {
		if seen[w] {
			continue
		}
		seen[w] = true
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				clones := make([]*ir.Func, len(fns))
				for j, f := range fns {
					clones[j] = ir.Clone(f)
				}
				b.StartTimer()
				if err := pipeline.RunBatchReference(context.Background(), clones, pl, w).Err(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationClassInterference compares the paper's linear
// congruence-class interference test against the quadratic all-pairs test
// on identical merge workloads (DESIGN.md ablation).
func BenchmarkAblationClassInterference(b *testing.B) {
	run := func(b *testing.B, linear bool) {
		fns := workload()
		tests := 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, orig := range fns {
				f := ir.Clone(orig)
				sreedhar.SplitDuplicatePredEdges(f)
				sreedhar.SplitBranchDefEdges(f)
				ins, err := sreedhar.InsertCopies(f)
				if err != nil {
					b.Fatal(err)
				}
				dt := dom.Build(f)
				du := ir.NewDefUse(f)
				chk := &interference.Checker{
					F: f, DT: dt, DU: du,
					Live: livecheck.New(f, dt, du),
					Vals: ssa.Values(f, dt),
				}
				classes := congruence.New(chk)
				for _, node := range ins.PhiNodes {
					for j := 1; j < len(node); j++ {
						classes.MergeForced(node[0], node[j])
					}
				}
				m := &coalesce.Machinery{Chk: chk, Classes: classes, Linear: linear}
				coalesce.Run(m, ins.Affinities, coalesce.Value, false)
				tests += classes.Tests
			}
		}
		b.ReportMetric(float64(tests)/float64(b.N), "pair-tests")
	}
	b.Run("Linear", func(b *testing.B) { run(b, true) })
	b.Run("Quadratic", func(b *testing.B) { run(b, false) })
}

var (
	liveCorpusOnce sync.Once
	liveCorpus     []bench.LivenessCase
)

// livenessWorkload returns the large-CFG corpus of the liveness trajectory
// at a bench-friendly scale (still hundreds of blocks per function).
func livenessWorkload() []bench.LivenessCase {
	liveCorpusOnce.Do(func() { liveCorpus = bench.LivenessCorpus(0.1) })
	return liveCorpus
}

// BenchmarkLiveness measures the worklist liveness engine against the
// pre-worklist round-robin reference on the synthetic large-CFG corpus,
// for both set backends — the testing.B twin of
// `ssabench -fig liveness` / BENCH_liveness.json.
func BenchmarkLiveness(b *testing.B) {
	engines := []struct {
		name string
		run  func(*ir.Func, liveness.Backend) *liveness.Info
	}{
		{"Worklist", func(f *ir.Func, be liveness.Backend) *liveness.Info {
			return liveness.ComputeWith(f, be)
		}},
		{"Reference", liveness.ComputeReference},
	}
	backends := []struct {
		name string
		be   liveness.Backend
	}{
		{"Bitsets", liveness.Bitsets},
		{"Ordered", liveness.OrderedSets},
	}
	for _, eng := range engines {
		for _, bk := range backends {
			b.Run(eng.name+"/"+bk.name, func(b *testing.B) {
				corpus := livenessWorkload()
				b.ReportAllocs()
				b.ResetTimer()
				pops := 0
				for i := 0; i < b.N; i++ {
					pops = 0
					for _, c := range corpus {
						pops += eng.run(c.Func(), bk.be).Pops
					}
				}
				b.ReportMetric(float64(pops), "fixpoint-pops")
			})
		}
	}
}

var (
	coalCorpusOnce sync.Once
	coalCorpus     []bench.CoalesceCase
)

// coalesceWorkload returns the φ/copy-dense corpus of the coalescing
// trajectory at a bench-friendly scale.
func coalesceWorkload() []bench.CoalesceCase {
	coalCorpusOnce.Do(func() { coalCorpus = bench.CoalesceCorpus(0.1) })
	return coalCorpus
}

// BenchmarkCoalesce measures the optimized interference query path
// (binary-search LiveAfter, packed def-point keys, pooled congruence
// scratch) against the kept reference path on the φ/copy-dense corpus, for
// both liveness backends — the testing.B twin of `ssabench -fig coalesce` /
// BENCH_coalesce.json.
func BenchmarkCoalesce(b *testing.B) {
	for _, eng := range []struct {
		name      string
		reference bool
	}{{"Optimized", false}, {"Reference", true}} {
		for _, bk := range []struct {
			name      string
			livecheck bool
		}{{"LiveCheck", true}, {"Liveness", false}} {
			b.Run(eng.name+"/"+bk.name, func(b *testing.B) {
				corpus := coalesceWorkload()
				chks := make([]*interference.Checker, len(corpus))
				for i := range corpus {
					chks[i] = corpus[i].NewChecker(eng.reference, bk.livecheck)
				}
				b.ReportAllocs()
				b.ResetTimer()
				queries := 0
				for i := 0; i < b.N; i++ {
					for j := range corpus {
						chks[j].Queries = 0
						corpus[j].RunCoalesce(chks[j])
						queries += chks[j].Queries
					}
				}
				b.ReportMetric(float64(queries)/float64(b.N), "pair-queries")
			})
		}
	}
}

var (
	transCorpusOnce sync.Once
	transCorpus     []bench.TranslateCase
)

// translateWorkload returns the end-to-end corpus of the translate
// trajectory at a bench-friendly scale.
func translateWorkload() []bench.TranslateCase {
	transCorpusOnce.Do(func() { transCorpus = bench.TranslateCorpus(0.1) })
	return transCorpus
}

// BenchmarkTranslate measures end-to-end clone+translate steady state —
// the pooled-scratch/slab allocation path (CloneInto + TranslateInto with
// one reused core.Scratch) against the kept pre-pooling reference
// (Clone + ReferenceAlloc) — for the default Sharing strategy and the
// virtualized Sreedhar III baseline. The testing.B twin of
// `ssabench -fig translate` / BENCH_translate.json.
func BenchmarkTranslate(b *testing.B) {
	strategies := []struct {
		name string
		opt  core.Options
	}{
		{"Sharing", core.Options{Strategy: core.Sharing, Linear: true, LiveCheck: true}},
		{"SreedharIII", core.Options{Strategy: core.SreedharIII, Virtualize: true, UseGraph: true}},
	}
	for _, s := range strategies {
		b.Run("Pooled/"+s.name, func(b *testing.B) {
			corpus := translateWorkload()
			sc := core.NewScratch()
			dsts := make([]*ir.Func, len(corpus))
			for i := range dsts {
				dsts[i] = ir.NewFunc("")
			}
			b.ReportAllocs()
			b.ResetTimer()
			copies := 0
			for i := 0; i < b.N; i++ {
				copies = 0
				for j := range corpus {
					ir.CloneInto(dsts[j], corpus[j].Func())
					st, err := core.TranslateInto(dsts[j], s.opt, nil, sc)
					if err != nil {
						b.Fatal(err)
					}
					copies += st.FinalCopies
				}
			}
			b.ReportMetric(float64(copies), "final-copies")
		})
		b.Run("Reference/"+s.name, func(b *testing.B) {
			corpus := translateWorkload()
			opt := s.opt
			opt.ReferenceAlloc = true
			b.ReportAllocs()
			b.ResetTimer()
			copies := 0
			for i := 0; i < b.N; i++ {
				copies = 0
				for j := range corpus {
					st, err := core.Translate(ir.Clone(corpus[j].Func()), opt)
					if err != nil {
						b.Fatal(err)
					}
					copies += st.FinalCopies
				}
			}
			b.ReportMetric(float64(copies), "final-copies")
		})
	}
}

// BenchmarkAblationLiveness compares constructing dataflow liveness sets
// (bit sets and ordered sets) against the CFG-only liveness checker.
func BenchmarkAblationLiveness(b *testing.B) {
	fns := workload()
	b.Run("Sets-Bit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, f := range fns {
				liveness.ComputeWith(f, liveness.Bitsets)
			}
		}
	})
	b.Run("Sets-Ordered", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, f := range fns {
				liveness.ComputeWith(f, liveness.OrderedSets)
			}
		}
	})
	b.Run("LiveCheck", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, f := range fns {
				dt := dom.Build(f)
				livecheck.New(f, dt, ir.NewDefUse(f))
			}
		}
	})
}

// BenchmarkAblationSequentialization measures Algorithm 1 and reports how
// many copies a naive per-pair-temporary sequentializer would emit instead.
func BenchmarkAblationSequentialization(b *testing.B) {
	// A mix of permutations (cycles) and fan-out trees.
	type pc struct{ dsts, srcs []ir.VarID }
	var cases []pc
	for n := 2; n <= 12; n++ {
		perm := make([]ir.VarID, n)
		for i := range perm {
			perm[i] = ir.VarID((i + 1) % n) // one n-cycle
		}
		ids := make([]ir.VarID, n)
		for i := range ids {
			ids[i] = ir.VarID(i)
		}
		cases = append(cases, pc{dsts: perm, srcs: ids})
	}
	scratch := ir.VarID(1000)
	emitted, naive := 0, 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		emitted, naive = 0, 0
		for _, c := range cases {
			seq := parcopy.Sequentialize(c.dsts, c.srcs, func() ir.VarID { return scratch })
			emitted += len(seq)
			naive += parcopy.NaiveCount(c.dsts, c.srcs)
		}
	}
	b.ReportMetric(float64(emitted), "copies-optimal")
	b.ReportMetric(float64(naive), "copies-naive")
}

// BenchmarkAblationPhases breaks the translation time of the final
// configuration into the paper's four conceptual phases (copy insertion,
// analyses, coalescing, rewrite), as per-op metrics.
func BenchmarkAblationPhases(b *testing.B) {
	for _, cfg := range []bench.Config{
		{Name: "Sreedhar III", Opt: core.Options{Strategy: core.SreedharIII, Virtualize: true, UseGraph: true, OrderedSets: true}},
		{Name: "Us I Linear LiveCheck", Opt: core.Options{Strategy: core.Value, Linear: true, LiveCheck: true}},
	} {
		b.Run(cfg.Name, func(b *testing.B) {
			fns := workload()
			var ins, ana, coa, rew int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ins, ana, coa, rew = 0, 0, 0, 0
				for _, f := range fns {
					st, err := core.Translate(ir.Clone(f), cfg.Opt)
					if err != nil {
						b.Fatal(err)
					}
					ins += st.InsertNanos
					ana += st.AnalyzeNanos
					coa += st.CoalesceNanos
					rew += st.RewriteNanos
				}
			}
			b.ReportMetric(float64(ins), "ns-insert")
			b.ReportMetric(float64(ana), "ns-analyze")
			b.ReportMetric(float64(coa), "ns-coalesce")
			b.ReportMetric(float64(rew), "ns-rewrite")
		})
	}
}
