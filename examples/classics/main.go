// Classics walks through the paper's four motivating examples — the swap
// problem (Figure 3), the lost-copy problem (Figure 4), the branch-that-
// uses-a-variable subtlety (Figure 1), and the branch-with-decrement
// impossibility (Figure 2) — translating each with every coalescing
// strategy and showing the resulting code and copy counts.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/outofssa"
)

var cases = []struct {
	name, desc, src string
	params          []int64
}{
	{
		name: "swap (Figure 3)",
		desc: "two φs exchange values each iteration; sequentialization needs a cycle-breaking copy",
		src: `
func swap {
entry:
  a = param 0
  b = param 1
  zero = const 0
  jump loop
loop (freq 10):
  a2 = phi entry:a loop:b2
  b2 = phi entry:b loop:a2
  p = phi entry:zero loop:p2
  one = const 1
  p2 = add p one
  three = const 3
  c = cmplt p2 three
  print a2
  print b2
  br c loop exit
exit:
  ret a2
}
`,
		params: []int64{11, 22},
	},
	{
		name: "lost copy (Figure 4)",
		desc: "the φ result outlives the loop while its argument is redefined inside",
		src: `
func lostcopy {
entry:
  x1 = param 0
  jump loop
loop (freq 10):
  x2 = phi entry:x1 loop:x3
  one = const 1
  x3 = add x2 one
  ten = const 10
  c = cmplt x3 ten
  br c loop exit
exit:
  print x2
  ret x2
}
`,
		params: []int64{3},
	},
	{
		name: "branch uses (Figure 1)",
		desc: "copies go before the terminator, so the branch operand must count as interfering",
		src: `
func fig1 {
entry:
  u = param 0
  v = param 1
  c = cmplt u v
  br c b1 b2
b1:
  jump b0
b2:
  br u b3 b0
b3:
  print u
  ret u
b0:
  w = phi b1:u b2:v
  print w
  ret w
}
`,
		params: []int64{1, 2},
	},
	{
		name: "branch with decrement (Figure 2)",
		desc: "the φ argument is written by the terminator itself: the edge must be split",
		src: `
func fig2 {
entry:
  u0 = param 0
  t0 = copy u0
  jump b1
b1 (freq 10):
  u1 = phi entry:u0 b1:u2
  t1 = phi entry:t0 b1:t2
  five = const 5
  t2 = add t1 five
  u2 = brdec u1 b1 b2
b2:
  print u2
  print t1
  ret t2
}
`,
		params: []int64{4},
	},
}

func main() {
	ctx := context.Background()
	for _, c := range cases {
		fmt.Printf("================ %s ================\n", c.name)
		fmt.Printf("%s\n\n", c.desc)
		ref := outofssa.MustParse(c.src)
		want, err := outofssa.Interpret(ref, c.params, 100000)
		if err != nil {
			log.Fatal(err)
		}

		for _, s := range outofssa.Strategies {
			f := outofssa.MustParse(c.src)
			opt := outofssa.Options{Strategy: s, Linear: true, LiveCheck: true}
			if s == outofssa.SreedharIII {
				opt = outofssa.Options{Strategy: s, Virtualize: true, UseGraph: true}
			}
			tr, err := outofssa.New(outofssa.WithOptions(opt))
			if err != nil {
				log.Fatal(err)
			}
			res, err := tr.Translate(ctx, f)
			if err != nil {
				log.Fatal(err)
			}
			st := res.Stats
			got, err := outofssa.Interpret(f, c.params, 100000)
			if err != nil {
				log.Fatalf("%s/%s: %v", c.name, s, err)
			}
			fmt.Printf("%-14s copies=%d cycle-breaks=%d splits=%d equivalent=%v\n",
				s, st.FinalCopies, st.CycleCopies, st.SplitEdges, outofssa.Equivalent(want, got))
		}

		// Show the code the recommended configuration produces.
		f := outofssa.MustParse(c.src)
		tr, err := outofssa.New(outofssa.WithStrategy(outofssa.Sharing))
		if err != nil {
			log.Fatal(err)
		}
		if _, err := tr.Translate(ctx, f); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\ncode after translation (Sharing strategy):\n%s\n", f)
	}
}
