// Quickstart: parse a small SSA function, translate it out of SSA with the
// paper's recommended configuration (value-based coalescing, linear class
// interference test, fast liveness checking — "Us I + Linear + InterCheck +
// LiveCheck"), and print the code before and after along with the
// translation statistics. Everything goes through the public outofssa
// façade — no internal imports.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/outofssa"
)

// A loop whose φ web is non-conventional: x2 and x3 overlap (the lost-copy
// shape), so a naive φ elimination would be wrong.
const src = `
func quickstart {
entry:
  x1 = param 0
  jump loop
loop (freq 10):
  x2 = phi entry:x1 loop:x3
  one = const 1
  x3 = add x2 one
  ten = const 10
  c = cmplt x3 ten
  br c loop exit
exit:
  print x2
  ret x2
}
`

func main() {
	f, err := outofssa.Parse(src)
	if err != nil {
		log.Fatal(err)
	}
	orig := outofssa.Clone(f)

	fmt.Println("==== SSA input ====")
	fmt.Print(f)

	// The Translator runs the translation as four pipeline passes (copy
	// insertion, interference analyses, coalescing, rewrite) over a shared
	// analysis cache — the same passes TranslateAll drives over whole
	// workloads.
	tr, err := outofssa.New(
		outofssa.WithStrategy(outofssa.Value),
		outofssa.WithLinearClassTest(true),
		outofssa.WithFastLiveness(true),
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := tr.Translate(context.Background(), f)
	if err != nil {
		log.Fatal(err)
	}
	stats := res.Stats

	fmt.Println("\n==== after out-of-SSA translation ====")
	fmt.Print(f)

	fmt.Printf("\nφ-functions eliminated: %d\n", stats.Phis)
	fmt.Printf("candidate copies:       %d\n", stats.Affinities)
	fmt.Printf("copies left in code:    %d\n", stats.FinalCopies)
	fmt.Printf("intersection tests:     %d\n", stats.IntersectionTests)

	// The interpreter confirms the translation is observably equivalent.
	for _, params := range [][]int64{{0}, {5}, {9}} {
		want, err := outofssa.Interpret(orig, params, 10000)
		if err != nil {
			log.Fatal(err)
		}
		got, err := outofssa.Interpret(f, params, 10000)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("param %2d → ret %d (trace %v), equivalent: %v\n",
			params[0], got.Ret, got.Trace, outofssa.Equivalent(want, got))
	}
}
