// Jitpipeline simulates the paper's deployment scenario: a JIT compiler
// front end produces mutation-heavy, non-SSA code; the middle end builds
// SSA and runs copy folding (which makes the form non-conventional); and
// the back end translates out of SSA on the way to register allocation.
//
// The whole back end is expressed as a pass pipeline — SSA verification,
// the four out-of-SSA phases, linear-scan register allocation — sharing
// one analysis cache per function, and the "method queue" is drained by
// the concurrent batch driver: pipeline.RunBatch translates the queue on
// a worker pool and produces exactly the IR and aggregate statistics of a
// sequential run, only faster.
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"repro/internal/cfggen"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/pipeline"
)

func main() {
	// A "method queue" of 120 medium-sized functions, as a JIT would see.
	prof := cfggen.DefaultProfile("jit", 2026)
	prof.Funcs = 120
	prof.MaxStmts = 160
	queue := cfggen.Generate(prof)

	configs := []struct {
		name string
		opt  core.Options
	}{
		{"Sreedhar III (baseline)", core.Options{
			Strategy: core.SreedharIII, Virtualize: true, UseGraph: true, OrderedSets: true}},
		{"Us I + Linear + InterCheck + LiveCheck", core.Options{
			Strategy: core.Value, Linear: true, LiveCheck: true}},
	}

	// Per-configuration: drain the queue through the batch driver and
	// compare the paper's headline numbers.
	pool := []string{"R0", "R1", "r2", "r3", "r4", "r5", "r6", "r7"}
	inputs := [][]int64{{0, 0}, {4, 9}, {-3, 14}}
	for _, cfg := range configs {
		backend := pipeline.New(append([]pipeline.Pass{pipeline.VerifySSA()},
			append(pipeline.OutOfSSA(cfg.opt), pipeline.RegAlloc(pool))...)...)

		clones := make([]*ir.Func, len(queue))
		for i, f := range queue {
			clones[i] = ir.Clone(f)
		}
		start := time.Now()
		res := pipeline.RunBatch(clones, backend, 0)
		elapsed := time.Since(start)
		if err := res.Err(); err != nil {
			log.Fatal(err)
		}

		mem, spills, regs := 0, 0, 0
		for _, ctx := range res.Contexts {
			mem += ctx.Stats.GraphBytes + ctx.Stats.LiveSetBytes + ctx.Stats.LiveCheckBytes
			spills += ctx.Alloc.Spills
			if ctx.Alloc.RegsUsed > regs {
				regs = ctx.Alloc.RegsUsed
			}
		}
		fmt.Printf("%-40s  wall=%-10v  copies=%-5d  φ=%-5d  liveness+graph bytes=%-8d  spills=%d  max-regs=%d\n",
			cfg.name, elapsed.Round(time.Millisecond), res.Stats.FinalCopies, res.Stats.Phis, mem, spills, regs)

		// A JIT cannot tolerate miscompilation: spot-check equivalence.
		for i, f := range queue {
			for _, in := range inputs {
				want, err := interp.Run(f, in, 200000)
				if err != nil {
					log.Fatal(err)
				}
				got, err := interp.Run(clones[i], in, 200000)
				if err != nil {
					log.Fatal(err)
				}
				if !interp.Equal(want, got) {
					log.Fatalf("%s miscompiled %s on %v", cfg.name, f.Name, in)
				}
			}
		}
	}
	fmt.Println("\nall translations verified observably equivalent; all allocations verified")

	// Batch-driver scaling: same pipeline, same queue, growing worker
	// pools. The translated IR and aggregate statistics are identical for
	// every worker count; only the wall-clock changes.
	fmt.Printf("\nbatch-driver scaling over %d functions (recommended config):\n", len(queue))
	opt := configs[1].opt
	var baseline time.Duration
	for _, workers := range []int{1, 2, 4, runtime.NumCPU()} {
		clones := make([]*ir.Func, len(queue))
		for i, f := range queue {
			clones[i] = ir.Clone(f)
		}
		start := time.Now()
		res := pipeline.RunBatch(clones, pipeline.Translate(opt), workers)
		elapsed := time.Since(start)
		if err := res.Err(); err != nil {
			log.Fatal(err)
		}
		if workers == 1 {
			baseline = elapsed
		}
		fmt.Printf("  workers=%-3d wall=%-10v speedup=%.2fx  (copies=%d, φ=%d)\n",
			workers, elapsed.Round(time.Millisecond),
			float64(baseline)/float64(elapsed), res.Stats.FinalCopies, res.Stats.Phis)
	}
}
