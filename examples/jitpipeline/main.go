// Jitpipeline simulates the paper's deployment scenario: a JIT compiler
// front end produces mutation-heavy, non-SSA code; the middle end builds
// SSA and runs copy folding (which makes the form non-conventional); and
// the back end translates out of SSA on the way to register allocation.
//
// The whole back end is driven through the public outofssa façade: a
// Translator built from functional options (strategy machinery, a register
// pool, a worker count) drains the "method queue" with TranslateAll — the
// context-aware batch driver that produces exactly the IR and aggregate
// statistics of a sequential run, only faster — and the scaling section
// consumes per-function results as they complete via Stream.
package main

import (
	"context"
	"fmt"
	"log"
	"runtime"
	"time"

	"repro/outofssa"
)

func main() {
	ctx := context.Background()

	// A "method queue" of 120 medium-sized functions, as a JIT would see.
	prof := outofssa.DefaultProfile("jit", 2026)
	prof.Funcs = 120
	prof.MaxStmts = 160
	queue := outofssa.Generate(prof)

	configs := []struct {
		name string
		opt  outofssa.Options
	}{
		{"Sreedhar III (baseline)", outofssa.Options{
			Strategy: outofssa.SreedharIII, Virtualize: true, UseGraph: true, OrderedSets: true}},
		{"Us I + Linear + InterCheck + LiveCheck", outofssa.Options{
			Strategy: outofssa.Value, Linear: true, LiveCheck: true}},
	}

	// Per-configuration: drain the queue through the batch driver and
	// compare the paper's headline numbers.
	pool := []string{"R0", "R1", "r2", "r3", "r4", "r5", "r6", "r7"}
	inputs := [][]int64{{0, 0}, {4, 9}, {-3, 14}}
	for _, cfg := range configs {
		tr, err := outofssa.New(
			outofssa.WithOptions(cfg.opt),
			outofssa.WithRegisterPool(pool...),
		)
		if err != nil {
			log.Fatal(err)
		}

		clones := make([]*outofssa.Func, len(queue))
		for i, f := range queue {
			clones[i] = outofssa.Clone(f)
		}
		start := time.Now()
		batch, err := tr.TranslateAll(ctx, clones)
		elapsed := time.Since(start)
		if err != nil {
			log.Fatal(err)
		}

		mem, spills, regs := 0, 0, 0
		for _, r := range batch.Results {
			mem += r.Stats.GraphBytes + r.Stats.LiveSetBytes + r.Stats.LiveCheckBytes
			spills += r.Alloc.Spills
			if r.Alloc.RegsUsed > regs {
				regs = r.Alloc.RegsUsed
			}
		}
		fmt.Printf("%-40s  wall=%-10v  copies=%-5d  φ=%-5d  liveness+graph bytes=%-8d  spills=%d  max-regs=%d\n",
			cfg.name, elapsed.Round(time.Millisecond), batch.Stats.FinalCopies, batch.Stats.Phis, mem, spills, regs)

		// A JIT cannot tolerate miscompilation: spot-check equivalence.
		for i, f := range queue {
			for _, in := range inputs {
				want, err := outofssa.Interpret(f, in, 200000)
				if err != nil {
					log.Fatal(err)
				}
				got, err := outofssa.Interpret(clones[i], in, 200000)
				if err != nil {
					log.Fatal(err)
				}
				if !outofssa.Equivalent(want, got) {
					log.Fatalf("%s miscompiled %s on %v", cfg.name, f.Name, in)
				}
			}
		}
	}
	fmt.Println("\nall translations verified observably equivalent; all allocations verified")

	// Batch-driver scaling: same configuration, same queue, growing worker
	// pools. The translated IR and aggregate statistics are identical for
	// every worker count; only the wall-clock changes. Stream delivers each
	// function as it completes — here the "downstream consumer" just tallies
	// them while translation is still running.
	fmt.Printf("\nbatch-driver scaling over %d functions (recommended config):\n", len(queue))
	opt := configs[1].opt
	var baseline time.Duration
	seen := map[int]bool{}
	for _, workers := range []int{1, 2, 4, runtime.NumCPU()} {
		if seen[workers] {
			continue
		}
		seen[workers] = true
		tr, err := outofssa.New(
			outofssa.WithOptions(opt),
			outofssa.WithWorkers(workers),
			outofssa.WithVerify(false),
		)
		if err != nil {
			log.Fatal(err)
		}
		clones := make([]*outofssa.Func, len(queue))
		for i, f := range queue {
			clones[i] = outofssa.Clone(f)
		}
		start := time.Now()
		var agg outofssa.Stats
		done := 0
		for i, r := range tr.Stream(ctx, clones) {
			if r.Err != nil {
				log.Fatalf("func %d: %v", i, r.Err)
			}
			agg.Accumulate(r.Stats)
			done++
		}
		elapsed := time.Since(start)
		if done != len(clones) {
			log.Fatalf("stream delivered %d of %d results", done, len(clones))
		}
		if workers == 1 {
			baseline = elapsed
		}
		fmt.Printf("  workers=%-3d wall=%-10v speedup=%.2fx  (copies=%d, φ=%d)\n",
			workers, elapsed.Round(time.Millisecond),
			float64(baseline)/float64(elapsed), agg.FinalCopies, agg.Phis)
	}
}
