// Jitpipeline simulates the paper's deployment scenario: a JIT compiler
// front end produces mutation-heavy, non-SSA code; the middle end builds
// SSA, runs copy folding (which makes the form non-conventional); and the
// back end translates out of SSA on the way to register allocation. The
// paper's result is that the "Us I + Linear + InterCheck + LiveCheck"
// configuration makes the out-of-SSA step fast and small enough for JIT
// use, so that configuration is compared here against the Sreedhar III
// baseline on the same functions.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/cfggen"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/regalloc"
)

func main() {
	// A "method queue" of 40 medium-sized functions, as a JIT would see.
	prof := cfggen.DefaultProfile("jit", 2026)
	prof.Funcs = 40
	prof.MaxStmts = 160
	queue := cfggen.Generate(prof)

	configs := []struct {
		name string
		opt  core.Options
	}{
		{"Sreedhar III (baseline)", core.Options{
			Strategy: core.SreedharIII, Virtualize: true, UseGraph: true, OrderedSets: true}},
		{"Us I + Linear + InterCheck + LiveCheck", core.Options{
			Strategy: core.Value, Linear: true, LiveCheck: true}},
	}

	inputs := [][]int64{{0, 0}, {4, 9}, {-3, 14}}
	for _, cfg := range configs {
		var elapsed time.Duration
		var copies, mem, phis int
		for _, f := range queue {
			clone := ir.Clone(f)
			start := time.Now()
			st, err := core.Translate(clone, cfg.opt)
			elapsed += time.Since(start)
			if err != nil {
				log.Fatal(err)
			}
			copies += st.FinalCopies
			phis += st.Phis
			mem += st.GraphBytes + st.LiveSetBytes + st.LiveCheckBytes

			// A JIT cannot tolerate miscompilation: check equivalence.
			for _, in := range inputs {
				want, err := interp.Run(f, in, 200000)
				if err != nil {
					log.Fatal(err)
				}
				got, err := interp.Run(clone, in, 200000)
				if err != nil {
					log.Fatal(err)
				}
				if !interp.Equal(want, got) {
					log.Fatalf("%s miscompiled %s on %v", cfg.name, f.Name, in)
				}
			}
		}
		fmt.Printf("%-40s  time=%-10v  copies=%-5d  φ=%-5d  liveness+graph bytes=%d\n",
			cfg.name, elapsed, copies, phis, mem)
	}
	fmt.Println("\nall translations verified observably equivalent on sample inputs")

	// Finish the back end: linear-scan register allocation over the
	// translated code, with the calling-convention registers in the pool.
	pool := []string{"R0", "R1", "r2", "r3", "r4", "r5", "r6", "r7"}
	spills, regs := 0, 0
	for _, f := range queue {
		clone := ir.Clone(f)
		if _, err := core.Translate(clone, configs[1].opt); err != nil {
			log.Fatal(err)
		}
		res, err := regalloc.Allocate(clone, pool)
		if err != nil {
			log.Fatal(err)
		}
		if err := regalloc.Verify(clone, res); err != nil {
			log.Fatalf("allocation invalid for %s: %v", clone.Name, err)
		}
		spills += res.Spills
		if res.RegsUsed > regs {
			regs = res.RegsUsed
		}
	}
	fmt.Printf("linear-scan allocation over %d functions: max %d registers live, %d spills, all verified\n",
		len(queue), regs, spills)
}
