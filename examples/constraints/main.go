// Constraints demonstrates register renaming constraints (paper, Section
// III-D): calling conventions pin values to architectural registers, the
// front end splits the pinned live ranges with copies, and the out-of-SSA
// coalescer removes those copies together with the φ-related ones — while
// never merging classes pinned to different registers.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/outofssa"
)

// Two call sites use the R0 argument register; the value y flows into both,
// so coalescing y with R0's class removes both argument copies. The second
// call's result is pinned to R1 — it may never share a register with the
// R0 class.
const src = `
func callsites {
entry:
  y = param 0
  argA = copy y
  retA = add argA argA
  r1 = copy retA
  argB = copy y
  retB = mul argB argB
  r2 = copy retB
  s = add r1 r2
  print s
  ret s
}
`

func main() {
	f, err := outofssa.Parse(src)
	if err != nil {
		log.Fatal(err)
	}
	pin := func(name, reg string) {
		for i, v := range f.Vars {
			if v.Name == name {
				f.Vars[i].Reg = reg
			}
		}
	}
	pin("argA", "R0")
	pin("argB", "R0")
	pin("retA", "R0")
	pin("retB", "R1")

	fmt.Println("==== input with pinned variables ====")
	fmt.Print(f)
	fmt.Println("pins: argA,argB,retA → R0; retB → R1")

	tr, err := outofssa.New(outofssa.WithStrategy(outofssa.Sharing))
	if err != nil {
		log.Fatal(err)
	}
	res, err := tr.Translate(context.Background(), f)
	if err != nil {
		log.Fatal(err)
	}
	st := res.Stats

	fmt.Println("\n==== after translation ====")
	fmt.Print(f)
	fmt.Printf("\ncandidate copies: %d, left in code: %d, removed by sharing: %d\n",
		st.Affinities, st.FinalCopies, st.SharedRemoved)
	for _, v := range f.Vars {
		if v.Reg != "" {
			fmt.Printf("variable %-8s stays pinned to %s\n", v.Name, v.Reg)
		}
	}
}
